(* Shared measurement and reporting helpers for the benchmark harness.

   Everything here used to live inline in bench/main.ml; it is split out
   so individual experiments stay focused on workload construction. *)

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* Wall-clock one run of [f], returning its result and elapsed seconds. *)
let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Median of [repeat] wall-clock runs — robust to a stray slow run. *)
let median_wall ?(repeat = 3) f =
  let times =
    List.init repeat (fun _ -> snd (wall f)) |> List.sort Float.compare
  in
  List.nth times (repeat / 2)

let pp_time ppf seconds =
  if seconds < 1e-6 then Format.fprintf ppf "%8.1f ns" (seconds *. 1e9)
  else if seconds < 1e-3 then Format.fprintf ppf "%8.2f us" (seconds *. 1e6)
  else if seconds < 1. then Format.fprintf ppf "%8.2f ms" (seconds *. 1e3)
  else Format.fprintf ppf "%8.3f s " seconds

let time_str seconds = Format.asprintf "%a" pp_time seconds

(* Keeps ratios finite when the fast side is below timer resolution. *)
let speedup slow fast = slow /. Float.max fast 1e-9

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_json ~file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc;
  Printf.printf "\n  wrote %s\n" file

(* The shared emitter behind every experiment's --json output. One
   schema for all of them:

     { "experiment": "E17", "host_domains": N, "axes": { ... } }

   so downstream tooling can diff BENCH_E*.json files without
   per-experiment parsers. Rendering is deliberately rigid — two-space
   indent, ["key": value] with a space, bare true/false — because CI
   asserts on exact substrings like ["firings_identical": true]. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (* Lossless enough for ns-scale timings, readable for speedups. *)
  let render_float f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.9g" f

  let rec render ~indent v =
    let pad = String.make indent ' ' in
    match v with
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Int n -> string_of_int n
    | Float f -> render_float f
    | Str s -> "\"" ^ json_escape s ^ "\""
    | List [] -> "[]"
    | List items ->
      "[\n"
      ^ String.concat ",\n"
          (List.map (fun item -> pad ^ "  " ^ render ~indent:(indent + 2) item) items)
      ^ "\n" ^ pad ^ "]"
    | Obj [] -> "{}"
    | Obj fields ->
      "{\n"
      ^ String.concat ",\n"
          (List.map
             (fun (k, item) ->
               Printf.sprintf "%s  \"%s\": %s" pad (json_escape k)
                 (render ~indent:(indent + 2) item))
             fields)
      ^ "\n" ^ pad ^ "}"

  let to_string v = render ~indent:0 v ^ "\n"
end

(* [emit ~name ~host_domains ~file axes] writes one experiment's
   measurements in the shared schema. *)
let emit ~name ~host_domains ~file axes =
  write_json ~file
    (Json.to_string
       (Json.Obj
          [
            ("experiment", Json.Str name);
            ("host_domains", Json.Int host_domains);
            ("axes", Json.Obj axes);
          ]))
