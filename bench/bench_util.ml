(* Shared measurement and reporting helpers for the benchmark harness.

   Everything here used to live inline in bench/main.ml; it is split out
   so individual experiments stay focused on workload construction. *)

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* Wall-clock one run of [f], returning its result and elapsed seconds. *)
let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Median of [repeat] wall-clock runs — robust to a stray slow run. *)
let median_wall ?(repeat = 3) f =
  let times =
    List.init repeat (fun _ -> snd (wall f)) |> List.sort Float.compare
  in
  List.nth times (repeat / 2)

let pp_time ppf seconds =
  if seconds < 1e-6 then Format.fprintf ppf "%8.1f ns" (seconds *. 1e9)
  else if seconds < 1e-3 then Format.fprintf ppf "%8.2f us" (seconds *. 1e6)
  else if seconds < 1. then Format.fprintf ppf "%8.2f ms" (seconds *. 1e3)
  else Format.fprintf ppf "%8.3f s " seconds

let time_str seconds = Format.asprintf "%a" pp_time seconds

(* Keeps ratios finite when the fast side is below timer resolution. *)
let speedup slow fast = slow /. Float.max fast 1e-9

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_json ~file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc;
  Printf.printf "\n  wrote %s\n" file
