(** Shared measurement and reporting helpers for the benchmark harness. *)

(** 78-dash separator used by every section header. *)
val line : string

(** Print a section banner: separator, title, separator. *)
val header : string -> unit

(** Wall-clock one run, returning the result and elapsed seconds. *)
val wall : (unit -> 'a) -> 'a * float

(** Median of [repeat] (default 3) wall-clock runs. *)
val median_wall : ?repeat:int -> (unit -> 'a) -> float

(** Humane duration rendering: ns / us / ms / s with aligned width. *)
val pp_time : Format.formatter -> float -> unit

val time_str : float -> string

(** [speedup slow fast] with the denominator clamped to 1 ns, so ratios
    stay finite when the fast side is below timer resolution. *)
val speedup : float -> float -> float

(** Escape a string for inclusion in a JSON string literal. *)
val json_escape : string -> string

(** Write [contents] to [file] and announce it on stdout. *)
val write_json : file:string -> string -> unit
