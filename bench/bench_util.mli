(** Shared measurement and reporting helpers for the benchmark harness. *)

(** 78-dash separator used by every section header. *)
val line : string

(** Print a section banner: separator, title, separator. *)
val header : string -> unit

(** Wall-clock one run, returning the result and elapsed seconds. *)
val wall : (unit -> 'a) -> 'a * float

(** Median of [repeat] (default 3) wall-clock runs. *)
val median_wall : ?repeat:int -> (unit -> 'a) -> float

(** Humane duration rendering: ns / us / ms / s with aligned width. *)
val pp_time : Format.formatter -> float -> unit

val time_str : float -> string

(** [speedup slow fast] with the denominator clamped to 1 ns, so ratios
    stay finite when the fast side is below timer resolution. *)
val speedup : float -> float -> float

(** Escape a string for inclusion in a JSON string literal. *)
val json_escape : string -> string

(** Write [contents] to [file] and announce it on stdout. *)
val write_json : file:string -> string -> unit

(** The JSON tree every experiment's [--json] output is built from.
    Rendering is rigid — 2-space indent, ["key": value] with one space,
    bare [true]/[false] — because CI asserts on exact substrings. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
end

(** [emit ~name ~host_domains ~file axes] writes one experiment's
    measurements in the shared schema every BENCH_E*.json follows:
    [{"experiment": name, "host_domains": n, "axes": {...}}]. *)
val emit : name:string -> host_domains:int -> file:string -> (string * Json.t) list -> unit
