(* Benchmark and figure-reproduction harness.

   The paper (ICDE '94) reports no machine-measured tables; its evaluation
   artifacts are Figures 1-4 plus the worked examples of section 3, and its
   performance content is a set of design claims (factorization, selection
   look-ahead, common-subexpression sharing, DBCRON's probe+heap, index
   support for calendar operators). This harness (a) regenerates every
   figure as program output and (b) measures every claim against a naive
   baseline. DESIGN.md section 4 is the index; EXPERIMENTS.md records
   claim-vs-measured.

   Run everything:     dune exec bench/main.exe
   One section:        dune exec bench/main.exe -- figures
   One experiment:     dune exec bench/main.exe -- E2 E5 fig2 *)

open Calrules
open Cal_lang
open Cal_db
open Cal_rrule
open Bechamel
open Bench_util

(* ------------------------------------------------------------------ *)
(* Helpers *)

let epoch93 = Civil.make 1993 1 1

(* Experiments E2-E13 measure the uncached evaluation paths (they predate
   the session materialization cache and their recorded numbers depend on
   every evaluation doing its own generation); E14 measures the cache. *)
let session_years ?(cache_capacity = 0) n =
  Session.create ~epoch:epoch93
    ~lifespan:(Civil.make 1993 1 1, Civil.make (1992 + n) 12 31)
    ~cache_capacity ()

let parse_expr s =
  match Parser.expr s with Ok e -> e | Error e -> failwith ("parse: " ^ e)

(* Bechamel runner: (name, estimated ns/run) per test. *)
let bechamel_group ?(quota = 0.4) name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> (test_name, est) :: acc
        | _ -> acc)
      results []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let print_bechamel rows =
  List.iter
    (fun (name, ns) -> Printf.printf "  %-56s %s\n" name (time_str (ns *. 1e-9)))
    rows

(* ------------------------------------------------------------------ *)
(* Figures *)

let fig1 () =
  header "F1 | Figure 1: the CALENDARS tuple for Tuesdays";
  let s = session_years 40 in
  (match Session.define_calendar s ~name:"Tuesdays" ~script:"{ return ([2]/DAYS:during:WEEKS); }" with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Session.calendar_row s "Tuesdays" with
  | Some row ->
    let cols = [| "Name"; "Derivation-Script"; "Eval-Plan"; "Lifespan"; "Granularity"; "Values" |] in
    Array.iteri
      (fun i v ->
        let rendered = Value.to_string v in
        let rendered =
          String.concat "\n                     "
            (String.split_on_char '\n' rendered)
        in
        Printf.printf "  %-18s %s\n" cols.(i) rendered)
      row
  | None -> print_endline "  MISSING");
  print_endline "  (paper: derivation-script [2]/DAYS:during:WEEKS, granularity DAYS)"

let show_tree label expr =
  Printf.printf "%s\n  %s\n" label (Pretty.expr_to_string expr);
  String.split_on_char '\n' (Pretty.tree_to_string expr)
  |> List.iter (fun l -> if l <> "" then Printf.printf "    %s\n" l)

let fig_parse_tree ~id ~title ~defs ~source () =
  header (Printf.sprintf "%s | %s" id title);
  let s = session_years 40 in
  List.iter
    (fun (name, script) ->
      match Session.define_calendar s ~name ~script with
      | Ok () -> ()
      | Error e -> failwith e)
    defs;
  let env = s.Session.ctx.Context.env in
  let e = parse_expr source in
  Printf.printf "expression: %s\n\n" source;
  show_tree "INITIAL (derived calendars inlined):" (Factorize.inline env e);
  print_newline ();
  let factorized = Factorize.factorize env e in
  show_tree "FACTORISED:" factorized;
  print_newline ();
  let plan = Planner.plan s.Session.ctx e in
  Printf.printf "evaluation plan (windows bounded by the 1993 selection):\n";
  String.split_on_char '\n' (Plan.to_string plan)
  |> List.iter (fun l -> if l <> "" then Printf.printf "  %s\n" l);
  match Interp.run_plan s.Session.ctx plan with
  | cal, stats ->
    Printf.printf "\nvalue: %s   (generated %d intervals)\n" (Calendar.to_string cal)
      stats.Interp.generated_intervals

let fig2 =
  fig_parse_tree ~id:"F2" ~title:"Figure 2: parse trees for \"Mondays during January 1993\""
    ~defs:
      [
        ("Mondays", "{ return ([1]/DAYS:during:WEEKS); }");
        ("Januarys", "{ return ([1]/MONTHS:during:YEARS); }");
      ]
    ~source:"Mondays:during:Januarys:during:1993/YEARS"

let fig3 =
  fig_parse_tree ~id:"F3" ~title:"Figure 3: parse trees for \"Third week in January 1993\""
    ~defs:
      [
        ("Third_Weeks", "{ return ([3]/WEEKS:overlaps:MONTHS); }");
        ("Januarys", "{ return ([1]/MONTHS:during:YEARS); }");
      ]
    ~source:"Third_Weeks:during:Januarys:during:1993/YEARS"

let fig4 () =
  header "F4 | Figure 4: temporal rule implementation (declare -> RULE tables -> DBCRON -> fire)";
  let s = session_years 2 in
  ignore (Session.query_exn s "create table log (msg text)");
  print_endline "declare:  define rule tuesdays on calendar \"[2]/DAYS:during:WEEKS\" do Proc_X";
  (match
     Session.query s
       "define rule tuesdays on calendar \"[2]/DAYS:during:WEEKS\" do append log (msg = 'Proc_X')"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  print_endline "\nRULE_INFO:";
  (match Session.query_exn s "retrieve (name, kind, spec) from rule_info" with
  | Exec.Rows { rows; _ } ->
    List.iter
      (fun r ->
        Printf.printf "  %s | %s | %s\n" (Value.to_string r.(0)) (Value.to_string r.(1))
          (Value.to_string r.(2)))
      rows
  | _ -> ());
  print_endline "RULE_TIME:";
  (match Session.query_exn s "retrieve (name, next_fire) from rule_time" with
  | Exec.Rows { rows; _ } ->
    List.iter
      (fun r ->
        match r with
        | [| Value.Text n; Value.Int at |] ->
          Printf.printf "  %s -> instant %d (%s)\n" n at
            (Civil.to_string (Session.date_of_day s ((at / 86400) + 1)))
        | _ -> ())
      rows
  | _ -> ());
  print_endline "\nDBCRON simulation, 4 weeks (probe period = 1 day):";
  Session.advance_days s 28;
  List.iter
    (fun f ->
      Printf.printf "  fired %s at %s\n" f.Cal_rules.Manager.rule
        (Civil.to_string (Session.date_of_day s ((f.Cal_rules.Manager.at / 86400) + 1))))
    (Session.firings s);
  let probes, loaded = Cal_rules.Manager.dbcron_stats s.Session.manager in
  Printf.printf "  DBCRON probes = %d, heap loads = %d\n" probes loaded;
  match Session.query_exn s "retrieve (count(msg)) from log" with
  | Exec.Rows { rows = [ [| Value.Int n |] ]; _ } -> Printf.printf "  Proc_X executed %d times\n" n
  | _ -> ()

let sec31 () =
  header "E1 | Section 3.1 worked examples (epoch Jan 1 1993)";
  let s = session_years 7 in
  let show label source =
    match Session.eval_calendar s source with
    | Ok cal ->
      let str = Calendar.to_string cal in
      let str = if String.length str > 120 then String.sub str 0 117 ^ "..." else str in
      Printf.printf "  %-52s %s\n" label str
    | Error e -> Printf.printf "  %-52s ERROR %s\n" label e
  in
  show "WEEKS:during:Jan-1993" "WEEKS:during:{(1,31)}";
  show "WEEKS:overlaps:Jan-1993 (strict, clipped)" "WEEKS:overlaps:{(1,31)}";
  show "WEEKS.overlaps.Jan-1993 (relaxed, whole weeks)" "WEEKS.overlaps.{(1,31)}";
  show "[3]/WEEKS:overlaps:Jan-1993" "[3]/WEEKS:overlaps:{(1,31)}";
  show "[3]/WEEKS:overlaps:Year-1993 (third week of month)"
    "[3]/WEEKS:overlaps:MONTHS:during:1993/YEARS";
  print_endline "  (paper values: {(4,10),(11,17),(18,24),(25,31)}; {(1,3),...}; {(-4,3),...};";
  print_endline "   {(11,17)}; {(11,17),(46,52),(74,80),(102,108),...})"

let daycount_table () =
  header "E10 | Day-count conventions (user-defined date arithmetic, Sto90a example)";
  let d1 = Civil.make 1993 1 15 and d2 = Civil.make 1993 7 15 in
  Printf.printf "  coupon period %s .. %s, 8%% on 1000 face\n\n" (Civil.to_string d1)
    (Civil.to_string d2);
  Printf.printf "  %-10s %6s %14s %10s\n" "convention" "days" "year fraction" "accrued";
  List.iter
    (fun conv ->
      Printf.printf "  %-10s %6d %14.6f %10.4f\n" (Day_count.to_string conv)
        (Day_count.day_count conv d1 d2)
        (Day_count.year_fraction conv d1 d2)
        (Day_count.accrued_interest ~convention:conv ~annual_rate:0.08 ~face:1000. d1 d2))
    Day_count.all;
  print_endline "  (paper claim: 30/360 gives exactly half a 360-day year -> 40.0000;";
  print_endline "   a hard-wired Gregorian ACT calendar cannot.)"

let gnp_fig () =
  header "E11 | Regular time-series: calendar-implied valid time (GNP example)";
  let ctx =
    Context.create ~epoch:(Civil.make 1985 1 1)
      ~lifespan:(Civil.make 1985 1 1, Civil.make 1993 12 31)
      ~env:(Env.create ()) ()
  in
  let gnp = Array.init 36 (fun q -> 4000. +. (45. *. float_of_int q)) in
  match
    Cal_timeseries.Regular.create ctx ~expr:"[n]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)" gnp
  with
  | Error e -> Printf.printf "  ERROR %s\n" e
  | Ok series ->
    Printf.printf "  36 observations, 0 stored timestamps; timepoints generated on request:\n";
    for i = 0 to 3 do
      let iv = Cal_timeseries.Regular.timepoint series i in
      Printf.printf "    obs %d -> day %d (%s)\n" i (Interval.lo iv)
        (Civil.to_string
           (Unit_system.date_of_chronon ~epoch:(Civil.make 1985 1 1) Granularity.Days
              (Interval.lo iv)))
    done;
    Printf.printf "  S_t < Next(S_t) holds at %d of 35 successive pairs (monotone series)\n"
      (List.length (Cal_timeseries.Pattern.increases series))

(* ------------------------------------------------------------------ *)
(* Perf experiments *)

(* E2: factorization + bounded generation vs naive full-lifespan
   evaluation, as the lifespan grows. *)
let e2 () =
  header "E2 | Factorized bounded plans vs naive full-lifespan evaluation";
  Printf.printf "  expression: Mondays:during:Januarys:during:1993/YEARS\n\n";
  Printf.printf "  %-9s %12s %12s %12s %12s %9s\n" "lifespan" "naive-gen" "plan-gen" "naive-time"
    "plan-time" "speedup";
  List.iter
    (fun years ->
      let s = session_years years in
      List.iter
        (fun (name, script) ->
          match Session.define_calendar s ~name ~script with Ok () -> () | Error e -> failwith e)
        [
          ("Mondays", "{ return ([1]/DAYS:during:WEEKS); }");
          ("Januarys", "{ return ([1]/MONTHS:during:YEARS); }");
        ];
      let e = parse_expr "Mondays:during:Januarys:during:1993/YEARS" in
      let ctx = s.Session.ctx in
      let (naive_cal, naive_stats), t_naive = wall (fun () -> Interp.eval_expr_naive ctx e) in
      let plan = Planner.plan ctx e in
      let (planned, planned_stats), _ = wall (fun () -> Interp.run_plan ctx plan) in
      assert (Calendar.equal naive_cal planned);
      let t_planned = median_wall (fun () -> ignore (Interp.run_plan ctx plan)) in
      Printf.printf "  %6dy   %12d %12d %s %s %8.1fx\n" years
        naive_stats.Interp.generated_intervals planned_stats.Interp.generated_intervals
        (time_str t_naive) (time_str t_planned) (t_naive /. t_planned))
    [ 10; 40; 160 ];
  print_endline "\n  claim: generation work is independent of lifespan once the selection";
  print_endline "  look-ahead bounds the windows; naive work grows linearly."

(* E3: the selection look-ahead specifically (same expression with and
   without the year label). *)
let e3 () =
  header "E3 | Selection look-ahead bounds generation windows";
  let s = session_years 40 in
  let ctx = s.Session.ctx in
  let bounded = parse_expr "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS" in
  let unbounded = parse_expr "[3]/WEEKS:overlaps:[1]/MONTHS:during:YEARS" in
  let _, sb = Interp.eval_expr_planned ctx bounded in
  let _, su = Interp.eval_expr_planned ctx unbounded in
  Printf.printf "  with 1993/ label:    %6d intervals generated\n" sb.Interp.generated_intervals;
  Printf.printf "  without label:       %6d intervals generated (whole 40y lifespan)\n"
    su.Interp.generated_intervals;
  let rows =
    bechamel_group "e3"
      [
        Test.make ~name:"bounded (1993 label)"
          (Staged.stage (fun () -> Interp.eval_expr_planned ctx bounded));
        Test.make ~name:"unbounded (every year)"
          (Staged.stage (fun () -> Interp.eval_expr_planned ctx unbounded));
      ]
  in
  print_bechamel rows

(* E4: common-subexpression sharing in plans. *)
let e4 () =
  header "E4 | Common-subexpression sharing (calendars used twice generate once)";
  let s = session_years 10 in
  let ctx = s.Session.ctx in
  let shared = parse_expr "([1]/DAYS:during:WEEKS) + ([5]/DAYS:during:WEEKS)" in
  let plan = Planner.plan ctx shared in
  Printf.printf "  plan for ([1]/DAYS:during:WEEKS) + ([5]/DAYS:during:WEEKS):\n";
  Printf.printf "    generate instructions: %d (DAYS and WEEKS once each)\n" (Plan.gen_count plan);
  let mondays = parse_expr "[1]/DAYS:during:WEEKS" in
  let fridays = parse_expr "[5]/DAYS:during:WEEKS" in
  let rows =
    bechamel_group "e4"
      [
        Test.make ~name:"one shared plan"
          (Staged.stage (fun () -> Interp.run_plan ctx plan));
        Test.make ~name:"two separate evaluations"
          (Staged.stage (fun () ->
               ignore (Interp.eval_expr_planned ctx mondays);
               Interp.eval_expr_planned ctx fridays));
      ]
  in
  print_bechamel rows

(* E5: DBCRON scalability in the number of rules and the probe period. *)
let e5 () =
  header "E5 | DBCRON: one simulated year, varying rule count and probe period";
  Printf.printf "  %-8s %-12s %10s %10s %10s %12s\n" "rules" "probe" "firings" "probes"
    "heap-loads" "wall-time";
  let run_sim ~rules ~probe_period =
    let s =
      Session.create ~epoch:epoch93
        ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
        ~probe_period ~cache_capacity:0 ()
    in
    ignore (Session.query_exn s "create table log (msg text)");
    for i = 1 to rules do
      (* Staggered weekday + monthly rules. *)
      let spec =
        if i mod 2 = 0 then Printf.sprintf "[%d]/DAYS:during:WEEKS" ((i mod 7) + 1)
        else Printf.sprintf "[%d]/DAYS:during:MONTHS" ((i mod 28) + 1)
      in
      match
        Session.query s
          (Printf.sprintf "define rule r%d on calendar \"%s\" do append log (msg = 'r%d')" i spec i)
      with
      | Ok _ -> ()
      | Error e -> failwith e
    done;
    let _, t = wall (fun () -> Session.advance_days s 365) in
    let probes, loaded = Cal_rules.Manager.dbcron_stats s.Session.manager in
    (List.length (Session.firings s), probes, loaded, t)
  in
  List.iter
    (fun (rules, probe_period, probe_label) ->
      let firings, probes, loaded, t = run_sim ~rules ~probe_period in
      Printf.printf "  %-8d %-12s %10d %10d %10d %12s\n" rules probe_label firings probes loaded
        (time_str t))
    [
      (10, 86400, "1 day");
      (100, 86400, "1 day");
      (1000, 86400, "1 day");
      (100, 3600, "1 hour");
      (100, 7 * 86400, "1 week");
    ];
  print_endline "\n  claim: cost grows with firings (rules), not with clock resolution;";
  print_endline "  the probe period trades heap size against probe frequency."

(* E6: a time-based rule vs re-evaluating the temporal condition on every
   tick (the no-DBCRON baseline). *)
let e6 () =
  header "E6 | Time-based rule vs per-tick condition polling";
  let mk () =
    Session.create ~epoch:epoch93
      ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
      ~cache_capacity:0 ()
  in
  (* Rule-based. *)
  let s1 = mk () in
  ignore (Session.query_exn s1 "create table log (msg text)");
  ignore
    (Session.query_exn s1
       "define rule t on calendar \"[2]/DAYS:during:WEEKS\" do append log (msg = 'x')");
  let _, t_rule = wall (fun () -> Session.advance_days s1 365) in
  let rule_firings = List.length (Session.firings s1) in
  (* Polling: every simulated day, re-evaluate the calendar condition. *)
  let s2 = mk () in
  ignore (Session.query_exn s2 "create table log (msg text)");
  let polled = ref 0 in
  let _, t_poll =
    wall (fun () ->
        for day = 1 to 365 do
          Session.advance_days s2 1;
          match
            Session.query_exn s2
              (Printf.sprintf "retrieve (calendar_contains('[2]/DAYS:during:WEEKS', @%d))" day)
          with
          | Exec.Rows { rows = [ [| Value.Bool true |] ]; _ } ->
            incr polled;
            ignore (Session.query_exn s2 "append log (msg = 'x')")
          | _ -> ()
        done)
  in
  Printf.printf "  rule + DBCRON: %3d firings, %s  (calendar evaluated per fire)\n" rule_firings
    (time_str t_rule);
  Printf.printf "  per-tick poll: %3d matches, %s  (calendar evaluated 365 times)\n" !polled
    (time_str t_poll);
  Printf.printf "  speedup: %.1fx\n" (t_poll /. t_rule)

(* E7: valid-time calendar query, B-tree index vs sequential scan. *)
let e7 () =
  header "E7 | Valid-time on-clause: index scan vs sequential scan (100k rows)";
  let build ~indexed =
    let s = session_years 40 in
    ignore (Session.query_exn s "create table stock (day chronon valid, sym text, price float)");
    let tbl = Catalog.table s.Session.catalog "stock" in
    let syms = [| "IBM"; "DEC"; "HP"; "SUN"; "SGI"; "CRAY"; "APPL" |] in
    for i = 0 to 99_999 do
      let day = (i mod 14_600) + 1 in
      ignore
        (Table.insert tbl
           [|
             Value.Chronon day;
             Value.Text syms.(i mod 7);
             Value.Float (100. +. float_of_int (i mod 997));
           |])
    done;
    if indexed then ignore (Session.query_exn s "create index on stock (day)");
    s
  in
  let query =
    "retrieve (count(price)) from stock on \"[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS:during:1993/YEARS\""
  in
  Printf.printf "  query: %s\n\n" query;
  let measure s label =
    let stats = Exec.fresh_stats () in
    let q = match Qparser.query query with Ok q -> q | Error e -> failwith e in
    let rows =
      match Exec.run s.Session.catalog ~stats q with
      | Exec.Rows { rows = [ [| Value.Int n |] ]; _ } -> n
      | _ -> -1
    in
    let t = median_wall (fun () -> ignore (Exec.run s.Session.catalog q)) in
    Printf.printf "  %-12s matches=%6d  tuples-touched=%8d  %s\n" label rows stats.Exec.scanned
      (time_str t)
  in
  measure (build ~indexed:false) "seq scan";
  measure (build ~indexed:true) "B-tree index";
  print_endline "\n  claim: with the valid column indexed, the on-clause touches only";
  print_endline "  matching tuples (one range probe per calendar interval)."

(* E8: calendar algebra vs the RRULE baseline on the same recurrence. *)
let e8 () =
  header "E8 | Calendar algebra vs RRULE baseline: 3rd Friday of every month, 30 years";
  let s = session_years 30 in
  let ctx = s.Session.ctx in
  let expr = parse_expr "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS" in
  let rule =
    match Rrule.parse "FREQ=MONTHLY;BYDAY=3FR" with Ok r -> r | Error e -> failwith e
  in
  let dtstart = Civil.make 1993 1 1 and until = Civil.make 2022 12 31 in
  let via_algebra, _ = Interp.eval_expr_planned ctx expr in
  let lifespan = Context.lifespan_in ctx Granularity.Days in
  let algebra_n =
    Interval_set.cardinal
      (Interval_set.filter (fun iv -> Interval.during iv lifespan) (Calendar.flatten via_algebra))
  in
  let rrule_n = List.length (Expand.occurrences rule ~dtstart ~until ()) in
  Printf.printf "  occurrences: algebra=%d rrule=%d (must match: %b)\n" algebra_n rrule_n
    (algebra_n = rrule_n);
  let rows =
    bechamel_group "e8"
      [
        Test.make ~name:"algebra (planned eval, 30y)"
          (Staged.stage (fun () -> Interp.eval_expr_planned ctx expr));
        Test.make ~name:"rrule expansion (30y)"
          (Staged.stage (fun () -> Expand.occurrences rule ~dtstart ~until ()));
      ]
  in
  print_bechamel rows;
  print_endline "\n  claim: same extension; the algebra additionally composes (holiday";
  print_endline "  adjustment, set ops) where RRULE needs host-language code."

(* E9: generation primitives across granularity pairs. *)
let e9 () =
  header "E9 | generate / caloperate / refine primitive costs";
  let epoch = epoch93 in
  let day_window_10y = Interval.make 1 3652 in
  let sec_window_1d = Interval.make 1 86400 in
  let days_10y =
    Calendar_gen.generate ~epoch ~coarse:Granularity.Days ~fine:Granularity.Days
      ~window:day_window_10y ()
  in
  let years_10y =
    Calendar_gen.generate ~epoch ~coarse:Granularity.Years ~fine:Granularity.Years
      ~window:(Interval.make 1 10) ()
  in
  let rows =
    bechamel_group "e9"
      [
        Test.make ~name:"generate YEARS in DAYS, 10y"
          (Staged.stage (fun () ->
               Calendar_gen.generate ~epoch ~coarse:Granularity.Years ~fine:Granularity.Days
                 ~window:day_window_10y ()));
        Test.make ~name:"generate MONTHS in DAYS, 10y"
          (Staged.stage (fun () ->
               Calendar_gen.generate ~epoch ~coarse:Granularity.Months ~fine:Granularity.Days
                 ~window:day_window_10y ()));
        Test.make ~name:"generate WEEKS in DAYS, 10y"
          (Staged.stage (fun () ->
               Calendar_gen.generate ~epoch ~coarse:Granularity.Weeks ~fine:Granularity.Days
                 ~window:day_window_10y ()));
        Test.make ~name:"generate MINUTES in SECONDS, 1 day"
          (Staged.stage (fun () ->
               Calendar_gen.generate ~epoch ~coarse:Granularity.Minutes ~fine:Granularity.Seconds
                 ~window:sec_window_1d ()));
        Test.make ~name:"caloperate weeks := 7-day groups, 10y"
          (Staged.stage (fun () -> Calendar_gen.caloperate ~counts:[ 7 ] days_10y));
        Test.make ~name:"refine YEARS -> DAYS, 10y"
          (Staged.stage (fun () ->
               Calendar_gen.refine ~epoch ~from_:Granularity.Years ~to_:Granularity.Days years_10y));
      ]
  in
  print_bechamel rows

(* E10 perf: day-count arithmetic throughput. *)
let e10_perf () =
  header "E10 | Day-count arithmetic throughput";
  let d1 = Civil.make 1993 1 15 and d2 = Civil.make 1998 7 3 in
  let rows =
    bechamel_group "e10"
      [
        Test.make ~name:"day_count 30/360"
          (Staged.stage (fun () -> Day_count.day_count Day_count.Thirty_360_us d1 d2));
        Test.make ~name:"year_fraction ACT/ACT (multi-year split)"
          (Staged.stage (fun () -> Day_count.year_fraction Day_count.Actual_actual d1 d2));
        Test.make ~name:"civil <-> rata die roundtrip"
          (Staged.stage (fun () -> Civil.of_rata_die (Civil.rata_die d2)));
      ]
  in
  print_bechamel rows

(* E11 perf: time-series operations. *)
let e11_perf () =
  header "E11 | Regular time-series operations (10 years of daily data)";
  let ctx =
    Context.create ~epoch:epoch93 ~lifespan:(Civil.make 1993 1 1, Civil.make 2002 12 31)
      ~env:(Env.create ()) ()
  in
  let n = 3650 in
  let series =
    match
      Cal_timeseries.Regular.create ctx ~window:(Interval.make 1 n) ~expr:"DAYS"
        (Array.init n (fun i -> sin (float_of_int i /. 10.)))
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let months =
    Calendar_gen.generate ~epoch:epoch93 ~coarse:Granularity.Months ~fine:Granularity.Days
      ~window:(Interval.make 1 n) ()
  in
  let rows =
    bechamel_group "e11"
      [
        Test.make ~name:"point lookup by chronon (binary search)"
          (Staged.stage (fun () -> Cal_timeseries.Regular.at series 1825));
        Test.make ~name:"monthly mean aggregation (120 periods)"
          (Staged.stage (fun () ->
               Cal_timeseries.Regular.aggregate series ~periods:months
                 ~agg:Cal_timeseries.Regular.Mean));
        Test.make ~name:"pattern search S_t < Next(S_t)"
          (Staged.stage (fun () -> Cal_timeseries.Pattern.increases series));
        Test.make ~name:"moving average w=30"
          (Staged.stage (fun () -> Cal_timeseries.Pattern.moving_average series ~w:30));
      ]
  in
  print_bechamel rows

(* E13: valid-time maintenance — the paper's section 1 claim that regular
   time-series need not store their time points. TQUEL-style baseline:
   every observation (and every calendric time point) is interval-stamped
   data; calendar route: the time points are an expression. *)
let e13 () =
  header "E13 | Valid-time maintenance: stored timepoints (TQUEL) vs calendar-generated";
  let years = 100 in
  let quarters = 4 * years in
  (* TQUEL route: enumerate and store every quarter interval. *)
  let db = Cal_tquel.Tquel.create_db () in
  let runq s = ignore (Cal_tquel.Tquel.run db s) in
  runq "create gnp (value)";
  let epoch = Civil.make 1985 1 1 in
  let day d = Unit_system.chronon_of_date ~epoch Granularity.Days d in
  let _, t_populate =
    wall (fun () ->
        for q = 0 to quarters - 1 do
          let start = Civil.add_months epoch (3 * q) in
          let stop = Civil.add_days (Civil.add_months epoch (3 * (q + 1))) (-1) in
          runq
            (Printf.sprintf "append gnp (value = %d.0) valid from @%d to @%d" (4000 + q)
               (day start) (day stop))
        done)
  in
  let probe_day = day (Civil.make 2035 5 15) in
  let t_tquel_lookup =
    median_wall (fun () ->
        ignore
          (Cal_tquel.Tquel.run db
             (Printf.sprintf "retrieve (value) from gnp when gnp contain interval(@%d, @%d)"
                probe_day probe_day)))
  in
  (* Calendar route: values only; timepoints generated on request. *)
  let ctx =
    Context.create ~epoch
      ~lifespan:(Civil.make 1985 1 1, Civil.make (1984 + years) 12 31)
      ~env:(Env.create ()) ()
  in
  let series, t_series_build =
    let r, t =
      wall (fun () ->
          Cal_tquel.Tquel.expressible `Calendric_set |> ignore;
          Cal_timeseries.Regular.create ctx
            ~expr:"[n]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)"
            (Array.init quarters (fun q -> 4000. +. float_of_int q)))
    in
    ((match r with Ok s -> s | Error e -> failwith e), t)
  in
  let t_cal_lookup =
    (* Too fast for wall-clock resolution one call at a time. *)
    median_wall (fun () ->
        for _ = 1 to 10_000 do
          ignore (Cal_timeseries.Regular.at series probe_day)
        done)
    /. 10_000.
  in
  Printf.printf "  %-34s %14s %14s
" "" "TQUEL baseline" "calendar route";
  Printf.printf "  %-34s %14d %14d
" "stored interval-stamped rows" quarters 0;
  Printf.printf "  %-34s %14s %14s
" "populate / materialize" (time_str t_populate)
    (time_str t_series_build);
  Printf.printf "  %-34s %14s %14s
" "point lookup (mid-series)" (time_str t_tquel_lookup)
    (time_str t_cal_lookup);
  Printf.printf
    "
  changing the convention (quarter ends -> month ends): TQUEL re-enumerates
";
  Printf.printf
    "  %d rows of data; the calendar route edits one expression. Calendric sets
"
    (12 * years);
  Printf.printf "  are inexpressible in the baseline (Tquel.expressible `Calendric_set = %b).
"
    (Cal_tquel.Tquel.expressible `Calendric_set)

(* E12 (ablation): indexed foreach vs the pairwise reference
   implementation - the design choice DESIGN.md calls out for the dicing
   operator's inner loop. *)
let e12 () =
  header "E12 | Ablation: indexed foreach vs pairwise foreach (30 years of days)";
  let epoch = epoch93 in
  let window = Interval.make 1 (30 * 365) in
  let days =
    Calendar.leaf
      (Calendar_gen.generate ~epoch ~coarse:Granularity.Days ~fine:Granularity.Days ~window ())
  in
  let weeks =
    Calendar.leaf
      (Calendar_gen.generate ~epoch ~coarse:Granularity.Weeks ~fine:Granularity.Days ~window ())
  in
  let months =
    Calendar.leaf
      (Calendar_gen.generate ~epoch ~coarse:Granularity.Months ~fine:Granularity.Days ~window ())
  in
  assert (
    Calendar.equal
      (Calendar.foreach ~strict:true Listop.During days weeks)
      (Calendar.foreach_pairwise ~strict:true Listop.During days weeks));
  let rows =
    bechamel_group "e12"
      [
        Test.make ~name:"DAYS during WEEKS   - indexed"
          (Staged.stage (fun () -> Calendar.foreach ~strict:true Listop.During days weeks));
        Test.make ~name:"DAYS during WEEKS   - pairwise"
          (Staged.stage (fun () ->
               Calendar.foreach_pairwise ~strict:true Listop.During days weeks));
        Test.make ~name:"WEEKS overlaps MONTHS - indexed"
          (Staged.stage (fun () -> Calendar.foreach ~strict:true Listop.Overlaps weeks months));
        Test.make ~name:"WEEKS overlaps MONTHS - pairwise"
          (Staged.stage (fun () ->
               Calendar.foreach_pairwise ~strict:true Listop.Overlaps weeks months));
      ]
  in
  print_bechamel rows;
  print_endline "\n  the candidate slice per reference is located by binary search;";
  print_endline "  results are identical (qcheck-verified oracle)."

(* E14: the session materialization cache — rules sharing sub-expressions
   reuse each other's generations instead of regenerating them. *)
let e14 () =
  header "E14 | Session materialization cache: sub-expression sharing across rules";
  (* 12 rule calendars over the DAYS/WEEKS/MONTHS base calendars: seven
     weekday rules share DAYS:during:WEEKS, five monthly rules share
     DAYS:during:MONTHS, and all twelve share DAYS. *)
  let specs =
    List.init 7 (fun i -> Printf.sprintf "[%d]/DAYS:during:WEEKS" (i + 1))
    @ List.map (Printf.sprintf "[%d]/DAYS:during:MONTHS") [ 1; 5; 10; 15; 20 ]
  in
  let window = Interval.make 1 400 in
  (* Part A: one probe pass over every rule's calendar, naive vs cached. *)
  let eval_all strategy =
    List.fold_left
      (fun (gens, hits) src ->
        let _, st = strategy (parse_expr src) in
        (gens + st.Interp.gen_calls, hits + st.Interp.cache_hits))
      (0, 0) specs
  in
  let ctx_naive = (session_years 2).Session.ctx in
  let cached_session = session_years ~cache_capacity:512 2 in
  let ctx_cached = cached_session.Session.ctx in
  let (naive_gens, _), t_naive =
    wall (fun () -> eval_all (fun e -> Interp.eval_expr_naive ctx_naive ~window e))
  in
  let (cached_gens, cache_hits), t_cached =
    wall (fun () -> eval_all (fun e -> Interp.eval_expr_cached ctx_cached ~window e))
  in
  Printf.printf "  one probe pass over %d rule calendars (shared 400-day window):\n"
    (List.length specs);
  Printf.printf "    naive:  %3d generate calls              %s\n" naive_gens
    (time_str t_naive);
  Printf.printf "    cached: %3d generate calls, %3d hits    %s\n" cached_gens cache_hits
    (time_str t_cached);
  Printf.printf "    strictly fewer generations with sharing: %b\n" (cached_gens < naive_gens);
  let cs = Session.cache_stats cached_session in
  Printf.printf "    cache: %d insertions, %d hits, %d misses, hit rate %.1f%%\n"
    cs.Cal_cache.insertions cs.Cal_cache.hits cs.Cal_cache.misses
    (100. *. Session.cache_hit_rate cached_session);
  (* Part B: the same rules live under DBCRON for a simulated year; the
     cached session reuses materializations across the daily probes. *)
  let run_sim ~cache_capacity =
    let s =
      Session.create ~epoch:epoch93
        ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
        ~cache_capacity ()
    in
    ignore (Session.query_exn s "create table log (msg text)");
    List.iteri
      (fun i spec ->
        match
          Session.query s
            (Printf.sprintf "define rule r%d on calendar \"%s\" do append log (msg = 'r%d')" i
               spec i)
        with
        | Ok _ -> ()
        | Error e -> failwith e)
      specs;
    let _, t = wall (fun () -> Session.advance_days s 365) in
    (List.length (Session.firings s), t, s)
  in
  let firings_u, t_uncached, _ = run_sim ~cache_capacity:0 in
  let firings_c, t_cached, s_cached = run_sim ~cache_capacity:512 in
  Printf.printf "\n  DBCRON, %d rules, one simulated year (probe period 1 day):\n"
    (List.length specs);
  Printf.printf "    uncached session: %4d firings   %s\n" firings_u (time_str t_uncached);
  Printf.printf "    cached session:   %4d firings   %s   (%.1fx)\n" firings_c
    (time_str t_cached)
    (t_uncached /. t_cached);
  Printf.printf "    firings agree: %b\n" (firings_u = firings_c);
  Printf.printf "    %s\n" (Session.stats_summary s_cached);
  print_endline "\n  claim: probes over a shared window hit the session cache, so rule";
  print_endline "  maintenance cost stops scaling with the number of rules sharing";
  print_endline "  sub-expressions."

(* E15: the array-backed interval-set representation vs the retained list
   oracle, and the streaming next-fire path vs materializing windows.
   With --json, the measurements are also written to BENCH_E15.json. *)

let json_mode = ref false

let e15 () =
  header "E15 | Array-backed interval sets + streaming next-fire probes";
  let n = 10_000 in
  (* Overlap-heavy inputs: stride 3, width 5, so neighbours overlap (as
     weeks overlap months); every second member of b is shared with a so
     the element-wise algebra has real work on both sides. *)
  let pa = List.init n (fun k -> ((3 * k) + 1, (3 * k) + 5)) in
  let pb =
    List.init n (fun k ->
        if k mod 2 = 0 then ((3 * k) + 1, (3 * k) + 5) else ((3 * k) + 2, (3 * k) + 6))
  in
  let a = Interval_set.of_pairs pa and b = Interval_set.of_pairs pb in
  let al = Interval_set_list.of_pairs pa and bl = Interval_set_list.of_pairs pb in
  let probes = List.init 1_000 (fun i -> (i * 29) + 1) in
  let w_mid = Interval.make 15_001 15_300 in
  (* Gapped inputs for the pointwise ops: stride 4 with a 1-chronon gap,
     so the coalesced forms keep all n members (the overlap-heavy sets
     above collapse to one giant interval, which makes the pointwise
     merge trivially cheap and measures nothing). *)
  let pga = List.init n (fun k -> ((4 * k) + 1, (4 * k) + 3)) in
  let pgb = List.init n (fun k -> ((4 * k) + 2, (4 * k) + 4)) in
  let ga = Interval_set.of_pairs pga and gb = Interval_set.of_pairs pgb in
  let gal = Interval_set_list.of_pairs pga and gbl = Interval_set_list.of_pairs pgb in
  let micro =
    [
      ( "union",
        (fun () -> ignore (Interval_set_list.union al bl)),
        fun () -> ignore (Interval_set.union a b) );
      ( "diff",
        (fun () -> ignore (Interval_set_list.diff al bl)),
        fun () -> ignore (Interval_set.diff a b) );
      ( "inter",
        (fun () -> ignore (Interval_set_list.inter al bl)),
        fun () -> ignore (Interval_set.inter a b) );
      ( "nth_from_end x1000",
        (fun () ->
          for i = 0 to 999 do
            ignore (Interval_set_list.nth_from_end al ((i mod 100) + 1))
          done),
        fun () ->
          for i = 0 to 999 do
            ignore (Interval_set.nth_from_end a ((i mod 100) + 1))
          done );
      ( "contains_chronon x1000",
        (fun () -> List.iter (fun c -> ignore (Interval_set_list.contains_chronon al c)) probes),
        fun () -> List.iter (fun c -> ignore (Interval_set.contains_chronon a c)) probes );
      ( "restrict (1% window)",
        (fun () -> ignore (Interval_set_list.restrict al w_mid)),
        fun () -> ignore (Interval_set.restrict a w_mid) );
      ( "pointwise_inter (gapped)",
        (fun () -> ignore (Interval_set_list.pointwise_inter gal gbl)),
        fun () -> ignore (Interval_set.pointwise_inter ga gb) );
    ]
  in
  Printf.printf "  set algebra, %d overlap-heavy intervals (list oracle vs array):\n\n" n;
  Printf.printf "  %-24s %12s %12s %9s\n" "operation" "list" "array" "speedup";
  let micro_rows =
    List.map
      (fun (name, list_fn, arr_fn) ->
        let t_list = median_wall ~repeat:5 list_fn in
        let t_arr = median_wall ~repeat:5 arr_fn in
        Printf.printf "  %-24s %s %s %8.1fx\n" name (time_str t_list) (time_str t_arr)
          (speedup t_list t_arr);
        (name, t_list, t_arr))
      micro
  in
  (* DBCRON: the same rule mix for one simulated year, probing through
     materializing windows vs streaming chunks. *)
  let specs =
    List.init 7 (fun i -> Printf.sprintf "[%d]/DAYS:during:WEEKS" (i + 1))
    @ List.map (Printf.sprintf "[%d]/DAYS:during:MONTHS") [ 1; 10; 20 ]
    @ [ "[1]/DAYS:during:YEARS"; "[1]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)" ]
  in
  let run_sim strategy =
    let s =
      Session.create ~epoch:epoch93
        ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
        ~probe_strategy:strategy ~cache_capacity:512 ()
    in
    ignore (Session.query_exn s "create table log (msg text)");
    List.iteri
      (fun i spec ->
        match
          Session.query s
            (Printf.sprintf "define rule r%d on calendar \"%s\" do append log (msg = 'r%d')" i
               spec i)
        with
        | Ok _ -> ()
        | Error e -> failwith e)
      specs;
    let _, t = wall (fun () -> Session.advance_days s 365) in
    let firings =
      List.map (fun f -> (f.Cal_rules.Manager.rule, f.Cal_rules.Manager.at)) (Session.firings s)
    in
    (firings, t, Session.cache_stats s)
  in
  let f_mat, t_mat, cs_mat = run_sim `Materialize in
  let f_str, t_str, cs_str = run_sim `Stream in
  let agree = f_mat = f_str in
  Printf.printf "\n  DBCRON, %d rules, one simulated year (cache 512):\n" (List.length specs);
  let show_sim label firings t (cs : Cal_cache.stats) =
    Printf.printf "    %-12s %4d firings   %s   cache %d hits / %d misses\n" label
      (List.length firings) (time_str t) cs.Cal_cache.hits cs.Cal_cache.misses
  in
  show_sim "materialize:" f_mat t_mat cs_mat;
  show_sim "stream:" f_str t_str cs_str;
  Printf.printf "    firings identical: %b   probe speedup: %.1fx\n" agree (t_mat /. t_str);
  (* Single next-fire probe latency, mid-lifespan, 30-year session. *)
  let s30 = session_years ~cache_capacity:512 30 in
  let ctx = s30.Session.ctx in
  let probe_expr = parse_expr "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS" in
  let after = 5 * 365 * 86400 in
  let t_next_mat =
    median_wall ~repeat:5 (fun () ->
        ignore (Cal_rules.Next_fire.next ctx probe_expr ~after ~strategy:`Materialize ()))
  in
  let t_next_str =
    median_wall ~repeat:5 (fun () ->
        ignore (Cal_rules.Next_fire.next ctx probe_expr ~after ~strategy:`Stream ()))
  in
  Printf.printf "\n  single next-fire probe (3rd Friday monthly, 30y session):\n";
  Printf.printf "    materialize: %s   stream: %s   (%.1fx)\n" (time_str t_next_mat)
    (time_str t_next_str)
    (t_next_mat /. t_next_str);
  if !json_mode then begin
    let sim_obj (cs : Cal_cache.stats) firings t =
      Json.Obj
        [
          ("wall_s", Json.Float t);
          ("firings", Json.Int (List.length firings));
          ("cache_hits", Json.Int cs.Cal_cache.hits);
          ("cache_misses", Json.Int cs.Cal_cache.misses);
        ]
    in
    emit ~name:"E15" ~host_domains:(Cal_parallel.Pool.hardware_domains ())
      ~file:"BENCH_E15.json"
      [
        ("n_intervals", Json.Int n);
        ( "micro",
          Json.List
            (List.map
               (fun (name, t_list, t_arr) ->
                 Json.Obj
                   [
                     ("op", Json.Str name);
                     ("list_s", Json.Float t_list);
                     ("array_s", Json.Float t_arr);
                     ("speedup", Json.Float (speedup t_list t_arr));
                   ])
               micro_rows) );
        ( "dbcron",
          Json.Obj
            [
              ("rules", Json.Int (List.length specs));
              ("simulated_days", Json.Int 365);
              ("materialize", sim_obj cs_mat f_mat t_mat);
              ("stream", sim_obj cs_str f_str t_str);
              ("firings_agree", Json.Bool agree);
              ("speedup", Json.Float (speedup t_mat t_str));
            ] );
        ( "next_probe",
          Json.Obj
            [
              ("materialize_s", Json.Float t_next_mat);
              ("stream_s", Json.Float t_next_str);
              ("speedup", Json.Float (speedup t_next_mat t_next_str));
            ] );
      ]
  end

(* E16: the compiled query pipeline — parameterized plan cache, compiled
   predicates and estimated access paths vs the retained tree-walking
   interpreter, plus the merged single-sweep index path behind wide
   on-calendar retrievals. With --json, measurements are also written to
   BENCH_E16.json. *)

let e16 () =
  header "E16 | Compiled query pipeline + temporal access paths";
  let nrows = 50_000 and naccts = 50 in
  let cat = Catalog.create () in
  (match
     Exec.run_string cat
       "create table trades (day chronon valid, acct int, qty int, price float)"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let tbl = Catalog.table cat "trades" in
  for i = 0 to nrows - 1 do
    ignore
      (Table.insert tbl
         [|
           Value.Chronon (i + 1);
           Value.Int (i mod naccts);
           Value.Int ((i mod 200) + 1);
           Value.Float (float_of_int (i mod 97) +. 0.5);
         |])
  done;
  Catalog.create_index cat "trades" "day";
  Catalog.create_index cat "trades" "acct";
  let parse s = match Qparser.query s with Ok q -> q | Error e -> failwith (e ^ ": " ^ s) in
  (* Part A: a repeated rule-action workload. Each tick retrieves with a
     fresh constant, an indexed equality, an arithmetic residual — and,
     on odd ticks, a non-selective leading range conjunct that the
     estimator must rank below the equality. Pre-parsed, so both engines
     are measured on execution alone. *)
  let reps = 1_000 in
  let workload =
    Array.init (2 * reps) (fun i ->
        let c = i mod naccts in
        if i mod 2 = 0 then
          parse
            (Printf.sprintf
               "retrieve (qty, price) from trades where acct = %d and qty * price > \
                15000.0 and not (price < 1.0) and (qty - 100) * (qty - 100) + price * \
                price > 400.0"
               c)
        else
          parse
            (Printf.sprintf
               "retrieve (qty) from trades where day >= @1 and acct = %d and qty + 3 * \
                (qty - 1) > 700 and price * 2.0 + qty > 300.0 and not (qty = 0)"
               c))
  in
  let run_workload mode =
    let stats = Exec.fresh_stats () in
    let rows_out = ref 0 in
    let _, t =
      wall (fun () ->
          Array.iter
            (fun q ->
              match Exec.run cat ~stats ~mode q with
              | Exec.Rows { rows; _ } -> rows_out := !rows_out + List.length rows
              | _ -> ())
            workload)
    in
    (t, stats, !rows_out)
  in
  let t_int, s_int, rows_int = run_workload `Interpreted in
  let t_cmp, s_cmp, rows_cmp = run_workload `Compiled in
  (* Spot-check identical row sets across engines and against a forced
     sequential scan. *)
  let rows_of q ~mode ~force_seq =
    match Exec.run cat ~stats:(Exec.fresh_stats ()) ~mode ~force_seq q with
    | Exec.Rows { rows; _ } -> rows
    | _ -> []
  in
  let agree_a =
    Array.for_all
      (fun q ->
        let c = rows_of q ~mode:`Compiled ~force_seq:false in
        c = rows_of q ~mode:`Interpreted ~force_seq:false
        && c = rows_of q ~mode:`Compiled ~force_seq:true)
      (Array.sub workload 0 40)
  in
  Printf.printf "  repeated rule-action workload, %d queries over %d rows:\n\n"
    (2 * reps) nrows;
  Printf.printf "    interpreted: %s   %d rows   %d index probes\n" (time_str t_int)
    rows_int s_int.Exec.index_probes;
  Printf.printf "    compiled:    %s   %d rows   %d index probes   (%.1fx)\n"
    (time_str t_cmp) rows_cmp s_cmp.Exec.index_probes (speedup t_int t_cmp);
  Printf.printf "    plan cache: %d hits / %d misses   rows agree (40-query sample): %b\n"
    s_cmp.Exec.plan_cache_hits s_cmp.Exec.plan_cache_misses agree_a;
  (* Part B: a wide on-calendar retrieval — many disjoint valid-time
     intervals. The interpreter probes the index once per interval; the
     compiled path coalesces the calendar and does one merged sweep. *)
  let nivals = 1_000 in
  Catalog.set_calendar_resolver cat (fun _ ->
      Interval_set.of_pairs (List.init nivals (fun k -> ((47 * k) + 1, (47 * k) + 1))));
  let q_cal = parse "retrieve (day, qty) from trades on \"WIDE\"" in
  let run_cal mode force_seq =
    let stats = Exec.fresh_stats () in
    let t =
      median_wall ~repeat:5 (fun () -> ignore (Exec.run cat ~stats ~mode ~force_seq q_cal))
    in
    (t, stats)
  in
  let t_cal_int, s_cal_int = run_cal `Interpreted false in
  let t_cal_cmp, s_cal_cmp = run_cal `Compiled false in
  let t_cal_seq, _ = run_cal `Compiled true in
  let agree_b =
    let c = rows_of q_cal ~mode:`Compiled ~force_seq:false in
    c = rows_of q_cal ~mode:`Interpreted ~force_seq:false
    && c = rows_of q_cal ~mode:`Compiled ~force_seq:true
  in
  let probes_per_run (s : Exec.stats) = s.Exec.index_probes / 5 in
  Printf.printf "\n  on-calendar retrieval, %d disjoint intervals over %d rows:\n\n" nivals
    nrows;
  Printf.printf "    seq scan:          %s\n" (time_str t_cal_seq);
  Printf.printf "    per-interval:      %s   %d probes/run\n" (time_str t_cal_int)
    (probes_per_run s_cal_int);
  Printf.printf "    merged sweep:      %s   %d probes/run   (%.1fx vs per-interval, %.1fx vs seq)\n"
    (time_str t_cal_cmp) (probes_per_run s_cal_cmp)
    (speedup t_cal_int t_cal_cmp) (speedup t_cal_seq t_cal_cmp);
  Printf.printf "    rows agree: %b\n" agree_b;
  print_endline "\n  claim: compiling predicates once per skeleton and choosing access";
  print_endline "  paths from index statistics makes repeated temporal-rule queries";
  print_endline "  cheap; coalescing the on-clause into one merged sweep removes the";
  print_endline "  per-interval probe tax.";
  if !json_mode then
    emit ~name:"E16" ~host_domains:(Cal_parallel.Pool.hardware_domains ())
      ~file:"BENCH_E16.json"
      [
        ( "repeated_workload",
          Json.Obj
            [
              ("queries", Json.Int (2 * reps));
              ("table_rows", Json.Int nrows);
              ("interpreted_s", Json.Float t_int);
              ("compiled_s", Json.Float t_cmp);
              ("speedup", Json.Float (speedup t_int t_cmp));
              ("interpreted_probes", Json.Int s_int.Exec.index_probes);
              ("compiled_probes", Json.Int s_cmp.Exec.index_probes);
              ("plan_cache_hits", Json.Int s_cmp.Exec.plan_cache_hits);
              ("plan_cache_misses", Json.Int s_cmp.Exec.plan_cache_misses);
              ("rows_agree", Json.Bool agree_a);
            ] );
        ( "on_calendar",
          Json.Obj
            [
              ("intervals", Json.Int nivals);
              ("seq_s", Json.Float t_cal_seq);
              ("per_interval_s", Json.Float t_cal_int);
              ("merged_sweep_s", Json.Float t_cal_cmp);
              ("probes_per_interval_run", Json.Int (probes_per_run s_cal_int));
              ("probes_merged_run", Json.Int (probes_per_run s_cal_cmp));
              ("speedup_vs_per_interval", Json.Float (speedup t_cal_int t_cal_cmp));
              ("speedup_vs_seq", Json.Float (speedup t_cal_seq t_cal_cmp));
              ("rows_agree", Json.Bool agree_b);
            ] );
      ]

(* E17: the multicore execution layer — parallel DBCRON next-fire batches
   and partitioned sequential scans vs the serial oracle. Firings and row
   sets must be byte-identical at every domain count; the speedups depend
   entirely on the host's core count, which the JSON records (a 1-core
   container time-slices its domains and measures ~1x). With --json, the
   measurements are also written to BENCH_E17.json. *)

let e17 () =
  header "E17 | Multicore execution: parallel DBCRON batches + partitioned scans";
  let hw = Cal_parallel.Pool.hardware_domains () in
  let par_domains = 4 in
  Printf.printf "  host: %d usable domain(s); parallel side runs %d lanes%s\n" hw par_domains
    (if hw = 1 then " (time-sliced on one core: expect ~1x)" else "");
  (* Part A: DBCRON over 10k rules. Specs cycle through 196 distinct
     calendars (7 weekday x 28 monthly combinations) so the probe batch
     is large, the session cache has real sharing, and every simulated
     day recomputes hundreds of next-fire points. Actions are no-ops so
     the measurement isolates the probe itself. *)
  let nrules = 10_000 in
  let sim_days = 7 in
  let spec i =
    match i mod 196 with
    | k when k < 7 -> Printf.sprintf "[%d]/DAYS:during:WEEKS" (k + 1)
    | k when k < 35 -> Printf.sprintf "[%d]/DAYS:during:MONTHS" (k - 6)
    | k ->
      Printf.sprintf "[%d]/DAYS:during:WEEKS + [%d]/DAYS:during:MONTHS"
        ((k mod 7) + 1)
        ((k mod 28) + 1)
  in
  let run_probe ~domains =
    let s =
      Session.create ~epoch:epoch93
        ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
        ~cache_capacity:512 ~domains ()
    in
    for i = 1 to nrules do
      match
        Session.query s
          (Printf.sprintf "define rule r%d on calendar \"%s\" do retrieve (1)" i (spec i))
      with
      | Ok _ -> ()
      | Error e -> failwith e
    done;
    let _, t = wall (fun () -> Session.advance_days s sim_days) in
    let firings =
      List.map (fun f -> (f.Cal_rules.Manager.rule, f.Cal_rules.Manager.at)) (Session.firings s)
    in
    let batches, batched_rules = Cal_rules.Manager.parallel_stats s.Session.manager in
    (firings, t, batches, batched_rules)
  in
  let f_ser, t_probe_ser, _, _ = run_probe ~domains:1 in
  let f_par, t_probe_par, batches, batched_rules = run_probe ~domains:par_domains in
  let probe_agree = f_ser = f_par in
  Printf.printf "\n  DBCRON probe, %d rules (%d distinct calendars), %d simulated days:\n" nrules
    196 sim_days;
  Printf.printf "    serial (1 domain):  %4d firings   %s\n" (List.length f_ser)
    (time_str t_probe_ser);
  Printf.printf "    parallel (%d lanes): %4d firings   %s   (%.2fx)\n" par_domains
    (List.length f_par) (time_str t_probe_par)
    (speedup t_probe_ser t_probe_par);
  Printf.printf "    firings identical: %b   parallel batches: %d (%d rule probes)\n" probe_agree
    batches batched_rules;
  (* Part B: partitioned sequential scans. 100k rows, no usable index,
     pure arithmetic predicates — the shape the planner marks
     partitionable — compared serial vs chunked at the same plans. *)
  let nrows = 100_000 in
  let cat = Catalog.create () in
  (match Exec.run_string cat "create table trades (day chronon valid, qty int, price float)" with
  | Ok _ -> ()
  | Error e -> failwith e);
  let tbl = Catalog.table cat "trades" in
  for i = 0 to nrows - 1 do
    ignore
      (Table.insert tbl
         [|
           Value.Chronon (i + 1);
           Value.Int ((i mod 200) + 1);
           Value.Float (float_of_int (i mod 97) +. 0.5);
         |])
  done;
  let parse s = match Qparser.query s with Ok q -> q | Error e -> failwith (e ^ ": " ^ s) in
  let scan_reps = 40 in
  let scans =
    Array.init scan_reps (fun i ->
        parse
          (Printf.sprintf
             "retrieve (qty, price) from trades where qty * price > %d.0 and not (price < \
              %d.0) and (qty - 100) * (qty - 100) > %d"
             (2_000 + (i * 130)) (i mod 7) (400 + i)))
  in
  let run_scans ~domains =
    let rows_out = ref [] in
    let _, t =
      wall (fun () ->
          Array.iter
            (fun q ->
              match Exec.run cat ~domains q with
              | Exec.Rows { rows; _ } -> rows_out := rows :: !rows_out
              | _ -> ())
            scans)
    in
    (List.rev !rows_out, t)
  in
  let rows_ser, t_scan_ser = run_scans ~domains:1 in
  let rows_par, t_scan_par = run_scans ~domains:par_domains in
  let scan_agree = rows_ser = rows_par in
  Printf.printf "\n  partitioned scans, %d queries over %d rows (pure predicates, no index):\n"
    scan_reps nrows;
  Printf.printf "    serial (1 domain):  %s\n" (time_str t_scan_ser);
  Printf.printf "    parallel (%d lanes): %s   (%.2fx)\n" par_domains (time_str t_scan_par)
    (speedup t_scan_ser t_scan_par);
  Printf.printf "    row sets identical: %b   (%d result rows)\n" scan_agree
    (List.fold_left (fun n rs -> n + List.length rs) 0 rows_ser);
  print_endline "\n  claim: rule probes and pure-predicate scans shard across domains";
  print_endline "  with bit-identical results; the serial path remains the oracle and";
  print_endline "  the speedup tracks the host's usable core count.";
  if !json_mode then
    emit ~name:"E17" ~host_domains:hw ~file:"BENCH_E17.json"
      [
        ("parallel_domains", Json.Int par_domains);
        ( "dbcron_probe",
          Json.Obj
            [
              ("rules", Json.Int nrules);
              ("distinct_calendars", Json.Int 196);
              ("simulated_days", Json.Int sim_days);
              ("serial_s", Json.Float t_probe_ser);
              ("parallel_s", Json.Float t_probe_par);
              ("speedup", Json.Float (speedup t_probe_ser t_probe_par));
              ("firings", Json.Int (List.length f_ser));
              ("parallel_batches", Json.Int batches);
              ("parallel_rule_probes", Json.Int batched_rules);
              ("firings_identical", Json.Bool probe_agree);
            ] );
        ( "partitioned_scan",
          Json.Obj
            [
              ("table_rows", Json.Int nrows);
              ("queries", Json.Int scan_reps);
              ("serial_s", Json.Float t_scan_ser);
              ("parallel_s", Json.Float t_scan_par);
              ("speedup", Json.Float (speedup t_scan_ser t_scan_par));
              ("rows_identical", Json.Bool scan_agree);
            ] );
      ]

(* E18: the durability layer — what journaling every completed statement
   costs on a mixed DML + rule + advance workload, and how fast a session
   rebuilds from disk: full-journal replay vs snapshot + short tail.
   Recovery correctness is asserted with state digests (the recovered
   session must be bit-identical to the one that wrote the files). With
   --json, the measurements are also written to BENCH_E18.json. *)

let e18 () =
  header "E18 | Durability: journal overhead + snapshot/replay recovery";
  let lifespan = (Civil.make 1993 1 1, Civil.make 1994 12 31) in
  let path = Filename.temp_file "bench_e18" ".journal" in
  let path_a = Filename.temp_file "bench_e18a" ".journal" in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; path ^ ".snap"; path_a; path_a ^ ".snap" ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  (* Part A: per-record overhead, measured on the cheapest statements
     (single-row appends) where the journal's relative cost peaks. *)
  let n_over = 8_000 in
  let append_workload s =
    (match Session.query s "create table ticks (day chronon valid, qty int)" with
    | Ok _ -> ()
    | Error e -> failwith e);
    for i = 1 to n_over do
      match Session.query s (Printf.sprintf "append ticks (day = @%d, qty = %d)" ((i mod 300) + 1) i) with
      | Ok _ -> ()
      | Error e -> failwith e
    done
  in
  let s_plain = Session.create ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
  let _, t_plain = wall (fun () -> append_workload s_plain) in
  let s_a = Session.open_journaled ~path:path_a ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
  let _, t_journaled = wall (fun () -> append_workload s_a) in
  let overhead_pct = (t_journaled -. t_plain) /. t_plain *. 100.0 in
  let per_record_us = (t_journaled -. t_plain) /. float_of_int (n_over + 1) *. 1e6 in
  Printf.printf "\n  journal overhead, %d single-row appends:\n" n_over;
  Printf.printf "    plain session:     %s\n" (time_str t_plain);
  Printf.printf "    journaled session: %s   (+%.1f%%, %.1f us/record)\n" (time_str t_journaled)
    overhead_pct per_record_us;
  (* Part B: recovery. History exceeds state — the churn statements
     rewrite rows in place, so the journal holds 4x more operations than
     the final table does rows: the regime snapshots exist for. *)
  let nrows = 2_000 and nchurn = 6_000 and nrules = 50 and sim_days = 30 in
  let spec i = Printf.sprintf "[%d]/DAYS:during:WEEKS" ((i mod 7) + 1) in
  let s_j = Session.open_journaled ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
  let run q = match Session.query s_j q with Ok _ -> () | Error e -> failwith e in
  run "create table trades (day chronon valid, qty int)";
  for i = 1 to nrows do
    run (Printf.sprintf "append trades (day = @%d, qty = %d)" ((i mod 300) + 1) i)
  done;
  for i = 1 to nchurn do
    run (Printf.sprintf "replace trades (qty = %d) where trades.day = @%d" i ((i mod 300) + 1))
  done;
  for i = 1 to nrules do
    run (Printf.sprintf "define rule r%d on calendar \"%s\" do retrieve (1)" i (spec i))
  done;
  Session.advance_days s_j sim_days;
  let records = List.length (Journal.read_records path) in
  let journal_bytes =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Printf.printf
    "\n  recovery workload: %d appends + %d replaces + %d rule defs + %d simulated days\n"
    nrows nchurn nrules sim_days;
  Printf.printf "    journal: %d records, %d KiB\n" records (journal_bytes / 1024);
  (* Part B: rebuild the session from disk — full replay, then snapshot
     plus a short journal tail. *)
  let live = Session.state_digest s_j in
  let r1, t_replay =
    wall (fun () -> Session.recover ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 ())
  in
  let replay_ok = Session.state_digest r1 = live in
  (* [recover] supersedes the on-disk files: from here the recovered
     session owns the path, so the snapshot phase writes through it. *)
  Session.snapshot r1;
  (match Session.query r1 "append trades (day = @1, qty = 0)" with
  | Ok _ -> ()
  | Error e -> failwith e);
  let live_tail = Session.state_digest r1 in
  let r2, t_snap =
    wall (fun () -> Session.recover ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 ())
  in
  let snap_ok = Session.state_digest r2 = live_tail in
  Printf.printf "\n  recovery to a bit-identical session:\n";
  Printf.printf "    full journal replay (%d records): %s   (%.0f records/s)   digest ok: %b\n"
    records (time_str t_replay)
    (float_of_int records /. t_replay)
    replay_ok;
  Printf.printf "    snapshot + 1-record tail:         %s   (%.1fx faster)   digest ok: %b\n"
    (time_str t_snap) (speedup t_replay t_snap) snap_ok;
  print_endline "\n  claim: durability costs a bounded per-statement journal append, and";
  print_endline "  snapshots turn recovery from O(history) replay into O(state) load";
  print_endline "  plus the journal tail written since.";
  if !json_mode then
    emit ~name:"E18" ~host_domains:(Cal_parallel.Pool.hardware_domains ())
      ~file:"BENCH_E18.json"
      [
        ( "workload",
          Json.Obj
            [
              ("rows", Json.Int nrows);
              ("churn_statements", Json.Int nchurn);
              ("rules", Json.Int nrules);
              ("simulated_days", Json.Int sim_days);
              ("journal_records", Json.Int records);
              ("journal_bytes", Json.Int journal_bytes);
            ] );
        ( "journal_overhead",
          Json.Obj
            [
              ("appends", Json.Int n_over);
              ("plain_s", Json.Float t_plain);
              ("journaled_s", Json.Float t_journaled);
              ("overhead_pct", Json.Float overhead_pct);
              ("per_record_us", Json.Float per_record_us);
            ] );
        ( "recovery",
          Json.Obj
            [
              ("replay_s", Json.Float t_replay);
              ("replay_records_per_s", Json.Float (float_of_int records /. t_replay));
              ("replay_digest_ok", Json.Bool replay_ok);
              ("snapshot_tail_s", Json.Float t_snap);
              ("snapshot_speedup", Json.Float (speedup t_replay t_snap));
              ("snapshot_digest_ok", Json.Bool snap_ok);
            ] );
      ]

(* E19: closed-form periodic compilation vs the streamed and cached
   next-fire paths. The E15 DBCRON rule mix runs one simulated year
   under all three probe strategies and the firing logs must be
   byte-identical; single probes then compare the lifespan-bounded
   searches against pure periodic arithmetic, including a probe beyond
   the session lifespan that only the closed form can answer. With
   --json, the measurements are also written to BENCH_E19.json. *)

let e19 () =
  header "E19 | Closed-form periodic probes vs streamed and cached next-fire";
  let specs =
    List.init 7 (fun i -> Printf.sprintf "[%d]/DAYS:during:WEEKS" (i + 1))
    @ List.map (Printf.sprintf "[%d]/DAYS:during:MONTHS") [ 1; 10; 20 ]
    @ [ "[1]/DAYS:during:YEARS"; "[1]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)" ]
  in
  let run_sim strategy =
    let s =
      Session.create ~epoch:epoch93
        ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
        ~probe_strategy:strategy ~cache_capacity:512 ()
    in
    ignore (Session.query_exn s "create table log (msg text)");
    List.iteri
      (fun i spec ->
        match
          Session.query s
            (Printf.sprintf "define rule r%d on calendar \"%s\" do append log (msg = 'r%d')" i
               spec i)
        with
        | Ok _ -> ()
        | Error e -> failwith e)
      specs;
    let _, t = wall (fun () -> Session.advance_days s 365) in
    let firings =
      List.map (fun f -> (f.Cal_rules.Manager.rule, f.Cal_rules.Manager.at)) (Session.firings s)
    in
    let closed_form = Cal_rules.Manager.periodic_rules s.Session.manager in
    let cron_fired = Cal_rules.Manager.dbcron_fired s.Session.manager in
    (firings, t, closed_form, cron_fired)
  in
  let f_mat, t_mat, _, _ = run_sim `Materialize in
  let f_str, t_str, _, _ = run_sim `Stream in
  let f_per, t_per, n_closed, n_cron = run_sim `Periodic in
  let identical = f_mat = f_str && f_str = f_per in
  let cron_ok = n_cron = List.length f_per in
  Printf.printf "  DBCRON, %d rules, one simulated year (cache 512):\n\n" (List.length specs);
  Printf.printf "    %-12s %4d firings   %s\n" "materialize:" (List.length f_mat)
    (time_str t_mat);
  Printf.printf "    %-12s %4d firings   %s\n" "stream:" (List.length f_str) (time_str t_str);
  Printf.printf "    %-12s %4d firings   %s   (%d/%d rules closed-form)\n" "periodic:"
    (List.length f_per) (time_str t_per) n_closed (List.length specs);
  Printf.printf "    firings identical: %b   heap pops match firing log: %b\n" identical cron_ok;
  Printf.printf "    year speedup: %.1fx vs materialize, %.1fx vs stream\n" (speedup t_mat t_per)
    (speedup t_str t_per);
  (* Single next-fire probe latency, mid-lifespan, 30-year session. The
     probe rule is the 3rd-Friday-monthly shape from E15, which the
     translatability gate compiles to a closed periodic form. *)
  let s30 = session_years ~cache_capacity:512 30 in
  let ctx = s30.Session.ctx in
  let probe_expr = parse_expr "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS" in
  (match Cal_rules.Next_fire.resolve ctx probe_expr `Auto with
  | `Periodic -> ()
  | `Stream | `Materialize -> failwith "E19: probe expression did not compile to periodic");
  let after = 5 * 365 * 86400 in
  let probe strategy () =
    ignore (Cal_rules.Next_fire.next ctx probe_expr ~after ~strategy ())
  in
  let t_next_mat = median_wall ~repeat:5 (probe `Materialize) in
  let t_next_str = median_wall ~repeat:5 (probe `Stream) in
  let t_next_per = median_wall ~repeat:5 (probe `Periodic) in
  let answer strategy = Cal_rules.Next_fire.next ctx probe_expr ~after ~strategy () in
  let probes_agree =
    answer `Materialize = answer `Stream
    && answer `Stream = answer `Periodic
    && answer `Periodic <> None
  in
  Printf.printf "\n  single next-fire probe (3rd Friday monthly, 30y session):\n";
  Printf.printf "    materialize: %s   stream: %s   periodic: %s\n" (time_str t_next_mat)
    (time_str t_next_str) (time_str t_next_per);
  Printf.printf "    answers agree: %b   periodic speedup: %.1fx vs materialize, %.1fx vs stream\n"
    probes_agree (speedup t_next_mat t_next_per)
    (speedup t_next_str t_next_per);
  (* Beyond the lifespan: the bounded paths go dormant (None); the
     closed form keeps answering by pure arithmetic. *)
  let far = 50 * 365 * 86400 in
  let far_mat = Cal_rules.Next_fire.next ctx probe_expr ~after:far ~strategy:`Materialize () in
  let far_str = Cal_rules.Next_fire.next ctx probe_expr ~after:far ~strategy:`Stream () in
  let far_per = Cal_rules.Next_fire.next ctx probe_expr ~after:far ~strategy:`Periodic () in
  let horizon_ok = far_mat = None && far_str = None && far_per <> None in
  Printf.printf "\n  probe at year 50 (lifespan ends at year 30):\n";
  Printf.printf "    materialize: %s   stream: %s   periodic: %s\n"
    (match far_mat with None -> "dormant" | Some _ -> "fires")
    (match far_str with None -> "dormant" | Some _ -> "fires")
    (match far_per with
    | None -> "dormant"
    | Some at -> Printf.sprintf "fires at day %d" (at / 86400));
  print_endline "\n  claim: translatable rules compile to a minimal periodic normal form,";
  print_endline "  so next-fire probes become O(log spans) arithmetic with no window";
  print_endline "  materialization, no cache, and no lifespan bound.";
  if !json_mode then begin
    let sim_obj firings t =
      Json.Obj [ ("wall_s", Json.Float t); ("firings", Json.Int (List.length firings)) ]
    in
    emit ~name:"E19" ~host_domains:(Cal_parallel.Pool.hardware_domains ())
      ~file:"BENCH_E19.json"
      [
        ( "dbcron",
          Json.Obj
            [
              ("rules", Json.Int (List.length specs));
              ("closed_form_rules", Json.Int n_closed);
              ("simulated_days", Json.Int 365);
              ("materialize", sim_obj f_mat t_mat);
              ("stream", sim_obj f_str t_str);
              ("periodic", sim_obj f_per t_per);
              ("heap_pops_match_log", Json.Bool cron_ok);
              ("speedup_vs_materialize", Json.Float (speedup t_mat t_per));
              ("speedup_vs_stream", Json.Float (speedup t_str t_per));
            ] );
        ( "next_probe",
          Json.Obj
            [
              ("materialize_s", Json.Float t_next_mat);
              ("stream_s", Json.Float t_next_str);
              ("periodic_s", Json.Float t_next_per);
              ("answers_agree", Json.Bool probes_agree);
              ("speedup_vs_materialize", Json.Float (speedup t_next_mat t_next_per));
              ("speedup_vs_stream", Json.Float (speedup t_next_str t_next_per));
            ] );
        ( "beyond_lifespan",
          Json.Obj
            [
              ("bounded_dormant", Json.Bool (far_mat = None && far_str = None));
              ("periodic_fires", Json.Bool (far_per <> None));
            ] );
        ("firings_identical", Json.Bool identical);
        ("horizon_unbounded", Json.Bool horizon_ok);
      ]
  end

(* E20: the sharded DBCRON. Three claims, three parts. (a) The
   hierarchical timer wheel holds a million pending triggers and beats
   the binary heap on insert + drain because filing is digit arithmetic
   and popping never sifts. (b) Signature-sharded rule scheduling with
   same-tick coalescing is observationally invisible: every
   {heap,wheel} x {1,2,4}-shard configuration of a simulated year
   produces the byte-identical firing log. (c) A segmented journal
   recovers to the bit-identical session from either layout; with more
   than one core the segments decode in parallel (a 1-core container
   time-slices them, so the JSON records determinism, not speedup).
   With --json, measurements land in BENCH_E20.json. *)

let e20 () =
  header "E20 | Sharded DBCRON: timer wheel, shard matrix, segmented recovery";
  let hw = Cal_parallel.Pool.hardware_domains () in
  Printf.printf "  host: %d usable domain(s)%s\n" hw
    (if hw = 1 then " (segment decode is time-sliced: expect ~1x, identical bytes)" else "");
  (* Part A: pending-structure microbench. A million triggers with
     xorshift-spread instants over 30 days, inserted one by one, then
     drained in hourly probe waves — the DBCRON access pattern. An
     order-sensitive checksum proves the two structures pop the same
     sequence. *)
  let n_entries = 1_000_000 in
  let span = 30 * 86400 in
  let instants =
    let state = ref 0x2545F4914F6CDD1D in
    Array.init n_entries (fun _ ->
        let x = !state in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 7) in
        let x = x lxor (x lsl 17) in
        state := x;
        x land max_int mod span)
  in
  (* Fold a wave of pops into an order-sensitive checksum. *)
  let drain_wave acc pops =
    List.fold_left (fun acc (at, v) -> ((acc * 131) + at + v) land max_int) acc pops
  in
  let run_wheel () =
    (* Sized like DBCRON sizes it: the horizon covers the working set,
       so the levels span the whole 30 days. *)
    let w = Cal_rules.Timer_wheel.create ~horizon:span () in
    let _, t_ins = wall (fun () -> Array.iter (fun at -> Cal_rules.Timer_wheel.push w at at) instants) in
    let chk = ref 0 and bound = ref 0 in
    let _, t_drain =
      wall (fun () ->
          while not (Cal_rules.Timer_wheel.is_empty w) do
            bound := !bound + 3600;
            chk := drain_wave !chk (Cal_rules.Timer_wheel.pop_due w !bound)
          done)
    in
    (t_ins, t_drain, !chk)
  in
  let run_heap () =
    let h = Cal_rules.Min_heap.create () in
    let _, t_ins = wall (fun () -> Array.iter (fun at -> Cal_rules.Min_heap.push h at at) instants) in
    let chk = ref 0 and bound = ref 0 in
    let _, t_drain =
      wall (fun () ->
          while not (Cal_rules.Min_heap.is_empty h) do
            bound := !bound + 3600;
            chk := drain_wave !chk (Cal_rules.Min_heap.pop_due h !bound)
          done)
    in
    (t_ins, t_drain, !chk)
  in
  let h_ins, h_drain, h_chk = run_heap () in
  let w_ins, w_drain, w_chk = run_wheel () in
  let pops_identical = h_chk = w_chk in
  let wheel_speedup = (h_ins +. h_drain) /. (w_ins +. w_drain) in
  Printf.printf "\n  pending structure, %d triggers over %d days, hourly drain waves:\n"
    n_entries (span / 86400);
  Printf.printf "    min-heap:    insert %s   drain %s\n" (time_str h_ins) (time_str h_drain);
  Printf.printf "    timer wheel: insert %s   drain %s   (%.1fx total)\n" (time_str w_ins)
    (time_str w_drain) wheel_speedup;
  Printf.printf "    pop sequences identical: %b\n" pops_identical;
  (* Part B: the shard matrix. One simulated year of a mixed rule set —
     weekday, monthly and composite signatures, several rules per
     signature so same-tick coalescing has batches to build — run under
     every pending structure and shard count. The firing logs must be
     byte-identical to the serial heap baseline. *)
  let nrules = 60 in
  let spec i =
    match i mod 12 with
    | k when k < 7 -> Printf.sprintf "[%d]/DAYS:during:WEEKS" (k + 1)
    | 7 -> "[1]/DAYS:during:MONTHS"
    | 8 -> "[10]/DAYS:during:MONTHS"
    | 9 -> "[20]/DAYS:during:MONTHS"
    | 10 -> "[1]/DAYS:during:YEARS"
    | _ -> "[1]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)"
  in
  let run_matrix ~pending ~shards =
    let s =
      Session.create ~epoch:epoch93
        ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
        ~cache_capacity:512 ~domains:shards ~shards ~pending ()
    in
    ignore (Session.query_exn s "create table log (msg text)");
    for i = 1 to nrules do
      match
        Session.query s
          (Printf.sprintf "define rule r%d on calendar \"%s\" do append log (msg = 'tick')" i
             (spec i))
      with
      | Ok _ -> ()
      | Error e -> failwith e
    done;
    let _, t = wall (fun () -> Session.advance_days s 365) in
    let firings =
      List.map (fun f -> (f.Cal_rules.Manager.rule, f.Cal_rules.Manager.at)) (Session.firings s)
    in
    let batches, batched = Cal_rules.Manager.coalesce_stats s.Session.manager in
    (firings, t, batches, batched)
  in
  let matrix =
    List.concat_map
      (fun pending -> List.map (fun shards -> (pending, shards)) [ 1; 2; 4 ])
      [ `Heap; `Wheel ]
  in
  let baseline, t_base, _, _ = run_matrix ~pending:`Heap ~shards:1 in
  Printf.printf "\n  shard matrix, %d rules (12 signatures), one simulated year:\n" nrules;
  Printf.printf "    %-18s %4d firings   %s   (baseline)\n" "heap, 1 shard:"
    (List.length baseline) (time_str t_base);
  let results =
    List.map
      (fun (pending, shards) ->
        let firings, t, batches, batched = run_matrix ~pending ~shards in
        let label =
          Printf.sprintf "%s, %d shard%s:"
            (match pending with `Heap -> "heap" | `Wheel -> "wheel")
            shards
            (if shards = 1 then "" else "s")
        in
        Printf.printf "    %-18s %4d firings   %s   identical: %b   coalesced: %d/%d\n" label
          (List.length firings) (time_str t) (firings = baseline) batches batched;
        (pending, shards, t, firings = baseline, batches, batched))
      matrix
  in
  let firings_identical = List.for_all (fun (_, _, _, ok, _, _) -> ok) results in
  let coal_batches, coal_fired =
    List.fold_left
      (fun (b, f) (_, _, _, _, batches, batched) -> (max b batches, max f batched))
      (0, 0) results
  in
  (* Part C: segmented recovery. The same journaled workload written
     under the single-file and the 4-segment layout must recover to the
     same state digest with the same record list; the segmented decode
     spreads across the recovering session's pool lanes. *)
  let path = Filename.temp_file "bench_e20" ".journal" in
  let cleanup () =
    let segs =
      List.concat_map
        (fun k ->
          let s = Printf.sprintf "%s.seg%d" path k in
          [ s; s ^ ".tmp" ])
        (List.init 8 Fun.id)
    in
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      ([ path; path ^ ".snap"; path ^ ".tmp"; path ^ ".snap.tmp";
         path ^ ".manifest"; path ^ ".manifest.tmp" ]
      @ segs)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let lifespan = (Civil.make 1993 1 1, Civil.make 1994 12 31) in
  let nrows = 2_000 and nchurn = 4_000 and nrules_j = 30 and sim_days = 14 in
  let build ~segments =
    let s =
      Session.open_journaled ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 ~segments ()
    in
    let run q = match Session.query s q with Ok _ -> () | Error e -> failwith e in
    run "create table trades (day chronon valid, qty int)";
    for i = 1 to nrows do
      run (Printf.sprintf "append trades (day = @%d, qty = %d)" ((i mod 300) + 1) i)
    done;
    for i = 1 to nchurn do
      run (Printf.sprintf "replace trades (qty = %d) where trades.day = @%d" i ((i mod 300) + 1))
    done;
    for i = 1 to nrules_j do
      run
        (Printf.sprintf "define rule j%d on calendar \"[%d]/DAYS:during:WEEKS\" do retrieve (1)" i
           ((i mod 7) + 1))
    done;
    Session.advance_days s sim_days;
    (Session.state_digest s, Journal.read_records path)
  in
  let recover_timed ~domains =
    wall (fun () -> Session.recover ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 ~domains ())
  in
  let live1, records1 = build ~segments:1 in
  let r1, t_serial = recover_timed ~domains:1 in
  let serial_ok = Session.state_digest r1 = live1 in
  let live4, records4 = build ~segments:4 in
  let r4, t_seg = recover_timed ~domains:4 in
  let seg_ok = Session.state_digest r4 = live4 in
  let records_identical = records1 = records4 in
  let digests_identical = live1 = live4 in
  Printf.printf "\n  segmented recovery, %d-record journal (%d appends + %d replaces + %d rules):\n"
    (List.length records1) nrows nchurn nrules_j;
  Printf.printf "    single file, serial decode:  %s   digest ok: %b\n" (time_str t_serial)
    serial_ok;
  Printf.printf "    4 segments, %d-lane decode:   %s   (%.2fx)   digest ok: %b\n"
    (min 4 hw) (time_str t_seg) (speedup t_serial t_seg) seg_ok;
  Printf.printf "    layouts byte-equivalent: records %b, recovered digests %b\n"
    records_identical digests_identical;
  print_endline "\n  claim: the wheel files and drains a million triggers in digit";
  print_endline "  arithmetic; sharding, coalescing and journal segmentation are all";
  print_endline "  observationally invisible — the serial heap run stays the oracle.";
  if !json_mode then
    emit ~name:"E20" ~host_domains:hw ~file:"BENCH_E20.json"
      [
        ( "pending_micro",
          Json.Obj
            [
              ("entries", Json.Int n_entries);
              ("heap_insert_s", Json.Float h_ins);
              ("heap_drain_s", Json.Float h_drain);
              ("wheel_insert_s", Json.Float w_ins);
              ("wheel_drain_s", Json.Float w_drain);
              ("wheel_speedup", Json.Float wheel_speedup);
              ("pop_sequences_identical", Json.Bool pops_identical);
            ] );
        ( "shard_matrix",
          Json.Obj
            [
              ("rules", Json.Int nrules);
              ("simulated_days", Json.Int 365);
              ("firings", Json.Int (List.length baseline));
              ("baseline_s", Json.Float t_base);
              ("coalesced_batches", Json.Int coal_batches);
              ("coalesced_firings", Json.Int coal_fired);
              ( "configs",
                Json.List
                  (List.map
                     (fun (pending, shards, t, ok, _, _) ->
                       Json.Obj
                         [
                           ( "pending",
                             Json.Str (match pending with `Heap -> "heap" | `Wheel -> "wheel") );
                           ("shards", Json.Int shards);
                           ("wall_s", Json.Float t);
                           ("identical", Json.Bool ok);
                         ])
                     results) );
            ] );
        ( "segmented_recovery",
          Json.Obj
            [
              ("journal_records", Json.Int (List.length records1));
              ("segments", Json.Int 4);
              ("serial_s", Json.Float t_serial);
              ("segmented_s", Json.Float t_seg);
              ("speedup", Json.Float (speedup t_serial t_seg));
              ("serial_digest_ok", Json.Bool serial_ok);
              ("segmented_digest_ok", Json.Bool seg_ok);
              ("records_identical", Json.Bool records_identical);
              ("digests_identical", Json.Bool digests_identical);
            ] );
        ("firings_identical", Json.Bool (firings_identical && pops_identical));
      ]

(* E21: group commit — the first records/sec durability axis. Part A
   measures raw journal append throughput: Sync_each vs Group {8,64,256}
   windows, on the single-file and 4-segment layouts, with flush counts
   showing the write+flush amortization a window buys. Part B reruns
   E18's session-level overhead probe (single-row appends, the regime
   where the durability tax peaks) under Sync_each vs Group 64. Part C
   asserts the recovery contract the speedup is not allowed to weaken:
   one mixed workload, committed and recovered under every policy and
   both layouts, must land on byte-identical state digests. With --json,
   measurements land in BENCH_E21.json. *)

let e21 () =
  header "E21 | Group commit: batched durable appends, records/sec axis";
  let lifespan = (Civil.make 1993 1 1, Civil.make 1994 12 31) in
  let path = Filename.temp_file "bench_e21" ".journal" in
  let aux p =
    [ p; p ^ ".snap"; p ^ ".tmp"; p ^ ".snap.tmp"; p ^ ".manifest"; p ^ ".manifest.tmp" ]
    @ List.concat_map
        (fun k ->
          let s = p ^ ".seg" ^ string_of_int k in
          [ s; s ^ ".tmp" ])
        (List.init 8 Fun.id)
  in
  let fresh () = List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (aux path) in
  Fun.protect ~finally:fresh @@ fun () ->
  (* Part A: raw journal throughput, policy x layout. *)
  let n_raw = 20_000 in
  let payload i = Printf.sprintf "q append ticks (day = @%d, qty = %d)" ((i mod 300) + 1) i in
  let policies =
    [ Journal.Sync_each; Journal.Group 8; Journal.Group 64; Journal.Group 256 ]
  in
  let raw_run policy segments =
    fresh ();
    let j = Journal.open_append ~policy ~segments path in
    let (), t =
      wall (fun () ->
          for i = 1 to n_raw do
            Journal.append j (payload i)
          done;
          Journal.close j)
    in
    (t, Journal.flushes j)
  in
  Printf.printf "\n  raw journal appends, %d records (amortization = records/flushes):\n" n_raw;
  Printf.printf "    %-12s %-9s %10s %12s %14s %9s %7s\n" "policy" "layout" "time" "us/record"
    "records/s" "flushes" "amort";
  let matrix =
    List.concat_map
      (fun segments ->
        List.map
          (fun policy ->
            let t, flushes = raw_run policy segments in
            let per_us = t /. float_of_int n_raw *. 1e6 in
            let rps = float_of_int n_raw /. t in
            let amort = float_of_int n_raw /. float_of_int (max 1 flushes) in
            Printf.printf "    %-12s %-9s %10s %12.2f %14.0f %9d %6.0fx\n"
              (Journal.policy_name policy)
              (if segments = 1 then "1 file" else Printf.sprintf "%d segs" segments)
              (time_str t) per_us rps flushes amort;
            (policy, segments, t, per_us, rps, flushes))
          policies)
      [ 1; 4 ]
  in
  let raw_time policy segments =
    let _, _, t, _, _, _ =
      List.find (fun (p, s, _, _, _, _) -> p = policy && s = segments) matrix
    in
    t
  in
  let raw_flushes policy segments =
    let _, _, _, _, _, f =
      List.find (fun (p, s, _, _, _, _) -> p = policy && s = segments) matrix
    in
    f
  in
  (* Part B: the E18 session-level probe — plain vs journaled, now with
     the journaled side under both ends of the policy axis. *)
  let n_sess = 6_000 in
  let append_workload s =
    (match Session.query s "create table ticks (day chronon valid, qty int)" with
    | Ok _ -> ()
    | Error e -> failwith e);
    for i = 1 to n_sess do
      match
        Session.query s (Printf.sprintf "append ticks (day = @%d, qty = %d)" ((i mod 300) + 1) i)
      with
      | Ok _ -> ()
      | Error e -> failwith e
    done;
    Session.commit s
  in
  let session_run policy =
    fresh ();
    let s =
      Session.open_journaled ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 ?policy ()
    in
    let (), t = wall (fun () -> append_workload s) in
    t
  in
  let s_plain = Session.create ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
  let (), t_plain = wall (fun () -> append_workload s_plain) in
  let t_sync = session_run (Some Journal.Sync_each) in
  let t_g64 = session_run (Some (Journal.Group 64)) in
  let per_record base t = (t -. base) /. float_of_int (n_sess + 1) *. 1e6 in
  Printf.printf "\n  session-level durability tax, %d single-row appends:\n" n_sess;
  Printf.printf "    plain session:        %s\n" (time_str t_plain);
  Printf.printf "    journaled, sync_each: %s   (+%.1f%%, %.2f us/record)\n" (time_str t_sync)
    ((t_sync -. t_plain) /. t_plain *. 100.0)
    (per_record t_plain t_sync);
  Printf.printf "    journaled, group 64:  %s   (+%.1f%%, %.2f us/record)\n" (time_str t_g64)
    ((t_g64 -. t_plain) /. t_plain *. 100.0)
    (per_record t_plain t_g64);
  (* Part C: the amortization must not weaken recovery. One mixed
     workload (DML, rules, advances, an explicit commit) runs under
     every policy on both layouts; every recovered digest must be
     byte-identical to its live session's and to every other config's. *)
  let spec i = Printf.sprintf "[%d]/DAYS:during:WEEKS" ((i mod 7) + 1) in
  let mixed_workload s =
    let run q = match Session.query s q with Ok _ -> () | Error e -> failwith e in
    run "create table trades (day chronon valid, qty int)";
    for i = 1 to 300 do
      run (Printf.sprintf "append trades (day = @%d, qty = %d)" ((i mod 120) + 1) i)
    done;
    for i = 1 to 8 do
      run (Printf.sprintf "define rule r%d on calendar \"%s\" do retrieve (1)" i (spec i))
    done;
    Session.advance_days s 10;
    Session.commit s
  in
  let configs =
    List.concat_map
      (fun segments -> List.map (fun p -> (p, segments)) policies @ [ (Journal.Manual, segments) ])
      [ 1; 4 ]
  in
  let digests =
    List.map
      (fun (policy, segments) ->
        fresh ();
        let s =
          Session.open_journaled ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 ~segments
            ~policy ()
        in
        mixed_workload s;
        let live = Session.state_digest s in
        let r = Session.recover ~path ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
        (Journal.policy_name policy, segments, live, Session.state_digest r))
      configs
  in
  let reference = match digests with (_, _, live, _) :: _ -> live | [] -> "" in
  let digest_identical =
    List.for_all (fun (_, _, live, rec_) -> live = reference && rec_ = reference) digests
  in
  Printf.printf "\n  recovery digest identity over %d policy x layout configs: %b\n"
    (List.length digests) digest_identical;
  let g64_flushes = raw_flushes (Journal.Group 64) 1 in
  let g64_lt_records = g64_flushes < n_raw in
  let g64_faster = raw_time (Journal.Group 64) 1 < raw_time Journal.Sync_each 1 in
  Printf.printf "    group 64: %d flushes for %d records (%s), %s than sync_each\n" g64_flushes
    n_raw
    (if g64_lt_records then "amortized" else "NOT amortized")
    (if g64_faster then "faster" else "NOT faster");
  print_endline "\n  claim: group commit amortizes the write+flush per record into one";
  print_endline "  per window, buying records/sec without weakening the recovery";
  print_endline "  contract: torn groups drop whole, committed state is byte-identical";
  print_endline "  across every policy and layout.";
  if !json_mode then
    emit ~name:"E21" ~host_domains:(Cal_parallel.Pool.hardware_domains ())
      ~file:"BENCH_E21.json"
      [
        ("raw_records", Json.Int n_raw);
        ( "raw_append",
          Json.List
            (List.map
               (fun (policy, segments, t, per_us, rps, flushes) ->
                 Json.Obj
                   [
                     ("policy", Json.Str (Journal.policy_name policy));
                     ("segments", Json.Int segments);
                     ("s", Json.Float t);
                     ("per_record_us", Json.Float per_us);
                     ("records_per_s", Json.Float rps);
                     ("flushes", Json.Int flushes);
                   ])
               matrix) );
        ( "session_overhead",
          Json.Obj
            [
              ("appends", Json.Int n_sess);
              ("plain_s", Json.Float t_plain);
              ("sync_each_s", Json.Float t_sync);
              ("group64_s", Json.Float t_g64);
              ("sync_each_per_record_us", Json.Float (per_record t_plain t_sync));
              ("group64_per_record_us", Json.Float (per_record t_plain t_g64));
            ] );
        ( "claims",
          Json.Obj
            [
              ("recovery_digest_identical", Json.Bool digest_identical);
              ("group64_flushes_lt_records", Json.Bool g64_lt_records);
              ("group64_faster_than_sync", Json.Bool g64_faster);
            ] );
      ]

(* E22: the served read path — snapshot-isolated parallel reads and the
   multiplexed server front-end, in requests/sec. Part A fans read-only
   query batches across the domain pool against one frozen snapshot
   (domains 1/2/4; row sets must be identical to the serial run). Part B
   runs writer commit groups against concurrent snapshot readers in
   separate domains: every state a reader observes must hash to some
   commit-group prefix of the serial oracle — the commit-group-atomicity
   witness. Part C serves a mixed read/write workload to N socket
   clients under group windows {1, 64}, then recovers the journal and
   asserts the recovered digest matches the served store's. On a 1-core
   host the domains time-slice (expect ~1x; the JSON records
   host_domains). With --json, measurements land in BENCH_E22.json. *)

module Store = Cal_server.Store

let e22 () =
  header "E22 | Served reads: snapshot isolation, parallel readers, socket front-end";
  let hw = Cal_parallel.Pool.hardware_domains () in
  Printf.printf "  host: %d usable domain(s)%s\n" hw
    (if hw = 1 then " (parallel axes time-slice: expect ~1x, identical results)" else "");
  let lifespan = (Civil.make 1993 1 1, Civil.make 1994 12 31) in
  (* Part A: read-only scaling. One frozen snapshot, a batch of pure
     retrieves fanned across the pool — readers share nothing but the
     immutable snapshot, so throughput should track the lane count. *)
  let nrows = 30_000 in
  let s_a = Session.create ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
  (match Session.query s_a "create table trades (day chronon valid, qty int, price float)" with
  | Ok _ -> ()
  | Error e -> failwith e);
  let tbl = Catalog.table s_a.Session.catalog "trades" in
  for i = 0 to nrows - 1 do
    ignore
      (Table.insert tbl
         [|
           Value.Chronon ((i mod 700) + 1);
           Value.Int ((i mod 200) + 1);
           Value.Float (float_of_int (i mod 97) +. 0.5);
         |])
  done;
  let store_a = Store.of_session s_a in
  let n_req = 600 in
  let requests =
    Array.init n_req (fun i ->
        Printf.sprintf
          "retrieve (qty, price) from trades where qty * price > %d.0 and not (price < %d.0)"
          (3_000 + (i * 37 mod 9_000))
          (i mod 7))
  in
  Cal_parallel.Pool.ensure_default_domains (min 4 (max hw 4));
  let run_reads ~domains =
    let results = ref [||] in
    let t = median_wall ~repeat:3 (fun () -> results := Store.read_batch ~domains store_a requests) in
    (t, !results)
  in
  let _, r1 = run_reads ~domains:1 in
  Printf.printf "\n  read-only batch, %d pure retrieves over %d rows, one snapshot:\n" n_req nrows;
  let axes_read =
    List.map
      (fun domains ->
        let t, r = run_reads ~domains in
        let identical = r = r1 in
        Printf.printf "    %d domain(s): %s   %7.0f requests/s   identical: %b\n" domains
          (time_str t)
          (float_of_int n_req /. t)
          identical;
        (domains, t, identical))
      [ 1; 2; 4 ]
  in
  let reads_identical = List.for_all (fun (_, _, ok) -> ok) axes_read in
  (* Part B: commit-group atomicity under concurrent readers. A writer
     applies W batches (one commit group each, a publish per group);
     reader domains spin grabbing the latest snapshot and hashing it.
     Every hash a reader ever observes must equal some prefix digest of
     the serial oracle — never a state between two groups. *)
  let s_b = Session.create ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
  (match Session.query s_b "create table ledger (day chronon valid, qty int)" with
  | Ok _ -> ()
  | Error e -> failwith e);
  let store_b = Store.of_session s_b in
  let n_batches = 400 and batch_stmts = 4 in
  let batch_of k =
    List.init batch_stmts (fun j ->
        Store.Query
          (Printf.sprintf "append ledger (day = @%d, qty = %d)"
             ((((k * batch_stmts) + j) mod 600) + 1)
             ((k * batch_stmts) + j)))
  in
  let stop_flag = Atomic.make false in
  let reader () =
    let seen = ref [] in
    let iters = ref 0 in
    while not (Atomic.get stop_flag) do
      incr iters;
      let snap = Store.snapshot store_b in
      seen := (Catalog.epoch snap, Store.catalog_digest snap) :: !seen
    done;
    (!iters, !seen)
  in
  let n_readers = 2 in
  let readers = List.init n_readers (fun _ -> Domain.spawn reader) in
  let (), t_write =
    wall (fun () ->
        for k = 1 to n_batches do
          ignore (Store.write store_b (batch_of k))
        done)
  in
  Atomic.set stop_flag true;
  let observations = List.map Domain.join readers in
  (* Serial oracle: the same batches on a fresh session, one digest per
     commit-group prefix (including the empty prefix). *)
  let oracle = Session.create ~epoch:epoch93 ~lifespan ~cache_capacity:512 () in
  (match Session.query oracle "create table ledger (day chronon valid, qty int)" with
  | Ok _ -> ()
  | Error e -> failwith e);
  let prefixes = Hashtbl.create (n_batches + 1) in
  Hashtbl.replace prefixes (Store.catalog_digest oracle.Session.catalog) ();
  for k = 1 to n_batches do
    List.iter
      (fun stmt ->
        match stmt with
        | Store.Query q -> (
          match Session.query oracle q with Ok _ -> () | Error e -> failwith e)
        | Store.Advance d -> Session.advance_days oracle d)
      (batch_of k);
    Hashtbl.replace prefixes (Store.catalog_digest oracle.Session.catalog) ()
  done;
  let total_obs = List.fold_left (fun n (iters, _) -> n + iters) 0 observations in
  let distinct_epochs =
    let set = Hashtbl.create 64 in
    List.iter (fun (_, seen) -> List.iter (fun (e, _) -> Hashtbl.replace set e ()) seen)
      observations;
    Hashtbl.length set
  in
  let atomic_ok =
    List.for_all
      (fun (_, seen) -> List.for_all (fun (_, d) -> Hashtbl.mem prefixes d) seen)
      observations
  in
  Printf.printf
    "\n  snapshot atomicity: %d commit groups vs %d reader domain(s), %d observations:\n"
    n_batches n_readers total_obs;
  Printf.printf "    writer wall: %s   distinct epochs observed: %d\n" (time_str t_write)
    distinct_epochs;
  Printf.printf "    every observed state = some commit-group prefix: %b\n" atomic_ok;
  (* Part C: the socket front-end under a mixed workload, group window 1
     (sync each) vs 64, with the recovery contract asserted per policy. *)
  let n_clients = 4 and reqs_per_client = 120 in
  let sock = Filename.temp_file "bench_e22" ".sock" in
  let jpath = Filename.temp_file "bench_e22" ".journal" in
  let aux p =
    [ p; p ^ ".snap"; p ^ ".tmp"; p ^ ".snap.tmp"; p ^ ".manifest"; p ^ ".manifest.tmp" ]
  in
  let cleanup () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (sock :: aux jpath)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let run_served ~policy ~window_label =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (sock :: aux jpath);
    let session =
      Session.open_journaled ~path:jpath ~epoch:epoch93 ~lifespan ~cache_capacity:512 ~policy ()
    in
    let store = Store.of_session session in
    (match Store.write store [ Store.Query "create table trades (day chronon valid, qty int)" ] with
    | [ Ok _ ] -> ()
    | _ -> failwith "E22: create failed");
    let server = Cal_server.Server.start store (Unix.ADDR_UNIX sock) in
    let client_thread c =
      let cl = Cal_server.Client.connect (Unix.ADDR_UNIX sock) in
      for i = 1 to reqs_per_client do
        let req =
          if i mod 8 = 0 then
            Printf.sprintf "append trades (day = @%d, qty = %d); append trades (day = @%d, qty = %d)"
              ((i mod 300) + 1)
              ((c * 1000) + i)
              (((i + 7) mod 300) + 1)
              ((c * 1000) + i + 1)
          else Printf.sprintf "retrieve (qty) from trades where qty > %d" ((i * 91) mod 4000)
        in
        match Cal_server.Client.request cl req with
        | Ok _ -> ()
        | Error e -> failwith ("E22 client: " ^ e)
      done;
      Cal_server.Client.close cl
    in
    let (), t =
      wall (fun () ->
          let threads = List.init n_clients (fun c -> Thread.create client_thread c) in
          List.iter Thread.join threads)
    in
    let live_digest = Store.digest store in
    Cal_server.Server.stop server;
    Session.commit session;
    let recovered =
      Session.recover ~path:jpath ~epoch:epoch93 ~lifespan ~cache_capacity:512 ()
    in
    let rec_digest = Digest.to_hex (Digest.string (Session.state_digest recovered)) in
    let stats = Store.stats store in
    let total = n_clients * reqs_per_client in
    let rps = float_of_int total /. t in
    Printf.printf "    window %-3s %s   %7.0f requests/s   (%d reads, %d write groups)   recovery digest ok: %b\n"
      window_label (time_str t) rps stats.Store.sreads stats.Store.swrites
      (live_digest = rec_digest);
    (window_label, t, rps, stats.Store.sreads, stats.Store.swrites, live_digest = rec_digest)
  in
  Printf.printf "\n  socket front-end, %d clients x %d mixed requests (1 write batch per 8):\n"
    n_clients reqs_per_client;
  (* Bound separately: list literals evaluate right-to-left. *)
  let served_1 = run_served ~policy:Journal.Sync_each ~window_label:"1" in
  let served_64 = run_served ~policy:(Journal.Group 64) ~window_label:"64" in
  let served = [ served_1; served_64 ] in
  let recovery_ok = List.for_all (fun (_, _, _, _, _, ok) -> ok) served in
  let witness = reads_identical && atomic_ok && recovery_ok in
  Printf.printf "\n  reader/writer digest witness (all parts): %b\n" witness;
  print_endline "\n  claim: freezing the store is O(1) copy-on-write, so N readers serve";
  print_endline "  from immutable epochs at memory speed while one writer journals";
  print_endline "  commit groups; every served state is a commit-group prefix.";
  if !json_mode then
    emit ~name:"E22" ~host_domains:hw ~file:"BENCH_E22.json"
      [
        ( "read_scaling",
          Json.Obj
            [
              ("requests", Json.Int n_req);
              ("table_rows", Json.Int nrows);
              ( "configs",
                Json.List
                  (List.map
                     (fun (domains, t, ok) ->
                       Json.Obj
                         [
                           ("domains", Json.Int domains);
                           ("wall_s", Json.Float t);
                           ("requests_per_s", Json.Float (float_of_int n_req /. t));
                           ("results_identical", Json.Bool ok);
                         ])
                     axes_read) );
            ] );
        ( "snapshot_atomicity",
          Json.Obj
            [
              ("write_batches", Json.Int n_batches);
              ("statements_per_batch", Json.Int batch_stmts);
              ("reader_domains", Json.Int n_readers);
              ("reader_observations", Json.Int total_obs);
              ("distinct_epochs_observed", Json.Int distinct_epochs);
              ("writer_wall_s", Json.Float t_write);
              ("all_states_are_prefixes", Json.Bool atomic_ok);
            ] );
        ( "server_mixed",
          Json.Obj
            [
              ("clients", Json.Int n_clients);
              ("requests_per_client", Json.Int reqs_per_client);
              ( "configs",
                Json.List
                  (List.map
                     (fun (window, t, rps, reads, writes, ok) ->
                       Json.Obj
                         [
                           ("group_window", Json.Str window);
                           ("wall_s", Json.Float t);
                           ("requests_per_s", Json.Float rps);
                           ("reads", Json.Int reads);
                           ("write_groups", Json.Int writes);
                           ("recovery_digest_identical", Json.Bool ok);
                         ])
                     served) );
            ] );
        ("reader_writer_digest_identical", Json.Bool witness);
      ]

(* E23: the hardened serving path. Part A drives one sequential
   retrying client through the seeded network-chaos proxy — calm (a
   plain byte pump) vs faulty (delays, short reads, truncations,
   disconnects) — and reports requests/sec and p50/p99 latency for
   both; because write batches carry exactly-once request ids, the two
   runs must land the identical final digest, and each journal must
   recover to its served state. Part B offers increasing concurrent
   write load to a store with a tiny admission queue and reports the
   shed rate per offered-load step; the queue high-water mark never
   exceeding the bound is the bounded-memory witness. With --json,
   measurements land in BENCH_E23.json. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n /. 100.)) - 1 |> max 0))

let e23 () =
  header "E23 | Hardened serving: chaos latency, shed under overload, exactly-once";
  let hw = Cal_parallel.Pool.hardware_domains () in
  let lifespan = (Civil.make 1993 1 1, Civil.make 1994 12 31) in
  let aux p =
    [ p; p ^ ".snap"; p ^ ".tmp"; p ^ ".snap.tmp"; p ^ ".manifest"; p ^ ".manifest.tmp" ]
  in
  let rm_all ps = List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) ps in
  (* Part A: one sequential client, every request through the proxy,
     write batch every 4th request (2 distinct appends each), retried
     with ids — the serial order is the issue order, so both modes must
     produce the same state. *)
  let n_req = 160 in
  let line_of i =
    if i mod 4 = 0 then
      Printf.sprintf "@e23-%d append trades (day = @%d, qty = %d); append trades (day = @%d, qty = %d)"
        i ((i mod 300) + 1) (i * 2) (((i + 7) mod 300) + 1) ((i * 2) + 1)
    else Printf.sprintf "retrieve (qty) from trades where qty > %d" ((i * 91) mod 3000)
  in
  let run_mode ~mode ~chaos_config =
    let sock = Filename.temp_file "bench_e23" ".sock" in
    let psock = Filename.temp_file "bench_e23p" ".sock" in
    let jpath = Filename.temp_file "bench_e23" ".journal" in
    rm_all (sock :: psock :: aux jpath);
    Fun.protect ~finally:(fun () -> rm_all (sock :: psock :: aux jpath)) @@ fun () ->
    let session =
      Session.open_journaled ~path:jpath ~epoch:epoch93 ~lifespan ~cache_capacity:512
        ~policy:Journal.Sync_each ()
    in
    let store = Store.of_session session in
    (match Store.write store [ Store.Query "create table trades (day chronon valid, qty int)" ] with
    | [ Ok _ ] -> ()
    | _ -> failwith "E23: create failed");
    let server = Cal_server.Server.start store (Unix.ADDR_UNIX sock) in
    let proxy =
      Cal_faults.Netchaos.start ~config:chaos_config ~seed:0xC0FFEE
        ~upstream:(Unix.ADDR_UNIX sock) (Unix.ADDR_UNIX psock)
    in
    let addr = Cal_faults.Netchaos.addr proxy in
    let lat = Array.make n_req 0. in
    let (), t_total =
      wall (fun () ->
          for i = 0 to n_req - 1 do
            let t0 = Unix.gettimeofday () in
            (match Cal_server.Client.run ~retries:100 ~timeout_s:15.0 ~addr (line_of i) with
            | Ok _ -> ()
            | Error (Cal_server.Client.Server_error e)
            | Error (Cal_server.Client.Exhausted e) ->
              failwith ("E23 " ^ mode ^ ": " ^ e));
            lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.
          done)
    in
    let pstats = Cal_faults.Netchaos.stats proxy in
    Cal_faults.Netchaos.stop proxy;
    let live_digest = Store.digest store in
    let sstats = Store.stats store in
    Cal_server.Server.stop server;
    let recovered =
      Session.recover ~path:jpath ~epoch:epoch93 ~lifespan ~cache_capacity:512 ()
    in
    let rec_digest = Digest.to_hex (Digest.string (Session.state_digest recovered)) in
    Array.sort compare lat;
    let p50 = percentile lat 50. and p99 = percentile lat 99. in
    let rps = float_of_int n_req /. t_total in
    Printf.printf
      "    %-9s %s   %6.0f requests/s   p50 %6.2f ms   p99 %6.2f ms   dedup %d   recovery ok: %b\n"
      mode (time_str t_total) rps p50 p99 sstats.Store.sdedup (live_digest = rec_digest);
    Printf.printf
      "              proxy: %d conns, %d delays, %d shorts, %d truncations, %d disconnects\n"
      pstats.Cal_faults.Netchaos.conns pstats.Cal_faults.Netchaos.delays
      pstats.Cal_faults.Netchaos.shorts pstats.Cal_faults.Netchaos.truncations
      pstats.Cal_faults.Netchaos.disconnects;
    (mode, t_total, rps, p50, p99, sstats, pstats, live_digest, live_digest = rec_digest)
  in
  Printf.printf "\n  one sequential retrying client, %d requests (1 write batch per 4), via proxy:\n"
    n_req;
  let calm = run_mode ~mode:"no-faults" ~chaos_config:Cal_faults.Netchaos.calm in
  let chaotic = run_mode ~mode:"faults" ~chaos_config:Cal_faults.Netchaos.default_config in
  let digest_of (_, _, _, _, _, _, _, d, _) = d in
  let recov_of (_, _, _, _, _, _, _, _, ok) = ok in
  let modes_identical = digest_of calm = digest_of chaotic in
  let recovery_ok = recov_of calm && recov_of chaotic in
  Printf.printf "\n  exactly-once witness: fault/no-fault digests identical: %b   recovery ok: %b\n"
    modes_identical recovery_ok;
  (* Part B: shed rate vs offered load. A two-slot admission queue in
     front of a Sync_each writer (every group fsyncs, so the writer is
     genuinely slow); C unthrottled clients fire plain un-retried write
     batches and count their sheds. *)
  let max_queue = 2 and per_client = 40 in
  let run_load clients =
    let sock = Filename.temp_file "bench_e23b" ".sock" in
    let jpath = Filename.temp_file "bench_e23b" ".journal" in
    rm_all (sock :: aux jpath);
    Fun.protect ~finally:(fun () -> rm_all (sock :: aux jpath)) @@ fun () ->
    let session =
      Session.open_journaled ~path:jpath ~epoch:epoch93 ~lifespan ~cache_capacity:512
        ~policy:Journal.Sync_each ()
    in
    let store = Store.of_session ~max_queue session in
    (match Store.write store [ Store.Query "create table hits (day chronon valid, qty int)" ] with
    | [ Ok _ ] -> ()
    | _ -> failwith "E23: create failed");
    let server = Cal_server.Server.start store (Unix.ADDR_UNIX sock) in
    let shed = Atomic.make 0 and okc = Atomic.make 0 in
    let client c () =
      let cl = Cal_server.Client.connect (Unix.ADDR_UNIX sock) in
      for i = 1 to per_client do
        match
          Cal_server.Client.request cl
            (Printf.sprintf "append hits (day = @%d, qty = %d)" ((i mod 300) + 1)
               ((c * 10_000) + i))
        with
        | Ok _ -> Atomic.incr okc
        | Error msg ->
          if String.length msg >= 9 && String.sub msg 0 9 = "retryable" then Atomic.incr shed
          else failwith ("E23 load: " ^ msg)
      done;
      Cal_server.Client.close cl
    in
    let (), t =
      wall (fun () ->
          let threads = List.init clients (fun c -> Thread.create (client c) ()) in
          List.iter Thread.join threads)
    in
    let st = Store.stats store in
    Cal_server.Server.stop server;
    let offered = clients * per_client in
    let shed_n = Atomic.get shed in
    let rate = float_of_int shed_n /. float_of_int offered in
    Printf.printf
      "    %2d clients: %5d offered   %5d applied   %5d shed (%4.1f%%)   queue peak %d/%d   %6.0f req/s\n"
      clients offered (Atomic.get okc) shed_n (100. *. rate) st.Store.squeue_peak max_queue
      (float_of_int offered /. t);
    (clients, offered, shed_n, rate, st.Store.squeue_peak, t)
  in
  Printf.printf "\n  shed rate vs offered load (admission queue = %d, fsync per group):\n" max_queue;
  let loads = List.map run_load [ 2; 8; 32 ] in
  let queue_bounded = List.for_all (fun (_, _, _, _, peak, _) -> peak <= max_queue) loads in
  Printf.printf "\n  admission queue bounded (peak <= %d in every run): %b\n" max_queue queue_bounded;
  print_endline "\n  claim: deadlines, bounded admission and journaled request ids make the";
  print_endline "  served store safe under hostile networks: retries are exactly-once,";
  print_endline "  overload sheds instead of queueing without bound, and every run";
  print_endline "  recovers to its served digest.";
  if !json_mode then
    emit ~name:"E23" ~host_domains:hw ~file:"BENCH_E23.json"
      [
        ( "latency",
          Json.Obj
            [
              ("requests", Json.Int n_req);
              ( "configs",
                Json.List
                  (List.map
                     (fun (mode, t, rps, p50, p99, sstats, pstats, _, rec_ok) ->
                       Json.Obj
                         [
                           ("mode", Json.Str mode);
                           ("wall_s", Json.Float t);
                           ("requests_per_s", Json.Float rps);
                           ("p50_ms", Json.Float p50);
                           ("p99_ms", Json.Float p99);
                           ("dedup_hits", Json.Int sstats.Store.sdedup);
                           ("proxy_delays", Json.Int pstats.Cal_faults.Netchaos.delays);
                           ("proxy_shorts", Json.Int pstats.Cal_faults.Netchaos.shorts);
                           ( "proxy_truncations",
                             Json.Int pstats.Cal_faults.Netchaos.truncations );
                           ( "proxy_disconnects",
                             Json.Int pstats.Cal_faults.Netchaos.disconnects );
                           ("recovery_digest_identical", Json.Bool rec_ok);
                         ])
                     [ calm; chaotic ] ) );
              ("digest_identical_across_modes", Json.Bool modes_identical);
            ] );
        ( "shed",
          Json.Obj
            [
              ("max_queue", Json.Int max_queue);
              ("writes_per_client", Json.Int per_client);
              ( "configs",
                Json.List
                  (List.map
                     (fun (clients, offered, shed_n, rate, peak, t) ->
                       Json.Obj
                         [
                           ("clients", Json.Int clients);
                           ("offered", Json.Int offered);
                           ("shed", Json.Int shed_n);
                           ("shed_rate", Json.Float rate);
                           ("queue_peak", Json.Int peak);
                           ("wall_s", Json.Float t);
                           ( "offered_per_s",
                             Json.Float (float_of_int offered /. t) );
                         ])
                     loads) );
              ("queue_bounded", Json.Bool queue_bounded);
            ] );
        ("exactly_once_digest_identical", Json.Bool (modes_identical && recovery_ok));
      ]

(* ------------------------------------------------------------------ *)
(* Driver *)

let figures =
  [
    ("fig1", fig1); ("fig2", fig2); ("fig3", fig3); ("fig4", fig4); ("sec31", sec31);
    ("daycount", daycount_table); ("gnp", gnp_fig);
  ]

let perf =
  [
    ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7); ("E8", e8);
    ("E9", e9); ("E10", e10_perf); ("E11", e11_perf); ("E12", e12); ("E13", e13);
    ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17); ("E18", e18); ("E19", e19);
    ("E20", e20); ("E21", e21); ("E22", e22); ("E23", e23);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--json" then begin
          json_mode := true;
          false
        end
        else true)
      args
  in
  let all = figures @ perf in
  let selected =
    match args with
    | [] ->
      if !json_mode then
        [
          ("E15", e15); ("E16", e16); ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20);
          ("E21", e21); ("E22", e22); ("E23", e23);
        ]
      else all
    | [ "figures" ] -> figures
    | [ "perf" ] -> perf
    | ids ->
      List.filter
        (fun (id, _) ->
          List.exists (fun a -> String.lowercase_ascii a = String.lowercase_ascii id) ids)
        all
  in
  if selected = [] then begin
    Printf.printf "unknown experiment; available: %s\n" (String.concat " " (List.map fst all));
    exit 1
  end;
  List.iter (fun (_, f) -> f ()) selected;
  Printf.printf "\n%s\ndone. EXPERIMENTS.md records the paper-vs-measured summary.\n" line
