(* calq — a small shell over the calendar system.

   calq eval "<calendar expression>"     evaluate one expression
   calq repl                             interactive session
   calq demo                             scripted demonstration *)

open Calrules
open Cal_db

let date_arg default doc =
  let parse s =
    match Civil.of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "bad date %S (expected YYYY-MM-DD)" s))
  in
  let print ppf d = Format.pp_print_string ppf (Civil.to_string d) in
  Cmdliner.Arg.(
    value
    & opt (conv (parse, print)) default
    & info [ "epoch" ] ~docv:"DATE" ~doc)

let domains_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel rule batches and partitioned scans (default: \
           \\$(b,CALRULES_DOMAINS) or the hardware count; 1 forces serial execution).")

let shards_arg =
  Cmdliner.Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Calendar-signature DBCRON shards: rules bucket by the period of their compiled \
           periodic form, each shard runs its own timer wheel, and firing order is identical \
           at every $(docv) (default 1).")

let journal_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Durable session: journal every completed statement to \\$(docv), recovering the \
           snapshot+journal state already there when the files exist.")

let group_commit_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "group-commit" ] ~docv:"N"
        ~doc:
          "Journal group-commit window: buffer completed statements and flush every $(docv) \
           records as one durable group (N > 1; N = 1 pins per-record sync). Default: the \
           \\$(b,CALRULES_JOURNAL_GROUP) environment variable, else per-record sync. Only \
           meaningful with $(b,--journal).")

let strategy_arg =
  let strategies =
    [ ("auto", `Auto); ("materialize", `Materialize); ("stream", `Stream); ("periodic", `Periodic) ]
  in
  Cmdliner.Arg.(
    value
    & opt (enum strategies) `Auto
    & info [ "probe-strategy" ] ~docv:"STRATEGY"
        ~doc:
          "How rule probes search for the next occurrence: $(b,auto) prefers the closed-form \
           periodic path when the expression is translatable (pure arithmetic, unbounded \
           horizon), then streaming, then materializing; $(b,periodic), $(b,stream) and \
           $(b,materialize) pin a path explicitly.")

let make_session ?journal ?(shards = 1) ?group_commit epoch domains strategy =
  let lifespan = (Civil.make epoch.Civil.year 1 1, Civil.make (epoch.Civil.year + 39) 12 31) in
  let policy =
    match group_commit with
    | Some n when n > 1 -> Some (Journal.Group n)
    | Some _ -> Some Journal.Sync_each
    | None -> None (* Session.recover falls back to CALRULES_JOURNAL_GROUP *)
  in
  match journal with
  | Some path ->
    Session.recover ~path ~epoch ~lifespan ?domains ~shards ~probe_strategy:strategy ?policy ()
  | None -> Session.create ~epoch ~lifespan ?domains ~shards ~probe_strategy:strategy ()

let print_calendar session cal =
  Printf.printf "%s\n" (Calendar.to_string cal);
  let flat = Interval_set.to_list (Calendar.flatten cal) in
  if List.length flat <= 40 then
    List.iter
      (fun iv ->
        let lo = Interval.lo iv and hi = Interval.hi iv in
        if Interval.length iv = 1 then
          Printf.printf "  %s\n" (Civil.to_string (Session.date_of_day session lo))
        else
          Printf.printf "  %s .. %s\n"
            (Civil.to_string (Session.date_of_day session lo))
            (Civil.to_string (Session.date_of_day session hi)))
      flat
  else Printf.printf "  (%d intervals)\n" (List.length flat)

let print_result _session = function
  | Exec.Rows { columns; rows } ->
    Printf.printf "%s\n" (String.concat " | " columns);
    List.iter
      (fun row ->
        Printf.printf "%s\n"
          (String.concat " | "
             (Array.to_list (Array.map Value.to_string row))))
      rows;
    Printf.printf "(%d rows)\n" (List.length rows)
  | Exec.Affected n -> Printf.printf "(%d tuples)\n" n
  | Exec.Msg m -> print_endline m
  | Exec.Rule_def _ | Exec.Rule_drop _ -> print_endline "(rule)"

let db_keywords =
  [ "create"; "append"; "retrieve"; "delete"; "replace"; "define"; "drop" ]

let first_word line =
  match String.split_on_char ' ' (String.trim line) with
  | w :: _ -> String.lowercase_ascii w
  | [] -> ""

(* Returns [true] when the command succeeded — scripted runs (piped
   stdin, [-e]) turn any [false] into a non-zero exit status. *)
let handle session line =
  let line = String.trim line in
  if line = "" then true
  else if line = "help" then begin
    print_endline
      "commands:\n\
      \  calendar <name> = { <script> }   define a derived calendar\n\
      \  <query>                          any create/append/retrieve/... command\n\
      \  <calendar expression>            evaluate and print\n\
      \  advance <days>                   advance the simulated clock\n\
      \  save <file> | load <file>        persist / restore the session\n\
      \  today | alerts | calendars       session state\n\
      \  rules | errors | quarantined     rule health, failures, quarantine\n\
      \  requeue <rule>                   re-arm a quarantined rule\n\
      \  snapshot                         persist state, truncate the journal\n\
      \  commit                           flush the journal's pending commit group\n\
      \  catchup <policy> <days>          fire_once|skip|replay_all missed triggers\n\
      \  periodic <expression>            show the closed periodic form, if any\n\
      \  stats                            executor / cache / dbcron counters\n\
      \  quit";
    true
  end
  else if line = "today" then begin
    Printf.printf "%s (instant %d)\n" (Civil.to_string (Session.today session)) (Session.now session);
    true
  end
  else if line = "stats" then begin
    print_endline (Session.stats_summary session);
    if Cal_rules.Manager.shards session.Session.manager > 1 then
      Array.iteri
        (fun i (rules, pending, occupancy, loaded, fired) ->
          Printf.printf "  shard %d: %d rules, %d pending (%d slots), %d loaded, %d fired\n" i
            rules pending occupancy loaded fired)
        (Cal_rules.Manager.shard_stats session.Session.manager);
    true
  end
  else if line = "alerts" then begin
    List.iter
      (fun (msg, at) -> Printf.printf "  %s at instant %d\n" msg at)
      (Session.alerts session);
    true
  end
  else if line = "rules" then begin
    List.iter
      (fun name ->
        match Session.rule_health session name with
        | Some (fired, failures, quarantined) ->
          Printf.printf "  %s: %d firings, %d consecutive failures%s%s\n" name fired failures
            (if quarantined then ", QUARANTINED" else "")
            (match Cal_rules.Manager.next_fire session.Session.manager name with
            | Some at -> Printf.sprintf ", next fire at instant %d" at
            | None -> "")
        | None -> ())
      (Cal_rules.Manager.rule_names session.Session.manager);
    if Cal_rules.Manager.shards session.Session.manager > 1 then
      Array.iteri
        (fun i (rules, pending, occupancy, loaded, fired) ->
          Printf.printf "  shard %d: %d rules, %d pending (%d slots), %d loaded, %d fired\n" i
            rules pending occupancy loaded fired)
        (Cal_rules.Manager.shard_stats session.Session.manager);
    true
  end
  else if line = "errors" then begin
    (match Session.rule_errors session with
    | [] -> print_endline "  no rule failures recorded"
    | errors ->
      List.iter
        (fun (rule, at, attempt, msg) ->
          Printf.printf "  %s at instant %d (attempt %d): %s\n" rule at attempt msg)
        errors);
    true
  end
  else if line = "quarantined" then begin
    (match Session.quarantined_rules session with
    | [] -> print_endline "  no quarantined rules"
    | names -> List.iter (fun n -> Printf.printf "  %s\n" n) names);
    true
  end
  else if first_word line = "requeue" then begin
    match String.split_on_char ' ' line with
    | [ _; name ] ->
      if Session.requeue session name then begin
        Printf.printf "rule %s requeued\n" name;
        true
      end
      else begin
        Printf.printf "error: no quarantined rule %s\n" name;
        false
      end
    | _ ->
      print_endline "usage: requeue <rule>";
      false
  end
  else if line = "commit" then begin
    Session.commit session;
    (match Session.journal_stats session with
    | Some (records, flushes) ->
      Printf.printf "committed: %d records / %d flushes\n" records flushes
    | None -> print_endline "not a journaled session");
    true
  end
  else if line = "snapshot" then begin
    match Session.snapshot session with
    | () ->
      (match Session.journal_path session with
      | Some p -> Printf.printf "snapshot written to %s.snap, journal truncated\n" p
      | None -> ());
      true
    | exception Session.Session_error e ->
      Printf.printf "error: %s\n" e;
      false
  end
  else if first_word line = "catchup" then begin
    let usage () =
      print_endline "usage: catchup <fire_once|skip|replay_all> <days>";
      false
    in
    match String.split_on_char ' ' line with
    | [ _; pol; days ] -> (
      let policy =
        match pol with
        | "fire_once" -> Some Cal_rules.Manager.Fire_once
        | "skip" -> Some Cal_rules.Manager.Skip
        | "replay_all" -> Some Cal_rules.Manager.Replay_all
        | _ -> None
      in
      match (policy, int_of_string_opt days) with
      | Some policy, Some days ->
        Session.catch_up session ~policy (Session.now session + (days * 86400));
        Printf.printf "caught up to %s\n" (Civil.to_string (Session.today session));
        true
      | _ -> usage ())
    | _ -> usage ()
  end
  else if line = "calendars" then begin
    match Session.query session "retrieve (name, granularity) from calendars" with
    | Ok r ->
      print_result session r;
      true
    | Error e ->
      Printf.printf "error: %s\n" e;
      false
  end
  else if first_word line = "save" then begin
    match String.split_on_char ' ' line with
    | [ _; file ] ->
      let oc = open_out file in
      output_string oc (Session.save session);
      close_out oc;
      Printf.printf "saved to %s\n" file;
      true
    | _ ->
      print_endline "usage: save <file>";
      false
  end
  else if first_word line = "load" then begin
    match String.split_on_char ' ' line with
    | [ _; file ] -> (
      let ic = open_in file in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      match Session.load session contents with
      | Ok () ->
        Printf.printf "loaded %s\n" file;
        true
      | Error e ->
        Printf.printf "error: %s\n" e;
        false)
    | _ ->
      print_endline "usage: load <file>";
      false
  end
  else if first_word line = "advance" then begin
    match String.split_on_char ' ' line with
    | [ _; n ] -> (
      match int_of_string_opt n with
      | Some days ->
        Session.advance_days session days;
        Printf.printf "now %s\n" (Civil.to_string (Session.today session));
        true
      | None ->
        print_endline "usage: advance <days>";
        false)
    | _ ->
      print_endline "usage: advance <days>";
      false
  end
  else if first_word line = "calendar" then begin
    match String.index_opt line '=' with
    | Some i -> (
      let name = String.trim (String.sub line 8 (i - 8)) in
      let script = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      match Session.define_calendar session ~name ~script with
      | Ok () ->
        Printf.printf "calendar %s defined\n" name;
        true
      | Error e ->
        Printf.printf "error: %s\n" e;
        false)
    | None ->
      print_endline "usage: calendar <name> = { <script> }";
      false
  end
  else if first_word line = "periodic" then begin
    let src = String.trim (String.sub line 8 (String.length line - 8)) in
    match Cal_lang.Parser.expr src with
    | Error e ->
      Printf.printf "error: %s\n" e;
      false
    | Ok e -> (
      let ctx = session.Session.ctx in
      match Cal_lang.Periodic.compile ctx e with
      | None ->
        print_endline "outside the closed-form fragment (probes fall back to stream/materialize)";
        true
      | Some (fine, pset) ->
        let spans = Cal_lang.Periodic.spans pset in
        let shown = List.filteri (fun i _ -> i < 8) spans in
        Printf.printf "period %d (unit %s), %d span(s): %s%s\n"
          (Cal_lang.Periodic.period pset)
          (Format.asprintf "%a" Granularity.pp fine)
          (Cal_lang.Periodic.span_count pset)
          (String.concat "; " (List.map (fun (o, l) -> Printf.sprintf "%d+%d" o l) shown))
          (if Cal_lang.Periodic.span_count pset > 8 then "; ..." else "");
        (match
           Cal_rules.Next_fire.next ctx e ~after:(Session.now session) ~strategy:`Periodic ()
         with
        | Some at ->
          let day =
            Chronon.of_offset
              (Unit_system.index_of_instant ~epoch:ctx.Cal_lang.Context.epoch Granularity.Days at)
          in
          Printf.printf "next fire: instant %d (%s)\n" at
            (Civil.to_string (Session.date_of_day session day))
        | None -> print_endline "next fire: never (the periodic set is empty)");
        true)
  end
  else if List.mem (first_word line) db_keywords then begin
    match Session.query session line with
    | Ok r ->
      print_result session r;
      true
    | Error e ->
      Printf.printf "error: %s\n" e;
      false
  end
  else begin
    match Session.eval_calendar session line with
    | Ok cal ->
      print_calendar session cal;
      true
    | Error e ->
      Printf.printf "error: %s\n" e;
      false
  end

let run_line session line =
  try handle session line
  with e ->
    Printf.printf "error: %s\n" (Printexc.to_string e);
    false

let repl epoch domains strategy journal shards group_commit commands =
  let session = make_session ?journal ~shards ?group_commit epoch domains strategy in
  match commands with
  | _ :: _ ->
    (* -e mode: run the given commands in order (all of them, even after
       a failure), flush, and make any failure a non-zero exit. *)
    let ok = List.fold_left (fun ok c -> run_line session c && ok) true commands in
    Session.commit session;
    exit (if ok then 0 else 1)
  | [] ->
    Printf.printf "calq — calendar system shell (epoch %s%s). Type `help'.\n"
      (Civil.to_string epoch)
      (match journal with Some p -> ", journaling to " ^ p | None -> "");
    let failures = ref 0 in
    (* Leaving the shell is a durability point: flush any buffered group.
       Failed commands surface as a non-zero exit so piped scripts can't
       silently half-apply. *)
    let bye () =
      Session.commit session;
      print_endline "bye.";
      if !failures > 0 then exit 1
    in
    let rec loop () =
      print_string "calq> ";
      match read_line () with
      | exception End_of_file -> bye ()
      | "quit" | "exit" -> bye ()
      | line ->
        if not (run_line session line) then incr failures;
        loop ()
    in
    loop ()

(* --- serving and connecting ------------------------------------------- *)

let serve epoch domains strategy journal shards group_commit deadline_ms idle_ms max_queue
    addr_s =
  match Cal_server.Protocol.sockaddr_of_string addr_s with
  | exception Failure e ->
    Printf.eprintf "calq: %s\n" e;
    exit 2
  | addr ->
    let session = make_session ?journal ~shards ?group_commit epoch domains strategy in
    let store = Cal_server.Store.of_session ?max_queue session in
    let config =
      let c = Cal_server.Server.config_of_env () in
      let ms v keep = match v with Some ms -> float_of_int ms /. 1000. | None -> keep in
      {
        c with
        Cal_server.Server.request_deadline_s = ms deadline_ms c.Cal_server.Server.request_deadline_s;
        idle_timeout_s = ms idle_ms c.Cal_server.Server.idle_timeout_s;
      }
    in
    let server = Cal_server.Server.start ~config store addr in
    Printf.printf "calq: serving on %s%s — type `stop' (or close stdin) to shut down\n%!"
      (Cal_server.Protocol.string_of_sockaddr (Cal_server.Server.addr server))
      (match journal with Some p -> ", journal " ^ p | None -> "");
    let rec wait () =
      match read_line () with
      | exception End_of_file -> ()
      | "stop" | "quit" -> ()
      | _ -> wait ()
    in
    wait ();
    Cal_server.Server.stop server;
    Session.commit session;
    let s = Cal_server.Store.stats store in
    Printf.printf "calq: served %d reads, %d write batches over %d connections (epoch %d)\n"
      s.Cal_server.Store.sreads s.Cal_server.Store.swrites
      (Cal_server.Server.connections server) s.Cal_server.Store.sepoch

let connect addr_s timeout_ms retries commands =
  match Cal_server.Protocol.sockaddr_of_string addr_s with
  | exception Failure e ->
    Printf.eprintf "calq: %s\n" e;
    exit 2
  | addr ->
    let failures = ref 0 in
    let is_err l = String.length l >= 4 && String.sub l 0 4 = "err " in
    let robust = timeout_ms > 0 || retries > 0 in
    (* Plain mode holds one connection for the whole run; robust mode
       (any of --timeout/--retries) goes through the retrying layer — a
       fresh connection per attempt, write batches tagged with an
       exactly-once request id, retryable failures backed off. *)
    let request =
      if robust then (
        let timeout_s = float_of_int timeout_ms /. 1000. in
        fun line ->
          match Cal_server.Client.run ~retries ~timeout_s ~addr line with
          | Ok lines ->
            List.iter print_endline lines;
            if List.exists is_err lines then incr failures
          | Error (Cal_server.Client.Server_error e) ->
            Printf.printf "err %s\n" e;
            incr failures
          | Error (Cal_server.Client.Exhausted e) ->
            Printf.eprintf "calq: request failed after retries: %s\n" e;
            incr failures)
      else
        let client =
          match Cal_server.Client.connect addr with
          | exception e ->
            Printf.eprintf "calq: cannot connect to %s: %s\n" addr_s (Printexc.to_string e);
            exit 2
          | c ->
            at_exit (fun () -> Cal_server.Client.close c);
            c
        in
        fun line ->
          match Cal_server.Client.request client line with
          | Ok lines ->
            List.iter print_endline lines;
            if List.exists is_err lines then incr failures
          | Error e ->
            Printf.printf "err %s\n" e;
            incr failures
          | exception Cal_server.Client.Protocol_error e ->
            Printf.eprintf "calq: protocol error: %s\n" e;
            incr failures
    in
    (match commands with
    | _ :: _ -> List.iter request commands
    | [] ->
      let rec loop () =
        print_string "calq> ";
        match read_line () with
        | exception End_of_file -> ()
        | "quit" | "exit" -> ()
        | "" -> loop ()
        | line ->
          request line;
          loop ()
      in
      loop ());
    exit (if !failures = 0 then 0 else 1)

let eval_once epoch domains strategy expr =
  let session = make_session epoch domains strategy in
  match Session.eval_calendar session expr with
  | Ok cal -> print_calendar session cal
  | Error e ->
    Printf.printf "error: %s\n" e;
    exit 1

let demo epoch domains strategy =
  let session = make_session epoch domains strategy in
  let script =
    [
      "calendar Tuesdays = { return ([2]/DAYS:during:WEEKS); }";
      "calendar Fridays = { return ([5]/DAYS:during:WEEKS); }";
      Printf.sprintf "[3]/Fridays:overlaps:[1]/MONTHS:during:%d/YEARS" epoch.Civil.year;
      "create table stock (day chronon valid, price float)";
      "append stock (day = @5, price = 101.5)";
      "append stock (day = @12, price = 102.5)";
      "retrieve (stock.day, stock.price) from stock on \"Tuesdays\"";
      "define rule tick on calendar \"[2]/DAYS:during:WEEKS\" do retrieve (alert('TUESDAY'))";
      "advance 15";
      "alerts";
    ]
  in
  List.iter
    (fun line ->
      Printf.printf "calq> %s\n" line;
      ignore (run_line session line))
    script

let () =
  let open Cmdliner in
  let epoch_term = date_arg Unit_system.default_epoch "Session epoch (day chronon 1)." in
  let exec_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "exec" ] ~docv:"CMD"
          ~doc:
            "Run $(docv) as one shell command and exit (repeatable, run in order); the exit \
             status is non-zero when any command fails.")
  in
  let repl_cmd =
    Cmd.v (Cmd.info "repl" ~doc:"Interactive calendar shell")
      Term.(
        const repl $ epoch_term $ domains_arg $ strategy_arg $ journal_arg $ shards_arg
        $ group_commit_arg $ exec_arg)
  in
  let eval_cmd =
    let expr =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Calendar expression")
    in
    Cmd.v (Cmd.info "eval" ~doc:"Evaluate one calendar expression")
      Term.(const eval_once $ epoch_term $ domains_arg $ strategy_arg $ expr)
  in
  let demo_cmd =
    Cmd.v
      (Cmd.info "demo" ~doc:"Scripted demonstration")
      Term.(const demo $ epoch_term $ domains_arg $ strategy_arg)
  in
  let serve_cmd =
    let addr =
      Arg.(
        required & pos 0 (some string) None
        & info [] ~docv:"ADDR" ~doc:"Listen address: $(b,unix:PATH) or $(b,HOST:PORT).")
    in
    let deadline_arg =
      Arg.(
        value & opt (some int) None
        & info [ "request-deadline" ] ~docv:"MS"
            ~doc:
              "Per-request deadline in milliseconds; a write that cannot reach the store's \
               writer in time fails with $(b,err retryable deadline). 0 disarms. Defaults to \
               $(b,CALQ_REQUEST_DEADLINE_MS) or 30000.")
    in
    let idle_arg =
      Arg.(
        value & opt (some int) None
        & info [ "idle-timeout" ] ~docv:"MS"
            ~doc:
              "Close a connection with no request for $(docv) milliseconds. 0 disarms. \
               Defaults to $(b,CALQ_IDLE_TIMEOUT_MS) or 300000.")
    in
    let max_queue_arg =
      Arg.(
        value & opt (some int) None
        & info [ "max-queue" ] ~docv:"N"
            ~doc:
              "Admission bound on concurrent write batches; beyond it writes are shed with \
               $(b,err retryable overloaded). Defaults to $(b,CALQ_MAX_QUEUE) or 64.")
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Serve the line protocol on a socket: N clients multiplex onto this one store — \
            retrieves run lock-free against the latest published snapshot, each write batch \
            journals as one commit group. Requests are bounded by a per-request deadline, \
            idle connections by an idle timeout, and the writer by an admission queue that \
            sheds excess load with retryable errors.")
      Term.(
        const serve $ epoch_term $ domains_arg $ strategy_arg $ journal_arg $ shards_arg
        $ group_commit_arg $ deadline_arg $ idle_arg $ max_queue_arg $ addr)
  in
  let connect_cmd =
    let addr =
      Arg.(
        required & pos 0 (some string) None
        & info [] ~docv:"ADDR" ~doc:"Server address: $(b,unix:PATH) or $(b,HOST:PORT).")
    in
    let timeout_arg =
      Arg.(
        value & opt int 0
        & info [ "timeout" ] ~docv:"MS"
            ~doc:
              "Overall deadline per request in milliseconds, across all retries; on expiry \
               the command fails with a non-zero exit. 0 (default) waits forever.")
    in
    let retries_arg =
      Arg.(
        value & opt int 0
        & info [ "retries" ] ~docv:"N"
            ~doc:
              "Retry each request up to $(docv) times on dropped connections, torn replies \
               and $(b,err retryable) sheds, with exponential backoff and decorrelated \
               jitter. Write batches carry an exactly-once request id, so a retry whose \
               predecessor landed replays the original reply instead of applying twice. \
               0 (default) keeps the plain single-connection behaviour.")
    in
    Cmd.v
      (Cmd.info "connect"
         ~doc:
           "Connect to a $(b,calq serve) instance: each input line is one protocol request \
            ($(b,;)-separated statements, $(b,?digest) / $(b,?stats) / $(b,?epoch) meta). Exits \
            non-zero when any request or statement fails, a reply is an $(b,err), or the \
            $(b,--timeout) deadline expires.")
      Term.(const connect $ addr $ timeout_arg $ retries_arg $ exec_arg)
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "calq" ~version:"1.0" ~doc:"Calendars and temporal rules shell")
          [ repl_cmd; eval_cmd; demo_cmd; serve_cmd; connect_cmd ]))
