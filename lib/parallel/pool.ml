(* Spawn-once worker pool. The mutex guards every mutable field; workers
   park on [work_ready] between jobs and the caller parks on [work_done]
   while any worker is still inside the current job. A job is published
   as (epoch, closure): bumping the epoch is what distinguishes "new
   work" from a spurious wakeup. *)

type t = {
  lanes : int;  (* total, including the caller's lane 0 *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable remaining : int;  (* workers still running the current job *)
  mutable busy : bool;  (* a job is in flight (re-entrancy guard) *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable spawned : bool;
}

let hardware_domains () = max 1 (Domain.recommended_domain_count ())

let env_domains () =
  match Sys.getenv_opt "CALRULES_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (min n 64)
    | _ -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> min 8 (hardware_domains ())

let create ?domains () =
  let lanes = match domains with Some n -> n | None -> default_domains () in
  if lanes < 1 then invalid_arg "Pool.create: domains must be >= 1";
  {
    lanes;
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    job = None;
    epoch = 0;
    remaining = 0;
    busy = false;
    stop = false;
    workers = [];
    spawned = false;
  }

let size t = t.lanes

let worker t lane =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.epoch;
      let job = t.job in
      Mutex.unlock t.mutex;
      (* Chunk closures capture their own exceptions; this is belt and
         braces so a worker can never die with the caller still waiting. *)
      (match job with Some f -> ( try f lane with _ -> ()) | None -> ());
      Mutex.lock t.mutex;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.signal t.work_done;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let ensure_spawned t =
  if (not t.spawned) && not t.stop then begin
    t.spawned <- true;
    t.workers <- List.init (t.lanes - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)))
  end

let shutdown t =
  let joinable =
    Mutex.lock t.mutex;
    let was_stopped = t.stop in
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    if was_stopped then [] else t.workers
  in
  List.iter Domain.join joinable;
  t.workers <- []

(* Run [f lane] once per lane in [0, nlanes); lane 0 on the caller. The
   closure must not raise (chunk wrappers catch). Caller must have
   checked [busy = false]. *)
let run_lanes t (f : int -> unit) =
  ensure_spawned t;
  Mutex.lock t.mutex;
  t.busy <- true;
  t.job <- Some f;
  t.epoch <- t.epoch + 1;
  t.remaining <- t.lanes - 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  (try f 0 with _ -> ());
  Mutex.lock t.mutex;
  while t.remaining > 0 do
    Condition.wait t.work_done t.mutex
  done;
  t.job <- None;
  t.busy <- false;
  Mutex.unlock t.mutex

let effective_lanes t domains =
  let d = match domains with Some d -> max 1 d | None -> t.lanes in
  min d t.lanes

let map_chunks ?domains t ~n f =
  if n <= 0 then [||]
  else begin
    let lanes = min (effective_lanes t domains) n in
    (* Serialize re-entrant or post-shutdown calls instead of deadlocking. *)
    let lanes = if lanes > 1 && (t.busy || t.stop) then 1 else lanes in
    let results = Array.make lanes (Error Exit) in
    let chunk i =
      let lo = i * n / lanes and hi = (i + 1) * n / lanes in
      results.(i) <- (try Ok (f ~lo ~hi) with e -> Error e)
    in
    if lanes = 1 then chunk 0 else run_lanes t (fun i -> if i < lanes then chunk i);
    Array.map (function Ok v -> v | Error e -> raise e) results
  end

let parallel_map ?domains t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let parts =
      map_chunks ?domains t ~n (fun ~lo ~hi -> Array.init (hi - lo) (fun k -> f arr.(lo + k)))
    in
    if Array.length parts = 1 then parts.(0) else Array.concat (Array.to_list parts)
  end

let parallel_iter ?domains t f arr =
  ignore
    (map_chunks ?domains t ~n:(Array.length arr) (fun ~lo ~hi ->
         for i = lo to hi - 1 do
           f arr.(i)
         done)
      : unit array)

(* --- the process-wide default pool ---------------------------------- *)

let default_pool = ref None

let install lanes =
  let p = create ?domains:lanes () in
  default_pool := Some p;
  at_exit (fun () -> shutdown p);
  p

let default () =
  match !default_pool with Some p -> p | None -> install None

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: domains must be >= 1";
  match !default_pool with
  | Some p when size p = n -> ()
  | Some p ->
    shutdown p;
    ignore (install (Some n))
  | None -> ignore (install (Some n))

let ensure_default_domains n =
  if n > size (default ()) then set_default_domains n
