(** A fixed-size pool of worker domains — the concurrency substrate for
    parallel DBCRON next-fire batches and partitioned table scans.

    Workers are spawned once (lazily, on first parallel call) and parked
    on a condition variable between jobs, so dispatch costs a broadcast
    rather than a [Domain.spawn]. The caller's own domain always runs
    lane 0, so a pool of [n] lanes spawns [n - 1] domains and a pool of
    1 spawns none and degrades to plain serial execution.

    Determinism: work is split into contiguous chunks, one per lane, and
    results are returned (or concatenated) in chunk order — independent
    of which domain finishes first. An exception raised inside a chunk
    is re-raised on the caller after every lane has finished; when
    several chunks fail, the lowest-numbered chunk's exception wins,
    which is the same failure a serial left-to-right run would report.

    Pools are owned by one domain: only the domain that created the pool
    may dispatch on it. A parallel call made {e from inside} a running
    chunk (re-entrant use) falls back to serial execution in that chunk
    rather than deadlocking. *)

type t

(** Number of usable lanes reported by the runtime, at least 1. *)
val hardware_domains : unit -> int

(** Lane count the default pool is created with: [CALRULES_DOMAINS] when
    set to a positive integer, else {!hardware_domains} capped at 8. *)
val default_domains : unit -> int

(** [create ?domains ()] — a pool of [domains] lanes (default
    {!default_domains}). No domain is spawned until the first parallel
    call. @raise Invalid_argument when [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** Total lanes, counting the caller's. *)
val size : t -> int

(** The process-wide shared pool, created on first use (and registered
    for {!shutdown} at exit). *)
val default : unit -> t

(** Replace the default pool with one of exactly [n] lanes (joining the
    old workers). @raise Invalid_argument when [n < 1]. *)
val set_default_domains : int -> unit

(** Grow the default pool to at least [n] lanes; never shrinks. Used by
    sessions created with an explicit [?domains] larger than the
    environment default. *)
val ensure_default_domains : int -> unit

(** [map_chunks ?domains t ~n f] partitions the index range [0, n) into
    at most [min domains (size t)] contiguous chunks, runs
    [f ~lo ~hi] (hi exclusive) on each — lane 0 on the caller — and
    returns the per-chunk results in ascending chunk order. Empty range
    gives [[||]]. *)
val map_chunks : ?domains:int -> t -> n:int -> (lo:int -> hi:int -> 'b) -> 'b array

(** [parallel_map ?domains t f arr] — [Array.map f arr] with the element
    work split across lanes; the result preserves element order
    exactly. *)
val parallel_map : ?domains:int -> t -> ('a -> 'b) -> 'a array -> 'b array

val parallel_iter : ?domains:int -> t -> ('a -> unit) -> 'a array -> unit

(** Join the workers; the pool rejects further parallel dispatch (calls
    fall back to serial). Idempotent. *)
val shutdown : t -> unit
