(** The line protocol: one request line in, one framed response out.

    Request forms:
    - [?digest] / [?stats] / [?epoch] — meta commands.
    - otherwise, [;]-separated query-language statements. When {e every}
      statement is a retrieve, the request is a read batch: all of them
      run against one published snapshot, so a client observes a single
      commit-group-atomic state. Any other mix is a write batch: the
      statements apply under the writer lock and journal as {e one
      commit group} ([advance <days>] is accepted as a write statement).

    A request line may carry an exactly-once id prefix, [@<id> <request>]
    ([id] over [A-Za-z0-9._:-], at most 128 bytes). On a write batch the
    id journals {e inside} the batch's commit group, so retrying the same
    line is safe: a duplicate replays the original reply (or a [msg
    duplicate] notice when the cached reply has aged out) without
    re-applying anything — across crash recovery too. On reads and meta
    commands the prefix is accepted and ignored (they are idempotent).

    A shed or deadline-expired write fails with an [err retryable ...]
    header; clients should back off and retry with the {e same} id.

    Response framing (every payload line escaped with [String.escaped]
    so framing stays line-based):
    {v
    ok <n>          then exactly n payload lines
    err <message>   request-level failure (parse error, bad meta)
    v}
    Within an [ok] response, each statement renders its result lines
    ([# col|col] header then [val|val] rows for a retrieve, [affected n],
    [msg ...]) and a {e failed} statement renders one [err <message>]
    line; statements are separated by a [--] line. *)

open Cal_db

type request =
  | Reads of string list  (** all-retrieve batch: one snapshot *)
  | Writes of Store.stmt list  (** one commit group *)
  | Digest
  | Stats
  | Epoch

(* --- addresses ------------------------------------------------------ *)

(** [sockaddr_of_string s] parses ["unix:<path>"] or ["<host>:<port>"].
    @raise Failure on malformed addresses. *)
let sockaddr_of_string s =
  match String.index_opt s ':' with
  | Some 4 when String.length s > 5 && String.sub s 0 5 = "unix:" ->
    Unix.ADDR_UNIX (String.sub s 5 (String.length s - 5))
  | Some i ->
    let host = String.sub s 0 i and port = String.sub s (i + 1) (String.length s - i - 1) in
    let port =
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> p
      | _ -> failwith (Printf.sprintf "bad port in address %S" s)
    in
    let addr =
      match Unix.inet_addr_of_string host with
      | a -> a
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> failwith ("cannot resolve host " ^ host)
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> failwith ("cannot resolve host " ^ host))
    in
    Unix.ADDR_INET (addr, port)
  | None -> failwith (Printf.sprintf "bad address %S: expected unix:PATH or HOST:PORT" s)

let string_of_sockaddr = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

(* --- request parsing ------------------------------------------------ *)

(** [strip_req_id line] splits the optional [@<id> ] exactly-once prefix
    off a request line. *)
let strip_req_id line =
  let line = String.trim line in
  if String.length line > 1 && line.[0] = '@' then
    match String.index_opt line ' ' with
    | Some i ->
      ( Some (String.sub line 1 (i - 1)),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (Some (String.sub line 1 (String.length line - 1)), "")
  else (None, line)

let split_statements line =
  String.split_on_char ';' line |> List.map String.trim |> List.filter (fun s -> s <> "")

(* "advance <n>" with n >= 1, the protocol-level clock statement. *)
let parse_advance s =
  match String.split_on_char ' ' s |> List.filter (fun w -> w <> "") with
  | [ "advance"; n ] -> (
    match int_of_string_opt n with Some d when d >= 1 -> Some d | _ -> None)
  | _ -> None

let parse line =
  let line = String.trim line in
  if line = "" then Error "empty request"
  else if String.length line > 0 && line.[0] = '?' then
    match line with
    | "?digest" -> Ok Digest
    | "?stats" -> Ok Stats
    | "?epoch" -> Ok Epoch
    | _ -> Error ("unknown meta command " ^ line)
  else
    let stmts = split_statements line in
    if stmts = [] then Error "empty request"
    else
      let classify src =
        match parse_advance src with
        | Some d -> Ok (`Write (Store.Advance d))
        | None -> (
          match Qparser.query src with
          | Ok (Qast.Retrieve _) -> Ok (`Read src)
          | Ok _ -> Ok (`Write (Store.Query src))
          | Error e -> Error (Printf.sprintf "parse error in %S: %s" src e))
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | src :: rest -> (
          match classify src with Ok c -> go (c :: acc) rest | Error e -> Error e)
      in
      match go [] stmts with
      | Error e -> Error e
      | Ok classified ->
        if List.for_all (function `Read _ -> true | `Write _ -> false) classified then
          Ok (Reads (List.map (function `Read s -> s | `Write _ -> assert false) classified))
        else
          Ok
            (Writes
               (List.map
                  (function `Read s -> Store.Query s | `Write w -> w)
                  classified))

(* --- rendering ------------------------------------------------------ *)

let render_result = function
  | Exec.Rows { columns; rows } ->
    ("# " ^ String.concat "|" columns)
    :: List.map
         (fun row -> String.concat "|" (List.map Value.to_string (Array.to_list row)))
         rows
  | Exec.Affected n -> [ Printf.sprintf "affected %d" n ]
  | Exec.Msg m -> [ "msg " ^ m ]
  | Exec.Rule_def r -> [ "msg rule " ^ r.Qast.rule_name ^ " defined" ]
  | Exec.Rule_drop name -> [ "msg rule " ^ name ^ " dropped" ]

let render_outcome = function
  | Ok r -> render_result r
  | Error e -> [ "err " ^ e ]

(* Concatenate per-statement renderings with "--" separators. *)
let render_outcomes outcomes =
  List.concat (List.mapi (fun i o -> if i = 0 then o else "--" :: o) (List.map render_outcome outcomes))

(* --- serving one request -------------------------------------------- *)

type reply = {
  lines : string list;  (** payload lines of an [ok] reply *)
  failed : int;  (** request-level failure counts 1; else failed statements *)
  was_read : bool;
}

let handle ?deadline store line =
  let req_id, line = strip_req_id line in
  match parse line with
  | Error e -> { lines = [ "err " ^ e ]; failed = 1; was_read = false }
  | Ok Digest -> { lines = [ "digest " ^ Store.digest store ]; failed = 0; was_read = true }
  | Ok Epoch ->
    { lines = [ Printf.sprintf "epoch %d" (Store.epoch store) ]; failed = 0; was_read = true }
  | Ok Stats ->
    let s = Store.stats store in
    {
      lines =
        [
          Printf.sprintf
            "stats reads=%d writes=%d read_errors=%d write_errors=%d epoch=%d queued=%d \
             queue_peak=%d shed=%d timeouts=%d dedup=%d"
            s.Store.sreads s.Store.swrites s.Store.sread_errors s.Store.swrite_errors
            s.Store.sepoch s.Store.squeued s.Store.squeue_peak s.Store.sshed s.Store.stimeouts
            s.Store.sdedup;
        ];
      failed = 0;
      was_read = true;
    }
  | Ok (Reads sources) ->
    let snap = Store.snapshot store in
    let outcomes = List.map (Store.read_on store snap) sources in
    let failed = List.length (List.filter Result.is_error outcomes) in
    { lines = render_outcomes outcomes; failed; was_read = true }
  | Ok (Writes stmts) -> (
    match Store.write_idem ?req_id ?deadline store stmts with
    | Store.Applied outcomes | Store.Duplicate (Some outcomes) ->
      let failed = List.length (List.filter Result.is_error outcomes) in
      { lines = render_outcomes outcomes; failed; was_read = false }
    | Store.Duplicate None ->
      (* Applied before the reply cache's horizon (or a recovery) — the
         effect is durable, only the original reply is gone. *)
      {
        lines = [ "msg duplicate: request already applied" ];
        failed = 0;
        was_read = false;
      }
    | Store.Overloaded ->
      {
        lines = [ "err retryable overloaded: admission queue full" ];
        failed = 1;
        was_read = false;
      }
    | Store.Timed_out ->
      {
        lines = [ "err retryable deadline: writer busy past the request deadline" ];
        failed = 1;
        was_read = false;
      }
    | exception Calrules.Session.Session_error e ->
      { lines = [ "err " ^ e ]; failed = 1; was_read = false })

(* The wire rendering of a reply: header line + escaped payload lines.
   An [err ...] header (request-level failure) stays a single line. *)
let reply_lines reply =
  match reply.lines with
  | [ one ] when reply.failed = 1 && String.length one >= 4 && String.sub one 0 4 = "err " ->
    [ String.escaped one ]
  | lines -> Printf.sprintf "ok %d" (List.length lines) :: List.map String.escaped lines
