(** Blocking line-protocol client: connect, exchange request/reply,
    close. One request is in flight per connection at a time (the
    protocol is strictly request/reply), so callers wanting concurrency
    open one client per thread. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_string s = connect (Protocol.sockaddr_of_string s)

exception Protocol_error of string

let unescape s = Scanf.unescaped s

(** [request t line] sends one request and reads its framed reply:
    [Ok payload_lines] (unescaped) or [Error message] for an [err]
    reply. @raise Protocol_error on malformed framing or a dropped
    connection. *)
let request t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | exception End_of_file -> raise (Protocol_error "connection closed")
  | header ->
    if String.length header >= 4 && String.sub header 0 4 = "err " then
      Error (unescape (String.sub header 4 (String.length header - 4)))
    else if String.length header >= 3 && String.sub header 0 3 = "ok " then (
      match int_of_string_opt (String.sub header 3 (String.length header - 3)) with
      | None -> raise (Protocol_error ("bad reply header: " ^ header))
      | Some n ->
        let lines = ref [] in
        (try
           for _ = 1 to n do
             lines := unescape (input_line t.ic) :: !lines
           done
         with End_of_file -> raise (Protocol_error "connection closed mid-reply"));
        Ok (List.rev !lines))
    else raise (Protocol_error ("bad reply header: " ^ header))

(** Send [quit] and close the socket. *)
let close t =
  (try
     output_string t.oc "quit\n";
     flush t.oc
   with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
