(** Blocking line-protocol client: connect, exchange request/reply,
    close. One request is in flight per connection at a time (the
    protocol is strictly request/reply), so callers wanting concurrency
    open one client per thread.

    Two layers:
    - {!request} — one attempt on one connection, deadline-aware
      (SO_RCVTIMEO/SO_SNDTIMEO bound each socket wait); any transport
      or framing failure raises {!Protocol_error}.
    - {!retrying} / {!run} — the robust client the CLI uses: write
      batches get an exactly-once request id ([@<id> ] prefix, see
      {!Protocol}), and failed attempts — dropped connections, torn
      replies, [err retryable ...] sheds — reconnect and retry with
      exponential backoff and decorrelated jitter, never past the
      overall deadline. Because the id rides inside the batch's commit
      group, a retry whose predecessor {e did} land replays the original
      reply instead of applying twice. *)

type t = { fd : Unix.file_descr; r : Frame.reader; mutable timeout : float }

exception Protocol_error of string

(** [connect ?timeout addr] opens a connection; [timeout] (seconds)
    bounds every subsequent socket read and write ([0.] = block
    forever, the default). *)
let connect ?(timeout = 0.) addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  if timeout > 0. then begin
    Frame.set_recv_timeout fd timeout;
    Frame.set_send_timeout fd timeout
  end;
  { fd; r = Frame.reader fd; timeout }

let connect_string ?timeout s = connect ?timeout (Protocol.sockaddr_of_string s)

let unescape s = Scanf.unescaped s

let read_line t =
  match Frame.read_line t.r with
  | `Line l -> l
  | `Eof -> raise (Protocol_error "connection closed")
  | `Timeout -> raise (Protocol_error "timeout waiting for reply")
  | `Closed e -> raise (Protocol_error ("connection error: " ^ e))
  | `Too_long -> raise (Protocol_error "oversized reply line")

let write_line t line =
  match Frame.write_all t.fd (line ^ "\n") with
  | `Ok -> ()
  | `Timeout -> raise (Protocol_error "timeout sending request")
  | `Closed e -> raise (Protocol_error ("connection error: " ^ e))

(** [request t line] sends one request and reads its framed reply:
    [Ok payload_lines] (unescaped) or [Error message] for an [err]
    reply. @raise Protocol_error on malformed framing, a timeout, or a
    dropped connection. *)
let request t line =
  write_line t line;
  let header = read_line t in
  if String.length header >= 4 && String.sub header 0 4 = "err " then
    Error (unescape (String.sub header 4 (String.length header - 4)))
  else if String.length header >= 3 && String.sub header 0 3 = "ok " then (
    match int_of_string_opt (String.sub header 3 (String.length header - 3)) with
    | None -> raise (Protocol_error ("bad reply header: " ^ header))
    | Some n when n < 0 || n > 1_000_000 ->
      raise (Protocol_error ("bad reply header: " ^ header))
    | Some n ->
      let lines = ref [] in
      for _ = 1 to n do
        lines := unescape (read_line t) :: !lines
      done;
      Ok (List.rev !lines))
  else raise (Protocol_error ("bad reply header: " ^ header))

(** Send [quit] and close the socket. *)
let close t =
  (try write_line t "quit" with Protocol_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- the retrying layer --------------------------------------------- *)

(** Why {!retrying} gave up. *)
type retry_error =
  | Server_error of string  (** a non-retryable [err] reply — no retry *)
  | Exhausted of string  (** retries or the deadline ran out; last failure *)

(* An [err] reply is worth retrying only when the server says so. *)
let is_retryable msg =
  let p = "retryable" in
  String.length msg >= String.length p && String.sub msg 0 (String.length p) = p

(* Request-id source: unique per process run; the pid and a random tag
   keep two runs (or a run and its crashed predecessor) apart. *)
let id_counter = Atomic.make 0
let id_tag =
  lazy
    (Random.self_init ();
     Printf.sprintf "%d.%04x" (Unix.getpid ()) (Random.int 0xffff))

let fresh_req_id () =
  Printf.sprintf "c%s.%d" (Lazy.force id_tag) (Atomic.fetch_and_add id_counter 1)

(* Decorrelated jitter (the AWS architecture-blog shape): each sleep is
   uniform in [base, prev*3], capped — spreads a thundering herd of
   retriers instead of synchronizing it. *)
let backoff ~base ~cap ~prev =
  let hi = Float.min cap (Float.max base (prev *. 3.)) in
  let s = base +. Random.float (Float.max 1e-9 (hi -. base)) in
  Float.min cap s

(** [retrying ?retries ?deadline ?base_backoff_s ~addr line] runs one
    request line robustly: a fresh connection per attempt (bounded by
    the time left to [deadline], an absolute {!Unix.gettimeofday}
    instant), at most [retries] re-attempts after the first, sleeping
    with exponential backoff and decorrelated jitter between attempts.

    When [line] parses as a write batch and carries no [@id] prefix of
    its own, one is attached {e once} and reused verbatim on every
    attempt, making the retries exactly-once end to end. Reads and meta
    commands retry bare — they are idempotent. *)
let retrying ?(retries = 5) ?deadline ?(base_backoff_s = 0.02) ~addr line =
  let line =
    match Protocol.strip_req_id line with
    | Some _, _ -> line (* caller supplied an id; keep it verbatim *)
    | None, body -> (
      match Protocol.parse body with
      | Ok (Protocol.Writes _) -> "@" ^ fresh_req_id () ^ " " ^ line
      | Ok _ | Error _ -> line)
  in
  let time_left () =
    match deadline with None -> infinity | Some dl -> dl -. Unix.gettimeofday ()
  in
  let attempt () =
    let left = time_left () in
    if left <= 0. then Error "deadline exceeded"
    else
      let timeout = if left = infinity then 0. else left in
      match connect ~timeout addr with
      | exception (Unix.Unix_error (e, _, _)) -> Error (Unix.error_message e)
      | c -> (
        match request c line with
        | reply ->
          close c;
          Ok reply
        | exception Protocol_error e ->
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          Error e)
  in
  let rec go n prev_sleep last_err =
    if n > retries then Error (Exhausted last_err)
    else if time_left () <= 0. then Error (Exhausted ("deadline exceeded; last: " ^ last_err))
    else
      match attempt () with
      | Ok (Ok lines) -> Ok lines
      | Ok (Error msg) when not (is_retryable msg) -> Error (Server_error msg)
      | Ok (Error msg) -> pause n prev_sleep msg
      | Error msg -> pause n prev_sleep msg
  and pause n prev_sleep msg =
    let sleep = backoff ~base:base_backoff_s ~cap:1.0 ~prev:prev_sleep in
    let sleep = Float.min sleep (Float.max 0. (time_left ())) in
    if sleep > 0. then Thread.delay sleep;
    go (n + 1) sleep msg
  in
  go 0 base_backoff_s "never attempted"

(** [run ?retries ?timeout_s ~addr line] — {!retrying} with a relative
    per-call deadline ([timeout_s] from now; [0.] = none). *)
let run ?retries ?(timeout_s = 0.) ~addr line =
  let deadline = if timeout_s > 0. then Some (Unix.gettimeofday () +. timeout_s) else None in
  retrying ?retries ?deadline ~addr line
