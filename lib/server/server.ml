(** The multiplexing front-end: a listener socket (Unix or TCP), an
    accept thread, and one lightweight thread per connection, all sharing
    one {!Store}. Connection threads block on socket I/O — where OCaml's
    systhreads release the runtime lock — so N clients make progress
    concurrently; pure reads also run lock-free against the published
    snapshot, so read throughput is bounded by the store, not by the
    server's threading.

    Each connection speaks {!Protocol} over {!Frame}: one request line
    in, one framed reply out, until EOF or [quit] — with the failure
    semantics of DESIGN.md §15:

    - {b Per-request deadline.} Each request gets an absolute deadline
      ([request_deadline_s] past arrival); a write that cannot reach the
      store's writer in time fails with [err retryable deadline ...]
      instead of occupying the queue forever.
    - {b Idle timeout.} SO_RCVTIMEO bounds the wait for the next request
      line; an idle connection gets a best-effort [err idle timeout] and
      a close. A monotonic-watchdog thread re-checks wall-clock idleness
      (and requests wedged far past their deadline) in case the socket
      timeout is lost — e.g. on sockets where the option is a no-op.
    - {b Back-pressure.} The store sheds writes beyond its admission
      bound ([err retryable overloaded ...]); the reply still flows, so
      a client sees the shed rather than a hang.
    - {b Containment.} A connection error (EPIPE, ECONNRESET, a
      timeout, a torn frame) closes {e that} connection only — counted
      in [io_drops] — and never reaches the accept loop, which itself
      survives transient accept errors (EINTR, ECONNABORTED, EMFILE).
    - {b Drain-then-stop.} [stop] closes the listener, lets in-flight
      requests finish their reply (and their commit group) for up to
      [drain_timeout_s], then force-closes stragglers, and finally
      flushes the journal's pending group. *)

type config = {
  request_deadline_s : float;
      (** per-request deadline, measured from request arrival; [0.]
          disarms (requests may wait on the writer indefinitely) *)
  idle_timeout_s : float;
      (** close a connection with no request for this long; [0.] disarms *)
  drain_timeout_s : float;
      (** [stop]: grace period for in-flight requests before force-close *)
}

(* CALQ_REQUEST_DEADLINE_MS / CALQ_IDLE_TIMEOUT_MS mirror the
   CALRULES_* env conventions; 0 disarms either. *)
let ms_env name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some ms when ms >= 0 -> float_of_int ms /. 1000.
    | _ -> invalid_arg (Printf.sprintf "%s=%S is not a duration in ms >= 0" name s))

let config_of_env () =
  {
    request_deadline_s = ms_env "CALQ_REQUEST_DEADLINE_MS" 30.;
    idle_timeout_s = ms_env "CALQ_IDLE_TIMEOUT_MS" 300.;
    drain_timeout_s = 5.;
  }

type conn_stats = {
  mutable creads : int;  (** read requests served on this connection *)
  mutable cwrites : int;  (** write batches applied on this connection *)
  mutable cerrors : int;  (** failed requests/statements on this connection *)
}

(* Liveness bookkeeping the watchdog reads; written by the connection
   thread. Benign races: both sides only compare wall-clock floats, and
   the watchdog's response (shutdown) is idempotent. *)
type conn = {
  cid : int;
  cfd : Unix.file_descr;
  mutable last_active : float;  (** wall clock of last request start/end *)
  mutable busy : bool;  (** currently serving a request *)
}

type t = {
  store : Store.t;
  config : config;
  listen_fd : Unix.file_descr;
  addr : Unix.sockaddr;  (** actual bound address (resolves port 0) *)
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable watchdog_thread : Thread.t option;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable next_conn : int;
  connections : int Atomic.t;  (** total connections accepted *)
  io_drops : int Atomic.t;  (** connections closed on an I/O error *)
  idle_drops : int Atomic.t;  (** connections closed by the idle timeout *)
}

let cleanup_unix_path = function
  | Unix.ADDR_UNIX p when Sys.file_exists p -> ( try Sys.remove p with Sys_error _ -> ())
  | _ -> ()

let live_conns t = Mutex.protect t.conns_lock (fun () -> Hashtbl.length t.conns)

(* One connection: read request lines through a Frame.reader, serve each
   through the store with an absolute deadline, write framed replies
   resuming partial writes. Every failure here — timeout, reset, torn
   frame — ends in the same place: count it, close this fd, return. The
   accept loop never hears about it. *)
let serve_conn server conn =
  let stats = { creads = 0; cwrites = 0; cerrors = 0 } in
  let r = Frame.reader conn.cfd in
  if server.config.idle_timeout_s > 0. then
    Frame.set_recv_timeout conn.cfd server.config.idle_timeout_s;
  if server.config.request_deadline_s > 0. then
    Frame.set_send_timeout conn.cfd server.config.request_deadline_s;
  let send lines =
    let buf = Buffer.create 256 in
    List.iter
      (fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      lines;
    Frame.write_all conn.cfd (Buffer.contents buf)
  in
  let drop_io () = Atomic.incr server.io_drops in
  let rec loop () =
    match Frame.read_line r with
    | `Eof -> ()
    | `Timeout ->
      (* Idle past SO_RCVTIMEO: tell the peer why, then hang up. *)
      Atomic.incr server.idle_drops;
      ignore (send [ "err idle timeout" ])
    | `Closed _ -> drop_io ()
    | `Too_long ->
      (* A hostile or corrupt frame; answer and close so the remaining
         bytes of the oversized line are never misread as requests. *)
      stats.cerrors <- stats.cerrors + 1;
      ignore (send [ "err frame too long" ])
    | `Line line when String.trim line = "quit" -> ()
    | `Line line when String.trim line = "?connstats" ->
      conn.last_active <- Unix.gettimeofday ();
      let reply =
        Printf.sprintf
          "ok 1\nstats reads=%d writes=%d errors=%d conns=%d live=%d io_drops=%d idle_drops=%d"
          stats.creads stats.cwrites stats.cerrors
          (Atomic.get server.connections)
          (live_conns server) (Atomic.get server.io_drops) (Atomic.get server.idle_drops)
      in
      (match send [ reply ] with
      | `Ok -> loop ()
      | `Timeout | `Closed _ -> drop_io ())
    | `Line line ->
      let now = Unix.gettimeofday () in
      conn.last_active <- now;
      conn.busy <- true;
      let deadline =
        if server.config.request_deadline_s > 0. then
          Some (now +. server.config.request_deadline_s)
        else None
      in
      let reply = Protocol.handle ?deadline server.store line in
      if reply.Protocol.was_read then stats.creads <- stats.creads + 1
      else stats.cwrites <- stats.cwrites + 1;
      stats.cerrors <- stats.cerrors + reply.Protocol.failed;
      conn.busy <- false;
      conn.last_active <- Unix.gettimeofday ();
      (match send (Protocol.reply_lines reply) with
      | `Ok -> loop ()
      | `Timeout | `Closed _ -> drop_io ())
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ -> drop_io ());
  conn.busy <- false;
  (try Unix.shutdown conn.cfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close conn.cfd with Unix.Unix_error _ -> ()

(* Accept forever; transient failures (a connection reset between accept
   and use, interrupted syscalls, a momentary fd exhaustion) retry, and
   only a closed listener — which is how [stop] speaks to us — ends the
   loop. *)
let accept_loop server =
  let rec loop () =
    if Atomic.get server.stopping then ()
    else
      match Unix.accept server.listen_fd with
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> loop ()
      | exception Unix.Unix_error ((EMFILE | ENFILE), _, _) ->
        Thread.delay 0.05;
        loop ()
      | exception Unix.Unix_error _ -> ()  (* listener closed: stop *)
      | fd, _peer ->
        Atomic.incr server.connections;
        let id =
          Mutex.protect server.conns_lock (fun () ->
              let id = server.next_conn in
              server.next_conn <- id + 1;
              id)
        in
        let conn = { cid = id; cfd = fd; last_active = Unix.gettimeofday (); busy = false } in
        let th =
          Thread.create
            (fun () ->
              serve_conn server conn;
              Mutex.protect server.conns_lock (fun () -> Hashtbl.remove server.conns id))
            ()
        in
        Mutex.protect server.conns_lock (fun () -> Hashtbl.replace server.conns id (conn, th));
        loop ()
  in
  loop ()

(* Wall-clock watchdog: a backstop behind the socket timeouts. Shuts
   down (idempotently) any connection idle well past [idle_timeout_s] —
   catching sockets where SO_RCVTIMEO is inert — and any connection
   stuck inside one request for several times [request_deadline_s],
   which should be impossible (the store enforces the deadline) but
   must not wedge the drain if it happens. *)
let watchdog server =
  let cfg = server.config in
  let idle_bound = if cfg.idle_timeout_s > 0. then cfg.idle_timeout_s *. 1.5 +. 0.2 else 0. in
  let stuck_bound =
    if cfg.request_deadline_s > 0. then (cfg.request_deadline_s *. 4.) +. 1. else 0.
  in
  while not (Atomic.get server.stopping) do
    Thread.delay 0.05;
    if idle_bound > 0. || stuck_bound > 0. then begin
      let now = Unix.gettimeofday () in
      let victims =
        Mutex.protect server.conns_lock (fun () ->
            Hashtbl.fold
              (fun _ (conn, _) acc ->
                let age = now -. conn.last_active in
                let reap =
                  if conn.busy then stuck_bound > 0. && age > stuck_bound
                  else idle_bound > 0. && age > idle_bound
                in
                if reap then conn :: acc else acc)
              server.conns [])
      in
      List.iter
        (fun conn ->
          Atomic.incr server.idle_drops;
          try Unix.shutdown conn.cfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        victims
    end
  done

(** [start ?config store addr] binds [addr] ([unix:PATH] or [host:port];
    TCP port [0] picks a free port — see {!addr} for the actual one),
    starts the accept and watchdog threads, and returns the running
    server. [config] defaults to {!config_of_env}. A stale Unix socket
    file at the path is replaced. *)
let start ?config store addr =
  let config = match config with Some c -> c | None -> config_of_env () in
  (* A peer that closes mid-reply must surface as EPIPE on the write —
     contained to that connection — not as a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  cleanup_unix_path addr;
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  let actual = Unix.getsockname fd in
  let server =
    {
      store;
      config;
      listen_fd = fd;
      addr = actual;
      stopping = Atomic.make false;
      accept_thread = None;
      watchdog_thread = None;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      next_conn = 0;
      connections = Atomic.make 0;
      io_drops = Atomic.make 0;
      idle_drops = Atomic.make 0;
    }
  in
  server.accept_thread <- Some (Thread.create accept_loop server);
  server.watchdog_thread <- Some (Thread.create watchdog server);
  server

let addr t = t.addr
let store t = t.store
let config t = t.config
let connections t = Atomic.get t.connections
let io_drops t = Atomic.get t.io_drops
let idle_drops t = Atomic.get t.idle_drops

(** Drain-then-stop. Stop accepting and close the listener; give live
    connections [drain_timeout_s] to finish their current request and
    see the receive-side shutdown as EOF; force-close any straggler;
    join every thread; flush the journal's pending commit group; remove
    a Unix socket file. A blocked [accept]/[read] is not woken by
    [close] from another thread, so both the listener and every live
    connection get [shutdown] first — connections mid-request finish
    their current reply, idle ones see EOF. *)
let stop t =
  Atomic.set t.stopping true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  (match t.watchdog_thread with Some th -> Thread.join th | None -> ());
  t.watchdog_thread <- None;
  let snapshot_conns () =
    Mutex.protect t.conns_lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  (* Drain: no new requests (receive side closed), current ones finish. *)
  List.iter
    (fun (conn, _) ->
      try Unix.shutdown conn.cfd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    (snapshot_conns ());
  let deadline = Unix.gettimeofday () +. t.config.drain_timeout_s in
  let rec wait () =
    if live_conns t > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.01;
      wait ()
    end
  in
  wait ();
  (* Force phase: anything still here is wedged or mid-reply past the
     grace period; cut both directions so its thread unblocks. *)
  let stragglers = snapshot_conns () in
  List.iter
    (fun (conn, _) ->
      try Unix.shutdown conn.cfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    stragglers;
  List.iter (fun (_, th) -> Thread.join th) stragglers;
  (* In-flight commit groups finished above; push a pending group to
     disk so a graceful stop never leaves buffered journal records. *)
  (try Store.commit t.store with _ -> ());
  cleanup_unix_path t.addr
