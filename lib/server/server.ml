(** The multiplexing front-end: a listener socket (Unix or TCP), an
    accept thread, and one lightweight thread per connection, all sharing
    one {!Store}. Connection threads block on socket I/O — where OCaml's
    systhreads release the runtime lock — so N clients make progress
    concurrently; pure reads also run lock-free against the published
    snapshot, so read throughput is bounded by the store, not by the
    server's threading.

    Each connection speaks {!Protocol}: one request line in, one framed
    reply out, until EOF or [quit]. *)

type conn_stats = {
  mutable creads : int;  (** read requests served on this connection *)
  mutable cwrites : int;  (** write batches applied on this connection *)
  mutable cerrors : int;  (** failed requests/statements on this connection *)
}

type t = {
  store : Store.t;
  listen_fd : Unix.file_descr;
  addr : Unix.sockaddr;  (** actual bound address (resolves port 0) *)
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable next_conn : int;
  connections : int Atomic.t;  (** total connections accepted *)
}

let cleanup_unix_path = function
  | Unix.ADDR_UNIX p when Sys.file_exists p -> ( try Sys.remove p with Sys_error _ -> ())
  | _ -> ()

(* One connection: read request lines, serve each through the store,
   write framed replies. The socket is this thread's only blocking
   point; a server stop closes it out from under us, which surfaces as
   an exception here and ends the thread. *)
let serve_conn server fd =
  let stats = { creads = 0; cwrites = 0; cerrors = 0 } in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line when String.trim line = "quit" -> ()
       | line when String.trim line = "?connstats" ->
         Printf.fprintf oc "ok 1\nstats reads=%d writes=%d errors=%d\n" stats.creads
           stats.cwrites stats.cerrors;
         flush oc;
         loop ()
       | line ->
         let reply = Protocol.handle server.store line in
         if reply.Protocol.was_read then stats.creads <- stats.creads + 1
         else stats.cwrites <- stats.cwrites + 1;
         stats.cerrors <- stats.cerrors + reply.Protocol.failed;
         List.iter
           (fun l ->
             output_string oc l;
             output_char oc '\n')
           (Protocol.reply_lines reply);
         flush oc;
         loop ()
     in
     loop ()
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop server =
  let rec loop () =
    if Atomic.get server.stopping then ()
    else
      match Unix.accept server.listen_fd with
      | exception Unix.Unix_error _ -> ()  (* listener closed: stop *)
      | fd, _peer ->
        Atomic.incr server.connections;
        let id =
          Mutex.protect server.conns_lock (fun () ->
              let id = server.next_conn in
              server.next_conn <- id + 1;
              id)
        in
        let th =
          Thread.create
            (fun () ->
              serve_conn server fd;
              Mutex.protect server.conns_lock (fun () -> Hashtbl.remove server.conns id))
            ()
        in
        Mutex.protect server.conns_lock (fun () -> Hashtbl.replace server.conns id (fd, th));
        loop ()
  in
  loop ()

(** [start store addr] binds [addr] ([unix:PATH] or [host:port]; TCP
    port [0] picks a free port — see {!addr} for the actual one), starts
    the accept thread, and returns the running server. A stale Unix
    socket file at the path is replaced. *)
let start store addr =
  cleanup_unix_path addr;
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  let actual = Unix.getsockname fd in
  let server =
    {
      store;
      listen_fd = fd;
      addr = actual;
      stopping = Atomic.make false;
      accept_thread = None;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      next_conn = 0;
      connections = Atomic.make 0;
    }
  in
  server.accept_thread <- Some (Thread.create accept_loop server);
  server

let addr t = t.addr
let store t = t.store
let connections t = Atomic.get t.connections

(** Stop accepting, close the listener, join the accept thread and every
    live connection thread, and remove a Unix socket file. A blocked
    [accept]/[read] is not woken by [close] from another thread, so both
    the listener and every live connection get [shutdown] first —
    connections mid-request finish their current reply, idle ones see
    EOF. *)
let stop t =
  Atomic.set t.stopping true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  let live =
    Mutex.protect t.conns_lock (fun () ->
        Hashtbl.fold (fun _ conn acc -> conn :: acc) t.conns [])
  in
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    live;
  List.iter (fun (_, th) -> Thread.join th) live;
  cleanup_unix_path t.addr
