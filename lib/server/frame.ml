(* Partial-read / partial-write-safe line framing over raw file
   descriptors.

   The PR 9 server used stdlib channels, which hide short reads but also
   hide *why* a blocking call returned — a timeout, a reset and an EOF
   all surfaced as the same exception, and a reply interrupted mid-write
   silently lost its tail. This module reads and writes through
   [Unix.read]/[Unix.write] directly so every partial transfer is
   resumed explicitly and every failure is classified for the caller:
   the socket-timeout errors (EAGAIN/EWOULDBLOCK/EINTR-from-timeout,
   raised when SO_RCVTIMEO/SO_SNDTIMEO expires) become [`Timeout], a
   peer reset becomes [`Closed], and an over-long line — a hostile or
   corrupt frame — becomes [`Too_long] instead of an unbounded buffer. *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (* consumed prefix of [len] *)
  mutable len : int;  (* valid bytes in [buf] *)
  max_line : int;
  acc : Buffer.t;  (* line under assembly across reads *)
}

let reader ?(max_line = 1 lsl 20) fd =
  { fd; buf = Bytes.create 8192; pos = 0; len = 0; max_line; acc = Buffer.create 256 }

type read_result =
  [ `Line of string  (** one complete line, terminator stripped *)
  | `Eof  (** clean close (a partial unterminated line is discarded) *)
  | `Timeout  (** SO_RCVTIMEO expired mid-wait *)
  | `Closed of string  (** connection error (reset, broken pipe, ...) *)
  | `Too_long  (** line exceeded [max_line] bytes *) ]

(* Scan the buffered bytes for a newline, refilling from the socket as
   needed. EINTR retries; the timeout errnos surface as [`Timeout]. *)
let read_line r : read_result =
  let rec take () =
    if r.pos < r.len then begin
      match Bytes.index_from_opt r.buf r.pos '\n' with
      | Some i when i < r.len ->
        Buffer.add_subbytes r.acc r.buf r.pos (i - r.pos);
        r.pos <- i + 1;
        if Buffer.length r.acc > r.max_line then begin
          Buffer.clear r.acc;
          `Too_long
        end
        else begin
          let line = Buffer.contents r.acc in
          Buffer.clear r.acc;
          (* Strip a CR so telnet-style clients work. *)
          let n = String.length line in
          `Line (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
        end
      | _ ->
        Buffer.add_subbytes r.acc r.buf r.pos (r.len - r.pos);
        r.pos <- 0;
        r.len <- 0;
        if Buffer.length r.acc > r.max_line then begin
          Buffer.clear r.acc;
          `Too_long
        end
        else refill ()
    end
    else refill ()
  and refill () =
    match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
    | 0 ->
      Buffer.clear r.acc;
      `Eof
    | n ->
      r.pos <- 0;
      r.len <- n;
      take ()
    | exception Unix.Unix_error (EINTR, _, _) -> refill ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Timeout
    | exception Unix.Unix_error (e, _, _) -> `Closed (Unix.error_message e)
    | exception Sys_error e -> `Closed e
  in
  take ()

type write_result = [ `Ok | `Timeout | `Closed of string ]

(* Write the whole string, resuming partial writes; a send-timeout
   (SO_SNDTIMEO against a stalled reader) or reset is reported, never
   raised, so the caller can close just this connection. *)
let write_all fd s : write_result =
  let n = String.length s in
  let rec go off =
    if off >= n then `Ok
    else
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Timeout
      | exception Unix.Unix_error (e, _, _) -> `Closed (Unix.error_message e)
      | exception Sys_error e -> `Closed e
  in
  go 0

(* Socket timeouts; 0. disarms (blocks forever). *)
let set_recv_timeout fd seconds =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds with Unix.Unix_error _ -> ()

let set_send_timeout fd seconds =
  try Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds with Unix.Unix_error _ -> ()
