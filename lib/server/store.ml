(** One journaled session shared by N concurrent clients: a single
    writer funnels every state-changing batch through the session (one
    commit group each) and publishes a fresh catalog snapshot per group;
    readers execute retrieves against the latest published snapshot.

    Locking discipline (ordered, so no cycles):
    - [writer] serializes all state-changing work and is held across a
      whole client batch — apply, journal as one group, publish.
    - [eval_lock] serializes everything that touches the session's
      calendar machinery (the evaluation context and materialization
      cache are not thread-safe). The writer takes it inside [writer];
      {e impure} reads — [on <calendar>] clauses or non-aggregate
      operator calls — take only [eval_lock].

    Pure reads (the hot path) take no lock at all: they grab the
    published snapshot with one atomic load and run entirely against
    frozen copy-on-write structures, so readers never take the writer
    lock and the writer never waits for them. *)

open Calrules
open Cal_db

type t = {
  session : Session.t;
  writer : Mutex.t;
  eval_lock : Mutex.t;
  published : Catalog.t Atomic.t;
  max_queue : int;  (** admission bound: writers admitted (waiting + running) *)
  queued : int Atomic.t;  (** writers currently admitted *)
  queue_peak : int Atomic.t;  (** high-water mark of [queued] *)
  shed : int Atomic.t;  (** write requests refused at the admission bound *)
  timeouts : int Atomic.t;  (** write requests whose deadline expired in the queue *)
  dedup_hits : int Atomic.t;  (** duplicate request ids refused *)
  replies : (string, (Exec.result, string) result list) Hashtbl.t;
      (** recent replies by request id, so a duplicate replays its
          original outcome; bounded by [reply_cap] via [reply_fifo] *)
  reply_fifo : string Queue.t;
  reply_cap : int;
  replies_lock : Mutex.t;
  reads : int Atomic.t;
  writes : int Atomic.t;  (** write batches (commit groups), not statements *)
  read_errors : int Atomic.t;
  write_errors : int Atomic.t;
}

(** A statement of a write batch: a query-language statement, or a
    simulated-time advance (which fires due rules on the way). *)
type stmt = Query of string | Advance of int

(* CALQ_MAX_QUEUE mirrors the CALRULES_* env conventions: the admission
   bound for serve-time stores when the caller gives none. *)
let max_queue_of_env () =
  match Sys.getenv_opt "CALQ_MAX_QUEUE" with
  | None | Some "" -> 64
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> invalid_arg (Printf.sprintf "CALQ_MAX_QUEUE=%S is not a queue bound >= 0" s))

let of_session ?max_queue session =
  let max_queue = match max_queue with Some n -> n | None -> max_queue_of_env () in
  if max_queue < 0 then invalid_arg "Store.of_session: max_queue must be >= 0";
  {
    session;
    writer = Mutex.create ();
    eval_lock = Mutex.create ();
    published = Atomic.make (Session.freeze session);
    max_queue;
    queued = Atomic.make 0;
    queue_peak = Atomic.make 0;
    shed = Atomic.make 0;
    timeouts = Atomic.make 0;
    dedup_hits = Atomic.make 0;
    replies = Hashtbl.create 256;
    reply_fifo = Queue.create ();
    reply_cap = 1024;
    replies_lock = Mutex.create ();
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    read_errors = Atomic.make 0;
    write_errors = Atomic.make 0;
  }

let open_store ~path ?policy ?segments ?max_queue () =
  let session =
    if Sys.file_exists path then Session.recover ~path ?policy ()
    else Session.open_journaled ~path ?policy ?segments ()
  in
  of_session ?max_queue session

let session t = t.session

let snapshot t = Atomic.get t.published

let epoch t = Catalog.epoch (Atomic.get t.published)

(* Must be called with [writer] held: freeze whatever the batch left
   behind and make it the snapshot every subsequent read sees. *)
let publish t = Atomic.set t.published (Session.freeze t.session)

(* --- reads ---------------------------------------------------------- *)

(** [read_on t snap source] runs one retrieve against a previously
    grabbed snapshot, so a batch of reads can observe a single
    commit-group-atomic state. Pure retrieves run lock-free; impure ones
    (calendar clauses, operator calls) serialize with the writer's
    calendar machinery on [eval_lock] — but never take the writer
    lock. *)
let read_on t snap source =
  Atomic.incr t.reads;
  let r =
    match Qparser.query source with
    | Error e -> Error e
    | Ok q when Exec.read_is_pure q -> Exec.run_read snap source
    | Ok (Qast.Retrieve _) -> Mutex.protect t.eval_lock (fun () -> Exec.run_read snap source)
    | Ok _ -> Error ("read-only: not a retrieve statement: " ^ String.trim source)
  in
  (match r with Error _ -> Atomic.incr t.read_errors | Ok _ -> ());
  r

(** One retrieve against the latest published snapshot. *)
let read t source = read_on t (snapshot t) source

(** [read_batch ?domains t sources] fans a batch of read-only queries
    across the domain pool, all against one snapshot; results come back
    in request order. Only the thread owning the default pool (the one
    that first dispatched on it) may call this — connection threads use
    {!read} / {!read_on}. *)
let read_batch ?domains t sources =
  let snap = snapshot t in
  let pool = Cal_parallel.Pool.default () in
  Cal_parallel.Pool.parallel_map ?domains pool (fun src -> read_on t snap src) sources

(* --- writes --------------------------------------------------------- *)

let run_stmt t = function
  | Query source -> Session.query t.session source
  | Advance days ->
    Session.advance_days t.session days;
    Ok (Exec.Msg (Printf.sprintf "advanced %d day%s" days (if days = 1 then "" else "s")))

(** Outcome of an idempotent, admission-controlled write. *)
type write_outcome =
  | Applied of (Exec.result, string) result list
      (** the batch ran; per-statement results in order *)
  | Duplicate of (Exec.result, string) result list option
      (** the request id already applied — [Some] replays the cached
          original reply, [None] when it aged out or predates recovery *)
  | Overloaded  (** refused at the admission bound; retryable *)
  | Timed_out  (** deadline expired before the writer freed up; retryable *)

(* Bounded admission in front of the single writer: a request is
   admitted only while fewer than [max_queue] writers are in the
   building (waiting or applying); everyone else is shed immediately
   with a retryable error instead of queueing without bound. Admitted
   writers then wait for the mutex, but never past [deadline]. *)
let admit t =
  let rec reserve () =
    let n = Atomic.get t.queued in
    if n >= t.max_queue then false
    else if Atomic.compare_and_set t.queued n (n + 1) then begin
      let rec bump () =
        let p = Atomic.get t.queue_peak in
        if n + 1 > p && not (Atomic.compare_and_set t.queue_peak p (n + 1)) then bump ()
      in
      bump ();
      true
    end
    else reserve ()
  in
  reserve ()

let lock_writer ?deadline t =
  match deadline with
  | None ->
    Mutex.lock t.writer;
    true
  | Some dl ->
    let rec go () =
      if Mutex.try_lock t.writer then true
      else if Unix.gettimeofday () > dl then false
      else begin
        Thread.delay 0.0005;
        go ()
      end
    in
    go ()

let cache_reply t id results =
  Mutex.protect t.replies_lock (fun () ->
      if not (Hashtbl.mem t.replies id) then begin
        Hashtbl.replace t.replies id results;
        Queue.push id t.reply_fifo;
        while Queue.length t.reply_fifo > t.reply_cap do
          Hashtbl.remove t.replies (Queue.pop t.reply_fifo)
        done
      end)

let cached_reply t id =
  Mutex.protect t.replies_lock (fun () -> Hashtbl.find_opt t.replies id)

(* Must hold [writer]. Runs the batch as one commit group — the request
   id, when present, journals inside the same group — and publishes. *)
let apply_locked t ?req_id stmts =
  Mutex.protect t.eval_lock (fun () ->
      let results =
        Session.batch t.session (fun () ->
            (match req_id with Some id -> Session.mark_request t.session id | None -> ());
            List.map
              (fun stmt ->
                match run_stmt t stmt with
                | r -> r
                | exception Session.Session_error e -> Error e
                | exception Journal.Journal_error e -> Error ("journal: " ^ e))
              stmts)
      in
      publish t;
      List.iter (function Error _ -> Atomic.incr t.write_errors | Ok _ -> ()) results;
      results)

(** [write_idem ?req_id ?deadline t stmts] applies a client batch as one
    commit group then publishes the resulting state as a new snapshot
    epoch — under admission control ([Overloaded] at the bound,
    [Timed_out] past [deadline], an absolute {!Unix.gettimeofday}
    instant) and exactly-once dedup: a batch whose [req_id] already
    applied returns [Duplicate] without touching the store. Per-statement
    results come back in order; an erroring statement does not abort the
    ones after it (same semantics as issuing them sequentially on one
    session). *)
let write_idem ?req_id ?deadline t stmts =
  if not (admit t) then begin
    Atomic.incr t.shed;
    Overloaded
  end
  else
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.queued)
      (fun () ->
        if not (lock_writer ?deadline t) then begin
          Atomic.incr t.timeouts;
          Timed_out
        end
        else
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.writer)
            (fun () ->
              match req_id with
              | Some id when Session.request_applied t.session id ->
                Atomic.incr t.dedup_hits;
                Duplicate (cached_reply t id)
              | _ ->
                Atomic.incr t.writes;
                let results = apply_locked t ?req_id stmts in
                (match req_id with Some id -> cache_reply t id results | None -> ());
                results |> fun r -> Applied r))

(** The PR 9 write surface: no request id, no deadline — still admission
    controlled, so an overload surfaces as one [Error] result. *)
let write t stmts =
  match write_idem t stmts with
  | Applied results -> results
  | Duplicate _ -> assert false (* no req_id was supplied *)
  | Overloaded -> [ Error "retryable overloaded: admission queue full" ]
  | Timed_out -> [ Error "retryable deadline: writer busy past the request deadline" ]

(** Hash of the serialized full-state digest (see
    {!Session.state_digest}) — takes the writer lock, so it observes a
    commit-group boundary, and hashes so the result is one wire line. *)
let digest t =
  Mutex.protect t.writer (fun () ->
      Mutex.protect t.eval_lock (fun () ->
          Digest.to_hex (Digest.string (Session.state_digest t.session))))

(** Force the journal's pending group to disk (Manual / Group policies). *)
let commit t =
  Mutex.protect t.writer (fun () -> Session.commit t.session)

(** Test/bench hook: hold the writer lock for [seconds], blocking the
    caller — a deterministic way to make concurrent writes queue, shed,
    or run out their deadline. *)
let occupy_writer t seconds = Mutex.protect t.writer (fun () -> Thread.delay seconds)

(* --- snapshot digests ----------------------------------------------- *)

(** Canonical rendering of every table of a catalog (snapshot or live),
    in sorted table order and ascending row order, hashed. Two catalogs
    with identical digests hold identical user-visible rows — the
    commit-group-atomicity witness the interleaving property and bench
    E22 compare against serial-oracle prefixes. *)
let catalog_digest (cat : Catalog.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      Buffer.add_string buf "%table ";
      Buffer.add_string buf name;
      Buffer.add_char buf '\n';
      let tbl = Catalog.table cat name in
      Table.iter tbl (fun _ tuple ->
          Array.iter
            (fun v ->
              Buffer.add_string buf (Value.to_string v);
              Buffer.add_char buf '|')
            tuple;
          Buffer.add_char buf '\n'))
    (Catalog.table_names cat);
  Digest.to_hex (Digest.string (Buffer.contents buf))

type stats = {
  sreads : int;  (** read statements served *)
  swrites : int;  (** write batches (= commit groups) applied *)
  sread_errors : int;
  swrite_errors : int;
  sepoch : int;  (** published snapshot epoch *)
  squeued : int;  (** writers admitted right now *)
  squeue_peak : int;  (** admission high-water mark *)
  sshed : int;  (** writes refused at the admission bound *)
  stimeouts : int;  (** writes whose deadline expired in the queue *)
  sdedup : int;  (** duplicate request ids refused *)
}

let stats t =
  {
    sreads = Atomic.get t.reads;
    swrites = Atomic.get t.writes;
    sread_errors = Atomic.get t.read_errors;
    swrite_errors = Atomic.get t.write_errors;
    sepoch = epoch t;
    squeued = Atomic.get t.queued;
    squeue_peak = Atomic.get t.queue_peak;
    sshed = Atomic.get t.shed;
    stimeouts = Atomic.get t.timeouts;
    sdedup = Atomic.get t.dedup_hits;
  }
