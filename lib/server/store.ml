(** One journaled session shared by N concurrent clients: a single
    writer funnels every state-changing batch through the session (one
    commit group each) and publishes a fresh catalog snapshot per group;
    readers execute retrieves against the latest published snapshot.

    Locking discipline (ordered, so no cycles):
    - [writer] serializes all state-changing work and is held across a
      whole client batch — apply, journal as one group, publish.
    - [eval_lock] serializes everything that touches the session's
      calendar machinery (the evaluation context and materialization
      cache are not thread-safe). The writer takes it inside [writer];
      {e impure} reads — [on <calendar>] clauses or non-aggregate
      operator calls — take only [eval_lock].

    Pure reads (the hot path) take no lock at all: they grab the
    published snapshot with one atomic load and run entirely against
    frozen copy-on-write structures, so readers never take the writer
    lock and the writer never waits for them. *)

open Calrules
open Cal_db

type t = {
  session : Session.t;
  writer : Mutex.t;
  eval_lock : Mutex.t;
  published : Catalog.t Atomic.t;
  reads : int Atomic.t;
  writes : int Atomic.t;  (** write batches (commit groups), not statements *)
  read_errors : int Atomic.t;
  write_errors : int Atomic.t;
}

(** A statement of a write batch: a query-language statement, or a
    simulated-time advance (which fires due rules on the way). *)
type stmt = Query of string | Advance of int

let of_session session =
  {
    session;
    writer = Mutex.create ();
    eval_lock = Mutex.create ();
    published = Atomic.make (Session.freeze session);
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    read_errors = Atomic.make 0;
    write_errors = Atomic.make 0;
  }

let open_store ~path ?policy ?segments () =
  let session =
    if Sys.file_exists path then Session.recover ~path ?policy ()
    else Session.open_journaled ~path ?policy ?segments ()
  in
  of_session session

let session t = t.session

let snapshot t = Atomic.get t.published

let epoch t = Catalog.epoch (Atomic.get t.published)

(* Must be called with [writer] held: freeze whatever the batch left
   behind and make it the snapshot every subsequent read sees. *)
let publish t = Atomic.set t.published (Session.freeze t.session)

(* --- reads ---------------------------------------------------------- *)

(** [read_on t snap source] runs one retrieve against a previously
    grabbed snapshot, so a batch of reads can observe a single
    commit-group-atomic state. Pure retrieves run lock-free; impure ones
    (calendar clauses, operator calls) serialize with the writer's
    calendar machinery on [eval_lock] — but never take the writer
    lock. *)
let read_on t snap source =
  Atomic.incr t.reads;
  let r =
    match Qparser.query source with
    | Error e -> Error e
    | Ok q when Exec.read_is_pure q -> Exec.run_read snap source
    | Ok (Qast.Retrieve _) -> Mutex.protect t.eval_lock (fun () -> Exec.run_read snap source)
    | Ok _ -> Error ("read-only: not a retrieve statement: " ^ String.trim source)
  in
  (match r with Error _ -> Atomic.incr t.read_errors | Ok _ -> ());
  r

(** One retrieve against the latest published snapshot. *)
let read t source = read_on t (snapshot t) source

(** [read_batch ?domains t sources] fans a batch of read-only queries
    across the domain pool, all against one snapshot; results come back
    in request order. Only the thread owning the default pool (the one
    that first dispatched on it) may call this — connection threads use
    {!read} / {!read_on}. *)
let read_batch ?domains t sources =
  let snap = snapshot t in
  let pool = Cal_parallel.Pool.default () in
  Cal_parallel.Pool.parallel_map ?domains pool (fun src -> read_on t snap src) sources

(* --- writes --------------------------------------------------------- *)

let run_stmt t = function
  | Query source -> Session.query t.session source
  | Advance days ->
    Session.advance_days t.session days;
    Ok (Exec.Msg (Printf.sprintf "advanced %d day%s" days (if days = 1 then "" else "s")))

(** [write t stmts] applies a client batch as one commit group — all the
    statements journal atomically — then publishes the resulting state
    as a new snapshot epoch. Per-statement results come back in order;
    an erroring statement does not abort the ones after it (same
    semantics as issuing them sequentially on one session). *)
let write t stmts =
  Atomic.incr t.writes;
  Mutex.protect t.writer (fun () ->
      Mutex.protect t.eval_lock (fun () ->
          let results =
            Session.batch t.session (fun () ->
                List.map
                  (fun stmt ->
                    match run_stmt t stmt with
                    | r -> r
                    | exception Session.Session_error e -> Error e
                    | exception Journal.Journal_error e -> Error ("journal: " ^ e))
                  stmts)
          in
          publish t;
          List.iter
            (function Error _ -> Atomic.incr t.write_errors | Ok _ -> ())
            results;
          results))

(** Hash of the serialized full-state digest (see
    {!Session.state_digest}) — takes the writer lock, so it observes a
    commit-group boundary, and hashes so the result is one wire line. *)
let digest t =
  Mutex.protect t.writer (fun () ->
      Mutex.protect t.eval_lock (fun () ->
          Digest.to_hex (Digest.string (Session.state_digest t.session))))

(** Force the journal's pending group to disk (Manual / Group policies). *)
let commit t =
  Mutex.protect t.writer (fun () -> Session.commit t.session)

(* --- snapshot digests ----------------------------------------------- *)

(** Canonical rendering of every table of a catalog (snapshot or live),
    in sorted table order and ascending row order, hashed. Two catalogs
    with identical digests hold identical user-visible rows — the
    commit-group-atomicity witness the interleaving property and bench
    E22 compare against serial-oracle prefixes. *)
let catalog_digest (cat : Catalog.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      Buffer.add_string buf "%table ";
      Buffer.add_string buf name;
      Buffer.add_char buf '\n';
      let tbl = Catalog.table cat name in
      Table.iter tbl (fun _ tuple ->
          Array.iter
            (fun v ->
              Buffer.add_string buf (Value.to_string v);
              Buffer.add_char buf '|')
            tuple;
          Buffer.add_char buf '\n'))
    (Catalog.table_names cat);
  Digest.to_hex (Digest.string (Buffer.contents buf))

type stats = {
  sreads : int;  (** read statements served *)
  swrites : int;  (** write batches (= commit groups) applied *)
  sread_errors : int;
  swrite_errors : int;
  sepoch : int;  (** published snapshot epoch *)
}

let stats t =
  {
    sreads = Atomic.get t.reads;
    swrites = Atomic.get t.writes;
    sread_errors = Atomic.get t.read_errors;
    swrite_errors = Atomic.get t.write_errors;
    sepoch = epoch t;
  }
