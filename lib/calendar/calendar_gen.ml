exception Misaligned of Granularity.t * Granularity.t
exception Generation_too_large of int

let generate ?(max_intervals = 1_000_000) ~epoch ~coarse ~fine ~window () =
  if not (Unit_system.aligned ~coarse ~fine) then raise (Misaligned (coarse, fine));
  let lo_off = Chronon.to_offset (Interval.lo window) in
  let hi_off = Chronon.to_offset (Interval.hi window) in
  if Granularity.equal coarse fine then begin
    let count = hi_off - lo_off + 1 in
    if count > max_intervals then raise (Generation_too_large count);
    Interval_set.of_list
      (List.init count (fun k -> Interval.singleton (Chronon.of_offset (lo_off + k))))
  end
  else begin
    let start_fine k = Unit_system.start_of_index ~epoch fine k in
    let instant_lo = start_fine lo_off in
    let instant_hi = start_fine (hi_off + 1) - 1 in
    let k_lo = Unit_system.index_of_instant ~epoch coarse instant_lo in
    let k_hi = Unit_system.index_of_instant ~epoch coarse instant_hi in
    let count = k_hi - k_lo + 1 in
    if count > max_intervals then raise (Generation_too_large count);
    let unit_interval k =
      let f_lo = Unit_system.index_of_instant ~epoch fine (Unit_system.start_of_index ~epoch coarse k) in
      let f_hi =
        Unit_system.index_of_instant ~epoch fine (Unit_system.start_of_index ~epoch coarse (k + 1))
        - 1
      in
      let f_lo = max f_lo lo_off and f_hi = min f_hi hi_off in
      if f_lo > f_hi then None
      else Some (Interval.make (Chronon.of_offset f_lo) (Chronon.of_offset f_hi))
    in
    Interval_set.of_list (List.filter_map unit_interval (List.init count (fun i -> k_lo + i)))
  end

(* Streaming generation: the same coarse-units-as-fine-intervals walk as
   [generate], but lazy and endless — the caller cuts the stream
   (Interval_seq.clip, Seq.take_while) instead of this module enforcing a
   [max_intervals] cap. The first element is the unit containing [start],
   unclipped. *)
let generate_seq ~epoch ~coarse ~fine ~start () =
  if not (Unit_system.aligned ~coarse ~fine) then raise (Misaligned (coarse, fine));
  let start_off = Chronon.to_offset start in
  if Granularity.equal coarse fine then
    Seq.map (fun k -> Interval.singleton (Chronon.of_offset (start_off + k))) (Seq.ints 0)
  else begin
    let k0 =
      Unit_system.index_of_instant ~epoch coarse
        (Unit_system.start_of_index ~epoch fine start_off)
    in
    let unit_interval k =
      let f_lo =
        Unit_system.index_of_instant ~epoch fine (Unit_system.start_of_index ~epoch coarse k)
      in
      let f_hi =
        Unit_system.index_of_instant ~epoch fine (Unit_system.start_of_index ~epoch coarse (k + 1))
        - 1
      in
      Interval.make (Chronon.of_offset f_lo) (Chronon.of_offset f_hi)
    in
    Seq.map (fun i -> unit_interval (k0 + i)) (Seq.ints 0)
  end

let caloperate ?(keep_partial = false) ?end_ ~counts cal =
  if counts = [] then invalid_arg "Calendar_gen.caloperate: empty count list";
  if List.exists (fun c -> c <= 0) counts then
    invalid_arg "Calendar_gen.caloperate: counts must be positive";
  let counts = Array.of_list counts in
  let intervals = Interval_set.to_array cal in
  let n = Array.length intervals in
  let within_end hi =
    match end_ with None -> true | Some e -> Chronon.compare hi e <= 0
  in
  let rec go acc group start =
    if start >= n then List.rev acc
    else
      let want = counts.(group mod Array.length counts) in
      let last = start + want - 1 in
      if last >= n then
        if keep_partial && start <= n - 1 then
          let g = Interval.make (Interval.lo intervals.(start)) (Interval.hi intervals.(n - 1)) in
          if within_end (Interval.hi g) then List.rev (g :: acc) else List.rev acc
        else List.rev acc
      else
        let g = Interval.make (Interval.lo intervals.(start)) (Interval.hi intervals.(last)) in
        if within_end (Interval.hi g) then go (g :: acc) (group + 1) (last + 1)
        else List.rev acc
  in
  Interval_set.of_list (go [] 0 0)

let refine ~epoch ~from_ ~to_ set =
  if Granularity.equal from_ to_ then set
  else begin
    if not (Unit_system.aligned ~coarse:from_ ~fine:to_) then raise (Misaligned (from_, to_));
    let conv i =
      let f_lo =
        Unit_system.index_of_instant ~epoch to_
          (Unit_system.start_of_index ~epoch from_ (Chronon.to_offset (Interval.lo i)))
      in
      let f_hi =
        Unit_system.index_of_instant ~epoch to_
          (Unit_system.start_of_index ~epoch from_ (Chronon.to_offset (Interval.hi i) + 1))
        - 1
      in
      Interval.make (Chronon.of_offset f_lo) (Chronon.of_offset f_hi)
    in
    Interval_set.map conv set
  end
