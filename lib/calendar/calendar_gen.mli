(** Generation of basic-calendar values and the [generate] / [caloperate]
    procedures of section 3.2.

    [generate] materializes one basic calendar (e.g. YEARS) as intervals of
    a finer basic calendar's chronons (e.g. DAYS), bounded by a window —
    the primitive every evaluation plan bottoms out in. *)

exception Misaligned of Granularity.t * Granularity.t

(** Raised when a generation would produce more than [max_intervals]
    intervals; carries the requested count. Protects naive full-lifespan
    evaluation from materializing, say, a century of seconds. *)
exception Generation_too_large of int

(** [generate ~epoch ~coarse ~fine ~window] lists the [coarse] units
    overlapping [window] as intervals of [fine] chronons, clipped to the
    window (the paper's [generate(cal1, cal2, \[ts,te\])], which clips the
    last year of the Jan-87..Jan-92 example to (1827,1829)).

    @raise Misaligned when [fine] does not subdivide [coarse] exactly
    (e.g. WEEKS under YEARS).
    @raise Generation_too_large when more than [max_intervals] (default
    1_000_000) intervals would be produced. *)
val generate :
  ?max_intervals:int ->
  epoch:Civil.date ->
  coarse:Granularity.t ->
  fine:Granularity.t ->
  window:Interval.t ->
  unit ->
  Interval_set.t

(** [generate_seq ~epoch ~coarse ~fine ~start ()] streams the [coarse]
    units as intervals of [fine] chronons, lazily and without end,
    starting with the unit containing [start] (unclipped — the first
    interval's low endpoint may precede [start]). This is the streaming
    counterpart of {!generate}: next-fire probes pull a handful of units
    forward from the probe instant instead of materializing a window.
    Cut the result with {!Interval_seq.clip} or [Seq.take_while].

    @raise Misaligned when [fine] does not subdivide [coarse] exactly. *)
val generate_seq :
  epoch:Civil.date ->
  coarse:Granularity.t ->
  fine:Granularity.t ->
  start:Chronon.t ->
  unit ->
  Interval.t Seq.t

(** [caloperate ~counts cal] derives a new calendar whose k-th interval is
    the union of the next [counts[k mod length counts]] intervals of [cal]
    (the paper's [caloperate(C, Te; (x1;...;xn))] with a circular count
    list, e.g. WEEKS = caloperate(DAYS, *; 7)).

    Trailing input intervals that do not fill a complete group are dropped
    unless [keep_partial] is set. With [end_], grouping stops once a group
    would extend past that chronon.

    @raise Invalid_argument if [counts] is empty or contains a
    non-positive count. *)
val caloperate :
  ?keep_partial:bool ->
  ?end_:Chronon.t ->
  counts:int list ->
  Interval_set.t ->
  Interval_set.t

(** [refine ~epoch ~from_ ~to_ set] re-expresses a calendar stored in
    [from_] chronons as intervals of the finer [to_] chronons (each
    [from_] unit expands to the exact range of [to_] units it covers).
    Identity when the granularities are equal.

    @raise Misaligned when [to_] does not subdivide [from_]. *)
val refine :
  epoch:Civil.date ->
  from_:Granularity.t ->
  to_:Granularity.t ->
  Interval_set.t ->
  Interval_set.t
