type t =
  | Leaf of Interval_set.t
  | Node of t list

let empty = Leaf Interval_set.empty
let leaf s = Leaf s
let of_pairs pairs = Leaf (Interval_set.of_pairs pairs)
let of_interval i = Leaf (Interval_set.singleton i)
let node l = Node l

let rec order = function
  | Leaf _ -> 1
  | Node [] -> 2
  | Node (x :: _) -> 1 + order x

let rec is_empty = function
  | Leaf s -> Interval_set.is_empty s
  | Node l -> List.for_all is_empty l

let rec size = function
  | Leaf s -> Interval_set.cardinal s
  | Node l -> List.fold_left (fun acc c -> acc + size c) 0 l

let rec leaves = function
  | Leaf s -> [ s ]
  | Node l -> List.concat_map leaves l

(* One sort over all leaves' members, not a left fold of pairwise unions
   (which re-merges the accumulator once per leaf — quadratic for the
   many-single-interval-leaf trees foreach produces). *)
let flatten t =
  match leaves t with
  | [] -> Interval_set.empty
  | [ s ] -> s
  | ss -> Interval_set.of_list (List.concat_map Interval_set.to_list ss)

let rec simplify t =
  match t with
  | Leaf _ -> t
  | Node l -> (
    let l = List.map simplify l in
    let l = List.filter (fun c -> not (is_empty c)) l in
    match l with
    | [] -> empty
    | [ x ] -> x
    | _ ->
      let all_small =
        List.for_all
          (function Leaf s -> Interval_set.cardinal s <= 1 | Node _ -> false)
          l
      in
      if all_small then
        Leaf
          (Interval_set.of_list
             (List.concat_map (fun c -> Interval_set.to_list (flatten c)) l))
      else Node l)

let rec equal a b =
  match (a, b) with
  | Leaf x, Leaf y -> Interval_set.equal x y
  | Node x, Node y ->
    (* Single walk; the [List.length] pre-check walked both spines in
       full even when the first children already differed. *)
    let rec all2 = function
      | [], [] -> true
      | xa :: x, yb :: y -> equal xa yb && all2 (x, y)
      | _, _ -> false
    in
    all2 (x, y)
  | Leaf _, Node _ | Node _, Leaf _ -> false

(* --- foreach ------------------------------------------------------- *)

let keep_interval ~strict op reference acc x =
  if Listop.apply op x reference then
    if strict && Listop.clips op then
      match Interval.intersect x reference with
      | Some clipped -> clipped :: acc
      | None -> acc
    else x :: acc
  else acc

let apply_one ~strict op c reference =
  Interval_set.of_list
    (Interval_set.fold (fun acc x -> keep_interval ~strict op reference acc x) [] c)

(* The reference implementation: every (interval, reference) pair is
   tested. Kept for the E12 ablation benchmark and as the qcheck oracle
   for the indexed fast path below. *)
let foreach_pairwise ~strict op lhs rhs =
  let c = flatten lhs in
  let rec go = function
    | Leaf s -> (
      match Interval_set.to_list s with
      | [] -> empty
      | [ reference ] -> Leaf (apply_one ~strict op c reference)
      | refs -> Node (List.map (fun r -> Leaf (apply_one ~strict op c r)) refs))
    | Node l -> Node (List.map go l)
  in
  go rhs

(* Indexed evaluation: the left operand is sorted by (lo, hi), so for each
   reference interval only a contiguous candidate slice can qualify:

   - ops needing lo inside the reference (During, Starts, Finishes,
     Equals): indices with ref.lo <= lo_i <= ref.hi;
   - overlap-style ops: indices with lo_i <= ref.hi whose running
     max(hi) reaches ref.lo — the prefix-max of hi is monotone, so the
     left edge is binary-searchable too;
   - ordering ops (Before, Meets, Le): any qualifying interval has
     lo_i <= ref.lo, bounding the right edge.

   The listop itself is still applied to every candidate, so this is a
   pure pruning optimization with identical results. *)
type indexed = {
  arr : Interval.t array;  (* sorted by (lo, hi) *)
  max_hi : Chronon.t array;  (* prefix maximum of hi *)
}

let make_index c =
  let arr = Interval_set.to_array c in
  let n = Array.length arr in
  let max_hi = Array.make (max n 1) Chronon.minus_infinity in
  let running = ref Chronon.minus_infinity in
  for i = 0 to n - 1 do
    running := Chronon.max !running (Interval.hi arr.(i));
    max_hi.(i) <- !running
  done;
  { arr; max_hi }

(* First index with lo >= v (n when none). *)
let lower_bound_lo { arr; _ } v =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare (Interval.lo arr.(mid)) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with lo > v (n when none). *)
let upper_bound_lo { arr; _ } v =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare (Interval.lo arr.(mid)) v <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index whose prefix-max hi reaches v (n when none). *)
let first_reaching { max_hi; arr; _ } v =
  let n = Array.length arr in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare max_hi.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let candidate_range idx op reference =
  let n = Array.length idx.arr in
  if n = 0 then (1, 0)
  else
    match op with
    | Listop.During | Listop.Starts | Listop.Finishes | Listop.Equals ->
      (lower_bound_lo idx (Interval.lo reference), upper_bound_lo idx (Interval.hi reference) - 1)
    | Listop.Overlaps | Listop.Intersects ->
      (first_reaching idx (Interval.lo reference), upper_bound_lo idx (Interval.hi reference) - 1)
    | Listop.Before | Listop.Meets | Listop.Le | Listop.Contains ->
      (0, upper_bound_lo idx (Interval.lo reference) - 1)

let apply_one_indexed ~strict op idx reference =
  let start, stop = candidate_range idx op reference in
  let acc = ref [] in
  for i = stop downto start do
    acc := keep_interval ~strict op reference !acc idx.arr.(i)
  done;
  Interval_set.of_list !acc

let foreach ~strict op lhs rhs =
  let idx = make_index (flatten lhs) in
  let rec go = function
    | Leaf s -> (
      match Interval_set.to_list s with
      | [] -> empty
      | [ reference ] -> Leaf (apply_one_indexed ~strict op idx reference)
      | refs -> Node (List.map (fun r -> Leaf (apply_one_indexed ~strict op idx r)) refs))
    | Node l -> Node (List.map go l)
  in
  go rhs

(* --- selection ------------------------------------------------------ *)

type sel_atom =
  | Nth of int
  | Last
  | Range of int * int

type selector = sel_atom list

let positions sel n =
  let resolve = function
    | Nth i when i > 0 -> if i <= n then [ i ] else []
    | Nth i when i < 0 -> if -i <= n then [ n + 1 + i ] else []
    | Nth _ -> []
    | Last -> if n >= 1 then [ n ] else []
    | Range (a, b) ->
      let a = max a 1 and b = min b n in
      if a > b then [] else List.init (b - a + 1) (fun k -> a + k)
  in
  List.sort_uniq Int.compare (List.concat_map resolve sel)

let select_leaf sel s =
  let n = Interval_set.cardinal s in
  Interval_set.of_list (List.map (Interval_set.nth s) (positions sel n))

let select sel t =
  let rec go = function
    | Leaf s -> Leaf (select_leaf sel s)
    | Node l -> Node (List.map go l)
  in
  simplify (go t)

let nth_by_label ~base x t =
  select [ Nth (x - base + 1) ] t

(* --- element-wise set operations ------------------------------------ *)

let binop set_op a b =
  let rec go a b =
    match (a, b) with
    | Leaf x, Leaf y -> Leaf (set_op x y)
    | Node x, Node y when List.length x = List.length y -> Node (List.map2 go x y)
    | _ -> Leaf (set_op (flatten a) (flatten b))
  in
  go a b

let union = binop Interval_set.union
let diff = binop Interval_set.diff
let inter = binop Interval_set.inter

(* --- windowing ------------------------------------------------------ *)

let rec restrict t w =
  match t with
  | Leaf s -> Leaf (Interval_set.restrict s w)
  | Node l ->
    let l = List.filter_map
        (fun c ->
          let r = restrict c w in
          if is_empty r then None else Some r)
        l
    in
    Node l

let rec pp ppf = function
  | Leaf s -> Interval_set.pp ppf s
  | Node l ->
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      l

let to_string t = Format.asprintf "%a" pp t
