(** Translation from recurrence rules to calendar-algebra expressions.

    Demonstrates the comparative claim of section 5: common recurrences
    ("every Tuesday", "3rd Friday of the month", "last day of the month",
    yearly anniversaries) are expressible in the calendar expression
    language, and the two systems agree exactly on the translatable
    fragment (property-tested). *)

(** [to_expression rule] is a calendar expression string denoting the
    same days as the (unbounded) recurrence; [None] outside the
    translatable fragment (INTERVAL > 1, COUNT, UNTIL, BYSETPOS — the
    algebra expresses the {e calendar}, not a bounded enumeration; a bare
    WEEKLY rule depends on dtstart's weekday). *)
val to_expression : Rrule.t -> string option

(** [to_periodic ctx rule] is the minimal periodic normal form of the
    recurrence (with its fine granularity), when both {!to_expression}
    translates it and {!Cal_lang.Periodic.compile} accepts the result.
    Closed-form next-occurrence queries on the rule then need no
    generation and no lifespan bound. *)
val to_periodic :
  Cal_lang.Context.t -> Rrule.t -> (Granularity.t * Cal_lang.Periodic.t) option
