(** Translation from recurrence rules to calendar-algebra expressions.

    Demonstrates the comparative claim of section 5: common recurrences
    are expressible in the calendar expression language. Returns [None]
    for rules outside the translatable fragment (INTERVAL > 1, COUNT,
    UNTIL, BYSETPOS — the algebra expresses the {e calendar}, not a
    bounded enumeration). *)

let weekday_selector wd = Printf.sprintf "[%d]/DAYS:during:WEEKS" wd

let ordinal_selector = function
  | Some o when o > 0 -> Printf.sprintf "[%d]" o
  | Some o -> Printf.sprintf "[%d]" o
  | None -> ""

let union = String.concat " + "

(** [to_expression rule] is a calendar expression string denoting the same
    days as the (unbounded) recurrence, when the rule is in the
    translatable fragment. *)
let to_expression (rule : Rrule.t) =
  if rule.Rrule.interval <> 1 || rule.Rrule.count <> None || rule.Rrule.until <> None
     || rule.Rrule.by_set_pos <> []
  then None
  else
    match rule.Rrule.freq with
    | Rrule.Daily -> (
      match (rule.Rrule.by_day, rule.Rrule.by_month_day, rule.Rrule.by_month) with
      | [], [], [] -> Some "DAYS"
      | by_day, [], [] when List.for_all (fun d -> d.Rrule.ordinal = None) by_day ->
        Some (union (List.map (fun d -> weekday_selector d.Rrule.weekday) by_day))
      | _ -> None)
    | Rrule.Weekly -> (
      match (rule.Rrule.by_day, rule.Rrule.by_month_day, rule.Rrule.by_month) with
      | [], [], [] -> None (* depends on dtstart's weekday, not a pure calendar *)
      | by_day, [], [] when List.for_all (fun d -> d.Rrule.ordinal = None) by_day ->
        Some (union (List.map (fun d -> weekday_selector d.Rrule.weekday) by_day))
      | _ -> None)
    | Rrule.Monthly -> (
      match (rule.Rrule.by_day, rule.Rrule.by_month_day, rule.Rrule.by_month) with
      | [ { Rrule.ordinal = Some o; weekday } ], [], [] ->
        (* e.g. 3rd Friday of every month: the o-th Friday among the
           Fridays overlapping each month. *)
        Some
          (Printf.sprintf "%s/(%s):overlaps:MONTHS" (ordinal_selector (Some o))
             (weekday_selector weekday))
      | [], [ d ], [] when d > 0 -> Some (Printf.sprintf "[%d]/DAYS:during:MONTHS" d)
      | [], [ -1 ], [] -> Some "[n]/DAYS:during:MONTHS"
      | [], [ d ], [] -> Some (Printf.sprintf "[%d]/DAYS:during:MONTHS" d)
      | _ -> None)
    | Rrule.Yearly -> (
      match (rule.Rrule.by_day, rule.Rrule.by_month_day, rule.Rrule.by_month) with
      | [], [ d ], [ m ] when d > 0 ->
        Some (Printf.sprintf "[%d]/DAYS:during:[%d]/MONTHS:during:YEARS" d m)
      | [ { Rrule.ordinal = Some o; weekday } ], [], [ m ] ->
        Some
          (Printf.sprintf "%s/(%s):overlaps:[%d]/MONTHS:during:YEARS" (ordinal_selector (Some o))
             (weekday_selector weekday) m)
      | _ -> None)

(** Compile a translatable recurrence straight to the minimal periodic
    normal form: translate to expression text, parse, and run the
    closed-form compiler ({!Cal_lang.Periodic.compile}). [None] when the
    rule is outside the RRULE translatable fragment {e or} the resulting
    expression is outside the periodic fragment — the gates are
    independent, and the translatability-matrix test in
    [test/test_rrule.ml] pins which shapes land where. *)
let to_periodic (ctx : Cal_lang.Context.t) (rule : Rrule.t) =
  match to_expression rule with
  | None -> None
  | Some src -> (
    match Cal_lang.Parser.expr src with
    | Error _ -> None
    | Ok e -> Cal_lang.Periodic.compile ctx e)
