(** Heap storage: a growable chunked array of tuple slots. Row ids are
    stable; deletion leaves a tombstone. *)

type tuple = Value.t array

type t

val create : unit -> t

(** O(1) snapshot: the result is an independent handle sharing all
    storage with [t]; the first mutation through either handle after a
    freeze copies the chunk directory (pointers only) and each touched
    256-slot chunk once per epoch, so neither handle ever observes the
    other's writes. Copies no tuple data. *)
val freeze : t -> t

(** Appends and returns the fresh row id. *)
val insert : t -> tuple -> int

(** [None] for deleted or out-of-range rows. *)
val get : t -> int -> tuple option

(** @raise Invalid_argument when the row is absent. *)
val get_exn : t -> int -> tuple

(** Returns [false] when the row was already gone. *)
val delete : t -> int -> bool

val update : t -> int -> tuple -> bool

(** Live tuples. *)
val count : t -> int

(** Exclusive upper bound of ever-issued row ids; every live row has
    [rowid < high_water t]. Partitioned scans chunk [0, high_water). *)
val high_water : t -> int

(** Visits live rows with [lo <= rowid < hi], in row-id order. *)
val iter_range : t -> lo:int -> hi:int -> (int -> tuple -> unit) -> unit

(** Visits live rows in row-id order. *)
val iter : t -> (int -> tuple -> unit) -> unit

val fold : t -> ('a -> int -> tuple -> 'a) -> 'a -> 'a
val rowids : t -> int list
