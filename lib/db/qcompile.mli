(** Expression compilation: lower {!Qexpr.t} trees once into OCaml
    closures with columns resolved to integer offsets at compile time.

    Semantics match the tree-walking {!Qexpr.eval} exactly (same
    short-circuiting, Null propagation and error timing); the
    differential suite in [test/test_plan.ml] holds the interpreter as
    the oracle. *)

type code = Value.t array -> Value.t option array -> Value.t array -> Value.t
(** [code params outer tuple]: extracted plan constants, materialized
    outer-environment slots, and the current row. *)

type env

(** [make_env ~catalog ?table ()] opens a compilation scope. Columns of
    [table] compile to tuple offsets; all other names are interned as
    outer slots shared across every expression compiled in this scope. *)
val make_env : catalog:Catalog.t -> ?table:Table.t -> unit -> env

val compile : env -> Qexpr.t -> code

(** The interned free columns, in slot order. *)
val outer_cols : env -> string array

(** Materialize outer slots from a binding, once per plan execution. *)
val bind_outer : outer_cols:string array -> (string -> Value.t option) -> Value.t option array

(** View compiled code as a predicate: [Bool b] → [b], [Null] → [false],
    anything else raises [fail v]. *)
val as_predicate :
  fail:(Value.t -> exn) -> code -> Value.t array -> Value.t option array -> Value.t array -> bool
