(** Expression compilation: lower a {!Qexpr.t} once into an OCaml closure
    over the tuple array, with every column name resolved at compile time.

    Columns of the scanned table become integer tuple offsets; free
    columns (the NEW/CURRENT bindings of rule actions) are interned into
    numbered environment slots shared by every expression compiled under
    the same {!env}, so executing a cached plan materializes the outer
    binding once per run instead of probing a closure per row.

    The compiled code replicates the tree-walking {!Qexpr.eval}
    semantics exactly — same short-circuiting, same Null propagation,
    same error conditions raised at the same evaluation points — which
    the differential suite in [test/test_plan.ml] checks against the
    interpreter as oracle. *)

type code = Value.t array -> Value.t option array -> Value.t array -> Value.t
(** [code params outer tuple]: [params] are the constants extracted by
    plan parameterization, [outer] the materialized environment slots,
    [tuple] the current row (unused, [ [||] ], for table-free
    expressions). *)

type env = {
  catalog : Catalog.t;
  schema : Schema.t option;  (** scanned table's schema, when any *)
  table : string;  (** lower-cased scanned-table name ("" when none) *)
  mutable outer_names : string list;  (** interned slots, reverse order *)
  outer_slots : (string, int) Hashtbl.t;
}

let make_env ~catalog ?table () =
  let schema, tname =
    match table with
    | Some t -> (Some (t : Table.t).Table.schema, String.lowercase_ascii (Table.name t))
    | None -> (None, "")
  in
  { catalog; schema; table = tname; outer_names = []; outer_slots = Hashtbl.create 8 }

let outer_slot env name =
  match Hashtbl.find_opt env.outer_slots name with
  | Some i -> i
  | None ->
    let i = Hashtbl.length env.outer_slots in
    Hashtbl.replace env.outer_slots name i;
    env.outer_names <- name :: env.outer_names;
    i

(** Interned free columns, in slot order — the plan stores this and
    {!bind_outer} fills it from a binding at execution time. *)
let outer_cols env = Array.of_list (List.rev env.outer_names)

let bind_outer ~outer_cols binding = Array.map binding outer_cols

(* Column resolution mirrors [Exec.binding_of]: a dotted prefix must name
   the scanned table (case-insensitively) to resolve against the schema;
   anything unresolved falls through to an outer slot under the ORIGINAL
   name, and raises only if actually evaluated — same laziness as the
   interpreter. *)
let compile_col env name =
  let schema_index col =
    match env.schema with None -> None | Some s -> Schema.column_index s col
  in
  let own =
    match String.index_opt name '.' with
    | Some i ->
      let prefix = String.sub name 0 i in
      if String.lowercase_ascii prefix = env.table then
        schema_index (String.sub name (i + 1) (String.length name - i - 1))
      else None
    | None -> schema_index name
  in
  match own with
  | Some i -> fun _ _ tuple -> tuple.(i)
  | None ->
    let j = outer_slot env name in
    fun _ outer _ ->
      (match outer.(j) with
      | Some v -> v
      | None -> raise (Qexpr.Eval_error ("unbound column " ^ name)))

let rec compile env (e : Qexpr.t) : code =
  match e with
  | Qexpr.Col name -> compile_col env name
  | Qexpr.Const v -> fun _ _ _ -> v
  | Qexpr.Param i -> fun params _ _ -> params.(i)
  | Qexpr.Binop (Qexpr.And, a, b) ->
    let ca = compile env a and cb = compile env b in
    fun p o t ->
      (match ca p o t with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> cb p o t
      | Value.Null -> Value.Null
      | v -> raise (Qexpr.Eval_error ("non-boolean operand of and: " ^ Value.to_string v)))
  | Qexpr.Binop (Qexpr.Or, a, b) ->
    let ca = compile env a and cb = compile env b in
    fun p o t ->
      (match ca p o t with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> cb p o t
      | Value.Null -> Value.Null
      | v -> raise (Qexpr.Eval_error ("non-boolean operand of or: " ^ Value.to_string v)))
  | Qexpr.Binop (Qexpr.Eq, a, b) ->
    let ca = compile env a and cb = compile env b in
    fun p o t ->
      let va = ca p o t and vb = cb p o t in
      if va = Value.Null || vb = Value.Null then Value.Null
      else Value.Bool (Qexpr.value_eq va vb)
  | Qexpr.Binop (Qexpr.Ne, a, b) ->
    let ca = compile env a and cb = compile env b in
    fun p o t ->
      let va = ca p o t and vb = cb p o t in
      if va = Value.Null || vb = Value.Null then Value.Null
      else Value.Bool (not (Qexpr.value_eq va vb))
  | Qexpr.Binop (((Qexpr.Lt | Qexpr.Le | Qexpr.Gt | Qexpr.Ge) as op), a, b) ->
    let ca = compile env a and cb = compile env b in
    fun p o t -> Qexpr.comparison op (ca p o t) (cb p o t)
  | Qexpr.Binop (((Qexpr.Add | Qexpr.Sub | Qexpr.Mul | Qexpr.Div) as op), a, b) ->
    let ca = compile env a and cb = compile env b in
    fun p o t -> Qexpr.arith op (ca p o t) (cb p o t)
  | Qexpr.Not e ->
    let c = compile env e in
    fun p o t ->
      (match c p o t with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | v -> raise (Qexpr.Eval_error ("non-boolean operand of not: " ^ Value.to_string v)))
  | Qexpr.Neg e ->
    let c = compile env e in
    fun p o t ->
      (match c p o t with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> raise (Qexpr.Eval_error ("cannot negate " ^ Value.to_string v)))
  | Qexpr.Call (f, args) -> (
    let cargs = Array.of_list (List.map (compile env) args) in
    let n = Array.length cargs in
    (* Resolve the operator at compile time; a missing or mis-aritied one
       still raises only when the call site is evaluated, matching the
       interpreter's error timing. *)
    match Catalog.operator_opt env.catalog f with
    | None -> fun _ _ _ -> raise (Catalog.No_such_operator f)
    | Some op ->
      if op.Catalog.arity >= 0 && n <> op.Catalog.arity then
        fun _ _ _ ->
          raise
            (Qexpr.Eval_error
               (Printf.sprintf "operator %s expects %d arguments, got %d" f op.Catalog.arity n))
      else
        fun p o t ->
          (* Arguments evaluate left to right, as [List.map] does in the
             interpreter. *)
          let rec go i = if i = n then [] else let v = cargs.(i) p o t in v :: go (i + 1) in
          op.Catalog.fn (go 0))

(** Evaluate compiled code as a where-clause predicate: [Bool b] is [b],
    [Null] is false, anything else raises [fail]. *)
let as_predicate ~fail (c : code) : Value.t array -> Value.t option array -> Value.t array -> bool
    =
 fun p o t ->
  match c p o t with
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> raise (fail v)
