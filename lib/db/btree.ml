(** In-memory B-tree multimap from {!Value.t} keys to row ids.

    Classic CLRS structure with minimum degree [t = 16]: every node holds
    between [t-1] and [2t-1] keys (root exempt), splits happen on the way
    down during insertion, and deletion rebalances by borrowing from or
    merging with siblings. Each key carries the list of row ids indexed
    under it (a secondary index is a multimap).

    Every node carries an ownership stamp and every handle a current
    stamp; {!freeze} is O(1) — it hands out a second handle onto the same
    root and moves both handles to fresh stamps, so subsequent mutations
    copy each node once per epoch on the way down (path copying). Reads
    on either handle never see the other's writes. *)

let min_degree = 16

type node = {
  mutable nkeys : int;
  mutable keys : Value.t array;  (* length 2t-1; first nkeys are meaningful *)
  mutable vals : int list array;  (* rowids per key *)
  mutable children : node array;  (* length 2t when internal; [||] when leaf *)
  stamp : int;  (* owning handle's stamp at creation/copy time *)
}

type t = {
  mutable root : node;
  mutable cardinal : int; (* distinct keys *)
  stamp_src : int ref;  (* shared stamp counter for the whole family *)
  mutable stamp : int;  (* this handle's current stamp *)
}

let max_keys = (2 * min_degree) - 1

let new_node ~leaf ~stamp =
  {
    nkeys = 0;
    keys = Array.make max_keys Value.Null;
    vals = Array.make max_keys [];
    children = (if leaf then [||] else Array.make (2 * min_degree) (Obj.magic 0));
    stamp;
  }

(* Fresh nodes for children arrays need a placeholder; never expose it. *)
let dummy = new_node ~leaf:true ~stamp:min_int

let new_internal ~stamp () =
  let n = new_node ~leaf:false ~stamp in
  Array.fill n.children 0 (Array.length n.children) dummy;
  n

let new_leaf ~stamp () = new_node ~leaf:true ~stamp

let is_leaf n = Array.length n.children = 0

let create () = { root = new_leaf ~stamp:0 (); cardinal = 0; stamp_src = ref 0; stamp = 0 }

let freeze t =
  incr t.stamp_src;
  let snap =
    { root = t.root; cardinal = t.cardinal; stamp_src = t.stamp_src; stamp = !(t.stamp_src) }
  in
  incr t.stamp_src;
  t.stamp <- !(t.stamp_src);
  snap

(* A node is mutable through [t] only when its stamp matches; otherwise
   some snapshot may still reach it, so copy first. *)
let own t (node : node) : node =
  if node.stamp = t.stamp then node
  else
    {
      nkeys = node.nkeys;
      keys = Array.copy node.keys;
      vals = Array.copy node.vals;
      children = (if is_leaf node then [||] else Array.copy node.children);
      stamp = t.stamp;
    }

(* Own child [i] of the (already owned) [parent], writing the copy back. *)
let own_child t parent i =
  let c = own t parent.children.(i) in
  parent.children.(i) <- c;
  c

(* Position of the first key >= k, in [0, nkeys]. *)
let lower_bound node k =
  let lo = ref 0 and hi = ref node.nkeys in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare node.keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_node node k =
  let i = lower_bound node k in
  if i < node.nkeys && Value.compare node.keys.(i) k = 0 then Some (node, i)
  else if is_leaf node then None
  else find_node node.children.(i) k

let find t k =
  match find_node t.root k with Some (n, i) -> n.vals.(i) | None -> []

let mem t k = find_node t.root k <> None

(* --- insertion ----------------------------------------------------- *)

(* [parent] must already be owned by [t]. *)
let split_child t parent i =
  let full = own_child t parent i in
  let right = if is_leaf full then new_leaf ~stamp:t.stamp () else new_internal ~stamp:t.stamp () in
  let tdeg = min_degree in
  right.nkeys <- tdeg - 1;
  Array.blit full.keys tdeg right.keys 0 (tdeg - 1);
  Array.blit full.vals tdeg right.vals 0 (tdeg - 1);
  if not (is_leaf full) then Array.blit full.children tdeg right.children 0 tdeg;
  (* shift parent entries right to make room *)
  for j = parent.nkeys downto i + 1 do
    parent.keys.(j) <- parent.keys.(j - 1);
    parent.vals.(j) <- parent.vals.(j - 1)
  done;
  for j = parent.nkeys + 1 downto i + 2 do
    parent.children.(j) <- parent.children.(j - 1)
  done;
  parent.keys.(i) <- full.keys.(tdeg - 1);
  parent.vals.(i) <- full.vals.(tdeg - 1);
  parent.children.(i + 1) <- right;
  parent.nkeys <- parent.nkeys + 1;
  full.nkeys <- tdeg - 1

(* [node] must already be owned by [t]. *)
let rec insert_nonfull t node k rowid =
  let i = lower_bound node k in
  if i < node.nkeys && Value.compare node.keys.(i) k = 0 then
    node.vals.(i) <- rowid :: node.vals.(i)
  else if is_leaf node then begin
    for j = node.nkeys downto i + 1 do
      node.keys.(j) <- node.keys.(j - 1);
      node.vals.(j) <- node.vals.(j - 1)
    done;
    node.keys.(i) <- k;
    node.vals.(i) <- [ rowid ];
    node.nkeys <- node.nkeys + 1;
    t.cardinal <- t.cardinal + 1
  end
  else begin
    let i =
      if node.children.(i).nkeys = max_keys then begin
        split_child t node i;
        let c = Value.compare node.keys.(i) k in
        if c = 0 then begin
          node.vals.(i) <- rowid :: node.vals.(i);
          -1 (* handled at this level *)
        end
        else if c < 0 then i + 1
        else i
      end
      else i
    in
    if i >= 0 then insert_nonfull t (own_child t node i) k rowid
  end

let insert t k rowid =
  t.root <- own t t.root;
  if t.root.nkeys = max_keys then begin
    let new_root = new_internal ~stamp:t.stamp () in
    new_root.children.(0) <- t.root;
    t.root <- new_root;
    split_child t new_root 0
  end;
  insert_nonfull t t.root k rowid

(* --- deletion ------------------------------------------------------ *)

let rec max_entry node =
  if is_leaf node then (node.keys.(node.nkeys - 1), node.vals.(node.nkeys - 1))
  else max_entry node.children.(node.nkeys)

let rec min_entry node =
  if is_leaf node then (node.keys.(0), node.vals.(0))
  else min_entry node.children.(0)

(* Merge child i, parent key i and child i+1 into child i.
   [node] must already be owned by [t]. *)
let merge_children t node i =
  let left = own_child t node i in
  let right = node.children.(i + 1) in
  left.keys.(left.nkeys) <- node.keys.(i);
  left.vals.(left.nkeys) <- node.vals.(i);
  Array.blit right.keys 0 left.keys (left.nkeys + 1) right.nkeys;
  Array.blit right.vals 0 left.vals (left.nkeys + 1) right.nkeys;
  if not (is_leaf left) then
    Array.blit right.children 0 left.children (left.nkeys + 1) (right.nkeys + 1);
  left.nkeys <- left.nkeys + 1 + right.nkeys;
  for j = i to node.nkeys - 2 do
    node.keys.(j) <- node.keys.(j + 1);
    node.vals.(j) <- node.vals.(j + 1)
  done;
  for j = i + 1 to node.nkeys - 1 do
    node.children.(j) <- node.children.(j + 1)
  done;
  node.nkeys <- node.nkeys - 1

(* Ensure child i of node has at least t keys before descending.
   [node] must already be owned by [t]. *)
let fill t node i =
  let tdeg = min_degree in
  if i > 0 && node.children.(i - 1).nkeys >= tdeg then begin
    (* borrow from left sibling *)
    let child = own_child t node i and left = own_child t node (i - 1) in
    for j = child.nkeys downto 1 do
      child.keys.(j) <- child.keys.(j - 1);
      child.vals.(j) <- child.vals.(j - 1)
    done;
    if not (is_leaf child) then
      for j = child.nkeys + 1 downto 1 do
        child.children.(j) <- child.children.(j - 1)
      done;
    child.keys.(0) <- node.keys.(i - 1);
    child.vals.(0) <- node.vals.(i - 1);
    if not (is_leaf child) then child.children.(0) <- left.children.(left.nkeys);
    node.keys.(i - 1) <- left.keys.(left.nkeys - 1);
    node.vals.(i - 1) <- left.vals.(left.nkeys - 1);
    left.nkeys <- left.nkeys - 1;
    child.nkeys <- child.nkeys + 1
  end
  else if i < node.nkeys && node.children.(i + 1).nkeys >= tdeg then begin
    (* borrow from right sibling *)
    let child = own_child t node i and right = own_child t node (i + 1) in
    child.keys.(child.nkeys) <- node.keys.(i);
    child.vals.(child.nkeys) <- node.vals.(i);
    if not (is_leaf child) then child.children.(child.nkeys + 1) <- right.children.(0);
    node.keys.(i) <- right.keys.(0);
    node.vals.(i) <- right.vals.(0);
    for j = 0 to right.nkeys - 2 do
      right.keys.(j) <- right.keys.(j + 1);
      right.vals.(j) <- right.vals.(j + 1)
    done;
    if not (is_leaf right) then
      for j = 0 to right.nkeys - 1 do
        right.children.(j) <- right.children.(j + 1)
      done;
    right.nkeys <- right.nkeys - 1;
    child.nkeys <- child.nkeys + 1
  end
  else if i < node.nkeys then merge_children t node i
  else merge_children t node (i - 1)

(* [node] must already be owned by [t]. *)
let rec delete_key t node k =
  let i = lower_bound node k in
  if i < node.nkeys && Value.compare node.keys.(i) k = 0 then begin
    if is_leaf node then begin
      for j = i to node.nkeys - 2 do
        node.keys.(j) <- node.keys.(j + 1);
        node.vals.(j) <- node.vals.(j + 1)
      done;
      node.nkeys <- node.nkeys - 1
    end
    else if node.children.(i).nkeys >= min_degree then begin
      let pk, pv = max_entry node.children.(i) in
      node.keys.(i) <- pk;
      node.vals.(i) <- pv;
      delete_key t (own_child t node i) pk
    end
    else if node.children.(i + 1).nkeys >= min_degree then begin
      let sk, sv = min_entry node.children.(i + 1) in
      node.keys.(i) <- sk;
      node.vals.(i) <- sv;
      delete_key t (own_child t node (i + 1)) sk
    end
    else begin
      merge_children t node i;
      delete_key t (own_child t node i) k
    end
  end
  else if not (is_leaf node) then begin
    let last = i = node.nkeys in
    if node.children.(i).nkeys < min_degree then fill t node i;
    (* After a merge at the end, descend into the previous child. *)
    if last && i > node.nkeys then delete_key t (own_child t node (i - 1)) k
    else
      (* fill may have shifted keys; recompute the descent position *)
      let i = lower_bound node k in
      if i < node.nkeys && Value.compare node.keys.(i) k = 0 then delete_key t node k
      else delete_key t (own_child t node i) k
  end

(* Replace key [k]'s rowid list along an owned descent. [node] must
   already be owned by [t]; the key is known to be present. *)
let rec set_vals t node k vals =
  let i = lower_bound node k in
  if i < node.nkeys && Value.compare node.keys.(i) k = 0 then node.vals.(i) <- vals
  else set_vals t (own_child t node i) k vals

(** [remove t k rowid] removes one indexed row id from key [k]; the key
    disappears once its last row id is gone. Returns [false] when the
    (key, rowid) pair was not present. *)
let remove t k rowid =
  match find_node t.root k with
  | None -> false
  | Some (node, i) ->
    if not (List.mem rowid node.vals.(i)) then false
    else begin
      let remaining = List.filter (fun r -> r <> rowid) node.vals.(i) in
      t.root <- own t t.root;
      if remaining <> [] then begin
        set_vals t t.root k remaining;
        true
      end
      else begin
        delete_key t t.root k;
        if t.root.nkeys = 0 && not (is_leaf t.root) then t.root <- t.root.children.(0);
        t.cardinal <- t.cardinal - 1;
        true
      end
    end

(* --- traversal ----------------------------------------------------- *)

let rec iter_node node f =
  if is_leaf node then
    for i = 0 to node.nkeys - 1 do
      f node.keys.(i) node.vals.(i)
    done
  else begin
    for i = 0 to node.nkeys - 1 do
      iter_node node.children.(i) f;
      f node.keys.(i) node.vals.(i)
    done;
    iter_node node.children.(node.nkeys) f
  end

let iter t f = iter_node t.root f

(** [range t ?lo ?hi f] visits keys in [lo, hi] (inclusive, either side
    optional) in ascending order. *)
let range t ?lo ?hi f =
  let above k = match lo with None -> true | Some l -> Value.compare k l >= 0 in
  let below k = match hi with None -> true | Some h -> Value.compare k h <= 0 in
  let rec go node =
    if is_leaf node then begin
      for i = 0 to node.nkeys - 1 do
        if above node.keys.(i) && below node.keys.(i) then f node.keys.(i) node.vals.(i)
      done
    end
    else begin
      for i = 0 to node.nkeys - 1 do
        (* Visit child i when it can contain keys in range. *)
        if above node.keys.(i) then go node.children.(i);
        if above node.keys.(i) && below node.keys.(i) then f node.keys.(i) node.vals.(i)
      done;
      if node.nkeys = 0 || below node.keys.(node.nkeys - 1) then go node.children.(node.nkeys)
    end
  in
  go t.root

(* [range_merge t ivals f] sweeps several inclusive ranges in one in-order
   traversal. [ivals] must be sorted by lower bound and pairwise disjoint
   (the coalesced form of a calendar's interval set). A cursor over the
   interval array advances monotonically as keys stream past, and whole
   subtrees are skipped when the current interval starts beyond their key
   span — a single sweep replaces one [range] probe per interval. *)
let range_merge t (ivals : (Value.t * Value.t) array) f =
  let n = Array.length ivals in
  if n > 0 then begin
    let idx = ref 0 in
    (* Drop intervals ending before [k]; in-order traversal guarantees
       they can never contain a later key. *)
    let advance k = while !idx < n && Value.compare (snd ivals.(!idx)) k < 0 do incr idx done in
    let visit k vals =
      advance k;
      if !idx < n && Value.compare (fst ivals.(!idx)) k <= 0 then f k vals
    in
    let rec go node =
      if !idx < n then
        if is_leaf node then
          for i = 0 to node.nkeys - 1 do
            if !idx < n then visit node.keys.(i) node.vals.(i)
          done
        else begin
          for i = 0 to node.nkeys - 1 do
            if !idx < n then begin
              (* Child i holds only keys < keys.(i): skip it when the
                 current interval starts at or after that separator. *)
              if Value.compare (fst ivals.(!idx)) node.keys.(i) < 0 then go node.children.(i);
              if !idx < n then visit node.keys.(i) node.vals.(i)
            end
          done;
          if !idx < n then go node.children.(node.nkeys)
        end
    in
    go t.root
  end

let cardinal t = t.cardinal

let min_key t = if t.cardinal = 0 then None else Some (fst (min_entry t.root))
let max_key t = if t.cardinal = 0 then None else Some (fst (max_entry t.root))

let keys t =
  let acc = ref [] in
  iter t (fun k _ -> acc := k :: !acc);
  List.rev !acc

(* Structural invariant checks for tests. *)
let rec check_node node ~is_root ~depth =
  if not is_root && node.nkeys < min_degree - 1 then failwith "underfull node";
  if node.nkeys > max_keys then failwith "overfull node";
  for i = 1 to node.nkeys - 1 do
    if Value.compare node.keys.(i - 1) node.keys.(i) >= 0 then failwith "unsorted keys"
  done;
  if is_leaf node then depth
  else begin
    let d = ref (-1) in
    for i = 0 to node.nkeys do
      let di = check_node node.children.(i) ~is_root:false ~depth:(depth + 1) in
      if !d = -1 then d := di else if di <> !d then failwith "uneven leaf depth"
    done;
    !d
  end

let check_invariants t = ignore (check_node t.root ~is_root:true ~depth:0)
