(** Write-ahead journal: an append-only file of checksummed records.

    Each record is one line, [<crc32-hex> <escaped-payload>\n]; payloads
    are arbitrary strings with newlines and backslashes escaped. A crash
    mid-append leaves a torn tail — a final line without its terminator
    or whose checksum disagrees — which {!read_records} detects and
    discards, so recovery sees exactly the prefix of intact records.

    Appends go through the fault injector: the armed crash point makes
    {!append} write only a prefix of the record and raise
    {!Cal_faults.Injector.Crash}, simulating the process image dying with
    the write half-done. *)

type t

exception Journal_error of string

(** [open_append ?injector path] opens (creating if absent) the journal
    for appending. *)
val open_append : ?injector:Cal_faults.Injector.t -> string -> t

val path : t -> string

(** Append one record and flush. Raises {!Cal_faults.Injector.Crash}
    when the injector's armed crash point is reached (after writing the
    torn prefix). *)
val append : t -> string -> unit

(** Records appended through this handle (survivors and the torn one). *)
val appended : t -> int

(** Truncate to empty (after a snapshot subsumes the log). *)
val truncate : t -> unit

val close : t -> unit

(** [rewrite path records] atomically replaces the file with exactly
    [records] (recovery uses it to drop a torn tail before appending
    resumes). *)
val rewrite : string -> string list -> unit

(** Decode every intact record of the file, in order; a torn or corrupt
    tail is silently dropped (that is the crash contract), but a corrupt
    record {e followed by} intact ones raises {!Journal_error} — that is
    not a torn write, the file is damaged. Returns [] when the file does
    not exist. *)
val read_records : string -> string list
