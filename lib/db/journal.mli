(** Write-ahead journal: append-only file(s) of checksummed records,
    with group commit.

    Each physical record is one line, [<crc32-hex> <escaped-payload>\n];
    payloads are arbitrary strings with newlines and backslashes
    escaped. A crash mid-write leaves a torn tail — a final line without
    its terminator or whose checksum disagrees — which {!read_records}
    detects and discards, so recovery sees exactly the prefix of intact
    records.

    {b Group commit.} The durability {!policy} decides when logical
    appends reach the file. [Sync_each] (the default) writes and flushes
    every record immediately — byte-identical to the original format.
    [Group n] buffers appends and flushes a whole group once [n] are
    pending; [Manual] buffers until an explicit {!commit} (alias
    {!barrier}). {!append_batch} makes its records one atomic group
    under every policy. A multi-record group is written as ONE physical
    record whose payload is a length-prefixed frame beginning with the
    reserved byte [0x01] (plain payloads must not start with that byte —
    appends reject them); a singleton group is a plain record. Because
    the group is a single checksummed line, a crash mid-group tears that
    line and recovery drops the group {e whole}: all-or-nothing at the
    group boundary, the torn-record contract unchanged. A crash between
    flushes loses the uncommitted buffer entirely — nothing partial ever
    reaches the file. {!truncate} (after a snapshot) discards the buffer
    rather than flushing it: the snapshot already holds those
    operations. {!close} commits it.

    A journal opened with [segments = n > 1] stripes physical records
    across [path.seg0 .. path.segn-1] by global sequence number, with
    the sequence framed inside each record's checksum and the layout
    recorded in a [path.manifest] file. A commit group occupies one
    sequence slot in one segment, so group atomicity holds on both
    layouts. The segments decode independently — in parallel during
    recovery — and merge back into append order by sequence; a crash
    tears at most one segment's tail, which is the globally last record,
    so the merged prefix contract is unchanged. [segments = 1] is
    byte-identical to the original single-file format.

    Writes go through the fault injector at two points: the armed
    {e append} crash point fires at a logical append (under a buffered
    policy the uncommitted group is lost whole, nothing written), and
    the armed {e flush} crash point fires at a physical group write,
    tearing bytes inside the group record. Both raise
    {!Cal_faults.Injector.Crash}, simulating the process image dying. *)

type t

exception Journal_error of string

(** When appends become durable: every record ([Sync_each], the
    default), every [n] buffered records ([Group n]), or only at
    explicit {!commit} / {!barrier} calls ([Manual]). *)
type policy = Sync_each | Group of int | Manual

(** ["sync_each"], ["group <n>"], ["manual"]. *)
val policy_name : policy -> string

(** The policy named by the [CALRULES_JOURNAL_GROUP] environment
    variable: an integer > 1 means [Group of] that size, ["manual"]
    means [Manual], unset / empty / ["1"] mean [Sync_each]. Any other
    value — zero, negative, junk — raises {!Journal_error} rather than
    silently defaulting. Session-level opens use it as their default so
    CI can run whole suites under a batched window. *)
val policy_of_env : unit -> policy

(** [open_append ?policy ?injector ?segments path] opens (creating if
    absent) the journal for appending, striped over [segments] files
    (default 1 — the plain single-file layout) under [policy] (default
    [Sync_each]).
    @raise Journal_error when [segments = 1] but [path] has a manifest
    (it was written segmented; open it with that segment count). *)
val open_append : ?policy:policy -> ?injector:Cal_faults.Injector.t -> ?segments:int -> string -> t

val path : t -> string

(** The segment count this handle stripes over. *)
val segments : t -> int

(** The durability policy this handle was opened with. *)
val policy : t -> policy

(** Segment count recorded in the path's manifest; [1] when there is
    none (the single-file layout, or nothing at all).
    @raise Journal_error on an unreadable manifest. *)
val detect_segments : string -> int

(** Append one record: written+flushed immediately under [Sync_each],
    buffered (and auto-committed at the window size) otherwise. Raises
    {!Cal_faults.Injector.Crash} when an armed crash point is reached.
    @raise Journal_error on a payload starting with the reserved
    group-frame byte [0x01]. *)
val append : t -> string -> unit

(** Append several records as one atomic commit group: either every
    member is recovered or none is, under every policy. Under [Sync_each]
    the group is written immediately; under [Group]/[Manual] the members
    join the pending buffer (which always commits as one group), and
    [Group n] auto-commits once [n] or more are pending. *)
val append_batch : t -> string list -> unit

(** Flush the pending buffer as one commit group (no-op when empty).
    The explicit durability point of [Manual]; legal under every
    policy. *)
val commit : t -> unit

(** Alias of {!commit}. *)
val barrier : t -> unit

(** Logical records appended through this handle (survivors and any that
    died buffered or torn). *)
val appended : t -> int

(** Physical write+flush calls completed — the denominator of the
    group-commit amortization ratio. *)
val flushes : t -> int

(** Buffered records not yet committed. *)
val pending : t -> int

(** Truncate to empty (after a snapshot subsumes the log). The pending
    buffer is {e discarded}, not flushed — the snapshot already holds
    those operations. *)
val truncate : t -> unit

(** Commit the pending buffer, then close. *)
val close : t -> unit

(** [rewrite ?segments path records] atomically replaces the journal
    with exactly [records], one physical record each, in the given
    layout (default: single-file), removing the other layout's files. *)
val rewrite : ?segments:int -> string -> string list -> unit

(** [rewrite_groups ?segments path groups] atomically replaces the
    journal preserving commit-group framing: each group becomes one
    physical record (singletons as plain records). Recovery uses it to
    drop a torn tail without flattening surviving groups. *)
val rewrite_groups : ?segments:int -> string -> string list list -> unit

(** Decode every intact logical record, in append order, with commit
    groups flattened; a torn or corrupt tail is silently dropped whole —
    a torn group loses all its members (that is the crash contract) —
    but a corrupt record {e followed by} intact ones, a malformed group
    frame, or (on a segmented journal) a sequence gap raises
    {!Journal_error}: that is not a torn write, the journal is damaged.
    The layout is auto-detected from the manifest; segmented journals
    decode their segments across up to [domains] pool lanes (default 1,
    serial) and merge by sequence. Returns [] when nothing exists at
    [path]. *)
val read_records : ?domains:int -> string -> string list

(** Like {!read_records} but keeping commit-group structure: one element
    per physical record, singletons for plain records. *)
val read_groups : ?domains:int -> string -> string list list
