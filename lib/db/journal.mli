(** Write-ahead journal: append-only file(s) of checksummed records.

    Each record is one line, [<crc32-hex> <escaped-payload>\n]; payloads
    are arbitrary strings with newlines and backslashes escaped. A crash
    mid-append leaves a torn tail — a final line without its terminator
    or whose checksum disagrees — which {!read_records} detects and
    discards, so recovery sees exactly the prefix of intact records.

    A journal opened with [segments = n > 1] stripes records across
    [path.seg0 .. path.segn-1] by global sequence number, with the
    sequence framed inside each record's checksum and the layout
    recorded in a [path.manifest] file. The segments decode
    independently — in parallel during recovery — and merge back into
    append order by sequence; a crash tears at most one segment's tail,
    which is the globally last record, so the merged prefix contract is
    unchanged. [segments = 1] is byte-identical to the original
    single-file format.

    Appends go through the fault injector: the armed crash point makes
    {!append} write only a prefix of the record and raise
    {!Cal_faults.Injector.Crash}, simulating the process image dying with
    the write half-done. *)

type t

exception Journal_error of string

(** [open_append ?injector ?segments path] opens (creating if absent)
    the journal for appending, striped over [segments] files
    (default 1 — the plain single-file layout).
    @raise Journal_error when [segments = 1] but [path] has a manifest
    (it was written segmented; open it with that segment count). *)
val open_append : ?injector:Cal_faults.Injector.t -> ?segments:int -> string -> t

val path : t -> string

(** The segment count this handle stripes over. *)
val segments : t -> int

(** Segment count recorded in the path's manifest; [1] when there is
    none (the single-file layout, or nothing at all).
    @raise Journal_error on an unreadable manifest. *)
val detect_segments : string -> int

(** Append one record and flush. Raises {!Cal_faults.Injector.Crash}
    when the injector's armed crash point is reached (after writing the
    torn prefix). *)
val append : t -> string -> unit

(** Records appended through this handle (survivors and the torn one). *)
val appended : t -> int

(** Truncate to empty (after a snapshot subsumes the log). *)
val truncate : t -> unit

val close : t -> unit

(** [rewrite ?segments path records] atomically replaces the journal
    with exactly [records] in the given layout (default: single-file),
    removing the other layout's files (recovery uses it to drop a torn
    tail before appending resumes). *)
val rewrite : ?segments:int -> string -> string list -> unit

(** Decode every intact record, in append order; a torn or corrupt tail
    is silently dropped (that is the crash contract), but a corrupt
    record {e followed by} intact ones — or, on a segmented journal, a
    sequence gap — raises {!Journal_error}: that is not a torn write,
    the journal is damaged. The layout is auto-detected from the
    manifest; segmented journals decode their segments across up to
    [domains] pool lanes (default 1, serial) and merge by sequence.
    Returns [] when nothing exists at [path]. *)
val read_records : ?domains:int -> string -> string list
