(** Query plans and the plan cache.

    A DML query is canonicalized by extracting every literal constant into
    a parameter vector ({!parameterize_query}), so the rule-action queries
    DBCRON fires thousands of times per simulated year — identical except
    for a shifting probe window or appended value — share one plan. The
    parameterized skeleton itself keys an LRU cache stored in the catalog;
    plans are stamped with {!Catalog.version} and silently discarded when
    DDL (create/drop table, create index, operator registration) bumps it.

    A plan carries compiled target/where/assignment closures
    ({!Qcompile.code}) plus the access-path ingredients the executor
    needs: every sargable probe of the where clause and the valid-time
    column of an [on <calendar>] scan. Probe selection and execution live
    in {!Exec}. *)

exception Plan_error of string

(* --- canonicalization ---------------------------------------------- *)

let parameterize_expr out e =
  let rec go e =
    match e with
    | Qexpr.Const v ->
      let i = List.length !out in
      out := v :: !out;
      Qexpr.Param i
    | Qexpr.Col _ | Qexpr.Param _ -> e
    | Qexpr.Binop (op, a, b) ->
      let a = go a in
      let b = go b in
      Qexpr.Binop (op, a, b)
    | Qexpr.Not e -> Qexpr.Not (go e)
    | Qexpr.Neg e -> Qexpr.Neg (go e)
    | Qexpr.Call (f, args) -> Qexpr.Call (f, List.map go args)
  in
  go e

(** [parameterize_query q] replaces every [Const] of a DML query with a
    [Param] slot, returning the skeleton and the extracted constants in
    slot order. [None] for DDL / rule definitions, which are not worth
    caching. *)
let parameterize_query (q : Qast.query) : (Qast.query * Value.t array) option =
  let out = ref [] in
  let expr e = parameterize_expr out e in
  let assigns l = List.map (fun (c, e) -> (c, expr e)) l in
  let skeleton =
    match q with
    | Qast.Append { table; assigns = a } -> Some (Qast.Append { table; assigns = assigns a })
    | Qast.Retrieve { targets; from_; where; on_cal; group_by } ->
      let targets = List.map (fun (l, e) -> (l, expr e)) targets in
      let where = Option.map expr where in
      Some (Qast.Retrieve { targets; from_; where; on_cal; group_by })
    | Qast.Delete { table; where } ->
      Some (Qast.Delete { table; where = Option.map expr where })
    | Qast.Replace { table; assigns = a; where } ->
      let a = assigns a in
      Some (Qast.Replace { table; assigns = a; where = Option.map expr where })
    | Qast.Create_table _ | Qast.Create_index _ | Qast.Define_rule _ | Qast.Drop_rule _ -> None
  in
  match skeleton with
  | None -> None
  | Some sk -> Some (sk, Array.of_list (List.rev !out))

(** Resolve a [Const]-or-[Param] plan operand against the parameter
    vector. *)
let probe_value params = function
  | Qexpr.Const v -> v
  | Qexpr.Param i -> params.(i)
  | e -> raise (Plan_error ("not a plan operand: " ^ Qexpr.to_string e))

(* --- plan structure ------------------------------------------------ *)

type probe_op = Peq | Ple | Pge

type probe = {
  pcol : string;  (** unqualified column name, indexed at plan time *)
  pop : probe_op;  (** [Lt]/[Gt] widen to the inclusive form; the residual
                       where re-applies the strict bound *)
  parg : Qexpr.t;  (** [Const _] or [Param _] *)
}

type scan = {
  stable : Table.t;
  swhere : Qcompile.code option;  (** full residual predicate *)
  sprobes : probe list;  (** every sargable conjunct of the where clause *)
  scal : string option;  (** [on <calendar>] source text *)
  svalid_ix : int option;  (** tuple offset of the valid-time column *)
  svalid_col : string option;
  spure : bool;
      (** the where clause contains no operator calls, so evaluating it
          cannot touch shared mutable state (registered operators may
          mutate — [alert] — or consult the non-thread-safe calendar
          cache); only pure scans are eligible for domain partitioning *)
}

type assign = {
  acol : string;
  aix : int option;
      (** tuple offset; [None] defers the unknown-column error to
          execution, matching the interpreter's timing *)
  acode : Qcompile.code;
}

type action =
  | P_expr_retrieve of {
      labels : string list;
      pwhere : Qcompile.code option;
      ptargets : Qcompile.code list;
    }
  | P_scan_retrieve of {
      labels : string list;
      scan : scan;
      per_row : Qcompile.code list;
          (** target exprs with aggregate calls rewritten to their
              argument ([count()] to the constant 1) *)
      raw_targets : (string * Qexpr.t) list;  (** for aggregate dispatch *)
      aggregate : bool;
      group_by : string list;
      group_codes : Qcompile.code list;
    }
  | P_delete of { scan : scan }
  | P_replace of { scan : scan; rassigns : assign list }
  | P_append of { atable : Table.t; aassigns : assign list }

type plan = {
  pversion : int;  (** catalog version the plan was built under *)
  outer : string array;  (** interned free columns, in slot order *)
  action : action;
}

(* --- plan construction --------------------------------------------- *)

let aggregates = [ "count"; "sum"; "avg"; "min"; "max" ]

let is_aggregate_call = function
  | Qexpr.Call (f, _) -> List.mem f aggregates
  | _ -> false

(* Strip an optional "table." qualifier if it names this table. *)
let own_column table name =
  match String.index_opt name '.' with
  | Some i ->
    let prefix = String.sub name 0 i in
    if String.lowercase_ascii prefix = String.lowercase_ascii (Table.name table) then
      Some (String.sub name (i + 1) (String.length name - i - 1))
    else None
  | None -> Some name

(* Every sargable conjunct: [col op operand] over an indexed column, in
   either orientation. Unlike the old single-probe selection, all of them
   are collected; the executor ranks them by estimated selectivity and
   intersects the candidate sets it decides to materialize. *)
let probes_of table where =
  let sargable e =
    let mk ~flip op c arg =
      Option.bind (own_column table c) (fun col ->
          if not (Table.has_index table col) then None
          else
            let op =
              if not flip then op
              else
                match op with
                | Qexpr.Lt -> Qexpr.Gt
                | Qexpr.Le -> Qexpr.Ge
                | Qexpr.Gt -> Qexpr.Lt
                | Qexpr.Ge -> Qexpr.Le
                | other -> other
            in
            match op with
            | Qexpr.Eq -> Some { pcol = col; pop = Peq; parg = arg }
            | Qexpr.Lt | Qexpr.Le -> Some { pcol = col; pop = Ple; parg = arg }
            | Qexpr.Gt | Qexpr.Ge -> Some { pcol = col; pop = Pge; parg = arg }
            | _ -> None)
    in
    match e with
    | Qexpr.Binop (op, Qexpr.Col c, ((Qexpr.Const _ | Qexpr.Param _) as arg)) ->
      mk ~flip:false op c arg
    | Qexpr.Binop (op, ((Qexpr.Const _ | Qexpr.Param _) as arg), Qexpr.Col c) ->
      mk ~flip:true op c arg
    | _ -> None
  in
  match where with
  | None -> []
  | Some where -> List.filter_map sargable (Qexpr.conjuncts where)

let build_scan env tbl where on_cal =
  let svalid_ix, svalid_col =
    match on_cal with
    | None -> (None, None)
    | Some _ -> (
      match Schema.valid_time_column (tbl : Table.t).Table.schema with
      | Some c ->
        ( Some (Schema.column_index_exn tbl.Table.schema c.Schema.name),
          Some c.Schema.name )
      | None ->
        raise
          (Plan_error
             (Printf.sprintf "table %s has no valid-time column for the on-clause"
                (Table.name tbl))))
  in
  let rec pure = function
    | Qexpr.Call _ -> false
    | Qexpr.Col _ | Qexpr.Const _ | Qexpr.Param _ -> true
    | Qexpr.Binop (_, a, b) -> pure a && pure b
    | Qexpr.Not e | Qexpr.Neg e -> pure e
  in
  {
    stable = tbl;
    swhere = Option.map (Qcompile.compile env) where;
    sprobes = probes_of tbl where;
    scal = on_cal;
    svalid_ix;
    svalid_col;
    spure = (match where with None -> true | Some w -> pure w);
  }

let build_assigns env schema assigns =
  List.map
    (fun (col, e) ->
      { acol = col; aix = Schema.column_index schema col; acode = Qcompile.compile env e })
    assigns

let build catalog (q : Qast.query) : plan =
  let pversion = (catalog : Catalog.t).Catalog.version in
  let finish env action = { pversion; outer = Qcompile.outer_cols env; action } in
  match q with
  | Qast.Append { table; assigns } ->
    let tbl = Catalog.table catalog table in
    (* Assignments never see the target table's columns — only the outer
       (NEW/CURRENT) environment — so compile without a schema. *)
    let env = Qcompile.make_env ~catalog () in
    finish env (P_append { atable = tbl; aassigns = build_assigns env tbl.Table.schema assigns })
  | Qast.Retrieve { targets; from_ = None; where; on_cal = _; group_by = _ } ->
    let env = Qcompile.make_env ~catalog () in
    let pwhere = Option.map (Qcompile.compile env) where in
    let ptargets = List.map (fun (_, e) -> Qcompile.compile env e) targets in
    finish env (P_expr_retrieve { labels = List.map fst targets; pwhere; ptargets })
  | Qast.Retrieve { targets; from_ = Some table; where; on_cal; group_by } ->
    let tbl = Catalog.table catalog table in
    let env = Qcompile.make_env ~catalog ~table:tbl () in
    let scan = build_scan env tbl where on_cal in
    let grouped = group_by <> [] in
    if grouped then
      List.iter
        (fun (label, e) ->
          match e with
          | Qexpr.Col c
            when List.mem (match own_column tbl c with Some col -> col | None -> c) group_by
            ->
            ()
          | _ when is_aggregate_call e -> ()
          | _ ->
            raise
              (Plan_error
                 (Printf.sprintf "target %s must be a grouping column or an aggregate" label)))
        targets;
    let aggregate =
      (not grouped) && targets <> [] && List.for_all (fun (_, e) -> is_aggregate_call e) targets
    in
    let per_row =
      List.map
        (fun (_, e) ->
          let e =
            match e with
            | Qexpr.Call ("count", []) when aggregate || grouped -> Qexpr.Const (Value.Int 1)
            | Qexpr.Call (_, [ arg ]) when aggregate || (grouped && is_aggregate_call e) -> arg
            | Qexpr.Call (f, args) when aggregate ->
              raise
                (Plan_error
                   (Printf.sprintf "aggregate %s expects one argument, got %d" f
                      (List.length args)))
            | _ -> e
          in
          Qcompile.compile env e)
        targets
    in
    let group_codes = List.map (fun c -> Qcompile.compile env (Qexpr.Col c)) group_by in
    finish env
      (P_scan_retrieve
         {
           labels = List.map fst targets;
           scan;
           per_row;
           raw_targets = targets;
           aggregate;
           group_by;
           group_codes;
         })
  | Qast.Delete { table; where } ->
    let tbl = Catalog.table catalog table in
    let env = Qcompile.make_env ~catalog ~table:tbl () in
    finish env (P_delete { scan = build_scan env tbl where None })
  | Qast.Replace { table; assigns; where } ->
    let tbl = Catalog.table catalog table in
    let env = Qcompile.make_env ~catalog ~table:tbl () in
    let scan = build_scan env tbl where None in
    finish env (P_replace { scan; rassigns = build_assigns env tbl.Table.schema assigns })
  | Qast.Create_table _ | Qast.Create_index _ | Qast.Define_rule _ | Qast.Drop_rule _ ->
    raise (Plan_error ("query form is not cacheable: " ^ Qast.to_string q))

(* --- the plan cache ------------------------------------------------ *)

(* LRU over parameterized skeletons: an intrusive doubly-linked list
   (same idiom as [Cal_cache]) with a hashtable from skeleton to node.
   Skeleton keys contain no [Value.t] after parameterization — only
   constructors, strings and ints — so polymorphic hashing and equality
   are safe. *)

type node = {
  nkey : Qast.query;
  nplan : plan;
  mutable prev : node option;
  mutable next : node option;
}

type cache = {
  tbl : (Qast.query, node) Hashtbl.t;
  capacity : int;
  lock : Mutex.t;
      (* one catalog's cache box is shared with its snapshots, so
         concurrent readers and the writer prepare against the same LRU *)
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;
  mutable chits : int;
  mutable cmisses : int;
  mutable cevictions : int;
  mutable cinvalidations : int;
}

type Catalog.cache_box += Box of cache

let default_capacity = 256

(* Serializes first-use installation of a catalog's cache box (the box
   slot is shared by reference with every snapshot of that catalog). *)
let install_lock = Mutex.create ()

let cache_of catalog =
  match !((catalog : Catalog.t).Catalog.plan_cache) with
  | Some (Box c) -> c
  | _ ->
    Mutex.protect install_lock (fun () ->
        match !(catalog.Catalog.plan_cache) with
        | Some (Box c) -> c
        | _ ->
          let c =
            {
              tbl = Hashtbl.create 64;
              capacity = default_capacity;
              lock = Mutex.create ();
              head = None;
              tail = None;
              chits = 0;
              cmisses = 0;
              cevictions = 0;
              cinvalidations = 0;
            }
          in
          catalog.Catalog.plan_cache := Some (Box c);
          c)

let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.head;
  n.prev <- None;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let remove c n =
  unlink c n;
  Hashtbl.remove c.tbl n.nkey

let evict_tail c =
  match c.tail with
  | None -> ()
  | Some n ->
    remove c n;
    c.cevictions <- c.cevictions + 1

(** [prepare catalog q] parameterizes [q], then returns the cached plan
    for its skeleton (hit) or builds, caches and returns a fresh one
    (miss). The returned flag is [true] on a hit. Plans built under an
    older catalog version count as invalidations and rebuild.
    @raise Plan_error on non-cacheable query forms or plan-time
    validation failures (never cached). *)
let prepare catalog (q : Qast.query) : plan * Value.t array * bool =
  match parameterize_query q with
  | None -> raise (Plan_error ("query form is not cacheable: " ^ Qast.to_string q))
  | Some (key, params) ->
    let c = cache_of catalog in
    Mutex.protect c.lock (fun () ->
        match Hashtbl.find_opt c.tbl key with
        | Some n when n.nplan.pversion = (catalog : Catalog.t).Catalog.version ->
          c.chits <- c.chits + 1;
          unlink c n;
          push_front c n;
          (n.nplan, params, true)
        | stale ->
          (match stale with
          | Some n ->
            c.cinvalidations <- c.cinvalidations + 1;
            remove c n
          | None -> ());
          c.cmisses <- c.cmisses + 1;
          let plan = build catalog key in
          let n = { nkey = key; nplan = plan; prev = None; next = None } in
          Hashtbl.replace c.tbl key n;
          push_front c n;
          if Hashtbl.length c.tbl > c.capacity then evict_tail c;
          (plan, params, false))

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
}

let cache_stats catalog =
  let c = cache_of catalog in
  Mutex.protect c.lock (fun () ->
      {
        hits = c.chits;
        misses = c.cmisses;
        evictions = c.cevictions;
        invalidations = c.cinvalidations;
        size = Hashtbl.length c.tbl;
      })
