(** Query execution as a compile-then-execute pipeline.

    The default [`Compiled] mode prepares a query through {!Qplan}:
    constants are hoisted into a parameter vector, the skeleton is looked
    up in the catalog's plan cache, and on a miss the where clause,
    targets and assignments are lowered once into closures with columns
    resolved to tuple offsets ({!Qcompile}). Access paths then rank every
    sargable conjunct by estimated selectivity (B-tree key counts plus
    key-space interpolation for ranges), intersect the candidate rowid
    sets worth materializing via a sorted-array merge, and serve
    [on <calendar>] clauses with a single {!Btree.range_merge} sweep over
    the coalesced interval set instead of one probe per interval.

    The original tree-walking interpreter survives as [`Interpreted] —
    the differential oracle for [test/test_plan.ml] and the baseline for
    bench E16 — upgraded only to pick the most selective sargable
    conjunct rather than the first. [~force_seq] disables candidate
    generation in either mode, which the differential suite uses to prove
    index scans and sequential scans return identical rows.

    The residual [where] predicate is always re-applied after an index
    probe, so inclusive-range probes (and skipped probes) over-approximate
    safely. *)

type stats = {
  mutable scanned : int;  (** tuples touched *)
  mutable seq_scans : int;
  mutable index_scans : int;
  mutable index_probes : int;  (** individual B-tree probes / merged sweeps *)
  mutable plan_cache_hits : int;
  mutable plan_cache_misses : int;
}

let fresh_stats () =
  {
    scanned = 0;
    seq_scans = 0;
    index_scans = 0;
    index_probes = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
  }

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Msg of string
  | Rule_def of Qast.rule  (** consumed by the rule manager upstream *)
  | Rule_drop of string

exception Exec_error of string

type mode = [ `Compiled | `Interpreted ]

(* Column binding for a tuple of [table]; falls back to [outer] (used for
   NEW/CURRENT bindings in rule actions). *)
let binding_of ~outer table tuple name =
  let schema = (table : Table.t).Table.schema in
  let resolve col = Option.map (fun i -> tuple.(i)) (Schema.column_index schema col) in
  let v =
    match String.index_opt name '.' with
    | Some i ->
      let prefix = String.sub name 0 i in
      let col = String.sub name (i + 1) (String.length name - i - 1) in
      if String.lowercase_ascii prefix = String.lowercase_ascii (Table.name table) then
        resolve col
      else None
    | None -> resolve name
  in
  match v with Some _ -> v | None -> outer name

let resolve_calendar catalog source =
  match (catalog : Catalog.t).Catalog.calendar_resolver with
  | Some f -> f source
  | None -> raise (Exec_error "no calendar resolver installed (on-clause unavailable)")

let where_not_boolean v = Exec_error ("where clause is not boolean: " ^ Value.to_string v)

(* --- aggregates (shared by both engines) --------------------------- *)

let run_aggregates targets value_rows =
  let agg_one col_idx (_, e) =
    match e with
    | Qexpr.Call (f, _) ->
      let values =
        List.filter_map
          (fun row ->
            match (row : Value.t array).(col_idx) with Value.Null -> None | v -> Some v)
          value_rows
      in
      let floats () = List.filter_map Value.as_float values in
      let v =
        match f with
        | "count" -> Value.Int (List.length values)
        | "sum" -> Value.Float (List.fold_left ( +. ) 0. (floats ()))
        | "avg" ->
          let fs = floats () in
          if fs = [] then Value.Null
          else Value.Float (List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs))
        | "min" -> (
          match values with
          | [] -> Value.Null
          | v0 :: rest -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v0 rest)
        | "max" -> (
          match values with
          | [] -> Value.Null
          | v0 :: rest -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v0 rest)
        | _ -> assert false
      in
      v
    | _ -> (
      (* Non-aggregate target (a grouping column): take the value from the
         first member row. *)
      match value_rows with
      | row :: _ -> (row : Value.t array).(col_idx)
      | [] -> Value.Null)
  in
  [ Array.of_list (List.mapi agg_one targets) ]

(* ==================================================================
   Interpreted engine — the original tree-walking executor, kept as the
   differential oracle. Access-path selection now picks the most
   selective sargable conjunct instead of settling for the first.
   ================================================================== *)

(* Candidates from every indexed, sargable conjunct: col op const. The
   probe with the fewest rowids wins (an over-approximation; where is
   re-applied). *)
let index_candidates ~stats table where =
  let sargable e =
    match e with
    | Qexpr.Binop (op, Qexpr.Col c, Qexpr.Const v)
    | Qexpr.Binop (op, Qexpr.Const v, Qexpr.Col c) ->
      let flip =
        match e with Qexpr.Binop (_, Qexpr.Const _, Qexpr.Col _) -> true | _ -> false
      in
      Option.bind (Qplan.own_column table c) (fun col ->
          if not (Table.has_index table col) then None
          else
            let op =
              if not flip then op
              else
                match op with
                | Qexpr.Lt -> Qexpr.Gt
                | Qexpr.Le -> Qexpr.Ge
                | Qexpr.Gt -> Qexpr.Lt
                | Qexpr.Ge -> Qexpr.Le
                | other -> other
            in
            match op with
            | Qexpr.Eq | Qexpr.Lt | Qexpr.Le | Qexpr.Gt | Qexpr.Ge ->
              stats.index_probes <- stats.index_probes + 1;
              (match op with
              | Qexpr.Eq -> Table.index_lookup table col v
              | Qexpr.Lt | Qexpr.Le -> Table.index_range table col ~hi:v ()
              | _ -> Table.index_range table col ~lo:v ())
            | _ -> None)
    | _ -> None
  in
  match where with
  | None -> None
  | Some where -> (
    match List.filter_map sargable (Qexpr.conjuncts where) with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun best c -> if List.length c < List.length best then c else best)
           first rest))

(* Candidates from the valid-time calendar clause, when the valid column
   is indexed: one index range probe per calendar interval. *)
let calendar_candidates ~stats table valid_col chronons =
  if not (Table.has_index table valid_col) then None
  else
    Some
      (Interval_set.fold
         (fun acc iv ->
           stats.index_probes <- stats.index_probes + 1;
           match
             Table.index_range table valid_col ~lo:(Value.Chronon (Interval.lo iv))
               ~hi:(Value.Chronon (Interval.hi iv)) ()
           with
           | Some rowids -> List.rev_append rowids acc
           | None -> acc)
         [] chronons)

(* Matching row ids for a table given where + calendar clause. *)
let matching_rows catalog ~stats ~outer ~force_seq table where on_cal =
  let chronons = Option.map (resolve_calendar catalog) on_cal in
  let valid_col =
    match on_cal with
    | None -> None
    | Some _ -> (
      match Schema.valid_time_column (table : Table.t).Table.schema with
      | Some c -> Some c.Schema.name
      | None ->
        raise
          (Exec_error
             (Printf.sprintf "table %s has no valid-time column for the on-clause"
                (Table.name table))))
  in
  let candidates =
    if force_seq then None
    else
      let from_where = index_candidates ~stats table where in
      let from_cal =
        match (valid_col, chronons) with
        | Some col, Some set -> calendar_candidates ~stats table col set
        | _ -> None
      in
      match (from_where, from_cal) with
      | Some a, Some b ->
        (* Intersect the two candidate sets. *)
        let inb = Hashtbl.create (List.length b) in
        List.iter (fun r -> Hashtbl.replace inb r ()) b;
        Some (List.filter (Hashtbl.mem inb) a)
      | Some a, None -> Some a
      | None, Some b -> Some b
      | None, None -> None
  in
  let passes rowid tuple =
    stats.scanned <- stats.scanned + 1;
    ignore rowid;
    let binding = binding_of ~outer table tuple in
    let where_ok =
      match where with
      | None -> true
      | Some e -> (
        match Qexpr.eval ~catalog ~binding e with
        | Value.Bool b -> b
        | Value.Null -> false
        | v -> raise (where_not_boolean v))
    in
    let cal_ok =
      match (chronons, valid_col) with
      | Some set, Some col -> (
        match binding col with
        | Some (Value.Chronon c) -> Interval_set.contains_chronon set c
        | Some Value.Null | None -> false
        | Some v ->
          raise (Exec_error ("valid-time column is not a chronon: " ^ Value.to_string v)))
      | _ -> true
    in
    where_ok && cal_ok
  in
  match candidates with
  | Some rowids ->
    stats.index_scans <- stats.index_scans + 1;
    List.filter
      (fun rowid ->
        match Table.get table rowid with Some tuple -> passes rowid tuple | None -> false)
      (List.sort_uniq Int.compare rowids)
  | None ->
    stats.seq_scans <- stats.seq_scans + 1;
    List.rev
      (Table.fold table (fun acc rowid tuple -> if passes rowid tuple then rowid :: acc else acc) [])

let eval_assigns catalog ~binding assigns schema =
  let tuple = Array.make (Schema.arity schema) Value.Null in
  List.iter
    (fun (col, e) ->
      let i = Schema.column_index_exn schema col in
      tuple.(i) <- Qexpr.eval ~catalog ~binding e)
    assigns;
  tuple

let run_interpreted catalog ~outer ~stats ~force_seq (q : Qast.query) : result =
  match q with
  | Qast.Append { table; assigns } ->
    let tbl = Catalog.table catalog table in
    let tuple = eval_assigns catalog ~binding:outer assigns tbl.Table.schema in
    ignore (Table.insert tbl tuple);
    Catalog.fire catalog
      { Catalog.kind = Catalog.On_append; table = Table.name tbl; tuple = Some tuple };
    Affected 1
  | Qast.Retrieve { targets; from_ = None; where; on_cal = _; group_by = _ } ->
    (* Pure expression retrieve. *)
    let ok =
      match where with
      | None -> true
      | Some e -> (
        match Qexpr.eval ~catalog ~binding:outer e with
        | Value.Bool b -> b
        | Value.Null -> false
        | v -> raise (where_not_boolean v))
    in
    let rows =
      if ok then [ Array.of_list (List.map (fun (_, e) -> Qexpr.eval ~catalog ~binding:outer e) targets) ]
      else []
    in
    Rows { columns = List.map fst targets; rows }
  | Qast.Retrieve { targets; from_ = Some table; where; on_cal; group_by = [] } ->
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer ~force_seq tbl where on_cal in
    let aggregate =
      targets <> [] && List.for_all (fun (_, e) -> Qplan.is_aggregate_call e) targets
    in
    (* For aggregates evaluate the call's argument per row; otherwise the
       target expression itself. *)
    let per_row_exprs =
      List.map
        (fun (label, e) ->
          if aggregate then
            match e with
            | Qexpr.Call ("count", []) -> (label, Qexpr.Const (Value.Int 1))
            | Qexpr.Call (_, [ arg ]) -> (label, arg)
            | Qexpr.Call (f, args) ->
              raise
                (Exec_error
                   (Printf.sprintf "aggregate %s expects one argument, got %d" f
                      (List.length args)))
            | _ -> (label, e)
          else (label, e))
        targets
    in
    let value_rows =
      List.filter_map
        (fun rowid ->
          match Table.get tbl rowid with
          | None -> None
          | Some tuple ->
            Catalog.fire catalog
              { Catalog.kind = Catalog.On_retrieve; table = Table.name tbl; tuple = Some tuple };
            let binding = binding_of ~outer tbl tuple in
            Some
              (Array.of_list
                 (List.map (fun (_, e) -> Qexpr.eval ~catalog ~binding e) per_row_exprs)))
        rowids
    in
    let rows = if aggregate then run_aggregates targets value_rows else value_rows in
    Rows { columns = List.map fst targets; rows }
  | Qast.Retrieve { targets; from_ = Some table; where; on_cal; group_by } ->
    (* Grouped retrieval: every target must be either a grouping column or
       an aggregate call; one output row per distinct grouping key, in
       first-appearance order. *)
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer ~force_seq tbl where on_cal in
    List.iter
      (fun (label, e) ->
        match e with
        | Qexpr.Col c
          when List.mem
                 (match Qplan.own_column tbl c with Some col -> col | None -> c)
                 group_by ->
          ()
        | _ when Qplan.is_aggregate_call e -> ()
        | _ ->
          raise
            (Exec_error
               (Printf.sprintf "target %s must be a grouping column or an aggregate" label)))
      targets;
    let groups : (Value.t list, Value.t array list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let per_row_exprs =
      List.map
        (fun (label, e) ->
          match e with
          | Qexpr.Call ("count", []) -> (label, Qexpr.Const (Value.Int 1))
          | Qexpr.Call (_, [ arg ]) when Qplan.is_aggregate_call e -> (label, arg)
          | _ -> (label, e))
        targets
    in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some tuple ->
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_retrieve; table = Table.name tbl; tuple = Some tuple };
          let binding = binding_of ~outer tbl tuple in
          let key =
            List.map
              (fun col ->
                match binding col with
                | Some v -> v
                | None -> raise (Exec_error ("unknown grouping column " ^ col)))
              group_by
          in
          let row =
            Array.of_list (List.map (fun (_, e) -> Qexpr.eval ~catalog ~binding e) per_row_exprs)
          in
          (match Hashtbl.find_opt groups key with
          | Some rows -> rows := row :: !rows
          | None ->
            order := key :: !order;
            Hashtbl.replace groups key (ref [ row ])))
      rowids;
    let rows =
      List.rev_map
        (fun key ->
          let members = List.rev !(Hashtbl.find groups key) in
          let agg_row = List.hd (run_aggregates targets members) in
          (* Grouping-column targets take the key's value rather than the
             (meaningless) aggregate over the column. *)
          List.iteri
            (fun i (_, e) ->
              match e with
              | Qexpr.Col _ -> agg_row.(i) <- (List.hd members).(i)
              | _ -> ())
            targets;
          agg_row)
        !order
    in
    Rows { columns = List.map fst targets; rows }
  | Qast.Delete { table; where } ->
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer ~force_seq tbl where None in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some tuple ->
          ignore (Table.delete tbl rowid);
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_delete; table = Table.name tbl; tuple = Some tuple })
      rowids;
    Affected (List.length rowids)
  | Qast.Replace { table; assigns; where } ->
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer ~force_seq tbl where None in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some old ->
          let tuple = Array.copy old in
          let binding = binding_of ~outer tbl old in
          List.iter
            (fun (col, e) ->
              tuple.(Schema.column_index_exn tbl.Table.schema col) <-
                Qexpr.eval ~catalog ~binding e)
            assigns;
          ignore (Table.update tbl rowid tuple);
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_replace; table = Table.name tbl; tuple = Some tuple })
      rowids;
    Affected (List.length rowids)
  | Qast.Create_table _ | Qast.Create_index _ | Qast.Define_rule _ | Qast.Drop_rule _ ->
    assert false (* handled by the dispatcher *)

(* ==================================================================
   Compiled engine
   ================================================================== *)

module Pool = Cal_parallel.Pool

(* Sorted, duplicate-free rowid array — the candidate-set representation
   intersections merge over. *)
(* List.sort_uniq beats sorting in place here: the candidate lists come
   straight off the B-tree as cons cells, and the bottom-up list merge
   outruns Array.sort's closure-calling heapsort on them by ~3x. *)
let sorted_rowid_array rowids = Array.of_list (List.sort_uniq Int.compare rowids)

(* O(n+m) sorted-array intersection (the Interval_set merge idiom). *)
let inter_sorted a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (min la lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    let c = Int.compare a.(!i) b.(!j) in
    if c = 0 then begin
      out.(!k) <- a.(!i);
      incr k;
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  Array.sub out 0 !k

let key_float = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Chronon c -> Some (float_of_int (Chronon.to_offset c))
  | _ -> None

(* Estimated result size of one probe. Equality probes are exact (the
   B-tree's rowid list length); range probes interpolate the probe bound
   over the index's [min_key, max_key] span scaled by rows-per-key.
   Non-numeric key spaces pessimistically estimate the whole table. *)
let estimate_probe tbl (p : Qplan.probe) v =
  match Table.index tbl p.Qplan.pcol with
  | None -> max_int
  | Some idx -> (
    match p.Qplan.pop with
    | Qplan.Peq -> List.length (Btree.find idx v)
    | Qplan.Ple | Qplan.Pge -> (
      let nrows = Table.count tbl in
      let card = Btree.cardinal idx in
      if card = 0 then 0
      else
        match (Btree.min_key idx, Btree.max_key idx) with
        | Some lo, Some hi -> (
          match (key_float lo, key_float hi, key_float v) with
          | Some l, Some h, Some x when h > l ->
            let f =
              match p.Qplan.pop with
              | Qplan.Ple -> (x -. l) /. (h -. l)
              | _ -> (h -. x) /. (h -. l)
            in
            let f = Float.min 1. (Float.max 0. f) in
            int_of_float (Float.ceil (f *. float_of_int nrows))
          | _ -> nrows)
        | _ -> 0))

(* Execute the sargable probes worth their cost: cheapest estimate first,
   each further probe only while its estimate undercuts the running
   candidate set (skipping is sound — the residual where re-applies). *)
let run_probes ~stats tbl params (probes : Qplan.probe list) : int array option =
  match probes with
  | [] -> None
  | probes -> (
    let nrows = Table.count tbl in
    let ranked =
      List.sort
        (fun (a, _, _) (b, _, _) -> Int.compare a b)
        (List.map
           (fun (p : Qplan.probe) ->
             let v = Qplan.probe_value params p.Qplan.parg in
             (estimate_probe tbl p v, p, v))
           probes)
    in
    let exec_probe (p : Qplan.probe) v =
      stats.index_probes <- stats.index_probes + 1;
      let rowids =
        match p.Qplan.pop with
        | Qplan.Peq -> Table.index_lookup tbl p.Qplan.pcol v
        | Qplan.Ple -> Table.index_range tbl p.Qplan.pcol ~hi:v ()
        | Qplan.Pge -> Table.index_range tbl p.Qplan.pcol ~lo:v ()
      in
      sorted_rowid_array (Option.value ~default:[] rowids)
    in
    match ranked with
    | (best, p0, v0) :: rest when best < nrows || p0.Qplan.pop = Qplan.Peq ->
      let acc = ref (exec_probe p0 v0) in
      List.iter
        (fun (est, p, v) ->
          if Array.length !acc > 0 && est < Array.length !acc then
            acc := inter_sorted !acc (exec_probe p v))
        rest;
      Some !acc
    | _ ->
      (* Even the cheapest probe would touch everything: scan instead. *)
      None)

(* The whole on-calendar clause in one merged B-tree sweep over the
   coalesced interval set. *)
let merged_calendar_candidates ~stats tbl col set =
  if not (Table.has_index tbl col) then None
  else begin
    let ivals =
      Array.map
        (fun iv -> (Value.Chronon (Interval.lo iv), Value.Chronon (Interval.hi iv)))
        (Interval_set.to_array (Interval_set.coalesce set))
    in
    stats.index_probes <- stats.index_probes + 1;
    Option.map sorted_rowid_array (Table.index_merge tbl col ivals)
  end

(* Sequential scans over at least this many row slots are eligible for
   domain partitioning; smaller tables are not worth the dispatch. The
   determinism tests lower it to 0 to exercise the parallel path on
   small random tables. *)
let parallel_scan_threshold = ref 4096

(* Matching rowids under a compiled scan, ascending (same order as the
   interpreted engine, so differential comparisons are exact).

   When no index candidates apply, the predicate is pure ([spure]) and
   the table is large enough, the sequential scan splits the rowid range
   [0, high_water) into one contiguous chunk per pool lane. Chunks only
   read: tuples, the params/outer vectors and the resolved interval set
   are all immutable during the scan, and per-chunk scan counters merge
   into [stats] after the join. Concatenating the per-chunk rowid lists
   in chunk order reproduces the serial ascending order exactly; a
   predicate that raises does so first in the lowest failing chunk,
   which is the same row a serial scan would have failed on. *)
(* Plans are portable across a live catalog and its snapshots: a plan
   records the table it was built against, but execution re-resolves it
   by name in the catalog it runs under. Sound because a plan only runs
   when its version stamp matches the catalog's, and a snapshot carries
   the version (and thus schema and index set) of the catalog it froze. *)
let plan_table catalog (tbl : Table.t) = Catalog.table catalog (Table.name tbl)

let scan_rowids catalog ~stats ~force_seq ~domains ~params ~outer_env (scan : Qplan.scan) :
    int list =
  let tbl = plan_table catalog scan.Qplan.stable in
  let chronons = Option.map (resolve_calendar catalog) scan.Qplan.scal in
  let candidates =
    if force_seq then None
    else
      let from_where = run_probes ~stats tbl params scan.Qplan.sprobes in
      let from_cal =
        match (chronons, scan.Qplan.svalid_col) with
        | Some set, Some col -> merged_calendar_candidates ~stats tbl col set
        | _ -> None
      in
      match (from_where, from_cal) with
      | Some a, Some b -> Some (inter_sorted a b)
      | (Some _ as x), None | None, (Some _ as x) -> x
      | None, None -> None
  in
  let where_pred = Option.map (Qcompile.as_predicate ~fail:where_not_boolean) scan.Qplan.swhere in
  (* Pure w.r.t. [stats]; counting is the caller's business. *)
  let passes tuple =
    (match where_pred with None -> true | Some p -> p params outer_env tuple)
    &&
    match (chronons, scan.Qplan.svalid_ix) with
    | Some set, Some vi -> (
      match tuple.(vi) with
      | Value.Chronon c -> Interval_set.contains_chronon set c
      | Value.Null -> false
      | v -> raise (Exec_error ("valid-time column is not a chronon: " ^ Value.to_string v)))
    | _ -> true
  in
  match candidates with
  | Some rowids ->
    stats.index_scans <- stats.index_scans + 1;
    List.filter
      (fun rowid ->
        match Table.get tbl rowid with
        | Some t ->
          stats.scanned <- stats.scanned + 1;
          passes t
        | None -> false)
      (Array.to_list rowids)
  | None -> (
    stats.seq_scans <- stats.seq_scans + 1;
    let pool = Pool.default () in
    let lanes = max 1 (min domains (Pool.size pool)) in
    let hw = Table.high_water tbl in
    if lanes > 1 && scan.Qplan.spure && hw >= !parallel_scan_threshold then begin
      let parts =
        Pool.map_chunks ~domains:lanes pool ~n:hw (fun ~lo ~hi ->
            let hits = ref [] and touched = ref 0 in
            Table.iter_range tbl ~lo ~hi (fun rowid tuple ->
                incr touched;
                if passes tuple then hits := rowid :: !hits);
            (List.rev !hits, !touched))
      in
      Array.iter (fun (_, touched) -> stats.scanned <- stats.scanned + touched) parts;
      List.concat (List.map fst (Array.to_list parts))
    end
    else
      List.rev
        (Table.fold tbl
           (fun acc rowid t ->
             stats.scanned <- stats.scanned + 1;
             if passes t then rowid :: acc else acc)
           []))

let assign_index schema (a : Qplan.assign) =
  match a.Qplan.aix with
  | Some i -> i
  | None -> Schema.column_index_exn schema a.Qplan.acol

(* Execute an already-prepared plan. Split out of {!run_compiled} so
   same-shape statements (e.g. a DBCRON batch of identical rule actions)
   can prepare once and execute many times without re-entering the plan
   cache. *)
let exec_plan catalog ~outer ~stats ~force_seq ~domains (plan : Qplan.plan) params : result =
  (* Materialize the outer (NEW/CURRENT) environment once per run; the
     compiled closures index it by slot instead of probing per row. *)
  let outer_env = Qcompile.bind_outer ~outer_cols:plan.Qplan.outer outer in
  match plan.Qplan.action with
  | Qplan.P_expr_retrieve { labels; pwhere; ptargets } ->
    let ok =
      match pwhere with
      | None -> true
      | Some c -> Qcompile.as_predicate ~fail:where_not_boolean c params outer_env [||]
    in
    let rows =
      if ok then [ Array.of_list (List.map (fun c -> c params outer_env [||]) ptargets) ]
      else []
    in
    Rows { columns = labels; rows }
  | Qplan.P_scan_retrieve { labels; scan; per_row; raw_targets; aggregate; group_by = []; _ } ->
    let tbl = plan_table catalog scan.Qplan.stable in
    let rowids = scan_rowids catalog ~stats ~force_seq ~domains ~params ~outer_env scan in
    let value_rows =
      List.filter_map
        (fun rowid ->
          match Table.get tbl rowid with
          | None -> None
          | Some tuple ->
            Catalog.fire catalog
              { Catalog.kind = Catalog.On_retrieve; table = Table.name tbl; tuple = Some tuple };
            Some (Array.of_list (List.map (fun c -> c params outer_env tuple) per_row)))
        rowids
    in
    let rows = if aggregate then run_aggregates raw_targets value_rows else value_rows in
    Rows { columns = labels; rows }
  | Qplan.P_scan_retrieve { labels; scan; per_row; raw_targets; group_by; group_codes; _ } ->
    let tbl = plan_table catalog scan.Qplan.stable in
    let rowids = scan_rowids catalog ~stats ~force_seq ~domains ~params ~outer_env scan in
    let groups : (Value.t list, Value.t array list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some tuple ->
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_retrieve; table = Table.name tbl; tuple = Some tuple };
          let key = List.map (fun c -> c params outer_env tuple) group_codes in
          let row = Array.of_list (List.map (fun c -> c params outer_env tuple) per_row) in
          (match Hashtbl.find_opt groups key with
          | Some rows -> rows := row :: !rows
          | None ->
            order := key :: !order;
            Hashtbl.replace groups key (ref [ row ])))
      rowids;
    ignore group_by;
    let rows =
      List.rev_map
        (fun key ->
          let members = List.rev !(Hashtbl.find groups key) in
          let agg_row = List.hd (run_aggregates raw_targets members) in
          List.iteri
            (fun i (_, e) ->
              match e with
              | Qexpr.Col _ -> agg_row.(i) <- (List.hd members).(i)
              | _ -> ())
            raw_targets;
          agg_row)
        !order
    in
    Rows { columns = labels; rows }
  | Qplan.P_delete { scan } ->
    let tbl = plan_table catalog scan.Qplan.stable in
    let rowids = scan_rowids catalog ~stats ~force_seq ~domains ~params ~outer_env scan in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some tuple ->
          ignore (Table.delete tbl rowid);
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_delete; table = Table.name tbl; tuple = Some tuple })
      rowids;
    Affected (List.length rowids)
  | Qplan.P_replace { scan; rassigns } ->
    let tbl = plan_table catalog scan.Qplan.stable in
    let schema = tbl.Table.schema in
    let rowids = scan_rowids catalog ~stats ~force_seq ~domains ~params ~outer_env scan in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some old ->
          let tuple = Array.copy old in
          List.iter
            (fun (a : Qplan.assign) ->
              tuple.(assign_index schema a) <- a.Qplan.acode params outer_env old)
            rassigns;
          ignore (Table.update tbl rowid tuple);
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_replace; table = Table.name tbl; tuple = Some tuple })
      rowids;
    Affected (List.length rowids)
  | Qplan.P_append { atable; aassigns } ->
    let atable = plan_table catalog atable in
    let schema = atable.Table.schema in
    let tuple = Array.make (Schema.arity schema) Value.Null in
    List.iter
      (fun (a : Qplan.assign) ->
        tuple.(assign_index schema a) <- a.Qplan.acode params outer_env [||])
      aassigns;
    ignore (Table.insert atable tuple);
    Catalog.fire catalog
      { Catalog.kind = Catalog.On_append; table = Table.name atable; tuple = Some tuple };
    Affected 1

let run_compiled catalog ~outer ~stats ~force_seq ~domains (q : Qast.query) : result =
  let plan, params, hit =
    try Qplan.prepare catalog q with Qplan.Plan_error m -> raise (Exec_error m)
  in
  if hit then stats.plan_cache_hits <- stats.plan_cache_hits + 1
  else stats.plan_cache_misses <- stats.plan_cache_misses + 1;
  exec_plan catalog ~outer ~stats ~force_seq ~domains plan params

(* --- dispatcher ---------------------------------------------------- *)

let run catalog ?(binding = fun _ -> None) ?stats ?(mode : mode = `Compiled)
    ?(force_seq = false) ?domains ?(injector = Cal_faults.Injector.none) (q : Qast.query) :
    result =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  let outer = binding in
  (* Fault-injection hook: an armed injector fails mutations before they
     touch the heap, so injected faults never leave partial updates. *)
  (match q with
  | Qast.Append _ | Qast.Delete _ | Qast.Replace _ -> (
    match Cal_faults.Injector.exec_fault injector with
    | Some msg -> raise (Exec_error msg)
    | None -> ())
  | _ -> ());
  match q with
  | Qast.Create_table { name; cols } ->
    let columns =
      List.map (fun (name, ty, valid) -> { Schema.name; ty; valid_time = valid }) cols
    in
    ignore (Catalog.create_table catalog (Schema.make ~table:name columns));
    Msg (Printf.sprintf "table %s created" name)
  | Qast.Create_index { table; col } ->
    (* Goes through the catalog so the version bump invalidates plans
       compiled against the old access paths. *)
    Catalog.create_index catalog table col;
    Msg (Printf.sprintf "index created on %s(%s)" table col)
  | Qast.Define_rule r -> Rule_def r
  | Qast.Drop_rule name -> Rule_drop name
  | Qast.Append _ | Qast.Retrieve _ | Qast.Delete _ | Qast.Replace _ -> (
    match mode with
    | `Interpreted -> run_interpreted catalog ~outer ~stats ~force_seq q
    | `Compiled -> run_compiled catalog ~outer ~stats ~force_seq ~domains q)

(* --- prepared statements ------------------------------------------- *)

type prepared = { pq : Qast.query; pplan : Qplan.plan; pparams : Value.t array }

(* One trip through the plan cache; the result replays without another.
   [None] for statements that have no cacheable plan (DDL, rules). *)
let prepare catalog ?stats (q : Qast.query) =
  match q with
  | Qast.Append _ | Qast.Retrieve _ | Qast.Delete _ | Qast.Replace _ -> (
    match Qplan.prepare catalog q with
    | plan, params, hit ->
      (match stats with
      | Some s ->
        if hit then s.plan_cache_hits <- s.plan_cache_hits + 1
        else s.plan_cache_misses <- s.plan_cache_misses + 1
      | None -> ());
      Some { pq = q; pplan = plan; pparams = params }
    | exception Qplan.Plan_error _ -> None)
  | _ -> None

let run_prepared catalog ?(binding = fun _ -> None) ?stats ?(force_seq = false) ?domains
    ?(injector = Cal_faults.Injector.none) p : result =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  if p.pplan.Qplan.pversion = catalog.Catalog.version then begin
    (* The same pre-execution fault gate as {!run}, keyed off the plan's
       action since the statement kind is already compiled away. *)
    (match p.pplan.Qplan.action with
    | Qplan.P_append _ | Qplan.P_delete _ | Qplan.P_replace _ -> (
      match Cal_faults.Injector.exec_fault injector with
      | Some msg -> raise (Exec_error msg)
      | None -> ())
    | Qplan.P_expr_retrieve _ | Qplan.P_scan_retrieve _ -> ());
    exec_plan catalog ~outer:binding ~stats ~force_seq ~domains p.pplan p.pparams
  end
  else
    (* DDL since preparation: fall back to the full path, which replans
       against the current catalog version (and runs its own fault
       gate). *)
    run catalog ~binding ~stats ~force_seq ~domains ~injector p.pq

(* Execution exceptions rendered as [Error _], shared by every
   parse-and-run entry point. *)
let catching f =
  match f () with
  | r -> Ok r
  | exception Exec_error e -> Error e
  | exception Catalog.No_such_table t -> Error ("no such table: " ^ t)
  | exception Catalog.No_such_operator o -> Error ("no such operator: " ^ o)
  | exception Catalog.Table_exists t -> Error ("table already exists: " ^ t)
  | exception Schema.Schema_error e -> Error e
  | exception Qexpr.Eval_error e -> Error e
  | exception Table.No_such_column c -> Error ("no such column: " ^ c)

(** Parse and run. *)
let run_string catalog ?binding ?stats ?mode ?force_seq ?domains ?injector input =
  match Qparser.query input with
  | Error e -> Error e
  | Ok q -> catching (fun () -> run catalog ?binding ?stats ?mode ?force_seq ?domains ?injector q)

(* --- snapshot reads ------------------------------------------------- *)

let rec expr_pure e =
  match e with
  | Qexpr.Col _ | Qexpr.Const _ | Qexpr.Param _ -> true
  | Qexpr.Binop (_, a, b) -> expr_pure a && expr_pure b
  | Qexpr.Not e | Qexpr.Neg e -> expr_pure e
  | Qexpr.Call (_, args) -> Qplan.is_aggregate_call e && List.for_all expr_pure args

(* A retrieve is pure when evaluating it cannot touch shared mutable
   state: no [on <calendar>] clause (the resolver consults the session's
   calendar cache) and no operator calls other than the built-in
   aggregates (registered operators may mutate or read session state).
   Pure reads against a snapshot need no locks at all. *)
let read_is_pure (q : Qast.query) =
  match q with
  | Qast.Retrieve { targets; where; on_cal; _ } ->
    on_cal = None
    && List.for_all (fun (_, e) -> expr_pure e) targets
    && (match where with None -> true | Some w -> expr_pure w)
  | _ -> false

(** Parse and run a retrieve-only statement — the snapshot read path.
    Non-retrieve statements are rejected with [Error _] before touching
    the catalog. [domains] defaults to 1: snapshot reads already get
    their parallelism from running many queries across reader lanes, and
    the pool must only be driven from its owning thread. *)
let run_read catalog ?stats ?(domains = 1) input =
  match Qparser.query input with
  | Error e -> Error e
  | Ok (Qast.Retrieve _ as q) -> catching (fun () -> run catalog ?stats ~domains q)
  | Ok q -> Error ("read-only: not a retrieve statement: " ^ Qast.to_string q)
