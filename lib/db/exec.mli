(** Query execution as a compile-then-execute pipeline: plans are
    prepared through {!Qplan} (parameterized-AST plan cache, compiled
    predicates, all-sargable-conjunct access-path selection, merged
    on-calendar sweeps); the original tree-walking interpreter survives
    as [`Interpreted], the differential oracle.

    The residual [where] predicate is always re-applied after an index
    probe, so inclusive-range probes (and probes skipped as not
    selective enough) over-approximate safely. *)

type stats = {
  mutable scanned : int;  (** tuples touched *)
  mutable seq_scans : int;
  mutable index_scans : int;
  mutable index_probes : int;  (** individual B-tree probes / merged sweeps *)
  mutable plan_cache_hits : int;
  mutable plan_cache_misses : int;
}

val fresh_stats : unit -> stats

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Msg of string
  | Rule_def of Qast.rule  (** consumed by the rule manager upstream *)
  | Rule_drop of string

exception Exec_error of string

type mode = [ `Compiled | `Interpreted ]

(** Minimum table high-water mark (in row slots) for a compiled
    sequential scan to be partitioned across domains; below it the scan
    stays serial. Tests lower it to exercise the parallel path on small
    tables. *)
val parallel_scan_threshold : int ref

(** [run catalog ?binding ?stats ?mode ?force_seq ?domains q] executes
    one command. [binding] resolves free columns (used for NEW/CURRENT
    in rule actions). [mode] defaults to [`Compiled]; [`Interpreted] is
    the pre-compilation tree walker kept as a differential oracle.
    [force_seq] disables index/calendar candidate generation so scans and
    probes can be differenced. [domains] caps the lanes a compiled
    sequential scan may fan out over (default
    {!Cal_parallel.Pool.default_domains}; the interpreted engine and
    impure or index-driven scans always run serially). Row order, result
    rows and counters are identical at every domain count. Retrieval
    fires [On_retrieve] per returned tuple; mutations fire their events
    after the change.

    [injector] is the fault-injection hook (default disabled): an armed
    executor fault fails a mutating command with [Exec_error] {e before}
    it touches the heap, so injected faults never leave partial updates.
    @raise Exec_error and the catalog/schema exceptions. *)
val run :
  Catalog.t ->
  ?binding:(string -> Value.t option) ->
  ?stats:stats ->
  ?mode:mode ->
  ?force_seq:bool ->
  ?domains:int ->
  ?injector:Cal_faults.Injector.t ->
  Qast.query ->
  result

(** A statement prepared once for repeated execution: one trip through
    the plan cache, replayed by {!run_prepared} without another probe.
    Used by the rule manager to coalesce a DBCRON tick's same-shape
    actions into one preparation. *)
type prepared

(** [prepare catalog ?stats q] readies a DML statement for repeated
    execution, counting the plan-cache hit or miss into [stats]. [None]
    for statements with no cacheable plan (DDL, rule commands).
    @raise Exec_error and the catalog/schema exceptions (as planning
    from {!run} would). *)
val prepare : Catalog.t -> ?stats:stats -> Qast.query -> prepared option

(** Execute a prepared statement. Identical observable behaviour to
    {!run} on the original statement — including the pre-execution
    injector gate on mutations — except that no plan-cache hit/miss is
    counted. If DDL has bumped the catalog version since preparation,
    falls back to a full {!run} (which replans). *)
val run_prepared :
  Catalog.t ->
  ?binding:(string -> Value.t option) ->
  ?stats:stats ->
  ?force_seq:bool ->
  ?domains:int ->
  ?injector:Cal_faults.Injector.t ->
  prepared ->
  result

(** Parse and run, with errors as [Error _]. *)
val run_string :
  Catalog.t ->
  ?binding:(string -> Value.t option) ->
  ?stats:stats ->
  ?mode:mode ->
  ?force_seq:bool ->
  ?domains:int ->
  ?injector:Cal_faults.Injector.t ->
  string ->
  (result, string) Stdlib.result

(** Whether [q] is a retrieve whose evaluation cannot touch shared
    mutable state: no [on <calendar>] clause and no operator calls other
    than the built-in aggregates. Pure reads run against a snapshot with
    no locking at all; impure ones must serialize with the writer's
    calendar machinery. *)
val read_is_pure : Qast.query -> bool

(** Parse and run a retrieve-only statement — the snapshot read path.
    Any non-retrieve statement is rejected with [Error _] before
    touching the catalog. Meant to run against a {!Catalog.freeze}
    snapshot (where retrieval fires no events); [domains] defaults to 1
    because concurrent readers get their parallelism from fanning
    queries across lanes, not from partitioning one scan. *)
val run_read : Catalog.t -> ?stats:stats -> ?domains:int -> string -> (result, string) Stdlib.result
