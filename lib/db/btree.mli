(** In-memory B-tree multimap from {!Value.t} keys to row ids — the
    secondary-index structure.

    Classic CLRS B-tree with minimum degree 16: every node holds between
    [t-1] and [2t-1] keys (root exempt), splits happen on the way down
    during insertion, and deletion rebalances by borrowing from or merging
    with siblings. Each key carries the list of row ids indexed under
    it. *)

type t

val create : unit -> t

(** O(1) snapshot: the result is an independent handle onto the current
    tree. Subsequent mutations through either handle path-copy each
    touched node once per epoch, so neither handle ever observes the
    other's writes. Copies no keys or row ids. *)
val freeze : t -> t

(** [insert t k rowid] adds a row id under [k] (keys may hold several). *)
val insert : t -> Value.t -> int -> unit

(** [remove t k rowid] removes one indexed row id; the key disappears once
    its last row id is gone. Returns [false] when the (key, rowid) pair
    was not present. *)
val remove : t -> Value.t -> int -> bool

(** Row ids under [k] (empty when absent), most recently inserted first. *)
val find : t -> Value.t -> int list

val mem : t -> Value.t -> bool

(** [range t ?lo ?hi f] visits keys in [lo, hi] (inclusive, either side
    optional) in ascending order. *)
val range : t -> ?lo:Value.t -> ?hi:Value.t -> (Value.t -> int list -> unit) -> unit

(** [range_merge t ivals f] visits, in one in-order sweep, every key
    falling in any of the inclusive [(lo, hi)] ranges of [ivals], which
    must be sorted by lower bound and pairwise disjoint (a coalesced
    interval set). Subtrees outside every remaining range are skipped, so
    the sweep replaces one {!range} probe per interval. *)
val range_merge : t -> (Value.t * Value.t) array -> (Value.t -> int list -> unit) -> unit

(** In-order traversal of every key. *)
val iter : t -> (Value.t -> int list -> unit) -> unit

(** Number of distinct keys. *)
val cardinal : t -> int

(** Smallest / largest key present ([None] when empty) — the key-space
    bounds the planner's selectivity estimates interpolate over. *)
val min_key : t -> Value.t option

val max_key : t -> Value.t option

val keys : t -> Value.t list

(** Asserts the structural invariants (key bounds, sortedness, uniform
    leaf depth). @raise Failure on violation; used by the model-based
    tests. *)
val check_invariants : t -> unit
