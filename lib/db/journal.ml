(* Append-only checksummed record file; see the interface for the torn-
   tail contract. *)

exception Journal_error of string

type t = {
  jpath : string;
  oc : out_channel;
  injector : Cal_faults.Injector.t;
  mutable appended : int;
  mutable closed : bool;
}

(* CRC-32 (IEEE 802.3), bytewise table-driven; the polynomial everyone
   uses for framing. Good enough to tell a torn half-record from a whole
   one, which is all the journal asks of it. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | '\\' -> Buffer.add_char buf '\\'
       | c ->
         Buffer.add_char buf '\\';
         Buffer.add_char buf c);
       i := !i + 1
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let encode payload =
  let esc = escape payload in
  Printf.sprintf "%08x %s\n" (crc32 esc) esc

(* [None] on a torn/corrupt line (missing terminator is handled by the
   caller: in_channel reading already strips it, so corruption shows up
   as a checksum mismatch or a malformed frame). *)
let decode_line line =
  match String.index_opt line ' ' with
  | Some 8 -> (
    let crc_hex = String.sub line 0 8 in
    let esc = String.sub line 9 (String.length line - 9) in
    match int_of_string_opt ("0x" ^ crc_hex) with
    | Some crc when crc = crc32 esc -> Some (unescape esc)
    | _ -> None)
  | _ -> None

let open_append ?(injector = Cal_faults.Injector.none) jpath =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 jpath in
  { jpath; oc; injector; appended = 0; closed = false }

let path t = t.jpath

let append t payload =
  if t.closed then raise (Journal_error "journal is closed");
  let record = encode payload in
  t.appended <- t.appended + 1;
  match Cal_faults.Injector.on_journal_append t.injector record with
  | `Write ->
    output_string t.oc record;
    flush t.oc
  | `Crash_after keep ->
    (* The process image dies with [keep] bytes of the record on disk:
       flush the torn prefix, mark the handle dead, and raise. *)
    output_string t.oc (String.sub record 0 keep);
    flush t.oc;
    t.closed <- true;
    close_out_noerr t.oc;
    raise
      (Cal_faults.Injector.Crash
         (Printf.sprintf "simulated crash during journal append #%d (%d/%d bytes)" t.appended
            keep (String.length record)))

let appended t = t.appended

let truncate t =
  if t.closed then raise (Journal_error "journal is closed");
  flush t.oc;
  (* Reopen in truncate mode through a second descriptor; the append
     channel's position is reset by seeking after the truncation. *)
  let tc = open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 t.jpath in
  close_out tc;
  seek_out t.oc 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc
  end

let rewrite jpath records =
  let tmp = jpath ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  List.iter (fun payload -> output_string oc (encode payload)) records;
  close_out oc;
  Sys.rename tmp jpath

let read_records jpath =
  if not (Sys.file_exists jpath) then []
  else begin
    let ic = open_in_bin jpath in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' contents in
    (* A well-formed file ends with '\n', so splitting yields a trailing
       "" sentinel; anything else in the last slot is a torn tail. *)
    let rec complete = function
      | [] | [ "" ] -> []
      | [ torn ] -> [ (torn, false) ]
      | l :: rest -> (l, true) :: complete rest
    in
    let framed = complete lines in
    let n = List.length framed in
    let records = ref [] in
    List.iteri
      (fun i (line, terminated) ->
        match if terminated then decode_line line else None with
        | Some payload -> records := payload :: !records
        | None ->
          (* A bad final line is the torn tail of a crashed append and is
             dropped; a bad line with intact successors is file damage. *)
          if i <> n - 1 then
            raise (Journal_error (Printf.sprintf "corrupt journal record %d (not a torn tail)" i)))
      framed;
    List.rev !records
  end
