(* Append-only checksummed record file(s); see the interface for the
   torn-tail and segmentation contracts. *)

exception Journal_error of string

type t = {
  jpath : string;
  segments : int;
  ocs : out_channel array; (* one channel per segment; [| oc |] when unsegmented *)
  injector : Cal_faults.Injector.t;
  mutable next_seq : int; (* global sequence of the next record *)
  mutable appended : int;
  mutable closed : bool;
}

(* CRC-32 (IEEE 802.3), bytewise table-driven; the polynomial everyone
   uses for framing. Good enough to tell a torn half-record from a whole
   one, which is all the journal asks of it. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | '\\' -> Buffer.add_char buf '\\'
       | c ->
         Buffer.add_char buf '\\';
         Buffer.add_char buf c);
       i := !i + 1
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let encode payload =
  let esc = escape payload in
  Printf.sprintf "%08x %s\n" (crc32 esc) esc

(* [None] on a torn/corrupt line (missing terminator is handled by the
   caller: in_channel reading already strips it, so corruption shows up
   as a checksum mismatch or a malformed frame). *)
let decode_line line =
  match String.index_opt line ' ' with
  | Some 8 -> (
    let crc_hex = String.sub line 0 8 in
    let esc = String.sub line 9 (String.length line - 9) in
    match int_of_string_opt ("0x" ^ crc_hex) with
    | Some crc when crc = crc32 esc -> Some (unescape esc)
    | _ -> None)
  | _ -> None

(* --- segment layout ---------------------------------------------------

   Unsegmented ([segments = 1]): the records live in [path] itself, one
   per line, exactly the original format — no manifest, no sequence
   framing. Segmented: a manifest [path.manifest] holds "segments N" and
   the records stripe across [path.seg0 .. path.segN-1] by global
   sequence number, each payload framed as "<seq> <payload>" inside its
   checksum so the segments merge back into append order. *)

let manifest_path jpath = jpath ^ ".manifest"
let seg_path jpath k = Printf.sprintf "%s.seg%d" jpath k

let detect_segments jpath =
  let mp = manifest_path jpath in
  if not (Sys.file_exists mp) then 1
  else begin
    let ic = open_in_bin mp in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.split_on_char ' ' (String.trim line) with
    | [ "segments"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> n
      | _ -> raise (Journal_error ("bad journal manifest " ^ mp)))
    | _ -> raise (Journal_error ("bad journal manifest " ^ mp))
  end

let write_manifest jpath segments =
  let mp = manifest_path jpath in
  let tmp = mp ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string oc (Printf.sprintf "segments %d\n" segments);
  close_out oc;
  Sys.rename tmp mp

(* Remove the manifest and every segment file (switching layouts or
   superseding stale state). *)
let remove_segment_files jpath =
  let mp = manifest_path jpath in
  if Sys.file_exists mp then Sys.remove mp;
  let dir = Filename.dirname jpath in
  let base = Filename.basename jpath ^ ".seg" in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if String.length f > String.length base && String.sub f 0 (String.length base) = base
        then
          match int_of_string_opt (String.sub f (String.length base) (String.length f - String.length base)) with
          | Some _ -> Sys.remove (Filename.concat dir f)
          | None -> ())
      (Sys.readdir dir)

let seg_paths jpath segments =
  if segments = 1 then [| jpath |] else Array.init segments (seg_path jpath)

(* Complete lines of a file: (line, terminated) with the '\n' stripped;
   a final line without its terminator is flagged — the torn tail of a
   crashed append. *)
let framed_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' contents in
    let rec complete = function
      | [] | [ "" ] -> []
      | [ torn ] -> [ (torn, false) ]
      | l :: rest -> (l, true) :: complete rest
    in
    complete lines
  end

(* Count of records already on disk (so a reopened handle continues the
   global sequence). Callers re-frame files before reopening, so every
   line is a whole record. *)
let count_records jpath segments =
  Array.fold_left
    (fun acc p -> acc + List.length (framed_lines p))
    0 (seg_paths jpath segments)

let open_append ?(injector = Cal_faults.Injector.none) ?(segments = 1) jpath =
  if segments < 1 then invalid_arg "Journal.open_append: segments must be >= 1";
  if segments > 1 then write_manifest jpath segments
  else if Sys.file_exists (manifest_path jpath) then
    raise (Journal_error (jpath ^ " is segmented; open with its manifest's segment count"));
  let ocs =
    Array.map
      (fun p -> open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 p)
      (seg_paths jpath segments)
  in
  { jpath; segments; ocs; injector; next_seq = count_records jpath segments;
    appended = 0; closed = false }

let path t = t.jpath
let segments t = t.segments

let append t payload =
  if t.closed then raise (Journal_error "journal is closed");
  let seq = t.next_seq in
  let framed = if t.segments = 1 then payload else Printf.sprintf "%d %s" seq payload in
  let record = encode framed in
  let oc = t.ocs.(seq mod t.segments) in
  t.next_seq <- seq + 1;
  t.appended <- t.appended + 1;
  match Cal_faults.Injector.on_journal_append t.injector record with
  | `Write ->
    output_string oc record;
    flush oc
  | `Crash_after keep ->
    (* The process image dies with [keep] bytes of the record on disk:
       flush the torn prefix, mark the handle dead, and raise. *)
    output_string oc (String.sub record 0 keep);
    flush oc;
    t.closed <- true;
    Array.iter close_out_noerr t.ocs;
    raise
      (Cal_faults.Injector.Crash
         (Printf.sprintf "simulated crash during journal append #%d (%d/%d bytes)" t.appended
            keep (String.length record)))

let appended t = t.appended

let truncate t =
  if t.closed then raise (Journal_error "journal is closed");
  Array.iteri
    (fun i p ->
      flush t.ocs.(i);
      (* Reopen in truncate mode through a second descriptor; the append
         channel's position is reset by seeking after the truncation. *)
      let tc = open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 p in
      close_out tc;
      seek_out t.ocs.(i) 0)
    (seg_paths t.jpath t.segments);
  t.next_seq <- 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter close_out_noerr t.ocs
  end

let rewrite ?(segments = 1) jpath records =
  if segments < 1 then invalid_arg "Journal.rewrite: segments must be >= 1";
  (* Drop the other layout's files so the path holds exactly one
     representation of [records]. *)
  remove_segment_files jpath;
  if segments > 1 && Sys.file_exists jpath then Sys.remove jpath;
  let paths = seg_paths jpath segments in
  let tmps =
    Array.map
      (fun p ->
        let tmp = p ^ ".tmp" in
        (tmp, open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp))
      paths
  in
  List.iteri
    (fun seq payload ->
      let framed = if segments = 1 then payload else Printf.sprintf "%d %s" seq payload in
      output_string (snd tmps.(seq mod segments)) (encode framed))
    records;
  Array.iter (fun (_, oc) -> close_out oc) tmps;
  Array.iteri (fun i p -> Sys.rename (fst tmps.(i)) p) paths;
  if segments > 1 then write_manifest jpath segments

(* Decode one segment's framed lines into (seq, payload) records —
   checksum, unescape, sequence split. Pure, so segments decode in
   parallel during recovery. [seq_framed] is false only for the
   unsegmented layout, whose records carry no sequence. *)
let decode_segment ~seg ~seq_framed framed =
  let n = List.length framed in
  let records = ref [] in
  List.iteri
    (fun i (line, terminated) ->
      match if terminated then decode_line line else None with
      | Some payload ->
        let record =
          if not seq_framed then (i, payload)
          else
            match String.index_opt payload ' ' with
            | Some sp -> (
              match int_of_string_opt (String.sub payload 0 sp) with
              | Some seq ->
                (seq, String.sub payload (sp + 1) (String.length payload - sp - 1))
              | None ->
                raise
                  (Journal_error
                     (Printf.sprintf "segment %d record %d: bad sequence frame" seg i)))
            | None ->
              raise
                (Journal_error (Printf.sprintf "segment %d record %d: bad sequence frame" seg i))
        in
        records := record :: !records
      | None ->
        (* A bad final line is the torn tail of a crashed append and is
           dropped; a bad line with intact successors is file damage. *)
        if i <> n - 1 then
          raise
            (Journal_error
               (Printf.sprintf "corrupt journal record %d (segment %d, not a torn tail)" i seg)))
    framed;
  List.rev !records

let read_records ?(domains = 1) jpath =
  let segments = detect_segments jpath in
  if segments = 1 then
    List.map snd (decode_segment ~seg:0 ~seq_framed:false (framed_lines jpath))
  else begin
    let framed = Array.map framed_lines (seg_paths jpath segments) in
    let decoded =
      let pool = Cal_parallel.Pool.default () in
      let lanes = max 1 (min domains (Cal_parallel.Pool.size pool)) in
      if lanes <= 1 then
        Array.mapi (fun seg lines -> decode_segment ~seg ~seq_framed:true lines) framed
      else
        Array.concat
          (Array.to_list
             (Cal_parallel.Pool.map_chunks ~domains:lanes pool ~n:segments (fun ~lo ~hi ->
                  Array.init (hi - lo) (fun k ->
                      decode_segment ~seg:(lo + k) ~seq_framed:true framed.(lo + k)))))
    in
    let merged =
      List.sort
        (fun (s1, _) (s2, _) -> compare s1 s2)
        (List.concat (Array.to_list decoded))
    in
    (* One torn tail at the global maximum sequence is a crash; a missing
       sequence with intact successors means a segment lost data. *)
    List.iteri
      (fun i (seq, _) ->
        if seq <> i then
          raise (Journal_error (Printf.sprintf "journal gap: record %d missing" i)))
      merged;
    List.map snd merged
  end
