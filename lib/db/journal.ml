(* Append-only checksummed record file(s); see the interface for the
   torn-tail, segmentation and group-commit contracts. *)

exception Journal_error of string

type policy = Sync_each | Group of int | Manual

let policy_name = function
  | Sync_each -> "sync_each"
  | Group n -> Printf.sprintf "group %d" n
  | Manual -> "manual"

(* The default durability policy honors CALRULES_JOURNAL_GROUP (the same
   convention CALRULES_DOMAINS uses for the pool): unset or empty means
   Sync_each, "1" means Sync_each (a window of one), an integer > 1 means
   Group of that size, "manual" means Manual. Anything else — zero,
   negative, junk — raises instead of silently defaulting: a mistyped
   durability policy must not quietly weaken (or fail to strengthen) the
   commit discipline the operator asked for. Session-level opens consult
   this so CI can run whole suites under a batched window without
   touching call sites. *)
let policy_of_env () =
  match Sys.getenv_opt "CALRULES_JOURNAL_GROUP" with
  | None -> Sync_each
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "" -> Sync_each
    | "manual" -> Manual
    | s -> (
      match int_of_string_opt s with
      | Some n when n > 1 -> Group n
      | Some 1 -> Sync_each
      | _ ->
        raise
          (Journal_error
             (Printf.sprintf
                "CALRULES_JOURNAL_GROUP=%S is not a valid group-commit policy: expected a \
                 window size >= 1 or \"manual\""
                s))))

type t = {
  jpath : string;
  segments : int;
  policy : policy;
  ocs : out_channel array; (* one channel per segment; [| oc |] when unsegmented *)
  injector : Cal_faults.Injector.t;
  scratch : Buffer.t; (* per-handle escape buffer, reused by every append *)
  mutable pending : string list; (* uncommitted group members, newest first *)
  mutable npending : int;
  mutable next_seq : int; (* global sequence of the next physical record *)
  mutable appended : int; (* logical records appended *)
  mutable flushes : int; (* physical write+flush calls completed *)
  mutable closed : bool;
}

(* CRC-32 (IEEE 802.3), bytewise table-driven; the polynomial everyone
   uses for framing. Good enough to tell a torn half-record from a whole
   one, which is all the journal asks of it. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

(* [buf], when given, is a caller-owned scratch buffer — cleared on
   entry, so the returned string must be taken before the next call. *)
let escape ?buf s =
  let buf =
    match buf with
    | Some b ->
      Buffer.clear b;
      b
    | None -> Buffer.create (String.length s + 8)
  in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape ?buf s =
  let buf =
    match buf with
    | Some b ->
      Buffer.clear b;
      b
    | None -> Buffer.create (String.length s)
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | '\\' -> Buffer.add_char buf '\\'
       | c ->
         Buffer.add_char buf '\\';
         Buffer.add_char buf c);
       i := !i + 1
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let encode ?buf payload =
  let esc = escape ?buf payload in
  Printf.sprintf "%08x %s\n" (crc32 esc) esc

(* [None] on a torn/corrupt line (missing terminator is handled by the
   caller: in_channel reading already strips it, so corruption shows up
   as a checksum mismatch or a malformed frame). *)
let decode_line ?buf line =
  match String.index_opt line ' ' with
  | Some 8 -> (
    let crc_hex = String.sub line 0 8 in
    let esc = String.sub line 9 (String.length line - 9) in
    match int_of_string_opt ("0x" ^ crc_hex) with
    | Some crc when crc = crc32 esc -> Some (unescape ?buf esc)
    | _ -> None)
  | _ -> None

(* --- group framing ----------------------------------------------------

   A commit group is ONE physical record whose payload begins with the
   reserved byte 0x01, then the member count, then each member as
   " <len>:<bytes>". The whole frame is escaped and checksummed as a
   single line, so a crash mid-group tears that line and recovery drops
   the group whole — the torn-record contract lifts unchanged to torn
   groups, on both layouts (a group occupies one sequence slot). A
   singleton group is written as a plain record, which keeps [Sync_each]
   byte-identical to the pre-group format. Plain payloads must not begin
   with the reserved byte; appends and rewrites reject them. *)

let group_mark = '\x01'
let is_reserved payload = String.length payload > 0 && payload.[0] = group_mark

let check_payload payload =
  if is_reserved payload then
    raise (Journal_error "payload begins with the reserved group-frame byte 0x01")

let frame_group members =
  let buf = Buffer.create 128 in
  Buffer.add_char buf group_mark;
  Buffer.add_string buf (string_of_int (List.length members));
  List.iter
    (fun m ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (String.length m));
      Buffer.add_char buf ':';
      Buffer.add_string buf m)
    members;
  Buffer.contents buf

(* Inverse of [frame_group]. The payload arrived checksum-verified, so
   any malformation here is file damage, not a torn write. A record that
   does not start with the mark is a plain singleton. *)
let parse_group payload =
  if not (is_reserved payload) then [ payload ]
  else begin
    let n = String.length payload in
    let pos = ref 1 in
    let bad () = raise (Journal_error "corrupt group frame") in
    let read_int () =
      let start = !pos in
      while !pos < n && payload.[!pos] >= '0' && payload.[!pos] <= '9' do
        incr pos
      done;
      if !pos = start then bad ();
      int_of_string (String.sub payload start (!pos - start))
    in
    let k = read_int () in
    let members = ref [] in
    for _ = 1 to k do
      if !pos >= n || payload.[!pos] <> ' ' then bad ();
      incr pos;
      let len = read_int () in
      if !pos >= n || payload.[!pos] <> ':' then bad ();
      incr pos;
      if !pos + len > n then bad ();
      members := String.sub payload !pos len :: !members;
      pos := !pos + len
    done;
    if !pos <> n then bad ();
    List.rev !members
  end

(* --- segment layout ---------------------------------------------------

   Unsegmented ([segments = 1]): the records live in [path] itself, one
   per line, exactly the original format — no manifest, no sequence
   framing. Segmented: a manifest [path.manifest] holds "segments N" and
   the records stripe across [path.seg0 .. path.segN-1] by global
   sequence number, each payload framed as "<seq> <payload>" inside its
   checksum so the segments merge back into append order. *)

let manifest_path jpath = jpath ^ ".manifest"
let seg_path jpath k = Printf.sprintf "%s.seg%d" jpath k

let detect_segments jpath =
  let mp = manifest_path jpath in
  if not (Sys.file_exists mp) then 1
  else begin
    let ic = open_in_bin mp in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.split_on_char ' ' (String.trim line) with
    | [ "segments"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> n
      | _ -> raise (Journal_error ("bad journal manifest " ^ mp)))
    | _ -> raise (Journal_error ("bad journal manifest " ^ mp))
  end

let write_manifest jpath segments =
  let mp = manifest_path jpath in
  let tmp = mp ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string oc (Printf.sprintf "segments %d\n" segments);
  close_out oc;
  Sys.rename tmp mp

(* Remove the manifest and every segment file (switching layouts or
   superseding stale state). *)
let remove_segment_files jpath =
  let mp = manifest_path jpath in
  if Sys.file_exists mp then Sys.remove mp;
  let dir = Filename.dirname jpath in
  let base = Filename.basename jpath ^ ".seg" in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if String.length f > String.length base && String.sub f 0 (String.length base) = base
        then
          match int_of_string_opt (String.sub f (String.length base) (String.length f - String.length base)) with
          | Some _ -> Sys.remove (Filename.concat dir f)
          | None -> ())
      (Sys.readdir dir)

let seg_paths jpath segments =
  if segments = 1 then [| jpath |] else Array.init segments (seg_path jpath)

(* Complete lines of a file: (line, terminated) with the '\n' stripped;
   a final line without its terminator is flagged — the torn tail of a
   crashed append. *)
let framed_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' contents in
    let rec complete = function
      | [] | [ "" ] -> []
      | [ torn ] -> [ (torn, false) ]
      | l :: rest -> (l, true) :: complete rest
    in
    complete lines
  end

(* Count of physical records already on disk (so a reopened handle
   continues the global sequence). Callers re-frame files before
   reopening, so every line is a whole record. *)
let count_records jpath segments =
  Array.fold_left
    (fun acc p -> acc + List.length (framed_lines p))
    0 (seg_paths jpath segments)

let open_append ?(policy = Sync_each) ?(injector = Cal_faults.Injector.none) ?(segments = 1)
    jpath =
  if segments < 1 then invalid_arg "Journal.open_append: segments must be >= 1";
  (match policy with
  | Group n when n < 1 -> invalid_arg "Journal.open_append: group size must be >= 1"
  | _ -> ());
  if segments > 1 then write_manifest jpath segments
  else if Sys.file_exists (manifest_path jpath) then
    raise (Journal_error (jpath ^ " is segmented; open with its manifest's segment count"));
  let ocs =
    Array.map
      (fun p -> open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 p)
      (seg_paths jpath segments)
  in
  { jpath; segments; policy; ocs; injector; scratch = Buffer.create 256; pending = [];
    npending = 0; next_seq = count_records jpath segments; appended = 0; flushes = 0;
    closed = false }

let path t = t.jpath
let segments t = t.segments
let policy t = t.policy

(* The simulated process image dies: any uncommitted buffer dies with
   it, the handle is marked dead and its descriptors closed. *)
let die t msg =
  t.pending <- [];
  t.npending <- 0;
  t.closed <- true;
  Array.iter close_out_noerr t.ocs;
  raise (Cal_faults.Injector.Crash msg)

(* Write one commit group as a single physical record — one escape, one
   checksum, one write, one flush. [logical] runs the injector's
   per-append crash point for each member (the members are being
   appended right now, as under [Sync_each]); a buffer drain already ran
   it at append time and only faces the flush crash point here. *)
let commit_group ?(logical = false) t members =
  match members with
  | [] -> ()
  | _ ->
    let seq = t.next_seq in
    let inner = match members with [ p ] -> p | ps -> frame_group ps in
    let framed = if t.segments = 1 then inner else Printf.sprintf "%d %s" seq inner in
    let record = encode ~buf:t.scratch framed in
    let oc = t.ocs.(seq mod t.segments) in
    t.next_seq <- seq + 1;
    let torn_crash keep ctx =
      (* The process image dies with [keep] bytes of the record on disk:
         flush the torn prefix, mark the handle dead, and raise. *)
      output_string oc (String.sub record 0 keep);
      flush oc;
      die t
        (Printf.sprintf "simulated crash during journal %s (%d/%d bytes)" ctx keep
           (String.length record))
    in
    (if logical then
       List.iter
         (fun _ ->
           t.appended <- t.appended + 1;
           match Cal_faults.Injector.on_journal_append t.injector record with
           | `Write -> ()
           | `Crash_after keep -> torn_crash keep (Printf.sprintf "append #%d" t.appended))
         members);
    (match Cal_faults.Injector.on_journal_flush t.injector record with
    | `Write ->
      output_string oc record;
      flush oc;
      t.flushes <- t.flushes + 1
    | `Crash_after keep -> torn_crash keep (Printf.sprintf "group flush #%d" (t.flushes + 1)))

let barrier t =
  if t.closed then raise (Journal_error "journal is closed");
  let members = List.rev t.pending in
  t.pending <- [];
  t.npending <- 0;
  commit_group t members

let commit = barrier

let append_batch t payloads =
  if t.closed then raise (Journal_error "journal is closed");
  List.iter check_payload payloads;
  match t.policy with
  | Sync_each -> commit_group ~logical:true t payloads
  | Group _ | Manual ->
    List.iter
      (fun p ->
        t.appended <- t.appended + 1;
        match Cal_faults.Injector.on_journal_append t.injector p with
        | `Write ->
          t.pending <- p :: t.pending;
          t.npending <- t.npending + 1
        | `Crash_after _ ->
          (* Nothing was in flight: the crash lands between group
             flushes and the uncommitted buffer is lost whole. *)
          die t
            (Printf.sprintf "simulated crash during journal append #%d (uncommitted group lost)"
               t.appended))
      payloads;
    (match t.policy with
    | Group n when t.npending >= n -> barrier t
    | _ -> ())

let append t payload = append_batch t [ payload ]
let appended t = t.appended
let flushes t = t.flushes
let pending t = t.npending

let truncate t =
  if t.closed then raise (Journal_error "journal is closed");
  (* Whatever sat in the uncommitted buffer is subsumed by the state the
     caller just persisted (snapshot), so it is discarded, not flushed:
     flushing it would replay those operations twice. *)
  t.pending <- [];
  t.npending <- 0;
  Array.iteri
    (fun i p ->
      flush t.ocs.(i);
      (* Reopen in truncate mode through a second descriptor; the append
         channel's position is reset by seeking after the truncation. *)
      let tc = open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 p in
      close_out tc;
      seek_out t.ocs.(i) 0)
    (seg_paths t.jpath t.segments);
  t.next_seq <- 0

let close t =
  if not t.closed then begin
    (* A clean close is a commit point: drain the buffer first. *)
    barrier t;
    t.closed <- true;
    Array.iter close_out_noerr t.ocs
  end

let rewrite_groups ?(segments = 1) jpath groups =
  if segments < 1 then invalid_arg "Journal.rewrite_groups: segments must be >= 1";
  List.iter
    (fun g ->
      if g = [] then invalid_arg "Journal.rewrite_groups: empty group";
      List.iter check_payload g)
    groups;
  (* Drop the other layout's files so the path holds exactly one
     representation of [groups]. *)
  remove_segment_files jpath;
  if segments > 1 && Sys.file_exists jpath then Sys.remove jpath;
  let paths = seg_paths jpath segments in
  let tmps =
    Array.map
      (fun p ->
        let tmp = p ^ ".tmp" in
        (tmp, open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp))
      paths
  in
  List.iteri
    (fun seq members ->
      let inner = match members with [ p ] -> p | ps -> frame_group ps in
      let framed = if segments = 1 then inner else Printf.sprintf "%d %s" seq inner in
      output_string (snd tmps.(seq mod segments)) (encode framed))
    groups;
  Array.iter (fun (_, oc) -> close_out oc) tmps;
  Array.iteri (fun i p -> Sys.rename (fst tmps.(i)) p) paths;
  if segments > 1 then write_manifest jpath segments

let rewrite ?segments jpath records =
  rewrite_groups ?segments jpath (List.map (fun r -> [ r ]) records)

(* Decode one segment's framed lines into (seq, payload) physical
   records — checksum, unescape, sequence split. Pure, so segments
   decode in parallel during recovery; the unescape scratch buffer is
   local to the call, one per segment, so each pool lane owns its own.
   [seq_framed] is false only for the unsegmented layout, whose records
   carry no sequence. *)
let decode_segment ~seg ~seq_framed framed =
  let n = List.length framed in
  let buf = Buffer.create 256 in
  let records = ref [] in
  List.iteri
    (fun i (line, terminated) ->
      match if terminated then decode_line ~buf line else None with
      | Some payload ->
        let record =
          if not seq_framed then (i, payload)
          else
            match String.index_opt payload ' ' with
            | Some sp -> (
              match int_of_string_opt (String.sub payload 0 sp) with
              | Some seq ->
                (seq, String.sub payload (sp + 1) (String.length payload - sp - 1))
              | None ->
                raise
                  (Journal_error
                     (Printf.sprintf "segment %d record %d: bad sequence frame" seg i)))
            | None ->
              raise
                (Journal_error (Printf.sprintf "segment %d record %d: bad sequence frame" seg i))
        in
        records := record :: !records
      | None ->
        (* A bad final line is the torn tail of a crashed append and is
           dropped; a bad line with intact successors is file damage. *)
        if i <> n - 1 then
          raise
            (Journal_error
               (Printf.sprintf "corrupt journal record %d (segment %d, not a torn tail)" i seg)))
    framed;
  List.rev !records

(* Physical records in append order (group frames still folded). *)
let read_physical ?(domains = 1) jpath =
  let segments = detect_segments jpath in
  if segments = 1 then
    List.map snd (decode_segment ~seg:0 ~seq_framed:false (framed_lines jpath))
  else begin
    let framed = Array.map framed_lines (seg_paths jpath segments) in
    let decoded =
      let pool = Cal_parallel.Pool.default () in
      let lanes = max 1 (min domains (Cal_parallel.Pool.size pool)) in
      if lanes <= 1 then
        Array.mapi (fun seg lines -> decode_segment ~seg ~seq_framed:true lines) framed
      else
        Array.concat
          (Array.to_list
             (Cal_parallel.Pool.map_chunks ~domains:lanes pool ~n:segments (fun ~lo ~hi ->
                  Array.init (hi - lo) (fun k ->
                      decode_segment ~seg:(lo + k) ~seq_framed:true framed.(lo + k)))))
    in
    let merged =
      List.sort
        (fun (s1, _) (s2, _) -> compare s1 s2)
        (List.concat (Array.to_list decoded))
    in
    (* One torn tail at the global maximum sequence is a crash; a missing
       sequence with intact successors means a segment lost data. *)
    List.iteri
      (fun i (seq, _) ->
        if seq <> i then
          raise (Journal_error (Printf.sprintf "journal gap: record %d missing" i)))
      merged;
    List.map snd merged
  end

let read_groups ?domains jpath = List.map parse_group (read_physical ?domains jpath)
let read_records ?domains jpath = List.concat (read_groups ?domains jpath)
