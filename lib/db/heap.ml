(** Heap storage: a growable chunked array of tuple slots. Row ids are
    stable; deletion leaves a tombstone.

    Slots live in fixed-size chunks behind a directory array, and every
    chunk carries a stamp. {!freeze} is O(1): it hands out a second
    handle onto the same directory and moves both handles to fresh
    stamps, so the first write through either handle copies the
    directory (pointers only) and each touched chunk copies once per
    epoch — copy-on-write at chunk granularity, never whole-heap. *)

type tuple = Value.t array

let chunk_bits = 8
let chunk_size = 1 lsl chunk_bits
let chunk_mask = chunk_size - 1

type t = {
  mutable dir : tuple option array array;  (** chunk directory *)
  mutable stamps : int array;  (** per-chunk ownership stamps *)
  mutable next : int;  (** next fresh row id *)
  mutable live : int;
  stamp_src : int ref;  (** shared stamp counter for the whole family *)
  mutable stamp : int;  (** this handle's current stamp *)
  mutable dir_owned : bool;  (** directory + stamps arrays are exclusively ours *)
}

let create () =
  {
    dir = [||];
    stamps = [||];
    next = 0;
    live = 0;
    stamp_src = ref 0;
    stamp = 0;
    dir_owned = true;
  }

let freeze t =
  incr t.stamp_src;
  let snap =
    {
      dir = t.dir;
      stamps = t.stamps;
      next = t.next;
      live = t.live;
      stamp_src = t.stamp_src;
      stamp = !(t.stamp_src);
      dir_owned = false;
    }
  in
  incr t.stamp_src;
  t.stamp <- !(t.stamp_src);
  t.dir_owned <- false;
  snap

let own_dir t =
  if not t.dir_owned then begin
    t.dir <- Array.copy t.dir;
    t.stamps <- Array.copy t.stamps;
    t.dir_owned <- true
  end

(* Make chunk [c] safe to mutate: no snapshot can reach our copy. *)
let own_chunk t c =
  own_dir t;
  if t.stamps.(c) <> t.stamp then begin
    t.dir.(c) <- Array.copy t.dir.(c);
    t.stamps.(c) <- t.stamp
  end

let grow t =
  let needed = t.next lsr chunk_bits in
  if needed >= Array.length t.dir then begin
    let len = max 4 (max (needed + 1) (2 * Array.length t.dir)) in
    let dir = Array.make len [||] in
    let stamps = Array.make len t.stamp in
    Array.blit t.dir 0 dir 0 (Array.length t.dir);
    Array.blit t.stamps 0 stamps 0 (Array.length t.stamps);
    for c = Array.length t.dir to len - 1 do
      dir.(c) <- Array.make chunk_size None
    done;
    t.dir <- dir;
    t.stamps <- stamps;
    t.dir_owned <- true
  end

let insert t tuple =
  grow t;
  let rowid = t.next in
  let c = rowid lsr chunk_bits in
  own_chunk t c;
  t.dir.(c).(rowid land chunk_mask) <- Some tuple;
  t.next <- t.next + 1;
  t.live <- t.live + 1;
  rowid

let get t rowid =
  if rowid < 0 || rowid >= t.next then None
  else t.dir.(rowid lsr chunk_bits).(rowid land chunk_mask)

let get_exn t rowid =
  match get t rowid with
  | Some tuple -> tuple
  | None -> invalid_arg (Printf.sprintf "Heap.get_exn: no row %d" rowid)

let delete t rowid =
  match get t rowid with
  | None -> false
  | Some _ ->
    let c = rowid lsr chunk_bits in
    own_chunk t c;
    t.dir.(c).(rowid land chunk_mask) <- None;
    t.live <- t.live - 1;
    true

let update t rowid tuple =
  match get t rowid with
  | None -> false
  | Some _ ->
    let c = rowid lsr chunk_bits in
    own_chunk t c;
    t.dir.(c).(rowid land chunk_mask) <- Some tuple;
    true

let count t = t.live

let high_water t = t.next

let iter_range t ~lo ~hi f =
  let hi = min hi t.next in
  let rowid = ref (max 0 lo) in
  while !rowid < hi do
    let c = !rowid lsr chunk_bits in
    let chunk = t.dir.(c) in
    let stop = min hi ((c + 1) lsl chunk_bits) in
    while !rowid < stop do
      (match chunk.(!rowid land chunk_mask) with
      | Some tuple -> f !rowid tuple
      | None -> ());
      incr rowid
    done
  done

let iter t f = iter_range t ~lo:0 ~hi:t.next f

let fold t f init =
  let acc = ref init in
  iter t (fun rowid tuple -> acc := f !acc rowid tuple);
  !acc

let rowids t = List.rev (fold t (fun acc rowid _ -> rowid :: acc) [])
