(** Heap storage: a growable array of tuple slots. Row ids are stable;
    deletion leaves a tombstone. *)

type tuple = Value.t array

type t = {
  mutable slots : tuple option array;
  mutable next : int;  (** next fresh row id *)
  mutable live : int;
}

let create () = { slots = Array.make 16 None; next = 0; live = 0 }

let grow t =
  if t.next >= Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) None in
    Array.blit t.slots 0 bigger 0 (Array.length t.slots);
    t.slots <- bigger
  end

let insert t tuple =
  grow t;
  let rowid = t.next in
  t.slots.(rowid) <- Some tuple;
  t.next <- t.next + 1;
  t.live <- t.live + 1;
  rowid

let get t rowid =
  if rowid < 0 || rowid >= t.next then None else t.slots.(rowid)

let get_exn t rowid =
  match get t rowid with
  | Some tuple -> tuple
  | None -> invalid_arg (Printf.sprintf "Heap.get_exn: no row %d" rowid)

let delete t rowid =
  match get t rowid with
  | None -> false
  | Some _ ->
    t.slots.(rowid) <- None;
    t.live <- t.live - 1;
    true

let update t rowid tuple =
  match get t rowid with
  | None -> false
  | Some _ ->
    t.slots.(rowid) <- Some tuple;
    true

let count t = t.live

let high_water t = t.next

let iter_range t ~lo ~hi f =
  let hi = min hi t.next in
  for rowid = max 0 lo to hi - 1 do
    match t.slots.(rowid) with Some tuple -> f rowid tuple | None -> ()
  done

let iter t f = iter_range t ~lo:0 ~hi:t.next f

let fold t f init =
  let acc = ref init in
  iter t (fun rowid tuple -> acc := f !acc rowid tuple);
  !acc

let rowids t = List.rev (fold t (fun acc rowid _ -> rowid :: acc) [])
