(** Query plans and the catalog-resident plan cache.

    Queries are canonicalized by hoisting literal constants into a
    parameter vector; the constant-free skeleton keys an LRU of compiled
    plans stamped with {!Catalog.version}. Any DDL bumps the version, so
    stale plans die on their next lookup (the DDL → plan-cache
    invalidation rule). Probe ranking and execution live in {!Exec}. *)

exception Plan_error of string

(** [parameterize_query q] hoists every [Const] into a parameter vector,
    returning the skeleton and the constants in slot order; [None] for
    DDL / rule definitions (not cached). *)
val parameterize_query : Qast.query -> (Qast.query * Value.t array) option

(** Resolve a [Const]-or-[Param] plan operand. @raise Plan_error *)
val probe_value : Value.t array -> Qexpr.t -> Value.t

type probe_op = Peq | Ple | Pge

type probe = {
  pcol : string;  (** unqualified column name, indexed at plan time *)
  pop : probe_op;  (** strict bounds widen to the inclusive form; the
                       residual where re-applies them *)
  parg : Qexpr.t;  (** [Const _] or [Param _] *)
}

type scan = {
  stable : Table.t;
  swhere : Qcompile.code option;  (** full residual predicate *)
  sprobes : probe list;  (** every sargable conjunct *)
  scal : string option;  (** [on <calendar>] source text *)
  svalid_ix : int option;  (** tuple offset of the valid-time column *)
  svalid_col : string option;
  spure : bool;
      (** no operator calls in the where clause — the predicate is safe
          to evaluate concurrently, so the sequential scan may be
          partitioned across domains *)
}

type assign = {
  acol : string;
  aix : int option;  (** [None] defers the unknown-column error to
                         execution, matching interpreter timing *)
  acode : Qcompile.code;
}

type action =
  | P_expr_retrieve of {
      labels : string list;
      pwhere : Qcompile.code option;
      ptargets : Qcompile.code list;
    }
  | P_scan_retrieve of {
      labels : string list;
      scan : scan;
      per_row : Qcompile.code list;
      raw_targets : (string * Qexpr.t) list;
      aggregate : bool;
      group_by : string list;
      group_codes : Qcompile.code list;
    }
  | P_delete of { scan : scan }
  | P_replace of { scan : scan; rassigns : assign list }
  | P_append of { atable : Table.t; aassigns : assign list }

type plan = {
  pversion : int;
  outer : string array;  (** interned free columns, in slot order *)
  action : action;
}

val aggregates : string list
val is_aggregate_call : Qexpr.t -> bool

(** Strip an optional "table." qualifier naming this table. *)
val own_column : Table.t -> string -> string option

(** Get-or-build the plan for [q]; the flag is [true] on a cache hit.
    @raise Plan_error on non-cacheable forms or plan-time validation
    failures (and the catalog/schema exceptions). *)
val prepare : Catalog.t -> Qast.query -> plan * Value.t array * bool

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
}

(** Cumulative counters of the catalog's plan cache. *)
val cache_stats : Catalog.t -> cache_stats
