(** A table: schema + heap + secondary B-tree indexes, kept consistent on
    every mutation. *)

type t = {
  schema : Schema.t;
  heap : Heap.t;
  mutable indexes : (string * Btree.t) list;  (** column name -> index *)
  mutable snap : t option;  (** cached {!freeze} result, dropped on mutation *)
  mutable on_mutate : unit -> unit;
      (** invalidation hook run on every mutation; {!Catalog} installs one
          so table writes also drop the catalog-level snapshot *)
}

exception No_such_column of string

val create : Schema.t -> t
val name : t -> string

(** O(1) snapshot: schema shared, heap and every index frozen
    copy-on-write (see {!Heap.freeze} / {!Btree.freeze}). The result is
    immutable-by-convention — mutating it is safe but pointless — and is
    cached until the next mutation, so repeated freezes of an unchanged
    table return the same value. Copies no row data. *)
val freeze : t -> t

(** Type-checks the tuple, appends it and updates every index.
    @raise Schema.Schema_error *)
val insert : t -> Value.t array -> int

(** Removes the row and its index entries; [false] when absent. *)
val delete : t -> int -> bool

(** Replaces the row in place, maintaining indexes; [false] when absent. *)
val update : t -> int -> Value.t array -> bool

val get : t -> int -> Value.t array option
val count : t -> int

(** Exclusive upper bound of ever-issued row ids (see
    {!Heap.high_water}); the range partitioned scans chunk over. *)
val high_water : t -> int

val iter : t -> (int -> Value.t array -> unit) -> unit

(** Visits live rows with [lo <= rowid < hi], in row-id order. *)
val iter_range : t -> lo:int -> hi:int -> (int -> Value.t array -> unit) -> unit
val fold : t -> ('a -> int -> Value.t array -> 'a) -> 'a -> 'a
val has_index : t -> string -> bool

(** Builds (and backfills) a B-tree on the column; idempotent.
    @raise No_such_column *)
val create_index : t -> string -> unit

val index : t -> string -> Btree.t option

(** Row ids with [col = key], via the index ([None] when unindexed). *)
val index_lookup : t -> string -> Value.t -> int list option

(** Row ids with [lo <= col <= hi], via the index, unordered. *)
val index_range : t -> string -> ?lo:Value.t -> ?hi:Value.t -> unit -> int list option

(** Row ids with [col] in any of the given inclusive ranges — which must
    be sorted by lower bound and pairwise disjoint — via a single
    {!Btree.range_merge} sweep. [None] when the column is unindexed. *)
val index_merge : t -> string -> (Value.t * Value.t) array -> int list option
