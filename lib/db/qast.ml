(** Abstract syntax of the Postquel-flavoured query language.

    Commands are the POSTGRES four (retrieve / append / delete / replace)
    plus DDL and rule definition. [Retrieve]'s [on_cal] is this system's
    addition: a calendar expression filtering on the table's valid-time
    column. *)

type rule_event =
  | Ev_db of Catalog.event_kind * string  (** e.g. [on append to stock] *)
  | Ev_calendar of string  (** [on calendar "<expression>"] — raw source *)

type query =
  | Create_table of { name : string; cols : (string * Schema.ty * bool) list }
      (** column name, type, valid-time flag *)
  | Create_index of { table : string; col : string }
  | Append of { table : string; assigns : (string * Qexpr.t) list }
  | Retrieve of {
      targets : (string * Qexpr.t) list;  (** label, expression *)
      from_ : string option;
      where : Qexpr.t option;
      on_cal : string option;
      group_by : string list;  (** grouping columns, lower-case *)
    }
  | Delete of { table : string; where : Qexpr.t option }
  | Replace of { table : string; assigns : (string * Qexpr.t) list; where : Qexpr.t option }
  | Define_rule of rule
  | Drop_rule of string

and rule = {
  rule_name : string;
  event : rule_event;
  condition : Qexpr.t option;
  action : query list;
}

let event_kind_to_string = function
  | Catalog.On_append -> "append"
  | Catalog.On_delete -> "delete"
  | Catalog.On_replace -> "replace"
  | Catalog.On_retrieve -> "retrieve"

let rec to_string = function
  | Create_table { name; cols } ->
    Printf.sprintf "create table %s (%s)" name
      (String.concat ", "
         (List.map
            (fun (c, ty, valid) ->
              Printf.sprintf "%s %s%s" c (Schema.ty_to_string ty)
                (if valid then " valid" else ""))
            cols))
  | Create_index { table; col } -> Printf.sprintf "create index on %s (%s)" table col
  | Append { table; assigns } ->
    Printf.sprintf "append %s (%s)" table (assigns_to_string assigns)
  | Retrieve { targets; from_; where; on_cal; group_by } ->
    Printf.sprintf "retrieve (%s)%s%s%s%s"
      (String.concat ", "
         (List.map
            (fun (label, e) ->
              (* Only explicit labels are printed; re-printing an
                 auto-derived label (the parser's `label = expr` form)
                 would not re-parse to the same target. *)
              let auto = match e with Qexpr.Col c -> c | _ -> Qexpr.to_string e in
              if label = auto then Qexpr.to_string e
              else Printf.sprintf "%s = %s" label (Qexpr.to_string e))
            targets))
      (match from_ with Some t -> " from " ^ t | None -> "")
      (match where with Some e -> " where " ^ Qexpr.to_string e | None -> "")
      (match on_cal with Some c -> Printf.sprintf " on %S" c | None -> "")
      (match group_by with [] -> "" | l -> " group by " ^ String.concat ", " l)
  | Delete { table; where } ->
    Printf.sprintf "delete %s%s" table
      (match where with Some e -> " where " ^ Qexpr.to_string e | None -> "")
  | Replace { table; assigns; where } ->
    Printf.sprintf "replace %s (%s)%s" table (assigns_to_string assigns)
      (match where with Some e -> " where " ^ Qexpr.to_string e | None -> "")
  | Define_rule r ->
    Printf.sprintf "define rule %s on %s%s do { %s }" r.rule_name
      (match r.event with
      | Ev_db (kind, table) -> Printf.sprintf "%s to %s" (event_kind_to_string kind) table
      | Ev_calendar src -> Printf.sprintf "calendar %S" src)
      (match r.condition with Some e -> " where " ^ Qexpr.to_string e | None -> "")
      (String.concat "; " (List.map to_string r.action))
  | Drop_rule name -> Printf.sprintf "drop rule %s" name

and assigns_to_string assigns =
  String.concat ", "
    (List.map (fun (c, e) -> Printf.sprintf "%s = %s" c (Qexpr.to_string e)) assigns)
