(** Scalar expressions of the query language, evaluated against a tuple
    binding. Operator calls resolve through the catalog's operator
    registry — the extensibility hook the paper's design leans on. *)

type binop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Add
  | Sub
  | Mul
  | Div

type t =
  | Col of string  (** stored lower-case, qualified names keep the dot *)
  | Const of Value.t
  | Param of int
      (** placeholder for an extracted constant; produced by plan
          canonicalization ({!Qplan.parameterize_query}), never by the
          parser *)
  | Binop of binop * t * t
  | Not of t
  | Neg of t
  | Call of string * t list

exception Eval_error of string

let binop_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"

let rec to_string = function
  | Col c -> c
  | Const v -> Value.to_string v
  | Param i -> Printf.sprintf "?%d" i
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (binop_to_string op) (to_string b)
  | Not e -> Printf.sprintf "(not %s)" (to_string e)
  | Neg e -> Printf.sprintf "(- %s)" (to_string e)
  | Call (f, args) -> Printf.sprintf "%s(%s)" f (String.concat ", " (List.map to_string args))

let numeric_pair a b =
  match (Value.as_float a, Value.as_float b) with
  | Some x, Some y -> Some (x, y)
  | _ -> None

let arith op a b =
  match (op, a, b) with
  | Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Div, Value.Int x, Value.Int y ->
    if y = 0 then raise (Eval_error "division by zero") else Value.Int (x / y)
  (* Chronon arithmetic skips the zero hole. *)
  | Add, Value.Chronon c, Value.Int n | Add, Value.Int n, Value.Chronon c ->
    Value.Chronon (Chronon.add c n)
  | Sub, Value.Chronon c, Value.Int n -> Value.Chronon (Chronon.add c (-n))
  | Sub, Value.Chronon a, Value.Chronon b -> Value.Int (Chronon.diff a b)
  | _ -> (
    match numeric_pair a b with
    | Some (x, y) -> (
      match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div -> if y = 0. then raise (Eval_error "division by zero") else Value.Float (x /. y)
      | _ -> assert false)
    | None ->
      raise
        (Eval_error
           (Printf.sprintf "cannot apply %s to %s and %s" (binop_to_string op)
              (Value.to_string a) (Value.to_string b))))

let comparison op a b =
  let c =
    match (a, b) with
    | Value.Null, _ | _, Value.Null -> None
    | _ -> (
      match Value.compare a b with
      | c -> Some c
      | exception Value.Incomparable _ -> None)
  in
  match c with
  | None -> Value.Null
  | Some c ->
    Value.Bool
      (match op with
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | _ -> assert false)

let rec eval ~(catalog : Catalog.t) ~(binding : string -> Value.t option) e =
  match e with
  | Col name -> (
    match binding name with
    | Some v -> v
    | None -> raise (Eval_error ("unbound column " ^ name)))
  | Const v -> v
  | Param i ->
    (* Parameterized skeletons only exist inside cached plans; the
       tree-walking evaluator must never see one. *)
    raise (Eval_error (Printf.sprintf "unresolved parameter ?%d" i))
  | Binop (And, a, b) -> (
    match eval ~catalog ~binding a with
    | Value.Bool false -> Value.Bool false
    | Value.Bool true -> eval ~catalog ~binding b
    | Value.Null -> Value.Null
    | v -> raise (Eval_error ("non-boolean operand of and: " ^ Value.to_string v)))
  | Binop (Or, a, b) -> (
    match eval ~catalog ~binding a with
    | Value.Bool true -> Value.Bool true
    | Value.Bool false -> eval ~catalog ~binding b
    | Value.Null -> Value.Null
    | v -> raise (Eval_error ("non-boolean operand of or: " ^ Value.to_string v)))
  | Binop (Eq, a, b) ->
    let va = eval ~catalog ~binding a and vb = eval ~catalog ~binding b in
    if va = Value.Null || vb = Value.Null then Value.Null
    else Value.Bool (value_eq va vb)
  | Binop (Ne, a, b) ->
    let va = eval ~catalog ~binding a and vb = eval ~catalog ~binding b in
    if va = Value.Null || vb = Value.Null then Value.Null
    else Value.Bool (not (value_eq va vb))
  | Binop (((Lt | Le | Gt | Ge) as op), a, b) ->
    comparison op (eval ~catalog ~binding a) (eval ~catalog ~binding b)
  | Binop (((Add | Sub | Mul | Div) as op), a, b) ->
    arith op (eval ~catalog ~binding a) (eval ~catalog ~binding b)
  | Not e -> (
    match eval ~catalog ~binding e with
    | Value.Bool b -> Value.Bool (not b)
    | Value.Null -> Value.Null
    | v -> raise (Eval_error ("non-boolean operand of not: " ^ Value.to_string v)))
  | Neg e -> (
    match eval ~catalog ~binding e with
    | Value.Int i -> Value.Int (-i)
    | Value.Float f -> Value.Float (-.f)
    | v -> raise (Eval_error ("cannot negate " ^ Value.to_string v)))
  | Call (f, args) ->
    let op = Catalog.operator catalog f in
    let vals = List.map (eval ~catalog ~binding) args in
    if op.Catalog.arity >= 0 && List.length vals <> op.Catalog.arity then
      raise
        (Eval_error
           (Printf.sprintf "operator %s expects %d arguments, got %d" f op.Catalog.arity
              (List.length vals)));
    op.Catalog.fn vals

and value_eq a b =
  (* Numeric equality coerces Int/Float; everything else is Value.equal. *)
  match numeric_pair a b with Some (x, y) -> x = y | None -> Value.equal a b

(* Conjunct list of an and-tree, in left-to-right order. Flattens nested
   [And] spines of any shape (left-, right- or mixed-associated) with an
   accumulator, so a long spine costs O(n) rather than O(n^2) appends. *)
let conjuncts e =
  let rec go acc = function
    | Binop (And, a, b) -> go (go acc b) a
    | e -> e :: acc
  in
  go [] e

(* Columns mentioned, for binding checks. *)
let rec columns = function
  | Col c -> [ c ]
  | Const _ | Param _ -> []
  | Binop (_, a, b) -> columns a @ columns b
  | Not e | Neg e -> columns e
  | Call (_, args) -> List.concat_map columns args
