(** A table: schema + heap + secondary B-tree indexes, kept consistent on
    every mutation. *)

type t = {
  schema : Schema.t;
  heap : Heap.t;
  mutable indexes : (string * Btree.t) list;  (** column name -> index *)
  mutable snap : t option;  (** cached {!freeze} result, dropped on mutation *)
  mutable on_mutate : unit -> unit;  (** catalog-installed invalidation hook *)
}

exception No_such_column of string

let create schema =
  { schema; heap = Heap.create (); indexes = []; snap = None; on_mutate = ignore }

let name t = t.schema.Schema.table

(* Every write funnels through here: the cached snapshot (if any) no
   longer reflects this table, and the owning catalog must re-freeze. *)
let mutated t =
  if t.snap != None then t.snap <- None;
  t.on_mutate ()

let freeze t =
  match t.snap with
  | Some s -> s
  | None ->
    let s =
      {
        schema = t.schema;
        heap = Heap.freeze t.heap;
        indexes = List.map (fun (col, idx) -> (col, Btree.freeze idx)) t.indexes;
        snap = None;
        on_mutate = ignore;
      }
    in
    (* A snapshot is its own snapshot: freezing it again is the identity. *)
    s.snap <- Some s;
    t.snap <- Some s;
    s

let key_of t col tuple = tuple.(Schema.column_index_exn t.schema col)

let index_insert t rowid tuple =
  List.iter (fun (col, idx) -> Btree.insert idx (key_of t col tuple) rowid) t.indexes

let index_remove t rowid tuple =
  List.iter
    (fun (col, idx) -> ignore (Btree.remove idx (key_of t col tuple) rowid))
    t.indexes

let insert t tuple =
  Schema.check_tuple t.schema tuple;
  mutated t;
  let rowid = Heap.insert t.heap tuple in
  index_insert t rowid tuple;
  rowid

let delete t rowid =
  match Heap.get t.heap rowid with
  | None -> false
  | Some tuple ->
    mutated t;
    index_remove t rowid tuple;
    ignore (Heap.delete t.heap rowid);
    true

let update t rowid tuple =
  Schema.check_tuple t.schema tuple;
  match Heap.get t.heap rowid with
  | None -> false
  | Some old ->
    mutated t;
    index_remove t rowid old;
    ignore (Heap.update t.heap rowid tuple);
    index_insert t rowid tuple;
    true

let get t rowid = Heap.get t.heap rowid
let count t = Heap.count t.heap
let high_water t = Heap.high_water t.heap
let iter t f = Heap.iter t.heap f
let iter_range t ~lo ~hi f = Heap.iter_range t.heap ~lo ~hi f
let fold t f init = Heap.fold t.heap f init

let has_index t col = List.mem_assoc col t.indexes

let create_index t col =
  if Schema.column_index t.schema col = None then raise (No_such_column col);
  if not (has_index t col) then begin
    mutated t;
    let idx = Btree.create () in
    Heap.iter t.heap (fun rowid tuple -> Btree.insert idx (key_of t col tuple) rowid);
    t.indexes <- (col, idx) :: t.indexes
  end

let index t col = List.assoc_opt col t.indexes

(** Row ids with [col = key], via the index. *)
let index_lookup t col key =
  match index t col with
  | None -> None
  | Some idx -> Some (Btree.find idx key)

(** Row ids with [lo <= col <= hi], via the index, unordered. *)
let index_range t col ?lo ?hi () =
  match index t col with
  | None -> None
  | Some idx ->
    let acc = ref [] in
    Btree.range idx ?lo ?hi (fun _ rowids -> acc := List.rev_append rowids !acc);
    Some !acc

(** Row ids with [col] in any of the sorted disjoint inclusive ranges,
    via one merged index sweep, unordered. *)
let index_merge t col ivals =
  match index t col with
  | None -> None
  | Some idx ->
    let acc = ref [] in
    Btree.range_merge idx ivals (fun _ rowids -> acc := List.rev_append rowids !acc);
    Some !acc
