(** The database catalog: tables, user-declared operators (the extensible
    DBMS's operator registry), event hooks for the rule system, and the
    calendar resolver installed by the session layer.

    The operator registry is how the calendar system integrates without
    query-language changes (section 5): procedures like
    [calendar_contains] are declared here and then usable in any [where]
    clause. *)

type operator = {
  op_name : string;
  arity : int;  (** negative: variadic *)
  fn : Value.t list -> Value.t;
}

type event_kind =
  | On_append
  | On_delete
  | On_replace
  | On_retrieve

type event = {
  kind : event_kind;
  table : string;
  tuple : Value.t array option;  (** the NEW/CURRENT tuple when applicable *)
}

(** Extension point for the query-plan cache: {!Qplan} defines the one
    constructor; the catalog only stores the box. *)
type cache_box = ..

type t = {
  tables : (string, Table.t) Hashtbl.t;
  operators : (string, operator) Hashtbl.t;
  mutable hooks : (event -> unit) list;
  mutable calendar_resolver : (string -> Interval_set.t) option;
      (** resolves a calendar expression source to its day chronons *)
  mutable version : int;
      (** bumped on every DDL change; stale cached plans are detected by
          comparing their stamp against this *)
  plan_cache : cache_box option ref;
      (** shared by reference between a live catalog and its snapshots *)
  mutable epoch : int;  (** publication counter, bumped per fresh {!freeze} *)
  mutable snap : t option;  (** cached {!freeze} result *)
}

exception No_such_table of string
exception No_such_operator of string
exception Table_exists of string

val create : unit -> t

(** O(1)-amortized snapshot of the whole catalog: every table frozen
    copy-on-write ({!Table.freeze}), operators copied, [hooks = []] (a
    retrieve against a snapshot fires no event rules), the calendar
    resolver and plan-cache box shared with the live catalog, and a fresh
    {!epoch} stamp. The result is cached until the next table write or
    DDL, so repeated freezes of an idle catalog return the same snapshot.
    Copies no row data. *)
val freeze : t -> t

(** Current publication epoch: the stamp carried by the most recent
    fresh snapshot (0 before any freeze). *)
val epoch : t -> int

(** @raise Table_exists *)
val create_table : t -> Schema.t -> Table.t

val drop_table : t -> string -> unit

(** [create_index t table col] builds the index and bumps the catalog
    version so cached plans replan against the new access path.
    @raise No_such_table @raise Table.No_such_column *)
val create_index : t -> string -> string -> unit

(** Invalidate cached plans (called automatically by the DDL entry points
    above). *)
val bump_version : t -> unit

(** Case-insensitive lookup. @raise No_such_table *)
val table : t -> string -> Table.t

val table_opt : t -> string -> Table.t option
val table_names : t -> string list
val register_operator : t -> name:string -> arity:int -> (Value.t list -> Value.t) -> unit

(** @raise No_such_operator *)
val operator : t -> string -> operator

val operator_opt : t -> string -> operator option

(** Adds an executor event subscriber (the rule manager). *)
val add_hook : t -> (event -> unit) -> unit

(** Delivers an event to every hook. *)
val fire : t -> event -> unit

val set_calendar_resolver : t -> (string -> Interval_set.t) -> unit
