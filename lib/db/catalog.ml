(** The database catalog: tables, user-declared operators (the extensible
    DBMS's operator registry), event hooks for the rule system, and the
    calendar resolver installed by the session layer.

    The operator registry is how the calendar system integrates without
    query-language changes (section 5): procedures like
    [calendar_contains] are declared here and then usable in any [where]
    clause. *)

type operator = {
  op_name : string;
  arity : int;
  fn : Value.t list -> Value.t;
}

type event_kind =
  | On_append
  | On_delete
  | On_replace
  | On_retrieve

type event = {
  kind : event_kind;
  table : string;
  tuple : Value.t array option;  (** the NEW/CURRENT tuple when applicable *)
}

(* Extension point for the plan cache: Qplan lives above this module, so
   the catalog stores its cache behind an open variant it never inspects. *)
type cache_box = ..

type t = {
  tables : (string, Table.t) Hashtbl.t;
  operators : (string, operator) Hashtbl.t;
  mutable hooks : (event -> unit) list;
  (* Resolves a calendar expression source text to the day chronons it
     denotes; installed by the session layer (keeps this library
     independent of the language implementation). *)
  mutable calendar_resolver : (string -> Interval_set.t) option;
  mutable version : int;
      (* bumped on every DDL change (create/drop table, create index,
         operator registration); cached plans are stamped with the version
         they were built under and discarded on mismatch *)
  plan_cache : cache_box option ref;
      (* shared by reference with every snapshot, so plans prepared
         against a frozen catalog land in the same LRU as live ones *)
  mutable epoch : int;
      (* publication counter: bumped each time [freeze] builds a fresh
         snapshot; the snapshot carries the epoch it was built at *)
  mutable snap : t option;
      (* cached [freeze] result, dropped on any table or DDL mutation *)
}

exception No_such_table of string
exception No_such_operator of string
exception Table_exists of string

let create () =
  let t =
    {
      tables = Hashtbl.create 16;
      operators = Hashtbl.create 16;
      hooks = [];
      calendar_resolver = None;
      version = 0;
      plan_cache = ref None;
      epoch = 0;
      snap = None;
    }
  in
  (* Built-in value constructors (used by dump/load literals). *)
  Hashtbl.replace t.operators "interval"
    {
      op_name = "interval";
      arity = 2;
      fn =
        (function
        | [ Value.Chronon a; Value.Chronon b ] | [ Value.Int a; Value.Int b ] ->
          Value.Interval (Interval.make a b)
        | _ -> Value.Null);
    };
  Hashtbl.replace t.operators "array"
    { op_name = "array"; arity = -1; fn = (fun vs -> Value.Array (Array.of_list vs)) };
  t

let norm = String.lowercase_ascii

let bump_version t =
  t.version <- t.version + 1;
  t.snap <- None

(* O(1)-amortized snapshot: frozen tables (each O(1) copy-on-write), a
   copied operator registry, no hooks — retrieves against a snapshot fire
   no event rules — and the same resolver and plan-cache box as the live
   catalog. Cached until the next mutation, so freezing an idle catalog
   repeatedly returns the same value at the same epoch. *)
let freeze t =
  match t.snap with
  | Some s -> s
  | None ->
    t.epoch <- t.epoch + 1;
    let s =
      {
        tables = Hashtbl.create (max 16 (Hashtbl.length t.tables));
        operators = Hashtbl.copy t.operators;
        hooks = [];
        calendar_resolver = t.calendar_resolver;
        version = t.version;
        plan_cache = t.plan_cache;
        epoch = t.epoch;
        snap = None;
      }
    in
    Hashtbl.iter (fun key tbl -> Hashtbl.replace s.tables key (Table.freeze tbl)) t.tables;
    s.snap <- Some s;
    t.snap <- Some s;
    s

let epoch t = t.epoch

let create_table t schema =
  let key = norm schema.Schema.table in
  if Hashtbl.mem t.tables key then raise (Table_exists schema.Schema.table);
  let table = Table.create schema in
  (* Any write through the table must drop the catalog-level snapshot. *)
  table.Table.on_mutate <- (fun () -> t.snap <- None);
  Hashtbl.replace t.tables key table;
  bump_version t;
  table

let drop_table t name =
  Hashtbl.remove t.tables (norm name);
  bump_version t

let table t name =
  match Hashtbl.find_opt t.tables (norm name) with
  | Some tbl -> tbl
  | None -> raise (No_such_table name)

let table_opt t name = Hashtbl.find_opt t.tables (norm name)

let table_names t =
  List.sort String.compare (Hashtbl.fold (fun _ tbl acc -> Table.name tbl :: acc) t.tables [])

let create_index t table_name col =
  Table.create_index (table t table_name) col;
  bump_version t

let register_operator t ~name ~arity fn =
  Hashtbl.replace t.operators (norm name) { op_name = name; arity; fn };
  bump_version t

let operator t name =
  match Hashtbl.find_opt t.operators (norm name) with
  | Some op -> op
  | None -> raise (No_such_operator name)

let operator_opt t name = Hashtbl.find_opt t.operators (norm name)

let add_hook t f = t.hooks <- f :: t.hooks
let fire t event = List.iter (fun f -> f event) t.hooks

let set_calendar_resolver t f =
  t.calendar_resolver <- Some f;
  t.snap <- None
