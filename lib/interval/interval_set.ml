(* Sorted-array-backed interval sets.

   [arr] is sorted by Interval.compare with no exact duplicates. [max_hi]
   is the prefix maximum of the members' high endpoints: because members
   may overlap (weeks straddling month boundaries), an early member with a
   large [hi] can cover a late chronon, so plain binary search on [lo] is
   not enough for containment — but the prefix maximum is monotone, which
   makes [contains_chronon], [restrict] and [clip] binary-searchable.

   The coalesced pointwise form (disjoint, non-adjacent segments in
   0-based offset space) is computed at most once per set and cached in a
   mutable field; the set itself is immutable. All set algebra is a
   single merge pass over the already-sorted inputs. *)

type t = {
  arr : Interval.t array;
  max_hi : Chronon.t array;  (* prefix maximum of hi *)
  mutable coalesced : (int * int) array option;  (* offset space, lazy *)
}

let empty = { arr = [||]; max_hi = [||]; coalesced = Some [||] }

(* [arr] must be sorted by Interval.compare with no duplicates. *)
let of_sorted_array_unsafe arr =
  let n = Array.length arr in
  if n = 0 then empty
  else begin
    let max_hi = Array.make n Chronon.minus_infinity in
    let running = ref Chronon.minus_infinity in
    for i = 0 to n - 1 do
      running := Chronon.max !running (Interval.hi arr.(i));
      max_hi.(i) <- !running
    done;
    { arr; max_hi; coalesced = None }
  end

let is_empty t = Array.length t.arr = 0

let of_list l =
  of_sorted_array_unsafe (Array.of_list (List.sort_uniq Interval.compare l))

let of_pairs l = of_list (List.map (fun (lo, hi) -> Interval.make lo hi) l)
let to_list t = Array.to_list t.arr
let to_array t = Array.copy t.arr
let to_seq t = Array.to_seq t.arr
let to_pairs t = List.map (fun i -> (Interval.lo i, Interval.hi i)) (to_list t)
let cardinal t = Array.length t.arr
let singleton i = of_sorted_array_unsafe [| i |]

(* --- binary searches ------------------------------------------------ *)

(* First index with lo >= v (cardinal when none). *)
let lower_bound_lo t v =
  let lo = ref 0 and hi = ref (Array.length t.arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare (Interval.lo t.arr.(mid)) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with lo > v (cardinal when none). *)
let upper_bound_lo t v =
  let lo = ref 0 and hi = ref (Array.length t.arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare (Interval.lo t.arr.(mid)) v <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index whose prefix-max hi reaches v (cardinal when none). *)
let first_reaching t v =
  let lo = ref 0 and hi = ref (Array.length t.arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare t.max_hi.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let mem i t =
  let lo = ref 0 and hi = ref (Array.length t.arr) and found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Interval.compare i t.arr.(mid) in
    if c = 0 then found := true else if c > 0 then lo := mid + 1 else hi := mid
  done;
  !found

let contains_chronon t c =
  (* Members with lo <= c are exactly the indices below [k]; one of them
     contains c iff the largest hi among them reaches c. *)
  let k = upper_bound_lo t c in
  k > 0 && Chronon.compare t.max_hi.(k - 1) c >= 0

let nth t i =
  if i < 1 || i > Array.length t.arr then raise Not_found else t.arr.(i - 1)

let nth_from_end t i =
  let n = Array.length t.arr in
  if i < 1 || i > n then raise Not_found else t.arr.(n - i)

let first t = if is_empty t then None else Some t.arr.(0)

let last t =
  let n = Array.length t.arr in
  if n = 0 then None else Some t.arr.(n - 1)

let span t =
  let n = Array.length t.arr in
  if n = 0 then None
  else Some (Interval.make (Interval.lo t.arr.(0)) t.max_hi.(n - 1))

let first_start_geq t c =
  let k = lower_bound_lo t c in
  if k >= Array.length t.arr then None else Some t.arr.(k)

let filter p t =
  (* A subsequence of a sorted unique array stays sorted and unique. *)
  let kept = Array.of_seq (Seq.filter p (Array.to_seq t.arr)) in
  if Array.length kept = Array.length t.arr then t else of_sorted_array_unsafe kept

let map f t = of_list (List.map f (to_list t))
let iter f t = Array.iter f t.arr
let fold f init t = Array.fold_left f init t.arr

let add i t =
  if mem i t then t
  else begin
    let n = Array.length t.arr in
    (* Insertion point: first index whose member sorts after [i]. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Interval.compare t.arr.(mid) i < 0 then lo := mid + 1 else hi := mid
    done;
    let k = !lo in
    let arr = Array.make (n + 1) i in
    Array.blit t.arr 0 arr 0 k;
    Array.blit t.arr k arr (k + 1) (n - k);
    of_sorted_array_unsafe arr
  end

(* --- element-wise algebra: single-pass merges ----------------------- *)

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let na = Array.length a.arr and nb = Array.length b.arr in
    let out = Array.make (na + nb) a.arr.(0) in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    let put x =
      out.(!k) <- x;
      incr k
    in
    while !i < na && !j < nb do
      let c = Interval.compare a.arr.(!i) b.arr.(!j) in
      if c < 0 then (put a.arr.(!i); incr i)
      else if c > 0 then (put b.arr.(!j); incr j)
      else (put a.arr.(!i); incr i; incr j)
    done;
    while !i < na do put a.arr.(!i); incr i done;
    while !j < nb do put b.arr.(!j); incr j done;
    if !k = na + nb then of_sorted_array_unsafe out
    else of_sorted_array_unsafe (Array.sub out 0 !k)
  end

(* Merge walk keeping members of [a] according to whether they also occur
   in [b] ([keep_found] selects inter vs diff). *)
let merge_select keep_found a b =
  if is_empty a then a
  else if is_empty b then (if keep_found then empty else a)
  else begin
    let na = Array.length a.arr and nb = Array.length b.arr in
    let out = Array.make na a.arr.(0) in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na do
      let x = a.arr.(!i) in
      while !j < nb && Interval.compare b.arr.(!j) x < 0 do incr j done;
      let found = !j < nb && Interval.compare b.arr.(!j) x = 0 in
      if found = keep_found then begin
        out.(!k) <- x;
        incr k
      end;
      incr i
    done;
    if !k = na then a else of_sorted_array_unsafe (Array.sub out 0 !k)
  end

let diff a b = merge_select false a b
let inter a b = merge_select true a b

let equal a b =
  let n = Array.length a.arr in
  n = Array.length b.arr
  &&
  let rec go i = i >= n || (Interval.equal a.arr.(i) b.arr.(i) && go (i + 1)) in
  go 0

(* --- pointwise (chronon-set) algebra -------------------------------- *)

(* The coalesced form: members are already sorted by (lo, hi), so merging
   overlapping or adjacent members is one forward pass in offset space
   (offsets are hole-free: chronon 0 does not exist, offsets do). *)
let coalesced t =
  match t.coalesced with
  | Some c -> c
  | None ->
    let n = Array.length t.arr in
    let buf = Array.make n (0, 0) in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let lo = Chronon.to_offset (Interval.lo t.arr.(i))
      and hi = Chronon.to_offset (Interval.hi t.arr.(i)) in
      if !k > 0 then begin
        let plo, phi = buf.(!k - 1) in
        if lo <= phi + 1 then buf.(!k - 1) <- (plo, max phi hi)
        else begin
          buf.(!k) <- (lo, hi);
          incr k
        end
      end
      else begin
        buf.(!k) <- (lo, hi);
        incr k
      end
    done;
    let c = if !k = n then buf else Array.sub buf 0 !k in
    t.coalesced <- Some c;
    c

(* Disjoint sorted non-adjacent segments are sorted and unique as
   intervals, and are their own coalesced form. *)
let of_coalesced_offsets c =
  if Array.length c = 0 then empty
  else begin
    let t =
      of_sorted_array_unsafe
        (Array.map
           (fun (lo, hi) -> Interval.make (Chronon.of_offset lo) (Chronon.of_offset hi))
           c)
    in
    t.coalesced <- Some c;
    t
  end

let coalesce t = of_coalesced_offsets (coalesced t)

let pointwise_union a b =
  let ca = coalesced a and cb = coalesced b in
  let na = Array.length ca and nb = Array.length cb in
  if na = 0 then coalesce b
  else if nb = 0 then coalesce a
  else begin
    let out = Array.make (na + nb) (0, 0) in
    let k = ref 0 in
    let push ((lo, hi) as seg) =
      if !k > 0 then begin
        let plo, phi = out.(!k - 1) in
        if lo <= phi + 1 then out.(!k - 1) <- (plo, max phi hi)
        else begin
          out.(!k) <- seg;
          incr k
        end
      end
      else begin
        out.(!k) <- seg;
        incr k
      end
    in
    let i = ref 0 and j = ref 0 in
    while !i < na || !j < nb do
      if !j >= nb || (!i < na && fst ca.(!i) <= fst cb.(!j)) then begin
        push ca.(!i);
        incr i
      end
      else begin
        push cb.(!j);
        incr j
      end
    done;
    of_coalesced_offsets (Array.sub out 0 !k)
  end

let pointwise_inter a b =
  let ca = coalesced a and cb = coalesced b in
  let na = Array.length ca and nb = Array.length cb in
  let buf = ref [] and count = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let alo, ahi = ca.(!i) and blo, bhi = cb.(!j) in
    let lo = max alo blo and hi = min ahi bhi in
    if lo <= hi then begin
      buf := (lo, hi) :: !buf;
      incr count
    end;
    if ahi <= bhi then incr i else incr j
  done;
  let out = Array.make !count (0, 0) in
  List.iteri (fun idx seg -> out.(!count - 1 - idx) <- seg) !buf;
  of_coalesced_offsets out

let pointwise_diff a b =
  let ca = coalesced a and cb = coalesced b in
  let na = Array.length ca and nb = Array.length cb in
  let buf = ref [] and count = ref 0 in
  let emit seg =
    buf := seg :: !buf;
    incr count
  in
  let j = ref 0 in
  for i = 0 to na - 1 do
    let alo, ahi = ca.(i) in
    let cur = ref alo in
    let continue = ref true in
    while !continue do
      (* b-segments ending before [cur] cannot affect this or any later
         a-segment ([cur] only grows, a-segments are sorted). *)
      while !j < nb && snd cb.(!j) < !cur do incr j done;
      if !j >= nb || fst cb.(!j) > ahi then begin
        if !cur <= ahi then emit (!cur, ahi);
        continue := false
      end
      else begin
        let blo, bhi = cb.(!j) in
        if blo > !cur then emit (!cur, blo - 1);
        if bhi >= ahi then continue := false else cur := bhi + 1
      end
    done
  done;
  let out = Array.make !count (0, 0) in
  List.iteri (fun idx seg -> out.(!count - 1 - idx) <- seg) !buf;
  of_coalesced_offsets out

(* --- windowing ------------------------------------------------------ *)

(* The only members that can overlap [w] lie in the index range
   [first_reaching w.lo, upper_bound_lo w.hi); both edges are binary
   searches, the slice is then tested exactly. *)
let overlap_slice t w = (first_reaching t (Interval.lo w), upper_bound_lo t (Interval.hi w) - 1)

let restrict t w =
  let start, stop = overlap_slice t w in
  if start > stop then empty
  else begin
    let buf = ref [] in
    for i = stop downto start do
      if Interval.overlaps t.arr.(i) w then buf := t.arr.(i) :: !buf
    done;
    of_sorted_array_unsafe (Array.of_list !buf)
  end

let clip t w =
  let start, stop = overlap_slice t w in
  if start > stop then empty
  else begin
    (* Clipping can merge distinct members into duplicates and, when a
       long member is cut, reorder ties — re-sort the (small) slice. *)
    let buf = ref [] in
    for i = stop downto start do
      match Interval.intersect t.arr.(i) w with
      | Some iv -> buf := iv :: !buf
      | None -> ()
    done;
    of_list !buf
  end

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Interval.pp)
    (to_list t)

let to_string t = Format.asprintf "%a" pp t
