type t = Interval.t list
(* Invariant: sorted by Interval.compare, no exact duplicates. *)

let empty = []
let is_empty t = t = []

let of_list l =
  List.sort_uniq Interval.compare l

let of_pairs l = of_list (List.map (fun (lo, hi) -> Interval.make lo hi) l)
let to_list t = t
let to_pairs t = List.map (fun i -> (Interval.lo i, Interval.hi i)) t
let cardinal = List.length
let singleton i = [ i ]

let rec add i = function
  | [] -> [ i ]
  | x :: rest as l ->
    let c = Interval.compare i x in
    if c < 0 then i :: l
    else if c = 0 then l
    else x :: add i rest

let mem i t = List.exists (Interval.equal i) t
let contains_chronon t c = List.exists (fun i -> Interval.contains i c) t

let nth t i =
  if i < 1 then raise Not_found
  else match List.nth_opt t (i - 1) with Some x -> x | None -> raise Not_found

let nth_from_end t i = nth (List.rev t) i
let first = function [] -> None | x :: _ -> Some x
let last t = match List.rev t with [] -> None | x :: _ -> Some x

let span t =
  match (first t, List.fold_left (fun acc i -> Chronon.max acc (Interval.hi i))
                    Chronon.minus_infinity t)
  with
  | None, _ -> None
  | Some f, hi -> Some (Interval.make (Interval.lo f) hi)

let filter = List.filter
let map f t = of_list (List.map f t)
let iter = List.iter
let fold f init t = List.fold_left f init t

let union a b = of_list (a @ b)
let diff a b = List.filter (fun i -> not (mem i b)) a
let inter a b = List.filter (fun i -> mem i b) a
let equal a b = List.length a = List.length b && List.for_all2 Interval.equal a b

(* Pointwise operations work in 0-based offset space where the timeline has
   no hole, then map back to chronons. *)
let to_offsets t =
  List.map
    (fun i -> (Chronon.to_offset (Interval.lo i), Chronon.to_offset (Interval.hi i)))
    t

let of_offsets l =
  List.map (fun (lo, hi) -> Interval.make (Chronon.of_offset lo) (Chronon.of_offset hi)) l

let coalesce_offsets l =
  let sorted = List.sort compare l in
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
      match acc with
      | (plo, phi) :: acc' when lo <= phi + 1 -> go ((plo, max phi hi) :: acc') rest
      | _ -> go ((lo, hi) :: acc) rest)
  in
  go [] sorted

let coalesce t = of_offsets (coalesce_offsets (to_offsets t))
let pointwise_union a b = of_offsets (coalesce_offsets (to_offsets a @ to_offsets b))

let pointwise_inter a b =
  let bs = coalesce_offsets (to_offsets b) in
  let inter_one (lo, hi) =
    List.filter_map
      (fun (blo, bhi) ->
        let l = max lo blo and h = min hi bhi in
        if l <= h then Some (l, h) else None)
      bs
  in
  of_offsets
    (coalesce_offsets (List.concat_map inter_one (coalesce_offsets (to_offsets a))))

let pointwise_diff a b =
  let bs = coalesce_offsets (to_offsets b) in
  let diff_one seg =
    (* Subtract every b-segment from [seg], left to right. *)
    let rec go (lo, hi) bs acc =
      match bs with
      | [] -> (lo, hi) :: acc
      | (blo, bhi) :: rest ->
        if bhi < lo then go (lo, hi) rest acc
        else if blo > hi then (lo, hi) :: acc
        else
          let acc = if blo > lo then (lo, blo - 1) :: acc else acc in
          if bhi < hi then go (bhi + 1, hi) rest acc else acc
    in
    go seg bs []
  in
  of_offsets
    (coalesce_offsets
       (List.concat_map diff_one (coalesce_offsets (to_offsets a))))

let clip t w =
  of_list (List.filter_map (fun i -> Interval.intersect i w) t)

let restrict t w = List.filter (fun i -> Interval.overlaps i w) t

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Interval.pp)
    t

let to_string t = Format.asprintf "%a" pp t
