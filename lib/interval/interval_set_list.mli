(** The original linked-list interval-set implementation, kept verbatim as
    the differential-testing oracle for the array-backed {!Interval_set}
    (and as the "before" side of benchmark E15).

    Every operation here is the reference semantics: [nth] is [List.nth],
    [mem]/[contains_chronon] are linear scans, [diff]/[inter] are O(n·m),
    and [union] re-sorts the concatenation. Do not use on hot paths. *)

type t

val empty : t
val is_empty : t -> bool
val of_list : Interval.t list -> t
val of_pairs : (int * int) list -> t
val to_list : t -> Interval.t list
val to_pairs : t -> (int * int) list
val cardinal : t -> int
val singleton : Interval.t -> t
val add : Interval.t -> t -> t
val mem : Interval.t -> t -> bool
val contains_chronon : t -> Chronon.t -> bool
val nth : t -> int -> Interval.t
val nth_from_end : t -> int -> Interval.t
val first : t -> Interval.t option
val last : t -> Interval.t option
val span : t -> Interval.t option
val filter : (Interval.t -> bool) -> t -> t
val map : (Interval.t -> Interval.t) -> t -> t
val iter : (Interval.t -> unit) -> t -> unit
val fold : ('a -> Interval.t -> 'a) -> 'a -> t -> 'a
val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool
val coalesce : t -> t
val pointwise_union : t -> t -> t
val pointwise_inter : t -> t -> t
val pointwise_diff : t -> t -> t
val clip : t -> Interval.t -> t
val restrict : t -> Interval.t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
