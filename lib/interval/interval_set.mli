(** Ordered collections of intervals — the paper's order-1 calendars.

    The collection is kept sorted by {!Interval.compare} and free of exact
    duplicates, but member intervals may overlap (e.g. weeks overlapping
    month boundaries).

    The representation is a sorted array plus a prefix maximum of high
    endpoints: [cardinal], [nth], [nth_from_end], [first], [last] and
    [span] are O(1); [mem], [contains_chronon] and the windowing
    operations are O(log n) binary searches; the set algebra is a single
    O(n+m) merge pass. The coalesced pointwise form is computed at most
    once per set and cached, so repeated pointwise operations do not
    re-coalesce. The old linked-list implementation survives as
    {!Interval_set_list}, the property-test oracle.

    Two algebras coexist, as required by the paper:
    {ul
    {- {e element-wise} ([union], [diff], [inter]) treat the collection as a
       set of intervals compared by equality. These back the script-level
       [+] and [-] operators (EMP-DAYS example, section 3.3).}
    {- {e pointwise} ([pointwise_union], ...) treat the collection as a set
       of chronons and return coalesced disjoint intervals.}} *)

type t

val empty : t
val is_empty : t -> bool

(** [of_list l] sorts and deduplicates. *)
val of_list : Interval.t list -> t

(** [of_pairs l] builds from raw endpoint pairs. *)
val of_pairs : (int * int) list -> t

val to_list : t -> Interval.t list

(** [to_array t] is a fresh array of the members in ascending
    {!Interval.compare} order. *)
val to_array : t -> Interval.t array

(** [to_seq t] enumerates the members lazily, in ascending order. *)
val to_seq : t -> Interval.t Seq.t

val to_pairs : t -> (int * int) list
val cardinal : t -> int
val singleton : Interval.t -> t
val add : Interval.t -> t -> t

(** [mem i t] is interval-equality membership. *)
val mem : Interval.t -> t -> bool

val contains_chronon : t -> Chronon.t -> bool

(** [nth t i] is the [i]-th interval, 1-based. @raise Not_found if out of
    range. [nth_from_end t 1] is the last interval. *)
val nth : t -> int -> Interval.t

val nth_from_end : t -> int -> Interval.t
val first : t -> Interval.t option
val last : t -> Interval.t option

(** [first_start_geq t c] is the first member whose low endpoint is at or
    after [c] — the "first interval ≥ t" probe the streaming generation
    path bottoms out in. O(log n). *)
val first_start_geq : t -> Chronon.t -> Interval.t option

(** Smallest interval covering the whole collection. *)
val span : t -> Interval.t option

val filter : (Interval.t -> bool) -> t -> t
val map : (Interval.t -> Interval.t) -> t -> t
val iter : (Interval.t -> unit) -> t -> unit
val fold : ('a -> Interval.t -> 'a) -> 'a -> t -> 'a

(** {2 Element-wise algebra} *)

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool

(** {2 Pointwise (chronon-set) algebra} — results are coalesced. *)

(** [coalesce t] merges overlapping or adjacent intervals. *)
val coalesce : t -> t

val pointwise_union : t -> t -> t
val pointwise_inter : t -> t -> t
val pointwise_diff : t -> t -> t

(** {2 Windowing} *)

(** [clip t w] keeps the parts of each member inside window [w]
    (members overlapping [w] are cut to [w]). *)
val clip : t -> Interval.t -> t

(** [restrict t w] keeps members that overlap [w], whole. *)
val restrict : t -> Interval.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
