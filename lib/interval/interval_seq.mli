(** Lazy interval streams — the streaming generation path.

    A stream is an [Interval.t Seq.t] whose elements arrive in ascending
    low-endpoint order, possibly without end (a calendar streamed forward
    from a start chronon). Consumers that only need "the first interval at
    or after [t]" pull a handful of elements instead of materializing the
    full window, which is what {!Calendar_gen.generate_seq} and
    [Interp.stream_expr] exploit for next-fire probes.

    All combinators are lazy; only {!to_set}, {!first} and {!take} force
    elements. Combinators that cut by low endpoint ([take_while_lo_le],
    [clip]) are safe on endless streams; [to_set] on an endless stream
    diverges. *)

type t = Interval.t Seq.t

val of_set : Interval_set.t -> t

(** Materializes; the stream must be finite. *)
val to_set : t -> Interval_set.t

val first : t -> Interval.t option

(** Keep the prefix whose members start at or before [c]. Terminates on
    endless ascending streams. *)
val take_while_lo_le : Chronon.t -> t -> t

(** Skip members starting before [c]. *)
val drop_while_lo_lt : Chronon.t -> t -> t

(** Cut the stream to window [w]: members beyond [w] end the stream,
    members straddling it are clipped to it. *)
val clip : Interval.t -> t -> t

(** The members' starting chronons, in ascending order. *)
val starts : t -> Chronon.t Seq.t

(** The first [n] members (fewer when the stream ends early). *)
val take : int -> t -> Interval.t list
