(* Lazy interval streams: thin combinators over OCaml's [Seq] that keep
   the "ascending low endpoint" convention explicit. Producers
   (Calendar_gen.generate_seq, Interp.stream_expr) yield intervals in
   ascending [lo] order, possibly without end; these helpers bound and
   materialize such streams. *)

type t = Interval.t Seq.t

let of_set = Interval_set.to_seq
let to_set seq = Interval_set.of_list (List.of_seq seq)

let first seq =
  match seq () with Seq.Nil -> None | Seq.Cons (x, _) -> Some x

let take_while_lo_le c seq =
  Seq.take_while (fun iv -> Chronon.compare (Interval.lo iv) c <= 0) seq

let drop_while_lo_lt c seq =
  Seq.drop_while (fun iv -> Chronon.compare (Interval.lo iv) c < 0) seq

let clip w seq =
  Seq.filter_map (fun iv -> Interval.intersect iv w) (take_while_lo_le (Interval.hi w) seq)

let starts seq = Seq.map Interval.lo seq

let take n seq = List.of_seq (Seq.take n seq)
