(** The top-level façade: one session = one extensible database with the
    calendar system installed, reproducing the paper's architecture.

    A session owns a simulated clock, a calendar evaluation context, a
    database catalog and a rule manager. Creating it registers the
    {e calendar} abstract data type with the database, creates the
    CALENDARS system table of Figure 1, installs the calendar resolver
    behind the query language's [on <calendar-expression>] clause, and
    declares the date operators — including day-count conventions with
    user-defined semantics for date arithmetic ([day_count], [year_frac],
    [accrued]) and [date('YYYY-MM-DD')]. *)

open Cal_lang
open Cal_db

(** Calendars as first-class database values (via [calendar_value('…')]). *)
type Value.ext += Calendar_v of Calendar.t

type t = {
  ctx : Context.t;
  catalog : Catalog.t;
  manager : Cal_rules.Manager.t;
  clock : Clock.t;
}

exception Session_error of string

(** Defaults: epoch Jan 1 1987, 40-year lifespan from the epoch year,
    DBCRON probe every simulated day, materialization cache of 512
    entries ([cache_capacity 0] disables caching).

    [domains] caps the worker-pool lanes this session's rule manager and
    executor may fan work across — batched next-fire recomputation and
    partitioned sequential scans (default honors [CALRULES_DOMAINS],
    else the hardware count; [1] pins the session serial). Results are
    identical at every setting. *)
val create :
  ?epoch:Civil.date ->
  ?lifespan:Civil.date * Civil.date ->
  ?probe_period:int ->
  ?lookahead:int ->
  ?probe_strategy:Cal_rules.Next_fire.strategy ->
  ?cache_capacity:int ->
  ?domains:int ->
  unit ->
  t

(** {2 Calendars} *)

(** Define a derived calendar from a derivation script; its compiled
    evaluation plan is stored in the CALENDARS table (Figure 1). *)
val define_calendar : t -> name:string -> script:string -> (unit, string) result

(** Define a calendar by explicit values (e.g. HOLIDAYS), as endpoint
    pairs in [granularity] chronons (default Days). *)
val define_stored_calendar :
  t -> name:string -> ?granularity:Granularity.t -> (int * int) list -> unit

(** The CALENDARS tuple for one calendar, as in Figure 1. *)
val calendar_row : t -> string -> Value.t array option

(** Evaluate a calendar expression (planned). *)
val eval_calendar : t -> string -> (Calendar.t, string) result

(** Evaluate calendar-language input: expression or script. *)
val eval : t -> string -> (Interp.value, string) result

(** Evaluate a calendar expression to the day chronons it covers (what
    the [on]-clause resolver uses). @raise Session_error on bad input. *)
val resolve_days : Context.t -> string -> Interval_set.t

(** {2 Queries and rules} *)

(** Run a query-language command; rule definitions dispatch to the rule
    manager. *)
val query : t -> string -> (Exec.result, string) result

(** @raise Session_error on failure. *)
val query_exn : t -> string -> Exec.result

(** {2 Persistence} *)

(** Render the session (calendar definitions, user tables with indexes
    and rows, rules) as a text script loadable by {!load}.
    @raise Dump.Dump_error on undumpable values. *)
val save : t -> string

(** Load a saved script into this (fresh) session. *)
val load : t -> string -> (unit, string) result

(** {2 Simulated time} *)

(** Seconds since the epoch's midnight. *)
val now : t -> int

val today : t -> Civil.date

(** Advance the clock, firing due rules on the way. *)
val advance_to : t -> int -> unit

val advance_days : t -> int -> unit
val advance_to_date : t -> Civil.date -> unit

(** Alert messages raised by rule actions, chronological. *)
val alerts : t -> (string * int) list

val firings : t -> Cal_rules.Manager.firing list

(** {2 Statistics} *)

(** The session's materialization cache (shared by every evaluation the
    session performs). *)
val cache : t -> Calendar.t Cal_cache.t

(** Its counters: hits, misses, evictions, invalidations, insertions. *)
val cache_stats : t -> Cal_cache.stats

(** Hits over lookups; 0 before any lookup. *)
val cache_hit_rate : t -> float

(** Cumulative executor counters (tuples scanned, seq/index scans, index
    probes, plan-cache hits/misses) across every query the session's
    manager ran. *)
val exec_stats : t -> Cal_db.Exec.stats

(** The catalog plan cache's counters. *)
val plan_cache_stats : t -> Cal_db.Qplan.cache_stats

(** Multi-line summary: DBCRON activity (probes, loads, heap peak),
    calendar-cache effectiveness, and the executor's access-path and
    plan-cache counters. *)
val stats_summary : t -> string

(** {2 Conversions} *)

val date_of_day : t -> Chronon.t -> Civil.date
val day_of_date : t -> Civil.date -> Chronon.t
