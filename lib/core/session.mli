(** The top-level façade: one session = one extensible database with the
    calendar system installed, reproducing the paper's architecture.

    A session owns a simulated clock, a calendar evaluation context, a
    database catalog and a rule manager. Creating it registers the
    {e calendar} abstract data type with the database, creates the
    CALENDARS system table of Figure 1, installs the calendar resolver
    behind the query language's [on <calendar-expression>] clause, and
    declares the date operators — including day-count conventions with
    user-defined semantics for date arithmetic ([day_count], [year_frac],
    [accrued]) and [date('YYYY-MM-DD')]. *)

open Cal_lang
open Cal_db

(** Calendars as first-class database values (via [calendar_value('…')]). *)
type Value.ext += Calendar_v of Calendar.t

type t = {
  ctx : Context.t;
  catalog : Catalog.t;
  manager : Cal_rules.Manager.t;
  clock : Clock.t;
  injector : Cal_faults.Injector.t;
  mutable journal : Journal.t option;  (** present on durable sessions *)
  mutable batch_buf : string list option;
      (** inside {!batch}: records collected for one commit group *)
  req_ids : (string, unit) Hashtbl.t;
      (** applied client request ids (exactly-once dedup); journaled and
          snapshotted, so the set survives recovery *)
}

exception Session_error of string

(** Defaults: epoch Jan 1 1987, 40-year lifespan from the epoch year,
    DBCRON probe every simulated day, materialization cache of 512
    entries ([cache_capacity 0] disables caching).

    [probe_strategy] picks how next-fire probes search (see
    {!Cal_rules.Next_fire.strategy}): the default [`Auto] prefers the
    closed-form periodic path — translatable rules are probed by pure
    arithmetic over an unbounded horizon — then streaming, then
    materializing; [`Periodic] pins that preference explicitly, and
    [`Materialize]/[`Stream] force the lifespan-bounded paths.

    [domains] caps the worker-pool lanes this session's rule manager and
    executor may fan work across — batched next-fire recomputation and
    partitioned sequential scans (default honors [CALRULES_DOMAINS],
    else the hardware count; [1] pins the session serial). Results are
    identical at every setting.

    [shards] splits DBCRON into calendar-signature shards and [pending]
    picks each shard's pending structure — timer wheel (default) or the
    min-heap oracle (see {!Cal_rules.Manager.create}); both are
    invisible in every observable.

    [max_failures] and [retry_base] tune rule quarantine and retry
    backoff (see {!Cal_rules.Manager.create}); [injector] arms
    deterministic fault injection across the session's executor, rule
    firings and journal appends (default: disabled). *)
val create :
  ?epoch:Civil.date ->
  ?lifespan:Civil.date * Civil.date ->
  ?probe_period:int ->
  ?lookahead:int ->
  ?probe_strategy:Cal_rules.Next_fire.strategy ->
  ?cache_capacity:int ->
  ?domains:int ->
  ?shards:int ->
  ?pending:[ `Heap | `Wheel ] ->
  ?max_failures:int ->
  ?retry_base:int ->
  ?injector:Cal_faults.Injector.t ->
  unit ->
  t

(** {2 Calendars} *)

(** Define a derived calendar from a derivation script; its compiled
    evaluation plan is stored in the CALENDARS table (Figure 1). *)
val define_calendar : t -> name:string -> script:string -> (unit, string) result

(** Define a calendar by explicit values (e.g. HOLIDAYS), as endpoint
    pairs in [granularity] chronons (default Days). *)
val define_stored_calendar :
  t -> name:string -> ?granularity:Granularity.t -> (int * int) list -> unit

(** The CALENDARS tuple for one calendar, as in Figure 1. *)
val calendar_row : t -> string -> Value.t array option

(** Evaluate a calendar expression (planned). *)
val eval_calendar : t -> string -> (Calendar.t, string) result

(** Evaluate calendar-language input: expression or script. *)
val eval : t -> string -> (Interp.value, string) result

(** Evaluate a calendar expression to the day chronons it covers (what
    the [on]-clause resolver uses). @raise Session_error on bad input. *)
val resolve_days : Context.t -> string -> Interval_set.t

(** {2 Queries and rules} *)

(** Run a query-language command; rule definitions dispatch to the rule
    manager. *)
val query : t -> string -> (Exec.result, string) result

(** @raise Session_error on failure. *)
val query_exn : t -> string -> Exec.result

(** Freeze the session's database into an immutable snapshot catalog
    ({!Cal_db.Catalog.freeze}): O(1) copy-on-write publication of every
    table and index, carrying a fresh epoch stamp and no event hooks.
    Snapshot readers execute retrieves against it with
    {!Cal_db.Exec.run_read} while the session keeps writing — neither
    side observes the other. Repeated freezes with no intervening write
    return the same snapshot. *)
val freeze : t -> Catalog.t

(** {2 Persistence} *)

(** Render the session (calendar definitions, user tables with indexes
    and rows, rules) as a text script loadable by {!load}. [durable]
    adds the clock, per-rule counters, firing/alert logs and rule_errors
    rows — the snapshot format, which {!load} restores bit-identically
    rather than merely schema-equivalently.
    @raise Dump.Dump_error on undumpable values. *)
val save : ?durable:bool -> t -> string

(** Load a saved script into this (fresh) session. *)
val load : t -> string -> (unit, string) result

(** {2 Durability}

    A durable session appends every completed state-changing operation —
    statements, calendar and rule definitions, time advances — to an
    on-disk write-ahead journal of checksummed records. {!snapshot}
    persists the full state and truncates the journal; {!recover}
    rebuilds a bit-identical session from snapshot plus journal,
    discarding at most the one record torn by a crash mid-append. *)

(** Open a fresh durable session journaling to [path]; stale files at
    that path are superseded. Accepts {!create}'s parameters, plus
    [segments] (default 1): the journal stripe count — a segmented
    journal's files decode in parallel during recovery (see
    {!Cal_db.Journal}) — and [policy]: the group-commit durability
    policy (default {!Cal_db.Journal.policy_of_env}, normally
    [Sync_each]). Under [Group n] / [Manual], completed operations
    buffer until the window fills, {!commit} is called, or the next
    {!snapshot}; a crash loses the uncommitted buffer whole — never a
    partial group. The manager's coalesced firing batches journal as
    one commit group each. *)
val open_journaled :
  path:string ->
  ?epoch:Civil.date ->
  ?lifespan:Civil.date * Civil.date ->
  ?probe_period:int ->
  ?lookahead:int ->
  ?probe_strategy:Cal_rules.Next_fire.strategy ->
  ?cache_capacity:int ->
  ?domains:int ->
  ?shards:int ->
  ?pending:[ `Heap | `Wheel ] ->
  ?max_failures:int ->
  ?retry_base:int ->
  ?injector:Cal_faults.Injector.t ->
  ?segments:int ->
  ?policy:Journal.policy ->
  unit ->
  t

(** Rebuild the session persisted at [path]: load the snapshot (when
    one exists), replay the journal's intact records, drop any torn
    tail, resume journaling. Session parameters are not persisted and
    must match the original. The recovered session supersedes the files
    at [path] — a session that was still journaling there keeps writing
    to the replaced (unlinked) file and is no longer durable.
    The journal's segment layout is auto-detected from its manifest and
    preserved; segment files decode across the session's pool lanes
    before the (serial) replay.
    @raise Session_error on a corrupt snapshot.
    @raise Journal.Journal_error on a journal corrupt beyond its tail. *)
val recover :
  path:string ->
  ?epoch:Civil.date ->
  ?lifespan:Civil.date * Civil.date ->
  ?probe_period:int ->
  ?lookahead:int ->
  ?probe_strategy:Cal_rules.Next_fire.strategy ->
  ?cache_capacity:int ->
  ?domains:int ->
  ?shards:int ->
  ?pending:[ `Heap | `Wheel ] ->
  ?max_failures:int ->
  ?retry_base:int ->
  ?injector:Cal_faults.Injector.t ->
  ?policy:Journal.policy ->
  unit ->
  t

(** Write a durable snapshot to [<journal path>.snap] (atomically) and
    truncate the journal it subsumes (including any uncommitted buffer —
    the snapshot already holds those operations).
    @raise Session_error on a non-journaled session. *)
val snapshot : t -> unit

(** Flush the journal's uncommitted group, if any — the explicit
    durability point under [Manual] (and early commit under [Group]); a
    no-op under [Sync_each] or on a non-journaled session. *)
val commit : t -> unit

(** [batch t f] runs [f] collecting every record it journals into one
    atomic commit group, appended when [f] returns: after a crash,
    either the whole batch is recovered or none of it. Nested batches
    flatten into the outermost group; on a non-journaled session this is
    just [f ()]. *)
val batch : t -> (unit -> 'a) -> 'a

(** {2 Exactly-once request ids}

    A served write batch may carry a client-supplied request id. The id
    is journaled as a [reqid] record {e inside the batch's commit group}
    (call {!mark_request} within {!batch}) and persisted by durable
    snapshots, so after any crash/recovery either the batch and its id
    both survive or neither does — a client retrying after a lost reply
    can never re-apply work whose commit group landed. The id set is
    deliberately outside {!state_digest}: it is retry plumbing, not
    user-visible state. *)

(** Has a batch carrying this id already applied (this run or any
    recovered one)? *)
val request_applied : t -> string -> bool

(** Record an id as applied and journal it; run inside {!batch} so the
    id commits atomically with the batch it names.
    @raise Session_error on a malformed id (ids are 1–128 bytes of
    [[A-Za-z0-9._:-]]). *)
val mark_request : t -> string -> unit

(** [true] exactly when {!mark_request} would accept the id. *)
val valid_req_id : string -> bool

(** Catch up after downtime: bring the clock to an instant, applying the
    policy to trigger points that passed in between (see
    {!Cal_rules.Manager.catch_up}). *)
val catch_up : t -> policy:Cal_rules.Manager.catch_up -> int -> unit

(** Lift a quarantined rule back into service; [false] when absent or
    not quarantined. *)
val requeue : t -> string -> bool

(** Names of quarantined rules, sorted. *)
val quarantined_rules : t -> string list

(** Rows of the rule_errors system table — (rule, instant, attempt,
    message) — oldest first. *)
val rule_errors : t -> (string * int * int * string) list

(** [(fire_count, consecutive failures, quarantined)] for a live rule. *)
val rule_health : t -> string -> (int * int * bool) option

val is_journaled : t -> bool
val journal_path : t -> string option

(** A canonical rendering of everything recovery promises to restore:
    clock, calendars, user-table rows (order-sensitive, rowid-free),
    rule system tables (sorted), firing/alert logs and per-rule health.
    Equal digests = observationally identical sessions; caches and
    statistics are outside the promise. *)
val state_digest : t -> string

(** {2 Simulated time} *)

(** Seconds since the epoch's midnight. *)
val now : t -> int

val today : t -> Civil.date

(** Advance the clock, firing due rules on the way. *)
val advance_to : t -> int -> unit

val advance_days : t -> int -> unit
val advance_to_date : t -> Civil.date -> unit

(** Alert messages raised by rule actions, chronological. *)
val alerts : t -> (string * int) list

val firings : t -> Cal_rules.Manager.firing list

(** {2 Statistics} *)

(** The session's materialization cache (shared by every evaluation the
    session performs). *)
val cache : t -> Calendar.t Cal_cache.t

(** Its counters: hits, misses, evictions, invalidations, insertions. *)
val cache_stats : t -> Cal_cache.stats

(** Hits over lookups; 0 before any lookup. *)
val cache_hit_rate : t -> float

(** Cumulative executor counters (tuples scanned, seq/index scans, index
    probes, plan-cache hits/misses) across every query the session's
    manager ran. *)
val exec_stats : t -> Cal_db.Exec.stats

(** The catalog plan cache's counters. *)
val plan_cache_stats : t -> Cal_db.Qplan.cache_stats

(** [(records, flushes)] of the journal — the group-commit amortization
    ratio is records/flushes; [None] on a non-journaled session. *)
val journal_stats : t -> (int * int) option

(** Multi-line summary: DBCRON activity (probes, loads, heap peak),
    calendar-cache effectiveness, the executor's access-path and
    plan-cache counters, how many rules are probed by the closed-form
    periodic path, and (on durable sessions) the journal's
    records/flushes amortization under its durability policy. *)
val stats_summary : t -> string

(** {2 Conversions} *)

val date_of_day : t -> Chronon.t -> Civil.date
val day_of_date : t -> Civil.date -> Chronon.t
