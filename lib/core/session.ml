(** The top-level façade: one session = one extensible database with the
    calendar system installed, reproducing the paper's architecture.

    A session owns a simulated clock, a calendar evaluation context, a
    database catalog and a rule manager. Creating it:

    {ul
    {- registers the {e calendar} abstract data type with the database
       (POSTGRES-style object extension);}
    {- creates the CALENDARS system table of Figure 1 (name,
       derivation-script, eval-plan, lifespan, granularity, values);}
    {- installs the calendar resolver, so the query language's
       [on <calendar-expression>] clause and time-based rules evaluate
       through the parser/planner;}
    {- declares date operators, including day-count conventions with
       user-defined semantics for date arithmetic ([day_count],
       [year_frac], [accrued]) and [date('YYYY-MM-DD')].}} *)

open Cal_lang
open Cal_db

type Value.ext += Calendar_v of Calendar.t

type t = {
  ctx : Context.t;
  catalog : Catalog.t;
  manager : Cal_rules.Manager.t;
  clock : Clock.t;
  injector : Cal_faults.Injector.t;
  mutable journal : Journal.t option;  (** present on durable sessions *)
  mutable batch_buf : string list option;
      (** inside {!batch}: records collected for one commit group,
          newest first *)
  req_ids : (string, unit) Hashtbl.t;
      (** client request ids already applied (exactly-once dedup);
          journaled as [reqid] records, so the set survives recovery *)
}

exception Session_error of string

(* Durable sessions journal every completed state-changing operation as
   one record, [<kind> <payload>]. Operations that raise journal
   nothing: their raising paths all validate before mutating. Replay
   applies records with [journal = None], so nothing is re-journaled. *)
let journal_record t payload =
  match t.journal with
  | None -> ()
  | Some j -> (
    match t.batch_buf with
    | Some acc -> t.batch_buf <- Some (payload :: acc)
    | None -> Journal.append j payload)

(* Journal several records as one atomic commit group (a coalesced
   firing batch). Inside {!batch} they fold into the enclosing group. *)
let journal_records t payloads =
  match t.journal with
  | None -> ()
  | Some j -> (
    match t.batch_buf with
    | Some acc -> t.batch_buf <- Some (List.rev_append payloads acc)
    | None -> Journal.append_batch j payloads)

(* Run [f] with journaling suspended: used by [load], whose inner
   definitions would otherwise journal records the [load] record already
   subsumes. *)
let unlogged t f =
  let j = t.journal in
  t.journal <- None;
  Fun.protect ~finally:(fun () -> t.journal <- j) f

let register_calendar_adt () =
  Value.register_adt
    {
      Value.tag = "calendar";
      pp = (function Calendar_v c -> Some (Calendar.to_string c) | _ -> None);
      equal =
        (fun a b ->
          match (a, b) with
          | Calendar_v x, Calendar_v y -> Some (Calendar.equal x y)
          | _ -> None);
      compare = None;
    }

let calendars_schema =
  Schema.make ~table:"calendars"
    [
      { Schema.name = "name"; ty = Schema.TText; valid_time = false };
      { Schema.name = "derivation_script"; ty = Schema.TText; valid_time = false };
      { Schema.name = "eval_plan"; ty = Schema.TText; valid_time = false };
      { Schema.name = "lifespan"; ty = Schema.TInterval; valid_time = false };
      { Schema.name = "granularity"; ty = Schema.TText; valid_time = false };
      { Schema.name = "vals"; ty = Schema.TArray Schema.TInterval; valid_time = false };
    ]

(* Convert a calendar value at [fine] granularity to day chronons (the
   unit valid-time columns use). Day d is included when the interval
   covers any instant of d. *)
let to_day_set (ctx : Context.t) fine set =
  if Granularity.equal fine Granularity.Days then set
  else
    Interval_set.map
      (fun iv ->
        let lo_instant =
          Unit_system.start_of_index ~epoch:ctx.Context.epoch fine
            (Chronon.to_offset (Interval.lo iv))
        in
        let hi_instant =
          Unit_system.start_of_index ~epoch:ctx.Context.epoch fine
            (Chronon.to_offset (Interval.hi iv) + 1)
          - 1
        in
        Interval.make
          (Chronon.of_offset
             (Unit_system.index_of_instant ~epoch:ctx.Context.epoch Granularity.Days lo_instant))
          (Chronon.of_offset
             (Unit_system.index_of_instant ~epoch:ctx.Context.epoch Granularity.Days hi_instant)))
      set

(** Evaluate a calendar expression source to its day chronons. *)
let resolve_days ctx source =
  match Parser.expr source with
  | Error e -> raise (Session_error (Printf.sprintf "bad calendar expression %S: %s" source e))
  | Ok expr ->
    let cal, _ = Interp.eval_expr_planned ctx expr in
    let fine = Gran.finest_of_expr ctx.Context.env expr in
    Interval_set.coalesce (to_day_set ctx fine (Calendar.flatten cal))

let date_of_value ~epoch = function
  | Value.Chronon c -> Unit_system.date_of_chronon ~epoch Granularity.Days c
  | v -> raise (Qexpr.Eval_error ("expected a chronon, got " ^ Value.to_string v))

let register_date_operators (ctx : Context.t) catalog =
  let epoch = ctx.Context.epoch in
  let reg name arity fn = Catalog.register_operator catalog ~name ~arity fn in
  reg "date" 1 (function
    | [ Value.Text s ] -> (
      match Civil.of_string s with
      | Some d -> Value.Chronon (Unit_system.chronon_of_date ~epoch Granularity.Days d)
      | None -> raise (Qexpr.Eval_error ("bad date literal " ^ s)))
    | _ -> Value.Null);
  reg "date_text" 1 (function
    | [ v ] -> Value.Text (Civil.to_string (date_of_value ~epoch v))
    | _ -> Value.Null);
  reg "weekday" 1 (function
    | [ v ] -> Value.Int (Civil.weekday (date_of_value ~epoch v))
    | _ -> Value.Null);
  let convention v =
    match v with
    | Value.Text s -> (
      match Day_count.of_string s with
      | Some c -> c
      | None -> raise (Qexpr.Eval_error ("unknown day-count convention " ^ s)))
    | v -> raise (Qexpr.Eval_error ("expected a convention name, got " ^ Value.to_string v))
  in
  (* User-defined semantics for date arithmetic (section 1): the
     convention argument selects the calendar the arithmetic uses. *)
  reg "day_count" 3 (function
    | [ conv; a; b ] ->
      Value.Int
        (Day_count.day_count (convention conv) (date_of_value ~epoch a) (date_of_value ~epoch b))
    | _ -> Value.Null);
  reg "year_frac" 3 (function
    | [ conv; a; b ] ->
      Value.Float
        (Day_count.year_fraction (convention conv) (date_of_value ~epoch a)
           (date_of_value ~epoch b))
    | _ -> Value.Null);
  reg "accrued" 5 (function
    | [ conv; Value.Float rate; Value.Float face; a; b ] ->
      Value.Float
        (Day_count.accrued_interest ~convention:(convention conv) ~annual_rate:rate ~face
           (date_of_value ~epoch a) (date_of_value ~epoch b))
    | _ -> Value.Null)

let register_calendar_operators ctx catalog =
  Catalog.register_operator catalog ~name:"calendar_contains" ~arity:2 (function
    | [ Value.Text source; Value.Chronon c ] ->
      Value.Bool (Interval_set.contains_chronon (resolve_days ctx source) c)
    | _ -> Value.Null);
  Catalog.register_operator catalog ~name:"calendar_value" ~arity:1 (function
    | [ Value.Text source ] -> (
      match Parser.expr source with
      | Error e -> raise (Qexpr.Eval_error e)
      | Ok expr ->
        let cal, _ = Interp.eval_expr_planned ctx expr in
        Value.Ext ("calendar", Calendar_v cal))
    | _ -> Value.Null)

let create ?(epoch = Unit_system.default_epoch) ?lifespan ?probe_period ?lookahead
    ?probe_strategy ?(cache_capacity = 512) ?domains ?shards ?pending ?max_failures
    ?retry_base ?injector () =
  register_calendar_adt ();
  let clock = Clock.create () in
  let env = Env.create () in
  let ctx = Context.create ~epoch ?lifespan ~clock ~env ~cache_capacity () in
  let catalog = Catalog.create () in
  ignore (Catalog.create_table catalog calendars_schema);
  Catalog.set_calendar_resolver catalog (resolve_days ctx);
  register_date_operators ctx catalog;
  register_calendar_operators ctx catalog;
  let manager =
    Cal_rules.Manager.create ?probe_period ?lookahead ?probe_strategy ?domains ?shards
      ?pending ?max_failures ?retry_base ?injector ctx catalog
  in
  { ctx; catalog; manager; clock; injector = Cal_rules.Manager.injector manager;
    journal = None; batch_buf = None; req_ids = Hashtbl.create 64 }

(* --- CALENDARS catalog maintenance ---------------------------------- *)

let lifespan_interval t =
  let d1, d2 = t.ctx.Context.lifespan in
  Unit_system.chronon_span_of_dates ~epoch:t.ctx.Context.epoch Granularity.Days d1 d2

let calendars_table t = Catalog.table t.catalog "calendars"

let catalog_row t ~name ~script ~plan ~granularity ~values =
  ignore
    (Table.insert (calendars_table t)
       [|
         Value.Text name;
         Value.Text script;
         Value.Text plan;
         Value.Interval (lifespan_interval t);
         Value.Text (Granularity.to_string granularity);
         Value.Array (Array.of_list (List.map (fun iv -> Value.Interval iv) values));
       |])

(** Define a derived calendar from a derivation script (Figure 1's
    Tuesdays row). The script is parsed; its evaluation plan is compiled
    and stored in the CALENDARS table. *)
let define_calendar_unlogged t ~name ~script =
  if Env.mem t.ctx.Context.env name then Error (Printf.sprintf "calendar %s already exists" name)
  else
    match Env.define_script t.ctx.Context.env ~name ~source:script with
    | Error e -> Error e
    | Ok () -> (
      let env = t.ctx.Context.env in
      let granularity =
        match Gran.of_expr env (Ast.Ident name) with
        | Some g -> g
        | None -> Granularity.Days
      in
      (* The eval-plan: factorize-and-plan the script when it is
         straight-line; control-flow scripts are marked procedural. *)
      let plan =
        match Planner.plan t.ctx (Ast.Ident name) with
        | plan -> Plan.to_string plan
        | exception _ -> "<procedural script>"
      in
      catalog_row t ~name ~script ~plan ~granularity ~values:[];
      Ok ())

let define_calendar t ~name ~script =
  let r = define_calendar_unlogged t ~name ~script in
  journal_record t (Printf.sprintf "cal %s %s" name script);
  r

let pairs_to_string pairs =
  String.concat "," (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) pairs)

(** Define a calendar by explicit values (e.g. HOLIDAYS), stored in the
    CALENDARS table's [vals] column. *)
let define_stored_calendar t ~name ?(granularity = Granularity.Days) pairs =
  let values = Interval_set.of_pairs pairs in
  Env.define_stored t.ctx.Context.env ~name ~granularity values;
  catalog_row t ~name ~script:"" ~plan:"" ~granularity ~values:(Interval_set.to_list values);
  journal_record t
    (Printf.sprintf "stored %s %s %s" name (Granularity.to_string granularity)
       (pairs_to_string pairs))

(** The CALENDARS tuple for one calendar, as in Figure 1. *)
let calendar_row t name =
  Table.fold (calendars_table t)
    (fun acc _ tuple ->
      match tuple.(0) with
      | Value.Text n when String.lowercase_ascii n = String.lowercase_ascii name -> Some tuple
      | _ -> acc)
    None

(* --- evaluation and queries ----------------------------------------- *)

(** Evaluate calendar-language input (expression or script). *)
let eval t source = Interp.eval_string t.ctx source

(** Evaluate a calendar expression to its interval value. *)
let eval_calendar t source =
  match Parser.expr source with
  | Error e -> Error e
  | Ok expr -> (
    match Interp.eval_expr_planned t.ctx expr with
    | cal, _ -> Ok cal
    | exception exn -> Error (Printexc.to_string exn))

(** Run a query-language command (rules dispatch to the manager). On a
    durable session the statement is journaled once it completes —
    [Error] results too: they replay to the same (non-)state. *)
let query t source =
  let r = Cal_rules.Manager.run_query t.manager source in
  journal_record t ("q " ^ source);
  r

let query_exn t source =
  match query t source with
  | Ok r -> r
  | Error e -> raise (Session_error e)

(* Snapshot publication: O(1) copy-on-write freeze of the whole catalog;
   readers run retrieves against the result with [Exec.run_read]. *)
let freeze t = Catalog.freeze t.catalog

(* --- exactly-once request ids ---------------------------------------- *)

(* One token, no whitespace or control bytes: it must survive the
   space-delimited journal-record framing and the wire protocol. *)
let valid_req_id id =
  let n = String.length id in
  n >= 1 && n <= 128
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' -> true
         | _ -> false)
       id

(** Has a write batch carrying [id] already applied (this run or any
    recovered one)? *)
let request_applied t id = Hashtbl.mem t.req_ids id

(** Record [id] as applied and journal it — callers run this inside
    {!batch} with the batch's statements, so the id commits atomically
    with the work it names: after recovery either both are present or
    neither, and a client retry can never re-apply a batch whose commit
    group survived. @raise Session_error on a malformed id. *)
let mark_request t id =
  if not (valid_req_id id) then raise (Session_error ("bad request id " ^ String.escaped id));
  Hashtbl.replace t.req_ids id ();
  journal_record t ("reqid " ^ id)

(* --- persistence ------------------------------------------------------ *)

(* A saved session is a sectioned text file:
     %%calendar <name>        followed by the derivation script
     %%stored <name> <gran>   followed by endpoint pairs (a,b),(c,d)
     %%schema                 followed by a query-language dump script
     %%rules                  followed by define-rule commands
   Section payloads are the lines up to the next %% header.

   A durable save (a snapshot) adds the sections that make the restored
   session bit-identical, not merely schema-equivalent:
     %%clock <now>            the simulated instant (no payload)
     %%rulestate              <name> <fire_count> <failures> <0|1> <next|->
     %%firings                <rule> <at>, chronological
     %%alerts                 <at> <escaped message>, chronological
     %%errors                 <rule> <at> <attempt> <escaped message>
   %%clock leads, so rule definitions evaluate at the right instant, and
   its presence is what triggers the manager's post-restore cron
   rebuild. *)

let system_tables = [ "calendars"; "rule_info"; "rule_time"; "rule_errors" ]

(** Render the session (calendars, user tables with their indexes and
    rows, rules) as a loadable script; [durable] adds the clock,
    per-rule counters, firing/alert logs and rule_errors rows (the
    snapshot format). @raise Dump.Dump_error on undumpable values
    (registered-ADT columns). *)
let save ?(durable = false) t =
  let buf = Buffer.create 4096 in
  if durable then Buffer.add_string buf (Printf.sprintf "%%%%clock %d\n" (Clock.now t.clock));
  Table.iter (calendars_table t) (fun _ tuple ->
      match tuple with
      | [| Value.Text name; Value.Text script; _; _; Value.Text gran; Value.Array vals |] ->
        if script <> "" then
          Buffer.add_string buf (Printf.sprintf "%%%%calendar %s
%s
" name script)
        else
          Buffer.add_string buf
            (Printf.sprintf "%%%%stored %s %s
%s
" name gran
               (String.concat ","
                  (List.map
                     (function
                       | Value.Interval iv ->
                         Printf.sprintf "(%d,%d)" (Interval.lo iv) (Interval.hi iv)
                       | _ -> "")
                     (Array.to_list vals))))
      | _ -> ());
  Buffer.add_string buf "%%schema
";
  Buffer.add_string buf (Dump.dump t.catalog ~skip:system_tables ());
  Buffer.add_string buf "%%rules
";
  List.iter
    (fun r -> Buffer.add_string buf (Qast.to_string (Qast.Define_rule r) ^ ";
"))
    (Cal_rules.Manager.rules t.manager);
  if durable then begin
    Buffer.add_string buf "%%rulestate\n";
    List.iter
      (fun name ->
        match Cal_rules.Manager.rule_health t.manager name with
        | None -> ()
        | Some (fire_count, failures, quarantined) ->
          Buffer.add_string buf
            (Printf.sprintf "%s %d %d %d %s\n" name fire_count failures
               (if quarantined then 1 else 0)
               (match Cal_rules.Manager.next_fire t.manager name with
               | Some at -> string_of_int at
               | None -> "-")))
      (Cal_rules.Manager.rule_names t.manager);
    Buffer.add_string buf "%%firings\n";
    List.iter
      (fun { Cal_rules.Manager.rule; at } ->
        Buffer.add_string buf (Printf.sprintf "%s %d\n" rule at))
      (Cal_rules.Manager.firings t.manager);
    Buffer.add_string buf "%%alerts\n";
    List.iter
      (fun (msg, at) -> Buffer.add_string buf (Printf.sprintf "%d %s\n" at (String.escaped msg)))
      (Cal_rules.Manager.alerts t.manager);
    Buffer.add_string buf "%%errors\n";
    List.iter
      (fun (name, at, attempt, err) ->
        Buffer.add_string buf
          (Printf.sprintf "%s %d %d %s\n" name at attempt (String.escaped err)))
      (Cal_rules.Manager.rule_errors t.manager);
    (* The applied-request-id set: a snapshot truncates the journal, so
       the ids journaled there must survive in the snapshot or a client
       retry after recovery would re-apply its batch. *)
    Buffer.add_string buf "%%reqids\n";
    List.iter
      (fun id -> Buffer.add_string buf (id ^ "\n"))
      (List.sort String.compare (Hashtbl.fold (fun id () acc -> id :: acc) t.req_ids []))
  end;
  Buffer.contents buf

let parse_pairs s =
  (* "(a,b),(c,d)" *)
  let s = String.trim s in
  if s = "" then []
  else
    String.split_on_char ')' s
    |> List.filter_map (fun chunk ->
           let chunk = String.trim chunk in
           let chunk =
             if String.length chunk > 0 && (chunk.[0] = ',' || chunk.[0] = '(') then
               String.sub chunk 1 (String.length chunk - 1)
             else chunk
           in
           let chunk =
             if String.length chunk > 0 && chunk.[0] = '(' then
               String.sub chunk 1 (String.length chunk - 1)
             else chunk
           in
           match String.split_on_char ',' chunk with
           | [ a; b ] -> (
             match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
             | Some a, Some b -> Some (a, b)
             | _ -> None)
           | _ -> None)

(** Load a script produced by {!save} into this (fresh) session. *)
let load_unlogged t script =
  let lines = String.split_on_char '
' script in
  (* Split into (header, payload-lines) sections. *)
  let sections = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (header, body) -> sections := (header, String.concat "
" (List.rev body)) :: !sections
    | None -> ()
  in
  List.iter
    (fun line ->
      if String.length line >= 2 && String.sub line 0 2 = "%%" then begin
        flush ();
        current := Some (String.sub line 2 (String.length line - 2), [])
      end
      else
        match !current with
        | Some (h, body) -> current := Some (h, line :: body)
        | None -> ())
    lines;
  flush ();
  let durable_seen = ref false in
  let non_empty payload =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' payload)
  in
  let apply (header, payload) =
    match String.split_on_char ' ' (String.trim header) with
    | [ "calendar"; name ] -> define_calendar t ~name ~script:(String.trim payload)
    | [ "stored"; name; gran ] -> (
      match Granularity.of_string gran with
      | Some granularity ->
        define_stored_calendar t ~name ~granularity (parse_pairs payload);
        Ok ()
      | None -> Error ("unknown granularity " ^ gran))
    | [ "schema" ] -> (
      match Dump.load t.catalog payload with Ok _ -> Ok () | Error e -> Error e)
    | [ "rules" ] -> (
      match Qparser.program payload with
      | Error e -> Error e
      | Ok queries ->
        List.fold_left
          (fun acc q ->
            match (acc, q) with
            | Error _, _ -> acc
            | Ok (), Qast.Define_rule r -> Cal_rules.Manager.define t.manager r
            | Ok (), _ -> Error "rules section may only contain rule definitions")
          (Ok ()) queries)
    | [ "clock"; n ] -> (
      match int_of_string_opt n with
      | Some now ->
        durable_seen := true;
        Cal_rules.Manager.restore_clock t.manager now;
        Ok ()
      | None -> Error ("bad clock instant " ^ n))
    | [ "rulestate" ] ->
      List.iter
        (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ name; fc; fl; q; next ] ->
            Cal_rules.Manager.set_rule_state t.manager name ~fire_count:(int_of_string fc)
              ~failures:(int_of_string fl) ~quarantined:(q = "1")
              ~next:(if next = "-" then None else Some (int_of_string next))
          | _ -> ())
        (non_empty payload);
      Ok ()
    | [ "firings" ] ->
      Cal_rules.Manager.restore_firings t.manager
        (List.filter_map
           (fun line ->
             match String.split_on_char ' ' (String.trim line) with
             | [ rule; at ] -> Some { Cal_rules.Manager.rule; at = int_of_string at }
             | _ -> None)
           (non_empty payload));
      Ok ()
    | [ "alerts" ] ->
      Cal_rules.Manager.restore_alerts t.manager
        (List.filter_map
           (fun line ->
             match String.index_opt line ' ' with
             | Some i ->
               Some
                 ( Scanf.unescaped (String.sub line (i + 1) (String.length line - i - 1)),
                   int_of_string (String.sub line 0 i) )
             | None -> None)
           (non_empty payload));
      Ok ()
    | [ "errors" ] ->
      let tbl = Catalog.table t.catalog "rule_errors" in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | name :: at :: attempt :: rest ->
            ignore
              (Table.insert tbl
                 [|
                   Value.Text name;
                   Value.Int (int_of_string at);
                   Value.Int (int_of_string attempt);
                   Value.Text (Scanf.unescaped (String.concat " " rest));
                 |])
          | _ -> ())
        (non_empty payload);
      Ok ()
    | [ "reqids" ] ->
      List.iter (fun id -> Hashtbl.replace t.req_ids (String.trim id) ()) (non_empty payload);
      Ok ()
    | _ -> Error ("unknown section " ^ header)
  in
  let r =
    List.fold_left
      (fun acc section -> match acc with Error _ -> acc | Ok () -> apply section)
      (Ok ())
      (List.rev !sections)
  in
  (* A durable script restored RULE_TIME verbatim; rebuild DBCRON's heap
     from it at the restored instant. *)
  if !durable_seen then Cal_rules.Manager.after_restore t.manager;
  r

let load t script =
  let r = unlogged t (fun () -> load_unlogged t script) in
  journal_record t ("load " ^ script);
  r

(* --- time ------------------------------------------------------------ *)

let now t = Clock.now t.clock
let today t = Clock.date ~epoch:t.ctx.Context.epoch t.clock

let advance_to t instant =
  (* The injector may rewrite the target (downtime / regression drills);
     the journal records the instant actually applied, since replay does
     not consult the injector. *)
  let instant = Cal_faults.Injector.jump_clock t.injector instant in
  Cal_rules.Manager.advance_to t.manager instant;
  journal_record t (Printf.sprintf "advance %d" instant)

let advance_days t days = advance_to t (now t + (days * 86400))

let advance_to_date t date =
  let target = (Civil.rata_die date - Civil.rata_die t.ctx.Context.epoch) * 86400 in
  advance_to t target

let alerts t = Cal_rules.Manager.alerts t.manager
let firings t = Cal_rules.Manager.firings t.manager

(* --- durability: journaled sessions, snapshots, recovery ------------- *)

let policy_to_string = function
  | Cal_rules.Manager.Fire_once -> "fire_once"
  | Cal_rules.Manager.Skip -> "skip"
  | Cal_rules.Manager.Replay_all -> "replay_all"

let policy_of_string = function
  | "fire_once" -> Some Cal_rules.Manager.Fire_once
  | "skip" -> Some Cal_rules.Manager.Skip
  | "replay_all" -> Some Cal_rules.Manager.Replay_all
  | _ -> None

(** Catch up after downtime: bring the clock to [instant], applying
    [policy] to trigger points that passed in between (see
    {!Cal_rules.Manager.catch_up}). *)
let catch_up t ~policy instant =
  Cal_rules.Manager.catch_up t.manager ~policy instant;
  journal_record t (Printf.sprintf "catchup %s %d" (policy_to_string policy) instant)

(** Lift a quarantined rule back into service. *)
let requeue t name =
  let r = Cal_rules.Manager.requeue t.manager name in
  if r then journal_record t ("requeue " ^ name);
  r

let quarantined_rules t = Cal_rules.Manager.quarantined_rules t.manager
let rule_errors t = Cal_rules.Manager.rule_errors t.manager
let rule_health t name = Cal_rules.Manager.rule_health t.manager name

let split_record r =
  match String.index_opt r ' ' with
  | Some i -> (String.sub r 0 i, String.sub r (i + 1) (String.length r - i - 1))
  | None -> (r, "")

(* Replay one journal record. The caller guarantees [t.journal = None],
   so nothing applied here is re-journaled; deterministic failures
   (a replayed statement that errored the first time) fail identically
   and are ignored just as the original caller saw them as values. *)
let apply_record t record =
  let kind, rest = split_record record in
  match kind with
  | "q" -> ignore (query t rest)
  | "cal" ->
    let name, script = split_record rest in
    ignore (define_calendar t ~name ~script)
  | "stored" -> (
    let name, rest = split_record rest in
    let gran, pairs = split_record rest in
    match Granularity.of_string gran with
    | Some granularity -> define_stored_calendar t ~name ~granularity (parse_pairs pairs)
    | None -> raise (Session_error ("journal: unknown granularity " ^ gran)))
  | "advance" -> Cal_rules.Manager.advance_to t.manager (int_of_string (String.trim rest))
  | "catchup" -> (
    let pol, inst = split_record rest in
    match policy_of_string pol with
    | Some policy -> Cal_rules.Manager.catch_up t.manager ~policy (int_of_string (String.trim inst))
    | None -> raise (Session_error ("journal: unknown catch-up policy " ^ pol)))
  | "requeue" -> ignore (Cal_rules.Manager.requeue t.manager (String.trim rest))
  | "load" -> ignore (load_unlogged t rest)
  | "fired" ->
    (* Firing provenance written by the manager's journal sink: replay
       re-fires deterministically through the advance/catchup records,
       so these are no-ops here. *)
    ()
  | "reqid" ->
    (* A client request id that committed with its batch: restore it to
       the dedup set so a post-recovery retry is refused. *)
    Hashtbl.replace t.req_ids (String.trim rest) ()
  | _ -> raise (Session_error ("journal: unknown record kind " ^ kind))

let snap_path path = path ^ ".snap"
let journal_path t = Option.map Journal.path t.journal
let is_journaled t = t.journal <> None

(* Hand the manager's coalesced firing batches to the journal as commit
   groups. Installed only once the journal is live (after any replay),
   and [journal_records] is a no-op while [load] suspends journaling. *)
let install_firing_journal t =
  Cal_rules.Manager.set_journal_sink t.manager (fun records -> journal_records t records)

(** Flush the journal's uncommitted group, if any — the explicit
    durability point under [Manual] (and early commit under [Group]);
    a no-op under [Sync_each] or on a non-journaled session. *)
let commit t = match t.journal with Some j -> Journal.commit j | None -> ()

(** Run [f] collecting every record it journals — statements, advances,
    firing batches — into one atomic commit group, appended when [f]
    returns (even by exception: the operations did complete and their
    records must survive together). Nested batches flatten into the
    outermost group. On a non-journaled session, just [f ()]. *)
let batch t f =
  match (t.journal, t.batch_buf) with
  | None, _ | _, Some _ -> f ()
  | Some j, None ->
    t.batch_buf <- Some [];
    let finish () =
      match t.batch_buf with
      | Some acc ->
        t.batch_buf <- None;
        (* The journal handle may be dead if a simulated crash landed
           inside the batch — the group is lost with the process image,
           exactly like an uncommitted buffer. *)
        (try Journal.append_batch j (List.rev acc) with Journal.Journal_error _ -> ())
      | None -> ()
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      (* Keep [f]'s exception even if the group append also fails. *)
      (try finish () with _ -> ());
      raise e)

(** Open a fresh durable session journaling to [path]: any stale journal
    or snapshot at that path is superseded. Accepts {!create}'s
    parameters. [policy] defaults to {!Journal.policy_of_env} (normally
    [Sync_each]). *)
let open_journaled ~path ?epoch ?lifespan ?probe_period ?lookahead ?probe_strategy
    ?cache_capacity ?domains ?shards ?pending ?max_failures ?retry_base ?injector
    ?(segments = 1) ?policy () =
  let policy = match policy with Some p -> p | None -> Journal.policy_of_env () in
  let t =
    create ?epoch ?lifespan ?probe_period ?lookahead ?probe_strategy ?cache_capacity ?domains
      ?shards ?pending ?max_failures ?retry_base ?injector ()
  in
  if Sys.file_exists (snap_path path) then Sys.remove (snap_path path);
  Journal.rewrite ~segments path [];
  t.journal <- Some (Journal.open_append ~policy ~injector:t.injector ~segments path);
  install_firing_journal t;
  t

(** Rebuild the session at [path]: load the snapshot (when one exists),
    replay the journal's intact records, drop any torn tail, and resume
    journaling. The session parameters must match those the journaled
    session was opened with — they are not persisted.
    @raise Session_error on a corrupt snapshot. *)
let recover ~path ?epoch ?lifespan ?probe_period ?lookahead ?probe_strategy ?cache_capacity
    ?domains ?shards ?pending ?max_failures ?retry_base ?injector ?policy () =
  let policy = match policy with Some p -> p | None -> Journal.policy_of_env () in
  let t =
    create ?epoch ?lifespan ?probe_period ?lookahead ?probe_strategy ?cache_capacity ?domains
      ?shards ?pending ?max_failures ?retry_base ?injector ()
  in
  let sp = snap_path path in
  (if Sys.file_exists sp then begin
     let ic = open_in_bin sp in
     let text = really_input_string ic (in_channel_length ic) in
     close_in ic;
     match load_unlogged t text with
     | Ok () -> ()
     | Error e -> raise (Session_error ("recover: bad snapshot: " ^ e))
   end);
  (* The journal keeps the layout it was written with; segmented files
     decode in parallel across the manager's lanes before the serial
     replay. *)
  let segments = Journal.detect_segments path in
  let groups =
    Journal.read_groups ~domains:(Cal_rules.Manager.domains t.manager) path
  in
  List.iter (apply_record t) (List.concat groups);
  (* Re-frame the files so a torn tail is gone before appends resume,
     preserving commit-group framing for the surviving records. *)
  Journal.rewrite_groups ~segments path groups;
  t.journal <- Some (Journal.open_append ~policy ~injector:t.injector ~segments path);
  install_firing_journal t;
  t

(** Write a durable snapshot next to the journal ([<path>.snap],
    atomically) and truncate the journal it subsumes.
    @raise Session_error on a non-journaled session. *)
let snapshot t =
  match t.journal with
  | None -> raise (Session_error "snapshot requires a journaled session")
  | Some j ->
    let text = save ~durable:true t in
    let sp = snap_path (Journal.path j) in
    let tmp = sp ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc text;
    close_out oc;
    Sys.rename tmp sp;
    Journal.truncate j

(** A canonical rendering of everything recovery promises to restore:
    the clock, calendar catalog, user tables (row order, rowids
    excluded — snapshot load compacts them), rule system tables (sorted;
    definition order is not canonical), firing and alert logs, and
    per-rule health. Two sessions with equal digests are
    observationally identical; caches and statistics are deliberately
    outside the promise. *)
let state_digest t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let row_text tuple = String.concat "|" (Array.to_list (Array.map Value.to_string tuple)) in
  add "clock %d" (Clock.now t.clock);
  Table.iter (calendars_table t) (fun _ tuple -> add "calendar %s" (row_text tuple));
  List.iter
    (fun name ->
      if not (List.mem name system_tables) then begin
        add "table %s" name;
        Table.iter (Catalog.table t.catalog name) (fun _ tuple -> add "row %s" (row_text tuple))
      end)
    (Catalog.table_names t.catalog);
  List.iter
    (fun name ->
      match Catalog.table_opt t.catalog name with
      | None -> ()
      | Some tbl ->
        let rows = Table.fold tbl (fun acc _ tuple -> row_text tuple :: acc) [] in
        List.iter (add "%s %s" name) (List.sort String.compare rows))
    [ "rule_info"; "rule_time"; "rule_errors" ];
  List.iter
    (fun { Cal_rules.Manager.rule; at } -> add "firing %s %d" rule at)
    (Cal_rules.Manager.firings t.manager);
  List.iter (fun (msg, at) -> add "alert %d %s" at (String.escaped msg)) (alerts t);
  List.iter
    (fun name ->
      match Cal_rules.Manager.rule_health t.manager name with
      | None -> ()
      | Some (fire_count, failures, quarantined) ->
        add "rule %s %d %d %b %s" name fire_count failures quarantined
          (match Cal_rules.Manager.next_fire t.manager name with
          | Some at -> string_of_int at
          | None -> "-"))
    (Cal_rules.Manager.rule_names t.manager);
  Buffer.contents buf

(* --- statistics ------------------------------------------------------ *)

let cache t = t.ctx.Context.cache

(** Counters of the session's materialization cache. *)
let cache_stats t = Cal_cache.stats (cache t)

let cache_hit_rate t = Cal_cache.hit_rate (cache t)

(** Cumulative executor counters (scans, index probes, plan-cache
    traffic) across every query this session's manager ran. *)
let exec_stats t = Cal_rules.Manager.exec_stats t.manager

(** The catalog plan cache's counters. *)
let plan_cache_stats t = Cal_rules.Manager.plan_cache_stats t.manager

(** [(records, flushes)] of the journal — the group-commit amortization
    ratio is records/flushes; [None] on a non-journaled session. *)
let journal_stats t =
  Option.map (fun j -> (Journal.appended j, Journal.flushes j)) t.journal

(** Multi-line session statistics: DBCRON activity, calendar-cache
    effectiveness, and the executor's access-path / plan-cache
    decisions. *)
let stats_summary t =
  let probes, loaded = Cal_rules.Manager.dbcron_stats t.manager in
  let heap_peak = Cal_rules.Manager.dbcron_heap_peak t.manager in
  let c = cache_stats t in
  let e = exec_stats t in
  let p = plan_cache_stats t in
  String.concat "\n"
    [
      Printf.sprintf
        "dbcron: %d probes, %d loads, heap peak %d; cache: %d/%d hits (%.1f%%), %d evictions, %d invalidations"
        probes loaded heap_peak c.Cal_cache.hits
        (c.Cal_cache.hits + c.Cal_cache.misses)
        (100. *. cache_hit_rate t)
        c.Cal_cache.evictions c.Cal_cache.invalidations;
      Printf.sprintf
        "exec: %d scanned, %d seq scans, %d index scans, %d index probes; plan cache: %d hits, %d misses"
        e.Cal_db.Exec.scanned e.Cal_db.Exec.seq_scans e.Cal_db.Exec.index_scans
        e.Cal_db.Exec.index_probes e.Cal_db.Exec.plan_cache_hits
        e.Cal_db.Exec.plan_cache_misses;
      Printf.sprintf
        "plan cache (catalog-wide): %d entries, %d hits, %d misses, %d evictions, %d invalidations"
        p.Cal_db.Qplan.size p.Cal_db.Qplan.hits p.Cal_db.Qplan.misses
        p.Cal_db.Qplan.evictions p.Cal_db.Qplan.invalidations;
      (let batches, rules = Cal_rules.Manager.parallel_stats t.manager in
       Printf.sprintf "parallel: %d domains, %d next-fire batches (%d rules)"
         (Cal_rules.Manager.domains t.manager)
         batches rules);
      (let cb, cf = Cal_rules.Manager.coalesce_stats t.manager in
       Printf.sprintf "shards: %d (%s), %d parallel steps; coalesced: %d batches (%d firings)"
         (Cal_rules.Manager.shards t.manager)
         (match Cal_rules.Manager.pending_kind t.manager with
         | `Wheel -> "wheel"
         | `Heap -> "heap")
         (Cal_rules.Manager.shard_par_steps t.manager)
         cb cf);
      Printf.sprintf "periodic: %d of %d rules probed closed-form (unbounded horizon)"
        (Cal_rules.Manager.periodic_rules t.manager)
        (List.length (Cal_rules.Manager.rule_names t.manager));
    ]
    ^
    match t.journal with
    | None -> ""
    | Some j ->
      let records = Journal.appended j and flushes = Journal.flushes j in
      Printf.sprintf "\njournal: %d records / %d flushes (%.1fx amortization), policy %s"
        records flushes
        (if flushes = 0 then 1.0 else float_of_int records /. float_of_int flushes)
        (Journal.policy_name (Journal.policy j))

(** Civil date of a day chronon in this session. *)
let date_of_day t c = Unit_system.date_of_chronon ~epoch:t.ctx.Context.epoch Granularity.Days c

let day_of_date t d = Unit_system.chronon_of_date ~epoch:t.ctx.Context.epoch Granularity.Days d
