(** The top-level façade: one session = one extensible database with the
    calendar system installed, reproducing the paper's architecture.

    A session owns a simulated clock, a calendar evaluation context, a
    database catalog and a rule manager. Creating it:

    {ul
    {- registers the {e calendar} abstract data type with the database
       (POSTGRES-style object extension);}
    {- creates the CALENDARS system table of Figure 1 (name,
       derivation-script, eval-plan, lifespan, granularity, values);}
    {- installs the calendar resolver, so the query language's
       [on <calendar-expression>] clause and time-based rules evaluate
       through the parser/planner;}
    {- declares date operators, including day-count conventions with
       user-defined semantics for date arithmetic ([day_count],
       [year_frac], [accrued]) and [date('YYYY-MM-DD')].}} *)

open Cal_lang
open Cal_db

type Value.ext += Calendar_v of Calendar.t

type t = {
  ctx : Context.t;
  catalog : Catalog.t;
  manager : Cal_rules.Manager.t;
  clock : Clock.t;
}

exception Session_error of string

let register_calendar_adt () =
  Value.register_adt
    {
      Value.tag = "calendar";
      pp = (function Calendar_v c -> Some (Calendar.to_string c) | _ -> None);
      equal =
        (fun a b ->
          match (a, b) with
          | Calendar_v x, Calendar_v y -> Some (Calendar.equal x y)
          | _ -> None);
      compare = None;
    }

let calendars_schema =
  Schema.make ~table:"calendars"
    [
      { Schema.name = "name"; ty = Schema.TText; valid_time = false };
      { Schema.name = "derivation_script"; ty = Schema.TText; valid_time = false };
      { Schema.name = "eval_plan"; ty = Schema.TText; valid_time = false };
      { Schema.name = "lifespan"; ty = Schema.TInterval; valid_time = false };
      { Schema.name = "granularity"; ty = Schema.TText; valid_time = false };
      { Schema.name = "vals"; ty = Schema.TArray Schema.TInterval; valid_time = false };
    ]

(* Convert a calendar value at [fine] granularity to day chronons (the
   unit valid-time columns use). Day d is included when the interval
   covers any instant of d. *)
let to_day_set (ctx : Context.t) fine set =
  if Granularity.equal fine Granularity.Days then set
  else
    Interval_set.map
      (fun iv ->
        let lo_instant =
          Unit_system.start_of_index ~epoch:ctx.Context.epoch fine
            (Chronon.to_offset (Interval.lo iv))
        in
        let hi_instant =
          Unit_system.start_of_index ~epoch:ctx.Context.epoch fine
            (Chronon.to_offset (Interval.hi iv) + 1)
          - 1
        in
        Interval.make
          (Chronon.of_offset
             (Unit_system.index_of_instant ~epoch:ctx.Context.epoch Granularity.Days lo_instant))
          (Chronon.of_offset
             (Unit_system.index_of_instant ~epoch:ctx.Context.epoch Granularity.Days hi_instant)))
      set

(** Evaluate a calendar expression source to its day chronons. *)
let resolve_days ctx source =
  match Parser.expr source with
  | Error e -> raise (Session_error (Printf.sprintf "bad calendar expression %S: %s" source e))
  | Ok expr ->
    let cal, _ = Interp.eval_expr_planned ctx expr in
    let fine = Gran.finest_of_expr ctx.Context.env expr in
    Interval_set.coalesce (to_day_set ctx fine (Calendar.flatten cal))

let date_of_value ~epoch = function
  | Value.Chronon c -> Unit_system.date_of_chronon ~epoch Granularity.Days c
  | v -> raise (Qexpr.Eval_error ("expected a chronon, got " ^ Value.to_string v))

let register_date_operators (ctx : Context.t) catalog =
  let epoch = ctx.Context.epoch in
  let reg name arity fn = Catalog.register_operator catalog ~name ~arity fn in
  reg "date" 1 (function
    | [ Value.Text s ] -> (
      match Civil.of_string s with
      | Some d -> Value.Chronon (Unit_system.chronon_of_date ~epoch Granularity.Days d)
      | None -> raise (Qexpr.Eval_error ("bad date literal " ^ s)))
    | _ -> Value.Null);
  reg "date_text" 1 (function
    | [ v ] -> Value.Text (Civil.to_string (date_of_value ~epoch v))
    | _ -> Value.Null);
  reg "weekday" 1 (function
    | [ v ] -> Value.Int (Civil.weekday (date_of_value ~epoch v))
    | _ -> Value.Null);
  let convention v =
    match v with
    | Value.Text s -> (
      match Day_count.of_string s with
      | Some c -> c
      | None -> raise (Qexpr.Eval_error ("unknown day-count convention " ^ s)))
    | v -> raise (Qexpr.Eval_error ("expected a convention name, got " ^ Value.to_string v))
  in
  (* User-defined semantics for date arithmetic (section 1): the
     convention argument selects the calendar the arithmetic uses. *)
  reg "day_count" 3 (function
    | [ conv; a; b ] ->
      Value.Int
        (Day_count.day_count (convention conv) (date_of_value ~epoch a) (date_of_value ~epoch b))
    | _ -> Value.Null);
  reg "year_frac" 3 (function
    | [ conv; a; b ] ->
      Value.Float
        (Day_count.year_fraction (convention conv) (date_of_value ~epoch a)
           (date_of_value ~epoch b))
    | _ -> Value.Null);
  reg "accrued" 5 (function
    | [ conv; Value.Float rate; Value.Float face; a; b ] ->
      Value.Float
        (Day_count.accrued_interest ~convention:(convention conv) ~annual_rate:rate ~face
           (date_of_value ~epoch a) (date_of_value ~epoch b))
    | _ -> Value.Null)

let register_calendar_operators ctx catalog =
  Catalog.register_operator catalog ~name:"calendar_contains" ~arity:2 (function
    | [ Value.Text source; Value.Chronon c ] ->
      Value.Bool (Interval_set.contains_chronon (resolve_days ctx source) c)
    | _ -> Value.Null);
  Catalog.register_operator catalog ~name:"calendar_value" ~arity:1 (function
    | [ Value.Text source ] -> (
      match Parser.expr source with
      | Error e -> raise (Qexpr.Eval_error e)
      | Ok expr ->
        let cal, _ = Interp.eval_expr_planned ctx expr in
        Value.Ext ("calendar", Calendar_v cal))
    | _ -> Value.Null)

let create ?(epoch = Unit_system.default_epoch) ?lifespan ?probe_period ?lookahead
    ?probe_strategy ?(cache_capacity = 512) ?domains () =
  register_calendar_adt ();
  let clock = Clock.create () in
  let env = Env.create () in
  let ctx = Context.create ~epoch ?lifespan ~clock ~env ~cache_capacity () in
  let catalog = Catalog.create () in
  ignore (Catalog.create_table catalog calendars_schema);
  Catalog.set_calendar_resolver catalog (resolve_days ctx);
  register_date_operators ctx catalog;
  register_calendar_operators ctx catalog;
  let manager =
    Cal_rules.Manager.create ?probe_period ?lookahead ?probe_strategy ?domains ctx catalog
  in
  { ctx; catalog; manager; clock }

(* --- CALENDARS catalog maintenance ---------------------------------- *)

let lifespan_interval t =
  let d1, d2 = t.ctx.Context.lifespan in
  Unit_system.chronon_span_of_dates ~epoch:t.ctx.Context.epoch Granularity.Days d1 d2

let calendars_table t = Catalog.table t.catalog "calendars"

let catalog_row t ~name ~script ~plan ~granularity ~values =
  ignore
    (Table.insert (calendars_table t)
       [|
         Value.Text name;
         Value.Text script;
         Value.Text plan;
         Value.Interval (lifespan_interval t);
         Value.Text (Granularity.to_string granularity);
         Value.Array (Array.of_list (List.map (fun iv -> Value.Interval iv) values));
       |])

(** Define a derived calendar from a derivation script (Figure 1's
    Tuesdays row). The script is parsed; its evaluation plan is compiled
    and stored in the CALENDARS table. *)
let define_calendar t ~name ~script =
  if Env.mem t.ctx.Context.env name then Error (Printf.sprintf "calendar %s already exists" name)
  else
    match Env.define_script t.ctx.Context.env ~name ~source:script with
    | Error e -> Error e
    | Ok () -> (
      let env = t.ctx.Context.env in
      let granularity =
        match Gran.of_expr env (Ast.Ident name) with
        | Some g -> g
        | None -> Granularity.Days
      in
      (* The eval-plan: factorize-and-plan the script when it is
         straight-line; control-flow scripts are marked procedural. *)
      let plan =
        match Planner.plan t.ctx (Ast.Ident name) with
        | plan -> Plan.to_string plan
        | exception _ -> "<procedural script>"
      in
      catalog_row t ~name ~script ~plan ~granularity ~values:[];
      Ok ())

(** Define a calendar by explicit values (e.g. HOLIDAYS), stored in the
    CALENDARS table's [vals] column. *)
let define_stored_calendar t ~name ?(granularity = Granularity.Days) pairs =
  let values = Interval_set.of_pairs pairs in
  Env.define_stored t.ctx.Context.env ~name ~granularity values;
  catalog_row t ~name ~script:"" ~plan:"" ~granularity ~values:(Interval_set.to_list values)

(** The CALENDARS tuple for one calendar, as in Figure 1. *)
let calendar_row t name =
  Table.fold (calendars_table t)
    (fun acc _ tuple ->
      match tuple.(0) with
      | Value.Text n when String.lowercase_ascii n = String.lowercase_ascii name -> Some tuple
      | _ -> acc)
    None

(* --- evaluation and queries ----------------------------------------- *)

(** Evaluate calendar-language input (expression or script). *)
let eval t source = Interp.eval_string t.ctx source

(** Evaluate a calendar expression to its interval value. *)
let eval_calendar t source =
  match Parser.expr source with
  | Error e -> Error e
  | Ok expr -> (
    match Interp.eval_expr_planned t.ctx expr with
    | cal, _ -> Ok cal
    | exception exn -> Error (Printexc.to_string exn))

(** Run a query-language command (rules dispatch to the manager). *)
let query t source = Cal_rules.Manager.run_query t.manager source

let query_exn t source =
  match query t source with
  | Ok r -> r
  | Error e -> raise (Session_error e)

(* --- persistence ------------------------------------------------------ *)

(* A saved session is a sectioned text file:
     %%calendar <name>        followed by the derivation script
     %%stored <name> <gran>   followed by endpoint pairs (a,b),(c,d)
     %%schema                 followed by a query-language dump script
     %%rules                  followed by define-rule commands
   Section payloads are the lines up to the next %% header. *)

let system_tables = [ "calendars"; "rule_info"; "rule_time" ]

(** Render the session (calendars, user tables with their indexes and
    rows, rules) as a loadable script. @raise Dump.Dump_error on
    undumpable values (registered-ADT columns). *)
let save t =
  let buf = Buffer.create 4096 in
  Table.iter (calendars_table t) (fun _ tuple ->
      match tuple with
      | [| Value.Text name; Value.Text script; _; _; Value.Text gran; Value.Array vals |] ->
        if script <> "" then
          Buffer.add_string buf (Printf.sprintf "%%%%calendar %s
%s
" name script)
        else
          Buffer.add_string buf
            (Printf.sprintf "%%%%stored %s %s
%s
" name gran
               (String.concat ","
                  (List.map
                     (function
                       | Value.Interval iv ->
                         Printf.sprintf "(%d,%d)" (Interval.lo iv) (Interval.hi iv)
                       | _ -> "")
                     (Array.to_list vals))))
      | _ -> ());
  Buffer.add_string buf "%%schema
";
  Buffer.add_string buf (Dump.dump t.catalog ~skip:system_tables ());
  Buffer.add_string buf "%%rules
";
  List.iter
    (fun r -> Buffer.add_string buf (Qast.to_string (Qast.Define_rule r) ^ ";
"))
    (Cal_rules.Manager.rules t.manager);
  Buffer.contents buf

let parse_pairs s =
  (* "(a,b),(c,d)" *)
  let s = String.trim s in
  if s = "" then []
  else
    String.split_on_char ')' s
    |> List.filter_map (fun chunk ->
           let chunk = String.trim chunk in
           let chunk =
             if String.length chunk > 0 && (chunk.[0] = ',' || chunk.[0] = '(') then
               String.sub chunk 1 (String.length chunk - 1)
             else chunk
           in
           let chunk =
             if String.length chunk > 0 && chunk.[0] = '(' then
               String.sub chunk 1 (String.length chunk - 1)
             else chunk
           in
           match String.split_on_char ',' chunk with
           | [ a; b ] -> (
             match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
             | Some a, Some b -> Some (a, b)
             | _ -> None)
           | _ -> None)

(** Load a script produced by {!save} into this (fresh) session. *)
let load t script =
  let lines = String.split_on_char '
' script in
  (* Split into (header, payload-lines) sections. *)
  let sections = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (header, body) -> sections := (header, String.concat "
" (List.rev body)) :: !sections
    | None -> ()
  in
  List.iter
    (fun line ->
      if String.length line >= 2 && String.sub line 0 2 = "%%" then begin
        flush ();
        current := Some (String.sub line 2 (String.length line - 2), [])
      end
      else
        match !current with
        | Some (h, body) -> current := Some (h, line :: body)
        | None -> ())
    lines;
  flush ();
  let apply (header, payload) =
    match String.split_on_char ' ' (String.trim header) with
    | [ "calendar"; name ] -> define_calendar t ~name ~script:(String.trim payload)
    | [ "stored"; name; gran ] -> (
      match Granularity.of_string gran with
      | Some granularity ->
        define_stored_calendar t ~name ~granularity (parse_pairs payload);
        Ok ()
      | None -> Error ("unknown granularity " ^ gran))
    | [ "schema" ] -> (
      match Dump.load t.catalog payload with Ok _ -> Ok () | Error e -> Error e)
    | [ "rules" ] -> (
      match Qparser.program payload with
      | Error e -> Error e
      | Ok queries ->
        List.fold_left
          (fun acc q ->
            match (acc, q) with
            | Error _, _ -> acc
            | Ok (), Qast.Define_rule r -> Cal_rules.Manager.define t.manager r
            | Ok (), _ -> Error "rules section may only contain rule definitions")
          (Ok ()) queries)
    | _ -> Error ("unknown section " ^ header)
  in
  List.fold_left
    (fun acc section -> match acc with Error _ -> acc | Ok () -> apply section)
    (Ok ())
    (List.rev !sections)

(* --- time ------------------------------------------------------------ *)

let now t = Clock.now t.clock
let today t = Clock.date ~epoch:t.ctx.Context.epoch t.clock
let advance_to t instant = Cal_rules.Manager.advance_to t.manager instant
let advance_days t days = Cal_rules.Manager.advance_days t.manager days

let advance_to_date t date =
  let target = (Civil.rata_die date - Civil.rata_die t.ctx.Context.epoch) * 86400 in
  advance_to t target

let alerts t = Cal_rules.Manager.alerts t.manager
let firings t = Cal_rules.Manager.firings t.manager

(* --- statistics ------------------------------------------------------ *)

let cache t = t.ctx.Context.cache

(** Counters of the session's materialization cache. *)
let cache_stats t = Cal_cache.stats (cache t)

let cache_hit_rate t = Cal_cache.hit_rate (cache t)

(** Cumulative executor counters (scans, index probes, plan-cache
    traffic) across every query this session's manager ran. *)
let exec_stats t = Cal_rules.Manager.exec_stats t.manager

(** The catalog plan cache's counters. *)
let plan_cache_stats t = Cal_rules.Manager.plan_cache_stats t.manager

(** Multi-line session statistics: DBCRON activity, calendar-cache
    effectiveness, and the executor's access-path / plan-cache
    decisions. *)
let stats_summary t =
  let probes, loaded = Cal_rules.Manager.dbcron_stats t.manager in
  let heap_peak = Cal_rules.Manager.dbcron_heap_peak t.manager in
  let c = cache_stats t in
  let e = exec_stats t in
  let p = plan_cache_stats t in
  String.concat "\n"
    [
      Printf.sprintf
        "dbcron: %d probes, %d loads, heap peak %d; cache: %d/%d hits (%.1f%%), %d evictions, %d invalidations"
        probes loaded heap_peak c.Cal_cache.hits
        (c.Cal_cache.hits + c.Cal_cache.misses)
        (100. *. cache_hit_rate t)
        c.Cal_cache.evictions c.Cal_cache.invalidations;
      Printf.sprintf
        "exec: %d scanned, %d seq scans, %d index scans, %d index probes; plan cache: %d hits, %d misses"
        e.Cal_db.Exec.scanned e.Cal_db.Exec.seq_scans e.Cal_db.Exec.index_scans
        e.Cal_db.Exec.index_probes e.Cal_db.Exec.plan_cache_hits
        e.Cal_db.Exec.plan_cache_misses;
      Printf.sprintf
        "plan cache (catalog-wide): %d entries, %d hits, %d misses, %d evictions, %d invalidations"
        p.Cal_db.Qplan.size p.Cal_db.Qplan.hits p.Cal_db.Qplan.misses
        p.Cal_db.Qplan.evictions p.Cal_db.Qplan.invalidations;
      (let batches, rules = Cal_rules.Manager.parallel_stats t.manager in
       Printf.sprintf "parallel: %d domains, %d next-fire batches (%d rules)"
         (Cal_rules.Manager.domains t.manager)
         batches rules);
    ]

(** Civil date of a day chronon in this session. *)
let date_of_day t c = Unit_system.date_of_chronon ~epoch:t.ctx.Context.epoch Granularity.Days c

let day_of_date t d = Unit_system.chronon_of_date ~epoch:t.ctx.Context.epoch Granularity.Days d
