(** Session-scoped LRU cache of materialized calendar values — the
    cross-query half of the paper's common-subexpression sharing (§4).

    The planner already shares calendars {e within} one expression; this
    cache shares them {e across} expressions, rules and queries of one
    session. Entries are keyed by a canonical string (built by
    {!Cal_lang.Canon}: structurally normalized sub-expression plus the
    evaluation bounds) and carry the uppercased calendar names they
    depend on, so rebinding a name in the environment invalidates exactly
    the entries whose value could change.

    The cache is generic in the stored value so the interval layer does
    not depend on the calendar layer; the language layer instantiates it
    at [Calendar.t].

    A capacity of 0 degrades to a pass-through: [add] stores nothing and
    [find] always misses (without counting), so evaluation strategies
    built on the cache behave exactly like their uncached counterparts. *)

type 'v t

(** Monotonic counters; never reset by eviction or invalidation. *)
type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;  (** entries dropped by capacity pressure *)
  mutable invalidations : int;  (** entries dropped by [invalidate_dep] *)
  mutable insertions : int;
}

(** [create ~capacity ()] — an empty cache holding at most [capacity]
    entries (default 512). @raise Invalid_argument if negative. *)
val create : ?capacity:int -> unit -> 'v t

val capacity : 'v t -> int

(** [set_capacity t n] resizes, evicting least-recently-used entries
    until at most [n] remain. Setting 0 clears the cache and turns it
    into a pass-through. *)
val set_capacity : 'v t -> int -> unit

(** Number of live entries. *)
val length : 'v t -> int

(** [find t key] returns the cached value and promotes the entry to
    most-recently-used; counts a hit or a miss (except at capacity 0,
    which returns [None] without counting). *)
val find : 'v t -> string -> 'v option

(** [peek t key] — like {!find} but with no promotion and no counter
    update (for tests and introspection). *)
val peek : 'v t -> string -> 'v option

(** [add t ~key ~deps v] inserts (or replaces) an entry, evicting from
    the least-recently-used end when over capacity. [deps] are the
    uppercased calendar names the value was derived from. No-op at
    capacity 0. *)
val add : 'v t -> key:string -> deps:string list -> 'v -> unit

(** [invalidate_dep t name] drops every entry depending on [name]
    (case-insensitive); returns how many were dropped. *)
val invalidate_dep : 'v t -> string -> int

(** Drop everything (counters are kept). *)
val clear : 'v t -> unit

(** Live keys, most-recently-used first. *)
val keys : 'v t -> string list

(** Live [(key, deps, value)] triples, most-recently-used first. [deps]
    are already uppercased. Values are shared, not copied — fine for the
    immutable calendar values this cache holds. *)
val entries : 'v t -> (string * string list * 'v) list

(** [seed_from dst ~src] copies every entry of [src] into [dst],
    preserving recency order. Used to give each worker domain a private
    clone of the session cache (the cache itself is not thread-safe;
    the immutable cached values can be shared across domains). *)
val seed_from : 'v t -> src:'v t -> unit

(** [merge_lookup_stats ~into s] folds the hit/miss counters of a worker
    clone's stats into [into] when the worker joins; eviction,
    invalidation and insertion counters of the clone are transient
    bookkeeping and are deliberately dropped. *)
val merge_lookup_stats : into:stats -> stats -> unit

val stats : 'v t -> stats

(** [hit_rate t] in [0..1]; 0 when never consulted. *)
val hit_rate : 'v t -> float

val pp_stats : Format.formatter -> 'v t -> unit
