(* LRU cache: hash table for lookup plus an intrusive doubly-linked list
   for recency order. All operations are O(1) except [invalidate_dep] and
   [keys], which walk the list. *)

type 'v node = {
  key : string;
  value : 'v;
  deps : string list;  (* uppercased *)
  mutable prev : 'v node option;  (* towards most-recently-used *)
  mutable next : 'v node option;  (* towards least-recently-used *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable insertions : int;
}

type 'v t = {
  mutable capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  stats : stats;
}

let create ?(capacity = 512) () =
  if capacity < 0 then invalid_arg "Cal_cache.create: negative capacity";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    mru = None;
    lru = None;
    stats = { hits = 0; misses = 0; evictions = 0; invalidations = 0; insertions = 0 };
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let stats t = t.stats

(* --- recency list maintenance -------------------------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some n ->
    drop t n;
    t.stats.evictions <- t.stats.evictions + 1

(* --- public operations ---------------------------------------------- *)

let find t key =
  if t.capacity = 0 then None
  else
    match Hashtbl.find_opt t.table key with
    | Some n ->
      t.stats.hits <- t.stats.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value
    | None ->
      t.stats.misses <- t.stats.misses + 1;
      None

let peek t key = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table key)

let add t ~key ~deps value =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table key with Some old -> drop t old | None -> ());
    let n = { key; value; deps = List.map String.uppercase_ascii deps; prev = None; next = None } in
    push_front t n;
    Hashtbl.replace t.table key n;
    t.stats.insertions <- t.stats.insertions + 1;
    while Hashtbl.length t.table > t.capacity do
      evict_lru t
    done
  end

let to_nodes t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n :: acc) n.next
  in
  go [] t.mru

let keys t = List.map (fun n -> n.key) (to_nodes t)

let entries t = List.map (fun n -> (n.key, n.deps, n.value)) (to_nodes t)

let seed_from dst ~src =
  (* LRU-to-MRU order, so dst ends with src's recency order. *)
  List.iter (fun (key, deps, value) -> add dst ~key ~deps value) (List.rev (entries src))

let merge_lookup_stats ~into s =
  into.hits <- into.hits + s.hits;
  into.misses <- into.misses + s.misses

let invalidate_dep t name =
  let name = String.uppercase_ascii name in
  let doomed = List.filter (fun n -> List.mem name n.deps) (to_nodes t) in
  List.iter (drop t) doomed;
  let k = List.length doomed in
  t.stats.invalidations <- t.stats.invalidations + k;
  k

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let set_capacity t n =
  if n < 0 then invalid_arg "Cal_cache.set_capacity: negative capacity";
  t.capacity <- n;
  if n = 0 then clear t
  else
    while Hashtbl.length t.table > n do
      evict_lru t
    done

let hit_rate t =
  let s = t.stats in
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let pp_stats ppf t =
  let s = t.stats in
  Format.fprintf ppf "entries=%d/%d hits=%d misses=%d evictions=%d invalidations=%d hit-rate=%.2f"
    (length t) t.capacity s.hits s.misses s.evictions s.invalidations (hit_rate t)
