(** Regular time-series: observations whose timepoints are {e implied} by
    a calendar expression, so no timestamps need to be stored (section 1:
    the GNP series is valued on the last day of every quarter — the
    calendar generates those days on request).

    A series pairs a calendar expression with a plain value array; lookup
    by chronon resolves through the materialized timepoints. *)

open Cal_lang

type t = {
  expr : Ast.expr;
  source : string;  (** the defining calendar expression, verbatim *)
  fine : Granularity.t;
  timepoints : Interval.t array;  (** ascending, one per observation *)
  values : float array;
}

exception Series_error of string

let materialize ctx ?window expr =
  let cal, keep =
    match window with
    | Some w -> (fst (Interp.eval_expr_naive ctx ~window:w expr), fun _ -> true)
    | None ->
      (* Default evaluation pads beyond the lifespan so boundary units are
         whole; series timepoints, however, live inside the lifespan. *)
      let fine = Gran.finest_of_expr ctx.Context.env expr in
      let lifespan = Context.lifespan_in ctx fine in
      (fst (Interp.eval_expr_planned ctx expr), fun iv -> Interval.during iv lifespan)
  in
  Array.of_list (List.filter keep (Interval_set.to_list (Calendar.flatten cal)))

(** [create ctx ~expr values] builds a series whose k-th value is observed
    at the k-th interval of the calendar. The calendar must produce at
    least as many timepoints as there are values; extra timepoints are
    future observation slots and are dropped. *)
let create ctx ?window ~expr values =
  match Parser.expr expr with
  | Error e -> Error e
  | Ok ast -> (
    match materialize ctx ?window ast with
    | exception exn -> Error (Printexc.to_string exn)
    | points ->
      if Array.length points < Array.length values then
        Error
          (Printf.sprintf "calendar yields %d timepoints but %d values given"
             (Array.length points) (Array.length values))
      else
        Ok
          {
            expr = ast;
            source = expr;
            fine = Gran.finest_of_expr ctx.Context.env ast;
            timepoints = Array.sub points 0 (Array.length values);
            values;
          })

let length t = Array.length t.values
let source t = t.source
let timepoint t i = t.timepoints.(i)
let value t i = t.values.(i)

let to_assoc t =
  Array.to_list (Array.map2 (fun p v -> (p, v)) t.timepoints t.values)

(** Index of the observation whose timepoint interval contains [c]. *)
let index_of_chronon t c =
  let lo = ref 0 and hi = ref (Array.length t.timepoints - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let iv = t.timepoints.(mid) in
    if Interval.contains iv c then begin
      found := Some mid;
      lo := !hi + 1
    end
    else if Chronon.compare c (Interval.lo iv) < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

let at t c = Option.map (fun i -> t.values.(i)) (index_of_chronon t c)

(* First index with timepoint low endpoint >= v ([n] when none); the
   timepoints array is ascending, so candidates for containment in an
   interval form the contiguous slice starting here. *)
let lower_bound_lo points v =
  let lo = ref 0 and hi = ref (Array.length points) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Chronon.compare (Interval.lo points.(mid)) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(** Restrict the series to observations whose timepoint lies during some
    interval of [by] (e.g. slice a daily series to one quarter). *)
let slice t (by : Interval_set.t) =
  let points = t.timepoints in
  let n = Array.length points in
  (* Binary-search each slicing interval's candidate range instead of
     testing every (timepoint, interval) pair; the flags keep the result
     in timepoint order and dedup overlapping slicing intervals. *)
  let keep = Array.make n false in
  Interval_set.iter
    (fun iv ->
      let i = ref (lower_bound_lo points (Interval.lo iv)) in
      while !i < n && Chronon.compare (Interval.lo points.(!i)) (Interval.hi iv) <= 0 do
        if Interval.during points.(!i) iv then keep.(!i) <- true;
        incr i
      done)
    by;
  let idxs = List.filter (fun i -> keep.(i)) (List.init n Fun.id) in
  {
    t with
    timepoints = Array.of_list (List.map (fun i -> points.(i)) idxs);
    values = Array.of_list (List.map (fun i -> t.values.(i)) idxs);
  }

type agg =
  | Sum
  | Mean
  | Min
  | Max
  | Last
  | First
  | Count

let apply_agg agg vs =
  match (agg, vs) with
  | _, [] -> None
  | Count, _ -> Some (float_of_int (List.length vs))
  | Sum, _ -> Some (List.fold_left ( +. ) 0. vs)
  | Mean, _ -> Some (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))
  | Min, v :: rest -> Some (List.fold_left Float.min v rest)
  | Max, v :: rest -> Some (List.fold_left Float.max v rest)
  | First, v :: _ -> Some v
  | Last, _ -> Some (List.nth vs (List.length vs - 1))

(** Aggregate observations per period of [periods] (e.g. monthly means of
    a daily series). Periods without observations are skipped. *)
let aggregate t ~periods ~agg =
  let points = t.timepoints in
  let n = Array.length points in
  List.filter_map
    (fun period ->
      let vs = ref [] in
      let i = ref (lower_bound_lo points (Interval.lo period)) in
      while !i < n && Chronon.compare (Interval.lo points.(!i)) (Interval.hi period) <= 0 do
        if Interval.during points.(!i) period then vs := t.values.(!i) :: !vs;
        incr i
      done;
      Option.map (fun v -> (period, v)) (apply_agg agg (List.rev !vs)))
    (Interval_set.to_list periods)

(** Pointwise combination of two series aligned on identical timepoints;
    observations present in only one series are dropped. *)
let map2 f a b =
  let tbl = Hashtbl.create (length b) in
  Array.iteri (fun i p -> Hashtbl.replace tbl (Interval.lo p, Interval.hi p) i) b.timepoints;
  let keep =
    Array.to_list a.timepoints
    |> List.mapi (fun i p -> (i, p))
    |> List.filter_map (fun (i, p) ->
           match Hashtbl.find_opt tbl (Interval.lo p, Interval.hi p) with
           | Some j -> Some (p, f a.values.(i) b.values.(j))
           | None -> None)
  in
  {
    a with
    timepoints = Array.of_list (List.map fst keep);
    values = Array.of_list (List.map snd keep);
  }
