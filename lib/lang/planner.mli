(** Plan construction (parser step 5): choose the generation unit, bound
    every [generate] by the demand flowing down from selection nodes (the
    paper's "simple look-ahead"), and share calendars used more than
    once.

    Demands are computed top-down against a bottom-up [bound] (the
    smallest statically-known window containing an expression's values):
    the root demands the padded lifespan, a label selection such as
    [1993/YEARS] narrows its operand to that year, and the left operand
    of a foreach is narrowed to the relation window of its right
    operand's bound — which is how "calendars need only be generated for
    the time interval 1993" propagates in Example 1. Shared subexpressions
    take the hull of their demands and are emitted once. *)

exception Plan_error of string

(** Upper bound of one [coarse] unit expressed in [fine] chronons, plus
    slack — the window padding that keeps boundary-straddling units
    whole. *)
val pad_for : fine:Granularity.t -> Granularity.t list -> int

(** [streamable env e] decides whether [e] may be evaluated by the
    chunked streaming path ([Interp.stream_expr]): true when every
    sub-result is window-local, i.e. an interval's membership depends
    only on values within one pad of it. Basic/stored calendars,
    containment-style foreach, label selection, index selection directly
    over a foreach, and element-wise union/diff qualify; ordering ops
    ([Before]/[Meets]/[Le]/[Contains]), [caloperate], [today], derived
    scripts and absolute index selection do not. Conservative: [false]
    means "use the materializing path", never "wrong". *)
val streamable : Env.t -> Ast.expr -> bool

(** Compile an expression to a bounded register program.
    @raise Plan_error for unsupported label selections. *)
val plan : Context.t -> Ast.expr -> Plan.t

(** [periodic env e] — the closed-form translatability gate
    ({!Periodic.translatable}): true when [e] compiles to the minimal
    periodic normal form, so next-fire probes need no generation, no
    cache window and no lifespan bound. Strictly stronger than
    {!streamable} on the fragment it accepts (literals and stored
    calendars stream but are not periodic). *)
val periodic : Env.t -> Ast.expr -> bool

(** Compile to a single {!Plan.Pset} instruction around the periodic
    normal form; [None] when {!periodic} rejects the expression or the
    form is unrepresentable (callers fall back to {!plan}). Without
    [window] the plan materializes over the same padded-lifespan horizon
    as {!plan}, so both strategies agree on interior units. *)
val plan_periodic : Context.t -> ?window:Interval.t -> Ast.expr -> Plan.t option
