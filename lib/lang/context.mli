(** Evaluation context: the environment, the session epoch, the calendar
    lifespan (default generation bounds) and the simulated clock. *)

type t = {
  env : Env.t;
  epoch : Civil.date;  (** day chronon 1 starts here *)
  lifespan : Civil.date * Civil.date;
  clock : Clock.t option;
  max_intervals : int;  (** generation guard per [generate] call *)
  fuel : int;  (** iteration bound for script [while] loops *)
  cache : Calendar.t Cal_cache.t;
      (** materialization cache shared by every evaluation strategy;
          capacity 0 (the default) disables it *)
}

(** Defaults: epoch Jan 1 1987 (the paper's system start date), a 40-year
    lifespan from the epoch year, no clock, 1M-interval generation guard,
    10k loop fuel, cache disabled ([cache_capacity] 0). Rebinding or
    removing a name in [env] invalidates the cache entries that depend on
    it. *)
val create :
  ?epoch:Civil.date ->
  ?lifespan:Civil.date * Civil.date ->
  ?clock:Clock.t ->
  ?max_intervals:int ->
  ?fuel:int ->
  ?cache_capacity:int ->
  ?env:Env.t ->
  unit ->
  t

(** [with_cache t cache] — [t] with its materialization cache swapped
    for [cache] and {e no} env-change hook registered, for short-lived
    per-domain evaluation contexts (the session cache is not
    thread-safe; workers evaluate against private clones). *)
val with_cache : t -> Calendar.t Cal_cache.t -> t

(** Lifespan expressed as an interval of [g]-chronons. *)
val lifespan_in : t -> Granularity.t -> Interval.t

(** The day chronon for "now". @raise Failure without a clock. *)
val today_exn : t -> Chronon.t
