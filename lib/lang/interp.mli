(** Evaluation of calendar expressions and scripts.

    Three strategies coexist:
    {ul
    {- {!eval_expr_naive} — the reference semantics: every basic calendar
       is generated over the whole (padded) lifespan, mirroring an
       unoptimized system;}
    {- {!eval_expr_planned} — compiles through {!Planner} and executes the
       bounded plan, the paper's optimized path;}
    {- {!eval_expr_cached} — naive semantics through the context's
       session-scoped materialization cache: sub-expressions are keyed by
       canonical form ({!Canon}) plus evaluation bounds, so repeated
       probes and rules sharing sub-expressions reuse materializations
       instead of regenerating them.}}

    All three agree up to [Calendar.equal] (a qcheck property in
    [test/test_props.ml]) and report {!stats} so benchmarks can compare
    generated interval counts directly. *)

type value =
  | VCal of Calendar.t
  | VStr of string  (** an alert message from [return ("...")] *)

type stats = {
  mutable generated_intervals : int;
  mutable gen_calls : int;
  mutable load_calls : int;
  mutable instr_count : int;
  mutable cache_hits : int;  (** materialization-cache hits this evaluation *)
  mutable cache_misses : int;  (** cacheable sub-expressions computed fresh *)
}

val fresh_stats : unit -> stats

(** Raised by [while (cond) ;] when the condition still holds: the script
    suspends until (simulated) time moves — DBCRON-style alerts re-enter
    it on later probes. *)
exception Waiting

(** A bodied [while] exceeded the context's fuel. *)
exception Fuel_exhausted

exception Eval_error of string

(** Reference evaluation over the padded lifespan (or an explicit
    [window], used as given — boundary units clipped). *)
val eval_expr_naive : Context.t -> ?window:Interval.t -> Ast.expr -> Calendar.t * stats

(** Optimized evaluation through the planner. *)
val eval_expr_planned : Context.t -> Ast.expr -> Calendar.t * stats

(** Closed-form evaluation through {!Planner.plan_periodic}: the
    expression's minimal periodic normal form materialized over the
    window (default: the padded lifespan) with no [generate] calls.
    [None] when the expression is outside the translatable fragment.
    Window-edge instances are kept whole rather than clipped, so
    equality with the other strategies holds on every interval contained
    in the window interior (the differential property in
    [test/test_periodic.ml]). *)
val eval_expr_periodic : Context.t -> ?window:Interval.t -> Ast.expr -> (Calendar.t * stats) option

(** Naive semantics through the context's materialization cache
    ({!Context.t.cache}): agrees with {!eval_expr_naive} on the same
    window, but sub-expressions whose canonical form was already
    materialized over those bounds are reused — [gen_calls] drops and
    [cache_hits] counts the reuses. With the cache disabled (capacity 0,
    the [Context.create] default) this {e is} naive evaluation. *)
val eval_expr_cached : Context.t -> ?window:Interval.t -> Ast.expr -> Calendar.t * stats

(** [stream_expr ctx ?from_ e] lazily enumerates the flattened intervals
    of [e] in ascending low-endpoint order, starting with the first
    interval whose low endpoint is at or after [from_] (default: the
    lifespan start) and ending one pad past the lifespan. Evaluation is
    chunked: each pull materializes at most one padded, quantized window
    through the materialization cache, so "first interval ≥ t" probes
    touch a handful of units instead of the whole lifespan. Sound only
    for expressions {!Planner.streamable} accepts. [stats] accumulates
    across chunks when supplied. *)
val stream_expr :
  Context.t -> ?stats:stats -> ?from_:Chronon.t -> Ast.expr -> Interval.t Seq.t

(** Execute a compiled plan. *)
val run_plan : Context.t -> Plan.t -> Calendar.t * stats

(** Run a script (assignments, [if], [while], [return]); [None] when it
    falls off the end without returning.
    @raise Waiting / Fuel_exhausted / Eval_error *)
val exec_script : Context.t -> ?window:Interval.t -> Ast.script -> value option * stats

(** Parse-and-evaluate convenience: tries an expression first (planned),
    then a script. *)
val eval_string : Context.t -> string -> (value, string) result
