(** Evaluation context: the environment, the session epoch, the calendar's
    lifespan (default generation bounds) and the simulated clock. *)

type t = {
  env : Env.t;
  epoch : Civil.date;
  lifespan : Civil.date * Civil.date;
  clock : Clock.t option;
  max_intervals : int;
  fuel : int;  (** iteration bound for script [while] loops *)
  cache : Calendar.t Cal_cache.t;
}

let create ?(epoch = Unit_system.default_epoch) ?lifespan ?clock
    ?(max_intervals = 1_000_000) ?(fuel = 10_000) ?(cache_capacity = 0) ?env () =
  let lifespan =
    match lifespan with
    | Some l -> l
    | None ->
      (* Default lifespan: 40 years starting at the epoch year. *)
      ( Civil.make epoch.Civil.year 1 1,
        Civil.make (epoch.Civil.year + 39) 12 31 )
  in
  let env = match env with Some e -> e | None -> Env.create () in
  let cache = Cal_cache.create ~capacity:cache_capacity () in
  (* Rebinding a calendar name drops every cached materialization that
     was derived from it. *)
  Env.on_change env (fun name -> ignore (Cal_cache.invalidate_dep cache name));
  { env; epoch; lifespan; clock; max_intervals; fuel; cache }

(** A transient view of [t] whose materializations go through [cache]
    instead of the session cache. No env-change hook is registered: the
    clone is meant for short-lived read-only evaluation (one parallel
    batch in a worker domain), and a hook per clone would accumulate on
    the shared environment. *)
let with_cache t cache = { t with cache }

(** Lifespan expressed as an interval of [g]-chronons. *)
let lifespan_in t g =
  let d1, d2 = t.lifespan in
  Unit_system.chronon_span_of_dates ~epoch:t.epoch g d1 d2

(** The day chronon for "now"; requires a clock. *)
let today_exn t =
  match t.clock with
  | Some c -> Clock.today ~epoch:t.epoch c
  | None -> failwith "calendar context has no clock: `today' is undefined"
