(* Canonical forms are used only to build cache keys, never evaluated, so
   every rewrite here must be sound up to Calendar.equal: if
   [canon a = canon b] then naive evaluation of [a] and [b] over the same
   bounds produces structurally equal calendars. Union is the only
   operator rewritten beyond its operands — element-wise calendar union
   is associative, commutative and idempotent both in the component-wise
   case (equal-length nodes recurse) and in the flattening fallback
   (interval-set union is a sorted set merge). *)

let sel_atoms atoms =
  List.map
    (function
      | Ast.Nth i -> Calendar.Nth i
      | Ast.Last -> Calendar.Last
      | Ast.Range (a, b) -> Calendar.Range (a, b))
    atoms

(* Total order on canonical atoms: Nth < Last < Range, then by value. *)
let atom_compare a b =
  let rank = function Ast.Nth _ -> 0 | Ast.Last -> 1 | Ast.Range _ -> 2 in
  match (a, b) with
  | Ast.Nth x, Ast.Nth y -> Int.compare x y
  | Ast.Range (a1, b1), Ast.Range (a2, b2) ->
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
  | _ -> Int.compare (rank a) (rank b)

(* Unambiguous serialization; assumes the expression is already
   canonical (it never re-sorts). *)
let rec ser buf e =
  match e with
  | Ast.Ident n ->
    Buffer.add_string buf "i:";
    Buffer.add_string buf n
  | Ast.Lit pairs ->
    Buffer.add_string buf "l:";
    List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "(%d,%d)" a b)) pairs
  | Ast.Select (Ast.Index atoms, inner) ->
    Buffer.add_string buf "s[";
    List.iter
      (fun a ->
        Buffer.add_string buf
          (match a with
          | Ast.Nth i -> string_of_int i
          | Ast.Last -> "n"
          | Ast.Range (a, b) -> Printf.sprintf "%d..%d" a b);
        Buffer.add_char buf ',')
      atoms;
    Buffer.add_string buf "]/";
    ser buf inner
  | Ast.Select (Ast.Label x, inner) ->
    Buffer.add_string buf (Printf.sprintf "L%d/" x);
    ser buf inner
  | Ast.Foreach { strict; op; lhs; rhs } ->
    Buffer.add_char buf 'f';
    Buffer.add_char buf (if strict then ':' else '.');
    Buffer.add_string buf (Listop.to_string op);
    Buffer.add_char buf '(';
    ser buf lhs;
    Buffer.add_char buf ';';
    ser buf rhs;
    Buffer.add_char buf ')'
  | Ast.Union (a, b) ->
    Buffer.add_string buf "u(";
    ser buf a;
    Buffer.add_char buf ';';
    ser buf b;
    Buffer.add_char buf ')'
  | Ast.Diff (a, b) ->
    Buffer.add_string buf "d(";
    ser buf a;
    Buffer.add_char buf ';';
    ser buf b;
    Buffer.add_char buf ')'
  | Ast.Calop { counts; arg } ->
    Buffer.add_string buf "c[";
    List.iter (fun c -> Buffer.add_string buf (string_of_int c); Buffer.add_char buf ',') counts;
    Buffer.add_string buf "](";
    ser buf arg;
    Buffer.add_char buf ')'

let to_string e =
  let buf = Buffer.create 64 in
  ser buf e;
  Buffer.contents buf

let rec canon e =
  match e with
  | Ast.Ident n -> Ast.Ident (String.uppercase_ascii n)
  | Ast.Lit pairs ->
    (* Normalize to the sorted, deduplicated form of_pairs materializes. *)
    Ast.Lit (Interval_set.to_pairs (Interval_set.of_pairs pairs))
  | Ast.Select (Ast.Index atoms, inner) -> (
    let atoms = List.sort_uniq atom_compare atoms in
    match canon inner with
    | Ast.Lit pairs as inner' -> (
      (* Constant fold: selection over a literal is static. Selection of a
         sorted leaf is a sorted sub-leaf, so the folded literal
         materializes to exactly the selection's value. *)
      match Calendar.select (sel_atoms atoms) (Calendar.of_pairs pairs) with
      | Calendar.Leaf s -> Ast.Lit (Interval_set.to_pairs s)
      | Calendar.Node _ -> Ast.Select (Ast.Index atoms, inner'))
    | inner' -> Ast.Select (Ast.Index atoms, inner'))
  | Ast.Select (Ast.Label x, inner) -> Ast.Select (Ast.Label x, canon inner)
  | Ast.Foreach { strict; op; lhs; rhs } ->
    Ast.Foreach { strict; op; lhs = canon lhs; rhs = canon rhs }
  | Ast.Union _ ->
    (* Flatten the union spine, canonicalize operands, sort and dedup. *)
    let rec operands e acc =
      match e with
      | Ast.Union (a, b) -> operands a (operands b acc)
      | e -> canon e :: acc
    in
    let ops =
      List.sort_uniq
        (fun a b -> String.compare (to_string a) (to_string b))
        (operands e [])
    in
    (match ops with
    | [] -> assert false
    | [ x ] -> x
    | x :: rest -> List.fold_left (fun acc o -> Ast.Union (acc, o)) x rest)
  | Ast.Diff (a, b) -> Ast.Diff (canon a, canon b)
  | Ast.Calop { counts; arg } -> Ast.Calop { counts; arg = canon arg }

let window_str window =
  Printf.sprintf "%d,%d" (Interval.lo window) (Interval.hi window)

let key ~fine ~window e =
  Printf.sprintf "%s|%s|%s" (Granularity.to_string fine) (window_str window)
    (to_string (canon e))

let gen_key ~coarse ~fine ~window =
  (* Must equal [key ~fine ~window (Ident coarse)] so plan Gen nodes and
     cached expression evaluation share entries. *)
  Printf.sprintf "%s|%s|i:%s" (Granularity.to_string fine) (window_str window)
    (String.uppercase_ascii (Granularity.to_string coarse))

(* --- dependency analysis --------------------------------------------- *)

exception Uncacheable

let deps env e =
  let module S = Set.Make (String) in
  let visited = Hashtbl.create 8 in
  let acc = ref S.empty in
  (* [locals] are the names assigned anywhere in the enclosing script.
     They excuse otherwise-unknown idents, but an env name mentioned in a
     script always counts as a dependency even where an assignment could
     shadow it — over-invalidation is safe, a missed dependency is not. *)
  let rec walk_name locals n =
    let k = String.uppercase_ascii n in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      match Env.find env k with
      | None -> if not (Hashtbl.mem locals k) then raise Uncacheable
      | Some Env.Today -> raise Uncacheable
      | Some (Env.Basic _ | Env.Stored _) -> acc := S.add k !acc
      | Some (Env.Derived { script; _ }) ->
        acc := S.add k !acc;
        walk_script script
    end
  and walk_expr locals e =
    List.iter (walk_name locals) (Ast.idents_of_expr e)
  and walk_script script =
    let locals = Hashtbl.create 4 in
    let rec assigned = function
      | Ast.Assign (x, _) -> Hashtbl.replace locals (String.uppercase_ascii x) ()
      | Ast.Return _ -> ()
      | Ast.If (_, then_, else_) -> List.iter assigned then_; List.iter assigned else_
      | Ast.While (_, body) -> List.iter assigned body
    in
    List.iter assigned script;
    let rec stmt = function
      | Ast.Assign (_, e) -> walk_expr locals e
      | Ast.Return (Ast.Rexpr e) -> walk_expr locals e
      | Ast.Return (Ast.Rstring _) -> ()
      | Ast.If (c, then_, else_) ->
        walk_expr locals c;
        List.iter stmt then_;
        List.iter stmt else_
      | Ast.While (c, body) ->
        walk_expr locals c;
        List.iter stmt body
    in
    List.iter stmt script
  in
  match walk_expr (Hashtbl.create 1) e with
  | () -> Some (S.elements !acc)
  | exception Uncacheable -> None
