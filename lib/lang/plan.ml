(** Evaluation plans: the procedural statements the parser emits (the
    CALENDARS table's eval-plan column).

    A plan is a straight-line register program over calendar values whose
    leaves are bounded [generate] calls; a window of [None] denotes a
    statically-empty demand (e.g. a label selection outside the
    lifespan). *)

type reg = int

type instr =
  | Gen of {
      dst : reg;
      coarse : Granularity.t;
      window : Interval.t option;
      key : string option;
          (** materialization-cache key ({!Canon.gen_key}); [None] when the
              demand is statically empty and nothing is worth caching *)
    }
  | Load of { dst : reg; name : string; window : Interval.t option }
  | Mklit of { dst : reg; pairs : (int * int) list }
  | Foreach_r of { dst : reg; strict : bool; op : Listop.t; lhs : reg; rhs : reg }
  | Select_r of { dst : reg; atoms : Ast.sel_atom list; src : reg }
  | Select_label of { dst : reg; window : Interval.t option; src : reg }
  | Union_r of { dst : reg; a : reg; b : reg }
  | Diff_r of { dst : reg; a : reg; b : reg }
  | Calop_r of { dst : reg; counts : int list; src : reg }
  | Pset of { dst : reg; pset : Periodic.t; window : Interval.t option }
      (** closed-form periodic set, materialized over the demand window
          with no [generate] call and no cache lookup *)

type t = {
  fine : Granularity.t;  (** chronon unit every register is expressed in *)
  instrs : instr list;
  result : reg;
  nregs : int;
}

let pp_window ppf = function
  | None -> Format.pp_print_string ppf "empty"
  | Some w -> Interval.pp ppf w

let pp_atoms ppf atoms =
  let atom = function
    | Ast.Nth i -> string_of_int i
    | Ast.Last -> "n"
    | Ast.Range (a, b) -> Printf.sprintf "%d..%d" a b
  in
  Format.pp_print_string ppf (String.concat "," (List.map atom atoms))

let pp_instr ~fine ppf = function
  | Gen { dst; coarse; window; key = _ } ->
    Format.fprintf ppf "t%d := generate(%a, %a, %a)" dst Granularity.pp coarse
      Granularity.pp fine pp_window window
  | Load { dst; name; window } ->
    Format.fprintf ppf "t%d := load(%s, %a)" dst name pp_window window
  | Mklit { dst; pairs } ->
    Format.fprintf ppf "t%d := literal{%s}" dst
      (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) pairs))
  | Foreach_r { dst; strict; op; lhs; rhs } ->
    Format.fprintf ppf "t%d := foreach(%a, %s, t%d, t%d)" dst Listop.pp op
      (if strict then "strict" else "relaxed")
      lhs rhs
  | Select_r { dst; atoms; src } ->
    Format.fprintf ppf "t%d := select[%a](t%d)" dst pp_atoms atoms src
  | Select_label { dst; window; src } ->
    Format.fprintf ppf "t%d := select_label(%a, t%d)" dst pp_window window src
  | Union_r { dst; a; b } -> Format.fprintf ppf "t%d := t%d + t%d" dst a b
  | Diff_r { dst; a; b } -> Format.fprintf ppf "t%d := t%d - t%d" dst a b
  | Calop_r { dst; counts; src } ->
    Format.fprintf ppf "t%d := caloperate(t%d; %s)" dst src
      (String.concat "," (List.map string_of_int counts))
  | Pset { dst; pset; window } ->
    Format.fprintf ppf "t%d := periodic(period=%d, spans=%d, %a)" dst (Periodic.period pset)
      (Periodic.span_count pset) pp_window window

let pp ppf t =
  Format.fprintf ppf "plan (fine=%a, result=t%d):@." Granularity.pp t.fine t.result;
  List.iter (fun i -> Format.fprintf ppf "  %a@." (pp_instr ~fine:t.fine) i) t.instrs

let to_string t = Format.asprintf "%a" pp t

(** Number of [Gen] instructions (shared subexpressions are generated once;
    the benchmarks use this to show common-subexpression elimination). *)
let gen_count t =
  List.length
    (List.filter (function Gen _ -> true | _ -> false) t.instrs)
