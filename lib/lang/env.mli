(** Calendar definitions visible to scripts.

    A name resolves (case-insensitively) to one of:
    {ul
    {- a {e basic} calendar (SECONDS ... CENTURY), generated on demand;}
    {- a {e derived} calendar, defined by a script (the CALENDARS table's
       derivation-script);}
    {- a {e stored} calendar with explicit values (e.g. HOLIDAYS);}
    {- the builtin [today], resolved against the evaluation clock.}} *)

type def =
  | Basic of Granularity.t
  | Derived of { script : Ast.script; source : string }
  | Stored of { values : Interval_set.t; granularity : Granularity.t }
  | Today

type t

exception Unknown_calendar of string

(** A fresh environment with the nine basic calendars and [today]. *)
val create : unit -> t

val add : t -> string -> def -> unit
val find : t -> string -> def option

(** @raise Unknown_calendar *)
val find_exn : t -> string -> def

val mem : t -> string -> bool
val remove : t -> string -> unit

(** [on_change t f] registers [f] to be called with the uppercased name
    whenever a definition is added, replaced or removed — how a session's
    materialization cache invalidates entries on rebinding. *)
val on_change : t -> (string -> unit) -> unit

(** Defined names, upper-cased and sorted. *)
val names : t -> string list

(** Parses and registers a derived calendar. *)
val define_script : t -> name:string -> source:string -> (unit, string) result

val define_stored : t -> name:string -> granularity:Granularity.t -> Interval_set.t -> unit
