(** Evaluation of calendar expressions and scripts.

    Three evaluation strategies coexist:
    {ul
    {- [eval_expr_naive] — the reference semantics: every basic calendar
       is generated over the whole lifespan, mirroring an unoptimized
       system;}
    {- [eval_expr_planned] — parses through {!Planner} and executes the
       bounded plan, the paper's optimized path;}
    {- [eval_expr_cached] — naive evaluation through the context's
       materialization cache: each sub-expression is keyed by its
       canonical form ({!Canon}) plus the evaluation bounds, so repeated
       probes and rules sharing sub-expressions reuse materializations.}}

    All report {!stats} so the benchmarks can compare generated interval
    counts directly. Scripts (with [if] / [while] control flow) run under
    [exec_script]; a [while (cond) ;] whose condition holds raises
    {!Waiting}, which is how DBCRON-style alerts suspend until their time
    arrives. *)

type value =
  | VCal of Calendar.t
  | VStr of string

type stats = {
  mutable generated_intervals : int;
  mutable gen_calls : int;
  mutable load_calls : int;
  mutable instr_count : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let fresh_stats () =
  {
    generated_intervals = 0;
    gen_calls = 0;
    load_calls = 0;
    instr_count = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

exception Waiting
exception Fuel_exhausted
exception Eval_error of string

let sel_atoms atoms =
  List.map
    (function
      | Ast.Nth i -> Calendar.Nth i
      | Ast.Last -> Calendar.Last
      | Ast.Range (a, b) -> Calendar.Range (a, b))
    atoms

(* Keep only the intervals lying inside [w]; used for label selection. *)
let filter_during w cal =
  Calendar.foreach ~strict:true Listop.During cal (Calendar.of_interval w)

let today_calendar (ctx : Context.t) ~fine =
  let day = Context.today_exn ctx in
  Calendar.leaf
    (Calendar_gen.refine ~epoch:ctx.Context.epoch ~from_:Granularity.Days ~to_:fine
       (Interval_set.singleton (Interval.singleton day)))

let stored_calendar (ctx : Context.t) ~fine ~granularity values =
  Calendar.leaf (Calendar_gen.refine ~epoch:ctx.Context.epoch ~from_:granularity ~to_:fine values)

let label_window_naive (ctx : Context.t) ~fine x gran =
  let span y1 y2 =
    Unit_system.chronon_span_of_dates ~epoch:ctx.Context.epoch fine (Civil.make y1 1 1)
      (Civil.make y2 12 31)
  in
  let floor_div a b =
    let q = a / b and r = a mod b in
    if r <> 0 && r < 0 <> (b < 0) then q - 1 else q
  in
  match gran with
  | Some Granularity.Years -> span x x
  | Some Granularity.Decades ->
    let d0 = floor_div x 10 * 10 in
    span d0 (d0 + 9)
  | Some Granularity.Centuries ->
    let c0 = floor_div x 100 * 100 in
    span c0 (c0 + 99)
  | _ -> raise (Eval_error (Printf.sprintf "label selection %d/ needs a YEARS or coarser operand" x))

(* ------------------------------------------------------------------ *)
(* Naive evaluation: generate over the whole window. *)

let rec eval_naive (ctx : Context.t) ~stats ~fine ~window ~locals e =
  match e with
  | Ast.Ident name -> (
    match Hashtbl.find_opt locals (String.uppercase_ascii name) with
    | Some cal -> cal
    | None -> (
      match Env.find_exn ctx.Context.env name with
      | Env.Basic g ->
        let s =
          Calendar_gen.generate ~max_intervals:ctx.Context.max_intervals
            ~epoch:ctx.Context.epoch ~coarse:g ~fine ~window ()
        in
        stats.gen_calls <- stats.gen_calls + 1;
        stats.generated_intervals <- stats.generated_intervals + Interval_set.cardinal s;
        Calendar.leaf s
      | Env.Stored { values; granularity } ->
        stats.load_calls <- stats.load_calls + 1;
        stored_calendar ctx ~fine ~granularity values
      | Env.Today -> today_calendar ctx ~fine
      | Env.Derived { script; _ } -> (
        match exec_script_internal ctx ~stats ~fine ~window script with
        | Some (VCal cal) -> cal
        | Some (VStr s) ->
          raise (Eval_error (Printf.sprintf "calendar %s returned a string %S" name s))
        | None -> raise (Eval_error (Printf.sprintf "calendar %s returned no value" name)))))
  | Ast.Lit pairs -> Calendar.of_pairs pairs
  | Ast.Select (Ast.Index atoms, inner) ->
    Calendar.select (sel_atoms atoms) (eval_naive ctx ~stats ~fine ~window ~locals inner)
  | Ast.Select (Ast.Label x, inner) ->
    let cal = eval_naive ctx ~stats ~fine ~window ~locals inner in
    let w = label_window_naive ctx ~fine x (Gran.of_expr ctx.Context.env inner) in
    filter_during w cal
  | Ast.Foreach { strict; op; lhs; rhs } ->
    let l = eval_naive ctx ~stats ~fine ~window ~locals lhs in
    let r = eval_naive ctx ~stats ~fine ~window ~locals rhs in
    Calendar.foreach ~strict op l r
  | Ast.Union (a, b) ->
    Calendar.union
      (eval_naive ctx ~stats ~fine ~window ~locals a)
      (eval_naive ctx ~stats ~fine ~window ~locals b)
  | Ast.Diff (a, b) ->
    Calendar.diff
      (eval_naive ctx ~stats ~fine ~window ~locals a)
      (eval_naive ctx ~stats ~fine ~window ~locals b)
  | Ast.Calop { counts; arg } ->
    let v = eval_naive ctx ~stats ~fine ~window ~locals arg in
    Calendar.leaf (Calendar_gen.caloperate ~counts (Calendar.flatten v))

(* ------------------------------------------------------------------ *)
(* Script execution (if / while / return). *)

and exec_script_internal ctx ~stats ~fine ~window script =
  let locals = Hashtbl.create 8 in
  let eval e = eval_naive ctx ~stats ~fine ~window ~locals e in
  let truthy e = not (Calendar.is_empty (eval e)) in
  let rec run = function
    | [] -> None
    | stmt :: rest -> (
      match stmt with
      | Ast.Assign (x, e) ->
        Hashtbl.replace locals (String.uppercase_ascii x) (eval e);
        run rest
      | Ast.Return (Ast.Rexpr e) -> Some (VCal (eval e))
      | Ast.Return (Ast.Rstring s) -> Some (VStr s)
      | Ast.If (cond, then_, else_) -> (
        match run (if truthy cond then then_ else else_) with
        | Some v -> Some v
        | None -> run rest)
      | Ast.While (cond, []) -> if truthy cond then raise Waiting else run rest
      | Ast.While (cond, body) ->
        let fuel = ref ctx.Context.fuel in
        let rec loop () =
          if truthy cond then begin
            if !fuel = 0 then raise Fuel_exhausted;
            decr fuel;
            match run body with Some v -> Some v | None -> loop ()
          end
          else None
        in
        (match loop () with Some v -> Some v | None -> run rest))
  in
  run script

(* ------------------------------------------------------------------ *)
(* Cached evaluation: naive semantics through the context's
   materialization cache. Every cacheable sub-expression is keyed by its
   canonical form plus the evaluation bounds; an expression mentioning
   [today] or an unbound name is evaluated around the cache. Derived
   calendars are cached whole — their script bodies run naively. *)

(* The cache key and dependency set for [e], or [None] when [e] is not
   worth or not sound to cache: trivial (a literal), clock-dependent, or
   mentioning an unbound name. [Canon.canon] re-materializes literals and
   can raise on malformed pairs exactly where evaluation would; such
   expressions are evaluated uncached so the error surfaces there. *)
let cache_key (ctx : Context.t) ~fine ~window e =
  match e with
  | Ast.Lit _ -> None
  | _ -> (
    match Canon.deps ctx.Context.env e with
    | None -> None
    | Some deps -> (
      match Canon.key ~fine ~window e with
      | key -> Some (key, deps)
      | exception _ -> None))

let rec eval_cached (ctx : Context.t) ~stats ~fine ~window e =
  let cache = ctx.Context.cache in
  let compute () =
    match e with
    | Ast.Ident _ | Ast.Lit _ ->
      (* Leaves have no sub-expression to share below them. *)
      eval_naive ctx ~stats ~fine ~window ~locals:(Hashtbl.create 1) e
    | Ast.Select (sel, inner) ->
      let cal = eval_cached ctx ~stats ~fine ~window inner in
      (match sel with
      | Ast.Index atoms -> Calendar.select (sel_atoms atoms) cal
      | Ast.Label x ->
        let w = label_window_naive ctx ~fine x (Gran.of_expr ctx.Context.env inner) in
        filter_during w cal)
    | Ast.Foreach { strict; op; lhs; rhs } ->
      let l = eval_cached ctx ~stats ~fine ~window lhs in
      let r = eval_cached ctx ~stats ~fine ~window rhs in
      Calendar.foreach ~strict op l r
    | Ast.Union (a, b) ->
      Calendar.union
        (eval_cached ctx ~stats ~fine ~window a)
        (eval_cached ctx ~stats ~fine ~window b)
    | Ast.Diff (a, b) ->
      Calendar.diff
        (eval_cached ctx ~stats ~fine ~window a)
        (eval_cached ctx ~stats ~fine ~window b)
    | Ast.Calop { counts; arg } ->
      let v = eval_cached ctx ~stats ~fine ~window arg in
      Calendar.leaf (Calendar_gen.caloperate ~counts (Calendar.flatten v))
  in
  if Cal_cache.capacity cache = 0 then compute ()
  else
    match cache_key ctx ~fine ~window e with
    | None -> compute ()
    | Some (key, deps) -> (
      match Cal_cache.find cache key with
      | Some cal ->
        stats.cache_hits <- stats.cache_hits + 1;
        cal
      | None ->
        stats.cache_misses <- stats.cache_misses + 1;
        let cal = compute () in
        Cal_cache.add cache ~key ~deps cal;
        cal)

(* ------------------------------------------------------------------ *)
(* Streaming evaluation: lazily enumerate the expression's flattened
   intervals forward from a start chronon, one padded chunk at a time,
   without materializing the full lifespan. Each chunk is evaluated with
   [eval_cached] over a window extended by one pad on both sides so that
   units straddling the chunk boundary are computed whole; an interval
   belongs to the chunk containing its low endpoint, which dedups the
   pad overlap between neighbouring chunks. Sound only for expressions
   [Planner.streamable] accepts (window-local sub-results). *)

(* Chunk sizes are multiples of this, and chunk windows are aligned to
   absolute multiples of the chunk size, so successive probes of one
   rule — wherever they start — evaluate over identical windows and hit
   the session's materialization cache. *)
let stream_quantum = 256

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

let stream_expr (ctx : Context.t) ?stats ?from_ e =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let fine = Gran.finest_of_expr ctx.Context.env e in
  let pad = Planner.pad_for ~fine (Gran.grans_of_expr ctx.Context.env e) in
  let lifespan = Context.lifespan_in ctx fine in
  let start_off =
    match from_ with
    | Some c -> Chronon.to_offset c
    | None -> Chronon.to_offset (Interval.lo lifespan)
  in
  (* The stream ends one pad past the lifespan, like the default
     materializing window: boundary-straddling units are included whole. *)
  let end_off = Chronon.to_offset (Interval.hi lifespan) + pad in
  let csize = (((2 * pad) + stream_quantum - 1) / stream_quantum + 1) * stream_quantum in
  let rec chunks k () =
    let chunk_lo = k * csize in
    if chunk_lo > end_off then Seq.Nil
    else begin
      let chunk_hi = chunk_lo + csize - 1 in
      let w =
        Interval.make
          (Chronon.of_offset (chunk_lo - pad))
          (Chronon.of_offset (chunk_hi + pad))
      in
      let cal = eval_cached ctx ~stats ~fine ~window:w e in
      let lo_min = max start_off chunk_lo in
      let owned =
        Interval_set.fold
          (fun acc iv ->
            let lo = Chronon.to_offset (Interval.lo iv) in
            if lo >= lo_min && lo <= chunk_hi then iv :: acc else acc)
          [] (Calendar.flatten cal)
      in
      Seq.append (List.to_seq (List.rev owned)) (chunks (k + 1)) ()
    end
  in
  chunks (floor_div start_off csize)

(* ------------------------------------------------------------------ *)
(* Plan execution. *)

let run_plan (ctx : Context.t) (plan : Plan.t) =
  let stats = fresh_stats () in
  let fine = plan.Plan.fine in
  let regs = Array.make (max plan.Plan.nregs 1) Calendar.empty in
  let load name window =
    stats.load_calls <- stats.load_calls + 1;
    match Env.find_exn ctx.Context.env name with
    | Env.Stored { values; granularity } -> (
      let cal = stored_calendar ctx ~fine ~granularity values in
      match window with None -> Calendar.empty | Some w -> Calendar.restrict cal w)
    | Env.Today -> today_calendar ctx ~fine
    | Env.Derived { script; _ } -> (
      match window with
      | None -> Calendar.empty
      | Some w -> (
        match exec_script_internal ctx ~stats ~fine ~window:w script with
        | Some (VCal cal) -> cal
        | Some (VStr s) ->
          raise (Eval_error (Printf.sprintf "calendar %s returned a string %S" name s))
        | None -> raise (Eval_error (Printf.sprintf "calendar %s returned no value" name))))
    | Env.Basic _ -> raise (Eval_error ("plan loads basic calendar " ^ name))
  in
  List.iter
    (fun instr ->
      stats.instr_count <- stats.instr_count + 1;
      match instr with
      | Plan.Gen { dst; coarse; window; key } -> (
        let cache = ctx.Context.cache in
        let cached =
          match key with
          | Some k when Cal_cache.capacity cache > 0 -> Cal_cache.find cache k
          | _ -> None
        in
        match cached with
        | Some cal ->
          (* Materialization reused across queries: no generate call. *)
          stats.cache_hits <- stats.cache_hits + 1;
          regs.(dst) <- cal
        | None ->
          let s =
            match window with
            | None -> Interval_set.empty
            | Some w ->
              Calendar_gen.generate ~max_intervals:ctx.Context.max_intervals
                ~epoch:ctx.Context.epoch ~coarse ~fine ~window:w ()
          in
          stats.gen_calls <- stats.gen_calls + 1;
          stats.generated_intervals <- stats.generated_intervals + Interval_set.cardinal s;
          let cal = Calendar.leaf s in
          (match key with
          | Some k when Cal_cache.capacity cache > 0 ->
            stats.cache_misses <- stats.cache_misses + 1;
            Cal_cache.add cache ~key:k
              ~deps:[ String.uppercase_ascii (Granularity.to_string coarse) ]
              cal
          | _ -> ());
          regs.(dst) <- cal)
      | Plan.Load { dst; name; window } -> regs.(dst) <- load name window
      | Plan.Mklit { dst; pairs } -> regs.(dst) <- Calendar.of_pairs pairs
      | Plan.Foreach_r { dst; strict; op; lhs; rhs } ->
        regs.(dst) <- Calendar.foreach ~strict op regs.(lhs) regs.(rhs)
      | Plan.Select_r { dst; atoms; src } ->
        regs.(dst) <- Calendar.select (sel_atoms atoms) regs.(src)
      | Plan.Select_label { dst; window; src } ->
        regs.(dst) <-
          (match window with None -> Calendar.empty | Some w -> filter_during w regs.(src))
      | Plan.Union_r { dst; a; b } -> regs.(dst) <- Calendar.union regs.(a) regs.(b)
      | Plan.Diff_r { dst; a; b } -> regs.(dst) <- Calendar.diff regs.(a) regs.(b)
      | Plan.Calop_r { dst; counts; src } ->
        regs.(dst) <- Calendar.leaf (Calendar_gen.caloperate ~counts (Calendar.flatten regs.(src)))
      | Plan.Pset { dst; pset; window } ->
        (* Closed form: whole instances intersecting the demand window,
           by pure arithmetic — no generate call, no cache lookup. *)
        regs.(dst) <-
          (match window with
          | None -> Calendar.empty
          | Some w ->
            Calendar.leaf
              (Periodic.to_interval_set ~max_intervals:ctx.Context.max_intervals pset ~window:w)))
    plan.Plan.instrs;
  (regs.(plan.Plan.result), stats)

(* ------------------------------------------------------------------ *)
(* Public entry points. *)

(* Default evaluation window: the lifespan extended by one pad so that
   units straddling its boundary are generated whole. *)
let default_window ctx ~fine grans =
  let lifespan = Context.lifespan_in ctx fine in
  let pad = Planner.pad_for ~fine grans in
  Interval.make
    (Chronon.add (Interval.lo lifespan) (-pad))
    (Chronon.add (Interval.hi lifespan) pad)

(** Reference evaluation: whole-lifespan generation, no factorization.
    An explicit [window] is used as given (boundary units clipped). *)
let eval_expr_naive (ctx : Context.t) ?window e =
  let stats = fresh_stats () in
  let fine = Gran.finest_of_expr ctx.Context.env e in
  let window =
    match window with
    | Some w -> w
    | None -> default_window ctx ~fine (Gran.grans_of_expr ctx.Context.env e)
  in
  let cal = eval_naive ctx ~stats ~fine ~window ~locals:(Hashtbl.create 1) e in
  (cal, stats)

(** Optimized evaluation through the planner. *)
let eval_expr_planned (ctx : Context.t) e = run_plan ctx (Planner.plan ctx e)

(** Closed-form evaluation through the periodic normal form: [None] when
    the expression is not translatable. Unlike the window-clipping naive
    path, instances straddling the window edge are kept whole — the two
    agree on every interval contained in the window's interior. *)
let eval_expr_periodic (ctx : Context.t) ?window e =
  Option.map (run_plan ctx) (Planner.plan_periodic ctx ?window e)

(** Naive semantics through the context's materialization cache. With the
    cache disabled (capacity 0, the [Context.create] default) this is
    exactly {!eval_expr_naive}. *)
let eval_expr_cached (ctx : Context.t) ?window e =
  let stats = fresh_stats () in
  let fine = Gran.finest_of_expr ctx.Context.env e in
  let window =
    match window with
    | Some w -> w
    | None -> default_window ctx ~fine (Gran.grans_of_expr ctx.Context.env e)
  in
  let cal = eval_cached ctx ~stats ~fine ~window e in
  (cal, stats)

(** Run a script; expressions inside are evaluated naively over [window]
    (or the lifespan). *)
let exec_script (ctx : Context.t) ?window script =
  let stats = fresh_stats () in
  let fine = Gran.finest_of_script ctx.Context.env script in
  let window =
    match window with
    | Some w -> w
    | None -> default_window ctx ~fine (Gran.grans_of_script ctx.Context.env script)
  in
  (exec_script_internal ctx ~stats ~fine ~window script, stats)

(** Parse-and-evaluate convenience: tries an expression first, then a
    script. *)
let eval_string (ctx : Context.t) input =
  match Parser.expr input with
  | Ok e -> (
    match eval_expr_planned ctx e with
    | cal, _ -> Ok (VCal cal)
    | exception exn -> Error (Printexc.to_string exn))
  | Error _ -> (
    match Parser.script input with
    | Error e -> Error e
    | Ok script -> (
      match exec_script ctx script with
      | Some v, _ -> Ok v
      | None, _ -> Error "script returned no value"
      | exception exn -> Error (Printexc.to_string exn)))
