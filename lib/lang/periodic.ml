(* Closed-form periodic sets and the compiler from translatable calendar
   expressions to minimal periodic normal form. See periodic.mli for the
   model; the invariants maintained here are:

   - spans is sorted by (offset, length) and duplicate-free;
   - every offset is in [0, period);
   - period is minimal: no proper divisor reproduces the collection.

   Minimality makes the form canonical — the instance collection of a
   nonempty periodic set has a unique minimal period (its periods form a
   subgroup of Z), so set equality coincides with structural equality. *)

exception Unrepresentable of string

let () =
  Printexc.register_printer (function
    | Unrepresentable msg -> Some ("Periodic.Unrepresentable: " ^ msg)
    | _ -> None)

(* Representation caps. [max_period] admits the 400-year Gregorian cycle
   down to hour granularity (146097 * 24 = 3.5M) but rejects it at
   minutes and below; [max_spans] bounds the lcm-lift blowup. Exceeding
   either raises — callers degrade to the interval-set oracle, never
   wrap. *)
let max_period = 1 lsl 23
let max_spans = 1 lsl 21

type t = {
  period : int;
  spans : (int * int) array; (* sorted (offset, length), unique *)
  max_len : int; (* 0 when empty *)
}

let emod a b =
  let r = a mod b in
  if r < 0 then r + b else r

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

let empty = { period = 1; spans = [||]; max_len = 0 }
let is_empty t = Array.length t.spans = 0
let period t = t.period
let spans t = Array.to_list t.spans
let span_count t = Array.length t.spans

let equal a b = a.period = b.period && a.spans = b.spans

(* First index with offset >= v (length of the array when none). *)
let lower_bound spans v =
  let lo = ref 0 and hi = ref (Array.length spans) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst spans.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let mem_pair spans pair =
  let i = lower_bound spans (fst pair) in
  let n = Array.length spans in
  let rec scan i = i < n && fst spans.(i) = fst pair && (spans.(i) = pair || scan (i + 1)) in
  scan i

(* Smallest divisor q of p under which the collection is invariant:
   rotation by q maps the span set to itself iff the set is q-periodic
   (the rotation is a bijection on a finite set). *)
let minimal_period p spans =
  if Array.length spans = 0 then 1
  else begin
    let divisors =
      let rec up d acc =
        if d * d > p then acc
        else if p mod d = 0 then up (d + 1) (d :: (p / d) :: acc)
        else up (d + 1) acc
      in
      List.sort_uniq Int.compare (up 1 [])
    in
    let invariant q =
      Array.for_all (fun (r, l) -> mem_pair spans (emod (r + q) p, l)) spans
    in
    List.find invariant divisors (* p itself always qualifies *)
  end

let make ~period spans =
  if period < 1 then invalid_arg "Periodic.make: period < 1";
  let spans =
    List.map
      (fun (r, l) ->
        if l < 1 then invalid_arg "Periodic.make: span length < 1";
        (emod r period, l))
      spans
  in
  let spans = List.sort_uniq compare spans in
  if List.length spans > max_spans then
    raise (Unrepresentable (Printf.sprintf "%d spans exceed the %d cap" (List.length spans) max_spans));
  let arr = Array.of_list spans in
  if Array.length arr = 0 then empty
  else begin
    let p = minimal_period period arr in
    let arr = if p = period then arr else Array.of_list (List.filter (fun (r, _) -> r < p) spans) in
    { period = p; spans = arr; max_len = Array.fold_left (fun m (_, l) -> max m l) 0 arr }
  end

(* ------------------------------------------------------------------ *)
(* Closed-form queries. Instances are numbered globally: instance
   j = q*k + i (k = span count, 0 <= i < k) starts at q*period +
   offset_i — monotone in j, which turns next/nth/count into index
   arithmetic. *)

let instance t j =
  let k = Array.length t.spans in
  let q = floor_div j k in
  let r, l = t.spans.(j - (q * k)) in
  ((q * t.period) + r, l)

(* Smallest j whose instance starts at or after v. *)
let first_geq t v =
  let k = Array.length t.spans in
  let vr = emod v t.period in
  let q = (v - vr) / t.period in
  let i = lower_bound t.spans vr in
  if i < k then (q * k) + i else (q + 1) * k

let next_start t o = if is_empty t then None else Some (instance t (first_geq t (o + 1)))

let nth_start t ~from_ n =
  if is_empty t || n < 1 then None else Some (instance t (first_geq t from_ + n - 1))

let count_starts t ~lo ~hi =
  if is_empty t || hi < lo then 0 else first_geq t (hi + 1) - first_geq t lo

let starts t ~from_ =
  if is_empty t then Seq.empty
  else Seq.unfold (fun j -> Some (instance t j, j + 1)) (first_geq t from_)

let covers t o =
  (not (is_empty t))
  &&
  let p = t.period in
  let hit (r, l) = emod (o - r) p < l in
  if t.max_len >= p then Array.exists hit t.spans
  else begin
    let n = Array.length t.spans in
    let orel = emod o p in
    (* Only spans starting within max_len-1 below o (directly or across
       the period seam) can cover it. *)
    let scan_from i limit =
      let rec go i = i < n && fst t.spans.(i) <= limit && (hit t.spans.(i) || go (i + 1)) in
      go i
    in
    scan_from (lower_bound t.spans (orel - t.max_len + 1)) orel
    || scan_from (lower_bound t.spans (orel + p - t.max_len + 1)) (p - 1)
  end

let mem_span t (lo, len) = (not (is_empty t)) && mem_pair t.spans (emod lo t.period, len)

let instances_in t ~lo ~hi =
  if is_empty t || hi < lo then []
  else begin
    let j0 = first_geq t lo and j1 = first_geq t (hi + 1) in
    List.init (j1 - j0) (fun d -> instance t (j0 + d))
  end

let to_interval_set ?(max_intervals = 1_000_000) t ~window =
  if is_empty t then Interval_set.empty
  else begin
    let lo = Chronon.to_offset (Interval.lo window) and hi = Chronon.to_offset (Interval.hi window) in
    (* Whole instances intersecting the window: any instance reaching
       into it starts at most max_len - 1 before its low edge. *)
    let j0 = first_geq t (lo - t.max_len + 1) and j1 = first_geq t (hi + 1) in
    if j1 - j0 > max_intervals then
      raise (Unrepresentable (Printf.sprintf "%d instances exceed the window cap" (j1 - j0)));
    let acc = ref [] in
    for j = j1 - 1 downto j0 do
      let s, l = instance t j in
      if s + l - 1 >= lo then
        acc := Interval.make (Chronon.of_offset s) (Chronon.of_offset (s + l - 1)) :: !acc
    done;
    Interval_set.of_list !acc
  end

(* ------------------------------------------------------------------ *)
(* Element-wise algebra: lcm-lift, then exact span-set operations. *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b =
  let g = gcd a b in
  let q = a / g in
  if q > max_period / b then
    raise (Unrepresentable (Printf.sprintf "lcm(%d, %d) exceeds the %d-unit period cap" a b max_period))
  else q * b

let lifted t l =
  let reps = l / t.period in
  if reps * Array.length t.spans > max_spans then
    raise (Unrepresentable "lcm-lift exceeds the span cap");
  List.concat_map
    (fun i -> List.map (fun (r, len) -> (r + (i * t.period), len)) (Array.to_list t.spans))
    (List.init reps Fun.id)

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else
    let l = lcm a.period b.period in
    make ~period:l (lifted a l @ lifted b l)

let inter a b =
  if is_empty a || is_empty b then empty
  else begin
    let l = lcm a.period b.period in
    let bl = Array.of_list (lifted b l) in
    make ~period:l (List.filter (fun s -> mem_pair bl s) (lifted a l))
  end

let diff a b =
  if is_empty a then empty
  else if is_empty b then a
  else begin
    let l = lcm a.period b.period in
    let bl = Array.of_list (lifted b l) in
    make ~period:l (List.filter (fun s -> not (mem_pair bl s)) (lifted a l))
  end

(* ------------------------------------------------------------------ *)
(* Pointwise algebra over covered offsets. Internal form: disjoint,
   non-adjacent, sorted segments [a, b] of residues within [0, p). *)

let full = { period = 1; spans = [| (0, 1) |]; max_len = 1 }
let is_full t = equal t full

let segments_of t =
  let p = t.period in
  let raw =
    Array.to_list t.spans
    |> List.concat_map (fun (r, l) ->
           let l = min l p in
           if r + l <= p then [ (r, r + l - 1) ] else [ (r, p - 1); (0, r + l - 1 - p) ])
  in
  let sorted = List.sort compare raw in
  let rec merge = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 + 1 -> merge ((a1, max b1 b2) :: rest)
    | seg :: rest -> seg :: merge rest
    | [] -> []
  in
  merge sorted

(* Rebuild a form from residue segments, rejoining an arc that wraps the
   period seam so arcs are maximal on the circle. *)
let of_segments p segs =
  match segs with
  | [] -> empty
  | [ (0, b) ] when b = p - 1 -> full
  | (0, b0) :: (_ :: _ as rest) when snd (List.hd (List.rev rest)) = p - 1 ->
    (* first arc touches offset 0 and last touches p-1: one wrapping arc *)
    let segs =
      match List.rev rest with
      | (alast, _) :: mid_rev -> List.rev ((alast, p + b0) :: mid_rev)
      | [] -> assert false
    in
    make ~period:p (List.map (fun (a, b) -> (a, b - a + 1)) segs)
  | segs -> make ~period:p (List.map (fun (a, b) -> (a, b - a + 1)) segs)

let pointwise t =
  if is_empty t then empty
  else if t.max_len >= t.period then full
  else of_segments t.period (segments_of t)

let complement t =
  if is_empty t then full
  else if t.max_len >= t.period then empty
  else begin
    let p = t.period in
    let rec gaps prev = function
      | (a, b) :: rest -> (if a > prev then [ (prev, a - 1) ] else []) @ gaps (b + 1) rest
      | [] -> if prev <= p - 1 then [ (prev, p - 1) ] else []
    in
    of_segments p (gaps 0 (segments_of t))
  end

let pointwise_union a b = if is_empty a then pointwise b else if is_empty b then pointwise a else pointwise (union a b)

let pointwise_inter a b =
  if is_empty a || is_empty b then empty
  else if is_full (pointwise a) then pointwise b
  else if is_full (pointwise b) then pointwise a
  else begin
    let l = lcm a.period b.period in
    let lift_segs t =
      let reps = l / t.period in
      List.concat_map
        (fun i -> List.map (fun (x, y) -> (x + (i * t.period), y + (i * t.period))) (segments_of t))
        (List.init reps Fun.id)
    in
    let rec isect xs ys =
      match (xs, ys) with
      | [], _ | _, [] -> []
      | (a1, b1) :: xr, (a2, b2) :: yr ->
        let lo = max a1 a2 and hi = min b1 b2 in
        let rest = if b1 < b2 then isect xr ys else isect xs yr in
        if lo <= hi then (lo, hi) :: rest else rest
    in
    of_segments l (isect (lift_segs a) (lift_segs b))
  end

let pointwise_diff a b = if is_empty b then pointwise a else pointwise_inter a (complement b)

(* ------------------------------------------------------------------ *)
(* The compiler. *)

exception Not_periodic

let months_per = function
  | Granularity.Months -> 1
  | Granularity.Years -> 12
  | Granularity.Decades -> 120
  | Granularity.Centuries -> 1200
  | _ -> raise Not_periodic

(* The Gregorian calendar repeats exactly every 400 years = 146097 days
   (divisible by 7, so weekday structure repeats too): every basic
   calendar is periodic in any aligned finer unit, whatever the epoch. *)
let gregorian_cycle_days = 146097

let period_of ~fine coarse =
  match (Granularity.seconds_per coarse, Granularity.seconds_per fine) with
  | Some wc, Some wf -> if wc mod wf = 0 then wc / wf else raise Not_periodic
  | None, Some wf ->
    if 86400 mod wf <> 0 then raise Not_periodic (* weeks under months: misaligned *)
    else gregorian_cycle_days * (86400 / wf)
  | None, None -> months_per coarse / months_per fine
  | Some _, None -> raise Not_periodic

(* Upper bound of one coarse unit in fine units, for candidate windows
   and generation padding. *)
let ub_fine_units ~fine coarse =
  match (Granularity.seconds_per coarse, Granularity.seconds_per fine) with
  | Some wc, Some wf -> wc / wf
  | None, Some wf ->
    let days =
      match coarse with
      | Granularity.Months -> 31
      | Granularity.Years -> 366
      | Granularity.Decades -> 3653
      | Granularity.Centuries -> 36525
      | _ -> raise Not_periodic
    in
    days * (86400 / wf)
  | None, None -> months_per coarse / months_per fine
  | Some _, None -> raise Not_periodic

(* One cycle of a basic calendar, memoized per (epoch, coarse, fine).
   The table is consulted from parallel probe domains (the manager's
   recompute batches), hence the mutex. *)
let basic_memo : (string, t) Hashtbl.t = Hashtbl.create 16
let basic_mutex = Mutex.create ()

let memo_find tbl mutex key =
  Mutex.lock mutex;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock mutex;
  r

let memo_add tbl mutex key v =
  Mutex.lock mutex;
  if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v;
  Mutex.unlock mutex

let basic_pset (ctx : Context.t) ~fine coarse =
  if Granularity.equal coarse fine then make ~period:1 [ (0, 1) ]
  else if not (Unit_system.aligned ~coarse ~fine) then raise Not_periodic
  else begin
    let p = period_of ~fine coarse in
    if p > max_period then
      raise (Unrepresentable (Printf.sprintf "%s in %s units: period %d exceeds the cap"
               (Granularity.to_string coarse) (Granularity.to_string fine) p));
    let epoch = ctx.Context.epoch in
    let key =
      Printf.sprintf "%d|%s|%s" (Civil.rata_die epoch) (Granularity.to_string coarse)
        (Granularity.to_string fine)
    in
    match memo_find basic_memo basic_mutex key with
    | Some t -> t
    | None ->
      (* Materialize one cycle: generate over [-pad, p + pad] and keep
         the units starting inside [0, p) — whole by construction, since
         the window extends a full unit past both ends. *)
      let pad = ub_fine_units ~fine coarse + 2 in
      let window = Interval.make (Chronon.of_offset (-pad)) (Chronon.of_offset (p + pad)) in
      let set = Calendar_gen.generate ~max_intervals:1_000_000 ~epoch ~coarse ~fine ~window () in
      let spans =
        Interval_set.fold
          (fun acc iv ->
            let lo = Chronon.to_offset (Interval.lo iv) in
            if lo >= 0 && lo < p then (lo, Interval.length iv) :: acc else acc)
          [] set
      in
      let t = make ~period:p spans in
      memo_add basic_memo basic_mutex key t;
      t
  end

(* Relations on offset intervals. Chronon -> offset is a strictly
   monotone bijection, so every listop (pure order/equality on
   endpoints) transfers verbatim; so does intersection-clipping. *)
let op_holds op (xlo, xhi) (rlo, rhi) =
  match op with
  | Listop.During -> xlo >= rlo && rhi >= xhi
  | Listop.Overlaps | Listop.Intersects -> xlo <= rhi && rlo <= xhi
  | Listop.Meets -> xhi = rlo
  | Listop.Starts -> xlo = rlo && xhi <= rhi
  | Listop.Finishes -> xhi = rhi && xlo >= rlo
  | Listop.Equals -> xlo = rlo && xhi = rhi
  | Listop.Contains -> rlo >= xlo && xhi >= rhi
  | Listop.Before | Listop.Le -> raise Not_periodic (* unbounded reach: untranslatable *)

(* Window-local relations: every qualifying lhs instance starts within
   [ref_lo - max_len, ref_hi] (During/Starts/Equals start inside the
   reference; Overlaps/Intersects/Meets/Finishes/Contains reach at most
   one instance length back). Before/Le reach arbitrarily far. *)
let window_local = function
  | Listop.During | Listop.Overlaps | Listop.Intersects | Listop.Meets | Listop.Starts
  | Listop.Finishes | Listop.Equals | Listop.Contains ->
    true
  | Listop.Before | Listop.Le -> false

(* positions/select replicated from Calendar so the fused
   select-over-foreach picks exactly what the tree evaluator picks. *)
let positions sel n =
  let resolve = function
    | Ast.Nth i when i > 0 -> if i <= n then [ i ] else []
    | Ast.Nth i when i < 0 -> if -i <= n then [ n + 1 + i ] else []
    | Ast.Nth _ -> []
    | Ast.Last -> if n >= 1 then [ n ] else []
    | Ast.Range (a, b) ->
      let a = max a 1 and b = min b n in
      if a > b then [] else List.init (b - a + 1) (fun k -> a + k)
  in
  List.sort_uniq Int.compare (List.concat_map resolve sel)

(* foreach (optionally fused with an index selection): enumerate the
   references starting in one lcm period; for each, collect the
   qualifying lhs instances exactly as Calendar.foreach does per
   reference (clip under strict containment ops, dedup, (lo, hi)
   order), select, and fold the picks back into [0, L). L-periodicity
   of both operands makes one period's references exhaustive. *)
let foreach_pset ~strict op ~select l r =
  if not (window_local op) then raise Not_periodic;
  if is_empty r || is_empty l then empty
  else begin
    let big_l = lcm l.period r.period in
    let clips = strict && Listop.clips op in
    let acc = ref [] and count = ref 0 in
    let refs = Seq.take_while (fun (s, _) -> s < big_l) (starts r ~from_:0) in
    Seq.iter
      (fun (ref_lo, ref_len) ->
        let ref_hi = ref_lo + ref_len - 1 in
        let candidates =
          starts l ~from_:(ref_lo - l.max_len)
          |> Seq.take_while (fun (s, _) -> s <= ref_hi)
          |> Seq.filter_map (fun (xlo, xlen) ->
                 let xhi = xlo + xlen - 1 in
                 if op_holds op (xlo, xhi) (ref_lo, ref_hi) then
                   if clips then Some (max xlo ref_lo, min xhi ref_hi) else Some (xlo, xhi)
                 else None)
          |> List.of_seq
          |> List.sort_uniq compare (* clipping can reorder and collide *)
        in
        let picked =
          match select with
          | None -> candidates
          | Some atoms ->
            let n = List.length candidates in
            List.map (fun i -> List.nth candidates (i - 1)) (positions atoms n)
        in
        List.iter
          (fun (lo, hi) ->
            incr count;
            if !count > max_spans then raise (Unrepresentable "foreach result exceeds the span cap");
            acc := (emod lo big_l, hi - lo + 1) :: !acc)
          picked)
      refs;
    make ~period:big_l !acc
  end

(* Static flatness: true when evaluation is guaranteed to yield an
   order-1 calendar (a Leaf). Needed for difference: Calendar.diff is
   componentwise on equal-length order-2 operands, which only coincides
   with the flat span difference when at least one side is a Leaf (the
   binop then either stays Leaf/Leaf or flattens both). *)
let rec statically_flat env e =
  match e with
  | Ast.Ident name -> (match Env.find env name with Some (Env.Basic _) -> true | _ -> false)
  | Ast.Union (a, b) | Ast.Diff (a, b) -> statically_flat env a && statically_flat env b
  | Ast.Select (Ast.Index atoms, Ast.Foreach { rhs; _ }) ->
    (* a single pick yields at most one interval per reference, which
       Calendar.simplify collapses to a Leaf — provided the references
       themselves come from a Leaf *)
    (match atoms with [ Ast.Nth _ ] | [ Ast.Last ] -> statically_flat env rhs | _ -> false)
  | _ -> false

(* Structural gate, fused with canonical-key construction: idents are
   keyed by their resolved granularity, so the memo cannot be poisoned
   across environments that bind the same name differently. *)
let rec key_of env e =
  match e with
  | Ast.Ident name -> (
    match Env.find env name with
    | Some (Env.Basic g) -> "B:" ^ Granularity.to_string g
    | _ -> raise Not_periodic)
  | Ast.Union (a, b) -> "(" ^ key_of env a ^ "+" ^ key_of env b ^ ")"
  | Ast.Diff (a, b) ->
    if statically_flat env a || statically_flat env b then
      "(" ^ key_of env a ^ "-" ^ key_of env b ^ ")"
    else raise Not_periodic
  | Ast.Foreach { strict; op; lhs; rhs } ->
    if not (window_local op) then raise Not_periodic;
    Printf.sprintf "F(%b,%s,%s,%s)" strict (Listop.to_string op) (key_of env lhs)
      (key_of env rhs)
  | Ast.Select ((Ast.Index _ as sel), (Ast.Foreach _ as f)) ->
    "S[" ^ Pretty.selector_to_string sel ^ "]" ^ key_of env f
  | Ast.Select _ | Ast.Lit _ | Ast.Calop _ -> raise Not_periodic

let translatable env e = match key_of env e with _ -> true | exception Not_periodic -> false

let compile_uncached (ctx : Context.t) ~fine e =
  let env = ctx.Context.env in
  let rec go e =
    match e with
    | Ast.Ident name -> (
      match Env.find env name with
      | Some (Env.Basic g) -> basic_pset ctx ~fine g
      | _ -> raise Not_periodic)
    | Ast.Union (a, b) -> union (go a) (go b)
    | Ast.Diff (a, b) ->
      if statically_flat env a || statically_flat env b then diff (go a) (go b)
      else raise Not_periodic
    | Ast.Foreach { strict; op; lhs; rhs } -> foreach_pset ~strict op ~select:None (go lhs) (go rhs)
    | Ast.Select (Ast.Index atoms, Ast.Foreach { strict; op; lhs; rhs }) ->
      foreach_pset ~strict op ~select:(Some atoms) (go lhs) (go rhs)
    | Ast.Select _ | Ast.Lit _ | Ast.Calop _ -> raise Not_periodic
  in
  go e

let compile_memo : (string, (Granularity.t * t) option) Hashtbl.t = Hashtbl.create 64
let compile_mutex = Mutex.create ()

let compile (ctx : Context.t) e =
  match key_of ctx.Context.env e with
  | exception Not_periodic -> None
  | key ->
    let fine = Gran.finest_of_expr ctx.Context.env e in
    let full_key =
      Printf.sprintf "%d|%s|%s" (Civil.rata_die ctx.Context.epoch) (Granularity.to_string fine) key
    in
    (match memo_find compile_memo compile_mutex full_key with
    | Some r -> r
    | None ->
      let r =
        match compile_uncached ctx ~fine e with
        | pset -> Some (fine, pset)
        | exception (Not_periodic | Unrepresentable _) -> None
      in
      memo_add compile_memo compile_mutex full_key r;
      r)
