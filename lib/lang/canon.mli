(** Structural canonicalization of calendar expressions — the cache key
    for cross-query common-subexpression sharing.

    Two expressions that canonicalize identically are guaranteed to
    evaluate (naively, over the same bounds) to structurally equal
    calendars, so the canonical form plus the evaluation bounds is a
    sound cache key. Canonicalization:

    {ul
    {- upper-cases calendar names (the environment is case-insensitive);}
    {- flattens nested unions and sorts/dedups their operands — the
       element-wise union is associative, commutative and idempotent up
       to {!Calendar.equal};}
    {- normalizes interval literals to their sorted, deduplicated form
       (how {!Calendar.of_pairs} materializes them);}
    {- sorts and dedups selector atoms (selection resolves positions
       through [sort_uniq], so atom order and duplicates are immaterial);}
    {- folds constant selections: an index selection applied to an
       interval literal is evaluated away at canonicalization time.}}

    Non-commutative operators ([Foreach], [Diff], [Calop], label
    selection) keep their shape and only canonicalize their operands. *)

(** [canon e] — the canonical form. Evaluating [canon e] and [e] over the
    same window yields structurally equal calendars (a qcheck property in
    [test/test_props.ml]). May raise if [e] contains a malformed interval
    literal, as evaluating [e] itself would. *)
val canon : Ast.expr -> Ast.expr

(** Unambiguous serialization of a canonical expression. *)
val to_string : Ast.expr -> string

(** [key ~fine ~window e] — the cache key: generation granularity,
    evaluation bounds, canonical expression. *)
val key : fine:Granularity.t -> window:Interval.t -> Ast.expr -> string

(** [gen_key ~coarse ~fine ~window] — the key a plan's [generate]
    instruction caches under. Built to coincide with {!key} of the bare
    calendar name, so plan execution and cached expression evaluation
    share materializations. *)
val gen_key : coarse:Granularity.t -> fine:Granularity.t -> window:Interval.t -> string

(** [deps env e] — the uppercased calendar names the value of [e] depends
    on, transitively through derivation scripts. [None] when the
    expression is not cacheable: it mentions [today] (clock-dependent) or
    an unbound name, directly or through a derivation script. *)
val deps : Env.t -> Ast.expr -> string list option
