(** Closed-form periodic sets: the minimal periodic normal form for
    translatable calendar expressions.

    A value denotes an infinite, periodic collection of intervals on the
    0-based offset timeline of some fine granularity: for a period [p]
    and a sorted set of spans [(r, l)] (offset [0 <= r < p], length
    [l >= 1]), the collection is every interval
    [\[k*p + r, k*p + r + l - 1\]] for every [k] in Z. The anchor of the
    paper's [(period, offsets, anchor)] triple is normalized away at
    construction: offsets are stored relative to the epoch's unit 0, so
    the anchor is always 0 and two forms denote the same collection iff
    they are structurally equal (the period is reduced to the minimal
    divisor, which makes the form canonical — hence "minimal periodic
    normal form").

    Against the array interval-set evaluator this buys O(log n)
    [next_start] / [nth_start] with {e no} generation, no cache window
    and no lifespan bound: probes are pure arithmetic over unbounded
    horizons. The interval-set evaluator survives as the differential
    oracle ([test/test_periodic.ml]).

    The compiler ({!compile}) covers the translatable fragment: basic
    calendars, window-local foreach relations, per-reference index
    selection over a foreach, unions, and differences with a
    statically-flat operand. Everything else — stored/derived calendars,
    [today], literals, label and absolute selection, [caloperate],
    ordering relations — falls back to the interval-set paths. *)

type t

(** Raised when a form would exceed {!max_period} or {!max_spans} —
    e.g. the lcm-lift of two large coprime periods. Callers degrade to
    the interval-set oracle instead of wrapping or truncating. *)
exception Unrepresentable of string

(** Hard caps on the representation: periods above [max_period] fine
    units or more than [max_spans] spans per period raise
    {!Unrepresentable}. *)
val max_period : int

val max_spans : int

(** [make ~period spans] builds the canonical form: offsets are reduced
    mod [period], spans sorted and deduplicated, and the period
    minimized to the smallest divisor that reproduces the collection.
    @raise Invalid_argument on [period < 1] or a span length < 1.
    @raise Unrepresentable past {!max_spans}. *)
val make : period:int -> (int * int) list -> t

val empty : t
val is_empty : t -> bool

(** Canonical-form accessors: the minimal period and the sorted
    [(offset, length)] spans of one period. *)
val period : t -> int

val spans : t -> (int * int) list

val span_count : t -> int

(** Set equality of the denoted interval collections (structural
    equality of canonical forms). *)
val equal : t -> t -> bool

(** {2 Closed-form queries} — all offsets are 0-based fine-unit offsets
    ([Chronon.to_offset]); instances are [(start, length)] pairs. *)

(** Is offset [o] covered by some instance? O(log spans). *)
val covers : t -> int -> bool

(** Is the exact interval [(start, length)] an instance? *)
val mem_span : t -> int * int -> bool

(** First instance with start strictly after [o]; [None] only when
    empty. Pure arithmetic — no generation, no upper bound. *)
val next_start : t -> int -> (int * int) option

(** [nth_start t ~from_ n] is the [n]-th (1-based) instance whose start
    is at or after [from_]. *)
val nth_start : t -> from_:int -> int -> (int * int) option

(** Number of instance starts in [\[lo, hi\]], in closed form. *)
val count_starts : t -> lo:int -> hi:int -> int

(** Instances ordered by (start, length), starting with the first whose
    start is at or after [from_]. Infinite unless empty. *)
val starts : t -> from_:int -> (int * int) Seq.t

(** Instances with start inside [\[lo, hi\]]. *)
val instances_in : t -> lo:int -> hi:int -> (int * int) list

(** Whole (unclipped) instances intersecting the chronon window, as an
    interval set — the materialization used by the [Pset] plan
    instruction and the differential tests.
    @raise Unrepresentable past [max_intervals] (default 1M). *)
val to_interval_set : ?max_intervals:int -> t -> window:Interval.t -> Interval_set.t

(** {2 Element-wise algebra} — the lcm-lift followed by exact span-set
    union/intersection/difference, mirroring [Interval_set]'s
    element-wise operations instance for instance.
    @raise Unrepresentable when the lcm exceeds {!max_period}. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** {2 Pointwise algebra} — the forms as sets of covered offsets.
    Results are coalesced maximal arcs; full coverage canonicalizes to
    period 1 with the single span [(0, 1)]. *)

val pointwise : t -> t
val complement : t -> t
val pointwise_union : t -> t -> t
val pointwise_inter : t -> t -> t
val pointwise_diff : t -> t -> t

(** {2 The compiler} *)

(** Structural translatability: true when the expression is in the
    compilable fragment (basic calendars, containment-style foreach,
    index selection directly over a foreach, union, difference with a
    statically-flat side). A [true] still lets {!compile} return [None]
    on representation grounds (misalignment, {!max_period}); [false]
    means the interval-set paths must be used. *)
val translatable : Env.t -> Ast.expr -> bool

(** Compile to the normal form at the expression's generation unit
    (returned alongside). [None] when untranslatable or unrepresentable.
    Memoized per (epoch, granularity-resolved expression); safe to call
    from parallel probe domains. *)
val compile : Context.t -> Ast.expr -> (Granularity.t * t) option
