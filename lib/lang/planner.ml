(** Plan construction (parser step 5): choose the generation unit, bound
    every [generate] by the demand flowing down from selection nodes (the
    "simple look-ahead"), and share calendars used more than once.

    Demands are computed top-down: the root demands the lifespan, a label
    selection like [1993/YEARS] narrows the demand for its operand to that
    year, the right operand of a foreach inherits the parent demand, and
    the left operand gets the demand widened according to the listop
    (containment ops need one extra unit of padding at each edge so that
    boundary-straddling units are generated whole; ordering ops like [<]
    may reach back to the start of the lifespan). Shared subexpressions
    take the hull of their demands and are emitted once. *)

exception Plan_error of string

let ub_seconds = function
  | Granularity.Seconds -> 1
  | Granularity.Minutes -> 60
  | Granularity.Hours -> 3600
  | Granularity.Days -> 86400
  | Granularity.Weeks -> 604800
  | Granularity.Months -> 31 * 86400
  | Granularity.Years -> 366 * 86400
  | Granularity.Decades -> 3653 * 86400
  | Granularity.Centuries -> 36525 * 86400

let lb_seconds = function
  | Granularity.Seconds -> 1
  | Granularity.Minutes -> 60
  | Granularity.Hours -> 3600
  | Granularity.Days -> 86400
  | Granularity.Weeks -> 604800
  | Granularity.Months -> 28 * 86400
  | Granularity.Years -> 365 * 86400
  | Granularity.Decades -> 3652 * 86400
  | Granularity.Centuries -> 36524 * 86400

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

(* Padding (in fine chronons) large enough to cover one unit of the
   coarsest calendar in the expression. *)
let pad_for ~fine grans =
  let lb = lb_seconds fine in
  List.fold_left (fun acc g -> max acc ((ub_seconds g / lb) + 2)) 2 grans

(* Streamability: chunked evaluation (Interp.stream_expr) computes the
   expression over consecutive padded windows and keeps each interval in
   the chunk owning its low endpoint. That is sound exactly when every
   sub-result is window-local — an interval's membership depends only on
   values within one pad of it:

   - basic and stored calendars are (stored ones ignore the window
     entirely, so every chunk sees the same set and ownership dedups);
   - containment-style listops relate an interval to a reference it
     touches; ordering ops (Before/Meets/Le/Contains) reach arbitrarily
     far outside the chunk;
   - index selection is per-reference-unit over a foreach (chunk-local
     because references are evaluated whole under the pad) but absolute
     over anything else;
   - caloperate anchors its grouping at the window start, [today] moves
     with the clock, and derived scripts may do any of the above. *)
let streamable env e =
  let containment = function
    | Listop.During | Listop.Overlaps | Listop.Intersects | Listop.Starts
    | Listop.Finishes | Listop.Equals ->
      true
    | Listop.Before | Listop.Meets | Listop.Le | Listop.Contains -> false
  in
  let rec go e =
    match e with
    | Ast.Ident name -> (
      match Env.find env name with
      | Some (Env.Basic _) | Some (Env.Stored _) -> true
      | Some Env.Today | Some (Env.Derived _) | None -> false)
    | Ast.Lit _ -> true
    | Ast.Select (Ast.Label _, inner) -> go inner
    | Ast.Select (Ast.Index _, (Ast.Foreach _ as inner)) -> go inner
    | Ast.Select (Ast.Index _, _) -> false
    | Ast.Foreach { op; lhs; rhs; _ } -> containment op && go lhs && go rhs
    | Ast.Union (a, b) | Ast.Diff (a, b) -> go a && go b
    | Ast.Calop _ -> false
  in
  go e

let plan (ctx : Context.t) expr =
  let env = ctx.Context.env in
  let e = Factorize.factorize env expr in
  let fine = Gran.finest_of_expr env e in
  let lifespan = Context.lifespan_in ctx fine in
  let grans =
    List.filter_map
      (fun n -> Gran.of_expr env (Ast.Ident n))
      (Ast.idents_of_expr e)
  in
  let pad = pad_for ~fine grans in
  let extend w =
    Interval.make (Chronon.add (Interval.lo w) (-pad)) (Chronon.add (Interval.hi w) pad)
  in
  (* The evaluation horizon extends one pad beyond the lifespan so that
     units straddling the lifespan boundary are generated whole (the first
     week of 1993 is (-4,3), not a clipped (1,3)). *)
  let horizon = extend lifespan in
  let label_window x inner =
    let span y1 y2 =
      Unit_system.chronon_span_of_dates ~epoch:ctx.Context.epoch fine (Civil.make y1 1 1)
        (Civil.make y2 12 31)
    in
    match Gran.of_expr env inner with
    | Some Granularity.Years -> span x x
    | Some Granularity.Decades ->
      let d0 = floor_div x 10 * 10 in
      span d0 (d0 + 9)
    | Some Granularity.Centuries ->
      let c0 = floor_div x 100 * 100 in
      span c0 (c0 + 99)
    | Some g ->
      raise
        (Plan_error
           (Printf.sprintf "label selection %d/ applied to %s operand (need YEARS or coarser)"
              x (Granularity.to_string g)))
    | None -> raise (Plan_error "label selection on operand of unknown granularity")
  in
  let meet a b =
    match (a, b) with
    | None, _ | _, None -> None
    | Some x, Some y -> Interval.intersect x y
  in
  let hull_opt a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (Interval.hull x y)
  in
  (* The window an interval of the left operand may occupy, given where the
     right operand's values can lie: containment-style ops keep it within a
     padded copy of that window; ordering ops only bound the high end. *)
  let relation_window op rhs_bound =
    match rhs_bound with
    | None -> None
    | Some w -> (
      match op with
      | Listop.During | Listop.Overlaps | Listop.Intersects | Listop.Starts
      | Listop.Finishes | Listop.Equals ->
        Some (extend w)
      | Listop.Before | Listop.Meets | Listop.Le ->
        Some
          (Interval.make
             (Chronon.min (Interval.lo horizon) (Interval.lo w))
             (Chronon.add (Interval.hi w) pad))
      | Listop.Contains ->
        (* A containing interval can extend past the reference on both
           sides without bound. *)
        Some horizon)
  in
  (* Bottom-up bound: the smallest statically-known window containing every
     value of the expression. This is what the selection look-ahead
     propagates: in Example 1, the bound of [1]/MONTHS:during:1993/YEARS is
     the year 1993, so WEEKS and DAYS need only be generated around it. *)
  let bounds : (Ast.expr, Interval.t option) Hashtbl.t = Hashtbl.create 64 in
  let rec bound e =
    match Hashtbl.find_opt bounds e with
    | Some b -> b
    | None ->
      let b =
        match e with
        | Ast.Ident _ -> Some horizon
        | Ast.Lit [] -> None
        | Ast.Lit pairs ->
          let los = List.map fst pairs and his = List.map snd pairs in
          Some
            (Interval.make
               (List.fold_left Chronon.min (List.hd los) los)
               (List.fold_left Chronon.max (List.hd his) his))
        | Ast.Select (Ast.Label x, inner) -> meet (Some (label_window x inner)) (bound inner)
        | Ast.Select (Ast.Index _, inner) -> bound inner
        | Ast.Foreach { op; lhs; rhs; _ } ->
          meet (bound lhs) (relation_window op (bound rhs))
        | Ast.Union (a, b) -> hull_opt (bound a) (bound b)
        | Ast.Diff (a, _) -> bound a
        | Ast.Calop { arg; _ } -> bound arg
      in
      Hashtbl.replace bounds e b;
      b
  in
  (* Pass 1: top-down demands, narrowed by the bounds of foreach rhs. *)
  let demands : (Ast.expr, Interval.t option) Hashtbl.t = Hashtbl.create 64 in
  let note e d =
    let merged =
      match (Hashtbl.find_opt demands e, d) with
      | None, d -> d
      | Some None, d -> d
      | Some (Some w), Some w' -> Some (Interval.hull w w')
      | Some (Some w), None -> Some w
    in
    Hashtbl.replace demands e merged
  in
  let rec collect e d =
    note e d;
    match e with
    | Ast.Ident _ | Ast.Lit _ -> ()
    | Ast.Select (Ast.Label x, inner) ->
      let lw = label_window x inner in
      let d' = match d with None -> None | Some w -> Interval.intersect w lw in
      collect inner d'
    | Ast.Select (Ast.Index _, inner) -> collect inner d
    | Ast.Foreach { op; lhs; rhs; _ } ->
      collect rhs d;
      (* Containment-style ops keep results inside the parent demand, so
         the lhs demand meets it; ordering ops keep whole intervals that
         may lie outside the parent demand, so only the relation window
         applies. *)
      let lhs_d =
        match op with
        | Listop.During | Listop.Overlaps | Listop.Intersects | Listop.Starts
        | Listop.Finishes | Listop.Equals ->
          meet d (relation_window op (bound rhs))
        | Listop.Before | Listop.Meets | Listop.Le | Listop.Contains ->
          (* Not narrowed by the parent demand: a later positional
             selection (e.g. [1]/X:<:Y) may reach intervals the parent
             would filter out. Clipped to the horizon like the reference
             evaluator. *)
          meet (Some horizon) (relation_window op (bound rhs))
      in
      collect lhs lhs_d
    | Ast.Union (a, b) | Ast.Diff (a, b) -> collect a d; collect b d
    | Ast.Calop { arg; _ } ->
      (* Grouping is anchored at the operand's first interval, so the
         operand must be demanded from the start of the horizon for group
         boundaries to be stable. *)
      let d' =
        match d with
        | None -> None
        | Some w ->
          Some (Interval.make (Interval.lo horizon) (Chronon.add (Interval.hi w) pad))
      in
      collect arg d'
  in
  collect e (Some horizon);
  (* Pass 2: emission with sharing. *)
  let memo : (Ast.expr, Plan.reg) Hashtbl.t = Hashtbl.create 64 in
  let instrs = ref [] and nreg = ref 0 in
  let fresh () =
    let r = !nreg in
    incr nreg;
    r
  in
  let push i = instrs := i :: !instrs in
  let rec emit e =
    match Hashtbl.find_opt memo e with
    | Some r -> r
    | None ->
      let window () =
        match Hashtbl.find_opt demands e with Some d -> d | None -> Some horizon
      in
      let dst =
        match e with
        | Ast.Ident name -> (
          let d = fresh () in
          match Env.find_exn env name with
          | Env.Basic g ->
            let w = window () in
            let key =
              Option.map (fun w -> Canon.gen_key ~coarse:g ~fine ~window:w) w
            in
            push (Plan.Gen { dst = d; coarse = g; window = w; key });
            d
          | Env.Stored _ | Env.Derived _ | Env.Today ->
            push (Plan.Load { dst = d; name; window = window () });
            d)
        | Ast.Lit pairs ->
          let d = fresh () in
          push (Plan.Mklit { dst = d; pairs });
          d
        | Ast.Select (Ast.Index atoms, inner) ->
          let src = emit inner in
          let d = fresh () in
          push (Plan.Select_r { dst = d; atoms; src });
          d
        | Ast.Select (Ast.Label x, inner) ->
          let src = emit inner in
          let d = fresh () in
          push (Plan.Select_label { dst = d; window = Some (label_window x inner); src });
          d
        | Ast.Foreach { strict; op; lhs; rhs } ->
          let l = emit lhs in
          let r = emit rhs in
          let d = fresh () in
          push (Plan.Foreach_r { dst = d; strict; op; lhs = l; rhs = r });
          d
        | Ast.Union (a, b) ->
          let ra = emit a in
          let rb = emit b in
          let d = fresh () in
          push (Plan.Union_r { dst = d; a = ra; b = rb });
          d
        | Ast.Diff (a, b) ->
          let ra = emit a in
          let rb = emit b in
          let d = fresh () in
          push (Plan.Diff_r { dst = d; a = ra; b = rb });
          d
        | Ast.Calop { counts; arg } ->
          let src = emit arg in
          let d = fresh () in
          push (Plan.Calop_r { dst = d; counts; src });
          d
      in
      Hashtbl.add memo e dst;
      dst
  in
  let result = emit e in
  { Plan.fine; instrs = List.rev !instrs; result; nregs = !nreg }

(* ------------------------------------------------------------------ *)
(* Closed-form periodic strategy (section: periodic normal form). *)

(* The translatability gate, re-exported so strategy choosers (next-fire
   probes, the session shell) ask the planner rather than the compiler
   directly. *)
let periodic env e = Periodic.translatable env e

(* Compile to a single-instruction plan around the periodic normal form.
   [None] when the expression is untranslatable or unrepresentable —
   callers fall back to {!plan}. The default window matches {!plan}'s
   evaluation horizon (padded lifespan) so the two strategies agree on
   interior units; an explicit [window] supports probe-sized demands. *)
let plan_periodic (ctx : Context.t) ?window expr =
  match Periodic.compile ctx expr with
  | None -> None
  | Some (fine, pset) ->
    let window =
      match window with
      | Some w -> w
      | None ->
        let env = ctx.Context.env in
        let lifespan = Context.lifespan_in ctx fine in
        let grans =
          List.filter_map
            (fun n -> Gran.of_expr env (Ast.Ident n))
            (Ast.idents_of_expr expr)
        in
        let pad = pad_for ~fine grans in
        Interval.make
          (Chronon.add (Interval.lo lifespan) (-pad))
          (Chronon.add (Interval.hi lifespan) pad)
    in
    Some
      {
        Plan.fine;
        instrs = [ Plan.Pset { dst = 0; pset; window = Some window } ];
        result = 0;
        nregs = 1;
      }
