(** Calendar definitions visible to scripts.

    A name resolves (case-insensitively) to one of:
    {ul
    {- a {e basic} calendar (SECONDS ... CENTURY), generated on demand;}
    {- a {e derived} calendar, defined by a script (the CALENDARS table's
       derivation-script);}
    {- a {e stored} calendar with explicit values (e.g. HOLIDAYS);}
    {- the builtin [today], resolved against the evaluation clock.}} *)

type def =
  | Basic of Granularity.t
  | Derived of { script : Ast.script; source : string }
  | Stored of { values : Interval_set.t; granularity : Granularity.t }
  | Today

type t = {
  defs : (string, def) Hashtbl.t;
  mutable hooks : (string -> unit) list;  (** change listeners, newest first *)
}

exception Unknown_calendar of string

let key = String.uppercase_ascii

let notify t name = List.iter (fun f -> f (key name)) t.hooks

let add t name def =
  Hashtbl.replace t.defs (key name) def;
  notify t name

let on_change t f = t.hooks <- f :: t.hooks

let create () =
  let t = { defs = Hashtbl.create 32; hooks = [] } in
  List.iter (fun g -> add t (Granularity.to_string g) (Basic g)) Granularity.all;
  add t "today" Today;
  t

let find t name = Hashtbl.find_opt t.defs (key name)

let find_exn t name =
  match find t name with Some d -> d | None -> raise (Unknown_calendar name)

let mem t name = Hashtbl.mem t.defs (key name)

let remove t name =
  Hashtbl.remove t.defs (key name);
  notify t name
let names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.defs [])

(** [define_script t ~name ~source] parses and registers a derived
    calendar. *)
let define_script t ~name ~source =
  match Parser.script source with
  | Ok script -> add t name (Derived { script; source }); Ok ()
  | Error e -> Error e

let define_stored t ~name ~granularity values =
  add t name (Stored { values; granularity })
