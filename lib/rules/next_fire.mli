(** Occurrence computation for time-based rules: when does a calendar
    expression next trigger?

    A calendar expression denotes intervals; a rule triggers at each
    interval's starting instant (seconds since the epoch's midnight). *)

open Cal_lang

(** Raised instead of probing an inverted window when a clock source
    jumps backwards (simulated time is monotone; see the manager's
    advance guard). *)
exception Clock_regression of { now : int; target : int }

(** All occurrence instants of [expr] with [from_ < instant <= until].
    Evaluation is bounded to a padded copy of that window.
    @raise Clock_regression when [until < from_] (an inverted window). *)
val occurrences : Context.t -> Ast.expr -> from_:int -> until:int -> int list

(** How {!next} searches.
    {ul
    {- [`Materialize] — evaluate over windows of [lookahead] seconds,
       doubling until an occurrence is found or the lifespan ends (the
       original path; works for every expression);}
    {- [`Stream] — pull intervals lazily forward from the probe instant
       via [Interp.stream_expr]; only sound for expressions
       [Planner.streamable] accepts;}
    {- [`Periodic] — compile to the minimal periodic normal form
       ({!Cal_lang.Periodic}) and answer by O(log spans) arithmetic: no
       generation, no cache window, and {e no lifespan bound} — a
       periodic rule never goes dormant. Falls back like [`Auto] when
       the expression is outside the translatable fragment;}
    {- [`Auto] (the default) — periodic when translatable, else stream
       when streamable, else materialize.}} *)
type strategy = [ `Auto | `Materialize | `Stream | `Periodic ]

(** The path a probe with this strategy will actually take: [`Auto] and
    [`Periodic] resolve through the {!Cal_lang.Periodic.compile} gate,
    then the {!Cal_lang.Planner.streamable} gate. Exposed so callers
    (manager stats, benches) can report how each rule is being probed. *)
val resolve :
  Context.t -> Ast.expr -> strategy -> [ `Materialize | `Stream | `Periodic ]

(** First occurrence strictly after [after]; [None] when the rule is
    dormant. Under [`Materialize]/[`Stream] (or fallback from the other
    two) the search stops at the end of the context lifespan; under a
    resolved [`Periodic] the horizon is unbounded and a non-empty
    periodic rule always has a next occurrence. *)
val next :
  Context.t -> Ast.expr -> after:int -> ?lookahead:int -> ?strategy:strategy -> unit -> int option
