(** DBCRON: the daemon of section 4, modeled on UNIX cron.

    Every [probe_period] seconds it probes RULE-TIME for the rules that
    trigger during the next period and loads them into a main-memory
    min-heap; between probes it fires heap entries as simulated time
    reaches them. The generic payload keeps this module independent of
    the rule representation. *)

type 'a t = {
  probe_period : int;  (** T, in seconds of simulated time *)
  mutable last_probe : int;
  heap : 'a Min_heap.t;
  mutable probes : int;  (** statistics: number of probes performed *)
  mutable loaded : int;  (** statistics: entries loaded into the heap *)
  mutable heap_peak : int;  (** statistics: max heap size observed *)
  mutable fired : int;  (** statistics: entries popped and fired *)
}

(* One probe's worth of entries, heapified in a single O(n) bulk load;
   the peak is sampled right after, while the batch is fully resident. *)
let load_batch t entries =
  Min_heap.add_list t.heap entries;
  t.loaded <- t.loaded + List.length entries;
  t.heap_peak <- max t.heap_peak (Min_heap.length t.heap)

let create ~probe_period ~now ~load =
  if probe_period <= 0 then invalid_arg "Dbcron.create: probe_period must be positive";
  let t =
    {
      probe_period;
      last_probe = now;
      heap = Min_heap.create ();
      probes = 0;
      loaded = 0;
      heap_peak = 0;
      fired = 0;
    }
  in
  (* Initial probe covers [now, now + T). *)
  t.probes <- 1;
  load_batch t (load ~window_end:(now + probe_period));
  t

(** Exclusive end of the window the heap currently covers. *)
let window_end t = t.last_probe + t.probe_period

(** The probe period this daemon was created with. *)
let probe_period t = t.probe_period

(** Instant of the next probe. *)
let next_probe t = t.last_probe + t.probe_period

(** [offer t at v] inserts an entry directly when it falls inside the
    current window (used right after a rule fires or is defined, so it is
    not missed before the next probe). Returns true when accepted.

    Boundary: an entry landing {e exactly} at [window_end] is rejected —
    the current window is the half-open [\[last_probe, window_end)], and
    the next probe's window [\[window_end, window_end + T)] covers it.
    Because probes happen before firings at the same instant
    (see {!step}), the entry still fires at exactly [at] with no loss;
    the caller must leave its RULE_TIME row in place so that probe can
    load it. *)
let offer t at v =
  if at < window_end t then begin
    Min_heap.push t.heap at v;
    t.loaded <- t.loaded + 1;
    t.heap_peak <- max t.heap_peak (Min_heap.length t.heap);
    true
  end
  else false

(** Instant of the next thing DBCRON must do (probe or fire). *)
let next_event t =
  match Min_heap.peek t.heap with
  | Some (at, _) -> min at (next_probe t)
  | None -> next_probe t

(** [step t ~now ~load] performs all work due at instants <= [now]:
    re-probes when a probe point passes, and returns the payloads due to
    fire, in chronological order. [load ~window_end] must return the
    (instant, payload) pairs with instant < window_end that are not
    already in the heap. *)
let step t ~now ~load =
  let fired = ref [] in
  let continue = ref true in
  while !continue do
    let np = next_probe t in
    let top = Min_heap.peek t.heap in
    match top with
    | Some (at, v) when at <= now && at <= np ->
      ignore (Min_heap.pop t.heap);
      t.fired <- t.fired + 1;
      fired := (at, v) :: !fired
    | _ ->
      if np <= now then begin
        t.last_probe <- np;
        t.probes <- t.probes + 1;
        load_batch t (load ~window_end:(np + t.probe_period))
      end
      else continue := false
  done;
  List.rev !fired

let pending t = Min_heap.length t.heap
let stats t = (t.probes, t.loaded)

(** Largest number of simultaneously-pending heap entries observed. *)
let heap_peak t = t.heap_peak

(** Cumulative entries popped and fired by {!step}. With closed-form
    periodic rules the probe loop runs over an unbounded horizon (rules
    never go dormant), so [fired] keeps growing as long as time advances;
    the benchmarks cross-check it against the manager's firing log. *)
let fired t = t.fired
