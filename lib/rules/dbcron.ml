(** DBCRON: the daemon of section 4, modeled on UNIX cron.

    Every [probe_period] seconds it probes RULE-TIME for the rules that
    trigger during the next period and loads them into a main-memory
    pending structure; between probes it fires entries as simulated time
    reaches them. The generic payload keeps this module independent of
    the rule representation.

    The pending structure is either the stable {!Min_heap} or the
    hierarchical {!Timer_wheel}. Both pop in ascending (instant,
    insertion sequence) order, so the choice is invisible to callers —
    the heap stays on as the differential oracle for the wheel, which is
    the default (O(1) amortized insert/advance at million-rule scale
    versus the heap's O(log n) sifts). *)

type 'a pending = Heap of 'a Min_heap.t | Wheel of 'a Timer_wheel.t

type 'a t = {
  probe_period : int;  (** T, in seconds of simulated time *)
  mutable last_probe : int;
  pending : 'a pending;
  mutable probes : int;  (** statistics: number of probes performed *)
  mutable loaded : int;  (** statistics: entries loaded into the heap *)
  mutable heap_peak : int;  (** statistics: max pending size observed *)
  mutable fired : int;  (** statistics: entries popped and fired *)
}

let pending_length = function
  | Heap h -> Min_heap.length h
  | Wheel w -> Timer_wheel.length w

let pending_push t at v =
  match t.pending with
  | Heap h -> Min_heap.push h at v
  | Wheel w -> Timer_wheel.push w at v

let pending_peek t =
  match t.pending with Heap h -> Min_heap.peek h | Wheel w -> Timer_wheel.peek w

let pending_pop t =
  match t.pending with Heap h -> Min_heap.pop h | Wheel w -> Timer_wheel.pop w

(* One probe's worth of entries, bulk-loaded (the heap heapifies in one
   O(n) pass; the wheel files each in O(1) amortized). Both add_lists
   return the batch size, so the entry list is walked exactly once; the
   peak is sampled right after, while the batch is fully resident. *)
let load_batch t entries =
  let n =
    match t.pending with
    | Heap h -> Min_heap.add_list h entries
    | Wheel w -> Timer_wheel.add_list w entries
  in
  t.loaded <- t.loaded + n;
  t.heap_peak <- max t.heap_peak (pending_length t.pending)

let create ?(pending = `Wheel) ~probe_period ~now ~load () =
  if probe_period <= 0 then invalid_arg "Dbcron.create: probe_period must be positive";
  let t =
    {
      probe_period;
      last_probe = now;
      pending =
        (match pending with
        | `Heap -> Heap (Min_heap.create ())
        | `Wheel -> Wheel (Timer_wheel.create ~horizon:probe_period ()));
      probes = 0;
      loaded = 0;
      heap_peak = 0;
      fired = 0;
    }
  in
  (* Initial probe covers [now, now + T). *)
  t.probes <- 1;
  load_batch t (load ~window_end:(now + probe_period));
  t

(** Exclusive end of the window the pending structure currently covers. *)
let window_end t = t.last_probe + t.probe_period

(** The probe period this daemon was created with. *)
let probe_period t = t.probe_period

(** Which pending structure this daemon runs on. *)
let pending_kind t = match t.pending with Heap _ -> `Heap | Wheel _ -> `Wheel

(** Instant of the next probe. *)
let next_probe t = t.last_probe + t.probe_period

(** [offer t at v] inserts an entry directly when it falls inside the
    current window (used right after a rule fires or is defined, so it is
    not missed before the next probe). Returns true when accepted.

    Boundary: an entry landing {e exactly} at [window_end] is rejected —
    the current window is the half-open [\[last_probe, window_end)], and
    the next probe's window [\[window_end, window_end + T)] covers it.
    Because probes happen before firings at the same instant
    (see {!step}), the entry still fires at exactly [at] with no loss;
    the caller must leave its RULE_TIME row in place so that probe can
    load it. *)
let offer t at v =
  if at < window_end t then begin
    pending_push t at v;
    t.loaded <- t.loaded + 1;
    t.heap_peak <- max t.heap_peak (pending_length t.pending);
    true
  end
  else false

(** Instant of the next thing DBCRON must do (probe or fire). *)
let next_event t =
  match pending_peek t with
  | Some (at, _) -> min at (next_probe t)
  | None -> next_probe t

(** [step t ~now ~load] performs all work due at instants <= [now]:
    re-probes when a probe point passes, and returns the payloads due to
    fire, in chronological order. [load ~window_end] must return the
    (instant, payload) pairs with instant < window_end that are not
    already pending. *)
let step t ~now ~load =
  let fired = ref [] in
  let continue = ref true in
  while !continue do
    let np = next_probe t in
    let top = pending_peek t in
    match top with
    | Some (at, v) when at <= now && at <= np ->
      ignore (pending_pop t);
      t.fired <- t.fired + 1;
      fired := (at, v) :: !fired
    | _ ->
      if np <= now then begin
        t.last_probe <- np;
        t.probes <- t.probes + 1;
        load_batch t (load ~window_end:(np + t.probe_period))
      end
      else continue := false
  done;
  List.rev !fired

let pending t = pending_length t.pending

(** Occupied wheel slots (the pending count itself under [`Heap], which
    has no slot structure). *)
let occupancy t =
  match t.pending with
  | Heap h -> Min_heap.length h
  | Wheel w -> Timer_wheel.occupancy w

let stats t = (t.probes, t.loaded)

(** Largest number of simultaneously-pending entries observed. *)
let heap_peak t = t.heap_peak

(** Cumulative entries popped and fired by {!step}. With closed-form
    periodic rules the probe loop runs over an unbounded horizon (rules
    never go dormant), so [fired] keeps growing as long as time advances;
    the benchmarks cross-check it against the manager's firing log. *)
let fired t = t.fired
