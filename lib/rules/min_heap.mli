(** Array-based binary min-heap keyed by integer priority — DBCRON's
    main-memory structure of upcoming trigger points.

    The heap is {e stable}: entries with equal priority pop in insertion
    order, so the pop sequence depends only on the insertion sequence —
    {!push} loops and {!add_list}/{!of_list} bulk heapification are
    observationally identical. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> int -> 'a -> unit

(** [add_list t entries] inserts every [(priority, payload)] pair in one
    O(length t + |entries|) bottom-up heapify (falling back to
    individual sift-ups when [entries] is small relative to the heap),
    and returns the number of entries inserted — already known from the
    reservation, so callers never traverse [entries] a second time. *)
val add_list : 'a t -> (int * 'a) list -> int

(** [of_list entries] — a fresh heap built by {!add_list}. *)
val of_list : (int * 'a) list -> 'a t

(** Smallest-priority entry, not removed. *)
val peek : 'a t -> (int * 'a) option

val pop : 'a t -> (int * 'a) option

(** Pop every entry with priority <= [bound], in priority order. *)
val pop_due : 'a t -> int -> (int * 'a) list
