(** Array-based binary min-heap keyed by integer priority — DBCRON's
    main-memory structure of upcoming trigger points.

    Entries carry an insertion sequence number and the heap orders by
    (priority, sequence), so equal-priority entries pop in insertion
    order. That makes the pop sequence a function of the insertion
    sequence alone — bulk {!add_list} heapification and one-by-one
    {!push} produce identical pop orders, which is what lets DBCRON
    switch probe loading to O(n) heapify without perturbing the firing
    order of rules that trigger at the same instant. *)

type 'a t = {
  mutable arr : (int * int * 'a) array;  (* (priority, insertion seq, payload) *)
  mutable len : int;
  mutable seq : int;
}

let create () = { arr = [||]; len = 0; seq = 0 }
let length t = t.len
let is_empty t = t.len = 0

let less (p1, s1, _) (p2, s2, _) = p1 < p2 || (p1 = p2 && s1 < s2)

let swap t i j =
  let x = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.arr.(i) t.arr.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.arr.(l) t.arr.(!smallest) then smallest := l;
  if r < t.len && less t.arr.(r) t.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let reserve t extra dummy =
  let needed = t.len + extra in
  if needed > Array.length t.arr then begin
    let bigger = Array.make (max 8 (max needed (2 * t.len))) dummy in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end

let push t prio v =
  reserve t 1 (prio, 0, v);
  t.arr.(t.len) <- (prio, t.seq, v);
  t.seq <- t.seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some (let p, _, v = t.arr.(0) in (p, v))

let pop t =
  if t.len = 0 then None
  else begin
    let p, _, v = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      sift_down t 0
    end;
    Some (p, v)
  end

(** Pop every entry with priority <= [bound], in priority order. *)
let pop_due t bound =
  let rec go acc =
    match peek t with
    | Some (p, _) when p <= bound -> (
      match pop t with Some e -> go (e :: acc) | None -> List.rev acc)
    | _ -> List.rev acc
  in
  go []

(** Bulk insertion: append every entry, then restore the heap property
    in one bottom-up Floyd pass — O(len + |entries|) instead of the
    O(|entries| log len) of repeated pushes. Small batches relative to
    the heap sift up individually instead, which is cheaper than
    re-heapifying everything. Returns the batch size — already computed
    for the reservation — so callers need no second traversal. *)
let add_list t entries =
  match entries with
  | [] -> 0
  | (p0, v0) :: _ ->
    let m = List.length entries in
    reserve t m (p0, 0, v0);
    List.iter
      (fun (p, v) ->
        t.arr.(t.len) <- (p, t.seq, v);
        t.seq <- t.seq + 1;
        t.len <- t.len + 1)
      entries;
    if m >= max 8 (t.len / 4) then
      for i = (t.len / 2) - 1 downto 0 do
        sift_down t i
      done
    else
      for i = t.len - m to t.len - 1 do
        sift_up t i
      done;
    m

let of_list entries =
  let t = create () in
  ignore (add_list t entries);
  t
