(** Occurrence computation for time-based rules: when does a calendar
    expression next trigger?

    A calendar expression denotes intervals; a rule triggers at each
    interval's starting instant. The search evaluates the expression over
    a bounded window after the reference instant, doubling the lookahead
    until an occurrence is found or the lifespan ends. *)

open Cal_lang

(** A clock source asked to move backwards: simulated time is monotone,
    so a probe over an inverted window is always a caller bug or an
    injected clock regression, never a legitimate query. *)
exception Clock_regression of { now : int; target : int }

let () =
  Printexc.register_printer (function
    | Clock_regression { now; target } ->
      Some (Printf.sprintf "Clock_regression: clock at %d asked to move back to %d" now target)
    | _ -> None)

let start_instant (ctx : Context.t) ~fine chronon =
  Unit_system.start_of_index ~epoch:ctx.Context.epoch fine (Chronon.to_offset chronon)

(* Evaluation windows are quantized to this many fine chronons so that
   successive probes of one rule — and probes of different rules sharing
   sub-expressions — evaluate over identical bounds and hit the session's
   materialization cache. Widening the window is harmless: occurrences
   are filtered by the exact [from_ < s <= until] below. *)
let window_quantum = 256

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

(* Round towards ±infinity to a quantum multiple; chronon 0 does not
   exist, so a zero result slides one chronon outward. *)
let align_down c =
  let a = floor_div c window_quantum * window_quantum in
  if a = 0 then -1 else a

let align_up c =
  let a = floor_div (c + window_quantum - 1) window_quantum * window_quantum in
  if a = 0 then 1 else a

(** All occurrence instants of [expr] with [from_ < instant <= until]. *)
let occurrences (ctx : Context.t) expr ~from_ ~until =
  if until < from_ then raise (Clock_regression { now = from_; target = until });
  let env = ctx.Context.env in
  let fine = Gran.finest_of_expr env expr in
  let pad = Planner.pad_for ~fine (Gran.grans_of_expr env expr) in
  let lo =
    align_down
      (Chronon.add
         (Chronon.of_offset (Unit_system.index_of_instant ~epoch:ctx.Context.epoch fine from_))
         (-pad))
  in
  let hi =
    align_up
      (Chronon.add
         (Chronon.of_offset (Unit_system.index_of_instant ~epoch:ctx.Context.epoch fine until))
         pad)
  in
  (* Cached evaluation: DBCRON probes every rule over the same window, so
     rules sharing sub-expressions (or repeated probes of one rule) reuse
     materializations from the session cache. *)
  let cal, _ = Interp.eval_expr_cached ctx ~window:(Interval.make lo hi) expr in
  Calendar.flatten cal
  |> Interval_set.fold
       (fun acc iv ->
         let s = start_instant ctx ~fine (Interval.lo iv) in
         if s > from_ && s <= until then s :: acc else acc)
       []
  |> List.sort_uniq Int.compare

type strategy = [ `Auto | `Materialize | `Stream | `Periodic ]

(* Which path a probe will actually take. [`Auto] and [`Periodic] both
   prefer the closed form — [`Periodic] is the caller pinning intent, not
   a promise the expression compiles, so both degrade identically.
   [Periodic.compile] memoizes per (context epoch, expression), so the
   gate costs one hashtable lookup after the first probe. *)
let resolve (ctx : Context.t) expr (s : strategy) =
  match s with
  | `Materialize -> `Materialize
  | `Stream -> `Stream
  | `Auto | `Periodic -> (
    match Periodic.compile ctx expr with
    | Some _ -> `Periodic
    | None -> if Planner.streamable ctx.Context.env expr then `Stream else `Materialize)

let lifespan_end_instant (ctx : Context.t) =
  let _, life_end = ctx.Context.lifespan in
  (Civil.rata_die life_end - Civil.rata_die ctx.Context.epoch + 1) * 86400

(* Streaming probe: pull intervals forward from the chronon containing
   [after] until one starts strictly later. Any interval starting in an
   earlier chronon fires at or before [after], so the stream's start
   point loses nothing; starts are monotone in the stream order, so the
   first qualifying one is the answer. *)
let next_stream (ctx : Context.t) expr ~after =
  let fine = Gran.finest_of_expr ctx.Context.env expr in
  let end_instant = lifespan_end_instant ctx in
  if after >= end_instant then None
  else begin
    let from_ =
      Chronon.of_offset (Unit_system.index_of_instant ~epoch:ctx.Context.epoch fine after)
    in
    let rec find seq =
      match seq () with
      | Seq.Nil -> None
      | Seq.Cons (iv, rest) ->
        let s = start_instant ctx ~fine (Interval.lo iv) in
        if s > end_instant then None else if s > after then Some s else find rest
    in
    find (Interp.stream_expr ctx ~from_ expr)
  end

(* Closed-form probe: no generation, no cache window, no lifespan bound.
   [after] lives in the unit at index [idx], whose start is ≤ [after]; the
   first periodic instance starting at or past [idx] either starts in that
   very unit (instant ≤ [after] — step once more) or in a later unit
   (instant > [after] — the answer). At most two arithmetic probes. *)
let next_periodic (ctx : Context.t) expr ~after =
  match Periodic.compile ctx expr with
  | None -> None
  | Some (fine, pset) ->
    let epoch = ctx.Context.epoch in
    let rec go i =
      match Periodic.next_start pset i with
      | None -> None
      | Some (s, _len) ->
        let instant = Unit_system.start_of_index ~epoch fine s in
        if instant > after then Some instant else go (s + 1)
    in
    go (Unit_system.index_of_instant ~epoch fine after)

(** First occurrence strictly after [after]. The closed-form path probes
    over an unbounded horizon; the other two search up to the end of the
    context lifespan. [lookahead] (seconds) sizes the first search window
    of the materializing path; the streaming path pulls chunks forward
    instead and never re-scans. *)
let next (ctx : Context.t) expr ~after ?(lookahead = 400 * 86400) ?(strategy = `Auto) () =
  match resolve ctx expr strategy with
  | `Periodic -> next_periodic ctx expr ~after
  | `Stream -> next_stream ctx expr ~after
  | `Materialize ->
    begin
    let end_instant = lifespan_end_instant ctx in
    let rec search until =
      if after >= end_instant then None
      else
        match occurrences ctx expr ~from_:after ~until with
        | s :: _ -> Some s
        | [] -> if until >= end_instant then None else search (min end_instant (until * 2 - after))
    in
    search (min end_instant (after + lookahead))
  end
