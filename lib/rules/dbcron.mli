(** DBCRON: the daemon of section 4, modeled on UNIX cron.

    Every [probe_period] seconds of simulated time it probes RULE-TIME
    (via the [load] callback) for the rules that trigger during the next
    period and loads them into a main-memory min-heap; between probes it
    fires heap entries as time reaches them. The payload type keeps this
    module independent of the rule representation. *)

type 'a t

(** [create ~probe_period ~now ~load] performs the initial probe covering
    [now, now + probe_period).

    [pending] picks the main-memory structure holding loaded trigger
    points: the hierarchical {!Timer_wheel} (default — O(1) amortized
    insert/advance at million-rule scale) or the stable {!Min_heap}
    (the differential oracle). Both pop in ascending
    (instant, insertion sequence) order, so every observable — firing
    sequence, probe/loaded/peak/fired statistics — is identical under
    either choice.
    @raise Invalid_argument on a non-positive period. *)
val create :
  ?pending:[ `Heap | `Wheel ] ->
  probe_period:int ->
  now:int ->
  load:(window_end:int -> (int * 'a) list) ->
  unit ->
  'a t

(** Exclusive end of the window the heap currently covers. *)
val window_end : 'a t -> int

(** The probe period the daemon was created with. *)
val probe_period : 'a t -> int

(** Which pending structure this daemon runs on. *)
val pending_kind : 'a t -> [ `Heap | `Wheel ]

(** Instant of the next probe. *)
val next_probe : 'a t -> int

(** [offer t at v] inserts an entry directly when it falls inside the
    current window (used right after a rule fires or is defined, so it is
    not missed before the next probe). Returns [true] when accepted.

    An entry at exactly [window_end] is rejected (the window is
    half-open) but {e not lost}: the next probe's window
    [\[window_end, window_end + T)] covers it, and {!step} probes before
    firing at a given instant, so it still fires at exactly its instant —
    provided the caller leaves its RULE_TIME row for that probe to
    load. *)
val offer : 'a t -> int -> 'a -> bool

(** Instant of the next thing DBCRON must do (probe or fire). *)
val next_event : 'a t -> int

(** [step t ~now ~load] performs all work due at instants <= [now]:
    re-probes as probe points pass, and returns the payloads due to fire
    with their instants, in chronological order. [load ~window_end] must
    return the (instant, payload) pairs with instant < window_end that
    are not already in the heap. *)
val step : 'a t -> now:int -> load:(window_end:int -> (int * 'a) list) -> (int * 'a) list

(** Entries currently pending. *)
val pending : 'a t -> int

(** Occupied wheel slots (the pending count itself under [`Heap], which
    has no slot structure). *)
val occupancy : 'a t -> int

(** (probes performed, entries ever loaded). *)
val stats : 'a t -> int * int

(** Largest number of simultaneously-pending heap entries observed. *)
val heap_peak : 'a t -> int

(** Cumulative entries popped and fired by {!step}. Closed-form periodic
    rules keep the probe loop running over an unbounded horizon — they
    never go dormant — so this counter grows for as long as time
    advances; benchmarks cross-check it against the manager's firing
    log. *)
val fired : 'a t -> int
