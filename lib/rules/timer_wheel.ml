(** Hierarchical timer wheel: DBCRON's O(1)-amortized pending structure.

    Entries are filed by the highest 5-bit digit in which their instant
    differs from a monotone lower bound [base] — 32 slots per level, one
    occupancy bitmask word per level. The digit rule makes every bucket
    homogeneous: all entries in a level-[l] slot share their digits at
    and above [l], so the global minimum is always the head of the
    lowest occupied slot of the lowest non-empty level (a couple of bit
    scans). Advancing [base] — which only ever happens past a popped
    minimum — can strand entries at most one cursor slot per level,
    which cascade strictly downward; an entry therefore re-files at most
    [levels] times over its life, giving O(1) amortized insert/advance
    against the heap's O(log n) sifts.

    Instants at or beyond the top level's span (or clamped negative
    xors, when instants straddle the sign bit) wait in a single overflow
    bucket and re-file as [base] approaches. Instants {e below} [base]
    (overdue entries pushed after a restore) clamp their filing key to
    [base] — they land in the cursor slot and, carrying their true
    instant, sort to the very front.

    A bucket is a pair of parallel growable arrays — unboxed instants
    next to payloads — consumed from a head index, so the hot paths
    (cascade refiling, sorting, draining) scan contiguous ints instead
    of chasing boxed nodes. Buckets sort lazily: insertion appends, the
    first peek/pop of a bucket sorts it in place, {e stably}, by
    instant. Stability alone reproduces the heap's (instant, sequence)
    order: pushes append in sequence order, refiles and drains preserve
    relative order, and sorts never reorder equal instants — so entries
    at one instant stay in insertion order everywhere, and pop order
    matches the stable {!Min_heap} exactly. *)

let slot_bits = 5
let wheel_slots = 32 (* 1 lsl slot_bits; 32 keeps every occupancy mask
                        inside OCaml's 63-bit native int — 64 slots
                        would need bit 63, which does not exist *)
let slot_mask = wheel_slots - 1

type 'a bucket = {
  mutable ats : int array; (* instants at [head, head+n), parallel to vals *)
  mutable vals : 'a array;
  mutable head : int;
  mutable n : int;
  mutable sorted : bool;
}

type 'a t = {
  nlevels : int;
  slots : 'a bucket array array; (* nlevels x 32 *)
  masks : int array; (* per-level slot-occupancy bitmask *)
  overflow : 'a bucket; (* beyond the top level's span *)
  mutable base : int; (* lower bound on every filing key *)
  mutable started : bool; (* base is meaningful (first push or advance seen) *)
  mutable len : int;
}

let empty_bucket () = { ats = [||]; vals = [||]; head = 0; n = 0; sorted = true }

let create ~horizon () =
  if horizon <= 0 then invalid_arg "Timer_wheel.create: horizon must be positive";
  (* Smallest level count in [4, 8] whose direct span 32^levels covers
     eight probe windows; farther entries ride the overflow bucket. *)
  let nlevels =
    let rec fit l span =
      if l >= 8 || span >= 8 * horizon then l else fit (l + 1) (span * wheel_slots)
    in
    fit 4 (wheel_slots * wheel_slots * wheel_slots * wheel_slots)
  in
  {
    nlevels;
    slots = Array.init nlevels (fun _ -> Array.init wheel_slots (fun _ -> empty_bucket ()));
    masks = Array.make nlevels 0;
    overflow = empty_bucket ();
    base = 0;
    started = false;
    len = 0;
  }

let length t = t.len
let is_empty t = t.len = 0
let levels t = t.nlevels

let occupancy t =
  let bits = ref (if t.overflow.n = 0 then 0 else 1) in
  Array.iter
    (fun m ->
      let m = ref m in
      while !m <> 0 do
        m := !m land (!m - 1);
        incr bits
      done)
    t.masks;
  !bits

let bucket_add b at v =
  let cap = Array.length b.ats in
  if b.head + b.n = cap then
    if b.n = 0 then begin
      if cap = 0 then begin
        b.ats <- Array.make 8 0;
        b.vals <- Array.make 8 v
      end;
      b.head <- 0
    end
    else if 2 * b.n <= cap then begin
      (* Over half the array is consumed slack: slide back in place. *)
      Array.blit b.ats b.head b.ats 0 b.n;
      Array.blit b.vals b.head b.vals 0 b.n;
      b.head <- 0
    end
    else begin
      let ats = Array.make (2 * cap) 0 in
      let vals = Array.make (2 * cap) v in
      Array.blit b.ats b.head ats 0 b.n;
      Array.blit b.vals b.head vals 0 b.n;
      b.ats <- ats;
      b.vals <- vals;
      b.head <- 0
    end;
  (if b.n = 0 then b.sorted <- true
   else if b.sorted && b.ats.(b.head + b.n - 1) > at then b.sorted <- false);
  let i = b.head + b.n in
  b.ats.(i) <- at;
  b.vals.(i) <- v;
  b.n <- b.n + 1

(* Detach a bucket's contents for refiling or draining. Detaching
   (rather than resetting in place) keeps the iteration safe even when
   entries route back into the very bucket being drained — the overflow
   bucket does that for entries still beyond the span — and lets drain
   chunks own their arrays outright. *)
let bucket_take b =
  let ats = b.ats and vals = b.vals and head = b.head and n = b.n in
  b.ats <- [||];
  b.vals <- [||];
  b.head <- 0;
  b.n <- 0;
  b.sorted <- true;
  (ats, vals, head, n)

(* Stable in-place insertion sort by instant of the parallel segment
   [lo, hi). *)
let insertion_sort ats vals lo hi =
  for i = lo + 1 to hi - 1 do
    let a = ats.(i) and v = vals.(i) in
    let j = ref (i - 1) in
    while !j >= lo && ats.(!j) > a do
      ats.(!j + 1) <- ats.(!j);
      vals.(!j + 1) <- vals.(!j);
      decr j
    done;
    ats.(!j + 1) <- a;
    vals.(!j + 1) <- v
  done

let sort_bucket b =
  if not b.sorted then begin
    let lo = b.head and n = b.n in
    if n <= 32 then insertion_sort b.ats b.vals lo (lo + n)
    else begin
      (* Large buckets sort an index permutation — the comparator reads
         only the unboxed instant array — then apply it in one pass.
         [Array.stable_sort] on ascending indices keeps equal instants
         in position order, preserving insertion order. *)
      let ats = b.ats and vals = b.vals in
      let idx = Array.init n (fun i -> lo + i) in
      Array.stable_sort
        (fun i j ->
          let a = ats.(i) and b = ats.(j) in
          if a < b then -1 else if a > b then 1 else 0)
        idx;
      let nats = Array.make n 0 and nvals = Array.make n vals.(lo) in
      for k = 0 to n - 1 do
        let i = idx.(k) in
        nats.(k) <- ats.(i);
        nvals.(k) <- vals.(i)
      done;
      b.ats <- nats;
      b.vals <- nvals;
      b.head <- 0
    end;
    b.sorted <- true
  end

(* Index of the highest 5-bit digit group in which [d] (an xor of two
   keys) is non-zero; 0 when the keys share all digits above the lowest. *)
let group d =
  let rec go g d = if d < wheel_slots then g else go (g + 1) (d lsr slot_bits) in
  go 0 d

(* File an (at, payload) entry under the current base. Does not touch
   [len]. *)
let file t at v =
  let key = if at < t.base then t.base else at in
  let d = key lxor t.base in
  if d < 0 then bucket_add t.overflow at v (* keys straddle the sign bit *)
  else
    let g = group d in
    if g >= t.nlevels then bucket_add t.overflow at v
    else begin
      let s = (key lsr (g * slot_bits)) land slot_mask in
      bucket_add t.slots.(g).(s) at v;
      t.masks.(g) <- t.masks.(g) lor (1 lsl s)
    end

let push t at v =
  if not t.started then begin
    t.base <- at;
    t.started <- true
  end;
  file t at v;
  t.len <- t.len + 1

let add_list t entries =
  let n = ref 0 in
  List.iter
    (fun (at, v) ->
      push t at v;
      incr n)
    entries;
  !n

(* Lowest set bit index of a non-zero 32-bit mask, by de Bruijn
   multiplication: isolate the bit, multiply into the high 5 bits. *)
let debruijn32 =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let lowest_bit m =
  debruijn32.((((m land -m) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* Where the global minimum lives: the lowest occupied slot of the
   lowest non-empty level — every entry at level l sits strictly after
   every entry below l, and within a level slots ascend with instants.
   [None] means the overflow bucket, whose instants exceed the wheel's. *)
let min_loc t =
  let rec scan l =
    if l >= t.nlevels then None
    else if t.masks.(l) <> 0 then Some (l, lowest_bit t.masks.(l))
    else scan (l + 1)
  in
  scan 0

(* Advance the lower bound to [b1] (a no-op unless [b1 > base]; callers
   guarantee every remaining filing key is >= [b1]). Only the cursor
   slot of each level whose digit the move touched can hold entries that
   now belong lower down; everything else keeps its absolute slot. *)
let advance t b1 =
  if not t.started then begin
    t.base <- b1;
    t.started <- true
  end
  else if b1 > t.base then begin
    let d = b1 lxor t.base in
    let g = if d < 0 then max_int else group d in
    t.base <- b1;
    let top = min g (t.nlevels - 1) in
    for l = top downto 1 do
      let s = (b1 lsr (l * slot_bits)) land slot_mask in
      let b = t.slots.(l).(s) in
      if b.n > 0 then begin
        let ats, vals, head, n = bucket_take b in
        t.masks.(l) <- t.masks.(l) land lnot (1 lsl s);
        for i = head to head + n - 1 do
          file t ats.(i) vals.(i)
        done
      end
    done;
    if g >= t.nlevels && t.overflow.n > 0 then begin
      let ats, vals, head, n = bucket_take t.overflow in
      for i = head to head + n - 1 do
        file t ats.(i) vals.(i)
      done
    end
  end

(* Re-anchor an all-levels-empty wheel at the overflow minimum, pulling
   the near span of the overflow bucket into the levels. *)
let refile_overflow t =
  let ats, vals, head, n = bucket_take t.overflow in
  let m = ref max_int in
  for i = head to head + n - 1 do
    if ats.(i) < !m then m := ats.(i)
  done;
  (* The levels are empty, so nothing can strand: re-anchor directly
     (the minimum itself then files at level 0). *)
  if !m > t.base then t.base <- !m;
  for i = head to head + n - 1 do
    file t ats.(i) vals.(i)
  done

(* Cascade the minimum down to level 0 and return its slot. A min
   bucket above level 0 would be large (its slot spans 32^l instants)
   and sorting it would be wasted work — it gets redistributed anyway —
   so instead advance [base] to the first instant the slot can hold,
   which refiles it one level down, and repeat; only the 32-instant
   buckets of level 0 are ever sorted on this path. Callers guarantee
   [len > 0]. *)
let rec min_settled t =
  match min_loc t with
  | Some (0, s) -> s
  | Some (l, s) ->
    (* Keys in slot (l, s) share base's digits above l and carry digit
       [s] at level l, so the slot's span starts at base with digit l
       replaced by [s] and the digits below zeroed. *)
    let above = t.base lsr ((l + 1) * slot_bits) in
    advance t (((above lsl slot_bits) lor s) lsl (l * slot_bits));
    min_settled t
  | None ->
    refile_overflow t;
    min_settled t

let peek t =
  if t.len = 0 then None
  else begin
    let b = t.slots.(0).(min_settled t) in
    sort_bucket b;
    Some (b.ats.(b.head), b.vals.(b.head))
  end

let pop t =
  if t.len = 0 then None
  else begin
    let s = min_settled t in
    let b = t.slots.(0).(s) in
    sort_bucket b;
    let at = b.ats.(b.head) and v = b.vals.(b.head) in
    b.head <- b.head + 1;
    b.n <- b.n - 1;
    t.len <- t.len - 1;
    if b.n = 0 then begin
      b.head <- 0;
      b.sorted <- true;
      if Array.length b.ats > 256 then begin
        (* Drop an outsized backing array so a one-off burst does not
           pin its capacity forever. *)
        b.ats <- [||];
        b.vals <- [||]
      end;
      t.masks.(0) <- t.masks.(0) land lnot (1 lsl s)
    end;
    advance t at;
    Some (at, v)
  end

let pop_due t bound =
  (* Drain buckets whole wherever the bound allows. The min slot's
     entries are strictly below everything else in the wheel, so when
     its whole span fits under [bound] it is sorted in place and
     detached as one chunk — a fully due level-l bucket never cascades
     through the levels below. Only the boundary bucket (the one
     straddling [bound]) settles to level 0 and is split. The result
     list is built in a single final pass over the chunks, newest chunk
     first, so each due entry costs exactly one cons. *)
  let chunks = ref [] (* (ats, vals, lo, hi) segments, newest first *) in
  let stop = ref false in
  while (not !stop) && t.len > 0 do
    match min_loc t with
    | None -> refile_overflow t
    | Some (0, s) ->
      let b = t.slots.(0).(s) in
      sort_bucket b;
      if b.ats.(b.head) > bound then stop := true
      else begin
        (* Scan forward to the first entry beyond the bound. A chunk
           must own its arrays — later filings in this same drain may
           compact or append over a live bucket's slack — so a fully
           due bucket is detached and a partial prefix is copied out
           (it is the one boundary segment of the whole drain). *)
        let stop_at = b.head + b.n in
        let i = ref b.head in
        while !i < stop_at && b.ats.(!i) <= bound do
          incr i
        done;
        if !i = stop_at then begin
          let ats, vals, head, n = bucket_take b in
          chunks := (ats, vals, head, head + n) :: !chunks;
          t.len <- t.len - n;
          t.masks.(0) <- t.masks.(0) land lnot (1 lsl s)
        end
        else begin
          let taken = !i - b.head in
          chunks :=
            (Array.sub b.ats b.head taken, Array.sub b.vals b.head taken, 0, taken)
            :: !chunks;
          b.head <- !i;
          b.n <- b.n - taken;
          t.len <- t.len - taken;
          stop := true (* head of the remainder is beyond the bound *)
        end
      end
    | Some (l, s) ->
      let above = t.base lsr ((l + 1) * slot_bits) in
      let start = ((above lsl slot_bits) lor s) lsl (l * slot_bits) in
      let span = 1 lsl (l * slot_bits) in
      if bound >= start && bound - start >= span - 1 then begin
        (* Whole slot due: sort in place, detach as one chunk. *)
        let b = t.slots.(l).(s) in
        sort_bucket b;
        let ats, vals, head, n = bucket_take b in
        chunks := (ats, vals, head, head + n) :: !chunks;
        t.len <- t.len - n;
        t.masks.(l) <- t.masks.(l) land lnot (1 lsl s)
      end
      else advance t start (* straddles the bound: cascade one level *)
  done;
  (* Advance through the idle remainder of the window so future filings
     key off the caller's clock, not the last pop. *)
  if bound < max_int then advance t (bound + 1);
  List.fold_left
    (fun out (ats, vals, lo, hi) ->
      let out = ref out in
      for i = hi - 1 downto lo do
        out := (ats.(i), vals.(i)) :: !out
      done;
      !out)
    [] !chunks
