(** Signature-sharded DBCRON coordinator: N inner daemons in probe
    lockstep, a global arrival-sequence stamp, and a deterministic merge.

    Why the merge is byte-identical to serial: a single unsharded
    {!Dbcron} pops in ascending (instant, insertion order) — both the
    heap and the wheel are stable. The coordinator stamps every entry
    with a global sequence number [gseq] in exactly the order the serial
    daemon would have inserted it (probe rows in row order, offers in
    call order), and entries reach each shard in ascending [gseq], so a
    shard's local pop order is ascending (instant, gseq). Merging the
    per-shard due lists by (instant, gseq) therefore reproduces the
    serial pop order entry for entry. [gseq] advances on rejected offers
    too — rejection depends only on the shared probe schedule, so the
    stamp stream is identical at every shard count.

    Why shards may step in parallel: each probe window is prefetched
    with one serial [load] call (the same RULE_TIME retrieve, with the
    same side effects, the serial daemon would make) and partitioned
    up front; stepping a shard then touches only its own pending
    structure and reads its own slice, so the fan-out is pure and
    disjoint. *)

module Pool = Cal_parallel.Pool

type t = {
  nshards : int;
  probe_period : int;
  crons : (int * string) Dbcron.t array; (* payload: (gseq, name) *)
  loads : (window_end:int -> (int * (int * string)) list) array;
      (* per-shard reads of the prefetched partitions *)
  place : string -> int;
  prefetched : (int, (int * (int * string)) list array) Hashtbl.t;
      (* window_end -> per-shard slices, stamped and in gseq order *)
  gseq : int ref;
  domains : int;
  mutable probes : int; (* probe windows covered (one load call each) *)
  mutable par_steps : int; (* steps that fanned out across the pool *)
}

(* Stamp a probe batch in row order and park its per-shard slices for
   the inner daemons' load calls. *)
let stash ~nshards ~place ~gseq ~prefetched window_end rows =
  let parts = Array.make nshards [] in
  List.iter
    (fun (at, name) ->
      let i = place name in
      parts.(i) <- (at, (!gseq, name)) :: parts.(i);
      incr gseq)
    rows;
  Hashtbl.replace prefetched window_end (Array.map List.rev parts)

let create ?(pending = `Wheel) ~nshards ~probe_period ~now ~load ~shard_of ~domains () =
  if nshards < 1 then invalid_arg "Shard.create: nshards must be >= 1";
  if domains < 1 then invalid_arg "Shard.create: domains must be >= 1";
  let prefetched = Hashtbl.create 8 in
  let gseq = ref 0 in
  let place name = (shard_of name mod nshards + nshards) mod nshards in
  let part_load i ~window_end =
    match Hashtbl.find_opt prefetched window_end with
    | Some parts -> parts.(i)
    | None -> []
  in
  (* The initial probe: one serial load, partitioned, then each inner
     daemon's own initial probe picks up its slice. *)
  stash ~nshards ~place ~gseq ~prefetched (now + probe_period)
    (load ~window_end:(now + probe_period));
  let crons =
    Array.init nshards (fun i ->
        Dbcron.create ~pending ~probe_period ~now ~load:(part_load i) ())
  in
  Hashtbl.reset prefetched;
  {
    nshards;
    probe_period;
    crons;
    loads = Array.init nshards part_load;
    place;
    prefetched;
    gseq;
    domains;
    probes = 1;
    par_steps = 0;
  }

let nshards t = t.nshards
let probe_period t = t.probe_period
let pending_kind t = Dbcron.pending_kind t.crons.(0)

let next_event t =
  Array.fold_left (fun acc c -> min acc (Dbcron.next_event c)) max_int t.crons

let offer t at name =
  let i = t.place name in
  let g = !(t.gseq) in
  (* Consumed whether or not the offer lands: acceptance depends only on
     the shared probe schedule, so the stamp stream — and with it the
     merged order — is identical at every shard count. *)
  incr t.gseq;
  Dbcron.offer t.crons.(i) at (g, name)

let step t ~now ~load =
  (* Prefetch every window this step will cross, serially — the load
     runs real queries with side effects and must stay single-file. All
     shards share one probe schedule, so shard 0's next probe is
     everyone's. *)
  let rec prefetch np =
    if np <= now then begin
      let window_end = np + t.probe_period in
      t.probes <- t.probes + 1;
      stash ~nshards:t.nshards ~place:t.place ~gseq:t.gseq ~prefetched:t.prefetched
        window_end
        (load ~window_end);
      prefetch window_end
    end
  in
  prefetch (Dbcron.next_probe t.crons.(0));
  let step_one i = Dbcron.step t.crons.(i) ~now ~load:t.loads.(i) in
  let parts =
    let pool = Pool.default () in
    let lanes = max 1 (min t.domains (Pool.size pool)) in
    if t.nshards > 1 && lanes > 1 then begin
      t.par_steps <- t.par_steps + 1;
      Array.concat
        (Array.to_list
           (Pool.map_chunks ~domains:lanes pool ~n:t.nshards (fun ~lo ~hi ->
                Array.init (hi - lo) (fun k -> step_one (lo + k)))))
    end
    else Array.init t.nshards step_one
  in
  Hashtbl.reset t.prefetched;
  List.concat (Array.to_list parts)
  |> List.sort (fun (a1, (g1, _)) (a2, (g2, _)) ->
         if a1 <> a2 then compare a1 a2 else compare g1 g2)
  |> List.map (fun (at, (_, name)) -> (at, name))

let sum f t = Array.fold_left (fun acc c -> acc + f c) 0 t.crons
let pending t = sum Dbcron.pending t
let stats t = (t.probes, sum (fun c -> snd (Dbcron.stats c)) t)
let heap_peak t = sum Dbcron.heap_peak t
let fired t = sum Dbcron.fired t
let par_steps t = t.par_steps

let per_shard t =
  Array.map
    (fun c -> (Dbcron.pending c, Dbcron.occupancy c, snd (Dbcron.stats c), Dbcron.fired c))
    t.crons
