(** The rule system of section 4: [on Event where Condition do Action]
    rules plus time-based [on <calendar-expression> do Action] rules.

    Declaring a temporal rule parses its calendar expression, stores the
    expression, parse tree and evaluation plan in RULE_INFO, computes the
    next trigger point into RULE_TIME, and hands the trigger to
    {!Dbcron}. Database-event rules hook into the executor's event
    stream. Actions are ordinary queries, run with NEW/CURRENT bound to
    the triggering tuple.

    System tables (created on demand):
    {v
    rule_info(name text, kind text, spec text, condition text,
              action text, eval_plan text)
    rule_time(name text, next_fire int)   -- instant of next trigger
    v}
    [rule_time.next_fire] is indexed, and DBCRON's probe is an ordinary
    indexed [retrieve], as in the paper. *)

open Cal_lang
open Cal_db
module Pool = Cal_parallel.Pool

type parsed_event =
  | Db_event of Catalog.event_kind * string
  | Cal_event of { expr : Ast.expr; source : string }

type rule_state = {
  def : Qast.rule;
  event : parsed_event;
  mutable scheduled : bool;  (** currently sitting in DBCRON's heap *)
  mutable rt_rowid : int option;  (** row in rule_time *)
  mutable fire_count : int;
}

type firing = { rule : string; at : int }

type t = {
  ctx : Context.t;
  catalog : Catalog.t;
  clock : Clock.t;
  mutable cron : string Dbcron.t;
  rules : (string, rule_state) Hashtbl.t;
  mutable firings : firing list;  (** newest first *)
  mutable alerts : (string * int) list;
  mutable depth : int;
  lookahead : int;
  probe_strategy : Next_fire.strategy;
  domains : int;  (** max pool lanes for rule batches and query scans *)
  mutable par_batches : int;  (** next-fire batches computed in parallel *)
  mutable par_rules : int;  (** rules those batches covered *)
  exec_stats : Exec.stats;
      (** cumulative executor counters over every query this manager runs
          (DBCRON probes, rule actions, user queries) *)
}

exception Rule_error of string

let norm = String.lowercase_ascii

let ensure_system_tables catalog =
  if Catalog.table_opt catalog "rule_info" = None then begin
    ignore
      (Catalog.create_table catalog
         (Schema.make ~table:"rule_info"
            (List.map
               (fun name -> { Schema.name; ty = Schema.TText; valid_time = false })
               [ "name"; "kind"; "spec"; "condition"; "action"; "eval_plan" ])))
  end;
  if Catalog.table_opt catalog "rule_time" = None then begin
    ignore
      (Catalog.create_table catalog
         (Schema.make ~table:"rule_time"
            [
              { Schema.name = "name"; ty = Schema.TText; valid_time = false };
              { Schema.name = "next_fire"; ty = Schema.TInt; valid_time = false };
            ]));
    (* Through the catalog, so the version bump invalidates any plan
       compiled before the index existed. *)
    Catalog.create_index catalog "rule_time" "next_fire"
  end

(* The probe: an indexed retrieve over RULE_TIME for triggers before the
   window end, skipping rules already loaded. *)
let load_upcoming catalog ~stats ~domains rules ~window_end =
  let q =
    Qast.Retrieve
      {
        targets = [ ("name", Qexpr.Col "name"); ("next_fire", Qexpr.Col "next_fire") ];
        from_ = Some "rule_time";
        where =
          Some (Qexpr.Binop (Qexpr.Lt, Qexpr.Col "next_fire", Qexpr.Const (Value.Int window_end)));
        on_cal = None;
        group_by = [];
      }
  in
  match Exec.run catalog ~stats ~domains q with
  | Exec.Rows { rows; _ } ->
    List.filter_map
      (fun row ->
        match row with
        | [| Value.Text name; Value.Int at |] -> (
          match Hashtbl.find_opt rules (norm name) with
          | Some st when not st.scheduled ->
            st.scheduled <- true;
            Some (at, name)
          | _ -> None)
        | _ -> None)
      rows
  | _ -> []

let rec create ?(probe_period = 86400) ?(lookahead = 400 * 86400) ?(probe_strategy = `Auto)
    ?domains (ctx : Context.t) catalog =
  let clock =
    match ctx.Context.clock with
    | Some c -> c
    | None -> raise (Rule_error "rule manager needs a context with a clock")
  in
  let domains =
    match domains with
    | Some d when d < 1 -> raise (Rule_error "domains must be >= 1")
    | Some d ->
      (* An explicit knob overrides the environment default, so make sure
         the shared pool actually has that many lanes. *)
      Pool.ensure_default_domains d;
      d
    | None -> Pool.default_domains ()
  in
  ensure_system_tables catalog;
  let rules = Hashtbl.create 16 in
  let exec_stats = Exec.fresh_stats () in
  let cron =
    Dbcron.create ~probe_period ~now:(Clock.now clock)
      ~load:(load_upcoming catalog ~stats:exec_stats ~domains rules)
  in
  let t =
    {
      ctx;
      catalog;
      clock;
      cron;
      rules;
      firings = [];
      alerts = [];
      depth = 0;
      lookahead;
      probe_strategy;
      domains;
      par_batches = 0;
      par_rules = 0;
      exec_stats;
    }
  in
  (* The alert procedure used by rule actions:
     retrieve (alert('message')). *)
  Catalog.register_operator catalog ~name:"alert" ~arity:1 (function
    | [ Value.Text msg ] ->
      t.alerts <- (msg, Clock.now t.clock) :: t.alerts;
      Value.Bool true
    | _ -> Value.Null);
  Catalog.add_hook catalog (fun ev -> dispatch_db_event t ev);
  t

(* Binding for rule conditions and actions: NEW.col / CURRENT.col / col
   resolve into the triggering tuple. *)
and event_binding t (ev : Catalog.event) name =
  match ev.Catalog.tuple with
  | None -> None
  | Some tuple -> (
    let schema = (Catalog.table t.catalog ev.Catalog.table).Table.schema in
    let resolve col = Option.map (fun i -> tuple.(i)) (Schema.column_index schema col) in
    match String.index_opt name '.' with
    | Some i ->
      let prefix = norm (String.sub name 0 i) in
      let col = String.sub name (i + 1) (String.length name - i - 1) in
      if prefix = "new" || prefix = "current" || prefix = norm ev.Catalog.table then resolve col
      else None
    | None -> resolve name)

and condition_holds t binding = function
  | None -> true
  | Some cond -> (
    match Qexpr.eval ~catalog:t.catalog ~binding cond with
    | Value.Bool b -> b
    | Value.Null -> false
    | v -> raise (Rule_error ("rule condition is not boolean: " ^ Value.to_string v)))

and run_actions t binding actions =
  if t.depth >= 8 then raise (Rule_error "rule recursion limit exceeded");
  t.depth <- t.depth + 1;
  Fun.protect
    ~finally:(fun () -> t.depth <- t.depth - 1)
    (fun () ->
      List.iter
        (fun q -> ignore (Exec.run t.catalog ~binding ~stats:t.exec_stats ~domains:t.domains q))
        actions)

and dispatch_db_event t ev =
  if t.depth < 8 then
    Hashtbl.iter
      (fun _ st ->
        match st.event with
        | Db_event (kind, table)
          when kind = ev.Catalog.kind && norm table = norm ev.Catalog.table ->
          let binding = event_binding t ev in
          if condition_holds t binding st.def.Qast.condition then begin
            st.fire_count <- st.fire_count + 1;
            t.firings <- { rule = st.def.Qast.rule_name; at = Clock.now t.clock } :: t.firings;
            run_actions t binding st.def.Qast.action
          end
        | Db_event _ | Cal_event _ -> ())
      t.rules

let rule_time_table t = Catalog.table t.catalog "rule_time"

let set_next_fire t st name = function
  | None -> (
    (* Dormant: no further trigger within the lifespan. *)
    match st.rt_rowid with
    | Some rowid ->
      ignore (Table.delete (rule_time_table t) rowid);
      st.rt_rowid <- None
    | None -> ())
  | Some at -> (
    let row = [| Value.Text name; Value.Int at |] in
    (match st.rt_rowid with
    | Some rowid -> ignore (Table.update (rule_time_table t) rowid row)
    | None -> st.rt_rowid <- Some (Table.insert (rule_time_table t) row));
    if Dbcron.offer t.cron at name then st.scheduled <- true)

(** Declare a rule (parsed form). *)
let define t (rule : Qast.rule) =
  let name = rule.Qast.rule_name in
  if Hashtbl.mem t.rules (norm name) then Error (Printf.sprintf "rule %s already exists" name)
  else begin
    match rule.Qast.event with
    | Qast.Ev_db (kind, table) ->
      (* The target table must exist for NEW bindings to make sense. *)
      (match Catalog.table_opt t.catalog table with
      | Some _ -> ()
      | None -> raise (Rule_error ("rule on unknown table " ^ table)));
      let st =
        { def = rule; event = Db_event (kind, table); scheduled = false; rt_rowid = None;
          fire_count = 0 }
      in
      Hashtbl.replace t.rules (norm name) st;
      ignore
        (Table.insert
           (Catalog.table t.catalog "rule_info")
           [|
             Value.Text name;
             Value.Text (Qast.event_kind_to_string kind);
             Value.Text table;
             Value.Text
               (match rule.Qast.condition with Some c -> Qexpr.to_string c | None -> "");
             Value.Text (String.concat "; " (List.map Qast.to_string rule.Qast.action));
             Value.Text "";
           |]);
      Ok ()
    | Qast.Ev_calendar source -> (
      match Parser.expr source with
      | Error e -> Error (Printf.sprintf "bad calendar expression in rule %s: %s" name e)
      | Ok expr ->
        let plan = Planner.plan t.ctx expr in
        let st =
          { def = rule; event = Cal_event { expr; source }; scheduled = false;
            rt_rowid = None; fire_count = 0 }
        in
        Hashtbl.replace t.rules (norm name) st;
        ignore
          (Table.insert
             (Catalog.table t.catalog "rule_info")
             [|
               Value.Text name;
               Value.Text "calendar";
               Value.Text source;
               Value.Text
                 (match rule.Qast.condition with Some c -> Qexpr.to_string c | None -> "");
               Value.Text (String.concat "; " (List.map Qast.to_string rule.Qast.action));
               Value.Text (Plan.to_string plan);
             |]);
        let next =
          Next_fire.next t.ctx expr ~after:(Clock.now t.clock) ~lookahead:t.lookahead
            ~strategy:t.probe_strategy ()
        in
        set_next_fire t st name next;
        Ok ())
  end

let define_string t source =
  match Qparser.query source with
  | Error e -> Error e
  | Ok (Qast.Define_rule r) -> define t r
  | Ok _ -> Error "not a rule definition"

let drop t name =
  match Hashtbl.find_opt t.rules (norm name) with
  | None -> false
  | Some st ->
    (match st.rt_rowid with
    | Some rowid -> ignore (Table.delete (rule_time_table t) rowid)
    | None -> ());
    Hashtbl.remove t.rules (norm name);
    let info = Catalog.table t.catalog "rule_info" in
    let rowids =
      Table.fold info
        (fun acc rowid tuple ->
          match tuple.(0) with
          | Value.Text n when norm n = norm name -> rowid :: acc
          | _ -> acc)
        []
    in
    List.iter (fun rowid -> ignore (Table.delete info rowid)) rowids;
    true

(* Phase one of a firing batch: log the firing and run the rule's action
   — strictly serially, in chronological order (actions mutate the
   database). Returns the work item for phase two: the rule's calendar
   expression and the instant its next trigger must follow. *)
let fire_calendar_action t name at =
  match Hashtbl.find_opt t.rules (norm name) with
  | None -> None (* dropped while scheduled *)
  | Some st -> (
    match st.event with
    | Db_event _ -> None
    | Cal_event { expr; _ } ->
      st.scheduled <- false;
      st.fire_count <- st.fire_count + 1;
      t.firings <- { rule = st.def.Qast.rule_name; at } :: t.firings;
      let binding _ = None in
      if condition_holds t binding st.def.Qast.condition then
        run_actions t binding st.def.Qast.action;
      Some (name, expr, at))

(* Phase two: recompute every fired rule's next trigger point. The
   computations are independent — [Next_fire.next] only reads the
   context — so a batch fans out across the pool, each lane evaluating
   against a private clone of the session cache (seeded with its
   entries; the cached calendar values are immutable and safe to
   share). On join, clone hit/miss counters fold into the session cache
   stats and entries the session lacks are promoted, then RULE_TIME and
   the heap are updated serially in batch order. Results cannot depend
   on the split: each next-fire point is a function of (expression,
   instant) alone, so the batch is bit-identical to a serial loop. *)
let recompute_next_fires t batch =
  let n = Array.length batch in
  if n > 0 then begin
    let serially () =
      Array.map
        (fun (_, expr, after) ->
          Next_fire.next t.ctx expr ~after ~lookahead:t.lookahead ~strategy:t.probe_strategy ())
        batch
    in
    let pool = Pool.default () in
    let lanes = max 1 (min t.domains (Pool.size pool)) in
    let nexts =
      if lanes <= 1 || n < 2 then serially ()
      else begin
        t.par_batches <- t.par_batches + 1;
        t.par_rules <- t.par_rules + n;
        let main_cache = t.ctx.Context.cache in
        let parts =
          Pool.map_chunks ~domains:lanes pool ~n (fun ~lo ~hi ->
              let cache = Cal_cache.create ~capacity:(Cal_cache.capacity main_cache) () in
              Cal_cache.seed_from cache ~src:main_cache;
              let ctx = Context.with_cache t.ctx cache in
              let out =
                Array.init (hi - lo) (fun k ->
                    let _, expr, after = batch.(lo + k) in
                    Next_fire.next ctx expr ~after ~lookahead:t.lookahead
                      ~strategy:t.probe_strategy ())
              in
              (out, cache))
        in
        Array.iter
          (fun (_, cache) ->
            Cal_cache.merge_lookup_stats ~into:(Cal_cache.stats main_cache)
              (Cal_cache.stats cache);
            List.iter
              (fun (key, deps, v) ->
                if Option.is_none (Cal_cache.peek main_cache key) then
                  Cal_cache.add main_cache ~key ~deps v)
              (List.rev (Cal_cache.entries cache)))
          parts;
        Array.concat (List.map fst (Array.to_list parts))
      end
    in
    Array.iteri
      (fun i next ->
        let name, _, _ = batch.(i) in
        (* Re-resolve: an earlier action in the batch may have dropped
           the rule. *)
        match Hashtbl.find_opt t.rules (norm name) with
        | Some st -> set_next_fire t st name next
        | None -> ())
      nexts
  end

(** Advance simulated time, probing and firing everything due on the
    way. *)
let advance_to t instant =
  let load = load_upcoming t.catalog ~stats:t.exec_stats ~domains:t.domains t.rules in
  let rec loop () =
    let ev = Dbcron.next_event t.cron in
    if ev <= instant then begin
      Clock.advance_to t.clock ev;
      let fired = Dbcron.step t.cron ~now:ev ~load in
      let batch = List.filter_map (fun (at, name) -> fire_calendar_action t name at) fired in
      recompute_next_fires t (Array.of_list batch);
      loop ()
    end
  in
  loop ();
  Clock.advance_to t.clock instant

let advance_days t days = advance_to t (Clock.now t.clock + (days * 86400))

(** Run a query, dispatching rule definitions to this manager. *)
let run_query t ?binding source =
  match Qparser.query source with
  | Error e -> Error e
  | Ok (Qast.Define_rule r) -> (
    match define t r with
    | Ok () -> Ok (Exec.Msg (Printf.sprintf "rule %s defined" r.Qast.rule_name))
    | Error e -> Error e)
  | Ok (Qast.Drop_rule name) ->
    if drop t name then Ok (Exec.Msg (Printf.sprintf "rule %s dropped" name))
    else Error (Printf.sprintf "no rule %s" name)
  | Ok q -> (
    match Exec.run t.catalog ?binding ~stats:t.exec_stats ~domains:t.domains q with
    | r -> Ok r
    | exception Exec.Exec_error e -> Error e
    | exception Rule_error e -> Error e
    | exception Qexpr.Eval_error e -> Error e
    | exception Schema.Schema_error e -> Error e
    | exception Catalog.No_such_table n -> Error ("no such table: " ^ n)
    | exception Catalog.No_such_operator n -> Error ("no such operator: " ^ n)
    | exception Catalog.Table_exists n -> Error ("table already exists: " ^ n)
    | exception Table.No_such_column c -> Error ("no such column: " ^ c)
    | exception Value.Unknown_adt a -> Error ("unknown type: " ^ a)
    | exception Value.Incomparable a -> Error ("values of type " ^ a ^ " are not ordered"))

let firings t = List.rev t.firings
let alerts t = List.rev t.alerts
let fire_count t name =
  match Hashtbl.find_opt t.rules (norm name) with Some st -> st.fire_count | None -> 0

let next_fire t name =
  match Hashtbl.find_opt t.rules (norm name) with
  | Some { rt_rowid = Some rowid; _ } -> (
    match Table.get (rule_time_table t) rowid with
    | Some [| _; Value.Int at |] -> Some at
    | _ -> None)
  | _ -> None

(** Parsed definitions of every live rule (for persistence). *)
let rules t =
  List.sort
    (fun a b -> String.compare a.Qast.rule_name b.Qast.rule_name)
    (Hashtbl.fold (fun _ st acc -> st.def :: acc) t.rules [])

let rule_names t =
  List.sort String.compare (Hashtbl.fold (fun _ st acc -> st.def.Qast.rule_name :: acc) t.rules [])

let dbcron_stats t = Dbcron.stats t.cron
let dbcron_heap_peak t = Dbcron.heap_peak t.cron
let exec_stats t = t.exec_stats
let plan_cache_stats t = Qplan.cache_stats t.catalog
let domains t = t.domains
let parallel_stats t = (t.par_batches, t.par_rules)
