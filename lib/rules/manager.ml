(** The rule system of section 4: [on Event where Condition do Action]
    rules plus time-based [on <calendar-expression> do Action] rules.

    Declaring a temporal rule parses its calendar expression, stores the
    expression, parse tree and evaluation plan in RULE_INFO, computes the
    next trigger point into RULE_TIME, and hands the trigger to
    {!Dbcron}. Database-event rules hook into the executor's event
    stream. Actions are ordinary queries, run with NEW/CURRENT bound to
    the triggering tuple.

    System tables (created on demand):
    {v
    rule_info(name text, kind text, spec text, condition text,
              action text, eval_plan text)
    rule_time(name text, next_fire int)   -- instant of next trigger
    rule_errors(name text, at int, attempt int, error text)
    v}
    [rule_time.next_fire] is indexed, and DBCRON's probe is an ordinary
    indexed [retrieve], as in the paper.

    Each rule's action runs in an isolated scope: a failure is recorded
    in [rule_errors] and counted against the rule instead of aborting the
    batch. A failing calendar rule is retried with bounded exponential
    backoff in simulated time; after [max_failures] consecutive failures
    the rule is quarantined — disabled but inspectable, and re-armable
    with {!requeue}. *)

open Cal_lang
open Cal_db
module Pool = Cal_parallel.Pool

type parsed_event =
  | Db_event of Catalog.event_kind * string
  | Cal_event of { expr : Ast.expr; source : string }

type rule_state = {
  def : Qast.rule;
  event : parsed_event;
  shard : int;  (** calendar-signature bucket owning this rule's triggers *)
  mutable scheduled : bool;  (** currently sitting in DBCRON's heap *)
  mutable rt_rowid : int option;  (** row in rule_time *)
  mutable fire_count : int;
  mutable failures : int;  (** consecutive failed firings *)
  mutable quarantined : bool;
}

type firing = { rule : string; at : int }
type catch_up = Fire_once | Skip | Replay_all

type t = {
  ctx : Context.t;
  catalog : Catalog.t;
  clock : Clock.t;
  mutable cron : Shard.t;
  probe_period : int;
  nshards : int;  (** calendar-signature buckets DBCRON is split into *)
  pending : [ `Heap | `Wheel ];  (** per-shard pending structure *)
  rules : (string, rule_state) Hashtbl.t;
  shard_caches : Calendar.t Cal_cache.t array;
      (** one persistent session-cache clone per shard, for sharded
          next-fire batches; [[||]] when [nshards = 1] *)
  shard_cache_marks : (int * int) array;
      (** (hits, misses) of each shard cache already folded into the
          session cache's counters *)
  mutable firings : firing list;  (** newest first *)
  mutable alerts : (string * int) list;
  mutable depth : int;
  lookahead : int;
  probe_strategy : Next_fire.strategy;
  domains : int;  (** max pool lanes for rule batches and query scans *)
  max_failures : int;  (** consecutive failures before quarantine *)
  retry_base : int;  (** seconds; retry after base * 2^(failures-1) *)
  injector : Cal_faults.Injector.t;
  mutable par_batches : int;  (** next-fire batches computed in parallel *)
  mutable par_rules : int;  (** rules those batches covered *)
  mutable coal_batches : int;  (** same-tick groups that shared one preparation *)
  mutable coal_fired : int;  (** firings those groups covered *)
  mutable journal_sink : (string list -> unit) option;
      (** installed by durable sessions: each coalesced firing batch is
          handed over as one list, journaled as one commit group *)
  exec_stats : Exec.stats;
      (** cumulative executor counters over every query this manager runs
          (DBCRON probes, rule actions, user queries) *)
}

exception Rule_error of string

let norm = String.lowercase_ascii

(* Deterministic message for a failed firing: the rule_errors rows it
   feeds must replay bit-identically, so no backtraces here. *)
let error_message = function
  | Exec.Exec_error e | Rule_error e | Qexpr.Eval_error e | Schema.Schema_error e -> e
  | Catalog.No_such_table n -> "no such table: " ^ n
  | Catalog.No_such_operator n -> "no such operator: " ^ n
  | Catalog.Table_exists n -> "table already exists: " ^ n
  | Table.No_such_column c -> "no such column: " ^ c
  | Value.Unknown_adt a -> "unknown type: " ^ a
  | Value.Incomparable a -> "values of type " ^ a ^ " are not ordered"
  | Cal_faults.Injector.Injected_fault m -> "injected fault: " ^ m
  | e -> Printexc.to_string e

let ensure_system_tables catalog =
  if Catalog.table_opt catalog "rule_info" = None then begin
    ignore
      (Catalog.create_table catalog
         (Schema.make ~table:"rule_info"
            (List.map
               (fun name -> { Schema.name; ty = Schema.TText; valid_time = false })
               [ "name"; "kind"; "spec"; "condition"; "action"; "eval_plan" ])))
  end;
  if Catalog.table_opt catalog "rule_time" = None then begin
    ignore
      (Catalog.create_table catalog
         (Schema.make ~table:"rule_time"
            [
              { Schema.name = "name"; ty = Schema.TText; valid_time = false };
              { Schema.name = "next_fire"; ty = Schema.TInt; valid_time = false };
            ]));
    (* Through the catalog, so the version bump invalidates any plan
       compiled before the index existed. *)
    Catalog.create_index catalog "rule_time" "next_fire"
  end;
  if Catalog.table_opt catalog "rule_errors" = None then begin
    ignore
      (Catalog.create_table catalog
         (Schema.make ~table:"rule_errors"
            [
              { Schema.name = "name"; ty = Schema.TText; valid_time = false };
              { Schema.name = "at"; ty = Schema.TInt; valid_time = false };
              { Schema.name = "attempt"; ty = Schema.TInt; valid_time = false };
              { Schema.name = "error"; ty = Schema.TText; valid_time = false };
            ]))
  end

(* The probe: an indexed retrieve over RULE_TIME for triggers before the
   window end, skipping rules already loaded. *)
let load_upcoming catalog ~stats ~domains rules ~window_end =
  let q =
    Qast.Retrieve
      {
        targets = [ ("name", Qexpr.Col "name"); ("next_fire", Qexpr.Col "next_fire") ];
        from_ = Some "rule_time";
        where =
          Some (Qexpr.Binop (Qexpr.Lt, Qexpr.Col "next_fire", Qexpr.Const (Value.Int window_end)));
        on_cal = None;
        group_by = [];
      }
  in
  match Exec.run catalog ~stats ~domains q with
  | Exec.Rows { rows; _ } ->
    List.filter_map
      (fun row ->
        match row with
        | [| Value.Text name; Value.Int at |] -> (
          match Hashtbl.find_opt rules (norm name) with
          | Some st when not st.scheduled ->
            st.scheduled <- true;
            Some (at, name)
          | _ -> None)
        | _ -> None)
      rows
  | _ -> []

(* DBCRON placement: rules land in the shard of their calendar
   signature, so rules with the same temporal shape probe and batch
   together. Translatable expressions key on their periodic-normal-form
   period; the rest on a canonicalized-expression hash (source hash when
   canonicalization rejects the expression). *)
let shard_of_rules rules name =
  match Hashtbl.find_opt rules (norm name) with Some st -> st.shard | None -> 0

let shard_key ctx expr source =
  match Periodic.compile ctx expr with
  | Some (_, p) -> Periodic.period p
  | None -> (
    match Canon.to_string (Canon.canon expr) with
    | key -> Hashtbl.hash key
    | exception _ -> Hashtbl.hash source)

let rec create ?(probe_period = 86400) ?(lookahead = 400 * 86400) ?(probe_strategy = `Auto)
    ?domains ?(shards = 1) ?(pending = `Wheel) ?(max_failures = 3) ?(retry_base = 60)
    ?(injector = Cal_faults.Injector.none) (ctx : Context.t) catalog =
  if max_failures < 1 then raise (Rule_error "max_failures must be >= 1");
  if retry_base < 1 then raise (Rule_error "retry_base must be >= 1");
  if shards < 1 then raise (Rule_error "shards must be >= 1");
  let clock =
    match ctx.Context.clock with
    | Some c -> c
    | None -> raise (Rule_error "rule manager needs a context with a clock")
  in
  let domains =
    match domains with
    | Some d when d < 1 -> raise (Rule_error "domains must be >= 1")
    | Some d ->
      (* An explicit knob overrides the environment default, so make sure
         the shared pool actually has that many lanes. *)
      Pool.ensure_default_domains d;
      d
    | None -> Pool.default_domains ()
  in
  ensure_system_tables catalog;
  let rules = Hashtbl.create 16 in
  let exec_stats = Exec.fresh_stats () in
  let cron =
    Shard.create ~pending ~nshards:shards ~probe_period ~now:(Clock.now clock)
      ~load:(load_upcoming catalog ~stats:exec_stats ~domains rules)
      ~shard_of:(shard_of_rules rules) ~domains ()
  in
  let main_cache = ctx.Context.cache in
  let shard_caches =
    if shards <= 1 then [||]
    else
      Array.init shards (fun _ ->
          let c = Cal_cache.create ~capacity:(Cal_cache.capacity main_cache) () in
          Cal_cache.seed_from c ~src:main_cache;
          c)
  in
  let t =
    {
      ctx;
      catalog;
      clock;
      cron;
      probe_period;
      nshards = shards;
      pending;
      rules;
      shard_caches;
      shard_cache_marks = Array.make shards (0, 0);
      firings = [];
      alerts = [];
      depth = 0;
      lookahead;
      probe_strategy;
      domains;
      max_failures;
      retry_base;
      injector;
      par_batches = 0;
      par_rules = 0;
      coal_batches = 0;
      coal_fired = 0;
      journal_sink = None;
      exec_stats;
    }
  in
  (* The alert procedure used by rule actions:
     retrieve (alert('message')). *)
  Catalog.register_operator catalog ~name:"alert" ~arity:1 (function
    | [ Value.Text msg ] ->
      t.alerts <- (msg, Clock.now t.clock) :: t.alerts;
      Value.Bool true
    | _ -> Value.Null);
  Catalog.add_hook catalog (fun ev -> dispatch_db_event t ev);
  t

(* Binding for rule conditions and actions: NEW.col / CURRENT.col / col
   resolve into the triggering tuple. *)
and event_binding t (ev : Catalog.event) name =
  match ev.Catalog.tuple with
  | None -> None
  | Some tuple -> (
    let schema = (Catalog.table t.catalog ev.Catalog.table).Table.schema in
    let resolve col = Option.map (fun i -> tuple.(i)) (Schema.column_index schema col) in
    match String.index_opt name '.' with
    | Some i ->
      let prefix = norm (String.sub name 0 i) in
      let col = String.sub name (i + 1) (String.length name - i - 1) in
      if prefix = "new" || prefix = "current" || prefix = norm ev.Catalog.table then resolve col
      else None
    | None -> resolve name)

and condition_holds t binding = function
  | None -> true
  | Some cond -> (
    match Qexpr.eval ~catalog:t.catalog ~binding cond with
    | Value.Bool b -> b
    | Value.Null -> false
    | v -> raise (Rule_error ("rule condition is not boolean: " ^ Value.to_string v)))

and run_actions ?prepared t binding actions =
  if t.depth >= 8 then raise (Rule_error "rule recursion limit exceeded");
  t.depth <- t.depth + 1;
  Fun.protect
    ~finally:(fun () -> t.depth <- t.depth - 1)
    (fun () ->
      match prepared with
      | Some ps when List.length ps = List.length actions ->
        (* Same-tick coalescing: the statements were prepared once for
           the whole batch; each rule still executes its own isolated
           run (with its own injector gate). *)
        List.iter
          (fun p ->
            ignore
              (Exec.run_prepared t.catalog ~binding ~stats:t.exec_stats ~domains:t.domains
                 ~injector:t.injector p))
          ps
      | _ ->
        List.iter
          (fun q ->
            ignore
              (Exec.run t.catalog ~binding ~stats:t.exec_stats ~domains:t.domains
                 ~injector:t.injector q))
          actions)

(* One rule's condition and action in an isolated scope: a failure lands
   in rule_errors and bumps the rule's consecutive-failure count instead
   of escaping into the batch. [Ok fired] says whether the condition held
   (and the action ran to completion); a success resets the count.
   Injected crashes are not failures — they re-raise, killing the
   process. *)
and guarded_fire ?prepared t st name at binding =
  match
    (match Cal_faults.Injector.action_fault t.injector ~rule:name with
    | Some msg -> raise (Cal_faults.Injector.Injected_fault msg)
    | None -> ());
    if condition_holds t binding st.def.Qast.condition then begin
      run_actions ?prepared t binding st.def.Qast.action;
      true
    end
    else false
  with
  | fired ->
    st.failures <- 0;
    Ok fired
  | exception (Cal_faults.Injector.Crash _ as e) -> raise e
  | exception e ->
    let msg = error_message e in
    st.failures <- st.failures + 1;
    ignore
      (Table.insert
         (Catalog.table t.catalog "rule_errors")
         [| Value.Text name; Value.Int at; Value.Int st.failures; Value.Text msg |]);
    Error msg

and dispatch_db_event t ev =
  if t.depth < 8 then
    Hashtbl.iter
      (fun _ st ->
        match st.event with
        | Db_event (kind, table)
          when kind = ev.Catalog.kind && norm table = norm ev.Catalog.table
               && not st.quarantined -> (
          let name = st.def.Qast.rule_name in
          let binding = event_binding t ev in
          match guarded_fire t st name (Clock.now t.clock) binding with
          | Ok true ->
            st.fire_count <- st.fire_count + 1;
            t.firings <- { rule = name; at = Clock.now t.clock } :: t.firings
          | Ok false -> ()
          | Error _ ->
            (* Event rules have no trigger instant to back off to; they
               just quarantine once the threshold is crossed. *)
            if st.failures >= t.max_failures then st.quarantined <- true)
        | Db_event _ | Cal_event _ -> ())
      t.rules

let rule_time_table t = Catalog.table t.catalog "rule_time"

let set_next_fire t st name = function
  | None -> (
    (* Dormant: no further trigger within the lifespan. *)
    match st.rt_rowid with
    | Some rowid ->
      ignore (Table.delete (rule_time_table t) rowid);
      st.rt_rowid <- None
    | None -> ())
  | Some at -> (
    let row = [| Value.Text name; Value.Int at |] in
    (match st.rt_rowid with
    | Some rowid -> ignore (Table.update (rule_time_table t) rowid row)
    | None -> st.rt_rowid <- Some (Table.insert (rule_time_table t) row));
    if Shard.offer t.cron at name then st.scheduled <- true)

(** Declare a rule (parsed form). *)
let define t (rule : Qast.rule) =
  let name = rule.Qast.rule_name in
  if Hashtbl.mem t.rules (norm name) then Error (Printf.sprintf "rule %s already exists" name)
  else begin
    match rule.Qast.event with
    | Qast.Ev_db (kind, table) ->
      (* The target table must exist for NEW bindings to make sense. *)
      (match Catalog.table_opt t.catalog table with
      | Some _ -> ()
      | None -> raise (Rule_error ("rule on unknown table " ^ table)));
      let st =
        { def = rule; event = Db_event (kind, table); shard = 0; scheduled = false;
          rt_rowid = None; fire_count = 0; failures = 0; quarantined = false }
      in
      Hashtbl.replace t.rules (norm name) st;
      ignore
        (Table.insert
           (Catalog.table t.catalog "rule_info")
           [|
             Value.Text name;
             Value.Text (Qast.event_kind_to_string kind);
             Value.Text table;
             Value.Text
               (match rule.Qast.condition with Some c -> Qexpr.to_string c | None -> "");
             Value.Text (String.concat "; " (List.map Qast.to_string rule.Qast.action));
             Value.Text "";
           |]);
      Ok ()
    | Qast.Ev_calendar source -> (
      match Parser.expr source with
      | Error e -> Error (Printf.sprintf "bad calendar expression in rule %s: %s" name e)
      | Ok expr ->
        let plan = Planner.plan t.ctx expr in
        let shard = shard_key t.ctx expr source mod t.nshards in
        let st =
          { def = rule; event = Cal_event { expr; source }; shard; scheduled = false;
            rt_rowid = None; fire_count = 0; failures = 0; quarantined = false }
        in
        Hashtbl.replace t.rules (norm name) st;
        ignore
          (Table.insert
             (Catalog.table t.catalog "rule_info")
             [|
               Value.Text name;
               Value.Text "calendar";
               Value.Text source;
               Value.Text
                 (match rule.Qast.condition with Some c -> Qexpr.to_string c | None -> "");
               Value.Text (String.concat "; " (List.map Qast.to_string rule.Qast.action));
               Value.Text (Plan.to_string plan);
             |]);
        let next =
          Next_fire.next t.ctx expr ~after:(Clock.now t.clock) ~lookahead:t.lookahead
            ~strategy:t.probe_strategy ()
        in
        set_next_fire t st name next;
        Ok ())
  end

let define_string t source =
  match Qparser.query source with
  | Error e -> Error e
  | Ok (Qast.Define_rule r) -> define t r
  | Ok _ -> Error "not a rule definition"

let drop t name =
  match Hashtbl.find_opt t.rules (norm name) with
  | None -> false
  | Some st ->
    (match st.rt_rowid with
    | Some rowid -> ignore (Table.delete (rule_time_table t) rowid)
    | None -> ());
    Hashtbl.remove t.rules (norm name);
    let info = Catalog.table t.catalog "rule_info" in
    let rowids =
      Table.fold info
        (fun acc rowid tuple ->
          match tuple.(0) with
          | Value.Text n when norm n = norm name -> rowid :: acc
          | _ -> acc)
        []
    in
    List.iter (fun rowid -> ignore (Table.delete info rowid)) rowids;
    true

(* Phase one of a firing batch: run the rule's guarded firing — strictly
   serially, in chronological order (actions mutate the database). A
   successful firing is logged and returns the work item for phase two:
   the rule's calendar expression and the instant its next trigger must
   follow. A failed firing is rescheduled [retry_base * 2^(failures-1)]
   seconds out (capped), or quarantined once the consecutive-failure
   threshold is crossed — its next-fire point is then the retry instant,
   or nothing, so no phase-two item. *)
let fire_calendar_action ?prepared t name at =
  match Hashtbl.find_opt t.rules (norm name) with
  | None -> None (* dropped while scheduled *)
  | Some st -> (
    match st.event with
    | Db_event _ -> None
    | Cal_event _ when st.quarantined ->
      st.scheduled <- false;
      None
    | Cal_event { expr; _ } -> (
      st.scheduled <- false;
      let binding _ = None in
      match guarded_fire ?prepared t st name at binding with
      | Ok _fired ->
        (* As before isolation: a calendar firing is logged even when the
           condition vetoes the action. *)
        st.fire_count <- st.fire_count + 1;
        t.firings <- { rule = st.def.Qast.rule_name; at } :: t.firings;
        Some (name, expr, at)
      | Error _ ->
        if st.failures >= t.max_failures then begin
          st.quarantined <- true;
          set_next_fire t st name None
        end
        else begin
          let backoff = t.retry_base * (1 lsl min (st.failures - 1) 20) in
          set_next_fire t st name (Some (at + backoff))
        end;
        None))

(* Same-tick coalescing key: the action shape of a live calendar rule.
   Firings due at one instant whose rules share this key execute the
   same statements modulo nothing at all — one preparation serves the
   whole group. *)
let coalesce_key t name =
  match Hashtbl.find_opt t.rules (norm name) with
  | Some ({ event = Cal_event _; _ } as st) when not st.quarantined ->
    Some (String.concat "; " (List.map Qast.to_string st.def.Qast.action))
  | _ -> None

(* Split a chronological firing list into runs of consecutive firings
   due at the same instant with the same action shape. Grouping reads
   only the merged list and pre-wave rule state, so it is identical
   across shard and domain counts. *)
let coalesce_groups t fired =
  let groups =
    List.fold_left
      (fun acc (at, name) ->
        let key = coalesce_key t name in
        match acc with
        | (gat, (Some _ as gkey), members) :: tl when gat = at && gkey = key ->
          (gat, gkey, (at, name) :: members) :: tl
        | _ -> (at, key, [ (at, name) ]) :: acc)
      [] fired
  in
  List.rev_map (fun (_, _, members) -> List.rev members) groups

(* Fire one coalesced group: prepare the shared action statements once,
   then run each member's isolated firing against the prepared plans.
   Anything unpreparable — or a singleton group — falls back to the
   per-rule path, so failures still land in rule_errors rule by rule. *)
let fire_group t members =
  let prepared =
    match members with
    | (_, name0) :: _ :: _ -> (
      match Hashtbl.find_opt t.rules (norm name0) with
      | Some st -> (
        match
          List.map
            (fun q ->
              match Exec.prepare t.catalog ~stats:t.exec_stats q with
              | Some p -> p
              | None -> raise Exit)
            st.def.Qast.action
        with
        | ps ->
          t.coal_batches <- t.coal_batches + 1;
          t.coal_fired <- t.coal_fired + List.length members;
          Some ps
        | exception _ ->
          (* Unplannable (or invalid) action: each member runs — and
             fails — individually, exactly as without coalescing. *)
          None)
      | None -> None)
    | _ -> None
  in
  List.filter_map (fun (at, name) -> fire_calendar_action ?prepared t name at) members

(* Phase two: recompute every fired rule's next trigger point. The
   computations are independent — [Next_fire.next] only reads the
   context — so a batch fans out across the pool, each lane evaluating
   against a private clone of the session cache (seeded with its
   entries; the cached calendar values are immutable and safe to
   share). On join, clone hit/miss counters fold into the session cache
   stats and entries the session lacks are promoted, then RULE_TIME and
   the heap are updated serially in batch order. Results cannot depend
   on the split: each next-fire point is a function of (expression,
   instant) alone, so the batch is bit-identical to a serial loop. *)
let recompute_next_fires t batch =
  let n = Array.length batch in
  if n > 0 then begin
    let serially () =
      Array.map
        (fun (_, expr, after) ->
          Next_fire.next t.ctx expr ~after ~lookahead:t.lookahead ~strategy:t.probe_strategy ())
        batch
    in
    let pool = Pool.default () in
    let lanes = max 1 (min t.domains (Pool.size pool)) in
    let nexts =
      if lanes <= 1 || n < 2 then serially ()
      else if t.nshards > 1 then begin
        (* Sharded batch: each shard's items evaluate on that shard's
           persistent cache clone, fanned out shard-per-lane. The split
           cannot change results — each next-fire point is a function of
           (expression, instant) alone — so only cache hit/miss splits
           differ from the serial loop. *)
        t.par_batches <- t.par_batches + 1;
        t.par_rules <- t.par_rules + n;
        let by_shard = Array.make t.nshards [] in
        Array.iteri
          (fun i (name, _, _) ->
            let s = match Hashtbl.find_opt t.rules (norm name) with
              | Some st -> st.shard
              | None -> 0
            in
            by_shard.(s) <- i :: by_shard.(s))
          batch;
        let by_shard = Array.map (fun l -> Array.of_list (List.rev l)) by_shard in
        let per_shard =
          Array.concat
            (Array.to_list
               (Pool.map_chunks ~domains:lanes pool ~n:t.nshards (fun ~lo ~hi ->
                    Array.init (hi - lo) (fun k ->
                        let s = lo + k in
                        let ctx = Context.with_cache t.ctx t.shard_caches.(s) in
                        Array.map
                          (fun i ->
                            let _, expr, after = batch.(i) in
                            Next_fire.next ctx expr ~after ~lookahead:t.lookahead
                              ~strategy:t.probe_strategy ())
                          by_shard.(s)))))
        in
        (* Fold each shard cache's lookup counters (since the last fold)
           into the session cache's. *)
        let main_stats = Cal_cache.stats t.ctx.Context.cache in
        Array.iteri
          (fun s cache ->
            let st = Cal_cache.stats cache in
            let mh, mm = t.shard_cache_marks.(s) in
            main_stats.Cal_cache.hits <- main_stats.Cal_cache.hits + st.Cal_cache.hits - mh;
            main_stats.Cal_cache.misses <-
              main_stats.Cal_cache.misses + st.Cal_cache.misses - mm;
            t.shard_cache_marks.(s) <- (st.Cal_cache.hits, st.Cal_cache.misses))
          t.shard_caches;
        let out = Array.make n None in
        Array.iteri
          (fun s nexts -> Array.iteri (fun k v -> out.(by_shard.(s).(k)) <- v) nexts)
          per_shard;
        out
      end
      else begin
        t.par_batches <- t.par_batches + 1;
        t.par_rules <- t.par_rules + n;
        let main_cache = t.ctx.Context.cache in
        let parts =
          Pool.map_chunks ~domains:lanes pool ~n (fun ~lo ~hi ->
              let cache = Cal_cache.create ~capacity:(Cal_cache.capacity main_cache) () in
              Cal_cache.seed_from cache ~src:main_cache;
              let ctx = Context.with_cache t.ctx cache in
              let out =
                Array.init (hi - lo) (fun k ->
                    let _, expr, after = batch.(lo + k) in
                    Next_fire.next ctx expr ~after ~lookahead:t.lookahead
                      ~strategy:t.probe_strategy ())
              in
              (out, cache))
        in
        Array.iter
          (fun (_, cache) ->
            Cal_cache.merge_lookup_stats ~into:(Cal_cache.stats main_cache)
              (Cal_cache.stats cache);
            List.iter
              (fun (key, deps, v) ->
                if Option.is_none (Cal_cache.peek main_cache key) then
                  Cal_cache.add main_cache ~key ~deps v)
              (List.rev (Cal_cache.entries cache)))
          parts;
        Array.concat (List.map fst (Array.to_list parts))
      end
    in
    Array.iteri
      (fun i next ->
        let name, _, _ = batch.(i) in
        (* Re-resolve: an earlier action in the batch may have dropped
           the rule. *)
        match Hashtbl.find_opt t.rules (norm name) with
        | Some st -> set_next_fire t st name next
        | None -> ())
      nexts
  end

(** Advance simulated time, probing and firing everything due on the
    way. *)
let advance_to t instant =
  if instant < Clock.now t.clock then
    raise (Next_fire.Clock_regression { now = Clock.now t.clock; target = instant });
  let load = load_upcoming t.catalog ~stats:t.exec_stats ~domains:t.domains t.rules in
  let rec loop () =
    let ev = Shard.next_event t.cron in
    if ev <= instant then begin
      Clock.advance_to t.clock ev;
      let fired = Shard.step t.cron ~now:ev ~load in
      let batch =
        List.concat_map
          (fun group ->
            let items = fire_group t group in
            (* One coalesced firing batch = one journal commit group of
               replay-neutral provenance records (recovery re-fires by
               replaying the advance itself). *)
            (match t.journal_sink with
            | Some sink when items <> [] ->
              sink (List.map (fun (name, _, at) -> Printf.sprintf "fired %d %s" at name) items)
            | _ -> ());
            items)
          (coalesce_groups t fired)
      in
      recompute_next_fires t (Array.of_list batch);
      loop ()
    end
  in
  loop ();
  Clock.advance_to t.clock instant

let advance_days t days = advance_to t (Clock.now t.clock + (days * 86400))

(* Drop DBCRON's heap and rebuild it from RULE_TIME at the current
   instant. Used when the heap no longer matches the clock: after a
   snapshot restore, and after a catch-up that moved the clock without
   stepping the daemon. *)
let reset_cron t =
  Hashtbl.iter (fun _ st -> st.scheduled <- false) t.rules;
  t.cron <-
    Shard.create ~pending:t.pending ~nshards:t.nshards ~probe_period:t.probe_period
      ~now:(Clock.now t.clock)
      ~load:(load_upcoming t.catalog ~stats:t.exec_stats ~domains:t.domains t.rules)
      ~shard_of:(shard_of_rules t.rules) ~domains:t.domains ()

let after_restore = reset_cron

(** Catch up to [instant] after downtime. [Replay_all] walks the daemon
    forward firing every missed trigger in order; [Skip] and [Fire_once]
    jump the clock, then per overdue rule either recompute the next
    trigger silently or fire once at the catch-up instant first. *)
let catch_up t ~policy instant =
  if instant < Clock.now t.clock then
    raise (Next_fire.Clock_regression { now = Clock.now t.clock; target = instant });
  match policy with
  | Replay_all -> advance_to t instant
  | Skip | Fire_once ->
    Clock.advance_to t.clock instant;
    (* Rules whose trigger points passed while the session was down; one
       RULE_TIME row per rule, so each appears at most once. *)
    let due =
      Table.fold (rule_time_table t)
        (fun acc _ tuple ->
          match tuple with
          | [| Value.Text name; Value.Int at |] when at <= instant -> (at, name) :: acc
          | _ -> acc)
        []
      |> List.sort compare
    in
    List.iter
      (fun (_, name) ->
        match Hashtbl.find_opt t.rules (norm name) with
        | None -> ()
        | Some st -> (
          match st.event with
          | Db_event _ -> ()
          | Cal_event { expr; _ } ->
            let fired =
              policy = Fire_once && fire_calendar_action t name instant <> None
            in
            (* A failed Fire_once already scheduled its retry (or
               quarantined); only recompute the natural next trigger when
               skipping or after a successful firing. *)
            if policy = Skip || fired then
              set_next_fire t st name
                (Next_fire.next t.ctx expr ~after:instant ~lookahead:t.lookahead
                   ~strategy:t.probe_strategy ())))
      due;
    reset_cron t

(** Run a query, dispatching rule definitions to this manager. *)
let run_query t ?binding source =
  match Qparser.query source with
  | Error e -> Error e
  | Ok q -> (
    match
      match q with
      | Qast.Define_rule r -> (
        match define t r with
        | Ok () -> Ok (Exec.Msg (Printf.sprintf "rule %s defined" r.Qast.rule_name))
        | Error e -> Error e)
      | Qast.Drop_rule name ->
        if drop t name then Ok (Exec.Msg (Printf.sprintf "rule %s dropped" name))
        else Error (Printf.sprintf "no rule %s" name)
      | q ->
        Ok
          (Exec.run t.catalog ?binding ~stats:t.exec_stats ~domains:t.domains
             ~injector:t.injector q)
    with
    | r -> r
    | exception (Cal_faults.Injector.Crash _ as e) ->
      (* An injected crash is the process dying, not a query error. *)
      raise e
    | exception
        (( Exec.Exec_error _ | Rule_error _ | Qexpr.Eval_error _ | Schema.Schema_error _
         | Catalog.No_such_table _ | Catalog.No_such_operator _ | Catalog.Table_exists _
         | Table.No_such_column _ | Value.Unknown_adt _ | Value.Incomparable _
         | Cal_faults.Injector.Injected_fault _ ) as e) ->
      Error (error_message e)
    | exception e ->
      (* Catch-all: an unexpected exception must not escape the tick, but
         its identity (and backtrace, when recording is on) must not be
         lost either. *)
      let bt = Printexc.get_backtrace () in
      Error
        ("unexpected exception: " ^ Printexc.to_string e
        ^ if bt = "" then "" else "\n" ^ bt))

let firings t = List.rev t.firings
let alerts t = List.rev t.alerts
let fire_count t name =
  match Hashtbl.find_opt t.rules (norm name) with Some st -> st.fire_count | None -> 0

let quarantined_rules t =
  List.sort String.compare
    (Hashtbl.fold
       (fun _ st acc -> if st.quarantined then st.def.Qast.rule_name :: acc else acc)
       t.rules [])

(** (fire_count, consecutive failures, quarantined) for a live rule. *)
let rule_health t name =
  match Hashtbl.find_opt t.rules (norm name) with
  | None -> None
  | Some st -> Some (st.fire_count, st.failures, st.quarantined)

(** Rows of the rule_errors system table, oldest first. *)
let rule_errors t =
  match Catalog.table_opt t.catalog "rule_errors" with
  | None -> []
  | Some tbl ->
    List.rev
      (Table.fold tbl
         (fun acc _ tuple ->
           match tuple with
           | [| Value.Text n; Value.Int at; Value.Int attempt; Value.Text e |] ->
             (n, at, attempt, e) :: acc
           | _ -> acc)
         [])

let next_fire t name =
  match Hashtbl.find_opt t.rules (norm name) with
  | Some { rt_rowid = Some rowid; _ } -> (
    match Table.get (rule_time_table t) rowid with
    | Some [| _; Value.Int at |] -> Some at
    | _ -> None)
  | _ -> None

(** Parsed definitions of every live rule (for persistence). *)
let rules t =
  List.sort
    (fun a b -> String.compare a.Qast.rule_name b.Qast.rule_name)
    (Hashtbl.fold (fun _ st acc -> st.def :: acc) t.rules [])

let rule_names t =
  List.sort String.compare (Hashtbl.fold (fun _ st acc -> st.def.Qast.rule_name :: acc) t.rules [])

(** Lift a quarantined rule back into service: reset its failure count
    and reschedule it from the current instant. [false] when the rule is
    absent or not quarantined. *)
let requeue t name =
  match Hashtbl.find_opt t.rules (norm name) with
  | Some st when st.quarantined ->
    st.quarantined <- false;
    st.failures <- 0;
    (match st.event with
    | Cal_event { expr; _ } ->
      set_next_fire t st st.def.Qast.rule_name
        (Next_fire.next t.ctx expr ~after:(Clock.now t.clock) ~lookahead:t.lookahead
           ~strategy:t.probe_strategy ())
    | Db_event _ -> ());
    true
  | Some _ | None -> false

(* Restore hooks for snapshot load: write manager state directly, no
   DBCRON interaction — the caller runs {!after_restore} once at the
   end to rebuild the heap. *)

let restore_clock t now = Clock.advance_to t.clock now

let set_rule_state t name ~fire_count ~failures ~quarantined ~next =
  match Hashtbl.find_opt t.rules (norm name) with
  | None -> ()
  | Some st -> (
    st.fire_count <- fire_count;
    st.failures <- failures;
    st.quarantined <- quarantined;
    (* RULE_TIME written directly, not via set_next_fire: a retry instant
       persisted by the snapshot must survive verbatim, and nothing may
       be offered to a heap about to be rebuilt. *)
    match next with
    | None -> (
      match st.rt_rowid with
      | Some rowid ->
        ignore (Table.delete (rule_time_table t) rowid);
        st.rt_rowid <- None
      | None -> ())
    | Some at -> (
      let row = [| Value.Text st.def.Qast.rule_name; Value.Int at |] in
      match st.rt_rowid with
      | Some rowid -> ignore (Table.update (rule_time_table t) rowid row)
      | None -> st.rt_rowid <- Some (Table.insert (rule_time_table t) row)))

let restore_firings t chronological = t.firings <- List.rev chronological
let restore_alerts t chronological = t.alerts <- List.rev chronological

let dbcron_stats t = Shard.stats t.cron
let dbcron_heap_peak t = Shard.heap_peak t.cron
let dbcron_fired t = Shard.fired t.cron
let exec_stats t = t.exec_stats
let plan_cache_stats t = Qplan.cache_stats t.catalog
let domains t = t.domains
let parallel_stats t = (t.par_batches, t.par_rules)
let probe_period t = t.probe_period
let shards t = t.nshards
let pending_kind t = Shard.pending_kind t.cron
let coalesce_stats t = (t.coal_batches, t.coal_fired)
let shard_par_steps t = Shard.par_steps t.cron

(** Per-shard view, indexed by shard:
    (rules, pending, occupancy, loaded, fired). [rules] counts live rule
    definitions placed on the shard; the rest are the coordinator's
    counters for its inner daemon. *)
let shard_stats t =
  let per = Shard.per_shard t.cron in
  let rules = Array.make (Array.length per) 0 in
  Hashtbl.iter (fun _ st -> rules.(st.shard) <- rules.(st.shard) + 1) t.rules;
  Array.mapi (fun i (p, o, l, f) -> (rules.(i), p, o, l, f)) per

(** Live calendar rules whose probes resolve to the closed-form periodic
    path under this manager's strategy (these rules never go dormant). *)
let periodic_rules t =
  Hashtbl.fold
    (fun _ st acc ->
      match st.event with
      | Cal_event { expr; _ } ->
        if Next_fire.resolve t.ctx expr t.probe_strategy = `Periodic then acc + 1 else acc
      | Db_event _ -> acc)
    t.rules 0
let injector t = t.injector
let set_journal_sink t sink = t.journal_sink <- Some sink
