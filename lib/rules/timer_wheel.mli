(** Hierarchical timer wheel — DBCRON's O(1)-amortized alternative to
    the global {!Min_heap} for very large pending sets.

    The wheel keeps a monotone lower bound [base] on every pending
    instant and files each entry by the highest 5-bit digit in which its
    instant differs from [base] (32 slots per level, one occupancy
    bitmask word per level). Insertion and advancing the bound are O(1)
    amortized: an entry cascades at most once per level over its whole
    lifetime, and finding the minimum is a handful of bit scans instead
    of a log-depth sift. Instants at or beyond the top level's horizon
    wait in a single overflow list and re-file as the bound approaches.

    Pop order is exactly {!Min_heap}'s: ascending (instant, insertion
    sequence), so equal-instant entries pop in insertion order and the
    two structures are drop-in interchangeable under DBCRON — the qcheck
    differential suite holds them to identical firing sequences. *)

type 'a t

(** [create ~horizon ()] sizes the level count so the wheel directly
    covers at least [8 * horizon] instants beyond its bound (DBCRON
    passes its probe period; anything farther rides the overflow list).
    @raise Invalid_argument on a non-positive horizon. *)
val create : horizon:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Number of levels (each 32 slots). *)
val levels : 'a t -> int

(** Slots currently occupied across every level (the overflow list, when
    non-empty, counts as one). *)
val occupancy : 'a t -> int

(** [push t at v] files an entry. Instants below the current bound are
    accepted and pop first (in (instant, sequence) order), matching the
    heap's behaviour for overdue entries after a restore. *)
val push : 'a t -> int -> 'a -> unit

(** Bulk insertion; returns the number of entries inserted. *)
val add_list : 'a t -> (int * 'a) list -> int

(** Smallest-(instant, sequence) entry, not removed. *)
val peek : 'a t -> (int * 'a) option

val pop : 'a t -> (int * 'a) option

(** Pop every entry with instant <= [bound], in (instant, sequence)
    order, advancing the wheel's bound past [bound]. *)
val pop_due : 'a t -> int -> (int * 'a) list
