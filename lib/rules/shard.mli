(** Signature-sharded DBCRON: N inner daemons in probe lockstep, one per
    calendar-signature bucket, with a deterministic merge of their firing
    lists.

    Every inner {!Dbcron} is created at the same instant with the same
    probe period, so their probe schedules never drift. The coordinator
    stamps each trigger entry with a global sequence number as it
    arrives — rows of a probe batch in row order, direct offers in call
    order — and merges per-shard due lists by (instant, sequence). A
    single unsharded daemon pops in exactly (instant, arrival) order,
    so the merged firing list is byte-identical to serial for every
    shard count, and the probe itself (one RULE_TIME retrieve per
    window, partitioned across shards by the caller's placement
    function) runs the same query the serial daemon would.

    Probe windows are prefetched serially before the shards step, so
    each shard's step touches only its own wheel and its own slice of
    the batch — pure, disjoint work that fans out across the domain
    pool when more than one lane is available. *)

type t

(** [create ~nshards ~probe_period ~now ~load ~shard_of ~domains ()]
    performs the initial probe (one [load] call covering
    [now, now + probe_period), partitioned by [shard_of]) and starts
    [nshards] inner daemons on [pending] structures (default [`Wheel];
    see {!Dbcron.create}). [shard_of] must be stable for a given name
    while any of its entries are pending. [domains] caps the pool lanes
    a step may fan out over; [1] pins stepping serial.
    @raise Invalid_argument on [nshards < 1], [domains < 1] or a
    non-positive period. *)
val create :
  ?pending:[ `Heap | `Wheel ] ->
  nshards:int ->
  probe_period:int ->
  now:int ->
  load:(window_end:int -> (int * string) list) ->
  shard_of:(string -> int) ->
  domains:int ->
  unit ->
  t

val nshards : t -> int
val probe_period : t -> int
val pending_kind : t -> [ `Heap | `Wheel ]

(** Instant of the next thing any shard must do (probe or fire). *)
val next_event : t -> int

(** Offer an entry directly (same window rule as {!Dbcron.offer} —
    acceptance depends only on the shared probe schedule, never on the
    shard count). Returns [true] when accepted. *)
val offer : t -> int -> string -> bool

(** [step t ~now ~load] prefetches every probe window due by [now] (one
    [load] call per window, serially), steps each shard — in parallel
    when the pool and [domains] allow — and returns the merged
    (instant, name) firing list, identical to a single unsharded
    daemon's. *)
val step : t -> now:int -> load:(window_end:int -> (int * string) list) -> (int * string) list

(** Entries currently pending across all shards. *)
val pending : t -> int

(** (probes, loaded): probe windows covered (counted once, not per
    shard) and entries loaded across all shards — serial-identical. *)
val stats : t -> int * int

(** Sum of per-shard pending peaks (exactly the serial peak when
    [nshards = 1]). *)
val heap_peak : t -> int

(** Cumulative entries popped and fired across all shards. *)
val fired : t -> int

(** Steps that fanned out across the pool. *)
val par_steps : t -> int

(** Per-shard counters, indexed by shard:
    (pending, occupancy, loaded, fired) — [occupancy] is the wheel's
    occupied-slot count (pending itself under [`Heap]). *)
val per_shard : t -> (int * int * int * int) array
