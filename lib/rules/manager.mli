(** The rule system of section 4: [on Event where Condition do Action]
    rules plus time-based [on <calendar-expression> do Action] rules.

    Declaring a temporal rule parses its calendar expression, stores the
    expression and evaluation plan in RULE_INFO, computes the next
    trigger point into RULE_TIME (indexed; DBCRON's probe is an ordinary
    indexed [retrieve]), and hands the trigger to {!Dbcron}.
    Database-event rules hook into the executor's event stream; actions
    run with NEW/CURRENT bound to the triggering tuple, guarded by a
    recursion limit.

    System tables (created on demand):
    {v
    rule_info(name text, kind text, spec text, condition text,
              action text, eval_plan text)
    rule_time(name text, next_fire int)   -- instant of next trigger
    rule_errors(name text, at int, attempt int, error text)
    v}

    Firings are isolated: one rule's failing action cannot abort the
    batch or the triggering statement. Failures are recorded in
    [rule_errors]; a failing calendar rule retries with bounded
    exponential backoff in simulated time, and any rule is quarantined
    (disabled, but inspectable and {!requeue}-able) after [max_failures]
    consecutive failures. *)

open Cal_lang
open Cal_db

type t

type firing = { rule : string; at : int (** instant *) }

(** What to do, on restart, about trigger points that passed while the
    session was down: fire each overdue rule once at the catch-up
    instant; skip them entirely; or replay every missed firing at its
    original instant. *)
type catch_up = Fire_once | Skip | Replay_all

exception Rule_error of string

(** [create ?probe_period ?lookahead ?probe_strategy ?domains ctx
    catalog] installs the system tables, the executor hook and the
    [alert] operator, and starts DBCRON at the context clock's current
    instant. Defaults: probe every simulated day, 400-day next-fire
    lookahead, [`Auto] probe strategy (next-fire computations stream
    lazily when {!Next_fire.strategy} allows, else materialize windows;
    force [`Materialize] or [`Stream] to pin one path, e.g. for the
    differential tests and benchmarks).

    [domains] caps the pool lanes used for this manager's parallel work:
    batched next-fire recomputation after a DBCRON firing wave, and
    partitioned sequential scans in the queries it runs (default
    {!Cal_parallel.Pool.default_domains}; an explicit value grows the
    shared pool if needed). [1] pins everything serial. Firing order,
    query results and RULE_TIME contents are identical at every setting;
    only wall-clock time and the cache's hit/miss split (per-domain
    clones count their own lookups) may differ.

    [shards] (default 1) splits DBCRON into that many
    calendar-signature shards ({!Shard}): each rule is placed by the
    period of its compiled periodic normal form (hash of its
    canonicalized expression as fallback), each shard runs its own
    pending structure and probes against its own persistent calendar
    cache, and per-shard firing lists merge back deterministically —
    firing order, RULE_TIME contents and firing/probe statistics are
    identical at every shard count. [pending] picks each shard's pending
    structure: the hierarchical {!Timer_wheel} (default) or the
    {!Min_heap} oracle; also invisible in every observable.

    [max_failures] (default 3) is the consecutive-failure count at which
    a rule is quarantined; [retry_base] (default 60 simulated seconds)
    seeds the exponential retry backoff of failing calendar rules.
    [injector] threads a fault injector through firings and queries
    (default: disabled).
    @raise Rule_error when the context has no clock, [domains < 1],
    [shards < 1], [max_failures < 1] or [retry_base < 1]. *)
val create :
  ?probe_period:int ->
  ?lookahead:int ->
  ?probe_strategy:Next_fire.strategy ->
  ?domains:int ->
  ?shards:int ->
  ?pending:[ `Heap | `Wheel ] ->
  ?max_failures:int ->
  ?retry_base:int ->
  ?injector:Cal_faults.Injector.t ->
  Context.t ->
  Catalog.t ->
  t

(** Declare a rule (parsed form). @raise Rule_error on unknown tables. *)
val define : t -> Qast.rule -> (unit, string) result

(** Parse and declare; the input must be a [define rule] command. *)
val define_string : t -> string -> (unit, string) result

(** Remove a rule and its catalog rows; [false] when absent. *)
val drop : t -> string -> bool

(** Advance simulated time to an instant, probing and firing everything
    due on the way (in chronological order).
    @raise Next_fire.Clock_regression when the instant precedes the
    clock (simulated time never moves backwards). *)
val advance_to : t -> int -> unit

val advance_days : t -> int -> unit

(** [catch_up t ~policy instant] brings a recovered session from its
    restored clock to [instant], applying [policy] to trigger points
    that passed in between. [Replay_all] is {!advance_to} — every missed
    firing happens at its original instant. [Skip] and [Fire_once] jump
    the clock first; each overdue calendar rule then either just gets a
    fresh next-trigger point after [instant], or fires once at [instant]
    before getting one. Either way DBCRON is rebuilt from RULE_TIME.
    @raise Next_fire.Clock_regression when [instant] precedes the
    clock. *)
val catch_up : t -> policy:catch_up -> int -> unit

(** Run any query, dispatching rule definitions/drops to this manager. *)
val run_query :
  t -> ?binding:(string -> Value.t option) -> string -> (Exec.result, string) result

(** Chronological firing log. *)
val firings : t -> firing list

(** Messages raised through the [alert] operator, with instants,
    chronological. *)
val alerts : t -> (string * int) list

val fire_count : t -> string -> int

(** Next trigger instant per RULE_TIME; [None] when dormant/absent. *)
val next_fire : t -> string -> int option

(** Names of quarantined rules, sorted. *)
val quarantined_rules : t -> string list

(** [(fire_count, consecutive failures, quarantined)] for a live rule. *)
val rule_health : t -> string -> (int * int * bool) option

(** Rows of the rule_errors system table — (rule, instant, attempt,
    message) — oldest first. *)
val rule_errors : t -> (string * int * int * string) list

(** Lift a quarantined rule back into service: reset its failure count
    and reschedule it from the current instant. [false] when the rule is
    absent or not quarantined. *)
val requeue : t -> string -> bool

val rule_names : t -> string list

(** Parsed definitions of every live rule, sorted by name (persistence). *)
val rules : t -> Qast.rule list

(** DBCRON's (probes, heap loads). *)
val dbcron_stats : t -> int * int

(** Largest number of simultaneously-pending DBCRON heap entries. *)
val dbcron_heap_peak : t -> int

(** Cumulative DBCRON heap entries popped and fired (see
    {!Dbcron.fired}); benchmarks cross-check this against the length of
    {!firings}. *)
val dbcron_fired : t -> int

(** Cumulative executor counters across every query this manager ran:
    DBCRON probes, rule actions and user queries. *)
val exec_stats : t -> Exec.stats

(** The catalog's plan-cache counters. *)
val plan_cache_stats : t -> Qplan.cache_stats

(** The lane cap this manager was created with. *)
val domains : t -> int

(** [(batches, rules)] — next-fire batches that fanned out across the
    pool, and how many rule recomputations they covered. *)
val parallel_stats : t -> int * int

(** The probe period this manager's DBCRON runs at. *)
val probe_period : t -> int

(** The shard count this manager was created with. *)
val shards : t -> int

(** Which pending structure the shards run on. *)
val pending_kind : t -> [ `Heap | `Wheel ]

(** [(batches, firings)] — same-tick firing groups that executed as one
    prepared plan-cache batch, and the firings they covered. Groups form
    over consecutive firings at the same instant with the same action
    shape; coalescing changes no observable (isolation, errors, stats)
    beyond these counters. *)
val coalesce_stats : t -> int * int

(** DBCRON steps that fanned shards out across the pool. *)
val shard_par_steps : t -> int

(** Per-shard counters, indexed by shard:
    (rules, pending, occupancy, loaded, fired). [rules] counts live
    rules placed on the shard; [occupancy] is its wheel's occupied-slot
    count (pending itself under [`Heap]). *)
val shard_stats : t -> (int * int * int * int * int) array

(** Live calendar rules whose probes resolve to the closed-form periodic
    path ({!Next_fire.resolve}) under this manager's strategy. Such rules
    are probed by O(log spans) arithmetic with no generation and no
    lifespan bound. *)
val periodic_rules : t -> int

(** The fault injector this manager was created with. *)
val injector : t -> Cal_faults.Injector.t

(** Install the durable session's firing journal: during {!advance_to},
    each coalesced firing batch is handed to the sink as one list of
    ["fired <at> <rule>"] records, which the session journals as one
    commit group. The records are replay-neutral provenance — recovery
    re-fires by replaying the advance itself — so installing a sink
    changes no digest. Not called during replay (sessions install it
    after recovery completes). *)
val set_journal_sink : t -> (string list -> unit) -> unit

(** {2 Restore hooks}

    Used by the session's snapshot loader. They write manager state
    directly, without touching DBCRON; call {!after_restore} once at the
    end to rebuild the heap from the restored RULE_TIME. *)

(** Move the clock to the snapshot's instant (never backwards). *)
val restore_clock : t -> int -> unit

(** Overwrite a rule's counters, quarantine flag and RULE_TIME row —
    verbatim, no recomputation, no heap offer. Unknown names are
    ignored. *)
val set_rule_state :
  t -> string -> fire_count:int -> failures:int -> quarantined:bool -> next:int option -> unit

(** Replace the firing log (given chronological, as {!firings} returns
    it). *)
val restore_firings : t -> firing list -> unit

(** Replace the alert log (given chronological). *)
val restore_alerts : t -> (string * int) list -> unit

(** Rebuild DBCRON from RULE_TIME at the current clock instant. *)
val after_restore : t -> unit
