(** The rule system of section 4: [on Event where Condition do Action]
    rules plus time-based [on <calendar-expression> do Action] rules.

    Declaring a temporal rule parses its calendar expression, stores the
    expression and evaluation plan in RULE_INFO, computes the next
    trigger point into RULE_TIME (indexed; DBCRON's probe is an ordinary
    indexed [retrieve]), and hands the trigger to {!Dbcron}.
    Database-event rules hook into the executor's event stream; actions
    run with NEW/CURRENT bound to the triggering tuple, guarded by a
    recursion limit.

    System tables (created on demand):
    {v
    rule_info(name text, kind text, spec text, condition text,
              action text, eval_plan text)
    rule_time(name text, next_fire int)   -- instant of next trigger
    v} *)

open Cal_lang
open Cal_db

type t

type firing = { rule : string; at : int (** instant *) }

exception Rule_error of string

(** [create ?probe_period ?lookahead ?probe_strategy ?domains ctx
    catalog] installs the system tables, the executor hook and the
    [alert] operator, and starts DBCRON at the context clock's current
    instant. Defaults: probe every simulated day, 400-day next-fire
    lookahead, [`Auto] probe strategy (next-fire computations stream
    lazily when {!Next_fire.strategy} allows, else materialize windows;
    force [`Materialize] or [`Stream] to pin one path, e.g. for the
    differential tests and benchmarks).

    [domains] caps the pool lanes used for this manager's parallel work:
    batched next-fire recomputation after a DBCRON firing wave, and
    partitioned sequential scans in the queries it runs (default
    {!Cal_parallel.Pool.default_domains}; an explicit value grows the
    shared pool if needed). [1] pins everything serial. Firing order,
    query results and RULE_TIME contents are identical at every setting;
    only wall-clock time and the cache's hit/miss split (per-domain
    clones count their own lookups) may differ.
    @raise Rule_error when the context has no clock or [domains < 1]. *)
val create :
  ?probe_period:int ->
  ?lookahead:int ->
  ?probe_strategy:Next_fire.strategy ->
  ?domains:int ->
  Context.t ->
  Catalog.t ->
  t

(** Declare a rule (parsed form). @raise Rule_error on unknown tables. *)
val define : t -> Qast.rule -> (unit, string) result

(** Parse and declare; the input must be a [define rule] command. *)
val define_string : t -> string -> (unit, string) result

(** Remove a rule and its catalog rows; [false] when absent. *)
val drop : t -> string -> bool

(** Advance simulated time to an instant, probing and firing everything
    due on the way (in chronological order). *)
val advance_to : t -> int -> unit

val advance_days : t -> int -> unit

(** Run any query, dispatching rule definitions/drops to this manager. *)
val run_query :
  t -> ?binding:(string -> Value.t option) -> string -> (Exec.result, string) result

(** Chronological firing log. *)
val firings : t -> firing list

(** Messages raised through the [alert] operator, with instants,
    chronological. *)
val alerts : t -> (string * int) list

val fire_count : t -> string -> int

(** Next trigger instant per RULE_TIME; [None] when dormant/absent. *)
val next_fire : t -> string -> int option

val rule_names : t -> string list

(** Parsed definitions of every live rule, sorted by name (persistence). *)
val rules : t -> Qast.rule list

(** DBCRON's (probes, heap loads). *)
val dbcron_stats : t -> int * int

(** Largest number of simultaneously-pending DBCRON heap entries. *)
val dbcron_heap_peak : t -> int

(** Cumulative executor counters across every query this manager ran:
    DBCRON probes, rule actions and user queries. *)
val exec_stats : t -> Exec.stats

(** The catalog's plan-cache counters. *)
val plan_cache_stats : t -> Qplan.cache_stats

(** The lane cap this manager was created with. *)
val domains : t -> int

(** [(batches, rules)] — next-fire batches that fanned out across the
    pool, and how many rule recomputations they covered. *)
val parallel_stats : t -> int * int
