(* Seeded network-chaos proxy: a byte pump between a listening socket
   and an upstream server that injects delays, short (1-byte) deliveries,
   payload truncation and mid-stream disconnects. Decisions come from a
   private splitmix64 stream per pump direction, derived from
   (seed, connection index, direction), so a fault trace is reproducible
   from its seed even though thread interleaving is not. *)

type config = {
  delay_rate : float;  (* chance a chunk is delayed before forwarding *)
  max_delay_s : float;  (* delay is uniform in (0, max_delay_s] *)
  short_rate : float;  (* chance a chunk is delivered one byte at a time *)
  truncate_rate : float;  (* chance a chunk is cut: prefix forwarded, conn dropped *)
  disconnect_rate : float;  (* chance the connection is dropped before a chunk *)
}

let default_config =
  {
    delay_rate = 0.10;
    max_delay_s = 0.01;
    short_rate = 0.10;
    truncate_rate = 0.02;
    disconnect_rate = 0.03;
  }

(* No faults at all: the proxy becomes a plain byte pump (the no-fault
   bench axis uses this so both axes share the proxy's cost). *)
let calm =
  { delay_rate = 0.; max_delay_s = 0.; short_rate = 0.; truncate_rate = 0.; disconnect_rate = 0. }

type stats = {
  conns : int;  (** connections accepted *)
  delays : int;  (** delayed chunks *)
  shorts : int;  (** chunks delivered byte-at-a-time *)
  truncations : int;  (** chunks cut short (connection then dropped) *)
  disconnects : int;  (** injected disconnects (truncations included) *)
}

type t = {
  config : config;
  seed : int;
  upstream : Unix.sockaddr;
  listen_fd : Unix.file_descr;
  addr : Unix.sockaddr;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  lock : Mutex.t;  (* guards [pumps] and the live fd list *)
  mutable pumps : Thread.t list;
  mutable live_fds : Unix.file_descr list;
  n_conns : int Atomic.t;
  n_delays : int Atomic.t;
  n_shorts : int Atomic.t;
  n_truncations : int Atomic.t;
  n_disconnects : int Atomic.t;
}

(* splitmix64, same finalizer as Injector's: decisions are a pure
   function of the derived seed and the draw sequence. *)
let mix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix_float state =
  let bits = Int64.to_int (Int64.shift_right_logical (mix_next state) 11) in
  float_of_int bits /. 9007199254740992.0

(* Derive one direction's decision stream: fold the connection index and
   direction tag into the base seed through the same finalizer. *)
let derive_seed seed ~conn ~dir =
  let s = ref (Int64.of_int ((seed * 1_000_003) + (conn * 7919) + dir)) in
  ignore (mix_next s);
  !s

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_quiet fd = try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Forward [src] to [dst] until EOF or an injected/natural failure; a
   drop tears both directions so the peer notices promptly. *)
let pump t ~src ~dst ~dseed () =
  let state = ref dseed in
  let buf = Bytes.create 4096 in
  let cfg = t.config in
  let drop () =
    Atomic.incr t.n_disconnects;
    shutdown_quiet src;
    shutdown_quiet dst
  in
  let write_all ?(off = 0) n =
    let rec go off remaining =
      if remaining > 0 then begin
        let w = Unix.write dst buf off remaining in
        go (off + w) (remaining - w)
      end
    in
    go off n
  in
  (try
     let rec loop () =
       match Unix.read src buf 0 (Bytes.length buf) with
       | 0 -> shutdown_quiet dst (* EOF: half-close downstream *)
       | n ->
         if cfg.disconnect_rate > 0. && mix_float state < cfg.disconnect_rate then drop ()
         else begin
           if cfg.delay_rate > 0. && mix_float state < cfg.delay_rate then begin
             Atomic.incr t.n_delays;
             Thread.delay (mix_float state *. cfg.max_delay_s)
           end;
           if cfg.truncate_rate > 0. && mix_float state < cfg.truncate_rate then begin
             (* Forward a strict prefix (possibly empty), then drop: the
                peer sees a torn request/reply and a reset. *)
             Atomic.incr t.n_truncations;
             let keep = int_of_float (mix_float state *. float_of_int n) in
             if keep > 0 then write_all keep;
             drop ()
           end
           else begin
             (if cfg.short_rate > 0. && mix_float state < cfg.short_rate then begin
                (* Byte-at-a-time delivery: maximal exercise for the
                   peer's partial-read handling. *)
                Atomic.incr t.n_shorts;
                for i = 0 to n - 1 do
                  write_all ~off:i 1
                done
              end
              else write_all n);
             loop ()
           end
         end
     in
     loop ()
   with Unix.Unix_error _ | Sys_error _ -> shutdown_quiet dst);
  ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> loop ()
      | exception Unix.Unix_error _ -> () (* listener closed: stop *)
      | client_fd, _peer -> (
        let conn = Atomic.fetch_and_add t.n_conns 1 in
        match
          let up = Unix.socket (Unix.domain_of_sockaddr t.upstream) Unix.SOCK_STREAM 0 in
          (try Unix.connect up t.upstream
           with e ->
             close_quiet up;
             raise e);
          up
        with
        | exception _ ->
          close_quiet client_fd;
          loop ()
        | up_fd ->
          let t1 =
            Thread.create
              (pump t ~src:client_fd ~dst:up_fd ~dseed:(derive_seed t.seed ~conn ~dir:0))
              ()
          in
          let t2 =
            Thread.create
              (fun () ->
                pump t ~src:up_fd ~dst:client_fd ~dseed:(derive_seed t.seed ~conn ~dir:1) ();
                (* Both directions are done once the upstream side ends:
                   close the pair here, the other pump exits on EBADF or
                   EOF. *)
                close_quiet client_fd;
                close_quiet up_fd)
              ()
          in
          Mutex.protect t.lock (fun () ->
              t.pumps <- t1 :: t2 :: t.pumps;
              t.live_fds <- client_fd :: up_fd :: t.live_fds);
          loop ())
  in
  loop ()

let cleanup_unix_path = function
  | Unix.ADDR_UNIX p when Sys.file_exists p -> ( try Sys.remove p with Sys_error _ -> ())
  | _ -> ()

let start ?(config = default_config) ~seed ~upstream listen_addr =
  cleanup_unix_path listen_addr;
  let fd = Unix.socket (Unix.domain_of_sockaddr listen_addr) Unix.SOCK_STREAM 0 in
  (match listen_addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | _ -> ());
  Unix.bind fd listen_addr;
  Unix.listen fd 64;
  let t =
    {
      config;
      seed;
      upstream;
      listen_fd = fd;
      addr = Unix.getsockname fd;
      stopping = Atomic.make false;
      accept_thread = None;
      lock = Mutex.create ();
      pumps = [];
      live_fds = [];
      n_conns = Atomic.make 0;
      n_delays = Atomic.make 0;
      n_shorts = Atomic.make 0;
      n_truncations = Atomic.make 0;
      n_disconnects = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let addr t = t.addr
let seed t = t.seed

let stats t =
  {
    conns = Atomic.get t.n_conns;
    delays = Atomic.get t.n_delays;
    shorts = Atomic.get t.n_shorts;
    truncations = Atomic.get t.n_truncations;
    disconnects = Atomic.get t.n_disconnects;
  }

let stop t =
  Atomic.set t.stopping true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  close_quiet t.listen_fd;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  let fds, pumps =
    Mutex.protect t.lock (fun () ->
        let r = (t.live_fds, t.pumps) in
        t.live_fds <- [];
        t.pumps <- [];
        r)
  in
  List.iter shutdown_quiet fds;
  List.iter Thread.join pumps;
  List.iter close_quiet fds;
  cleanup_unix_path t.addr
