(** Deterministic fault injection for the durability layer.

    An injector is a seeded decision source threaded through the
    Session / Exec / Manager hooks. Every decision it makes — fail this
    rule action, fail this executor mutation, crash the process image on
    this journal append (optionally tearing the record), jump the clock
    on this advance — is a pure function of the seed and the call
    sequence, so a failing run replays bit-identically from its seed.

    The disabled injector {!none} answers "no fault" to every question
    at negligible cost; production paths pass it by default. *)

type t

(** Raised by {!on_journal_append} to simulate the process dying
    mid-append. The torn prefix of the record (possibly empty, possibly
    the whole record) has already been handed to the writer. *)
exception Crash of string

(** Raised from rule actions / executor mutations selected for failure. *)
exception Injected_fault of string

(** The always-disabled injector. *)
val none : t

(** [create ~seed ()] makes an enabled injector; all fault classes start
    switched off until their [set_*] knob is turned. *)
val create : seed:int -> unit -> t

val enabled : t -> bool
val seed : t -> int

(** {2 Rule-action faults} *)

(** [set_action_fault t ?rule ?rate ?times ()] arms action-attempt
    failure: each attempt fails with probability [rate] (default [1.0]),
    restricted to [rule] when given (case-insensitive), for at most
    [times] injected failures (default unlimited). *)
val set_action_fault : t -> ?rule:string -> ?rate:float -> ?times:int -> unit -> unit

(** [Some message] when this attempt of [rule]'s action must fail. *)
val action_fault : t -> rule:string -> string option

(** {2 Executor faults} *)

(** Arm failure of the next [times] mutating executor commands (append /
    delete / replace) that consult this injector. *)
val set_exec_fault : t -> times:int -> unit -> unit

(** [Some message] when the current mutation must fail. *)
val exec_fault : t -> string option

(** {2 Journal crash (torn-write simulation)} *)

(** [set_crash_at_append t ?torn n] kills the process image on the [n]th
    journal append from now (1-based). [torn] is the number of bytes of
    that final record that reach the file before the crash: [0] loses the
    record entirely, a mid-record count leaves a torn tail for recovery
    to detect and discard, and omitting it writes the whole record before
    crashing (the append survives). *)
val set_crash_at_append : t -> ?torn:int -> int -> unit

(** Called by the journal once per logical append. Under [Sync_each] the
    argument is the encoded record (newline included) and [`Crash_after n]
    makes the journal write exactly the first [n] bytes, flush, and raise
    {!Crash}. Under a buffered policy the argument is the raw payload and
    [`Crash_after _] means the process image dies with the uncommitted
    group still in memory — nothing reaches the file. The disabled
    injector always answers [`Write]. *)
val on_journal_append : t -> string -> [ `Write | `Crash_after of int ]

(** [set_crash_at_flush t ?torn n] kills the process image on the [n]th
    physical group flush from now (1-based) — the mid-group crash point
    group commit introduces. [torn] is the number of bytes of the fatal
    {e group record} that reach the file: [0] loses the whole group, a
    mid-record count tears inside the group frame (recovery must drop
    the group whole), and omitting it writes the entire group before
    crashing (every member survives). Counts down independently of
    {!set_crash_at_append}: an armed append crash fires at a logical
    append, an armed flush crash fires at a physical write. *)
val set_crash_at_flush : t -> ?torn:int -> int -> unit

(** Called by the journal with each encoded group record about to be
    written+flushed (one per physical flush, including [Sync_each]
    singleton groups). Same contract as {!on_journal_append}'s torn
    write. *)
val on_journal_flush : t -> string -> [ `Write | `Crash_after of int ]

(** {2 Clock jumps} *)

(** [set_clock_jump t f] rewrites every clock-advance target [i] to
    [f i] — forwards to simulate daemon downtime, backwards to exercise
    the {e clock regression} guard. One-shot knobs compose as repeated
    calls. *)
val set_clock_jump : t -> (int -> int) -> unit

(** The (possibly rewritten) advance target. *)
val jump_clock : t -> int -> int

(** {2 Statistics} *)

(** (injected action faults, injected exec faults, crashes raised). *)
val stats : t -> int * int * int
