(* Seeded deterministic fault injector. Decisions come from a private
   splitmix64 stream so they depend only on (seed, call sequence), never
   on the global Random state or wall time. *)

exception Crash of string
exception Injected_fault of string

type action_fault = {
  af_rule : string option;  (* restrict to this rule (normalized) *)
  af_rate : float;
  mutable af_left : int;  (* remaining injections; -1 = unlimited *)
}

type t = {
  enabled : bool;
  seed : int;
  mutable state : int64;  (* splitmix64 state *)
  mutable action : action_fault option;
  mutable exec_left : int;
  mutable crash_at : int;  (* appends until crash; 0 = disarmed *)
  mutable torn : int;  (* bytes of the fatal record to keep; -1 = all *)
  mutable flush_at : int;  (* group flushes until crash; 0 = disarmed *)
  mutable torn_flush : int;  (* bytes of the fatal group to keep; -1 = all *)
  mutable clock_jump : (int -> int) option;
  mutable injected_actions : int;
  mutable injected_execs : int;
  mutable crashes : int;
}

let make ~enabled ~seed =
  {
    enabled;
    seed;
    state = Int64.of_int seed;
    action = None;
    exec_left = 0;
    crash_at = 0;
    torn = -1;
    flush_at = 0;
    torn_flush = -1;
    clock_jump = None;
    injected_actions = 0;
    injected_execs = 0;
    crashes = 0;
  }

let none = make ~enabled:false ~seed:0
let create ~seed () = make ~enabled:true ~seed
let enabled t = t.enabled
let seed t = t.seed

(* splitmix64: the standard finalizer-based generator; tiny and
   statistically fine for fault-selection coin flips. *)
let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_float t =
  (* 53 uniform bits into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_u64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let norm = String.lowercase_ascii

let set_action_fault t ?rule ?(rate = 1.0) ?times () =
  t.action <-
    Some
      {
        af_rule = Option.map norm rule;
        af_rate = rate;
        af_left = (match times with Some n -> n | None -> -1);
      }

let action_fault t ~rule =
  if not t.enabled then None
  else
    match t.action with
    | None -> None
    | Some af ->
      let applies =
        (match af.af_rule with None -> true | Some r -> r = norm rule)
        && af.af_left <> 0
      in
      (* Burn one coin flip per applicable attempt so the decision stream
         stays aligned with the attempt sequence. *)
      if applies && next_float t < af.af_rate then begin
        if af.af_left > 0 then af.af_left <- af.af_left - 1;
        t.injected_actions <- t.injected_actions + 1;
        Some (Printf.sprintf "injected action fault (seed %d, #%d)" t.seed t.injected_actions)
      end
      else None

let set_exec_fault t ~times () = t.exec_left <- times

let exec_fault t =
  if t.enabled && t.exec_left > 0 then begin
    t.exec_left <- t.exec_left - 1;
    t.injected_execs <- t.injected_execs + 1;
    Some (Printf.sprintf "injected executor fault (seed %d, #%d)" t.seed t.injected_execs)
  end
  else None

let set_crash_at_append t ?(torn = -1) n =
  if n < 1 then invalid_arg "Injector.set_crash_at_append: n must be >= 1";
  t.crash_at <- n;
  t.torn <- torn

let on_journal_append t record =
  let len = String.length record in
  if (not t.enabled) || t.crash_at = 0 then `Write
  else begin
    t.crash_at <- t.crash_at - 1;
    if t.crash_at > 0 then `Write
    else begin
      t.crashes <- t.crashes + 1;
      let keep = if t.torn < 0 then len else min t.torn len in
      `Crash_after keep
    end
  end

let set_crash_at_flush t ?(torn = -1) n =
  if n < 1 then invalid_arg "Injector.set_crash_at_flush: n must be >= 1";
  t.flush_at <- n;
  t.torn_flush <- torn

let on_journal_flush t record =
  let len = String.length record in
  if (not t.enabled) || t.flush_at = 0 then `Write
  else begin
    t.flush_at <- t.flush_at - 1;
    if t.flush_at > 0 then `Write
    else begin
      t.crashes <- t.crashes + 1;
      let keep = if t.torn_flush < 0 then len else min t.torn_flush len in
      `Crash_after keep
    end
  end

let set_clock_jump t f = t.clock_jump <- Some f

let jump_clock t i =
  if not t.enabled then i
  else match t.clock_jump with None -> i | Some f -> f i

let stats t = (t.injected_actions, t.injected_execs, t.crashes)
