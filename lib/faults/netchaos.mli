(** Seeded network-chaos proxy for the served store.

    [start] opens a listening socket and forwards every accepted
    connection to an upstream server, injecting faults into the byte
    stream in both directions: forwarding delays, short (byte-at-a-time)
    deliveries that force partial reads on the peer, payload truncation
    (a strict prefix is forwarded, then the connection drops — a torn
    request or reply), and mid-stream disconnects. Each pump direction
    draws its decisions from a private splitmix64 stream derived from
    [(seed, connection index, direction)], so the fault pattern of any
    single stream replays from the seed; cross-connection interleaving
    is the operating system's.

    The chaos soak property drives a real client/server pair through
    this proxy and asserts the exactly-once and deadline contracts
    (DESIGN.md §15). *)

type t

type config = {
  delay_rate : float;  (** chance a chunk is delayed before forwarding *)
  max_delay_s : float;  (** delay is uniform in [(0, max_delay_s]] *)
  short_rate : float;  (** chance a chunk is delivered one byte at a time *)
  truncate_rate : float;
      (** chance a chunk is cut: a strict prefix is forwarded and the
          connection is dropped *)
  disconnect_rate : float;  (** chance the connection drops before a chunk *)
}

(** Moderate rates: ~10% delays and short deliveries, a few percent
    truncations and disconnects — hostile enough to exercise every
    failure path, tame enough that bounded retries converge. *)
val default_config : config

(** All rates zero: a plain byte pump. The no-fault bench axis runs
    through this so both axes pay the same proxy cost. *)
val calm : config

(** [start ?config ~seed ~upstream listen_addr] binds [listen_addr]
    (TCP port 0 picks a free port — see {!addr}) and starts forwarding.
    A stale Unix socket file at the listen path is replaced. *)
val start : ?config:config -> seed:int -> upstream:Unix.sockaddr -> Unix.sockaddr -> t

(** Actual bound listen address. *)
val addr : t -> Unix.sockaddr

val seed : t -> int

type stats = {
  conns : int;  (** connections accepted *)
  delays : int;  (** delayed chunks *)
  shorts : int;  (** chunks delivered byte-at-a-time *)
  truncations : int;  (** chunks cut short (connection then dropped) *)
  disconnects : int;  (** injected disconnects (truncations included) *)
}

val stats : t -> stats

(** Stop accepting, drop every live connection, join the pump threads,
    remove a Unix listen-socket file. *)
val stop : t -> unit
