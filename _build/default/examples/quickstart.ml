(* Quickstart: define calendars, evaluate the paper's section 3.1
   expressions, inspect the CALENDARS catalog, and run one query.

   Run with: dune exec examples/quickstart.exe *)

open Calrules

let show_cal session label cal =
  let days =
    Interval_set.to_list (Calendar.flatten cal)
    |> List.map (fun iv ->
           if Interval.length iv = 1 then
             Civil.to_string (Session.date_of_day session (Interval.lo iv))
           else
             Printf.sprintf "%s..%s"
               (Civil.to_string (Session.date_of_day session (Interval.lo iv)))
               (Civil.to_string (Session.date_of_day session (Interval.hi iv))))
  in
  Printf.printf "%-45s %s\n    = %s\n" label (Calendar.to_string cal)
    (String.concat ", " days)

let eval session label source =
  match Session.eval_calendar session source with
  | Ok cal -> show_cal session label cal
  | Error e -> Printf.printf "%s: ERROR %s\n" label e

let () =
  (* Epoch Jan 1 1993, as in the paper's section 3.1 examples: day 1 is
     Jan 1 1993, the first week of the year is (-4,3). *)
  let session =
    Session.create ~epoch:(Civil.make 1993 1 1)
      ~lifespan:(Civil.make 1993 1 1, Civil.make 1999 12 31)
      ()
  in
  print_endline "== defining calendars ==";
  List.iter
    (fun (name, script) ->
      match Session.define_calendar session ~name ~script with
      | Ok () -> Printf.printf "  defined %-12s as %s\n" name script
      | Error e -> Printf.printf "  %s FAILED: %s\n" name e)
    [
      ("Mondays", "{ return ([1]/DAYS:during:WEEKS); }");
      ("Tuesdays", "{ return ([2]/DAYS:during:WEEKS); }");
      ("Fridays", "{ return ([5]/DAYS:during:WEEKS); }");
      ("Januarys", "{ return ([1]/MONTHS:during:YEARS); }");
      ("Third_Weeks", "{ return ([3]/WEEKS:overlaps:MONTHS); }");
    ];

  print_endline "\n== section 3.1 expressions (epoch Jan 1 1993) ==";
  eval session "WEEKS during January 1993:" "WEEKS:during:[1]/MONTHS:during:1993/YEARS";
  eval session "third week of January 1993:" "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS";
  eval session "Mondays during January 1993:" "Mondays:during:Januarys:during:1993/YEARS";
  eval session "Third_Weeks during January 1993:" "Third_Weeks:during:Januarys:during:1993/YEARS";

  print_endline "\n== the CALENDARS catalog row for Tuesdays (paper figure 1) ==";
  (match Session.calendar_row session "Tuesdays" with
  | Some row ->
    Array.iteri
      (fun i v ->
        let col = [| "name"; "derivation-script"; "eval-plan"; "lifespan"; "granularity"; "values" |] in
        Printf.printf "  %-18s %s\n" col.(i)
          (String.concat " | " (String.split_on_char '\n' (Cal_db.Value.to_string v))))
      row
  | None -> print_endline "  (missing)");

  print_endline "\n== a valid-time query ==";
  ignore (Session.query_exn session "create table stock (day chronon valid, price float)");
  for d = 1 to 31 do
    ignore
      (Session.query_exn session
         (Printf.sprintf "append stock (day = @%d, price = %.2f)" d (100. +. (0.5 *. float_of_int d))))
  done;
  print_endline "  retrieve (stock.day, stock.price) from stock on \"Tuesdays\"";
  (match Session.query_exn session "retrieve (stock.day, stock.price) from stock on \"Tuesdays\"" with
  | Cal_db.Exec.Rows { rows; _ } ->
    List.iter
      (fun row ->
        match row with
        | [| Cal_db.Value.Chronon d; Cal_db.Value.Float p |] ->
          Printf.printf "    %s  %.2f\n" (Civil.to_string (Session.date_of_day session d)) p
        | _ -> ())
      rows
  | _ -> print_endline "  (unexpected result)");
  print_endline "\ndone."
