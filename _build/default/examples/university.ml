(* The paper's university query:

     "Retrieve the names of all foreign students who worked more than 20
      hours in any week during the semester"

   The semester is an application-specific calendar (spring 1993:
   Jan 19 - May 14); weeks come from the algebra; hours are tuples with
   valid time. Run with: dune exec examples/university.exe *)

open Calrules
open Cal_db

let () =
  let session =
    Session.create ~epoch:(Civil.make 1993 1 1)
      ~lifespan:(Civil.make 1993 1 1, Civil.make 1993 12 31)
      ()
  in
  let day d = Session.day_of_date session d in
  let date c = Civil.to_string (Session.date_of_day session c) in

  (* The spring semester is specific to the university and year. *)
  let sem_lo = day (Civil.make 1993 1 19) and sem_hi = day (Civil.make 1993 5 14) in
  Session.define_stored_calendar session ~name:"SPRING_SEMESTER" [ (sem_lo, sem_hi) ];
  Printf.printf "spring semester: %s .. %s (days %d..%d)\n" (date sem_lo) (date sem_hi) sem_lo
    sem_hi;

  ignore (Session.query_exn session "create table students (name text, foreign_student bool)");
  ignore
    (Session.query_exn session
       "create table work_log (student text, day chronon valid, hours float)");
  ignore (Session.query_exn session "create index on work_log (day)");

  List.iter
    (fun (n, f) ->
      ignore
        (Session.query_exn session
           (Printf.sprintf "append students (name = '%s', foreign_student = %b)" n f)))
    [ ("ada", true); ("grace", true); ("alan", false); ("edsger", true); ("barbara", false) ];

  (* Deterministic synthetic work log: hours per student per weekday. *)
  let weekly_pattern =
    [ ("ada", [| 4.; 4.; 4.; 4.; 3. |]);          (* 19h - under         *)
      ("grace", [| 5.; 5.; 5.; 5.; 4. |]);        (* 24h - over          *)
      ("alan", [| 6.; 6.; 6.; 6.; 6. |]);         (* 30h - over, not foreign *)
      ("edsger", [| 4.; 4.; 4.; 4.; 4. |]);       (* 20h - not "more than" *)
      ("barbara", [| 2.; 2.; 2.; 2.; 2. |]) ]
  in
  for d = sem_lo to sem_hi do
    let wd = Civil.weekday (Session.date_of_day session d) in
    if wd <= 5 then
      List.iter
        (fun (n, hours) ->
          (* Grace spikes during week 10 of the year only; otherwise works
             a light schedule, so per-week aggregation matters. *)
          let base = hours.(wd - 1) in
          let h = if n = "grace" && not (d >= 60 && d < 67) then 2.0 else base in
          if h > 0. then
            ignore
              (Session.query_exn session
                 (Printf.sprintf "append work_log (student = '%s', day = @%d, hours = %.1f)" n d h)))
        weekly_pattern
  done;

  (* Weeks during the semester, from the algebra. *)
  let weeks =
    match Session.eval_calendar session "WEEKS:during:SPRING_SEMESTER" with
    | Ok cal -> Interval_set.to_list (Calendar.flatten cal)
    | Error e -> failwith e
  in
  Printf.printf "%d complete weeks during the semester\n\n" (List.length weeks);

  (* One grouped query per week: total hours per student, then keep the
     foreign students over 20 hours. *)
  let foreign_students =
    match Session.query_exn session "retrieve (name) from students where foreign_student = true" with
    | Exec.Rows { rows; _ } ->
      List.filter_map (function [| Value.Text n |] -> Some n | _ -> None) rows
    | _ -> []
  in
  let over_per_week week =
    let q =
      Printf.sprintf
        "retrieve (student, h = sum(hours)) from work_log where day >= @%d and day <= @%d group by student"
        (Interval.lo week) (Interval.hi week)
    in
    match Session.query_exn session q with
    | Exec.Rows { rows; _ } ->
      List.filter_map
        (function
          | [| Value.Text n; Value.Float h |] when h > 20. && List.mem n foreign_students ->
            Printf.printf "  %-8s worked %4.1fh in week %s..%s\n" n h
              (date (Interval.lo week)) (date (Interval.hi week));
            Some n
          | _ -> None)
        rows
    | _ -> []
  in
  let over_20 = List.sort_uniq String.compare (List.concat_map over_per_week weeks) in
  Printf.printf "\nforeign students over 20h in some semester week: %s\n"
    (String.concat ", " (List.sort String.compare over_20));
  assert (List.sort String.compare over_20 = [ "grace" ])
