(* User-defined semantics for date arithmetic (section 1, after Sto90a):

   bond yield arithmetic uses a 30-days-per-month calendar for date
   differences but a 365-day year for the yield itself. Commercial date
   functions that assume the Gregorian calendar get this wrong; here the
   convention is an argument, both in the library and in the query
   language. Run with: dune exec examples/bond_daycount.exe *)

open Calrules
open Cal_db

let () =
  let session = Session.create ~epoch:(Civil.make 1993 1 1) () in

  let d1 = Civil.make 1993 1 15 and d2 = Civil.make 1993 7 15 in
  Printf.printf "coupon period: %s .. %s\n\n" (Civil.to_string d1) (Civil.to_string d2);

  Printf.printf "%-10s %10s %14s %18s\n" "convention" "days" "year fraction"
    "accrued (8% of 1000)";
  List.iter
    (fun conv ->
      Printf.printf "%-10s %10d %14.6f %18.4f\n" (Day_count.to_string conv)
        (Day_count.day_count conv d1 d2)
        (Day_count.year_fraction conv d1 d2)
        (Day_count.accrued_interest ~convention:conv ~annual_rate:0.08 ~face:1000. d1 d2))
    Day_count.all;

  (* The same computation inside the query language: the convention is
     data, not an assumption baked into the date type. *)
  print_endline "\nthrough the query language:";
  List.iter
    (fun conv ->
      let q =
        Printf.sprintf
          "retrieve (accrued('%s', 0.08, 1000.0, date('1993-01-15'), date('1993-07-15')))" conv
      in
      match Session.query_exn session q with
      | Exec.Rows { rows = [ [| Value.Float a |] ]; _ } ->
        Printf.printf "  accrued('%s', ...) = %.4f\n" conv a
      | _ -> ())
    [ "30/360"; "ACT/365"; "ACT/360"; "ACT/ACT" ];

  (* A semiannual coupon schedule from the calendar algebra: the 15th of
     January and July. *)
  print_endline "\ncoupon dates from the calendar algebra ([15]/DAYS:during:[1,7]/MONTHS:during:YEARS):";
  (match Session.eval_calendar session "[15]/DAYS:during:[1,7]/MONTHS:during:YEARS" with
  | Ok cal ->
    let days = Interval_set.to_list (Calendar.flatten cal) in
    List.iteri
      (fun i iv ->
        if i < 6 then
          Printf.printf "  %s\n"
            (Civil.to_string (Session.date_of_day session (Interval.lo iv))))
      days
  | Error e -> Printf.printf "  ERROR %s\n" e);

  (* Accrual mistake when the wrong convention is hard-wired: per
     coupon-period difference. *)
  let wrong = Day_count.accrued_interest ~convention:Day_count.Actual_365 ~annual_rate:0.08 ~face:1000. d1 d2 in
  let right = Day_count.accrued_interest ~convention:Day_count.Thirty_360_us ~annual_rate:0.08 ~face:1000. d1 d2 in
  Printf.printf "\n30/360 bond accrued with a hard-wired ACT/365 calendar: off by %.4f per 1000 face\n"
    (wrong -. right)
