(* Regular time-series with calendar-implied valid time (section 1):

   a GNP-like quarterly series over 1985-1993 stores only values — its
   timepoints (the last day of every quarter) are generated from the
   calendar expression on request. Includes the paper's future-work
   pattern query: time points where two successive observations
   increased. Run with: dune exec examples/gnp_series.exe *)

open Cal_lang
open Cal_timeseries

let () =
  let epoch = Civil.make 1985 1 1 in
  let ctx =
    Context.create ~epoch ~lifespan:(Civil.make 1985 1 1, Civil.make 1993 12 31)
      ~env:(Env.create ()) ()
  in
  let date_of c = Civil.to_string (Unit_system.date_of_chronon ~epoch Granularity.Days c) in

  (* Synthetic GNP levels: trend plus a recession dip around 1990-91. *)
  let quarters = 36 in
  let gnp =
    Array.init quarters (fun q ->
        let t = float_of_int q in
        let trend = 4000. +. (45. *. t) in
        (* Recession: a dip deep enough to produce successive declines. *)
        let dip =
          match q with 23 -> 200. | 24 -> 260. | 25 -> 260. | 26 -> 200. | _ -> 0.
        in
        trend -. dip)
  in

  let expr = "[n]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)" in
  let series =
    match Regular.create ctx ~expr gnp with Ok s -> s | Error e -> failwith e
  in
  Printf.printf "series defined by calendar expression:\n  %s\n" (Regular.source series);
  Printf.printf "observations: %d (no timestamps stored)\n\n" (Regular.length series);

  print_endline "first two years of implied timepoints:";
  for i = 0 to 7 do
    Printf.printf "  %s  GNP = %7.1f\n"
      (date_of (Interval.lo (Regular.timepoint series i)))
      (Regular.value series i)
  done;

  (* Point lookup by date, through the calendar. *)
  let lookup y m d =
    let c = Unit_system.chronon_of_date ~epoch Granularity.Days (Civil.make y m d) in
    match Regular.at series c with
    | Some v -> Printf.printf "  GNP on %04d-%02d-%02d = %.1f\n" y m d v
    | None -> Printf.printf "  %04d-%02d-%02d is not an observation date\n" y m d
  in
  print_endline "\npoint lookups:";
  lookup 1990 6 30;
  lookup 1990 7 1;

  (* Yearly aggregation through a period calendar. *)
  (* Year periods as day intervals, generated from the basic calendar. *)
  let years =
    Calendar_gen.generate ~epoch ~coarse:Granularity.Years ~fine:Granularity.Days
      ~window:
        (Unit_system.chronon_span_of_dates ~epoch Granularity.Days (Civil.make 1985 1 1)
           (Civil.make 1993 12 31))
      ()
  in
  print_endline "\nannual means (aggregated by the YEARS calendar):";
  List.iter
    (fun (period, mean) ->
      Printf.printf "  %s..%s  mean GNP = %7.1f\n"
        (date_of (Interval.lo period))
        (date_of (Interval.hi period))
        mean)
    (Regular.aggregate series ~periods:years ~agg:Regular.Mean);

  (* Future work (a): {S_t < Next(S_t)} — and its negation, locating the
     recession quarters. *)
  let declines = Pattern.decreases series in
  print_endline "\nquarters where the next observation declined (the dip):";
  List.iter (fun iv -> Printf.printf "  %s\n" (date_of (Interval.lo iv))) declines;

  let runs = Pattern.increasing_runs ~min_length:8 series in
  print_endline "\nlongest growth stretches (>= 8 consecutive increases):";
  List.iter
    (fun (start, len) ->
      Printf.printf "  %s for %d quarters\n"
        (date_of (Interval.lo (Regular.timepoint series start)))
        len)
    runs
