(* The paper's motivating financial scenario, end to end:

   - the expiration date of an option is the 3rd Friday of the expiration
     month if it is a business day, else the preceding business day;
   - "retrieve (stock.price) on expiration_date";
   - a time-based rule alerts on every expiration date (DBCRON).

   Run with: dune exec examples/options_expiration.exe *)

open Calrules
open Cal_db

let () =
  let session =
    Session.create ~epoch:(Civil.make 1993 1 1)
      ~lifespan:(Civil.make 1993 1 1, Civil.make 1995 12 31)
      ()
  in
  let day d = Session.day_of_date session d in
  let date c = Civil.to_string (Session.date_of_day session c) in

  (* 1993 US-market-style holidays (synthetic subset, as day chronons). *)
  let holidays =
    List.map
      (fun (m, d) -> let c = day (Civil.make 1993 m d) in (c, c))
      (* Apr 16 is a synthetic exchange holiday that happens to be a 3rd
         Friday, so the adjustment path is exercised. *)
      [ (1, 1); (2, 15); (4, 9); (4, 16); (5, 31); (7, 5); (9, 6); (11, 25); (12, 24) ]
  in
  Session.define_stored_calendar session ~name:"HOLIDAYS" holidays;

  (* Business days: weekdays minus holidays, via the algebra. *)
  (match
     Session.define_calendar session ~name:"Weekdays"
       ~script:"{ return ([1..5]/DAYS:during:WEEKS); }"
   with
  | Ok () -> ()
  | Error e -> failwith e);
  (match
     Session.define_calendar session ~name:"AM_BUS_DAYS"
       ~script:"{ d = Weekdays:during:YEARS; h = d:intersects:HOLIDAYS; return (d - h); }"
   with
  | Ok () -> ()
  | Error e -> failwith e);
  (match
     Session.define_calendar session ~name:"Fridays"
       ~script:"{ return ([5]/DAYS:during:WEEKS); }"
   with
  | Ok () -> ()
  | Error e -> failwith e);

  (* Expiration dates: 3rd Friday of every month, adjusted to the
     preceding business day when it is a holiday (section 3.3's script,
     applied to every month of 1993). *)
  let expiration_script =
    {|{ temp1 = [3]/Fridays:overlaps:MONTHS:during:1993/YEARS;
        hol = temp1:intersects:HOLIDAYS;
        adjusted = [n]/AM_BUS_DAYS:<:hol;
        return (temp1 - hol + adjusted); }|}
  in
  (match Session.define_calendar session ~name:"EXPIRATION_DAYS" ~script:expiration_script with
  | Ok () -> ()
  | Error e -> failwith e);

  print_endline "== expiration dates for 1993 (3rd Friday, holiday-adjusted) ==";
  (match Session.eval_calendar session "EXPIRATION_DAYS" with
  | Ok cal ->
    Interval_set.iter
      (fun iv ->
        let c = Interval.lo iv in
        Printf.printf "  %s (%s)\n" (date c)
          (match Civil.weekday (Session.date_of_day session c) with
          | 5 -> "Friday"
          | 4 -> "Thursday (adjusted)"
          | _ -> "other"))
      (Calendar.flatten cal)
  | Error e -> Printf.printf "  ERROR %s\n" e);

  (* A year of synthetic daily closing prices (deterministic walk). *)
  ignore (Session.query_exn session "create table stock (day chronon valid, price float)");
  ignore (Session.query_exn session "create index on stock (day)");
  let price = ref 100. in
  for d = 1 to 365 do
    price := !price +. (3.0 *. sin (float_of_int (d * d mod 17)));
    ignore
      (Session.query_exn session
         (Printf.sprintf "append stock (day = @%d, price = %.4f)" d !price))
  done;

  print_endline "\n== retrieve (stock.price) on EXPIRATION_DAYS ==";
  (match Session.query_exn session "retrieve (stock.day, stock.price) from stock on \"EXPIRATION_DAYS\"" with
  | Exec.Rows { rows; _ } ->
    List.iter
      (fun row ->
        match row with
        | [| Value.Chronon d; Value.Float p |] -> Printf.printf "  %s  close = %8.4f\n" (date d) p
        | _ -> ())
      rows
  | _ -> print_endline "  (unexpected)");

  (* Last-trading-day alert: the paper's while-script becomes a DBCRON
     rule on the 7th business day preceding each expiration. *)
  (match
     Session.query_exn session
       "define rule last_trading on calendar \"[-7]/AM_BUS_DAYS:<:EXPIRATION_DAYS\" do retrieve (alert('LAST TRADING DAY'))"
   with
  | Exec.Msg m -> Printf.printf "\n== %s ==\n" m
  | _ -> ());
  Session.advance_to_date session (Civil.make 1993 12 31);
  print_endline "alerts raised during the 1993 simulation:";
  List.iter
    (fun (msg, at) -> Printf.printf "  %s on %s\n" msg (date ((at / 86400) + 1)))
    (Session.alerts session);
  Printf.printf "(DBCRON probes, heap loads) = (%d, %d)\n"
    (fst (Cal_rules.Manager.dbcron_stats session.Session.manager))
    (snd (Cal_rules.Manager.dbcron_stats session.Session.manager))
