(* The expressiveness comparison from the paper's introduction, run as a
   program: the same temporal question answered through the mini-TQUEL
   baseline (time points as data) and through the calendar system (time
   points as an expression).

   Question: "the closing price on the expiration date — the 3rd Friday
   of each month of 1993, or the preceding business day if it is a
   holiday". Run with: dune exec examples/tquel_gap.exe *)

open Cal_db
open Calrules

let () =
  let epoch = Civil.make 1993 1 1 in
  let day d = Unit_system.chronon_of_date ~epoch Granularity.Days d in
  let date c = Civil.to_string (Unit_system.date_of_chronon ~epoch Granularity.Days c) in

  (* Shared synthetic prices: one closing price per day of 1993. *)
  let price_of d = 100. +. (0.25 *. float_of_int d) in

  print_endline "== route 1: TQUEL baseline ==";
  print_endline "the expiration dates are not expressible; the application must";
  print_endline "enumerate them by hand and keep them as data:";
  let db = Cal_tquel.Tquel.create_db () in
  let runq s = Cal_tquel.Tquel.run db s in
  ignore (runq "create stock (price)");
  for d = 1 to 365 do
    ignore (runq (Printf.sprintf "append stock (price = %.2f) valid from @%d to @%d" (price_of d) d d))
  done;
  (* Hand-enumerated 1993 expiration days (Apr 16 adjusted to Apr 15 for a
     synthetic exchange holiday) — exactly the maintenance burden the
     paper objects to. *)
  let enumerated =
    List.map day
      [
        Civil.make 1993 1 15; Civil.make 1993 2 19; Civil.make 1993 3 19;
        Civil.make 1993 4 15; Civil.make 1993 5 21; Civil.make 1993 6 18;
        Civil.make 1993 7 16; Civil.make 1993 8 20; Civil.make 1993 9 17;
        Civil.make 1993 10 15; Civil.make 1993 11 19; Civil.make 1993 12 17;
      ]
  in
  List.iter
    (fun d ->
      match runq (Printf.sprintf "retrieve (price) from stock when stock equal interval(@%d, @%d)" d d) with
      | Cal_tquel.Tquel.Rows { rows = [ [| Value.Float p |] ]; _ } ->
        Printf.printf "  %s  close = %6.2f\n" (date d) p
      | _ -> Printf.printf "  %s  (missing)\n" (date d))
    enumerated;
  Printf.printf "  (%d hand-maintained expiration rows; a new holiday means editing data)\n"
    (List.length enumerated);

  print_endline "\n== route 2: calendar system ==";
  print_endline "the same dates as one expression over HOLIDAYS + business days:";
  let s =
    Session.create ~epoch ~lifespan:(Civil.make 1993 1 1, Civil.make 1993 12 31) ()
  in
  Session.define_stored_calendar s ~name:"HOLIDAYS"
    (List.map (fun (m, d) -> let c = day (Civil.make 1993 m d) in (c, c))
       [ (1, 1); (4, 16); (7, 5); (12, 24) ]);
  (match
     Session.define_calendar s ~name:"AM_BUS_DAYS"
       ~script:"{ d = [1..5]/DAYS:during:WEEKS; h = d:intersects:HOLIDAYS; return (d - h); }"
   with
  | Ok () -> ()
  | Error e -> failwith e);
  let expiration =
    "{ f = [3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS:during:1993/YEARS; \
       hol = f:intersects:HOLIDAYS; \
       adj = [n]/AM_BUS_DAYS:<:hol; \
       return (f - hol + adj); }"
  in
  (match Session.define_calendar s ~name:"EXPIRATION_DAYS" ~script:expiration with
  | Ok () -> ()
  | Error e -> failwith e);
  ignore (Session.query_exn s "create table stock (day chronon valid, price float)");
  for d = 1 to 365 do
    ignore
      (Session.query_exn s (Printf.sprintf "append stock (day = @%d, price = %.2f)" d (price_of d)))
  done;
  let via_calendar =
    match Session.query_exn s "retrieve (stock.day, stock.price) from stock on \"EXPIRATION_DAYS\"" with
    | Exec.Rows { rows; _ } ->
      List.map
        (fun r ->
          match r with
          | [| Value.Chronon d; Value.Float p |] ->
            Printf.printf "  %s  close = %6.2f\n" (date d) p;
            d
          | _ -> -1)
        rows
    | _ -> []
  in
  Printf.printf "  (0 stored expiration rows; the holiday table is the only data)\n";

  (* The two routes agree. *)
  assert (List.sort Int.compare via_calendar = List.sort Int.compare enumerated);
  print_endline "\nboth routes agree on all 12 expiration dates.";
  Printf.printf "TQUEL can express calendric sets: %b\n"
    (Cal_tquel.Tquel.expressible `Calendric_set)
