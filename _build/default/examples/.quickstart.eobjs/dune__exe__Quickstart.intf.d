examples/quickstart.mli:
