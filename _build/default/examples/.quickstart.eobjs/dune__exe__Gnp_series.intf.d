examples/gnp_series.mli:
