examples/options_expiration.mli:
