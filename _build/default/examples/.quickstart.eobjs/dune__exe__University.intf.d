examples/university.mli:
