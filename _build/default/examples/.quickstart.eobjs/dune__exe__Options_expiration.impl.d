examples/options_expiration.ml: Cal_db Cal_rules Calendar Calrules Civil Exec Interval Interval_set List Printf Session Value
