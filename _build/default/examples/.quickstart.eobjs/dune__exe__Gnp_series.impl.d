examples/gnp_series.ml: Array Cal_lang Cal_timeseries Calendar_gen Civil Context Env Granularity Interval List Pattern Printf Regular Unit_system
