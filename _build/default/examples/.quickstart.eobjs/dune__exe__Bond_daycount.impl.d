examples/bond_daycount.ml: Cal_db Calendar Calrules Civil Day_count Exec Interval Interval_set List Printf Session Value
