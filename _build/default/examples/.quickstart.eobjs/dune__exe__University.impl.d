examples/university.ml: Array Cal_db Calendar Calrules Civil Exec Interval Interval_set List Printf Session String Value
