examples/tquel_gap.mli:
