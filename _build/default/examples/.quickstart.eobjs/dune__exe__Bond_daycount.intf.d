examples/bond_daycount.mli:
