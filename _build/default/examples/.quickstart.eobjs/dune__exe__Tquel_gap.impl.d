examples/tquel_gap.ml: Cal_db Cal_tquel Calrules Civil Exec Granularity Int List Printf Session Unit_system Value
