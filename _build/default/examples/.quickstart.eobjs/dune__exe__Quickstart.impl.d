examples/quickstart.ml: Array Cal_db Calendar Calrules Civil Interval Interval_set List Printf Session String
