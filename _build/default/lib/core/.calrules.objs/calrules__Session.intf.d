lib/core/session.mli: Cal_db Cal_lang Cal_rules Calendar Catalog Chronon Civil Clock Context Exec Granularity Interp Interval_set Value
