type t =
  | Overlaps
  | During
  | Meets
  | Before
  | Le
  | Intersects
  | Starts
  | Finishes
  | Equals
  | Contains

let all =
  [ Overlaps; During; Meets; Before; Le; Intersects; Starts; Finishes; Equals; Contains ]

let apply op a b =
  match op with
  | Overlaps | Intersects -> Interval.overlaps a b
  | During -> Interval.during a b
  | Meets -> Interval.meets a b
  | Before -> Interval.before a b
  | Le -> Interval.le a b
  | Starts -> Interval.starts a b
  | Finishes -> Interval.finishes a b
  | Equals -> Interval.equal a b
  | Contains -> Interval.during b a

let clips = function
  | Overlaps | Intersects | During -> true
  | Meets | Before | Le | Starts | Finishes | Equals | Contains -> false

let to_string = function
  | Overlaps -> "overlaps"
  | During -> "during"
  | Meets -> "meets"
  | Before -> "<"
  | Le -> "<="
  | Intersects -> "intersects"
  | Starts -> "starts"
  | Finishes -> "finishes"
  | Equals -> "equals"
  | Contains -> "contains"

let of_string s =
  match String.lowercase_ascii s with
  | "overlaps" -> Some Overlaps
  | "during" -> Some During
  | "meets" -> Some Meets
  | "<" | "before" -> Some Before
  | "<=" -> Some Le
  | "intersects" -> Some Intersects
  | "starts" -> Some Starts
  | "finishes" -> Some Finishes
  | "equals" -> Some Equals
  | "contains" -> Some Contains
  | _ -> None

let equal a b = a = b
let pp ppf t = Format.pp_print_string ppf (to_string t)
