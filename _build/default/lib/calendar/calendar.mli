(** Order-n calendars: structured collections of intervals (section 3.1).

    A calendar of order 1 is an interval set; a calendar of order n is a
    list of calendars of order n-1. The operators are the paper's:

    {ul
    {- [foreach] — the strict ([:]) and relaxed ([.]) dicing operator;}
    {- [select] — the slicing operator [\[x\]/C];}
    {- [union] / [diff] — the element-wise [+] and [-] of calendar
       scripts.}} *)

type t =
  | Leaf of Interval_set.t
  | Node of t list

(** {2 Construction and observation} *)

val empty : t
val leaf : Interval_set.t -> t
val of_pairs : (int * int) list -> t
val of_interval : Interval.t -> t
val node : t list -> t

(** Depth of the structure: 1 for a [Leaf]. *)
val order : t -> int

(** True when no interval is present at any depth. *)
val is_empty : t -> bool

(** Total number of intervals at any depth. *)
val size : t -> int

(** All intervals, in order, as an order-1 set. *)
val flatten : t -> Interval_set.t

(** [leaves t] lists the leaf sets left to right. *)
val leaves : t -> Interval_set.t list

(** [simplify t] collapses degenerate nesting: a [Node] of single-interval
    leaves becomes one [Leaf] (the paper flattens selection results this
    way), and a [Node] with a single child becomes the child. *)
val simplify : t -> t

val equal : t -> t -> bool

(** {2 The foreach (dicing) operator} *)

(** [foreach ~strict op c target] applies [op] between every interval of
    [c] and the reference interval(s) in [target]:
    {ul
    {- if [target] is a single interval, the result is order-1:
       the qualifying intervals of [c] (clipped to the reference when
       [strict] and {!Listop.clips});}
    {- if [target] is an order-1 calendar with several intervals, the
       result is order-2 (one component per reference interval);}
    {- deeper targets add one nesting level per order.}}

    [c] is flattened to order 1 first.

    The implementation sorts the left operand once and binary-searches the
    contiguous candidate slice for each reference interval, so the cost is
    O((|c| + hits) log |c|) per reference rather than O(|c|). *)
val foreach : strict:bool -> Listop.t -> t -> t -> t

(** Reference implementation of {!foreach} that tests every
    (interval, reference) pair. Same results; kept as the oracle for
    property tests and the E12 ablation benchmark. *)
val foreach_pairwise : strict:bool -> Listop.t -> t -> t -> t

(** {2 The selection (slicing) operator} *)

type sel_atom =
  | Nth of int  (** 1-based; negative selects from the end ([-2] = second-last) *)
  | Last  (** the paper's [\[n\]] *)
  | Range of int * int  (** inclusive 1-based range *)

type selector = sel_atom list

(** [select sel t] picks intervals from each deepest order-1 component.
    Out-of-range picks are skipped silently (e.g. [\[5\]] of a month with
    four complete weeks). On an order-n calendar the selection distributes
    over components and the result is simplified, so single picks on an
    order-2 calendar yield the paper's order-1 result. *)
val select : selector -> t -> t

(** [select_label x t] is the paper's [1993/YEARS] form: picks the
    interval whose 1-based position is [x - base + 1] given the label of
    the first element, via [labels]. Used by the language layer which
    knows the label of element 1. *)
val nth_by_label : base:int -> int -> t -> t

(** {2 Element-wise set operations (script [+] and [-])} *)

(** Defined leaf-wise. If both operands are leaves, ordinary element-wise
    set operations apply; [Node]s of equal length combine component-wise;
    otherwise both sides are flattened first. *)
val union : t -> t -> t

val diff : t -> t -> t
val inter : t -> t -> t

(** {2 Windowing} *)

(** [restrict t w] drops intervals that do not overlap [w] (keeps
    structure; empty components are removed). *)
val restrict : t -> Interval.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
