lib/calendar/calendar.mli: Format Interval Interval_set Listop
