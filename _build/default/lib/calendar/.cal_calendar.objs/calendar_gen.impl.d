lib/calendar/calendar_gen.ml: Array Chronon Granularity Interval Interval_set List Unit_system
