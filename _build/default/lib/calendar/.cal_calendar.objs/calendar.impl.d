lib/calendar/calendar.ml: Array Chronon Format Int Interval Interval_set List Listop
