lib/calendar/listop.mli: Format Interval
