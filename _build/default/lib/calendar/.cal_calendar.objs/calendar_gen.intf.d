lib/calendar/calendar_gen.mli: Chronon Civil Granularity Interval Interval_set
