lib/calendar/listop.ml: Format Interval String
