(** The paper's listops: binary relationships between intervals used as the
    middle argument of the [foreach] operator (section 3.1).

    [Intersects] is the name the section 3.3 scripts use for the
    overlap relation; it behaves like [Overlaps]. [Starts], [Finishes] and
    [Equals] are extensions from Allen's full algebra. *)

type t =
  | Overlaps
  | During
  | Meets
  | Before  (** the paper's [<] : [u1 <= l2] *)
  | Le  (** the paper's [<=] : [l1 <= l2 && u2 >= u1] *)
  | Intersects
  | Starts
  | Finishes
  | Equals
  | Contains  (** inverse of [During]: "[a] contains [b]" *)

val all : t list

(** [apply op a b] tests "[a] op [b]". *)
val apply : t -> Interval.t -> Interval.t -> bool

(** [clips op] — whether the strict foreach replaces a qualifying interval
    by its intersection with the reference interval. True only for the
    containment-style ops ([Overlaps], [Intersects], [During]); for
    ordering ops the formal [c ∩ I] would always be empty, and the paper's
    own scripts (e.g. [\[n\]/AM_BUS_DAYS:<:LDOM_HOL]) rely on unclipped
    results. *)
val clips : t -> bool

(** Surface syntax used in calendar scripts: ["overlaps"], ["during"],
    ["meets"], ["<"], ["<="], ["intersects"], ... *)
val to_string : t -> string

val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
