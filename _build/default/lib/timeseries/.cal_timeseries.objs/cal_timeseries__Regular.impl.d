lib/timeseries/regular.ml: Array Ast Cal_lang Calendar Chronon Context Float Gran Granularity Hashtbl Interp Interval Interval_set List Option Parser Printexc Printf
