lib/timeseries/pattern.mli: Interval Regular
