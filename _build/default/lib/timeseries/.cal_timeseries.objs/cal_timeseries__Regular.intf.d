lib/timeseries/regular.mli: Cal_lang Chronon Context Interval Interval_set
