lib/timeseries/pattern.ml: Array List Regular
