(** Sequence patterns over regular time-series — the paper's future-work
    item (a): selection predicates on the time-series associated with a
    calendar, e.g. "the time points at which the end-of-day closing
    prices for two successive days showed an increase"
    ([S_t < Next(S_t)]). *)

(** Indices [t] where [pred v_t v_{t+1}] holds, ascending. *)
val search_pairs : Regular.t -> pred:(float -> float -> bool) -> int list

(** Timepoints where the next observation is strictly greater — the
    paper's [{S_t < Next(S_t)}] query. *)
val increases : Regular.t -> Interval.t list

val decreases : Regular.t -> Interval.t list

(** Maximal runs of at least [min_length] consecutive increases, as
    (start index, length) pairs. *)
val increasing_runs : ?min_length:int -> Regular.t -> (int * int) list

(** Indices matching a shape of successive deltas:
    [matches_shape s [`Up; `Down]] finds t with v_t < v_{t+1} > v_{t+2}. *)
val matches_shape : Regular.t -> [ `Up | `Down | `Flat ] list -> int list

(** Simple moving average; output index i covers source indices
    [i .. i+w-1]. @raise Invalid_argument on w <= 0. *)
val moving_average : Regular.t -> w:int -> float array
