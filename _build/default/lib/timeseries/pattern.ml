(** Sequence patterns over regular time-series — the paper's future-work
    item (a): selection predicates on the time-series associated with a
    calendar, e.g. "the time points at which the end-of-day closing
    prices for two successive days showed an increase"
    ([S_t < Next(S_t)]). *)

(** Indices [t] where [pred v_t v_{t+1}] holds. *)
let search_pairs series ~pred =
  let n = Regular.length series in
  let acc = ref [] in
  for i = n - 2 downto 0 do
    if pred (Regular.value series i) (Regular.value series (i + 1)) then acc := i :: !acc
  done;
  !acc

(** Timepoints where the next observation is strictly greater — the
    paper's [{S_t < Next(S_t)}] query. *)
let increases series =
  List.map (Regular.timepoint series) (search_pairs series ~pred:(fun a b -> a < b))

let decreases series =
  List.map (Regular.timepoint series) (search_pairs series ~pred:(fun a b -> a > b))

(** Maximal runs of at least [min_length] consecutive increases, as
    (start index, length) pairs. *)
let increasing_runs ?(min_length = 2) series =
  let n = Regular.length series in
  let rec go i acc =
    if i >= n - 1 then List.rev acc
    else if Regular.value series i < Regular.value series (i + 1) then begin
      let j = ref (i + 1) in
      while !j < n - 1 && Regular.value series !j < Regular.value series (!j + 1) do incr j done;
      let len = !j - i + 1 in
      go !j (if len >= min_length then (i, len) :: acc else acc)
    end
    else go (i + 1) acc
  in
  go 0 []

(** Indices matching a numeric pattern expressed as successive deltas:
    [matches_shape [`Up; `Down]] finds t with v_t < v_{t+1} > v_{t+2}. *)
let matches_shape series shape =
  let n = Regular.length series in
  let step = function `Up -> ( < ) | `Down -> ( > ) | `Flat -> ( = ) in
  let k = List.length shape in
  let ok i =
    let rec go j = function
      | [] -> true
      | s :: rest ->
        step s (Regular.value series (i + j)) (Regular.value series (i + j + 1))
        && go (j + 1) rest
    in
    go 0 shape
  in
  let acc = ref [] in
  for i = n - 1 - k downto 0 do
    if ok i then acc := i :: !acc
  done;
  !acc

(** Simple moving average with window [w] (output index i covers source
    indices [i .. i+w-1]). *)
let moving_average series ~w =
  if w <= 0 then invalid_arg "Pattern.moving_average: window must be positive";
  let n = Regular.length series in
  if n < w then [||]
  else begin
    let out = Array.make (n - w + 1) 0. in
    let sum = ref 0. in
    for i = 0 to w - 1 do sum := !sum +. Regular.value series i done;
    out.(0) <- !sum /. float_of_int w;
    for i = 1 to n - w do
      sum := !sum -. Regular.value series (i - 1) +. Regular.value series (i + w - 1);
      out.(i) <- !sum /. float_of_int w
    done;
    out
  end
