(** Regular time-series: observations whose timepoints are {e implied} by
    a calendar expression, so no timestamps need to be stored (section 1:
    the GNP series is valued on the last day of every quarter — the
    calendar generates those days on request). *)

open Cal_lang

type t

exception Series_error of string

(** [create ctx ~expr values] pairs the calendar expression's k-th
    interval with the k-th value. Without [window], the expression is
    evaluated through the planner and timepoints are kept within the
    context lifespan; extra timepoints beyond the values are future
    observation slots and are dropped. Errors when the calendar yields
    fewer timepoints than values. *)
val create :
  Context.t -> ?window:Interval.t -> expr:string -> float array -> (t, string) result

val length : t -> int

(** The defining calendar expression, verbatim. *)
val source : t -> string

val timepoint : t -> int -> Interval.t
val value : t -> int -> float
val to_assoc : t -> (Interval.t * float) list

(** Index of the observation whose timepoint contains the chronon
    (binary search). *)
val index_of_chronon : t -> Chronon.t -> int option

val at : t -> Chronon.t -> float option

(** Keep observations whose timepoint lies during some interval of the
    set (e.g. slice a daily series to one quarter). *)
val slice : t -> Interval_set.t -> t

type agg =
  | Sum
  | Mean
  | Min
  | Max
  | Last
  | First
  | Count

(** Aggregate observations per period (e.g. monthly means of a daily
    series); periods without observations are skipped. *)
val aggregate : t -> periods:Interval_set.t -> agg:agg -> (Interval.t * float) list

(** Pointwise combination of two series aligned on identical timepoints;
    observations present in only one series are dropped. *)
val map2 : (float -> float -> float) -> t -> t -> t
