(** Occurrence computation for time-based rules: when does a calendar
    expression next trigger?

    A calendar expression denotes intervals; a rule triggers at each
    interval's starting instant (seconds since the epoch's midnight). *)

open Cal_lang

(** All occurrence instants of [expr] with [from_ < instant <= until].
    Evaluation is bounded to a padded copy of that window. *)
val occurrences : Context.t -> Ast.expr -> from_:int -> until:int -> int list

(** First occurrence strictly after [after], searching windows of
    [lookahead] seconds (default 400 days), doubling until the end of the
    context lifespan; [None] when the rule is dormant. *)
val next : Context.t -> Ast.expr -> after:int -> ?lookahead:int -> unit -> int option
