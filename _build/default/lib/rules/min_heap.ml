(** Array-based binary min-heap keyed by integer priority — DBCRON's
    main-memory structure of upcoming trigger points. *)

type 'a t = {
  mutable arr : (int * 'a) array;
  mutable len : int;
}

let create () = { arr = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let swap t i j =
  let x = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst t.arr.(i) < fst t.arr.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && fst t.arr.(l) < fst t.arr.(!smallest) then smallest := l;
  if r < t.len && fst t.arr.(r) < fst t.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio v =
  if t.len = Array.length t.arr then begin
    let bigger = Array.make (max 8 (2 * t.len)) (0, v) in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end;
  t.arr.(t.len) <- (prio, v);
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.arr.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      sift_down t 0
    end;
    Some top
  end

(** Pop every entry with priority <= [bound], in priority order. *)
let pop_due t bound =
  let rec go acc =
    match peek t with
    | Some (p, _) when p <= bound -> (
      match pop t with Some e -> go (e :: acc) | None -> List.rev acc)
    | _ -> List.rev acc
  in
  go []
