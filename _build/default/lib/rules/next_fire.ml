(** Occurrence computation for time-based rules: when does a calendar
    expression next trigger?

    A calendar expression denotes intervals; a rule triggers at each
    interval's starting instant. The search evaluates the expression over
    a bounded window after the reference instant, doubling the lookahead
    until an occurrence is found or the lifespan ends. *)

open Cal_lang

let start_instant (ctx : Context.t) ~fine chronon =
  Unit_system.start_of_index ~epoch:ctx.Context.epoch fine (Chronon.to_offset chronon)

(** All occurrence instants of [expr] with [from_ < instant <= until]. *)
let occurrences (ctx : Context.t) expr ~from_ ~until =
  let env = ctx.Context.env in
  let fine = Gran.finest_of_expr env expr in
  let pad = Planner.pad_for ~fine (Gran.grans_of_expr env expr) in
  let lo =
    Chronon.add
      (Chronon.of_offset (Unit_system.index_of_instant ~epoch:ctx.Context.epoch fine from_))
      (-pad)
  in
  let hi =
    Chronon.add
      (Chronon.of_offset (Unit_system.index_of_instant ~epoch:ctx.Context.epoch fine until))
      pad
  in
  let cal, _ = Interp.eval_expr_naive ctx ~window:(Interval.make lo hi) expr in
  Calendar.flatten cal
  |> Interval_set.fold
       (fun acc iv ->
         let s = start_instant ctx ~fine (Interval.lo iv) in
         if s > from_ && s <= until then s :: acc else acc)
       []
  |> List.sort_uniq Int.compare

(** First occurrence strictly after [after], searching up to the end of
    the context lifespan. [lookahead] (seconds) sizes the first search
    window. *)
let next (ctx : Context.t) expr ~after ?(lookahead = 400 * 86400) () =
  let _, life_end = ctx.Context.lifespan in
  let end_instant =
    (Civil.rata_die life_end - Civil.rata_die ctx.Context.epoch + 1) * 86400
  in
  let rec search until =
    if after >= end_instant then None
    else
      match occurrences ctx expr ~from_:after ~until with
      | s :: _ -> Some s
      | [] -> if until >= end_instant then None else search (min end_instant (until * 2 - after))
  in
  search (min end_instant (after + lookahead))
