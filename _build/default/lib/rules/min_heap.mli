(** Array-based binary min-heap keyed by integer priority — DBCRON's
    main-memory structure of upcoming trigger points. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> int -> 'a -> unit

(** Smallest-priority entry, not removed. *)
val peek : 'a t -> (int * 'a) option

val pop : 'a t -> (int * 'a) option

(** Pop every entry with priority <= [bound], in priority order. *)
val pop_due : 'a t -> int -> (int * 'a) list
