lib/rules/dbcron.ml: List Min_heap
