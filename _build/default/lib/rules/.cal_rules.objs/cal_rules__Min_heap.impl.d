lib/rules/min_heap.ml: Array List
