lib/rules/manager.ml: Array Ast Cal_db Cal_lang Catalog Clock Context Dbcron Exec Fun Hashtbl List Next_fire Option Parser Plan Planner Printf Qast Qexpr Qparser Schema String Table Value
