lib/rules/min_heap.mli:
