lib/rules/next_fire.mli: Ast Cal_lang Context
