lib/rules/dbcron.mli:
