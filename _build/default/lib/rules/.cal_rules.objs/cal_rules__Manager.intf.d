lib/rules/manager.mli: Cal_db Cal_lang Catalog Context Exec Qast Value
