lib/rules/next_fire.ml: Cal_lang Calendar Chronon Civil Context Gran Int Interp Interval Interval_set List Planner Unit_system
