(** Recurrence expansion: enumerate the occurrence dates of a rule from a
    start date.

    The interpretation follows RFC 5545 for the supported subset: the
    frequency defines periods (days / weeks / months / years) advanced by
    INTERVAL; BYxxx parts select candidate days inside each period;
    BYSETPOS picks among the period's sorted candidates; COUNT/UNTIL
    terminate. Weeks run Monday-Sunday. *)

let weekdays_without_ordinal by_day =
  List.filter_map
    (fun d -> if d.Rrule.ordinal = None then Some d.Rrule.weekday else None)
    by_day

let ordinal_days by_day = List.filter (fun d -> d.Rrule.ordinal <> None) by_day

(* The date of the ordinal weekday within year [y] month [m], if any
   (e.g. 3rd Friday, last Monday). *)
let resolve_ordinal y m { Rrule.ordinal; weekday } =
  let last = Civil.days_in_month y m in
  match ordinal with
  | None -> None
  | Some k when k > 0 ->
    let first_wd = Civil.weekday (Civil.make y m 1) in
    let offset = (weekday - first_wd + 7) mod 7 in
    let day = 1 + offset + ((k - 1) * 7) in
    if day <= last then Some (Civil.make y m day) else None
  | Some k ->
    let last_wd = Civil.weekday (Civil.make y m last) in
    let offset = (last_wd - weekday + 7) mod 7 in
    let day = last - offset + ((k + 1) * 7) in
    if day >= 1 then Some (Civil.make y m day) else None

let month_day_resolved y m d =
  let last = Civil.days_in_month y m in
  let day = if d > 0 then d else last + 1 + d in
  if day >= 1 && day <= last then Some (Civil.make y m day) else None

let apply_set_pos positions dates =
  match positions with
  | [] -> dates
  | _ ->
    let arr = Array.of_list dates in
    let n = Array.length arr in
    List.filter_map
      (fun p ->
        let i = if p > 0 then p - 1 else n + p in
        if i >= 0 && i < n then Some arr.(i) else None)
      positions
    |> List.sort_uniq Civil.compare

let month_allowed rule m = rule.Rrule.by_month = [] || List.mem m rule.Rrule.by_month

(* Candidates within a single month, ignoring BYMONTH (checked by the
   caller for monthly freq, used directly for yearly). *)
let monthly_candidates rule ~dtstart y m =
  let base =
    match (rule.Rrule.by_month_day, rule.Rrule.by_day) with
    | [], [] -> Option.to_list (month_day_resolved y m dtstart.Civil.day)
    | month_days, [] -> List.filter_map (month_day_resolved y m) month_days
    | [], by_day ->
      let from_ordinals = List.filter_map (resolve_ordinal y m) (ordinal_days by_day) in
      let plain = weekdays_without_ordinal by_day in
      let from_plain =
        if plain = [] then []
        else
          List.filter_map
            (fun d ->
              let date = Civil.make y m d in
              if List.mem (Civil.weekday date) plain then Some date else None)
            (List.init (Civil.days_in_month y m) (fun i -> i + 1))
      in
      List.sort_uniq Civil.compare (from_ordinals @ from_plain)
    | month_days, by_day ->
      (* Both: month days whose weekday also matches. *)
      let wds =
        weekdays_without_ordinal by_day
        @ List.map (fun d -> d.Rrule.weekday) (ordinal_days by_day)
      in
      List.filter
        (fun date -> List.mem (Civil.weekday date) wds)
        (List.filter_map (month_day_resolved y m) month_days)
  in
  apply_set_pos rule.Rrule.by_set_pos (List.sort Civil.compare base)

let weekly_candidates rule ~dtstart monday =
  let wds =
    match rule.Rrule.by_day with
    | [] -> [ Civil.weekday dtstart ]
    | by_day -> List.sort_uniq Int.compare (List.map (fun d -> d.Rrule.weekday) by_day)
  in
  let days = List.map (fun wd -> Civil.add_days monday (wd - 1)) wds in
  let days = List.filter (fun d -> month_allowed rule d.Civil.month) days in
  apply_set_pos rule.Rrule.by_set_pos days

let daily_candidate rule ~dtstart:_ date =
  let ok =
    month_allowed rule date.Civil.month
    && (rule.Rrule.by_month_day = []
       || List.exists
            (fun d ->
              match month_day_resolved date.Civil.year date.Civil.month d with
              | Some r -> Civil.equal r date
              | None -> false)
            rule.Rrule.by_month_day)
    && (rule.Rrule.by_day = []
       || List.mem (Civil.weekday date)
            (List.map (fun d -> d.Rrule.weekday) rule.Rrule.by_day))
  in
  if ok then [ date ] else []

let yearly_candidates rule ~dtstart y =
  let months =
    match rule.Rrule.by_month with
    | [] ->
      if rule.Rrule.by_month_day = [] && rule.Rrule.by_day = [] then [ dtstart.Civil.month ]
      else List.init 12 (fun i -> i + 1)
    | ms -> List.sort_uniq Int.compare ms
  in
  let per_month =
    List.concat_map
      (fun m ->
        match (rule.Rrule.by_month_day, rule.Rrule.by_day) with
        | [], [] -> Option.to_list (month_day_resolved y m dtstart.Civil.day)
        | _ -> monthly_candidates { rule with Rrule.by_set_pos = [] } ~dtstart y m)
      months
  in
  apply_set_pos rule.Rrule.by_set_pos (List.sort Civil.compare per_month)

(** [occurrences rule ~dtstart ()] enumerates occurrence dates in order.
    Termination: COUNT, the earlier of the rule's UNTIL and the [until]
    argument, or [limit] (default 10_000) occurrences — whichever comes
    first. *)
let occurrences (rule : Rrule.t) ~dtstart ?until ?(limit = 10_000) () =
  let hard_until =
    match (rule.Rrule.until, until) with
    | Some a, Some b -> Some (if Civil.compare a b <= 0 then a else b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  let hard_until =
    (* Without any bound, cap the search two centuries out. *)
    match hard_until with
    | Some u -> u
    | None -> Civil.make (dtstart.Civil.year + 200) 12 31
  in
  let monday0 = Civil.add_days dtstart (1 - Civil.weekday dtstart) in
  let month0 = Civil.make dtstart.Civil.year dtstart.Civil.month 1 in
  let period_candidates p =
    match rule.Rrule.freq with
    | Rrule.Daily ->
      let date = Civil.add_days dtstart (p * rule.Rrule.interval) in
      (date, daily_candidate rule ~dtstart date)
    | Rrule.Weekly ->
      let monday = Civil.add_days monday0 (7 * p * rule.Rrule.interval) in
      (monday, weekly_candidates rule ~dtstart monday)
    | Rrule.Monthly ->
      let month = Civil.add_months month0 (p * rule.Rrule.interval) in
      let cands =
        if month_allowed rule month.Civil.month then
          monthly_candidates rule ~dtstart month.Civil.year month.Civil.month
        else []
      in
      (month, cands)
    | Rrule.Yearly ->
      let y = dtstart.Civil.year + (p * rule.Rrule.interval) in
      (Civil.make y 1 1, yearly_candidates rule ~dtstart y)
  in
  let rec go p count acc =
    if count >= limit then List.rev acc
    else
      match rule.Rrule.count with
      | Some c when count >= c -> List.rev acc
      | _ ->
        let period_start, cands = period_candidates p in
        if Civil.compare period_start hard_until > 0 then List.rev acc
        else begin
          let cands =
            List.filter
              (fun d -> Civil.compare d dtstart >= 0 && Civil.compare d hard_until <= 0)
              cands
          in
          let take =
            let budget =
              match rule.Rrule.count with
              | Some c -> min (limit - count) (c - count)
              | None -> limit - count
            in
            List.filteri (fun i _ -> i < budget) cands
          in
          go (p + 1) (count + List.length take) (List.rev_append take acc)
        end
  in
  go 0 0 []
