lib/rrule/translate.ml: List Printf Rrule String
