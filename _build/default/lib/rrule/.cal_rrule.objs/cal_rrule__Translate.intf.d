lib/rrule/translate.mli: Rrule
