lib/rrule/expand.ml: Array Civil Int List Option Rrule
