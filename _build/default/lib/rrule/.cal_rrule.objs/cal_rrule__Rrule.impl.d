lib/rrule/rrule.ml: Array Civil Fun List Option Printf String
