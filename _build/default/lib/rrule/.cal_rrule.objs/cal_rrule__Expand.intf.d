lib/rrule/expand.mli: Civil Rrule
