(** RFC 5545-style recurrence rules — the modern baseline for recurrence
    support without a calendar algebra (cf. the comparative discussion in
    section 5 of the paper).

    Supported: FREQ (DAILY/WEEKLY/MONTHLY/YEARLY), INTERVAL, COUNT,
    UNTIL, BYDAY (with ordinals, e.g. 3FR and -1MO), BYMONTHDAY
    (including negatives), BYMONTH, BYSETPOS. Weeks start on Monday. *)

type freq =
  | Daily
  | Weekly
  | Monthly
  | Yearly

type byday = {
  ordinal : int option;  (** [Some 3] = third, [Some (-1)] = last; [None] = every *)
  weekday : int;  (** ISO: Monday = 1 .. Sunday = 7 *)
}

type t = {
  freq : freq;
  interval : int;
  count : int option;
  until : Civil.date option;
  by_day : byday list;
  by_month_day : int list;
  by_month : int list;
  by_set_pos : int list;
}

let make ?(interval = 1) ?count ?until ?(by_day = []) ?(by_month_day = []) ?(by_month = [])
    ?(by_set_pos = []) freq =
  if interval < 1 then invalid_arg "Rrule.make: INTERVAL must be >= 1";
  { freq; interval; count; until; by_day; by_month_day; by_month; by_set_pos }

let freq_to_string = function
  | Daily -> "DAILY"
  | Weekly -> "WEEKLY"
  | Monthly -> "MONTHLY"
  | Yearly -> "YEARLY"

let weekday_names = [| "MO"; "TU"; "WE"; "TH"; "FR"; "SA"; "SU" |]

let weekday_of_string s =
  let rec find i = if i >= 7 then None else if weekday_names.(i) = s then Some (i + 1) else find (i + 1) in
  find 0

let byday_to_string { ordinal; weekday } =
  (match ordinal with Some o -> string_of_int o | None -> "") ^ weekday_names.(weekday - 1)

let to_string t =
  let parts =
    [ Some ("FREQ=" ^ freq_to_string t.freq) ]
    @ [ (if t.interval <> 1 then Some (Printf.sprintf "INTERVAL=%d" t.interval) else None) ]
    @ [ Option.map (Printf.sprintf "COUNT=%d") t.count ]
    @ [
        Option.map
          (fun d -> Printf.sprintf "UNTIL=%04d%02d%02d" d.Civil.year d.Civil.month d.Civil.day)
          t.until;
      ]
    @ [
        (if t.by_day <> [] then
           Some ("BYDAY=" ^ String.concat "," (List.map byday_to_string t.by_day))
         else None);
      ]
    @ [
        (if t.by_month_day <> [] then
           Some ("BYMONTHDAY=" ^ String.concat "," (List.map string_of_int t.by_month_day))
         else None);
      ]
    @ [
        (if t.by_month <> [] then
           Some ("BYMONTH=" ^ String.concat "," (List.map string_of_int t.by_month))
         else None);
      ]
    @ [
        (if t.by_set_pos <> [] then
           Some ("BYSETPOS=" ^ String.concat "," (List.map string_of_int t.by_set_pos))
         else None);
      ]
  in
  String.concat ";" (List.filter_map Fun.id parts)

let parse_byday s =
  let n = String.length s in
  if n < 2 then None
  else
    let name = String.sub s (n - 2) 2 in
    match weekday_of_string name with
    | None -> None
    | Some weekday ->
      if n = 2 then Some { ordinal = None; weekday }
      else
        Option.map
          (fun o -> { ordinal = Some o; weekday })
          (int_of_string_opt (String.sub s 0 (n - 2)))

let parse_int_list s =
  let parts = String.split_on_char ',' s in
  let ints = List.filter_map int_of_string_opt parts in
  if List.length ints = List.length parts then Some ints else None

let parse input =
  let parts = String.split_on_char ';' (String.trim input) in
  let rule =
    ref
      {
        freq = Daily;
        interval = 1;
        count = None;
        until = None;
        by_day = [];
        by_month_day = [];
        by_month = [];
        by_set_pos = [];
      }
  in
  let freq_seen = ref false in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  List.iter
    (fun part ->
      if !err = None then
        match String.index_opt part '=' with
        | None -> fail (Printf.sprintf "malformed component %S" part)
        | Some i -> (
          let key = String.uppercase_ascii (String.sub part 0 i) in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          match key with
          | "FREQ" -> (
            freq_seen := true;
            match String.uppercase_ascii v with
            | "DAILY" -> rule := { !rule with freq = Daily }
            | "WEEKLY" -> rule := { !rule with freq = Weekly }
            | "MONTHLY" -> rule := { !rule with freq = Monthly }
            | "YEARLY" -> rule := { !rule with freq = Yearly }
            | f -> fail ("unsupported FREQ " ^ f))
          | "INTERVAL" -> (
            match int_of_string_opt v with
            | Some i when i >= 1 -> rule := { !rule with interval = i }
            | _ -> fail ("bad INTERVAL " ^ v))
          | "COUNT" -> (
            match int_of_string_opt v with
            | Some c when c >= 1 -> rule := { !rule with count = Some c }
            | _ -> fail ("bad COUNT " ^ v))
          | "UNTIL" ->
            if String.length v >= 8 then begin
              match
                ( int_of_string_opt (String.sub v 0 4),
                  int_of_string_opt (String.sub v 4 2),
                  int_of_string_opt (String.sub v 6 2) )
              with
              | Some y, Some m, Some d when Civil.is_valid y m d ->
                rule := { !rule with until = Some (Civil.make y m d) }
              | _ -> fail ("bad UNTIL " ^ v)
            end
            else fail ("bad UNTIL " ^ v)
          | "BYDAY" -> (
            let parts = String.split_on_char ',' (String.uppercase_ascii v) in
            let days = List.filter_map parse_byday parts in
            if List.length days = List.length parts then rule := { !rule with by_day = days }
            else fail ("bad BYDAY " ^ v))
          | "BYMONTHDAY" -> (
            match parse_int_list v with
            | Some l when List.for_all (fun d -> d <> 0 && abs d <= 31) l ->
              rule := { !rule with by_month_day = l }
            | _ -> fail ("bad BYMONTHDAY " ^ v))
          | "BYMONTH" -> (
            match parse_int_list v with
            | Some l when List.for_all (fun m -> m >= 1 && m <= 12) l ->
              rule := { !rule with by_month = l }
            | _ -> fail ("bad BYMONTH " ^ v))
          | "BYSETPOS" -> (
            match parse_int_list v with
            | Some l when List.for_all (fun p -> p <> 0) l ->
              rule := { !rule with by_set_pos = l }
            | _ -> fail ("bad BYSETPOS " ^ v))
          | "WKST" -> () (* Monday-start assumed; MO accepted silently *)
          | k -> fail ("unsupported component " ^ k)))
    parts;
  match !err with
  | Some e -> Error e
  | None -> if !freq_seen then Ok !rule else Error "missing FREQ"
