(** Recurrence expansion: enumerate the occurrence dates of a rule from a
    start date.

    The interpretation follows RFC 5545 for the supported subset: the
    frequency defines periods (days / weeks / months / years) advanced by
    INTERVAL; BYxxx parts select candidate days inside each period;
    BYSETPOS picks among the period's sorted candidates; COUNT/UNTIL
    terminate. Weeks run Monday-Sunday. *)

(** [occurrences rule ~dtstart ()] enumerates occurrence dates in
    ascending order. Termination: COUNT, the earlier of the rule's UNTIL
    and the [until] argument, or [limit] (default 10_000) occurrences —
    whichever comes first; with no bound at all the search stops two
    centuries after [dtstart]. *)
val occurrences :
  Rrule.t ->
  dtstart:Civil.date ->
  ?until:Civil.date ->
  ?limit:int ->
  unit ->
  Civil.date list
