(** A miniature TQUEL: the temporal query language the paper measures its
    expressiveness against (sections 1-2).

    Supported, after Snodgrass's TQUEL:
    {v
    create R (a, b, ...)
    append R (a = v, ...) valid from @d1 to @d2
    retrieve (R.a, ...) [where <pred>]
                        [when R <tempop> interval(@d1, @d2)]
                        [valid]           -- include tuple validity column
    tempop ::= overlap | precede | follow | equal | contain
    v}

    The point the paper makes — and this implementation makes concrete —
    is what is {e missing}: [when] can only compare tuple validity against
    explicitly given intervals. There is no construct denoting "the last
    day of every quarter" or "the 3rd Friday of November"; such a set of
    time points must be enumerated by hand into an auxiliary relation and
    maintained when the calendar changes (see {!Tquel.expressible}). The
    scalar [where] predicates reuse {!Cal_db.Qexpr} on the tuple's
    attributes. *)

open Cal_db

type tempop =
  | Overlap
  | Precede  (** tuple validity entirely before the interval *)
  | Follow  (** tuple validity entirely after the interval *)
  | Equal
  | Contain  (** tuple validity contains the interval *)

let tempop_of_string = function
  | "overlap" -> Some Overlap
  | "precede" -> Some Precede
  | "follow" -> Some Follow
  | "equal" -> Some Equal
  | "contain" -> Some Contain
  | _ -> None

let apply_tempop op (valid : Interval.t) (reference : Interval.t) =
  match op with
  | Overlap -> Interval.overlaps valid reference
  | Precede -> Chronon.compare (Interval.hi valid) (Interval.lo reference) < 0
  | Follow -> Chronon.compare (Interval.lo valid) (Interval.hi reference) > 0
  | Equal -> Interval.equal valid reference
  | Contain -> Interval.during reference valid

type query =
  | Create of { name : string; cols : string list }
  | Append of { rel : string; assigns : (string * Value.t) list; valid : Interval.t }
  | Retrieve of {
      rel : string;
      targets : string list;  (** attribute names; lower-case *)
      where : Qexpr.t option;
      when_ : (tempop * Interval.t) option;
      with_valid : bool;
    }

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Done of string

(* --- parsing (reusing the query-language lexer) ---------------------- *)

exception Parse_error of string

let parse input =
  let toks = ref (Qlex.tokenize input) in
  let peek () = match !toks with (t, _) :: _ -> t | [] -> Qlex.EOF in
  let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
  let fail msg = raise (Parse_error msg) in
  let expect t =
    if peek () = t then advance ()
    else fail (Printf.sprintf "expected %s, found %s" (Qlex.to_string t) (Qlex.to_string (peek ())))
  in
  let ident () =
    match peek () with
    | Qlex.IDENT s -> advance (); s
    | t -> fail ("expected identifier, found " ^ Qlex.to_string t)
  in
  let kw word =
    match peek () with
    | Qlex.IDENT s when String.lowercase_ascii s = word -> advance ()
    | t -> fail (Printf.sprintf "expected %s, found %s" word (Qlex.to_string t))
  in
  let is_kw word =
    match peek () with
    | Qlex.IDENT s -> String.lowercase_ascii s = word
    | _ -> false
  in
  let chronon () =
    match peek () with
    | Qlex.CHRONON c when c <> 0 -> advance (); c
    | t -> fail ("expected chronon literal, found " ^ Qlex.to_string t)
  in
  let value () =
    match peek () with
    | Qlex.INT i -> advance (); Value.Int i
    | Qlex.FLOAT f -> advance (); Value.Float f
    | Qlex.STRING s -> advance (); Value.Text s
    | Qlex.CHRONON c -> advance (); Value.Chronon c
    | Qlex.IDENT s when String.lowercase_ascii s = "true" -> advance (); Value.Bool true
    | Qlex.IDENT s when String.lowercase_ascii s = "false" -> advance (); Value.Bool false
    | t -> fail ("expected literal, found " ^ Qlex.to_string t)
  in
  let interval () =
    kw "interval";
    expect Qlex.LPAREN;
    let a = chronon () in
    expect Qlex.COMMA;
    let b = chronon () in
    expect Qlex.RPAREN;
    Interval.make a b
  in
  if is_kw "create" then begin
    advance ();
    let name = ident () in
    expect Qlex.LPAREN;
    let rec cols acc =
      let c = String.lowercase_ascii (ident ()) in
      if peek () = Qlex.COMMA then begin advance (); cols (c :: acc) end
      else List.rev (c :: acc)
    in
    let cs = cols [] in
    expect Qlex.RPAREN;
    Create { name; cols = cs }
  end
  else if is_kw "append" then begin
    advance ();
    let rel = ident () in
    expect Qlex.LPAREN;
    let rec assigns acc =
      let c = String.lowercase_ascii (ident ()) in
      expect Qlex.EQ;
      let v = value () in
      if peek () = Qlex.COMMA then begin advance (); assigns ((c, v) :: acc) end
      else List.rev ((c, v) :: acc)
    in
    let a = assigns [] in
    expect Qlex.RPAREN;
    kw "valid";
    kw "from";
    let d1 = chronon () in
    kw "to";
    let d2 = chronon () in
    Append { rel; assigns = a; valid = Interval.make d1 d2 }
  end
  else if is_kw "retrieve" then begin
    advance ();
    expect Qlex.LPAREN;
    let rec targets acc =
      let first = ident () in
      let name =
        if peek () = Qlex.DOT then begin
          advance ();
          ident ()
        end
        else first
      in
      let name = String.lowercase_ascii name in
      if peek () = Qlex.COMMA then begin advance (); targets (name :: acc) end
      else List.rev (name :: acc)
    in
    let ts = targets [] in
    expect Qlex.RPAREN;
    (* The relation is inferred from the first qualified target or given
       by `from`. *)
    let rel = ref None in
    if is_kw "from" then begin
      advance ();
      rel := Some (ident ())
    end;
    let where =
      if is_kw "where" then begin
        advance ();
        (* Reuse the scalar expression grammar by re-lexing the remaining
           tokens up to `when`/`valid`/EOF. *)
        let rec take acc =
          match peek () with
          | Qlex.IDENT s
            when List.mem (String.lowercase_ascii s) [ "when"; "valid" ] ->
            List.rev acc
          | Qlex.EOF -> List.rev acc
          | t ->
            advance ();
            take (t :: acc)
        in
        let toks = take [] in
        let src = String.concat " " (List.map Qlex.to_string toks) in
        match Qparser.expr_exn src with
        | e -> Some e
        | exception _ -> fail "bad where clause"
      end
      else None
    in
    let when_ =
      if is_kw "when" then begin
        advance ();
        ignore (ident ()) (* tuple variable, e.g. the relation name *);
        let opname = String.lowercase_ascii (ident ()) in
        match tempop_of_string opname with
        | Some op -> Some (op, interval ())
        | None -> fail ("unknown temporal predicate " ^ opname)
      end
      else None
    in
    let with_valid = if is_kw "valid" then ( advance (); true) else false in
    (match !rel with
    | Some r -> Retrieve { rel = r; targets = ts; where; when_; with_valid }
    | None -> fail "retrieve needs a from clause")
  end
  else fail ("expected create/append/retrieve, found " ^ Qlex.to_string (peek ()))

(* --- execution -------------------------------------------------------- *)

type db = (string, Trel.t) Hashtbl.t

let create_db () : db = Hashtbl.create 8

let relation (db : db) name =
  match Hashtbl.find_opt db (String.lowercase_ascii name) with
  | Some r -> r
  | None -> raise (Trel.Tquel_error ("no relation " ^ name))

let run (db : db) ?(catalog = Catalog.create ()) input =
  match parse input with
  | Create { name; cols } ->
    Hashtbl.replace db (String.lowercase_ascii name) (Trel.create ~name ~cols);
    Done (Printf.sprintf "relation %s created" name)
  | Append { rel; assigns; valid } ->
    let r = relation db rel in
    let attrs = Array.make (Trel.arity r) Value.Null in
    List.iter (fun (c, v) -> attrs.(Trel.col_index r c) <- v) assigns;
    Trel.append r attrs ~valid;
    Done "appended"
  | Retrieve { rel; targets; where; when_; with_valid } ->
    let r = relation db rel in
    let idxs = List.map (Trel.col_index r) targets in
    let rows =
      List.filter_map
        (fun (tu : Trel.tuple) ->
          let binding name =
            match Trel.col_index r (String.lowercase_ascii name) with
            | i -> Some tu.Trel.attrs.(i)
            | exception Trel.Tquel_error _ -> None
          in
          let where_ok =
            match where with
            | None -> true
            | Some e -> (
              match Qexpr.eval ~catalog ~binding e with
              | Value.Bool b -> b
              | _ -> false)
          in
          let when_ok =
            match when_ with
            | None -> true
            | Some (op, reference) -> apply_tempop op tu.Trel.valid reference
          in
          if where_ok && when_ok then
            Some
              (Array.of_list
                 (List.map (fun i -> tu.Trel.attrs.(i)) idxs
                 @ (if with_valid then [ Value.Interval tu.Trel.valid ] else [])))
          else None)
        (Trel.to_list r)
    in
    Rows { columns = (targets @ if with_valid then [ "valid" ] else []); rows }

(** The expressiveness gap, stated as code: TQUEL's temporal constructs.
    A temporal condition is expressible exactly when it is a boolean
    combination of tempops against {e explicitly enumerated} intervals —
    there is no construct for calendric sets ("every Tuesday", "last day
    of every quarter", "3rd Friday if a business day"). Such conditions
    require the caller to enumerate the time points and maintain them as
    data. *)
let expressible = function
  | `Interval_comparison -> true (* when R overlap interval(a,b) *)
  | `Validity_projection -> true (* retrieve (...) valid *)
  | `Calendric_set -> false (* every Tuesday / 3rd Friday / quarter ends *)
  | `Holiday_adjustment -> false (* "if holiday, preceding business day" *)
  | `User_defined_date_arithmetic -> false (* 30/360 day counts *)
