lib/tquel/trel.mli: Cal_db Interval Value
