lib/tquel/trel.ml: Array Cal_db Interval List Printf String Value
