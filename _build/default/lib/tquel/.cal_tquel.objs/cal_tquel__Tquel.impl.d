lib/tquel/tquel.ml: Array Cal_db Catalog Chronon Hashtbl Interval List Printf Qexpr Qlex Qparser String Trel Value
