lib/tquel/tquel.mli: Cal_db Catalog Interval Qexpr Trel Value
