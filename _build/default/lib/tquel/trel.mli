(** Temporal relations in the TQUEL style: every tuple carries a valid
    interval (in day chronons). This is the baseline data model the paper
    positions against in sections 1-2 — interval-stamped tuples without a
    calendar algebra. *)

open Cal_db

type tuple = {
  attrs : Value.t array;
  valid : Interval.t;
}

type t = {
  name : string;
  cols : string list;  (** lower-case attribute names *)
  mutable tuples : tuple list;  (** newest first *)
}

exception Tquel_error of string

(** @raise Tquel_error on duplicate attributes. *)
val create : name:string -> cols:string list -> t

val arity : t -> int

(** @raise Tquel_error for unknown attributes. *)
val col_index : t -> string -> int

(** [append t attrs ~valid] stamps the tuple with its valid interval. *)
val append : t -> Value.t array -> valid:Interval.t -> unit

val count : t -> int

(** Tuples in append order. *)
val to_list : t -> tuple list
