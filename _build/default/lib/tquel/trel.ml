(** Temporal relations in the TQUEL style: every tuple carries a valid
    interval (in day chronons). This is the baseline data model the paper
    positions against in sections 1-2 — interval-stamped tuples without a
    calendar algebra. *)

open Cal_db

type tuple = {
  attrs : Value.t array;
  valid : Interval.t;
}

type t = {
  name : string;
  cols : string list;  (** lower-case attribute names *)
  mutable tuples : tuple list;  (** newest first *)
}

exception Tquel_error of string

let create ~name ~cols =
  let cols = List.map String.lowercase_ascii cols in
  if List.length (List.sort_uniq String.compare cols) <> List.length cols then
    raise (Tquel_error ("duplicate attribute in relation " ^ name));
  { name; cols; tuples = [] }

let arity t = List.length t.cols

let col_index t name =
  let rec go i = function
    | [] -> raise (Tquel_error (Printf.sprintf "no attribute %s in %s" name t.name))
    | c :: rest -> if String.equal c name then i else go (i + 1) rest
  in
  go 0 t.cols

(** [append t attrs ~valid] stamps the tuple with its valid interval. *)
let append t attrs ~valid =
  if Array.length attrs <> arity t then
    raise (Tquel_error (Printf.sprintf "arity mismatch appending to %s" t.name));
  t.tuples <- { attrs; valid } :: t.tuples

let count t = List.length t.tuples

(** Tuples in append order. *)
let to_list t = List.rev t.tuples
