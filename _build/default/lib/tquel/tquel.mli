(** A miniature TQUEL: the temporal query language the paper measures its
    expressiveness against (sections 1-2).

    {v
    create R (a, b, ...)
    append R (a = v, ...) valid from @d1 to @d2
    retrieve (R.a, ...) from R [where <pred>]
                        [when R <tempop> interval(@d1, @d2)]
                        [valid]
    tempop ::= overlap | precede | follow | equal | contain
    v}

    The [when] clause compares tuple validity against {e explicitly
    given} intervals only — the expressiveness gap the paper's
    introduction builds on (see {!expressible}). *)

open Cal_db

type tempop =
  | Overlap
  | Precede  (** tuple validity entirely before the interval *)
  | Follow  (** tuple validity entirely after the interval *)
  | Equal
  | Contain  (** tuple validity contains the interval *)

val tempop_of_string : string -> tempop option
val apply_tempop : tempop -> Interval.t -> Interval.t -> bool

type query =
  | Create of { name : string; cols : string list }
  | Append of { rel : string; assigns : (string * Value.t) list; valid : Interval.t }
  | Retrieve of {
      rel : string;
      targets : string list;
      where : Qexpr.t option;
      when_ : (tempop * Interval.t) option;
      with_valid : bool;  (** project the validity column *)
    }

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Done of string

exception Parse_error of string

val parse : string -> query

type db

val create_db : unit -> db

(** @raise Trel.Tquel_error for unknown relations. *)
val relation : db -> string -> Trel.t

(** Parse and execute one statement. [catalog] supplies scalar operators
    for [where] (a fresh empty catalog by default).
    @raise Parse_error / Trel.Tquel_error *)
val run : db -> ?catalog:Catalog.t -> string -> result

(** Which temporal-condition classes TQUEL can express — the paper's
    section 1 comparison, as a checkable artifact. *)
val expressible :
  [ `Interval_comparison | `Validity_projection | `Calendric_set
  | `Holiday_adjustment | `User_defined_date_arithmetic ] ->
  bool
