(** Granularity analysis of calendar expressions (parser step 4: determine
    the smallest time unit so every calendar can be expressed in it).

    [of_expr] is the granularity of the {e values} an expression denotes
    (a foreach keeps its left operand's granularity; a selection keeps its
    operand's). [common_unit_of_expr] is the unit evaluation plans
    generate in: the coarsest granularity that is at least as fine as
    everything mentioned {e and} subdivides all of it exactly (WEEKS do
    not subdivide MONTHS, so a week/month expression is generated in
    DAYS). *)

exception Cyclic_definition of string

let rec def_granularity env ~stack name =
  if List.mem (String.uppercase_ascii name) stack then raise (Cyclic_definition name);
  match Env.find env name with
  | None -> None (* script-local variable: no global granularity *)
  | Some (Env.Basic g) -> Some g
  | Some (Env.Stored { granularity; _ }) -> Some granularity
  | Some Env.Today -> Some Granularity.Days
  | Some (Env.Derived { script; _ }) ->
    script_granularity env ~stack:(String.uppercase_ascii name :: stack) script

and script_granularity env ~stack script =
  let locals = Hashtbl.create 8 in
  let rec expr_gran e =
    match e with
    | Ast.Ident name -> (
      match Hashtbl.find_opt locals (String.uppercase_ascii name) with
      | Some g -> g
      | None -> def_granularity env ~stack name)
    | Ast.Lit _ -> None
    | Ast.Select (_, e) -> expr_gran e
    | Ast.Foreach { lhs; _ } -> expr_gran lhs
    | Ast.Calop { arg; _ } -> expr_gran arg
    | Ast.Union (a, b) | Ast.Diff (a, b) -> (
      match (expr_gran a, expr_gran b) with
      | Some x, Some y -> Some (Granularity.finer x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None)
  in
  let result = ref None in
  let rec walk_stmts stmts =
    List.iter
      (fun stmt ->
        match stmt with
        | Ast.Assign (name, e) ->
          Hashtbl.replace locals (String.uppercase_ascii name) (expr_gran e)
        | Ast.Return (Ast.Rexpr e) -> if !result = None then result := expr_gran e
        | Ast.Return (Ast.Rstring _) -> ()
        | Ast.If (_, then_, else_) -> walk_stmts then_; walk_stmts else_
        | Ast.While (_, body) -> walk_stmts body)
      stmts
  in
  walk_stmts script;
  !result

(** Granularity of the expression's values, when statically known. *)
let of_expr env e =
  let rec go = function
    | Ast.Ident name -> def_granularity env ~stack:[] name
    | Ast.Lit _ -> None
    | Ast.Select (_, e) -> go e
    | Ast.Foreach { lhs; _ } -> go lhs
    | Ast.Calop { arg; _ } -> go arg
    | Ast.Union (a, b) | Ast.Diff (a, b) -> (
      match (go a, go b) with
      | Some x, Some y -> Some (Granularity.finer x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None)
  in
  go e

(** The coarsest granularity fine enough to express every granularity in
    [grans] exactly. Falls back to Days for an empty list. *)
let common_unit grans =
  match grans with
  | [] -> Granularity.Days
  | g0 :: _ ->
    let finest = List.fold_left Granularity.finer g0 grans in
    let ok g =
      Granularity.compare_fineness g finest <= 0
      && List.for_all
           (fun c -> Granularity.equal c g || Unit_system.aligned ~coarse:c ~fine:g)
           grans
    in
    (* Coarsest acceptable candidate; Seconds always qualifies. *)
    (match List.find_opt ok (List.rev Granularity.all) with
    | Some g -> g
    | None -> Granularity.Seconds)

(* All granularities mentioned anywhere (inside derived calendars too). *)
let collect_grans env roots =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit_name name =
    let k = String.uppercase_ascii name in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      match Env.find env name with
      | None -> () (* script-local *)
      | Some (Env.Basic g) -> acc := g :: !acc
      | Some (Env.Stored { granularity; _ }) -> acc := granularity :: !acc
      | Some Env.Today -> acc := Granularity.Days :: !acc
      | Some (Env.Derived { script; _ }) -> visit_script script
    end
  and visit_expr e = List.iter visit_name (Ast.idents_of_expr e)
  and visit_script stmts =
    List.iter
      (fun stmt ->
        match stmt with
        | Ast.Assign (name, e) ->
          (* Locals shadow globals from here on; mark seen. *)
          visit_expr e;
          Hashtbl.replace seen (String.uppercase_ascii name) ()
        | Ast.Return (Ast.Rexpr e) -> visit_expr e
        | Ast.Return (Ast.Rstring _) -> ()
        | Ast.If (cond, then_, else_) ->
          visit_expr cond; visit_script then_; visit_script else_
        | Ast.While (cond, body) -> visit_expr cond; visit_script body)
      stmts
  in
  List.iter (function `Expr e -> visit_expr e | `Script s -> visit_script s) roots;
  !acc

(** All granularities an expression mentions, directly or via
    derivations. *)
let grans_of_expr env e = collect_grans env [ `Expr e ]

(** All granularities a script mentions. *)
let grans_of_script env script = collect_grans env [ `Script script ]

(** The generation unit for an expression: fine enough for, and aligned
    with, every calendar mentioned (directly or via derivations). *)
let finest_of_expr env e = common_unit (grans_of_expr env e)

(** The generation unit for a whole script. *)
let finest_of_script env script = common_unit (grans_of_script env script)
