(** Rendering of expressions, scripts and parse trees.

    [expr_to_string] produces the paper's inline notation
    ([\[1\]/DAYS:during:WEEKS]) and re-parses to the same AST (a tested
    round-trip); [pp_tree] renders the indented parse trees of Figures 2
    and 3. *)

val selector_to_string : Ast.selector -> string

(** Minimal parenthesization under the grammar's precedence (set ops <
    selection < chains < atoms). *)
val expr_to_string : Ast.expr -> string

val script_to_string : Ast.script -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_script : Format.formatter -> Ast.script -> unit

(** Indented operator tree, one node per line. *)
val pp_tree : Format.formatter -> Ast.expr -> unit

val tree_to_string : Ast.expr -> string
