(** Plan construction (parser step 5): choose the generation unit, bound
    every [generate] by the demand flowing down from selection nodes (the
    paper's "simple look-ahead"), and share calendars used more than
    once.

    Demands are computed top-down against a bottom-up [bound] (the
    smallest statically-known window containing an expression's values):
    the root demands the padded lifespan, a label selection such as
    [1993/YEARS] narrows its operand to that year, and the left operand
    of a foreach is narrowed to the relation window of its right
    operand's bound — which is how "calendars need only be generated for
    the time interval 1993" propagates in Example 1. Shared subexpressions
    take the hull of their demands and are emitted once. *)

exception Plan_error of string

(** Upper bound of one [coarse] unit expressed in [fine] chronons, plus
    slack — the window padding that keeps boundary-straddling units
    whole. *)
val pad_for : fine:Granularity.t -> Granularity.t list -> int

(** Compile an expression to a bounded register program.
    @raise Plan_error for unsupported label selections. *)
val plan : Context.t -> Ast.expr -> Plan.t
