(** Expression preparation from the parsing algorithm of section 3.4:
    derived calendars are replaced by their derivation scripts (step 1) and
    redundant foreach stages are factorized away (step 2).

    The factorization rule: in [{(X:Op1:Y):Op2:Z}], when granularity(Y) =
    granularity(Z) and Z is drawn from Y (statically: Z's base calendar is
    Y), the outer stage is redundant and the expression reduces to
    [{X:Op1:Z}]. The paper adds "except when Op1 is <= and Op2 is <=, use
    Op2" — vacuous as printed (the two operators are then equal); we keep
    Op1, which coincides with the exception. *)

exception Cyclic_definition of string

(* A derivation script is inlinable when it is straight-line: a sequence
   of assignments followed by `return (expr)`. Scripts with if/while stay
   opaque and are executed by the interpreter instead. *)
let straight_line script =
  let subst = Hashtbl.create 8 in
  let substitute e =
    Ast.map_idents
      (fun n ->
        match Hashtbl.find_opt subst (String.uppercase_ascii n) with
        | Some e' -> e'
        | None -> Ast.Ident n)
      e
  in
  let rec go = function
    | [] -> None
    | Ast.Assign (x, e) :: rest ->
      Hashtbl.replace subst (String.uppercase_ascii x) (substitute e);
      go rest
    | Ast.Return (Ast.Rexpr e) :: _ -> Some (substitute e)
    | (Ast.Return (Ast.Rstring _) | Ast.If _ | Ast.While _) :: _ -> None
  in
  go script

let rec inline ?(stack = []) env e =
  let rec go e =
    match e with
    | Ast.Ident name -> (
      let k = String.uppercase_ascii name in
      match Env.find env name with
      | Some (Env.Derived { script; _ }) -> (
        if List.mem k stack then raise (Cyclic_definition name);
        match straight_line script with
        | Some body -> inline ~stack:(k :: stack) env body
        | None -> e)
      | Some (Env.Basic _ | Env.Stored _ | Env.Today) | None -> e)
    | Ast.Lit _ -> e
    | Ast.Select (sel, inner) -> Ast.Select (sel, go inner)
    | Ast.Foreach { strict; op; lhs; rhs } ->
      Ast.Foreach { strict; op; lhs = go lhs; rhs = go rhs }
    | Ast.Union (a, b) -> Ast.Union (go a, go b)
    | Ast.Diff (a, b) -> Ast.Diff (go a, go b)
    | Ast.Calop { counts; arg } -> Ast.Calop { counts; arg = go arg }
  in
  go e

(* Z is drawn from Y and has the same granularity. *)
let factorable env ~y_name z =
  (match Ast.base_calendar z with
  | Some base -> String.uppercase_ascii base = String.uppercase_ascii y_name
  | None -> false)
  &&
  match (Gran.of_expr env (Ast.Ident y_name), Gran.of_expr env z) with
  | Some gy, Some gz -> Granularity.equal gy gz
  | _ -> false

let rewrite env e =
  let changed = ref true in
  let rec pass e =
    match e with
    | Ast.Ident _ | Ast.Lit _ -> e
    | Ast.Select (sel, inner) -> Ast.Select (sel, pass inner)
    | Ast.Union (a, b) -> Ast.Union (pass a, pass b)
    | Ast.Diff (a, b) -> Ast.Diff (pass a, pass b)
    | Ast.Calop { counts; arg } -> Ast.Calop { counts; arg = pass arg }
    | Ast.Foreach { strict; op; lhs; rhs } -> (
      let lhs = pass lhs and rhs = pass rhs in
      match lhs with
      | Ast.Foreach { strict = s1; op = op1; lhs = x; rhs = Ast.Ident y }
        when factorable env ~y_name:y rhs ->
        changed := true;
        Ast.Foreach { strict = s1; op = op1; lhs = x; rhs }
      | Ast.Select (sel, Ast.Foreach { strict = s1; op = op1; lhs = x; rhs = Ast.Ident y })
        when factorable env ~y_name:y rhs ->
        changed := true;
        Ast.Select (sel, Ast.Foreach { strict = s1; op = op1; lhs = x; rhs })
      | _ -> Ast.Foreach { strict; op; lhs; rhs })
  in
  let rec fix e n =
    if n = 0 then e
    else begin
      changed := false;
      let e' = pass e in
      if !changed then fix e' (n - 1) else e'
    end
  in
  fix e 64

(** Full preparation: inline derivation scripts, then factorize to a
    fixpoint. *)
let factorize env e = rewrite env (inline env e)
