exception Parse_error of string * int

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_pos st = snd st.toks.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Parse_error (msg, peek_pos st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st)))

let parse_op st =
  match peek st with
  | Lexer.IDENT s -> (
    match Listop.of_string s with
    | Some op -> advance st; op
    | None -> fail st (Printf.sprintf "unknown listop %s" s))
  | Lexer.LT -> advance st; Listop.Before
  | Lexer.LE -> advance st; Listop.Le
  | t -> fail st (Printf.sprintf "expected listop, found %s" (Lexer.token_to_string t))

let parse_signed_int st =
  match peek st with
  | Lexer.INT i -> advance st; i
  | Lexer.MINUS -> (
    advance st;
    match peek st with
    | Lexer.INT i -> advance st; -i
    | t -> fail st (Printf.sprintf "expected integer after -, found %s" (Lexer.token_to_string t)))
  | t -> fail st (Printf.sprintf "expected integer, found %s" (Lexer.token_to_string t))

let parse_sel_atom st =
  match peek st with
  | Lexer.IDENT "n" -> advance st; Ast.Last
  | _ ->
    let a = parse_signed_int st in
    if peek st = Lexer.DOTDOT then begin
      advance st;
      let b = parse_signed_int st in
      Ast.Range (a, b)
    end
    else Ast.Nth a

let parse_selector_atoms st =
  let rec go acc =
    let a = parse_sel_atom st in
    if peek st = Lexer.COMMA then begin advance st; go (a :: acc) end
    else List.rev (a :: acc)
  in
  go []

let rec parse_expr st =
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Union (lhs, parse_selexpr st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Diff (lhs, parse_selexpr st))
    | _ -> lhs
  in
  loop (parse_selexpr st)

and parse_selexpr st =
  match peek st with
  | Lexer.LBRACKET ->
    advance st;
    let atoms = parse_selector_atoms st in
    expect st Lexer.RBRACKET;
    expect st Lexer.SLASH;
    Ast.Select (Ast.Index atoms, parse_selexpr st)
  | Lexer.INT label when peek2 st = Lexer.SLASH ->
    advance st;
    advance st;
    Ast.Select (Ast.Label label, parse_selexpr st)
  | _ -> parse_chain st

and parse_chain st =
  let lhs = parse_atom st in
  match peek st with
  | Lexer.COLON ->
    advance st;
    let op = parse_op st in
    expect st Lexer.COLON;
    Ast.Foreach { strict = true; op; lhs; rhs = parse_selexpr st }
  | Lexer.DOT ->
    advance st;
    let op = parse_op st in
    expect st Lexer.DOT;
    Ast.Foreach { strict = false; op; lhs; rhs = parse_selexpr st }
  | _ -> lhs

and parse_atom st =
  match peek st with
  | Lexer.IDENT name when String.lowercase_ascii name = "caloperate" ->
    advance st;
    expect st Lexer.LPAREN;
    let arg = parse_expr st in
    expect st Lexer.SEMI;
    let rec counts acc =
      match peek st with
      | Lexer.INT i when i > 0 ->
        advance st;
        if peek st = Lexer.COMMA then begin advance st; counts (i :: acc) end
        else List.rev (i :: acc)
      | t -> fail st (Printf.sprintf "expected positive count, found %s" (Lexer.token_to_string t))
    in
    let counts = counts [] in
    expect st Lexer.RPAREN;
    Ast.Calop { counts; arg }
  | Lexer.IDENT name -> advance st; Ast.Ident name
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.LBRACE ->
    advance st;
    let rec pairs acc =
      expect st Lexer.LPAREN;
      let lo = parse_signed_int st in
      expect st Lexer.COMMA;
      let hi = parse_signed_int st in
      expect st Lexer.RPAREN;
      if peek st = Lexer.COMMA then begin advance st; pairs ((lo, hi) :: acc) end
      else List.rev ((lo, hi) :: acc)
    in
    let l = if peek st = Lexer.RBRACE then [] else pairs [] in
    expect st Lexer.RBRACE;
    Ast.Lit l
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Lexer.token_to_string t))

let rec parse_stmt st =
  match peek st with
  | Lexer.IDENT name when peek2 st = Lexer.EQUAL ->
    advance st;
    advance st;
    let e = parse_expr st in
    expect st Lexer.SEMI;
    Ast.Assign (name, e)
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let then_ = parse_body st in
    let else_ =
      if peek st = Lexer.KW_ELSE then begin advance st; parse_body st end else []
    in
    Ast.If (cond, then_, else_)
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    if peek st = Lexer.SEMI then begin
      advance st;
      Ast.While (cond, [])
    end
    else Ast.While (cond, parse_body st)
  | Lexer.KW_RETURN ->
    advance st;
    expect st Lexer.LPAREN;
    let r =
      match peek st with
      | Lexer.STRING s -> advance st; Ast.Rstring s
      | _ -> Ast.Rexpr (parse_expr st)
    in
    expect st Lexer.RPAREN;
    if peek st = Lexer.SEMI then advance st;
    Ast.Return r
  | t -> fail st (Printf.sprintf "expected statement, found %s" (Lexer.token_to_string t))

and parse_body st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    let stmts = parse_stmts st in
    expect st Lexer.RBRACE;
    stmts
  end
  else [ parse_stmt st ]

and parse_stmts st =
  let rec go acc =
    match peek st with
    | Lexer.RBRACE | Lexer.EOF -> List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let make_state input = { toks = Array.of_list (Lexer.tokenize input); pos = 0 }

let script_exn input =
  let st = make_state input in
  let stmts =
    if peek st = Lexer.LBRACE then begin
      advance st;
      let stmts = parse_stmts st in
      expect st Lexer.RBRACE;
      stmts
    end
    else parse_stmts st
  in
  expect st Lexer.EOF;
  stmts

let expr_exn input =
  let st = make_state input in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e

let wrap f input =
  match f input with
  | v -> Ok v
  | exception Parse_error (msg, pos) -> Error (Printf.sprintf "parse error at %d: %s" pos msg)
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at %d: %s" pos msg)

let script input = wrap script_exn input
let expr input = wrap expr_exn input
