(** Rendering of expressions, scripts and parse trees.

    [expr_to_string] produces the paper's inline notation
    ([\[1\]/DAYS:during:WEEKS]); [pp_tree] the indented parse trees of
    Figures 2 and 3. *)

let selector_to_string = function
  | Ast.Label x -> Printf.sprintf "%d/" x
  | Ast.Index atoms ->
    let atom = function
      | Ast.Nth i -> string_of_int i
      | Ast.Last -> "n"
      | Ast.Range (a, b) -> Printf.sprintf "%d..%d" a b
    in
    Printf.sprintf "[%s]/" (String.concat "," (List.map atom atoms))

(* Precedence: Union/Diff < Select < Foreach(chain) < atom. An operand is
   parenthesized when its construct binds looser than its context. *)
let rec expr_str ~ctx e =
  let prec = function
    | Ast.Union _ | Ast.Diff _ -> 0
    | Ast.Select _ -> 1
    | Ast.Foreach _ -> 2
    | Ast.Ident _ | Ast.Lit _ | Ast.Calop _ -> 3
  in
  let s =
    match e with
    | Ast.Ident name -> name
    | Ast.Lit pairs ->
      Printf.sprintf "{%s}"
        (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) pairs))
    | Ast.Select (sel, e) -> selector_to_string sel ^ expr_str ~ctx:1 e
    | Ast.Foreach { strict; op; lhs; rhs } ->
      let sep = if strict then ":" else "." in
      (* lhs of a chain must be an atom; rhs extends to the right. *)
      Printf.sprintf "%s%s%s%s%s" (expr_str ~ctx:3 lhs) sep (Listop.to_string op) sep
        (expr_str ~ctx:1 rhs)
    | Ast.Union (a, b) -> Printf.sprintf "%s + %s" (expr_str ~ctx:0 a) (expr_str ~ctx:1 b)
    | Ast.Diff (a, b) -> Printf.sprintf "%s - %s" (expr_str ~ctx:0 a) (expr_str ~ctx:1 b)
    | Ast.Calop { counts; arg } ->
      Printf.sprintf "caloperate(%s; %s)" (expr_str ~ctx:0 arg)
        (String.concat "," (List.map string_of_int counts))
  in
  if prec e < ctx then "(" ^ s ^ ")" else s

let expr_to_string e = expr_str ~ctx:0 e

let ret_to_string = function
  | Ast.Rexpr e -> expr_to_string e
  | Ast.Rstring s -> Printf.sprintf "%S" s

let rec stmt_lines indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Ast.Assign (name, e) -> [ Printf.sprintf "%s%s = %s;" pad name (expr_to_string e) ]
  | Ast.Return r -> [ Printf.sprintf "%sreturn (%s);" pad (ret_to_string r) ]
  | Ast.If (cond, then_, else_) ->
    let head = Printf.sprintf "%sif (%s) {" pad (expr_to_string cond) in
    let body = List.concat_map (stmt_lines (indent + 2)) then_ in
    let tail =
      if else_ = [] then [ pad ^ "}" ]
      else
        ((pad ^ "} else {") :: List.concat_map (stmt_lines (indent + 2)) else_)
        @ [ pad ^ "}" ]
    in
    (head :: body) @ tail
  | Ast.While (cond, []) -> [ Printf.sprintf "%swhile (%s) ;" pad (expr_to_string cond) ]
  | Ast.While (cond, body) ->
    ((Printf.sprintf "%swhile (%s) {" pad (expr_to_string cond))
     :: List.concat_map (stmt_lines (indent + 2)) body)
    @ [ pad ^ "}" ]

let script_to_string script =
  String.concat "\n" (("{" :: List.concat_map (stmt_lines 2) script) @ [ "}" ])

let pp_expr ppf e = Format.pp_print_string ppf (expr_to_string e)
let pp_script ppf s = Format.pp_print_string ppf (script_to_string s)

(* Indented parse tree in the style of Figures 2 and 3. *)
let pp_tree ppf e =
  let rec go indent e =
    let pad = String.make indent ' ' in
    match e with
    | Ast.Ident name -> Format.fprintf ppf "%s%s@." pad name
    | Ast.Lit pairs ->
      Format.fprintf ppf "%s%s@." pad (expr_to_string (Ast.Lit pairs))
    | Ast.Select (sel, inner) ->
      Format.fprintf ppf "%sSELECT %s@." pad (selector_to_string sel);
      go (indent + 2) inner
    | Ast.Foreach { strict; op; lhs; rhs } ->
      Format.fprintf ppf "%sFOREACH %s (%s)@." pad (Listop.to_string op)
        (if strict then "strict" else "relaxed");
      go (indent + 2) lhs;
      go (indent + 2) rhs
    | Ast.Union (a, b) ->
      Format.fprintf ppf "%sUNION@." pad;
      go (indent + 2) a;
      go (indent + 2) b
    | Ast.Diff (a, b) ->
      Format.fprintf ppf "%sDIFF@." pad;
      go (indent + 2) a;
      go (indent + 2) b
    | Ast.Calop { counts; arg } ->
      Format.fprintf ppf "%sCALOPERATE [%s]@." pad
        (String.concat "," (List.map string_of_int counts));
      go (indent + 2) arg
  in
  go 0 e

let tree_to_string e = Format.asprintf "%a" pp_tree e
