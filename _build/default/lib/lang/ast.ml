(** Abstract syntax of the calendar expression language (section 3.3).

    A calendar script is a sequence of statements; expressions combine
    named calendars with the [foreach] operator ([:op:] strict, [.op.]
    relaxed), selection ([\[3\]/e], [\[n\]/e], [1993/e]) and the
    element-wise [+] / [-].

    Selection binds looser than foreach chains, which associate to the
    right: [\[3\]/WEEKS:overlaps:MONTHS] is "the third of (weeks
    overlapping each month)" — exactly the paper's Third_Weeks. *)

type sel_atom =
  | Nth of int  (** 1-based, negative counts from the end *)
  | Last  (** the keyword [n] *)
  | Range of int * int

type selector =
  | Index of sel_atom list
  | Label of int  (** [1993/YEARS]: absolute selection by unit label *)

type expr =
  | Ident of string
  | Lit of (int * int) list  (** explicit interval list [{(1,31),(32,59)}] *)
  | Select of selector * expr
  | Foreach of { strict : bool; op : Listop.t; lhs : expr; rhs : expr }
  | Union of expr * expr
  | Diff of expr * expr
  | Calop of { counts : int list; arg : expr }
      (** [caloperate(e; 3)] — group successive intervals, circular counts *)

type ret =
  | Rexpr of expr
  | Rstring of string  (** [return ("LAST TRADING DAY")] — an alert *)

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of ret

type script = stmt list

(* Structural helpers used by the factorizer and planner. *)

let rec fold_idents f acc = function
  | Ident name -> f acc name
  | Lit _ -> acc
  | Select (_, e) -> fold_idents f acc e
  | Foreach { lhs; rhs; _ } -> fold_idents f (fold_idents f acc lhs) rhs
  | Union (a, b) | Diff (a, b) -> fold_idents f (fold_idents f acc a) b
  | Calop { arg; _ } -> fold_idents f acc arg

let idents_of_expr e = List.rev (fold_idents (fun acc n -> n :: acc) [] e)

let rec map_idents f = function
  | Ident name -> f name
  | Lit l -> Lit l
  | Select (s, e) -> Select (s, map_idents f e)
  | Foreach { strict; op; lhs; rhs } ->
    Foreach { strict; op; lhs = map_idents f lhs; rhs = map_idents f rhs }
  | Union (a, b) -> Union (map_idents f a, map_idents f b)
  | Diff (a, b) -> Diff (map_idents f a, map_idents f b)
  | Calop { counts; arg } -> Calop { counts; arg = map_idents f arg }

(** [base_calendar e] is the named calendar the values of [e] are drawn
    from, per the paper's static "Z is an element of Y" test: selections
    and foreach keep drawing from their (left) operand. *)
let rec base_calendar = function
  | Ident name -> Some name
  | Select (_, e) -> base_calendar e
  | Foreach { lhs; _ } -> base_calendar lhs
  (* caloperate builds new intervals that are unions, not elements, of its
     operand, so it has no base calendar for the Z-in-Y test. *)
  | Calop _ | Lit _ | Union _ | Diff _ -> None

let rec equal_expr a b =
  match (a, b) with
  | Ident x, Ident y -> String.equal x y
  | Lit x, Lit y -> x = y
  | Select (s1, e1), Select (s2, e2) -> s1 = s2 && equal_expr e1 e2
  | Foreach f1, Foreach f2 ->
    f1.strict = f2.strict
    && Listop.equal f1.op f2.op
    && equal_expr f1.lhs f2.lhs
    && equal_expr f1.rhs f2.rhs
  | Union (a1, b1), Union (a2, b2) | Diff (a1, b1), Diff (a2, b2) ->
    equal_expr a1 a2 && equal_expr b1 b2
  | Calop c1, Calop c2 -> c1.counts = c2.counts && equal_expr c1.arg c2.arg
  | (Ident _ | Lit _ | Select _ | Foreach _ | Union _ | Diff _ | Calop _), _ -> false
