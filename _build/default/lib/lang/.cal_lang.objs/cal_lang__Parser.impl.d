lib/lang/parser.ml: Array Ast Lexer List Listop Printf String
