lib/lang/planner.mli: Ast Context Granularity Plan
