lib/lang/lexer.mli:
