lib/lang/plan.ml: Ast Format Granularity Interval List Listop Printf String
