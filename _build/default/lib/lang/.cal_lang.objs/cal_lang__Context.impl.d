lib/lang/context.ml: Civil Clock Env Unit_system
