lib/lang/env.ml: Ast Granularity Hashtbl Interval_set List Parser String
