lib/lang/pretty.ml: Ast Format List Listop Printf String
