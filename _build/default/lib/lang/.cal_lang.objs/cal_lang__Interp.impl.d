lib/lang/interp.ml: Array Ast Calendar Calendar_gen Chronon Civil Context Env Gran Granularity Hashtbl Interval Interval_set List Listop Parser Plan Planner Printexc Printf String Unit_system
