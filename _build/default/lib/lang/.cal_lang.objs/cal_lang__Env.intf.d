lib/lang/env.mli: Ast Granularity Interval_set
