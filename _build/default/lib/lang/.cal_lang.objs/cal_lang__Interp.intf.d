lib/lang/interp.mli: Ast Calendar Context Interval Plan
