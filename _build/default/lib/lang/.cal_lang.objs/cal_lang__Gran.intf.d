lib/lang/gran.mli: Ast Env Granularity
