lib/lang/factorize.mli: Ast Env
