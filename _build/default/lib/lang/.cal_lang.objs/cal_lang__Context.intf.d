lib/lang/context.mli: Chronon Civil Clock Env Granularity Interval
