lib/lang/factorize.ml: Ast Env Gran Granularity Hashtbl List String
