lib/lang/gran.ml: Ast Env Granularity Hashtbl List String Unit_system
