lib/lang/ast.ml: List Listop String
