lib/lang/planner.ml: Ast Chronon Civil Context Env Factorize Gran Granularity Hashtbl Interval List Listop Plan Printf Unit_system
