(** Granularity analysis of calendar expressions (parser step 4: determine
    the smallest time unit so every calendar can be expressed in it). *)

exception Cyclic_definition of string

(** Granularity of the {e values} an expression denotes: a foreach keeps
    its left operand's granularity, a selection and [caloperate] keep
    their operand's, set operations take the finer side. [None] when not
    statically known (literals, script locals).
    @raise Cyclic_definition on mutually recursive calendars. *)
val of_expr : Env.t -> Ast.expr -> Granularity.t option

(** The coarsest granularity fine enough to express every granularity in
    the list exactly (alignment-aware: Weeks do not subdivide Months, so
    a week/month mix descends to Days). Days for an empty list. *)
val common_unit : Granularity.t list -> Granularity.t

(** All granularities an expression mentions, directly or via derivation
    scripts. *)
val grans_of_expr : Env.t -> Ast.expr -> Granularity.t list

val grans_of_script : Env.t -> Ast.script -> Granularity.t list

(** The generation unit for an expression: [common_unit] of everything it
    mentions. *)
val finest_of_expr : Env.t -> Ast.expr -> Granularity.t

val finest_of_script : Env.t -> Ast.script -> Granularity.t
