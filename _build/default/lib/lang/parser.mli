(** Recursive-descent parser for calendar scripts and expressions.

    Grammar (section 3.3), with selection binding looser than foreach
    chains and chains associating to the right:

    {v
    script   ::= '{' stmt* '}' | stmt*
    stmt     ::= IDENT '=' expr ';'
               | 'if' '(' expr ')' body ('else' body)?
               | 'while' '(' expr ')' (';' | body)
               | 'return' '(' (STRING | expr) ')' ';'?
    body     ::= '{' stmt* '}' | stmt
    expr     ::= selexpr (('+' | '-') selexpr)*
    selexpr  ::= '[' atoms ']' '/' selexpr | INT '/' selexpr | chain
    chain    ::= atom ((':' op ':') | ('.' op '.')) selexpr | atom
    atom     ::= IDENT | '(' expr ')' | '{' '(' int ',' int ')' ,* '}'
    atoms    ::= (int | int '..' int | 'n') ,+
    op       ::= 'overlaps' | 'during' | 'meets' | 'intersects' | '<' | '<='
               | 'starts' | 'finishes' | 'equals'
    v} *)

exception Parse_error of string * int  (** message, byte position *)

(** Parse a complete script (optionally wrapped in braces). *)
val script_exn : string -> Ast.script

(** Parse a single expression. *)
val expr_exn : string -> Ast.expr

val script : string -> (Ast.script, string) result
val expr : string -> (Ast.expr, string) result
