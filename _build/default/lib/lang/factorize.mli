(** Expression preparation from the parsing algorithm of section 3.4:
    derived calendars are replaced by their derivation scripts (step 1)
    and redundant foreach stages are factorized away (step 2).

    The factorization rule: in [{(X:Op1:Y):Op2:Z}], when granularity(Y) =
    granularity(Z) and Z is drawn from Y (statically: Z's base calendar is
    Y), the outer stage is redundant and the expression reduces to
    [{X:Op1:Z}]. The paper adds "except when Op1 is <= and Op2 is <=, use
    Op2" — vacuous as printed; we keep Op1, which coincides with the
    exception. *)

exception Cyclic_definition of string

(** Replaces derived calendars by their straight-line derivation scripts
    (assignments + [return expr]); scripts with control flow stay opaque
    and are executed by the interpreter instead.
    @raise Cyclic_definition *)
val inline : ?stack:string list -> Env.t -> Ast.expr -> Ast.expr

(** The factorization rewrite, applied bottom-up to a fixpoint. *)
val rewrite : Env.t -> Ast.expr -> Ast.expr

(** [factorize env e] = [rewrite env (inline env e)]. *)
val factorize : Env.t -> Ast.expr -> Ast.expr
