type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | DOT
  | DOTDOT
  | SLASH
  | SEMI
  | COMMA
  | PLUS
  | MINUS
  | EQUAL
  | LT
  | LE
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | EOF

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | _ -> None

let tokenize s =
  let n = String.length s in
  let rec skip_comment i depth =
    if i + 1 >= n then raise (Lex_error ("unterminated comment", i))
    else if s.[i] = '*' && s.[i + 1] = '/' then
      if depth = 1 then i + 2 else skip_comment (i + 2) (depth - 1)
    else if s.[i] = '/' && s.[i + 1] = '*' then skip_comment (i + 2) (depth + 1)
    else skip_comment (i + 1) depth
  in
  let rec go acc i =
    if i >= n then List.rev ((EOF, i) :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go acc (i + 1)
      else if c = '/' && i + 1 < n && s.[i + 1] = '*' then go acc (skip_comment (i + 2) 1)
      else if is_ident_start c then begin
        let j = ref (i + 1) in
        while !j < n && is_ident_char s.[!j] do incr j done;
        let word = String.sub s i (!j - i) in
        let tok = match keyword word with Some k -> k | None -> IDENT word in
        go ((tok, i) :: acc) !j
      end
      else if is_digit c then begin
        let j = ref (i + 1) in
        while !j < n && is_digit s.[!j] do incr j done;
        go ((INT (int_of_string (String.sub s i (!j - i))), i) :: acc) !j
      end
      else if c = '"' then begin
        let j = ref (i + 1) in
        while !j < n && s.[!j] <> '"' do incr j done;
        if !j >= n then raise (Lex_error ("unterminated string", i));
        go ((STRING (String.sub s (i + 1) (!j - i - 1)), i) :: acc) (!j + 1)
      end
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | ".." -> go ((DOTDOT, i) :: acc) (i + 2)
        | "<=" -> go ((LE, i) :: acc) (i + 2)
        | _ -> (
          let single t = go ((t, i) :: acc) (i + 1) in
          match c with
          | '[' -> single LBRACKET
          | ']' -> single RBRACKET
          | '{' -> single LBRACE
          | '}' -> single RBRACE
          | '(' -> single LPAREN
          | ')' -> single RPAREN
          | ':' -> single COLON
          | '.' -> single DOT
          | '/' -> single SLASH
          | ';' -> single SEMI
          | ',' -> single COMMA
          | '+' -> single PLUS
          | '-' -> single MINUS
          | '=' -> single EQUAL
          | '<' -> single LT
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i)))
  in
  go [] 0

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | STRING s -> Printf.sprintf "%S" s
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COLON -> ":"
  | DOT -> "."
  | DOTDOT -> ".."
  | SLASH -> "/"
  | SEMI -> ";"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | EQUAL -> "="
  | LT -> "<"
  | LE -> "<="
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | EOF -> "<eof>"
