(** Hand-written lexer for the calendar expression language.

    Comments are [/* ... */]. Identifiers are letters, digits and
    underscores, starting with a letter or underscore (the paper's
    hyphenated names like [Jan-1993] are written [Jan_1993] here, since
    [-] is the element-wise difference operator). *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | DOT
  | DOTDOT
  | SLASH
  | SEMI
  | COMMA
  | PLUS
  | MINUS
  | EQUAL
  | LT
  | LE
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | EOF

exception Lex_error of string * int  (** message, byte position *)

(** [tokenize s] lexes the whole input, ending with [EOF]. Each token
    carries its starting byte position. *)
val tokenize : string -> (token * int) list

val token_to_string : token -> string
