(** Evaluation context: the environment, the session epoch, the calendar's
    lifespan (default generation bounds) and the simulated clock. *)

type t = {
  env : Env.t;
  epoch : Civil.date;
  lifespan : Civil.date * Civil.date;
  clock : Clock.t option;
  max_intervals : int;
  fuel : int;  (** iteration bound for script [while] loops *)
}

let create ?(epoch = Unit_system.default_epoch) ?lifespan ?clock
    ?(max_intervals = 1_000_000) ?(fuel = 10_000) ?env () =
  let lifespan =
    match lifespan with
    | Some l -> l
    | None ->
      (* Default lifespan: 40 years starting at the epoch year. *)
      ( Civil.make epoch.Civil.year 1 1,
        Civil.make (epoch.Civil.year + 39) 12 31 )
  in
  let env = match env with Some e -> e | None -> Env.create () in
  { env; epoch; lifespan; clock; max_intervals; fuel }

(** Lifespan expressed as an interval of [g]-chronons. *)
let lifespan_in t g =
  let d1, d2 = t.lifespan in
  Unit_system.chronon_span_of_dates ~epoch:t.epoch g d1 d2

(** The day chronon for "now"; requires a clock. *)
let today_exn t =
  match t.clock with
  | Some c -> Clock.today ~epoch:t.epoch c
  | None -> failwith "calendar context has no clock: `today' is undefined"
