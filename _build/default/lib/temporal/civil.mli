(** Proleptic Gregorian civil dates and conversions to linear day numbers.

    The linear coordinate is the {e rata die}: days since 1970-01-01
    (which is day 0). All algorithms are pure integer math valid over
    +/- millions of years. *)

type date = { year : int; month : int; day : int }

val make : int -> int -> int -> date
(** @raise Invalid_argument if the date does not exist. *)

val is_valid : int -> int -> int -> bool
val is_leap : int -> bool

(** [days_in_month y m] for [1 <= m <= 12]. *)
val days_in_month : int -> int -> int

(** Days since 1970-01-01. *)
val rata_die : date -> int

val of_rata_die : int -> date

(** ISO weekday: Monday = 1 ... Sunday = 7 (paper convention). *)
val weekday : date -> int

(** [add_days d n]. *)
val add_days : date -> int -> date

(** [add_months d n] clamps the day to the target month's length. *)
val add_months : date -> int -> date

val compare : date -> date -> int
val equal : date -> date -> bool

(** Renders as [YYYY-MM-DD]. *)
val pp : Format.formatter -> date -> unit

val to_string : date -> string

(** Parses [YYYY-MM-DD]. *)
val of_string : string -> date option
