type t = {
  months : int;
  days : int;
  seconds : int;
}

let zero = { months = 0; days = 0; seconds = 0 }

let normalize { months; days; seconds } =
  let extra_days =
    if seconds >= 0 then seconds / 86400 else -((-seconds + 86399) / 86400)
  in
  let seconds = seconds - (extra_days * 86400) in
  (* Keep seconds in [0, 86400) relative to the day component's sign
     handling: simpler to fold fully into days + remainder with matching
     sign. *)
  { months; days = days + extra_days; seconds }

let make ?(months = 0) ?(days = 0) ?(seconds = 0) () = normalize { months; days; seconds }

let of_granularity g n =
  match g with
  | Granularity.Seconds -> make ~seconds:n ()
  | Granularity.Minutes -> make ~seconds:(60 * n) ()
  | Granularity.Hours -> make ~seconds:(3600 * n) ()
  | Granularity.Days -> make ~days:n ()
  | Granularity.Weeks -> make ~days:(7 * n) ()
  | Granularity.Months -> make ~months:n ()
  | Granularity.Years -> make ~months:(12 * n) ()
  | Granularity.Decades -> make ~months:(120 * n) ()
  | Granularity.Centuries -> make ~months:(1200 * n) ()

let add a b =
  make ~months:(a.months + b.months) ~days:(a.days + b.days)
    ~seconds:(a.seconds + b.seconds) ()

let neg a = make ~months:(-a.months) ~days:(-a.days) ~seconds:(-a.seconds) ()
let scale k a = make ~months:(k * a.months) ~days:(k * a.days) ~seconds:(k * a.seconds) ()
let equal a b = a = b
let is_fixed t = t.months = 0
let to_seconds t = if is_fixed t then Some ((t.days * 86400) + t.seconds) else None

let add_to_date d t = Civil.add_days (Civil.add_months d t.months) t.days

let between d1 d2 = make ~days:(Civil.rata_die d2 - Civil.rata_die d1) ()

(* Months are worth between 28 and 31 days; a comparison is defined only
   when the bounds do not overlap. *)
let compare_opt a b =
  let lo t = (t.months * 28 * 86400) + (t.days * 86400) + t.seconds in
  let hi t = (t.months * 31 * 86400) + (t.days * 86400) + t.seconds in
  let lo_a, hi_a = if a.months >= 0 then (lo a, hi a) else (hi a, lo a) in
  let lo_b, hi_b = if b.months >= 0 then (lo b, hi b) else (hi b, lo b) in
  if a = b then Some 0
  else if hi_a < lo_b then Some (-1)
  else if hi_b < lo_a then Some 1
  else None

let pp ppf t =
  let parts =
    List.filter_map Fun.id
      [
        (if t.months <> 0 then Some (Printf.sprintf "%dmo" t.months) else None);
        (if t.days <> 0 then Some (Printf.sprintf "%dd" t.days) else None);
        (if t.seconds <> 0 then Some (Printf.sprintf "%ds" t.seconds) else None);
      ]
  in
  Format.pp_print_string ppf (if parts = [] then "0" else String.concat "" parts)

let to_string t = Format.asprintf "%a" pp t
