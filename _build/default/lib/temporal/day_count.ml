type convention =
  | Actual_actual
  | Actual_360
  | Actual_365
  | Thirty_360_us
  | Thirty_e_360

let all = [ Actual_actual; Actual_360; Actual_365; Thirty_360_us; Thirty_e_360 ]

let to_string = function
  | Actual_actual -> "ACT/ACT"
  | Actual_360 -> "ACT/360"
  | Actual_365 -> "ACT/365"
  | Thirty_360_us -> "30/360"
  | Thirty_e_360 -> "30E/360"

let of_string s =
  match String.uppercase_ascii s with
  | "ACT/ACT" | "ACTUAL/ACTUAL" -> Some Actual_actual
  | "ACT/360" | "ACTUAL/360" -> Some Actual_360
  | "ACT/365" | "ACTUAL/365" -> Some Actual_365
  | "30/360" | "30/360US" -> Some Thirty_360_us
  | "30E/360" -> Some Thirty_e_360
  | _ -> None

let actual_days d1 d2 = Civil.rata_die d2 - Civil.rata_die d1

let thirty_360 ~us d1 d2 =
  let open Civil in
  let dd1 = ref d1.day and dd2 = ref d2.day in
  if us then begin
    (* 30/360 US: if d1 is the 31st, treat as 30; if d2 is the 31st and d1
       is (now) 30, treat d2 as 30. *)
    if !dd1 = 31 then dd1 := 30;
    if !dd2 = 31 && !dd1 = 30 then dd2 := 30
  end
  else begin
    if !dd1 = 31 then dd1 := 30;
    if !dd2 = 31 then dd2 := 30
  end;
  (360 * (d2.year - d1.year)) + (30 * (d2.month - d1.month)) + (!dd2 - !dd1)

let day_count conv d1 d2 =
  match conv with
  | Actual_actual | Actual_360 | Actual_365 -> actual_days d1 d2
  | Thirty_360_us -> thirty_360 ~us:true d1 d2
  | Thirty_e_360 -> thirty_360 ~us:false d1 d2

let days_in_year y = if Civil.is_leap y then 366 else 365

let year_fraction conv d1 d2 =
  match conv with
  | Actual_360 -> float_of_int (actual_days d1 d2) /. 360.
  | Actual_365 -> float_of_int (actual_days d1 d2) /. 365.
  | Thirty_360_us -> float_of_int (thirty_360 ~us:true d1 d2) /. 360.
  | Thirty_e_360 -> float_of_int (thirty_360 ~us:false d1 d2) /. 360.
  | Actual_actual ->
    (* ISDA-style: split the span at year boundaries, each piece divided by
       its own year length. *)
    let sign, d1, d2 = if Civil.compare d1 d2 <= 0 then (1., d1, d2) else (-1., d2, d1) in
    let rec go acc d1 =
      if d1.Civil.year = d2.Civil.year then
        acc
        +. (float_of_int (actual_days d1 d2) /. float_of_int (days_in_year d1.Civil.year))
      else
        let next = Civil.make (d1.Civil.year + 1) 1 1 in
        go
          (acc
          +. float_of_int (actual_days d1 next) /. float_of_int (days_in_year d1.Civil.year))
          next
    in
    sign *. go 0. d1

let accrued_interest ~convention ~annual_rate ~face d1 d2 =
  face *. annual_rate *. year_fraction convention d1 d2

let pp ppf c = Format.pp_print_string ppf (to_string c)
