lib/temporal/date_io.ml: Array Buffer Civil Fun Granularity Interval List Option Printf Span String Unit_system
