lib/temporal/civil.mli: Format
