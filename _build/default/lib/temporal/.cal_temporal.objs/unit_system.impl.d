lib/temporal/unit_system.ml: Chronon Civil Granularity Interval
