lib/temporal/unit_system.mli: Chronon Civil Granularity Interval
