lib/temporal/day_count.mli: Civil Format
