lib/temporal/clock.mli: Chronon Civil
