lib/temporal/span.ml: Civil Format Fun Granularity List Printf String
