lib/temporal/span.mli: Civil Format Granularity
