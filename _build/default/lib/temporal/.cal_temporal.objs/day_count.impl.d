lib/temporal/day_count.ml: Civil Format String
