lib/temporal/granularity.ml: Format Int String
