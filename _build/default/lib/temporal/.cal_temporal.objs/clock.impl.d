lib/temporal/clock.ml: Chronon Granularity Unit_system
