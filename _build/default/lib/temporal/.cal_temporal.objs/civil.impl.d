lib/temporal/civil.ml: Format Int Printf String
