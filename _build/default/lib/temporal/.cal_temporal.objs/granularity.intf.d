lib/temporal/granularity.mli: Format
