(** Unanchored durations — the "span" concept of MultiCal discussed in
    section 5 of the paper: a length of time with no start or end (e.g.
    "a week", "three months"), kept orthogonal to the calendar algebra.

    A span has a variable month component (months have no fixed length)
    and fixed day/second components. Spans with a zero month component
    are {e fixed}: they denote an exact number of seconds. *)

type t = private {
  months : int;
  days : int;
  seconds : int;
}

val zero : t

(** [make ?months ?days ?seconds ()] normalizes seconds into days
    (86400 s = 1 day), keeping signs. *)
val make : ?months:int -> ?days:int -> ?seconds:int -> unit -> t

(** One [n]-unit span of a granularity: Years become 12n months, Decades
    120n, Centuries 1200n; Weeks become 7n days; the uniform granularities
    become seconds. *)
val of_granularity : Granularity.t -> int -> t

val add : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val equal : t -> t -> bool

(** True when the span has no month component and therefore a fixed
    length. *)
val is_fixed : t -> bool

(** Exact length in seconds, when fixed. *)
val to_seconds : t -> int option

(** [add_to_date d s] anchors the span at [d]: months are added first
    (with end-of-month clamping, like [Civil.add_months]), then days;
    sub-day seconds are ignored at date resolution. *)
val add_to_date : Civil.date -> t -> Civil.date

(** The fixed span of whole days between two dates ([d1] to [d2]). *)
val between : Civil.date -> Civil.date -> t

(** Partial order: [compare_opt] is [None] when the spans' relative order
    depends on the anchor (e.g. 1 month vs 30 days); months are bounded
    by 28..31 days for the comparison. *)
val compare_opt : t -> t -> int option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
