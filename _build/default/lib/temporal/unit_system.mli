(** Mapping between granularities, instants and chronons relative to an
    epoch.

    An {e instant} is a count of seconds since the epoch date's midnight
    (0 = epoch start, negative before it). Each granularity partitions the
    instant line into units; unit indices are 0-based and unit 0 is the unit
    {e containing} the epoch start (so for Weeks anchored on Mondays, unit 0
    begins on the Monday on or before the epoch).

    Chronons (the paper's no-zero coordinates) relate to unit indices by
    [Chronon.of_offset] / [Chronon.to_offset]. *)

type epoch = Civil.date

(** The default system start date used throughout the paper's section 3.2
    examples: January 1, 1987. *)
val default_epoch : epoch

(** [start_of_index ~epoch g k] is the instant at which unit [k] of
    granularity [g] begins. *)
val start_of_index : epoch:epoch -> Granularity.t -> int -> int

(** [index_of_instant ~epoch g i] is the unit index containing instant
    [i]. Inverse of {!start_of_index} in the sense
    [index_of_instant (start_of_index k) = k]. *)
val index_of_instant : epoch:epoch -> Granularity.t -> int -> int

(** [aligned ~coarse ~fine] holds when every boundary of [coarse] is also a
    boundary of [fine] — the condition under which [coarse] units can be
    expressed exactly as intervals of [fine] chronons. Weeks are aligned
    only with Days and finer; Months and coarser are aligned with Days,
    Hours, Minutes, Seconds, and with each coarser-divides-finer pair
    (Years/Months, Decades/Years, ...). *)
val aligned : coarse:Granularity.t -> fine:Granularity.t -> bool

(** [chronon_of_date ~epoch g d] is the [g]-chronon containing the start of
    civil day [d] (e.g. with [g = Days], epoch day itself is chronon 1). *)
val chronon_of_date : epoch:epoch -> Granularity.t -> Civil.date -> Chronon.t

(** [date_of_chronon ~epoch g c] is the civil date containing the start of
    [g]-chronon [c]. *)
val date_of_chronon : epoch:epoch -> Granularity.t -> Chronon.t -> Civil.date

(** [chronon_span_of_dates ~epoch g d1 d2] is the interval of [g]-chronons
    covering civil days [d1..d2] inclusive. *)
val chronon_span_of_dates :
  epoch:epoch -> Granularity.t -> Civil.date -> Civil.date -> Interval.t
