type date = { year : int; month : int; day : int }

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Civil.days_in_month"

let is_valid y m d = m >= 1 && m <= 12 && d >= 1 && d <= days_in_month y m

let make year month day =
  if not (is_valid year month day) then
    invalid_arg (Printf.sprintf "Civil.make: invalid date %d-%02d-%02d" year month day);
  { year; month; day }

(* Howard Hinnant's days_from_civil, shifted so 1970-01-01 = 0. *)
let rata_die { year; month; day } =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let of_rata_die z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  { year; month; day }

(* 1970-01-01 was a Thursday (ISO 4). *)
let weekday d =
  let w = (rata_die d + 3) mod 7 in
  (if w < 0 then w + 7 else w) + 1

let add_days d n = of_rata_die (rata_die d + n)

let add_months d n =
  let months = (d.year * 12) + (d.month - 1) + n in
  let year = if months >= 0 then months / 12 else (months - 11) / 12 in
  let month = months - (year * 12) + 1 in
  let day = min d.day (days_in_month year month) in
  { year; month; day }

let compare a b = Int.compare (rata_die a) (rata_die b)
let equal a b = compare a b = 0
let pp ppf d = Format.fprintf ppf "%04d-%02d-%02d" d.year d.month d.day
let to_string d = Format.asprintf "%a" pp d

let of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
    match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
    | Some y, Some m, Some d when is_valid y m d -> Some (make y m d)
    | _ -> None)
  | _ -> None
