(** A simulated clock, the time source for DBCRON.

    The paper's daemon runs against wall-clock time; experiments need a
    reproducible, fast-forwardable substitute. Instants are seconds since
    the session epoch's midnight, as in {!Unit_system}. *)

type t

(** [create ?now ()] starts at instant [now] (default 0 = epoch start). *)
val create : ?now:int -> unit -> t

val now : t -> int

(** [advance t s] moves forward [s] seconds. @raise Invalid_argument on
    negative [s] — simulated time never goes backwards. *)
val advance : t -> int -> unit

(** [advance_to t i] jumps to instant [i] (no-op if already past it). *)
val advance_to : t -> int -> unit

(** [today ~epoch t] is the day chronon containing the current instant. *)
val today : epoch:Civil.date -> t -> Chronon.t

(** [date ~epoch t] is the current civil date. *)
val date : epoch:Civil.date -> t -> Civil.date
