type t =
  | Seconds
  | Minutes
  | Hours
  | Days
  | Weeks
  | Months
  | Years
  | Decades
  | Centuries

let all =
  [ Seconds; Minutes; Hours; Days; Weeks; Months; Years; Decades; Centuries ]

let to_string = function
  | Seconds -> "SECONDS"
  | Minutes -> "MINUTES"
  | Hours -> "HOURS"
  | Days -> "DAYS"
  | Weeks -> "WEEKS"
  | Months -> "MONTHS"
  | Years -> "YEARS"
  | Decades -> "DECADES"
  | Centuries -> "CENTURY"

let of_string s =
  match String.uppercase_ascii s with
  | "SECOND" | "SECONDS" -> Some Seconds
  | "MINUTE" | "MINUTES" -> Some Minutes
  | "HOUR" | "HOURS" -> Some Hours
  | "DAY" | "DAYS" -> Some Days
  | "WEEK" | "WEEKS" -> Some Weeks
  | "MONTH" | "MONTHS" -> Some Months
  | "YEAR" | "YEARS" -> Some Years
  | "DECADE" | "DECADES" -> Some Decades
  | "CENTURY" | "CENTURIES" -> Some Centuries
  | _ -> None

let seconds_per = function
  | Seconds -> Some 1
  | Minutes -> Some 60
  | Hours -> Some 3600
  | Days -> Some 86400
  | Weeks -> Some 604800
  | Months | Years | Decades | Centuries -> None

let rank = function
  | Seconds -> 0
  | Minutes -> 1
  | Hours -> 2
  | Days -> 3
  | Weeks -> 4
  | Months -> 5
  | Years -> 6
  | Decades -> 7
  | Centuries -> 8

let compare_fineness a b = Int.compare (rank a) (rank b)
let finer a b = if rank a <= rank b then a else b
let coarser a b = if rank a >= rank b then a else b
let equal a b = rank a = rank b
let pp ppf t = Format.pp_print_string ppf (to_string t)
