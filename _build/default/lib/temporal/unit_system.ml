type epoch = Civil.date

let default_epoch = Civil.make 1987 1 1

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q

let day_instant ~epoch d = (Civil.rata_die d - Civil.rata_die epoch) * 86400

(* For Weeks, unit boundaries sit on Mondays; for other uniform
   granularities they sit on multiples of the width from epoch start. *)
let anchor ~epoch g =
  match g with
  | Granularity.Weeks -> -((Civil.weekday epoch - 1) * 86400)
  | _ -> 0

let months_index ~epoch d =
  ((d.Civil.year * 12) + d.Civil.month) - ((epoch.Civil.year * 12) + epoch.Civil.month)

let start_of_index ~epoch g k =
  match Granularity.seconds_per g with
  | Some w -> anchor ~epoch g + (k * w)
  | None ->
    let date =
      match g with
      | Granularity.Months -> Civil.add_months (Civil.make epoch.Civil.year epoch.Civil.month 1) k
      | Granularity.Years -> Civil.make (epoch.Civil.year + k) 1 1
      | Granularity.Decades -> Civil.make ((floor_div epoch.Civil.year 10 + k) * 10) 1 1
      | Granularity.Centuries -> Civil.make ((floor_div epoch.Civil.year 100 + k) * 100) 1 1
      | Seconds | Minutes | Hours | Days | Weeks -> assert false
    in
    day_instant ~epoch date

let index_of_instant ~epoch g i =
  match Granularity.seconds_per g with
  | Some w -> floor_div (i - anchor ~epoch g) w
  | None ->
    let d = Civil.of_rata_die (Civil.rata_die epoch + floor_div i 86400) in
    (match g with
    | Granularity.Months -> months_index ~epoch d
    | Granularity.Years -> d.Civil.year - epoch.Civil.year
    | Granularity.Decades -> floor_div d.Civil.year 10 - floor_div epoch.Civil.year 10
    | Granularity.Centuries -> floor_div d.Civil.year 100 - floor_div epoch.Civil.year 100
    | Seconds | Minutes | Hours | Days | Weeks -> assert false)

let aligned ~coarse ~fine =
  let open Granularity in
  if equal coarse fine then true
  else if compare_fineness fine coarse > 0 then false
  else
    match fine with
    | Seconds | Minutes | Hours | Days -> true
    | Weeks -> false
    | Months -> ( match coarse with Years | Decades | Centuries -> true | _ -> false)
    | Years -> ( match coarse with Decades | Centuries -> true | _ -> false)
    | Decades -> ( match coarse with Centuries -> true | _ -> false)
    | Centuries -> false

let chronon_of_date ~epoch g d =
  Chronon.of_offset (index_of_instant ~epoch g (day_instant ~epoch d))

let date_of_chronon ~epoch g c =
  let i = start_of_index ~epoch g (Chronon.to_offset c) in
  Civil.of_rata_die (Civil.rata_die epoch + floor_div i 86400)

let chronon_span_of_dates ~epoch g d1 d2 =
  if Civil.compare d1 d2 > 0 then
    invalid_arg "Unit_system.chronon_span_of_dates: d1 > d2";
  let lo = Chronon.of_offset (index_of_instant ~epoch g (day_instant ~epoch d1)) in
  let hi =
    Chronon.of_offset (index_of_instant ~epoch g (day_instant ~epoch d2 + 86399))
  in
  Interval.make lo hi
