(** User-defined semantics for date arithmetic: financial day-count
    conventions.

    Reproduces the motivation from section 1 of the paper (after
    [Sto90a]): bond yield calculations use a 30-days-per-month calendar for
    date differences but a 365-day year for the yield itself, so built-in
    Gregorian-only date functions give wrong answers. *)

type convention =
  | Actual_actual  (** actual days / actual days in period *)
  | Actual_360  (** actual days / 360 *)
  | Actual_365  (** actual days / 365 *)
  | Thirty_360_us  (** 30/360 US (NASD) month adjustment *)
  | Thirty_e_360  (** 30E/360 (European) *)

val all : convention list
val to_string : convention -> string
val of_string : string -> convention option

(** [day_count conv d1 d2] is the convention's count of days from [d1] to
    [d2] (negative when [d2 < d1]). *)
val day_count : convention -> Civil.date -> Civil.date -> int

(** [year_fraction conv d1 d2] is the convention's fraction of a year
    between the dates. *)
val year_fraction : convention -> Civil.date -> Civil.date -> float

(** [accrued_interest ~convention ~annual_rate ~face d1 d2] is simple
    accrued interest over [d1..d2]. *)
val accrued_interest :
  convention:convention ->
  annual_rate:float ->
  face:float ->
  Civil.date ->
  Civil.date ->
  float

val pp : Format.formatter -> convention -> unit
