type t = { mutable now : int }

let create ?(now = 0) () = { now }
let now t = t.now

let advance t s =
  if s < 0 then invalid_arg "Clock.advance: negative step";
  t.now <- t.now + s

let advance_to t i = if i > t.now then t.now <- i

let today ~epoch t =
  Chronon.of_offset (Unit_system.index_of_instant ~epoch Granularity.Days t.now)

let date ~epoch t = Unit_system.date_of_chronon ~epoch Granularity.Days (today ~epoch t)
