(** Multi-format, multi-language date input and output — the MultiCal
    feature set the paper's section 5 describes as orthogonal to the
    calendar algebra: "input and output of events (and intervals and
    spans) ... supporting multiple human languages".

    A {!locale} supplies month and weekday names; a {!format} arranges the
    fields. Parsing is lenient: it tries the locale's month names in any
    supported arrangement. *)

type locale = {
  locale_name : string;
  months : string array;  (** 12 full names *)
  months_short : string array;
  weekdays : string array;  (** Monday first, 7 full names *)
}

let english =
  {
    locale_name = "en";
    months =
      [| "January"; "February"; "March"; "April"; "May"; "June"; "July"; "August";
         "September"; "October"; "November"; "December" |];
    months_short =
      [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |];
    weekdays =
      [| "Monday"; "Tuesday"; "Wednesday"; "Thursday"; "Friday"; "Saturday"; "Sunday" |];
  }

let french =
  {
    locale_name = "fr";
    months =
      [| "janvier"; "f\xc3\xa9vrier"; "mars"; "avril"; "mai"; "juin"; "juillet";
         "ao\xc3\xbbt"; "septembre"; "octobre"; "novembre"; "d\xc3\xa9cembre" |];
    months_short =
      [| "janv"; "f\xc3\xa9vr"; "mars"; "avr"; "mai"; "juin"; "juil"; "ao\xc3\xbbt";
         "sept"; "oct"; "nov"; "d\xc3\xa9c" |];
    weekdays = [| "lundi"; "mardi"; "mercredi"; "jeudi"; "vendredi"; "samedi"; "dimanche" |];
  }

let german =
  {
    locale_name = "de";
    months =
      [| "Januar"; "Februar"; "M\xc3\xa4rz"; "April"; "Mai"; "Juni"; "Juli"; "August";
         "September"; "Oktober"; "November"; "Dezember" |];
    months_short =
      [| "Jan"; "Feb"; "M\xc3\xa4r"; "Apr"; "Mai"; "Jun"; "Jul"; "Aug"; "Sep"; "Okt";
         "Nov"; "Dez" |];
    weekdays =
      [| "Montag"; "Dienstag"; "Mittwoch"; "Donnerstag"; "Freitag"; "Samstag"; "Sonntag" |];
  }

let locales = [ english; french; german ]

let locale_named name =
  List.find_opt (fun l -> String.lowercase_ascii l.locale_name = String.lowercase_ascii name) locales

type format =
  | Iso  (** 1993-01-15 *)
  | Long  (** 15 January 1993 / January 15, 1993 for English *)
  | Abbrev  (** 15 Jan 1993 *)
  | Numeric_dmy  (** 15/01/1993 *)
  | Numeric_mdy  (** 01/15/1993 *)

(** Render a date under a locale and format. *)
let format_date ?(locale = english) ?(fmt = Iso) (d : Civil.date) =
  match fmt with
  | Iso -> Civil.to_string d
  | Long ->
    if locale.locale_name = "en" then
      Printf.sprintf "%s %d, %d" locale.months.(d.Civil.month - 1) d.Civil.day d.Civil.year
    else Printf.sprintf "%d. %s %d" d.Civil.day locale.months.(d.Civil.month - 1) d.Civil.year
  | Abbrev ->
    Printf.sprintf "%d %s %d" d.Civil.day locale.months_short.(d.Civil.month - 1) d.Civil.year
  | Numeric_dmy -> Printf.sprintf "%02d/%02d/%04d" d.Civil.day d.Civil.month d.Civil.year
  | Numeric_mdy -> Printf.sprintf "%02d/%02d/%04d" d.Civil.month d.Civil.day d.Civil.year

(** Weekday name under a locale. *)
let weekday_name ?(locale = english) d = locale.weekdays.(Civil.weekday d - 1)

(* --- parsing ---------------------------------------------------------- *)

let month_of_name locale s =
  let s = String.lowercase_ascii s in
  let matches arr =
    let rec go i =
      if i >= 12 then None
      else if String.lowercase_ascii arr.(i) = s then Some (i + 1)
      else go (i + 1)
    in
    go 0
  in
  match matches locale.months with Some m -> Some m | None -> matches locale.months_short

let tokens_of s =
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | ',' | '.' | '/' | '-' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

(** Parse a date in any supported arrangement under [locale] (default
    English): ISO, [15 January 1993], [January 15, 1993], [15 Jan 1993],
    [15/01/1993] (day-month-year for non-English locales and when the
    first field exceeds 12, month-day-year otherwise — the usual
    ambiguity; pass an explicit format via {!parse_exact} to pin it). *)
let parse ?(locale = english) s =
  let mk y m d = if Civil.is_valid y m d then Some (Civil.make y m d) else None in
  match tokens_of (String.trim s) with
  | [ a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some x, Some y, Some z ->
      if x > 31 then mk x y z (* ISO: year first *)
      else if locale.locale_name <> "en" || x > 12 then mk z y x (* D/M/Y *)
      else mk z x y (* M/D/Y *)
    | Some d, None, Some y -> Option.bind (month_of_name locale b) (fun m -> mk y m d)
    | None, Some d, Some y -> Option.bind (month_of_name locale a) (fun m -> mk y m d)
    | _ -> None)
  | _ -> None

(** Parse under an exact format. *)
let parse_exact ?(locale = english) ~fmt s =
  let mk y m d = if Civil.is_valid y m d then Some (Civil.make y m d) else None in
  match (fmt, tokens_of (String.trim s)) with
  | Iso, [ y; m; d ] -> (
    match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
    | Some y, Some m, Some d -> mk y m d
    | _ -> None)
  | (Long | Abbrev), toks -> (
    match toks with
    | [ a; b; c ] -> (
      match (int_of_string_opt a, int_of_string_opt c) with
      | Some d, Some y -> Option.bind (month_of_name locale b) (fun m -> mk y m d)
      | None, Some y -> (
        match int_of_string_opt b with
        | Some d -> Option.bind (month_of_name locale a) (fun m -> mk y m d)
        | None -> None)
      | _ -> None)
    | _ -> None)
  | Numeric_dmy, [ d; m; y ] -> (
    match (int_of_string_opt d, int_of_string_opt m, int_of_string_opt y) with
    | Some d, Some m, Some y -> mk y m d
    | _ -> None)
  | Numeric_mdy, [ m; d; y ] -> (
    match (int_of_string_opt m, int_of_string_opt d, int_of_string_opt y) with
    | Some m, Some d, Some y -> mk y m d
    | _ -> None)
  | _, _ -> None

(** Render an interval of day chronons as dates. *)
let format_interval ?(locale = english) ?(fmt = Iso) ~epoch iv =
  let d c = Unit_system.date_of_chronon ~epoch Granularity.Days c in
  if Interval.length iv = 1 then format_date ~locale ~fmt (d (Interval.lo iv))
  else
    Printf.sprintf "%s .. %s"
      (format_date ~locale ~fmt (d (Interval.lo iv)))
      (format_date ~locale ~fmt (d (Interval.hi iv)))

(** Render a span ("3mo2d" style is {!Span.to_string}; this is the
    human-language form). *)
let format_span ?(locale = english) (s : Span.t) =
  let unit_names =
    match locale.locale_name with
    | "fr" -> ("mois", "jour(s)", "seconde(s)")
    | "de" -> ("Monat(e)", "Tag(e)", "Sekunde(n)")
    | _ -> ("month(s)", "day(s)", "second(s)")
  in
  let m, d, sec = unit_names in
  let parts =
    List.filter_map Fun.id
      [
        (if s.Span.months <> 0 then Some (Printf.sprintf "%d %s" s.Span.months m) else None);
        (if s.Span.days <> 0 then Some (Printf.sprintf "%d %s" s.Span.days d) else None);
        (if s.Span.seconds <> 0 then Some (Printf.sprintf "%d %s" s.Span.seconds sec) else None);
      ]
  in
  if parts = [] then "0" else String.concat " " parts
