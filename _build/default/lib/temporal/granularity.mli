(** The paper's basic calendars as granularities.

    SECONDS ... CENTURY (section 3.2). A granularity names a partition of
    the time line; {!Unit_system} maps between partitions and instants. *)

type t =
  | Seconds
  | Minutes
  | Hours
  | Days
  | Weeks
  | Months
  | Years
  | Decades
  | Centuries

val all : t list

(** Basic-calendar name, upper case: ["DAYS"], ["CENTURY"], ... *)
val to_string : t -> string

(** Accepts the names produced by {!to_string}, case-insensitively, plus
    the singular forms (["DAY"], ...). *)
val of_string : string -> t option

(** Fixed width in seconds for uniform granularities
    (Seconds ... Weeks); [None] for Months and coarser. *)
val seconds_per : t -> int option

(** Total order from finest (Seconds) to coarsest (Centuries). *)
val compare_fineness : t -> t -> int

(** The finer of the two. *)
val finer : t -> t -> t

(** The coarser of the two. *)
val coarser : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
