(** Table schemas: column names, types, and the optional valid-time
    column.

    Marking a chronon column [valid] designates it as the tuple's valid
    time, which the query language's [on <calendar-expression>] clause
    filters against (the paper's "maintenance of valid time in
    databases"). *)

type ty =
  | TBool
  | TInt
  | TFloat
  | TText
  | TChronon
  | TInterval
  | TArray of ty
  | TAdt of string  (** a registered abstract data type, by tag *)

type column = {
  name : string;
  ty : ty;
  valid_time : bool;
}

type t = {
  table : string;
  columns : column list;
}

exception Schema_error of string

val ty_to_string : ty -> string

(** Parses ["int"], ["float[]"], ["chronon"], ...; unknown names become
    [TAdt]. *)
val ty_of_string : string -> ty option

(** [make ~table columns] validates: unique column names, at most one
    valid-time column, and that it is a chronon. @raise Schema_error *)
val make : table:string -> column list -> t

val arity : t -> int
val column_index : t -> string -> int option
val column_index_exn : t -> string -> int
val column : t -> string -> column option
val valid_time_column : t -> column option

(** Runtime type check; Null is allowed in any column. *)
val value_matches : ty -> Value.t -> bool

(** @raise Schema_error on arity or type mismatch. *)
val check_tuple : t -> Value.t array -> unit

val pp : Format.formatter -> t -> unit
