(** Lexer for the query language. Keywords are case-insensitive;
    identifiers keep their case but compare case-insensitively upstream.
    [@5] and [@-3] are chronon literals; strings take single or double
    quotes. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | CHRONON of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LBRACKET
  | RBRACKET
  | EOF

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let rec go acc i =
    if i >= n then List.rev ((EOF, i) :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go acc (i + 1)
      else if c = '-' && i + 1 < n && s.[i + 1] = '-' then begin
        (* line comment *)
        let j = ref (i + 2) in
        while !j < n && s.[!j] <> '\n' do incr j done;
        go acc !j
      end
      else if is_ident_start c then begin
        let j = ref (i + 1) in
        while !j < n && is_ident_char s.[!j] do incr j done;
        go ((IDENT (String.sub s i (!j - i)), i) :: acc) !j
      end
      else if is_digit c then begin
        let j = ref (i + 1) in
        while !j < n && is_digit s.[!j] do incr j done;
        if !j < n && s.[!j] = '.' && !j + 1 < n && is_digit s.[!j + 1] then begin
          incr j;
          while !j < n && is_digit s.[!j] do incr j done;
          go ((FLOAT (float_of_string (String.sub s i (!j - i))), i) :: acc) !j
        end
        else go ((INT (int_of_string (String.sub s i (!j - i))), i) :: acc) !j
      end
      else if c = '\'' || c = '"' then begin
        (* Strings support backslash escapes (backslash + n, t, quote, backslash). *)
        let buf = Buffer.create 16 in
        let j = ref (i + 1) in
        let fin = ref (-1) in
        while !fin < 0 do
          if !j >= n then raise (Lex_error ("unterminated string", i))
          else if s.[!j] = c then fin := !j
          else if s.[!j] = '\\' then begin
            if !j + 1 >= n then raise (Lex_error ("unterminated escape", !j));
            (match s.[!j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | other -> Buffer.add_char buf other);
            j := !j + 2
          end
          else begin
            Buffer.add_char buf s.[!j];
            incr j
          end
        done;
        go ((STRING (Buffer.contents buf), i) :: acc) (!fin + 1)
      end
      else if c = '@' then begin
        let sign, j = if i + 1 < n && s.[i + 1] = '-' then (-1, i + 2) else (1, i + 1) in
        let k = ref j in
        while !k < n && is_digit s.[!k] do incr k done;
        if !k = j then raise (Lex_error ("expected digits after @", i));
        go ((CHRONON (sign * int_of_string (String.sub s j (!k - j))), i) :: acc) !k
      end
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | "<=" -> go ((LE, i) :: acc) (i + 2)
        | ">=" -> go ((GE, i) :: acc) (i + 2)
        | "<>" -> go ((NE, i) :: acc) (i + 2)
        | "!=" -> go ((NE, i) :: acc) (i + 2)
        | _ -> (
          let single t = go ((t, i) :: acc) (i + 1) in
          match c with
          | '(' -> single LPAREN
          | ')' -> single RPAREN
          | '{' -> single LBRACE
          | '}' -> single RBRACE
          | ',' -> single COMMA
          | ';' -> single SEMI
          | '.' -> single DOT
          | '=' -> single EQ
          | '<' -> single LT
          | '>' -> single GT
          | '+' -> single PLUS
          | '-' -> single MINUS
          | '*' -> single STAR
          | '/' -> single SLASH
          | '[' -> single LBRACKET
          | ']' -> single RBRACKET
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i)))
  in
  go [] 0

let to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f ->
    (* Keep the rendering re-lexable: "4050." would tokenize as INT DOT. *)
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | STRING s -> Printf.sprintf "%S" s
  | CHRONON c -> Printf.sprintf "@%d" c
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | EOF -> "<eof>"
