(** Query execution: access-path selection (index vs sequential scan),
    the valid-time [on <calendar>] clause, event hooks for the rule
    system, and simple aggregates ([count]/[sum]/[avg]/[min]/[max]).

    The residual [where] predicate is always re-applied after an index
    probe, so inclusive-range probes over-approximate safely. *)

type stats = {
  mutable scanned : int;  (** tuples touched *)
  mutable seq_scans : int;
  mutable index_scans : int;
}

val fresh_stats : unit -> stats

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Msg of string
  | Rule_def of Qast.rule  (** consumed by the rule manager upstream *)
  | Rule_drop of string

exception Exec_error of string

(** [run catalog ?binding ?stats q] executes one command. [binding]
    resolves free columns (used for NEW/CURRENT in rule actions).
    Retrieval fires [On_retrieve] per returned tuple; mutations fire their
    events after the change.
    @raise Exec_error and the catalog/schema exceptions. *)
val run :
  Catalog.t ->
  ?binding:(string -> Value.t option) ->
  ?stats:stats ->
  Qast.query ->
  result

(** Parse and run, with errors as [Error _]. *)
val run_string :
  Catalog.t ->
  ?binding:(string -> Value.t option) ->
  ?stats:stats ->
  string ->
  (result, string) Stdlib.result
