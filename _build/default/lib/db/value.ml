(** Database values, including the extension hook for abstract data types.

    The paper's motivation for building on an extensible DBMS is that
    complex types (interval arrays, calendars) and their operators can be
    declared to the engine. Here the open variant {!ext} plays the role of
    POSTGRES user-defined types: a client registers a tag plus the
    operations the engine needs (printing, equality, comparison), and
    values of that type flow through tables, queries and indexes like any
    other. *)

type ext = ..

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Text of string
  | Chronon of Chronon.t  (** a time point, in session day chronons *)
  | Interval of Interval.t
  | Array of t array
  | Ext of string * ext  (** tag, payload *)

type adt_ops = {
  tag : string;
  pp : ext -> string option;  (** [None] when the payload is not ours *)
  equal : ext -> ext -> bool option;
  compare : (ext -> ext -> int option) option;  (** omitted: not orderable *)
}

let adts : (string, adt_ops) Hashtbl.t = Hashtbl.create 8

exception Unknown_adt of string
exception Incomparable of string

(** [register_adt ops] declares a new abstract type to the engine.
    Re-registration under the same tag replaces the previous entry. *)
let register_adt ops = Hashtbl.replace adts ops.tag ops

let adt_ops tag =
  match Hashtbl.find_opt adts tag with
  | Some ops -> ops
  | None -> raise (Unknown_adt tag)

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Text s -> Format.fprintf ppf "%S" s
  | Chronon c -> Format.fprintf ppf "@%a" Chronon.pp c
  | Interval i -> Interval.pp ppf i
  | Array a ->
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      (Array.to_seq a)
  | Ext (tag, payload) -> (
    match (adt_ops tag).pp payload with
    | Some s -> Format.fprintf ppf "%s:%s" tag s
    | None -> Format.fprintf ppf "%s:<foreign payload>" tag)

let to_string v = Format.asprintf "%a" pp v

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Text x, Text y -> String.equal x y
  | Chronon x, Chronon y -> Chronon.equal x y
  | Interval x, Interval y -> Interval.equal x y
  | Array x, Array y -> Array.length x = Array.length y && Array.for_all2 equal x y
  | Ext (t1, p1), Ext (t2, p2) ->
    String.equal t1 t2 && Option.value ~default:false ((adt_ops t1).equal p1 p2)
  | ( ( Null | Bool _ | Int _ | Float _ | Text _ | Chronon _ | Interval _ | Array _
      | Ext _ ),
      _ ) ->
    false

(* Total order within each constructor; cross-constructor comparison is a
   type error upstream, but we order by constructor rank so that indexes
   never misbehave. Null sorts first. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Text _ -> 4
  | Chronon _ -> 5
  | Interval _ -> 6
  | Array _ -> 7
  | Ext _ -> 8

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | Chronon x, Chronon y -> Chronon.compare x y
  | Interval x, Interval y -> Interval.compare x y
  | Array x, Array y ->
    let n = Stdlib.compare (Array.length x) (Array.length y) in
    if n <> 0 then n
    else
      let rec go i =
        if i >= Array.length x then 0
        else
          let c = compare x.(i) y.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
  | Ext (t1, p1), Ext (t2, p2) when String.equal t1 t2 -> (
    match (adt_ops t1).compare with
    | Some cmp -> (
      match cmp p1 p2 with
      | Some c -> c
      | None -> raise (Incomparable t1))
    | None -> raise (Incomparable t1))
  | _ -> Int.compare (rank a) (rank b)

(* Numeric coercions for expression evaluation. *)
let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | Text _ | Chronon _ | Interval _ | Array _ | Ext _ -> None

let is_truthy = function
  | Bool b -> b
  | Null -> false
  | v -> failwith ("value used as boolean: " ^ to_string v)
