(** Query execution: access-path selection (index vs sequential scan),
    the valid-time [on <calendar>] clause, event hooks for the rule
    system, and simple aggregates.

    The residual [where] predicate is always re-applied after an index
    probe, so inclusive-range probes over-approximate safely. *)

type stats = {
  mutable scanned : int;  (** tuples touched *)
  mutable seq_scans : int;
  mutable index_scans : int;
}

let fresh_stats () = { scanned = 0; seq_scans = 0; index_scans = 0 }

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Msg of string
  | Rule_def of Qast.rule  (** consumed by the rule manager upstream *)
  | Rule_drop of string

exception Exec_error of string

let aggregates = [ "count"; "sum"; "avg"; "min"; "max" ]

(* Column binding for a tuple of [table]; falls back to [outer] (used for
   NEW/CURRENT bindings in rule actions). *)
let binding_of ~outer table tuple name =
  let schema = (table : Table.t).Table.schema in
  let resolve col = Option.map (fun i -> tuple.(i)) (Schema.column_index schema col) in
  let v =
    match String.index_opt name '.' with
    | Some i ->
      let prefix = String.sub name 0 i in
      let col = String.sub name (i + 1) (String.length name - i - 1) in
      if String.lowercase_ascii prefix = String.lowercase_ascii (Table.name table) then
        resolve col
      else None
    | None -> resolve name
  in
  match v with Some _ -> v | None -> outer name

(* Strip an optional "table." qualifier if it names this table. *)
let own_column table name =
  match String.index_opt name '.' with
  | Some i ->
    let prefix = String.sub name 0 i in
    if String.lowercase_ascii prefix = String.lowercase_ascii (Table.name table) then
      Some (String.sub name (i + 1) (String.length name - i - 1))
    else None
  | None -> Some name

(* Find an indexed, sargable conjunct: col op const. Returns candidate
   rowids (an over-approximation; where is re-applied). *)
let index_candidates table where =
  let sargable e =
    match e with
    | Qexpr.Binop (op, Qexpr.Col c, Qexpr.Const v)
    | Qexpr.Binop (op, Qexpr.Const v, Qexpr.Col c) ->
      let flip =
        match e with Qexpr.Binop (_, Qexpr.Const _, Qexpr.Col _) -> true | _ -> false
      in
      Option.bind (own_column table c) (fun col ->
          if not (Table.has_index table col) then None
          else
            let op =
              if not flip then op
              else
                match op with
                | Qexpr.Lt -> Qexpr.Gt
                | Qexpr.Le -> Qexpr.Ge
                | Qexpr.Gt -> Qexpr.Lt
                | Qexpr.Ge -> Qexpr.Le
                | other -> other
            in
            match op with
            | Qexpr.Eq -> Table.index_lookup table col v
            | Qexpr.Lt | Qexpr.Le -> Table.index_range table col ~hi:v ()
            | Qexpr.Gt | Qexpr.Ge -> Table.index_range table col ~lo:v ()
            | _ -> None)
    | _ -> None
  in
  match where with
  | None -> None
  | Some where -> List.find_map sargable (Qexpr.conjuncts where)

(* Candidates from the valid-time calendar clause, when the valid column
   is indexed: one index range probe per calendar interval. *)
let calendar_candidates table valid_col chronons =
  if not (Table.has_index table valid_col) then None
  else
    Some
      (Interval_set.fold
         (fun acc iv ->
           match
             Table.index_range table valid_col ~lo:(Value.Chronon (Interval.lo iv))
               ~hi:(Value.Chronon (Interval.hi iv)) ()
           with
           | Some rowids -> List.rev_append rowids acc
           | None -> acc)
         [] chronons)

let resolve_calendar catalog source =
  match (catalog : Catalog.t).Catalog.calendar_resolver with
  | Some f -> f source
  | None -> raise (Exec_error "no calendar resolver installed (on-clause unavailable)")

(* Matching row ids for a table given where + calendar clause. *)
let matching_rows catalog ~stats ~outer table where on_cal =
  let chronons = Option.map (resolve_calendar catalog) on_cal in
  let valid_col =
    match on_cal with
    | None -> None
    | Some _ -> (
      match Schema.valid_time_column (table : Table.t).Table.schema with
      | Some c -> Some c.Schema.name
      | None ->
        raise
          (Exec_error
             (Printf.sprintf "table %s has no valid-time column for the on-clause"
                (Table.name table))))
  in
  let candidates =
    let from_where = index_candidates table where in
    let from_cal =
      match (valid_col, chronons) with
      | Some col, Some set -> calendar_candidates table col set
      | _ -> None
    in
    match (from_where, from_cal) with
    | Some a, Some b ->
      (* Intersect the two candidate sets. *)
      let inb = Hashtbl.create (List.length b) in
      List.iter (fun r -> Hashtbl.replace inb r ()) b;
      Some (List.filter (Hashtbl.mem inb) a)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  let passes rowid tuple =
    stats.scanned <- stats.scanned + 1;
    ignore rowid;
    let binding = binding_of ~outer table tuple in
    let where_ok =
      match where with
      | None -> true
      | Some e -> (
        match Qexpr.eval ~catalog ~binding e with
        | Value.Bool b -> b
        | Value.Null -> false
        | v -> raise (Exec_error ("where clause is not boolean: " ^ Value.to_string v)))
    in
    let cal_ok =
      match (chronons, valid_col) with
      | Some set, Some col -> (
        match binding col with
        | Some (Value.Chronon c) -> Interval_set.contains_chronon set c
        | Some Value.Null | None -> false
        | Some v ->
          raise (Exec_error ("valid-time column is not a chronon: " ^ Value.to_string v)))
      | _ -> true
    in
    where_ok && cal_ok
  in
  match candidates with
  | Some rowids ->
    stats.index_scans <- stats.index_scans + 1;
    List.filter
      (fun rowid ->
        match Table.get table rowid with Some tuple -> passes rowid tuple | None -> false)
      (List.sort_uniq Int.compare rowids)
  | None ->
    stats.seq_scans <- stats.seq_scans + 1;
    List.rev
      (Table.fold table (fun acc rowid tuple -> if passes rowid tuple then rowid :: acc else acc) [])

let eval_assigns catalog ~binding assigns schema =
  let tuple = Array.make (Schema.arity schema) Value.Null in
  List.iter
    (fun (col, e) ->
      let i = Schema.column_index_exn schema col in
      tuple.(i) <- Qexpr.eval ~catalog ~binding e)
    assigns;
  tuple

let is_aggregate_call = function
  | Qexpr.Call (f, _) -> List.mem f aggregates
  | _ -> false

let run_aggregates targets value_rows =
  let agg_one col_idx (_, e) =
    match e with
    | Qexpr.Call (f, _) ->
      let values =
        List.filter_map
          (fun row ->
            match (row : Value.t array).(col_idx) with Value.Null -> None | v -> Some v)
          value_rows
      in
      let floats () = List.filter_map Value.as_float values in
      let v =
        match f with
        | "count" -> Value.Int (List.length values)
        | "sum" -> Value.Float (List.fold_left ( +. ) 0. (floats ()))
        | "avg" ->
          let fs = floats () in
          if fs = [] then Value.Null
          else Value.Float (List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs))
        | "min" -> (
          match values with
          | [] -> Value.Null
          | v0 :: rest -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v0 rest)
        | "max" -> (
          match values with
          | [] -> Value.Null
          | v0 :: rest -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v0 rest)
        | _ -> assert false
      in
      v
    | _ -> (
      (* Non-aggregate target (a grouping column): take the value from the
         first member row. *)
      match value_rows with
      | row :: _ -> (row : Value.t array).(col_idx)
      | [] -> Value.Null)
  in
  [ Array.of_list (List.mapi agg_one targets) ]

let run catalog ?(binding = fun _ -> None) ?stats (q : Qast.query) : result =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let outer = binding in
  match q with
  | Qast.Create_table { name; cols } ->
    let columns =
      List.map (fun (name, ty, valid) -> { Schema.name; ty; valid_time = valid }) cols
    in
    ignore (Catalog.create_table catalog (Schema.make ~table:name columns));
    Msg (Printf.sprintf "table %s created" name)
  | Qast.Create_index { table; col } ->
    Table.create_index (Catalog.table catalog table) col;
    Msg (Printf.sprintf "index created on %s(%s)" table col)
  | Qast.Append { table; assigns } ->
    let tbl = Catalog.table catalog table in
    let tuple = eval_assigns catalog ~binding:outer assigns tbl.Table.schema in
    ignore (Table.insert tbl tuple);
    Catalog.fire catalog
      { Catalog.kind = Catalog.On_append; table = Table.name tbl; tuple = Some tuple };
    Affected 1
  | Qast.Retrieve { targets; from_ = None; where; on_cal = _; group_by = _ } ->
    (* Pure expression retrieve. *)
    let ok =
      match where with
      | None -> true
      | Some e -> (
        match Qexpr.eval ~catalog ~binding:outer e with
        | Value.Bool b -> b
        | Value.Null -> false
        | v -> raise (Exec_error ("where clause is not boolean: " ^ Value.to_string v)))
    in
    let rows =
      if ok then [ Array.of_list (List.map (fun (_, e) -> Qexpr.eval ~catalog ~binding:outer e) targets) ]
      else []
    in
    Rows { columns = List.map fst targets; rows }
  | Qast.Retrieve { targets; from_ = Some table; where; on_cal; group_by = [] } ->
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer tbl where on_cal in
    let aggregate = targets <> [] && List.for_all (fun (_, e) -> is_aggregate_call e) targets in
    (* For aggregates evaluate the call's argument per row; otherwise the
       target expression itself. *)
    let per_row_exprs =
      List.map
        (fun (label, e) ->
          if aggregate then
            match e with
            | Qexpr.Call ("count", []) -> (label, Qexpr.Const (Value.Int 1))
            | Qexpr.Call (_, [ arg ]) -> (label, arg)
            | Qexpr.Call (f, args) ->
              raise
                (Exec_error
                   (Printf.sprintf "aggregate %s expects one argument, got %d" f
                      (List.length args)))
            | _ -> (label, e)
          else (label, e))
        targets
    in
    let value_rows =
      List.filter_map
        (fun rowid ->
          match Table.get tbl rowid with
          | None -> None
          | Some tuple ->
            Catalog.fire catalog
              { Catalog.kind = Catalog.On_retrieve; table = Table.name tbl; tuple = Some tuple };
            let binding = binding_of ~outer tbl tuple in
            Some
              (Array.of_list
                 (List.map (fun (_, e) -> Qexpr.eval ~catalog ~binding e) per_row_exprs)))
        rowids
    in
    let rows = if aggregate then run_aggregates targets value_rows else value_rows in
    Rows { columns = List.map fst targets; rows }
  | Qast.Retrieve { targets; from_ = Some table; where; on_cal; group_by } ->
    (* Grouped retrieval: every target must be either a grouping column or
       an aggregate call; one output row per distinct grouping key, in
       first-appearance order. *)
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer tbl where on_cal in
    List.iter
      (fun (label, e) ->
        match e with
        | Qexpr.Col c
          when List.mem
                 (match own_column tbl c with Some col -> col | None -> c)
                 group_by ->
          ()
        | _ when is_aggregate_call e -> ()
        | _ ->
          raise
            (Exec_error
               (Printf.sprintf "target %s must be a grouping column or an aggregate" label)))
      targets;
    let groups : (Value.t list, Value.t array list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let per_row_exprs =
      List.map
        (fun (label, e) ->
          match e with
          | Qexpr.Call ("count", []) -> (label, Qexpr.Const (Value.Int 1))
          | Qexpr.Call (_, [ arg ]) when is_aggregate_call e -> (label, arg)
          | _ -> (label, e))
        targets
    in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some tuple ->
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_retrieve; table = Table.name tbl; tuple = Some tuple };
          let binding = binding_of ~outer tbl tuple in
          let key =
            List.map
              (fun col ->
                match binding col with
                | Some v -> v
                | None -> raise (Exec_error ("unknown grouping column " ^ col)))
              group_by
          in
          let row =
            Array.of_list (List.map (fun (_, e) -> Qexpr.eval ~catalog ~binding e) per_row_exprs)
          in
          (match Hashtbl.find_opt groups key with
          | Some rows -> rows := row :: !rows
          | None ->
            order := key :: !order;
            Hashtbl.replace groups key (ref [ row ])))
      rowids;
    let rows =
      List.rev_map
        (fun key ->
          let members = List.rev !(Hashtbl.find groups key) in
          let agg_row = List.hd (run_aggregates targets members) in
          (* Grouping-column targets take the key's value rather than the
             (meaningless) aggregate over the column. *)
          List.iteri
            (fun i (_, e) ->
              match e with
              | Qexpr.Col _ -> agg_row.(i) <- (List.hd members).(i)
              | _ -> ())
            targets;
          agg_row)
        !order
    in
    Rows { columns = List.map fst targets; rows }
  | Qast.Delete { table; where } ->
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer tbl where None in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some tuple ->
          ignore (Table.delete tbl rowid);
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_delete; table = Table.name tbl; tuple = Some tuple })
      rowids;
    Affected (List.length rowids)
  | Qast.Replace { table; assigns; where } ->
    let tbl = Catalog.table catalog table in
    let rowids = matching_rows catalog ~stats ~outer tbl where None in
    List.iter
      (fun rowid ->
        match Table.get tbl rowid with
        | None -> ()
        | Some old ->
          let tuple = Array.copy old in
          let binding = binding_of ~outer tbl old in
          List.iter
            (fun (col, e) ->
              tuple.(Schema.column_index_exn tbl.Table.schema col) <-
                Qexpr.eval ~catalog ~binding e)
            assigns;
          ignore (Table.update tbl rowid tuple);
          Catalog.fire catalog
            { Catalog.kind = Catalog.On_replace; table = Table.name tbl; tuple = Some tuple })
      rowids;
    Affected (List.length rowids)
  | Qast.Define_rule r -> Rule_def r
  | Qast.Drop_rule name -> Rule_drop name

(** Parse and run. *)
let run_string catalog ?binding ?stats input =
  match Qparser.query input with
  | Error e -> Error e
  | Ok q -> (
    match run catalog ?binding ?stats q with
    | r -> Ok r
    | exception Exec_error e -> Error e
    | exception Catalog.No_such_table t -> Error ("no such table: " ^ t)
    | exception Catalog.No_such_operator o -> Error ("no such operator: " ^ o)
    | exception Catalog.Table_exists t -> Error ("table already exists: " ^ t)
    | exception Schema.Schema_error e -> Error e
    | exception Qexpr.Eval_error e -> Error e
    | exception Table.No_such_column c -> Error ("no such column: " ^ c))
