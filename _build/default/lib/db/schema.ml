(** Table schemas: column names, types, and the optional valid-time
    column.

    Marking a chronon column [valid] designates it as the tuple's valid
    time, which the query language's [on <calendar-expression>] clause
    filters against (the paper's "maintenance of valid time in
    databases"). *)

type ty =
  | TBool
  | TInt
  | TFloat
  | TText
  | TChronon
  | TInterval
  | TArray of ty
  | TAdt of string

type column = {
  name : string;
  ty : ty;
  valid_time : bool;
}

type t = {
  table : string;
  columns : column list;
}

exception Schema_error of string

let rec ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TText -> "text"
  | TChronon -> "chronon"
  | TInterval -> "interval"
  | TArray ty -> ty_to_string ty ^ "[]"
  | TAdt tag -> tag

let ty_of_string s =
  let rec go s =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "[]" then
      Option.map (fun t -> TArray t) (go (String.sub s 0 (String.length s - 2)))
    else
      match String.lowercase_ascii s with
      | "bool" | "boolean" -> Some TBool
      | "int" | "int4" | "integer" -> Some TInt
      | "float" | "float8" | "real" -> Some TFloat
      | "text" | "varchar" -> Some TText
      | "chronon" | "date" -> Some TChronon
      | "interval" -> Some TInterval
      | "" -> None
      | tag -> Some (TAdt tag)
  in
  go (String.trim s)

let make ~table columns =
  let names = List.map (fun c -> c.name) columns in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    raise (Schema_error ("duplicate column in table " ^ table));
  if List.length (List.filter (fun c -> c.valid_time) columns) > 1 then
    raise (Schema_error ("multiple valid-time columns in table " ^ table));
  List.iter
    (fun c ->
      if c.valid_time && c.ty <> TChronon then
        raise (Schema_error ("valid-time column " ^ c.name ^ " must be a chronon")))
    columns;
  { table; columns }

let arity t = List.length t.columns

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: rest -> if String.equal c.name name then Some i else go (i + 1) rest
  in
  go 0 t.columns

let column_index_exn t name =
  match column_index t name with
  | Some i -> i
  | None -> raise (Schema_error (Printf.sprintf "no column %s in table %s" name t.table))

let column t name = List.nth_opt t.columns (Option.value ~default:max_int (column_index t name))

let valid_time_column t =
  List.find_opt (fun c -> c.valid_time) t.columns

(* Runtime type check; Null is allowed in any column. *)
let rec value_matches ty (v : Value.t) =
  match (ty, v) with
  | _, Value.Null -> true
  | TBool, Value.Bool _ -> true
  | TInt, Value.Int _ -> true
  | TFloat, Value.Float _ | TFloat, Value.Int _ -> true
  | TText, Value.Text _ -> true
  | TChronon, Value.Chronon _ -> true
  | TInterval, Value.Interval _ -> true
  | TArray ty, Value.Array a -> Array.for_all (value_matches ty) a
  | TAdt tag, Value.Ext (t, _) -> String.equal tag t
  | (TBool | TInt | TFloat | TText | TChronon | TInterval | TArray _ | TAdt _), _ -> false

let check_tuple t (tuple : Value.t array) =
  if Array.length tuple <> arity t then
    raise (Schema_error (Printf.sprintf "tuple arity %d does not match table %s (%d columns)"
             (Array.length tuple) t.table (arity t)));
  List.iteri
    (fun i c ->
      if not (value_matches c.ty tuple.(i)) then
        raise
          (Schema_error
             (Printf.sprintf "column %s.%s expects %s but got %s" t.table c.name
                (ty_to_string c.ty) (Value.to_string tuple.(i)))))
    t.columns

let pp ppf t =
  Format.fprintf ppf "%s(%s)" t.table
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf "%s %s%s" c.name (ty_to_string c.ty)
              (if c.valid_time then " valid" else ""))
          t.columns))
