lib/db/qparser.mli: Qast Qexpr
