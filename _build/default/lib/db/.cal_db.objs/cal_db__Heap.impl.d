lib/db/heap.ml: Array List Printf Value
