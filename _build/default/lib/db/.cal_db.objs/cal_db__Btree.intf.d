lib/db/btree.mli: Value
