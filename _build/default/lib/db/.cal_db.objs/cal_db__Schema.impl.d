lib/db/schema.ml: Array Format List Option Printf String Value
