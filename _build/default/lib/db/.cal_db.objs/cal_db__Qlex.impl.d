lib/db/qlex.ml: Buffer List Printf String
