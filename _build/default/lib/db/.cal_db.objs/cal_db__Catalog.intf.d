lib/db/catalog.mli: Hashtbl Interval_set Schema Table Value
