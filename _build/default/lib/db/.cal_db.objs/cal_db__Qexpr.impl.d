lib/db/qexpr.ml: Catalog Chronon List Printf String Value
