lib/db/value.mli: Chronon Format Interval
