lib/db/heap.mli: Value
