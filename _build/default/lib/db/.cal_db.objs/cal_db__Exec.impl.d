lib/db/exec.ml: Array Catalog Hashtbl Int Interval Interval_set List Option Printf Qast Qexpr Qparser Schema String Table Value
