lib/db/dump.ml: Array Buffer Catalog Exec Float Interval List Printf Qast Qexpr Qparser Schema String Table Value
