lib/db/catalog.ml: Array Hashtbl Interval Interval_set List Schema String Table Value
