lib/db/table.mli: Btree Heap Schema Value
