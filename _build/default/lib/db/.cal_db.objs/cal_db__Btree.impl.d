lib/db/btree.ml: Array List Obj Value
