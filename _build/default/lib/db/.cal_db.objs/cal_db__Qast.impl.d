lib/db/qast.ml: Catalog List Printf Qexpr Schema String
