lib/db/table.ml: Array Btree Heap List Schema
