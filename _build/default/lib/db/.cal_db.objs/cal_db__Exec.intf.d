lib/db/exec.mli: Catalog Qast Stdlib Value
