lib/db/qparser.ml: Array Catalog List Printf Qast Qexpr Qlex Schema String Value
