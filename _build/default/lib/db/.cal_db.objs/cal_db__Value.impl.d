lib/db/value.ml: Array Bool Chronon Float Format Hashtbl Int Interval Option Stdlib String
