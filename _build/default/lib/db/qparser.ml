(** Recursive-descent parser for the query language.

    {v
    query  ::= 'create' 'table' NAME '(' coldef (',' coldef)* ')'
             | 'create' 'index' 'on' NAME '(' NAME ')'
             | 'append' NAME '(' assign (',' assign)* ')'
             | 'retrieve' '(' target (',' target)* ')'
               ('from' NAME)? ('where' expr)? ('on' calspec)?
             | 'delete' NAME ('where' expr)?
             | 'replace' NAME '(' assign (',' assign)* ')' ('where' expr)?
             | 'define' 'rule' NAME 'on' event ('where' expr)? 'do' action
             | 'drop' 'rule' NAME
    coldef ::= NAME TYPE ('[' ']')? 'valid'?
    event  ::= ('append'|'delete'|'replace'|'retrieve') 'to' NAME
             | 'calendar' (STRING | NAME)
    action ::= query | '{' query (';' query)* ';'? '}'
    calspec::= STRING | NAME
    v} *)

exception Parse_error of string * int

type state = { toks : (Qlex.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_pos st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1
let fail st msg = raise (Parse_error (msg, peek_pos st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Qlex.to_string tok)
         (Qlex.to_string (peek st)))

let ident st =
  match peek st with
  | Qlex.IDENT s -> advance st; s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Qlex.to_string t))

let is_kw st word =
  match peek st with
  | Qlex.IDENT s -> String.lowercase_ascii s = word
  | _ -> false

let kw st word =
  if is_kw st word then advance st
  else fail st (Printf.sprintf "expected keyword %s, found %s" word (Qlex.to_string (peek st)))

let opt_kw st word = if is_kw st word then ( advance st; true) else false

(* --- expressions ---------------------------------------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if is_kw st "or" then begin
    advance st;
    Qexpr.Binop (Qexpr.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if is_kw st "and" then begin
    advance st;
    Qexpr.Binop (Qexpr.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Qlex.EQ -> Some Qexpr.Eq
    | Qlex.NE -> Some Qexpr.Ne
    | Qlex.LT -> Some Qexpr.Lt
    | Qlex.LE -> Some Qexpr.Le
    | Qlex.GT -> Some Qexpr.Gt
    | Qlex.GE -> Some Qexpr.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    Qexpr.Binop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Qlex.PLUS -> advance st; loop (Qexpr.Binop (Qexpr.Add, lhs, parse_mul st))
    | Qlex.MINUS -> advance st; loop (Qexpr.Binop (Qexpr.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Qlex.STAR -> advance st; loop (Qexpr.Binop (Qexpr.Mul, lhs, parse_unary st))
    | Qlex.SLASH -> advance st; loop (Qexpr.Binop (Qexpr.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if is_kw st "not" then begin
    advance st;
    Qexpr.Not (parse_unary st)
  end
  else
    match peek st with
    | Qlex.MINUS -> advance st; Qexpr.Neg (parse_unary st)
    | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Qlex.INT i -> advance st; Qexpr.Const (Value.Int i)
  | Qlex.FLOAT f -> advance st; Qexpr.Const (Value.Float f)
  | Qlex.STRING s -> advance st; Qexpr.Const (Value.Text s)
  | Qlex.CHRONON c ->
    if c = 0 then fail st "chronon literal @0 is invalid (no zero chronon)";
    advance st;
    Qexpr.Const (Value.Chronon c)
  | Qlex.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Qlex.RPAREN;
    e
  | Qlex.IDENT s -> (
    let lower = String.lowercase_ascii s in
    match lower with
    | "true" -> advance st; Qexpr.Const (Value.Bool true)
    | "false" -> advance st; Qexpr.Const (Value.Bool false)
    | "null" -> advance st; Qexpr.Const Value.Null
    | _ ->
      advance st;
      if peek st = Qlex.DOT then begin
        advance st;
        let field = ident st in
        Qexpr.Col (lower ^ "." ^ String.lowercase_ascii field)
      end
      else if peek st = Qlex.LPAREN then begin
        advance st;
        let args =
          if peek st = Qlex.RPAREN then []
          else
            let rec go acc =
              let e = parse_expr st in
              if peek st = Qlex.COMMA then begin advance st; go (e :: acc) end
              else List.rev (e :: acc)
            in
            go []
        in
        expect st Qlex.RPAREN;
        Qexpr.Call (lower, args)
      end
      else Qexpr.Col lower)
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Qlex.to_string t))

(* --- statements ----------------------------------------------------- *)

let parse_assign st =
  let col = String.lowercase_ascii (ident st) in
  expect st Qlex.EQ;
  (col, parse_expr st)

let parse_assign_list st =
  expect st Qlex.LPAREN;
  let rec go acc =
    let a = parse_assign st in
    if peek st = Qlex.COMMA then begin advance st; go (a :: acc) end
    else List.rev (a :: acc)
  in
  let l = go [] in
  expect st Qlex.RPAREN;
  l

let parse_coldef st =
  let name = String.lowercase_ascii (ident st) in
  let tyname = ident st in
  let tyname =
    if peek st = Qlex.LBRACKET then begin
      advance st;
      expect st Qlex.RBRACKET;
      tyname ^ "[]"
    end
    else tyname
  in
  let ty =
    match Schema.ty_of_string tyname with
    | Some ty -> ty
    | None -> fail st (Printf.sprintf "unknown type %s" tyname)
  in
  let valid = opt_kw st "valid" in
  (name, ty, valid)

let parse_target st =
  (* [label =] expr; a bare column uses its own name as label. *)
  match (peek st, if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Qlex.EOF) with
  | Qlex.IDENT label, Qlex.EQ
    when not (List.mem (String.lowercase_ascii label) [ "true"; "false"; "null" ]) ->
    advance st;
    advance st;
    (String.lowercase_ascii label, parse_expr st)
  | _ ->
    let e = parse_expr st in
    let label = match e with Qexpr.Col c -> c | _ -> Qexpr.to_string e in
    (label, e)

let parse_calspec st =
  match peek st with
  | Qlex.STRING s -> advance st; s
  | Qlex.IDENT s -> advance st; s
  | t -> fail st (Printf.sprintf "expected calendar expression, found %s" (Qlex.to_string t))

let rec parse_query st =
  if is_kw st "create" then begin
    advance st;
    if opt_kw st "table" then begin
      let name = ident st in
      expect st Qlex.LPAREN;
      let rec go acc =
        let c = parse_coldef st in
        if peek st = Qlex.COMMA then begin advance st; go (c :: acc) end
        else List.rev (c :: acc)
      in
      let cols = go [] in
      expect st Qlex.RPAREN;
      Qast.Create_table { name; cols }
    end
    else begin
      kw st "index";
      kw st "on";
      let table = ident st in
      expect st Qlex.LPAREN;
      let col = String.lowercase_ascii (ident st) in
      expect st Qlex.RPAREN;
      Qast.Create_index { table; col }
    end
  end
  else if is_kw st "append" then begin
    advance st;
    let table = ident st in
    let assigns = parse_assign_list st in
    Qast.Append { table; assigns }
  end
  else if is_kw st "retrieve" then begin
    advance st;
    expect st Qlex.LPAREN;
    let rec go acc =
      let t = parse_target st in
      if peek st = Qlex.COMMA then begin advance st; go (t :: acc) end
      else List.rev (t :: acc)
    in
    let targets = go [] in
    expect st Qlex.RPAREN;
    let from_ = if opt_kw st "from" then Some (ident st) else None in
    let where = if opt_kw st "where" then Some (parse_expr st) else None in
    let on_cal = if opt_kw st "on" then Some (parse_calspec st) else None in
    let group_by =
      if opt_kw st "group" then begin
        kw st "by";
        let rec go acc =
          let c = String.lowercase_ascii (ident st) in
          if peek st = Qlex.COMMA then begin advance st; go (c :: acc) end
          else List.rev (c :: acc)
        in
        go []
      end
      else []
    in
    Qast.Retrieve { targets; from_; where; on_cal; group_by }
  end
  else if is_kw st "delete" then begin
    advance st;
    let table = ident st in
    let where = if opt_kw st "where" then Some (parse_expr st) else None in
    Qast.Delete { table; where }
  end
  else if is_kw st "replace" then begin
    advance st;
    let table = ident st in
    let assigns = parse_assign_list st in
    let where = if opt_kw st "where" then Some (parse_expr st) else None in
    Qast.Replace { table; assigns; where }
  end
  else if is_kw st "define" then begin
    advance st;
    kw st "rule";
    let rule_name = ident st in
    kw st "on";
    let event =
      if opt_kw st "calendar" then Qast.Ev_calendar (parse_calspec st)
      else
        let kind =
          if opt_kw st "append" then Catalog.On_append
          else if opt_kw st "delete" then Catalog.On_delete
          else if opt_kw st "replace" then Catalog.On_replace
          else if opt_kw st "retrieve" then Catalog.On_retrieve
          else fail st "expected append/delete/replace/retrieve/calendar"
        in
        kw st "to";
        Qast.Ev_db (kind, ident st)
    in
    let condition = if opt_kw st "where" then Some (parse_expr st) else None in
    kw st "do";
    let action =
      if peek st = Qlex.LBRACE then begin
        advance st;
        let rec go acc =
          let q = parse_query st in
          if peek st = Qlex.SEMI then begin
            advance st;
            if peek st = Qlex.RBRACE then List.rev (q :: acc) else go (q :: acc)
          end
          else List.rev (q :: acc)
        in
        let qs = go [] in
        expect st Qlex.RBRACE;
        qs
      end
      else [ parse_query st ]
    in
    Qast.Define_rule { rule_name; event; condition; action }
  end
  else if is_kw st "drop" then begin
    advance st;
    kw st "rule";
    Qast.Drop_rule (ident st)
  end
  else fail st (Printf.sprintf "expected a command, found %s" (Qlex.to_string (peek st)))

let query_exn input =
  let st = { toks = Array.of_list (Qlex.tokenize input); pos = 0 } in
  let q = parse_query st in
  if peek st = Qlex.SEMI then advance st;
  expect st Qlex.EOF;
  q

let query input =
  match query_exn input with
  | q -> Ok q
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at %d: %s" pos msg)
  | exception Qlex.Lex_error (msg, pos) -> Error (Printf.sprintf "lex error at %d: %s" pos msg)

(** Parse a whole script: queries separated/terminated by semicolons. *)
let program_exn input =
  let st = { toks = Array.of_list (Qlex.tokenize input); pos = 0 } in
  let rec go acc =
    if peek st = Qlex.EOF then List.rev acc
    else begin
      let q = parse_query st in
      while peek st = Qlex.SEMI do advance st done;
      go (q :: acc)
    end
  in
  go []

let program input =
  match program_exn input with
  | qs -> Ok qs
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at %d: %s" pos msg)
  | exception Qlex.Lex_error (msg, pos) -> Error (Printf.sprintf "lex error at %d: %s" pos msg)

(** Parse an expression alone (used in tests). *)
let expr_exn input =
  let st = { toks = Array.of_list (Qlex.tokenize input); pos = 0 } in
  let e = parse_expr st in
  expect st Qlex.EOF;
  e
