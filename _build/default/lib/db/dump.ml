(** Persistence as a query-language script (the pg_dump approach): a dump
    is a sequence of [create table] / [create index] / [append] commands
    that rebuilds the data when run against a fresh catalog.

    Values of registered ADTs have no literal syntax and cannot be
    dumped; non-finite floats likewise. *)

exception Dump_error of string

let escape_text s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' | '\'' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if not (Float.is_finite f) then
    raise (Dump_error "cannot dump a non-finite float")
  else
    let s = Printf.sprintf "%.17g" f in
    if String.contains s 'e' || String.contains s 'E' then
      (* The lexer has no exponent form; fall back to plain decimal. *)
      Printf.sprintf "%.17f" f
    else if String.contains s '.' then s
    else s ^ ".0"

let rec literal (v : Value.t) =
  match v with
  | Value.Null -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> float_literal f
  | Value.Text s -> "\"" ^ escape_text s ^ "\""
  | Value.Chronon c -> "@" ^ string_of_int c
  | Value.Interval iv ->
    Printf.sprintf "interval(@%d, @%d)" (Interval.lo iv) (Interval.hi iv)
  | Value.Array a ->
    Printf.sprintf "array(%s)" (String.concat ", " (Array.to_list (Array.map literal a)))
  | Value.Ext (tag, _) ->
    raise (Dump_error (Printf.sprintf "values of ADT %s have no literal syntax" tag))

(** [dump catalog ()] renders every table (except [skip], case-insensitive)
    as a script: schema, indexes, then rows in row-id order.
    @raise Dump_error on undumpable values. *)
let dump catalog ?(skip = []) () =
  let skip = List.map String.lowercase_ascii skip in
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      if not (List.mem (String.lowercase_ascii name) skip) then begin
        let tbl = Catalog.table catalog name in
        let schema = tbl.Table.schema in
        let cols =
          List.map
            (fun c -> (c.Schema.name, c.Schema.ty, c.Schema.valid_time))
            schema.Schema.columns
        in
        Buffer.add_string buf (Qast.to_string (Qast.Create_table { name; cols }));
        Buffer.add_string buf ";\n";
        List.iter
          (fun (col, _) ->
            Buffer.add_string buf (Printf.sprintf "create index on %s (%s);\n" name col))
          tbl.Table.indexes;
        Table.iter tbl (fun _ tuple ->
            let assigns =
              List.mapi
                (fun i c -> Printf.sprintf "%s = %s" c.Schema.name (literal tuple.(i)))
                schema.Schema.columns
            in
            Buffer.add_string buf
              (Printf.sprintf "append %s (%s);\n" name (String.concat ", " assigns)));
        Buffer.add_char buf '\n'
      end)
    (Catalog.table_names catalog);
  Buffer.contents buf

(** [load catalog script] runs every command of a dump; returns the number
    executed, or the first error. *)
let load catalog script =
  match Qparser.program script with
  | Error e -> Error e
  | Ok queries -> (
    let n = ref 0 in
    match
      List.iter
        (fun q ->
          ignore (Exec.run catalog q);
          incr n)
        queries
    with
    | () -> Ok !n
    | exception Exec.Exec_error e -> Error e
    | exception Catalog.Table_exists t -> Error ("table already exists: " ^ t)
    | exception Catalog.No_such_table t -> Error ("no such table: " ^ t)
    | exception Schema.Schema_error e -> Error e
    | exception Qexpr.Eval_error e -> Error e)
