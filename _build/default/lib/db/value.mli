(** Database values, including the extension hook for abstract data types.

    The open variant {!ext} plays the role of POSTGRES user-defined types:
    a client registers a tag plus the operations the engine needs
    (printing, equality, optionally comparison), and values of that type
    flow through tables, queries and indexes like any other. The session
    layer registers the [calendar] ADT this way. *)

type ext = ..

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Text of string
  | Chronon of Chronon.t  (** a time point, in session day chronons *)
  | Interval of Interval.t
  | Array of t array
  | Ext of string * ext  (** ADT tag, payload *)

type adt_ops = {
  tag : string;
  pp : ext -> string option;  (** [None] when the payload is not this ADT's *)
  equal : ext -> ext -> bool option;
  compare : (ext -> ext -> int option) option;  (** omitted: not orderable *)
}

exception Unknown_adt of string

(** Raised when comparing values of an ADT that registered no order. *)
exception Incomparable of string

(** [register_adt ops] declares a new abstract type to the engine.
    Re-registration under the same tag replaces the previous entry. *)
val register_adt : adt_ops -> unit

(** Operations registered for a tag. @raise Unknown_adt *)
val adt_ops : string -> adt_ops

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Structural equality; ADT payloads compare through their registry
    entry. *)
val equal : t -> t -> bool

(** Total order within each constructor (with Int/Float coercion); values
    of different constructors order by an arbitrary fixed constructor
    rank, so indexes never misbehave.
    @raise Incomparable for unordered ADTs. *)
val compare : t -> t -> int

(** Numeric view of Int/Float values. *)
val as_float : t -> float option

(** Bool view; Null is false. @raise Failure on other constructors. *)
val is_truthy : t -> bool
