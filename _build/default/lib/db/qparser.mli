(** Recursive-descent parser for the Postquel-flavoured query language.

    {v
    query  ::= 'create' 'table' NAME '(' coldef (',' coldef)* ')'
             | 'create' 'index' 'on' NAME '(' NAME ')'
             | 'append' NAME '(' assign (',' assign)* ')'
             | 'retrieve' '(' target (',' target)* ')'
               ('from' NAME)? ('where' expr)? ('on' calspec)?
               ('group' 'by' NAME (',' NAME) ... )?
             | 'delete' NAME ('where' expr)?
             | 'replace' NAME '(' assign (',' assign)* ')' ('where' expr)?
             | 'define' 'rule' NAME 'on' event ('where' expr)? 'do' action
             | 'drop' 'rule' NAME
    coldef ::= NAME TYPE ('[' ']')? 'valid'?
    event  ::= ('append'|'delete'|'replace'|'retrieve') 'to' NAME
             | 'calendar' (STRING | NAME)
    action ::= query | '{' query (';' query)* ';'? '}'
    calspec::= STRING | NAME
    v}

    Chronon literals are [@5] / [@-3]; strings take single or double
    quotes; keywords are case-insensitive. *)

exception Parse_error of string * int  (** message, byte position *)

val query_exn : string -> Qast.query
val query : string -> (Qast.query, string) result

(** Parse a whole script: queries separated/terminated by semicolons
    (used by dump/load). *)
val program_exn : string -> Qast.query list

val program : string -> (Qast.query list, string) result

(** Parse a scalar expression alone (tests). *)
val expr_exn : string -> Qexpr.t
