(** Closed intervals of chronons and the paper's interval relationships.

    An interval [(lo, hi)] denotes every chronon [c] with
    [lo <= c <= hi]. Both endpoints are nonzero chronons; an interval such
    as [(-4, 3)] therefore spans exactly 7 chronons.

    The relations [overlaps], [during], [meets], [before] ([<]) and [le]
    ([<=]) follow the definitions in section 3.1 of the paper; the extra
    Allen relations ([starts], [finishes], [equal]) are provided for
    completeness. *)

type t = private { lo : Chronon.t; hi : Chronon.t }

(** [make lo hi] builds the interval. @raise Invalid_argument if [lo > hi]
    or an endpoint is 0. *)
val make : Chronon.t -> Chronon.t -> t

(** [singleton c] is [(c, c)]. *)
val singleton : Chronon.t -> t

val lo : t -> Chronon.t
val hi : t -> Chronon.t

(** Number of chronons covered (always >= 1). *)
val length : t -> int

val contains : t -> Chronon.t -> bool

(** [intersect a b] is the common sub-interval, if any. *)
val intersect : t -> t -> t option

(** [hull a b] is the smallest interval containing both. *)
val hull : t -> t -> t

(** [shift i n] moves both endpoints [n] chronons. *)
val shift : t -> int -> t

(** {2 Paper listop relations} — all read "[a] rel [b]". *)

val overlaps : t -> t -> bool

(** [during a b]: [a.lo >= b.lo && b.hi >= a.hi]. *)
val during : t -> t -> bool

(** [meets a b]: [a.hi = b.lo]. *)
val meets : t -> t -> bool

(** [before a b] (the paper's [<]): [a.hi <= b.lo]. *)
val before : t -> t -> bool

(** [le a b] (the paper's [<=]): [a.lo <= b.lo && b.hi >= a.hi]. *)
val le : t -> t -> bool

(** {2 Additional Allen relations} *)

val starts : t -> t -> bool
val finishes : t -> t -> bool

val equal : t -> t -> bool

(** Orders by [lo], then by [hi]. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
