type t = { lo : Chronon.t; hi : Chronon.t }

let make lo hi =
  if lo = 0 || hi = 0 then invalid_arg "Interval.make: zero endpoint";
  if Chronon.compare lo hi > 0 then
    invalid_arg
      (Printf.sprintf "Interval.make: lo (%d) > hi (%d)" lo hi);
  { lo; hi }

let singleton c = make c c
let lo t = t.lo
let hi t = t.hi
let length t = Chronon.diff t.hi t.lo + 1
let contains t c = Chronon.compare t.lo c <= 0 && Chronon.compare c t.hi <= 0

let intersect a b =
  let lo = Chronon.max a.lo b.lo and hi = Chronon.min a.hi b.hi in
  if Chronon.compare lo hi <= 0 then Some (make lo hi) else None

let hull a b = make (Chronon.min a.lo b.lo) (Chronon.max a.hi b.hi)
let shift t n = make (Chronon.add t.lo n) (Chronon.add t.hi n)
let overlaps a b = intersect a b <> None
let during a b = Chronon.compare a.lo b.lo >= 0 && Chronon.compare b.hi a.hi >= 0
let meets a b = Chronon.equal a.hi b.lo
let before a b = Chronon.compare a.hi b.lo <= 0
let le a b = Chronon.compare a.lo b.lo <= 0 && Chronon.compare b.hi a.hi >= 0
let starts a b = Chronon.equal a.lo b.lo && Chronon.compare a.hi b.hi <= 0
let finishes a b = Chronon.equal a.hi b.hi && Chronon.compare a.lo b.lo >= 0
let equal a b = Chronon.equal a.lo b.lo && Chronon.equal a.hi b.hi

let compare a b =
  let c = Chronon.compare a.lo b.lo in
  if c <> 0 then c else Chronon.compare a.hi b.hi

let pp ppf t = Format.fprintf ppf "(%a,%a)" Chronon.pp t.lo Chronon.pp t.hi
let to_string t = Format.asprintf "%a" pp t
