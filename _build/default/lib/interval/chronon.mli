(** Discrete time coordinates under the paper's "no zero" convention.

    A chronon is a nonzero integer position on a discrete timeline at some
    granularity. Chronon 1 is the first unit starting at the session epoch,
    chronon -1 the unit just before it; 0 is never a valid chronon (paper
    section 3.1: the week interval (-4,3) contains exactly 7 days).

    All arithmetic goes through a 0-based [offset] so that distances behave
    uniformly across the missing zero. *)

type t = int

exception Invalid_chronon of int

(** [check c] returns [c], raising {!Invalid_chronon} if [c] is 0. *)
val check : int -> t

(** [of_offset o] converts a 0-based offset to a chronon ([0 -> 1],
    [-1 -> -1]). Total and bijective with {!to_offset}. *)
val of_offset : int -> t

(** [to_offset c] converts a chronon to its 0-based offset ([1 -> 0]). *)
val to_offset : t -> int

(** [add c n] moves [n] units forward (backward if negative), skipping 0. *)
val add : t -> int -> t

(** [diff a b] is the number of units from [b] to [a]
    (so [add b (diff a b) = a]). *)
val diff : t -> t -> int

val succ : t -> t
val pred : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** Least and greatest representable chronons, used as open lifespan ends. *)
val minus_infinity : t
val plus_infinity : t

val is_finite : t -> bool
val pp : Format.formatter -> t -> unit
