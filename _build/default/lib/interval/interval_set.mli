(** Ordered collections of intervals — the paper's order-1 calendars.

    The collection is kept sorted by {!Interval.compare} and free of exact
    duplicates, but member intervals may overlap (e.g. weeks overlapping
    month boundaries).

    Two algebras coexist, as required by the paper:
    {ul
    {- {e element-wise} ([union], [diff], [inter]) treat the collection as a
       set of intervals compared by equality. These back the script-level
       [+] and [-] operators (EMP-DAYS example, section 3.3).}
    {- {e pointwise} ([pointwise_union], ...) treat the collection as a set
       of chronons and return coalesced disjoint intervals.}} *)

type t

val empty : t
val is_empty : t -> bool

(** [of_list l] sorts and deduplicates. *)
val of_list : Interval.t list -> t

(** [of_pairs l] builds from raw endpoint pairs. *)
val of_pairs : (int * int) list -> t

val to_list : t -> Interval.t list
val to_pairs : t -> (int * int) list
val cardinal : t -> int
val singleton : Interval.t -> t
val add : Interval.t -> t -> t

(** [mem i t] is interval-equality membership. *)
val mem : Interval.t -> t -> bool

val contains_chronon : t -> Chronon.t -> bool

(** [nth t i] is the [i]-th interval, 1-based. @raise Not_found if out of
    range. [nth_from_end t 1] is the last interval. *)
val nth : t -> int -> Interval.t

val nth_from_end : t -> int -> Interval.t
val first : t -> Interval.t option
val last : t -> Interval.t option

(** Smallest interval covering the whole collection. *)
val span : t -> Interval.t option

val filter : (Interval.t -> bool) -> t -> t
val map : (Interval.t -> Interval.t) -> t -> t
val iter : (Interval.t -> unit) -> t -> unit
val fold : ('a -> Interval.t -> 'a) -> 'a -> t -> 'a

(** {2 Element-wise algebra} *)

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool

(** {2 Pointwise (chronon-set) algebra} — results are coalesced. *)

(** [coalesce t] merges overlapping or adjacent intervals. *)
val coalesce : t -> t

val pointwise_union : t -> t -> t
val pointwise_inter : t -> t -> t
val pointwise_diff : t -> t -> t

(** {2 Windowing} *)

(** [clip t w] keeps the parts of each member inside window [w]
    (members overlapping [w] are cut to [w]). *)
val clip : t -> Interval.t -> t

(** [restrict t w] keeps members that overlap [w], whole. *)
val restrict : t -> Interval.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
