type t = int

exception Invalid_chronon of int

let check c = if c = 0 then raise (Invalid_chronon 0) else c
let of_offset o = if o >= 0 then o + 1 else o
let to_offset c = if c > 0 then c - 1 else c
let add c n = of_offset (to_offset c + n)
let diff a b = to_offset a - to_offset b
let succ c = add c 1
let pred c = add c (-1)
let compare = Int.compare
let equal = Int.equal
let min (a : t) (b : t) = if a <= b then a else b
let max (a : t) (b : t) = if a >= b then a else b

(* Leave headroom so that offset arithmetic near the extremes cannot wrap. *)
let minus_infinity = Int.min_int / 4
let plus_infinity = Int.max_int / 4
let is_finite c = c > minus_infinity && c < plus_infinity

let pp ppf c =
  if c <= minus_infinity then Format.pp_print_string ppf "-inf"
  else if c >= plus_infinity then Format.pp_print_string ppf "+inf"
  else Format.pp_print_int ppf c
