lib/interval/interval_set.mli: Chronon Format Interval
