lib/interval/chronon.ml: Format Int
