lib/interval/interval_set.ml: Chronon Format Interval List
