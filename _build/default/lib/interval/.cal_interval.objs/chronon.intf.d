lib/interval/chronon.mli: Format
