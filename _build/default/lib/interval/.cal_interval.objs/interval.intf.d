lib/interval/interval.mli: Chronon Format
