lib/interval/interval.ml: Chronon Format Printf
