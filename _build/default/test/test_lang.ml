(* Tests for the calendar expression language: lexer, parser, granularity
   analysis, factorization (paper Examples 1 and 2), planner window
   bounding/CSE, and interpreter (the three scripts of section 3.3). *)

open Cal_lang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let cal_testable = Alcotest.testable Calendar.pp Calendar.equal
let check_cal = Alcotest.check cal_testable

let epoch93 = Civil.make 1993 1 1

(* A context with epoch Jan 1 1993 and a 40-year lifespan, holidays on
   Jan 31 and "Mar 30/31" (days 89 and 90) plus day 31, and business days
   excluding those holidays — the EMP-DAYS setting from section 3.3. *)
let make_ctx ?clock () =
  let env = Env.create () in
  let holidays = Interval_set.of_pairs [ (31, 31); (89, 89); (90, 90) ] in
  Env.define_stored env ~name:"HOLIDAYS" ~granularity:Granularity.Days holidays;
  let bus_days =
    Interval_set.of_pairs
      (List.filter_map
         (fun i -> if List.mem i [ 31; 89; 90 ] then None else Some (i, i))
         (List.init 365 (fun i -> i + 1)))
  in
  Env.define_stored env ~name:"AM_BUS_DAYS" ~granularity:Granularity.Days bus_days;
  let def name source =
    match Env.define_script env ~name ~source with
    | Ok () -> ()
    | Error e -> Alcotest.failf "bad definition %s: %s" name e
  in
  def "Mondays" "{ return ([1]/DAYS:during:WEEKS); }";
  def "Fridays" "{ return ([5]/DAYS:during:WEEKS); }";
  def "Januarys" "{ return ([1]/MONTHS:during:YEARS); }";
  def "Third_Weeks" "{ return ([3]/WEEKS:overlaps:MONTHS); }";
  Context.create ~epoch:epoch93 ~lifespan:(Civil.make 1993 1 1, Civil.make 2032 12 31)
    ?clock ~env ()

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "[2]/DAYS:during:WEEKS") in
  Alcotest.(check int) "token count (incl. EOF)" 10 (List.length toks);
  check_bool "starts with [" true (List.hd toks = Lexer.LBRACKET);
  let toks = List.map fst (Lexer.tokenize "a <= b < c /* comment */ \"str\" 1..4") in
  check_bool "le token" true (List.mem Lexer.LE toks);
  check_bool "lt token" true (List.mem Lexer.LT toks);
  check_bool "string token" true (List.mem (Lexer.STRING "str") toks);
  check_bool "dotdot token" true (List.mem Lexer.DOTDOT toks)

let test_lexer_comments_and_errors () =
  check_int "comment stripped" 2 (List.length (Lexer.tokenize "x /* nested /* ok */ yes */"));
  (match Lexer.tokenize "x /* oops" with
  | _ -> Alcotest.fail "expected lex error for unterminated comment"
  | exception Lexer.Lex_error ("unterminated comment", _) -> ());
  (match Lexer.tokenize "x @ y" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse s =
  match Parser.expr s with Ok e -> e | Error e -> Alcotest.failf "parse failed: %s" e

let test_parser_selection_binds_loose () =
  (* [3]/WEEKS:overlaps:MONTHS = [3]/(WEEKS:overlaps:MONTHS) *)
  match parse "[3]/WEEKS:overlaps:MONTHS" with
  | Ast.Select (Ast.Index [ Ast.Nth 3 ], Ast.Foreach { op = Listop.Overlaps; _ }) -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Pretty.expr_to_string e)

let test_parser_right_assoc_chain () =
  match parse "Mondays:during:Januarys:during:1993/YEARS" with
  | Ast.Foreach
      {
        op = Listop.During;
        lhs = Ast.Ident "Mondays";
        rhs =
          Ast.Foreach
            {
              op = Listop.During;
              lhs = Ast.Ident "Januarys";
              rhs = Ast.Select (Ast.Label 1993, Ast.Ident "YEARS");
              _;
            };
        _;
      } ->
    ()
  | e -> Alcotest.failf "unexpected parse: %s" (Pretty.expr_to_string e)

let test_parser_setops_left_assoc () =
  match parse "A - B + C" with
  | Ast.Union (Ast.Diff (Ast.Ident "A", Ast.Ident "B"), Ast.Ident "C") -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Pretty.expr_to_string e)

let test_parser_relaxed_and_literals () =
  (match parse "WEEKS.overlaps.Jan_1993" with
  | Ast.Foreach { strict = false; op = Listop.Overlaps; _ } -> ()
  | _ -> Alcotest.fail "expected relaxed foreach");
  match parse "{(1,31),(32,59)}" with
  | Ast.Lit [ (1, 31); (32, 59) ] -> ()
  | _ -> Alcotest.fail "expected literal"

let test_parser_selector_forms () =
  (match parse "[n]/DAYS" with
  | Ast.Select (Ast.Index [ Ast.Last ], _) -> ()
  | _ -> Alcotest.fail "[n]");
  (match parse "[-7]/DAYS" with
  | Ast.Select (Ast.Index [ Ast.Nth (-7) ], _) -> ()
  | _ -> Alcotest.fail "[-7]");
  (match parse "[1,3,5]/DAYS" with
  | Ast.Select (Ast.Index [ Ast.Nth 1; Ast.Nth 3; Ast.Nth 5 ], _) -> ()
  | _ -> Alcotest.fail "[1,3,5]");
  match parse "[2..4]/DAYS" with
  | Ast.Select (Ast.Index [ Ast.Range (2, 4) ], _) -> ()
  | _ -> Alcotest.fail "[2..4]"

let emp_days_script =
  {|{LDOM = [n]/DAYS:during:MONTHS;
     LDOM_HOL = LDOM:intersects:HOLIDAYS;
     LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
     return (LDOM - LDOM_HOL + LAST_BUS_DAY);}|}

let test_parser_scripts () =
  (match Parser.script emp_days_script with
  | Ok [ Ast.Assign _; Ast.Assign _; Ast.Assign _; Ast.Return (Ast.Rexpr _) ] -> ()
  | Ok _ -> Alcotest.fail "unexpected script shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Parser.script "{ if (A:intersects:B) return (C); else return (D); }" with
  | Ok [ Ast.If (_, [ Ast.Return _ ], [ Ast.Return _ ]) ] -> ()
  | Ok _ -> Alcotest.fail "unexpected if shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Parser.script {|{ while (today:<:temp2) ; return ("LAST TRADING DAY"); }|} with
  | Ok [ Ast.While (_, []); Ast.Return (Ast.Rstring "LAST TRADING DAY") ] -> ()
  | Ok _ -> Alcotest.fail "unexpected while shape"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parser_errors () =
  check_bool "unbalanced" true (Result.is_error (Parser.expr "[3/DAYS"));
  check_bool "missing rhs" true (Result.is_error (Parser.expr "A:during:"));
  check_bool "bad op" true (Result.is_error (Parser.expr "A:nonsense:B"));
  check_bool "trailing garbage" true (Result.is_error (Parser.expr "A B"))

(* Pretty-print / reparse roundtrip on random expressions. *)
let expr_gen =
  let open QCheck2.Gen in
  let ident = oneofl [ "DAYS"; "WEEKS"; "MONTHS"; "YEARS"; "HOLIDAYS"; "Foo_1" ] in
  let atom =
    oneof
      [
        map (fun n -> Ast.Ident n) ident;
        map (fun l -> Ast.Lit (List.map (fun (a, b) -> (min a b, max a b)) l))
          (list_size (int_range 1 3) (pair (int_range 1 50) (int_range 1 50)));
      ]
  in
  let sel =
    oneof
      [
        map (fun i -> Ast.Index [ Ast.Nth i ]) (int_range 1 5);
        return (Ast.Index [ Ast.Last ]);
        map (fun (a, b) -> Ast.Index [ Ast.Range (min a b, max a b) ]) (pair (int_range 1 5) (int_range 1 5));
        map (fun y -> Ast.Label y) (int_range 1990 2000);
      ]
  in
  let op = oneofl [ Listop.Overlaps; Listop.During; Listop.Before; Listop.Le; Listop.Meets ] in
  fix
    (fun self depth ->
      if depth = 0 then atom
      else
        frequency
          [
            (2, atom);
            (2, map2 (fun s e -> Ast.Select (s, e)) sel (self (depth - 1)));
            ( 3,
              map2
                (fun (strict, op) (lhs, rhs) -> Ast.Foreach { strict; op; lhs; rhs })
                (pair bool op)
                (pair atom (self (depth - 1))) );
            (1, map2 (fun a b -> Ast.Union (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Ast.Diff (a, b)) (self (depth - 1)) (self (depth - 1)));
            ( 1,
              map2
                (fun counts arg -> Ast.Calop { counts; arg })
                (list_size (int_range 1 3) (int_range 1 9))
                (self (depth - 1)) );
          ])
    3

let prop_pretty_reparse =
  QCheck2.Test.make ~name:"pretty-print then reparse is identity" ~count:500
    ~print:(fun e -> Pretty.expr_to_string e)
    expr_gen
    (fun e ->
      match Parser.expr (Pretty.expr_to_string e) with
      | Ok e' -> Ast.equal_expr e e'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Granularity analysis *)

let test_granularity () =
  let ctx = make_ctx () in
  let env = ctx.Context.env in
  let g e = Gran.of_expr env (parse e) in
  check_bool "weeks chain keeps lhs granularity" true
    (g "WEEKS:during:MONTHS" = Some Granularity.Weeks);
  check_bool "selection preserves" true
    (g "[3]/WEEKS:overlaps:MONTHS" = Some Granularity.Weeks);
  check_bool "derived mondays are days" true (g "Mondays" = Some Granularity.Days);
  check_bool "label keeps operand" true (g "1993/YEARS" = Some Granularity.Years);
  check_bool "finest of mixed expr" true
    (Gran.finest_of_expr env (parse "Mondays:during:Januarys:during:1993/YEARS")
     = Granularity.Days);
  check_bool "finest defaults to days" true
    (Gran.finest_of_expr env (parse "{(1,2)}") = Granularity.Days)

(* ------------------------------------------------------------------ *)
(* Factorization: paper Examples 1 and 2 *)

let test_factorize_example1 () =
  let ctx = make_ctx () in
  let e = parse "Mondays:during:Januarys:during:1993/YEARS" in
  let f = Factorize.factorize ctx.Context.env e in
  (* Expected: ([1]/DAYS:during:WEEKS):during:[1]/MONTHS:during:1993/YEARS *)
  check_str "factorized form"
    "([1]/DAYS:during:WEEKS):during:[1]/MONTHS:during:1993/YEARS"
    (Pretty.expr_to_string f)

let test_factorize_example2 () =
  let ctx = make_ctx () in
  let e = parse "Third_Weeks:during:Januarys:during:1993/YEARS" in
  let f = Factorize.factorize ctx.Context.env e in
  check_str "factorized form" "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS"
    (Pretty.expr_to_string f)

let test_factorize_requires_same_granularity () =
  let ctx = make_ctx () in
  (* WEEKS vs MONTHS granularity differ: no factorization of the outer
     during (Example 1's "can't be factorized any further"). *)
  let e = parse "(DAYS:during:WEEKS):during:([1]/MONTHS:during:1993/YEARS)" in
  let f = Factorize.factorize ctx.Context.env e in
  match f with
  | Ast.Foreach { lhs = Ast.Foreach { rhs = Ast.Ident "WEEKS"; _ }; _ } -> ()
  | _ -> Alcotest.failf "should not have factorized: %s" (Pretty.expr_to_string f)

let test_factorize_cycle_detection () =
  let env = Env.create () in
  (match Env.define_script env ~name:"A" ~source:"{ return (B); }" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Env.define_script env ~name:"B" ~source:"{ return (A:during:YEARS); }" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Factorize.factorize env (parse "A") with
  | _ -> Alcotest.fail "expected cycle error"
  | exception Factorize.Cyclic_definition _ -> ()

let test_inline_opaque_scripts_kept () =
  let env = Env.create () in
  (match
     Env.define_script env ~name:"Cond"
       ~source:"{ if (DAYS:during:WEEKS) return (DAYS); else return (WEEKS); }"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Factorize.factorize env (parse "Cond:during:YEARS") with
  | Ast.Foreach { lhs = Ast.Ident "Cond"; _ } -> ()
  | e -> Alcotest.failf "opaque script should stay opaque: %s" (Pretty.expr_to_string e)

(* ------------------------------------------------------------------ *)
(* Planner *)

let gen_windows plan =
  List.filter_map
    (function Plan.Gen { window; coarse; _ } -> Some (coarse, window) | _ -> None)
    plan.Plan.instrs

let test_planner_bounds_example1 () =
  let ctx = make_ctx () in
  let plan = Planner.plan ctx (parse "Mondays:during:Januarys:during:1993/YEARS") in
  check_bool "fine is days" true (plan.Plan.fine = Granularity.Days);
  (* Every generation window must be a small neighbourhood of 1993
     (|window| well under two years), not the 40-year lifespan. *)
  List.iter
    (fun (g, w) ->
      match w with
      | None -> Alcotest.failf "%s window empty" (Granularity.to_string g)
      | Some w ->
        check_bool
          (Printf.sprintf "%s window bounded (%s)" (Granularity.to_string g)
             (Interval.to_string w))
          true
          (Interval.length w < 1600))
    (gen_windows plan)

let test_planner_label_outside_lifespan () =
  let ctx = make_ctx () in
  let plan = Planner.plan ctx (parse "Mondays:during:Januarys:during:1875/YEARS") in
  let years_window =
    List.assoc Granularity.Years (gen_windows plan)
  in
  check_bool "years window empty" true (years_window = None)

let test_planner_cse () =
  let ctx = make_ctx () in
  (* WEEKS appears twice; it must be generated once. *)
  let plan = Planner.plan ctx (parse "([1]/DAYS:during:WEEKS) + ([5]/DAYS:during:WEEKS)") in
  let gens = gen_windows plan in
  check_int "three generations (DAYS, WEEKS shared)" 2
    (List.length (List.filter (fun (g, _) -> g = Granularity.Weeks || g = Granularity.Days) gens));
  check_int "weeks generated once" 1
    (List.length (List.filter (fun (g, _) -> g = Granularity.Weeks) gens))

let test_planner_rejects_bad_label () =
  let ctx = make_ctx () in
  match Planner.plan ctx (parse "1993/MONTHS") with
  | _ -> Alcotest.fail "expected Plan_error"
  | exception Planner.Plan_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Interpretation: golden results and naive/planned agreement *)

let mondays_jan_93 = "Mondays:during:Januarys:during:1993/YEARS"

let test_eval_mondays_january () =
  let ctx = make_ctx () in
  let expected = Calendar.of_pairs [ (4, 4); (11, 11); (18, 18); (25, 25) ] in
  let planned, _ = Interp.eval_expr_planned ctx (parse mondays_jan_93) in
  check_cal "planned" expected planned;
  let naive, _ = Interp.eval_expr_naive ctx (parse mondays_jan_93) in
  check_cal "naive" expected naive

let test_eval_third_week_january () =
  let ctx = make_ctx () in
  let e = parse "Third_Weeks:during:Januarys:during:1993/YEARS" in
  let planned, _ = Interp.eval_expr_planned ctx e in
  check_cal "third week of january 1993" (Calendar.of_pairs [ (11, 17) ]) planned

let test_planned_generates_fewer () =
  let ctx = make_ctx () in
  let e = parse mondays_jan_93 in
  let _, naive_stats = Interp.eval_expr_naive ctx e in
  let _, planned_stats = Interp.eval_expr_planned ctx e in
  check_bool
    (Printf.sprintf "planned generates far fewer intervals (%d < %d / 5)"
       planned_stats.Interp.generated_intervals naive_stats.Interp.generated_intervals)
    true
    (planned_stats.Interp.generated_intervals * 5 < naive_stats.Interp.generated_intervals)

let test_emp_days_script () =
  let ctx = make_ctx () in
  let script =
    match Parser.script emp_days_script with Ok s -> s | Error e -> Alcotest.failf "%s" e
  in
  (* Bound the run to the first quarter of 1993 so the golden values match
     the paper's walk-through. *)
  match Interp.exec_script ctx ~window:(Interval.make 1 90) script with
  | Some (Interp.VCal cal), _ ->
    check_cal "EMP-DAYS first quarter"
      (Calendar.of_pairs [ (30, 30); (59, 59); (88, 88) ])
      cal
  | Some (Interp.VStr s), _ -> Alcotest.failf "unexpected string %s" s
  | None, _ -> Alcotest.fail "no return value"

(* The option-expiration script with the if clause (section 3.3). *)
let expiration_script =
  {|{temp1 = [3]/Fridays:overlaps:Expiration_Month;
     if (temp1:intersects:HOLIDAYS)
       return ([n]/AM_BUS_DAYS:<:temp1);
     else
       return (temp1);}|}

let test_expiration_script () =
  let ctx = make_ctx () in
  (* Expiration month = January 1993; third Friday is Jan 15 (day 15).
     The window reaches back before the epoch so the week containing
     Jan 1 (a Friday) is complete. *)
  Env.define_stored ctx.Context.env ~name:"Expiration_Month" ~granularity:Granularity.Days
    (Interval_set.of_pairs [ (1, 31) ]);
  let script =
    match Parser.script expiration_script with Ok s -> s | Error e -> Alcotest.failf "%s" e
  in
  (match Interp.exec_script ctx ~window:(Interval.make (-6) 60) script with
  | Some (Interp.VCal cal), _ ->
    check_cal "third friday of january" (Calendar.of_pairs [ (15, 15) ]) cal
  | _ -> Alcotest.fail "expected calendar");
  (* Now make the third Friday a holiday: expect the preceding business
     day, Jan 14. *)
  Env.define_stored ctx.Context.env ~name:"HOLIDAYS" ~granularity:Granularity.Days
    (Interval_set.of_pairs [ (15, 15) ]);
  Env.define_stored ctx.Context.env ~name:"AM_BUS_DAYS" ~granularity:Granularity.Days
    (Interval_set.of_pairs
       (List.filter_map (fun i -> if i = 15 then None else Some (i, i)) (List.init 60 (fun i -> i + 1))));
  match Interp.exec_script ctx ~window:(Interval.make (-6) 60) script with
  | Some (Interp.VCal cal), _ ->
    check_cal "preceding business day" (Calendar.of_pairs [ (14, 14) ]) cal
  | _ -> Alcotest.fail "expected calendar"

(* The last-trading-day alert with the while clause (section 3.3). *)
let alert_script =
  {|{temp1 = [n]/AM_BUS_DAYS:during:Expiration_Month;
     temp2 = [-7]/AM_BUS_DAYS:<:temp1;
     while (today:<:temp2) ;
     return ("LAST TRADING DAY");}|}

let test_alert_script_waits_then_fires () =
  let clock = Clock.create () in
  let ctx = make_ctx ~clock () in
  Env.define_stored ctx.Context.env ~name:"Expiration_Month" ~granularity:Granularity.Days
    (Interval_set.of_pairs [ (1, 31) ]);
  let script =
    match Parser.script alert_script with Ok s -> s | Error e -> Alcotest.failf "%s" e
  in
  let window = Interval.make 1 60 in
  (* Last business day of January is day 30 (31 is a holiday); the seventh
     business day preceding it is day 22 ({22..28} minus holidays = 22;
     business days 23,24,25,26,27,28,29,30 -> seventh from the end of the
     days before 30 is 22... the golden value is checked against the
     interpreter's own [-7] selection below.) *)
  (match Interp.exec_script ctx ~window script with
  | exception Interp.Waiting -> ()
  | _ -> Alcotest.fail "expected the script to wait at day 1");
  (* Advance past the trigger day and re-run: the alert fires. *)
  Clock.advance clock (40 * 86400);
  match Interp.exec_script ctx ~window script with
  | Some (Interp.VStr s), _ -> check_str "alert" "LAST TRADING DAY" s
  | _ -> Alcotest.fail "expected alert string"

let test_while_fuel () =
  let env = Env.create () in
  let ctx =
    Context.create ~epoch:epoch93 ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
      ~fuel:10 ~env ()
  in
  let script =
    match Parser.script "{ x = DAYS; while (x:during:YEARS) { x = x; } return (x); }" with
    | Ok s -> s
    | Error e -> Alcotest.failf "%s" e
  in
  match Interp.exec_script ctx ~window:(Interval.make 1 30) script with
  | exception Interp.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_eval_string () =
  let ctx = make_ctx () in
  (match Interp.eval_string ctx "[2]/DAYS:during:WEEKS:during:Januarys:during:1993/YEARS" with
  | Ok (Interp.VCal cal) ->
    check_cal "tuesdays of january 1993" (Calendar.of_pairs [ (5, 5); (12, 12); (19, 19); (26, 26) ]) cal
  | Ok (Interp.VStr s) -> Alcotest.failf "unexpected string %s" s
  | Error e -> Alcotest.failf "eval failed: %s" e);
  check_bool "bad input is an error" true (Result.is_error (Interp.eval_string ctx "@@@"))

(* ------------------------------------------------------------------ *)
(* Intraday granularities *)

let test_intraday_trading_hours () =
  let ctx = make_ctx () in
  (* Hours 10..16 of each day (9:00-16:00): positional selection over the
     hours during each day. Evaluated over the first two days. *)
  let e = parse "[10..16]/HOURS:during:DAYS" in
  let naive, _ = Interp.eval_expr_naive ctx ~window:(Interval.make 1 48) e in
  (* One order-1 component of hour singletons per day; coalesced pointwise
     they are the two daily trading blocks. *)
  check_int "14 trading hours" 14 (Interval_set.cardinal (Calendar.flatten naive));
  check_bool "coalesce to daily blocks" true
    (Interval_set.equal
       (Interval_set.coalesce (Calendar.flatten naive))
       (Interval_set.of_pairs [ (10, 16); (34, 40) ]));
  (* Mixing granularities: trading hours during the first week; finest
     unit is hours, weeks refine to hours. *)
  let e2 = parse "([10..16]/HOURS:during:DAYS):during:[1]/WEEKS:during:1993/YEARS" in
  let v, _ = Interp.eval_expr_planned ctx e2 in
  (* Week 1 of 1993 runs Dec 28 1992 .. Jan 3 1993 (the week containing
     Jan 1): 7 days x 7 trading hours. *)
  check_int "7x7 trading-hour blocks" 49
    (Interval_set.cardinal (Calendar.flatten v))

(* ------------------------------------------------------------------ *)
(* caloperate in the language (section 3.2's procedure as syntax) *)

let test_caloperate_parse () =
  (match parse "caloperate(MONTHS; 3)" with
  | Ast.Calop { counts = [ 3 ]; arg = Ast.Ident "MONTHS" } -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Pretty.expr_to_string e));
  (match parse "caloperate(DAYS:during:1993/YEARS; 2,3)" with
  | Ast.Calop { counts = [ 2; 3 ]; _ } -> ()
  | _ -> Alcotest.fail "circular counts");
  check_bool "zero count rejected" true (Result.is_error (Parser.expr "caloperate(MONTHS; 0)"));
  check_bool "missing semi" true (Result.is_error (Parser.expr "caloperate(MONTHS, 3)"))

let test_caloperate_quarters () =
  let ctx = make_ctx () in
  (* QUARTERS of 1993 from months, entirely in the language. *)
  let e = parse "caloperate(MONTHS:during:1993/YEARS; 3)" in
  let planned, _ = Interp.eval_expr_planned ctx e in
  (* Only MONTHS/YEARS are mentioned, so the unit is month chronons. *)
  check_cal "quarters of 1993 (month chronons)"
    (Calendar.of_pairs [ (1, 3); (4, 6); (7, 9); (10, 12) ])
    planned;
  (* Derivable calendar using it. *)
  (match Env.define_script ctx.Context.env ~name:"Quarters93"
           ~source:"{ return (caloperate(MONTHS:during:1993/YEARS; 3)); }" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e);
  let last_q_day = parse "[n]/DAYS:during:Quarters93" in
  let v, _ = Interp.eval_expr_planned ctx last_q_day in
  check_cal "last day of each quarter"
    (Calendar.of_pairs [ (90, 90); (181, 181); (273, 273); (365, 365) ])
    v

let test_caloperate_planned_eq_naive () =
  let ctx = make_ctx () in
  let e = parse "caloperate(MONTHS:during:1993/YEARS; 2)" in
  let naive, _ = Interp.eval_expr_naive ctx e in
  let planned, _ = Interp.eval_expr_planned ctx e in
  check_cal "two-month groups agree" naive planned

(* Random expressions: planned and naive evaluation agree. *)
let closed_expr_gen =
  let open QCheck2.Gen in
  let ident = oneofl [ "DAYS"; "WEEKS"; "MONTHS"; "HOLIDAYS" ] in
  let atom = map (fun n -> Ast.Ident n) ident in
  let op = oneofl [ Listop.Overlaps; Listop.During; Listop.Before; Listop.Le ] in
  let sel =
    oneof
      [
        map (fun i -> Ast.Index [ Ast.Nth i ]) (int_range 1 4);
        return (Ast.Index [ Ast.Last ]);
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then atom
      else
        frequency
          [
            (2, atom);
            (2, map2 (fun s e -> Ast.Select (s, e)) sel (self (depth - 1)));
            ( 3,
              map2
                (fun (strict, op) (lhs, rhs) -> Ast.Foreach { strict; op; lhs; rhs })
                (pair bool op)
                (pair atom (self (depth - 1))) );
          ])
    3

let prop_planned_eq_naive =
  QCheck2.Test.make ~name:"planned = naive on closed expressions" ~count:150
    ~print:(fun e -> Pretty.expr_to_string e)
    closed_expr_gen
    (fun e ->
      let env = Env.create () in
      Env.define_stored env ~name:"HOLIDAYS" ~granularity:Granularity.Days
        (Interval_set.of_pairs [ (31, 31); (90, 90); (359, 359) ]);
      let ctx =
        Context.create ~epoch:epoch93
          ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
          ~env ()
      in
      let naive, _ = Interp.eval_expr_naive ctx e in
      let planned, _ = Interp.eval_expr_planned ctx e in
      Calendar.equal naive planned)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments/errors" `Quick test_lexer_comments_and_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "selection binds loose" `Quick test_parser_selection_binds_loose;
          Alcotest.test_case "right-assoc chains" `Quick test_parser_right_assoc_chain;
          Alcotest.test_case "setops left-assoc" `Quick test_parser_setops_left_assoc;
          Alcotest.test_case "relaxed + literals" `Quick test_parser_relaxed_and_literals;
          Alcotest.test_case "selector forms" `Quick test_parser_selector_forms;
          Alcotest.test_case "scripts" `Quick test_parser_scripts;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ("granularity", [ Alcotest.test_case "analysis" `Quick test_granularity ]);
      ( "factorize",
        [
          Alcotest.test_case "example 1 (fig 2)" `Quick test_factorize_example1;
          Alcotest.test_case "example 2 (fig 3)" `Quick test_factorize_example2;
          Alcotest.test_case "granularity guard" `Quick test_factorize_requires_same_granularity;
          Alcotest.test_case "cycle detection" `Quick test_factorize_cycle_detection;
          Alcotest.test_case "opaque scripts kept" `Quick test_inline_opaque_scripts_kept;
        ] );
      ( "planner",
        [
          Alcotest.test_case "bounds example 1" `Quick test_planner_bounds_example1;
          Alcotest.test_case "label outside lifespan" `Quick test_planner_label_outside_lifespan;
          Alcotest.test_case "common subexpressions" `Quick test_planner_cse;
          Alcotest.test_case "bad label rejected" `Quick test_planner_rejects_bad_label;
        ] );
      ( "interp",
        [
          Alcotest.test_case "mondays of january 1993" `Quick test_eval_mondays_january;
          Alcotest.test_case "third week of january" `Quick test_eval_third_week_january;
          Alcotest.test_case "planned generates fewer" `Quick test_planned_generates_fewer;
          Alcotest.test_case "EMP-DAYS script" `Quick test_emp_days_script;
          Alcotest.test_case "expiration script (if)" `Quick test_expiration_script;
          Alcotest.test_case "alert script (while)" `Quick test_alert_script_waits_then_fires;
          Alcotest.test_case "while fuel" `Quick test_while_fuel;
          Alcotest.test_case "eval_string" `Quick test_eval_string;
          Alcotest.test_case "intraday trading hours" `Quick test_intraday_trading_hours;
          Alcotest.test_case "caloperate parse" `Quick test_caloperate_parse;
          Alcotest.test_case "caloperate quarters" `Quick test_caloperate_quarters;
          Alcotest.test_case "caloperate planned = naive" `Quick test_caloperate_planned_eq_naive;
        ] );
      qsuite "parser-props" [ prop_pretty_reparse ];
      qsuite "eval-props" [ prop_planned_eq_naive ];
    ]
