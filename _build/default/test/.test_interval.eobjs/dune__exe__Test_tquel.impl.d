test/test_tquel.ml: Alcotest Cal_db Cal_lang Cal_tquel Calendar Civil Interval Interval_set List Printf Tquel Trel Value
