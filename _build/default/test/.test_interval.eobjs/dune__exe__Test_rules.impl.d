test/test_rules.ml: Alcotest Array Cal_db Cal_lang Cal_rules Catalog Civil Clock Context Env Exec Int List Parser Printf QCheck2 QCheck_alcotest String Value
