test/test_calendar.mli:
