test/test_temporal.ml: Alcotest Civil Clock Date_io Day_count Granularity Interval List Printf QCheck2 QCheck_alcotest Span Unit_system
