test/test_rrule.mli:
