test/test_tquel.mli:
