test/test_interval.ml: Alcotest Chronon Interval Interval_set List Option QCheck2 QCheck_alcotest
