test/test_timeseries.mli:
