test/test_rrule.ml: Alcotest Cal_lang Cal_rrule Calendar Chronon Civil Context Env Expand Fmt Interp Interval Interval_set List Parser QCheck2 QCheck_alcotest Result Rrule Translate
