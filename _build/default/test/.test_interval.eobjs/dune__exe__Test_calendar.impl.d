test/test_calendar.ml: Alcotest Calendar Calendar_gen Chronon Civil Granularity Interval Interval_set List Listop QCheck2 QCheck_alcotest Unit_system
