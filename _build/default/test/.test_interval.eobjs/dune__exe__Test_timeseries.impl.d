test/test_timeseries.ml: Alcotest Array Cal_lang Cal_timeseries Civil Context Env Interval Interval_set List Pattern Printf QCheck2 QCheck_alcotest Regular String
