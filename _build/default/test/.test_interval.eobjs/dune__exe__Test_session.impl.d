test/test_session.ml: Alcotest Array Cal_db Cal_rules Calendar Calrules Civil Exec Int Interval Interval_set List Printf QCheck2 QCheck_alcotest Result Session String Value
